// Random-access compressed-byte backends for the serve subsystem.
//
// A DecodeSession never holds a whole compressed file in memory: it asks
// a ByteSource for exactly the block extents the seek index names, on
// whatever thread the prefetch pipeline decodes them. Three backends
// cover the library's surfaces: a file (pread, naturally concurrent), an
// in-memory span (tests and already-resident data), and a seekable
// std::istream (the streaming front end in core/stream.cpp).
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "util/byte_reader.hpp"
#include "util/common.hpp"

namespace gompresso::serve {

/// Positional reads over an immutable compressed container. read_at must
/// be callable from multiple threads concurrently.
class ByteSource {
 public:
  virtual ~ByteSource() = default;

  /// Total size in bytes.
  virtual std::uint64_t size() const = 0;

  /// Fills `dst` from absolute offset `offset`; throws gompresso::Error
  /// if the range does not lie fully inside the source.
  virtual void read_at(std::uint64_t offset, MutableByteSpan dst) = 0;
};

/// Opens a file with pread-style positional I/O (no shared cursor, so
/// concurrent prefetch reads need no lock).
std::unique_ptr<ByteSource> open_file_source(const std::string& path);

/// Wraps an in-memory container. The span is referenced, not copied —
/// it must outlive the source.
std::unique_ptr<ByteSource> memory_source(ByteSpan data);

/// Wraps a seekable std::istream (ifstream, istringstream). Offsets are
/// relative to the stream position at wrap time; reads are serialized
/// internally because an istream has a single cursor. The stream must
/// outlive the source, which leaves the stream cursor unspecified.
std::unique_ptr<ByteSource> istream_source(std::istream& in);

/// Buffered sequential reader over a ByteSource (the seek-index scan and
/// the container-header parsers run on this, sharing the varint/u32
/// primitives with the istream front end in core/stream.cpp).
class SourceReader : public util::ByteReader {
 public:
  explicit SourceReader(ByteSource& source,
                        std::size_t buffer_size = util::IstreamReader::kDefaultBuffer)
      : source_(source), buf_(std::max<std::size_t>(buffer_size, 64)) {}

  /// Repositions the cursor to absolute offset `abs` (cheap — the
  /// backing store is random access). A target past the end of the
  /// source is structural truncation: the container told us to seek
  /// somewhere the source does not reach.
  void seek_to(std::uint64_t abs) {
    check_format(try_seek(abs), "read: seek past end of input");
  }

 protected:
  ByteSpan next_window() override {
    const std::uint64_t off = offset();
    if (off >= source_.size()) return {};
    const std::size_t take = static_cast<std::size_t>(
        std::min<std::uint64_t>(buf_.size(), source_.size() - off));
    source_.read_at(off, MutableByteSpan(buf_.data(), take));
    return ByteSpan(buf_.data(), take);
  }

  bool try_seek(std::uint64_t abs) override {
    // Contract: report an unreachable target by returning false (the
    // base class falls back to window draining and raises "truncated
    // input" at the true end); seek_to turns false into a typed error.
    // Throwing here instead would bypass both callers' own handling.
    if (abs > source_.size()) return false;
    reset_cursor(abs);
    return true;
  }

 private:
  ByteSource& source_;
  Bytes buf_;
};

}  // namespace gompresso::serve
