#include "serve/seek_index.hpp"

#include <algorithm>
#include <fstream>

#include "core/stream.hpp"  // kStreamMagic (GMPS framing)
#include "util/varint.hpp"

namespace gompresso::serve {

void SeekIndex::append_segment(Segment segment) {
  const format::FileHeader& h = segment.header;
  const std::uint32_t seg_idx = static_cast<std::uint32_t>(segments_.size());
  std::uint64_t comp_off = segment.comp_offset + segment.header_bytes;
  for (std::size_t b = 0; b < h.num_blocks(); ++b) {
    BlockEntry e;
    e.comp_offset = comp_off;
    e.comp_size = h.block_compressed_sizes[b];
    e.uncomp_offset = total_uncompressed_ + static_cast<std::uint64_t>(b) * h.block_size;
    e.uncomp_size = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        h.block_size, h.uncompressed_size - static_cast<std::uint64_t>(b) * h.block_size));
    e.segment = seg_idx;
    blocks_.push_back(e);
    comp_off += e.comp_size;
  }
  total_uncompressed_ += h.uncompressed_size;
  segments_.push_back(std::move(segment));
}

SeekIndex SeekIndex::build(ByteSource& source) {
  SeekIndex index;
  index.source_size_ = source.size();
  SourceReader reader(source);
  check_format(source.size() >= 4, "serve: input too small for a container");
  const std::uint32_t magic = reader.read_u32le();

  if (magic == format::kMagic) {
    // A single Gompresso container.
    reader.seek_to(0);
    Segment seg;
    seg.header = format::FileHeader::deserialize(reader);
    seg.comp_offset = 0;
    seg.header_bytes = reader.offset();
    seg.header.check_payload(source.size() - seg.header_bytes);
    index.append_segment(std::move(seg));
    index.comp_end_ = source.size();
    return index;
  }

  check_format(magic == kStreamMagic, "serve: not a Gompresso container or stream");
  index.is_stream_ = true;
  while (true) {
    const std::uint64_t seg_size = reader.read_varint();
    if (seg_size == 0) break;  // terminator
    check_format(seg_size <= (1ull << 40), "stream: implausible segment size");
    const std::uint64_t seg_begin = reader.offset();
    check_format(seg_size <= source.size() - seg_begin, "stream: truncated segment");
    Segment seg;
    seg.header = format::FileHeader::deserialize(reader);
    seg.comp_offset = seg_begin;
    seg.header_bytes = reader.offset() - seg_begin;
    check_format(seg.header_bytes <= seg_size, "stream: segment smaller than its header");
    seg.header.check_payload(seg_size - seg.header_bytes);
    index.append_segment(std::move(seg));
    reader.seek_to(seg_begin + seg_size);
  }
  index.comp_end_ = reader.offset();
  return index;
}

std::size_t SeekIndex::block_containing(std::uint64_t offset) const {
  check(offset < total_uncompressed_, "serve: offset beyond end of data");
  // First block starting after `offset`, minus one. Blocks are sorted by
  // uncompressed offset and tile [0, total) without gaps.
  const auto it = std::upper_bound(
      blocks_.begin(), blocks_.end(), offset,
      [](std::uint64_t off, const BlockEntry& e) { return off < e.uncomp_offset; });
  return static_cast<std::size_t>(it - blocks_.begin()) - 1;
}

Bytes SeekIndex::serialize() const {
  Bytes out;
  put_u32le(out, kIndexMagic);
  out.push_back(kIndexVersion);
  put_varint(out, source_size_);
  put_varint(out, comp_end_);
  out.push_back(is_stream_ ? 1 : 0);
  put_varint(out, segments_.size());
  for (const Segment& seg : segments_) {
    const Bytes blob = seg.header.serialize();
    // serialize() is canonical (minimal varints), so the blob length is
    // exactly the header's on-disk length; assert the invariant the
    // block offsets depend on.
    check(blob.size() == seg.header_bytes, "serve: non-canonical header");
    put_varint(out, seg.comp_offset);
    put_varint(out, blob.size());
    out.insert(out.end(), blob.begin(), blob.end());
  }
  return out;
}

SeekIndex SeekIndex::deserialize(ByteSpan sidecar) {
  util::SpanReader reader(sidecar);
  check_format(reader.read_u32le() == kIndexMagic, "serve: bad seek-index magic");
  check_format(reader.read_u8() == kIndexVersion, "serve: unsupported seek-index version");
  SeekIndex index;
  index.source_size_ = reader.read_varint();
  index.comp_end_ = reader.read_varint();
  index.is_stream_ = reader.read_u8() != 0;
  const std::uint64_t num_segments = reader.read_varint();
  check_format(num_segments <= (1ull << 32), "serve: implausible segment count");
  for (std::uint64_t s = 0; s < num_segments; ++s) {
    Segment seg;
    seg.comp_offset = reader.read_varint();
    seg.header_bytes = reader.read_varint();
    const std::uint64_t header_end = reader.offset() + seg.header_bytes;
    seg.header = format::FileHeader::deserialize(reader);
    check_format(reader.offset() == header_end, "serve: seek-index header blob mismatch");
    // The build path runs check_payload, which enforces this; a sidecar
    // is untrusted and skips it (no payload length in hand), so the
    // block-count invariant must be re-checked here. Without it a header
    // claiming e.g. zero blocks for a nonzero uncompressed_size leaves
    // gaps in the block table, block_containing() underflows, and
    // read_impl's `uncomp_size - in_block` wraps into an out-of-bounds
    // copy.
    seg.header.check_block_count();
    // Subtractive bound: a crafted offset near 2^64 must not wrap an
    // additive comparison into acceptance (same hardening discipline as
    // FileHeader::check_payload).
    check_format(seg.header_bytes <= index.source_size_ &&
                     seg.comp_offset <= index.source_size_ - seg.header_bytes,
                 "serve: seek-index segment outside source");
    const std::size_t first_block = index.blocks_.size();
    index.append_segment(std::move(seg));
    // Every block extent the sidecar implies must lie inside the source.
    // Checking each entry also catches accumulator wrap-around: the
    // first oversized comp_size fails its own subtractive bound before a
    // later entry could wrap back into range.
    for (std::size_t b = first_block; b < index.blocks_.size(); ++b) {
      const BlockEntry& e = index.blocks_[b];
      check_format(e.comp_offset <= index.source_size_ &&
                       e.comp_size <= index.source_size_ - e.comp_offset,
                   "serve: seek-index block outside source");
    }
  }
  check_format(index.comp_end_ <= index.source_size_, "serve: corrupt seek index");
  return index;
}

void SeekIndex::save(const std::string& path) const {
  const Bytes data = serialize();
  std::ofstream out(path, std::ios::binary);
  check_io(out.good(), "serve: cannot open sidecar for writing");
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  check_io(out.good(), "serve: sidecar write failed");
}

SeekIndex SeekIndex::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  check_io(in.good(), "serve: cannot open sidecar");
  const Bytes data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return deserialize(data);
}

}  // namespace gompresso::serve
