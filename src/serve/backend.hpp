// ContainerBackend: the format seam between ByteSource and DecodeSession.
//
// A DecodeSession used to be hard-wired to the native container: its
// seek map was a SeekIndex over format::FileHeader segments and its
// decode task called core::decode_block_at directly. The backend
// abstraction splits that into two halves:
//
//   * the session keeps everything format-agnostic — scheduling,
//     prefetch window, LRU cache, retry/backoff, health/damage
//     tracking, stats — and
//   * the backend answers the two format questions: "how do
//     uncompressed offsets map to compressed extents?" (block table)
//     and "decode block b from this source into this buffer".
//
// Implementations:
//   * make_gmpz_backend() — the native GMPZ/GMPS path (SeekIndex +
//     fused-table block decode), moved here from the session.
//   * ingest::make_gzip_backend() — rapidgzip-style parallel decode of
//     arbitrary RFC 1952 gzip (src/ingest/gzip_backend.hpp).
//
// Backends are immutable after construction and decode_block() must be
// callable from many pool workers concurrently, so one shared_ptr
// backend can serve every per-connection session of the net daemon —
// the expensive part (index build / boundary scan) happens once.
#pragma once

#include <cstddef>
#include <memory>

#include "core/options.hpp"
#include "serve/byte_source.hpp"
#include "serve/seek_index.hpp"
#include "util/buffer_pool.hpp"
#include "util/common.hpp"

namespace gompresso::serve {

/// One decodable unit in backend-neutral terms: the uncompressed range
/// it covers and the compressed byte extent a decode will touch (for
/// gzip the extent is rounded outward to byte boundaries from bit
/// offsets).
struct BackendBlock {
  std::uint64_t uncomp_offset = 0;
  std::uint64_t uncomp_size = 0;
  std::uint64_t comp_offset = 0;
  std::uint64_t comp_size = 0;
};

/// Decode-time knobs a backend captures at construction (immutable, so
/// sharing a backend across sessions cannot race a reconfiguration).
struct BackendDecodeOptions {
  bool verify_checksums = true;
  /// Strategy selection for the native codec path, as in
  /// DecompressOptions (ignored by foreign-format backends).
  bool auto_strategy = true;
  Strategy strategy = Strategy::kMultiRound;
};

class ContainerBackend {
 public:
  virtual ~ContainerBackend() = default;

  /// Diagnostic name ("gmpz", "gzip", ...).
  virtual const char* kind_name() const = 0;

  /// Total uncompressed payload across all blocks.
  virtual std::uint64_t total_uncompressed() const = 0;

  /// Size of the ByteSource this backend's block table was built from;
  /// the session validates it against the source it is given.
  virtual std::uint64_t source_size() const = 0;

  /// One past the last compressed byte the container occupies (for
  /// framed streams this is where trailing data would begin).
  virtual std::uint64_t compressed_end() const = 0;

  virtual std::size_t num_blocks() const = 0;
  virtual BackendBlock block(std::size_t b) const = 0;

  /// Index of the block containing uncompressed offset `offset`
  /// (precondition: offset < total_uncompressed()).
  virtual std::size_t block_containing(std::uint64_t offset) const = 0;

  /// Decodes block `b` from `source` into `out` (whose size must equal
  /// block(b).uncomp_size). Staging memory is drawn from `buffers` so
  /// the session's memory-bound witness sees every byte. Must be safe
  /// to call from many threads concurrently; errors follow the typed
  /// taxonomy (IoError = transient and retryable, CorruptionError /
  /// FormatError = permanent).
  virtual void decode_block(std::size_t b, ByteSource& source,
                            util::BufferPool& buffers, MutableByteSpan out) = 0;

  /// The native SeekIndex behind this backend, when there is one
  /// (sidecar save, GMPS framing introspection). Foreign-format
  /// backends return nullptr.
  virtual const SeekIndex* seek_index() const { return nullptr; }
};

/// The native GMPZ/GMPS backend: SeekIndex block table + fused-table
/// block decode with per-segment strategy resolution (throws on an
/// explicit strategy no segment supports, exactly as the session's old
/// constructor did).
std::shared_ptr<ContainerBackend> make_gmpz_backend(
    SeekIndex index, const BackendDecodeOptions& options = {});

}  // namespace gompresso::serve
