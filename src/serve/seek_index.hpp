// The seek index: uncompressed offset -> compressed block extent.
//
// The paper's per-block compressed-size list (Fig. 3) already locates
// every block without scanning; this index materializes that list — for
// a single Gompresso container or for every segment of a GMPS stream —
// as a flat table of block extents keyed by cumulative uncompressed
// offset. It is what turns the batch container into a random-access
// medium (rapidgzip builds the same structure for gzip, where it has to
// be *discovered*; our format hands it over in the header).
//
// The index serializes to a small sidecar (magic "GMPX") holding each
// segment's header blob, so reopening a file skips the segment scan:
// load cost is proportional to the header sizes, not the data.
#pragma once

#include <vector>

#include "format/header.hpp"
#include "serve/byte_source.hpp"
#include "util/common.hpp"

namespace gompresso::serve {

inline constexpr std::uint32_t kIndexMagic = 0x58504D47u;  // "GMPX"
inline constexpr std::uint8_t kIndexVersion = 1;

/// One block's location: where its compressed payload lives and which
/// uncompressed range it reproduces.
struct BlockEntry {
  std::uint64_t comp_offset = 0;    // absolute offset of the block payload
  std::uint64_t comp_size = 0;      // CRC32 + mode byte + codec body
  std::uint64_t uncomp_offset = 0;  // cumulative across segments
  std::uint32_t uncomp_size = 0;
  std::uint32_t segment = 0;        // index into segment headers
};

class SeekIndex {
 public:
  /// Scans `source` (a GMPZ container or a GMPS stream of containers)
  /// and builds the index. Only headers are read — data blocks are
  /// skipped over — so this is cheap even for huge files.
  static SeekIndex build(ByteSource& source);

  /// Sidecar round trip. deserialize() validates magic/version and
  /// rebuilds the block table from the stored segment headers.
  Bytes serialize() const;
  static SeekIndex deserialize(ByteSpan sidecar);
  void save(const std::string& path) const;
  static SeekIndex load(const std::string& path);

  std::uint64_t total_uncompressed() const { return total_uncompressed_; }
  /// Size of the source the index was built from (checked when a session
  /// opens a source with a pre-built index).
  std::uint64_t source_size() const { return source_size_; }
  /// Offset one past the last compressed byte the index covers (past the
  /// GMPS terminator for streams; the container end otherwise).
  std::uint64_t compressed_end() const { return comp_end_; }
  bool is_stream() const { return is_stream_; }

  std::size_t num_blocks() const { return blocks_.size(); }
  std::size_t num_segments() const { return segments_.size(); }
  const BlockEntry& block(std::size_t i) const { return blocks_[i]; }
  const format::FileHeader& segment_header(std::size_t s) const {
    return segments_[s].header;
  }

  /// Index of the block whose uncompressed range contains `offset`.
  /// Requires offset < total_uncompressed().
  std::size_t block_containing(std::uint64_t offset) const;

 private:
  struct Segment {
    format::FileHeader header;
    std::uint64_t comp_offset = 0;   // where the container (GMPZ magic) begins
    std::uint64_t header_bytes = 0;  // serialized header length in the file
  };

  void append_segment(Segment segment);

  std::vector<Segment> segments_;
  std::vector<BlockEntry> blocks_;
  std::uint64_t total_uncompressed_ = 0;
  std::uint64_t source_size_ = 0;
  std::uint64_t comp_end_ = 0;
  bool is_stream_ = false;
};

}  // namespace gompresso::serve
