#include "serve/fault_source.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

namespace gompresso::serve {
namespace {

/// True when a read of [offset, offset + len) is selected by `f`.
bool fault_matches(const FaultSpec& f, std::uint64_t offset, std::size_t len) {
  if (f.offset == FaultSpec::kAnyOffset) return true;
  if (f.length == 0) return offset == f.offset;
  return offset < f.offset + f.length && f.offset < offset + len;
}

/// One corruption to apply to the delivered bytes, in dst coordinates.
struct CorruptionOp {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::uint8_t mask = 0;  // 0 = zero-fill
};

std::uint64_t parse_num(const std::string& s) {
  check(!s.empty() && s.find_first_not_of("0123456789xabcdefABCDEF") ==
                          std::string::npos,
        "fault plan: malformed number");
  std::size_t pos = 0;
  std::uint64_t v = 0;
  try {
    v = std::stoull(s, &pos, 0);  // base 0: decimal or 0x-hex
  } catch (const std::exception&) {
    throw Error("fault plan: malformed number");
  }
  check(pos == s.size(), "fault plan: malformed number");
  return v;
}

double parse_rate(const std::string& s) {
  std::size_t pos = 0;
  double v = 0;
  try {
    v = std::stod(s, &pos);
  } catch (const std::exception&) {
    throw Error("fault plan: malformed rate");
  }
  check(pos == s.size() && v >= 0.0 && v <= 1.0,
        "fault plan: rate must be in [0, 1]");
  return v;
}

/// "OFF" or "*" before the optional ":SUFFIX"; returns kAnyOffset for *.
std::uint64_t parse_offset(const std::string& s) {
  return s == "*" ? FaultSpec::kAnyOffset : parse_num(s);
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', begin), spec.size());
    const std::string item = spec.substr(begin, comma - begin);
    begin = comma + 1;
    if (item.empty()) continue;

    const std::size_t eq = item.find('=');
    const std::size_t at = item.find('@');
    if (eq != std::string::npos && (at == std::string::npos || eq < at)) {
      const std::string key = item.substr(0, eq);
      const std::string val = item.substr(eq + 1);
      if (key == "rate") {
        plan.transient_rate = parse_rate(val);
      } else if (key == "burst") {
        plan.transient_burst = parse_num(val);
        check(plan.transient_burst > 0, "fault plan: burst must be positive");
      } else if (key == "seed") {
        plan.seed = parse_num(val);
      } else if (key == "latency") {
        plan.latency_us = parse_num(val);
      } else {
        throw Error("fault plan: unknown key (want rate/burst/seed/latency)");
      }
      continue;
    }

    check(at != std::string::npos, "fault plan: item needs KIND@OFFSET");
    const std::string kind = item.substr(0, at);
    std::string rest = item.substr(at + 1);
    // Optional ":SUFFIX" (count for transient/short, mask for flip).
    std::uint64_t suffix = 0;
    bool has_suffix = false;
    const std::size_t colon = rest.find(':');
    if (colon != std::string::npos) {
      suffix = parse_num(rest.substr(colon + 1));
      rest = rest.substr(0, colon);
      has_suffix = true;
    }
    if (kind == "transient" || kind == "short") {
      const std::uint64_t off = parse_offset(rest);
      const std::uint64_t count = has_suffix ? suffix : 1;
      check(count > 0, "fault plan: count must be positive");
      plan.faults.push_back(kind == "transient"
                                ? FaultSpec::transient_at(off, count)
                                : FaultSpec::short_read_at(off, count));
    } else if (kind == "flip" || kind == "zero") {
      const std::size_t plus = rest.find('+');
      check(plus != std::string::npos, "fault plan: extent needs OFF+LEN");
      const std::uint64_t off = parse_num(rest.substr(0, plus));
      const std::uint64_t len = parse_num(rest.substr(plus + 1));
      check(len > 0, "fault plan: extent length must be positive");
      if (kind == "flip") {
        const std::uint8_t mask =
            has_suffix ? static_cast<std::uint8_t>(suffix) : std::uint8_t{0x40};
        check(mask != 0, "fault plan: flip mask must be nonzero");
        plan.faults.push_back(FaultSpec::flip(off, len, mask));
      } else {
        check(!has_suffix, "fault plan: zero takes no suffix");
        plan.faults.push_back(FaultSpec::zero_fill(off, len));
      }
    } else {
      throw Error("fault plan: unknown fault kind");
    }
  }
  return plan;
}

FaultInjectingByteSource::FaultInjectingByteSource(
    std::unique_ptr<ByteSource> inner, FaultPlan plan)
    : inner_(std::move(inner)), plan_(std::move(plan)), rng_(plan_.seed) {
  check(inner_ != nullptr, "fault source: null inner source");
  check(plan_.transient_burst > 0, "fault source: burst must be positive");
}

void FaultInjectingByteSource::inject(FaultSpec fault) {
  util::MutexLock lock(mutex_);
  plan_.faults.push_back(fault);
}

void FaultInjectingByteSource::set_random_transients(double rate,
                                                     std::uint64_t burst,
                                                     std::uint64_t seed) {
  check(rate >= 0.0 && rate <= 1.0, "fault source: rate must be in [0, 1]");
  check(burst > 0, "fault source: burst must be positive");
  util::MutexLock lock(mutex_);
  plan_.transient_rate = rate;
  plan_.transient_burst = burst;
  plan_.seed = seed;
  rng_ = Rng(seed);
  armed_.clear();
  cleared_.clear();
}

void FaultInjectingByteSource::clear_faults() {
  util::MutexLock lock(mutex_);
  plan_.faults.clear();
  plan_.transient_rate = 0.0;
  plan_.latency_us = 0;
  armed_.clear();
  cleared_.clear();
}

FaultStats FaultInjectingByteSource::stats() const {
  util::MutexLock lock(mutex_);
  return stats_;
}

void FaultInjectingByteSource::read_at(std::uint64_t offset, MutableByteSpan dst) {
  bool fail = false;
  bool short_read = false;
  std::uint64_t delay = 0;
  std::vector<CorruptionOp> ops;
  {
    util::MutexLock lock(mutex_);
    ++stats_.reads;
    delay = plan_.latency_us;
    for (FaultSpec& f : plan_.faults) {
      if (!fault_matches(f, offset, dst.size())) continue;
      switch (f.kind) {
        case FaultSpec::Kind::kTransient:
          if (!fail && !short_read && f.count > 0) {
            --f.count;
            fail = true;
          }
          break;
        case FaultSpec::Kind::kShortRead:
          if (!fail && !short_read && f.count > 0) {
            --f.count;
            short_read = true;
          }
          break;
        case FaultSpec::Kind::kFlip:
        case FaultSpec::Kind::kZeroFill: {
          const std::uint64_t lo = std::max(offset, f.offset);
          const std::uint64_t hi =
              std::min(offset + dst.size(), f.offset + f.length);
          if (lo < hi) {
            ops.push_back(CorruptionOp{
                static_cast<std::size_t>(lo - offset),
                static_cast<std::size_t>(hi - offset),
                f.kind == FaultSpec::Kind::kFlip ? f.mask : std::uint8_t{0}});
          }
          break;
        }
        case FaultSpec::Kind::kLatency:
          if (f.count == 0) {
            delay = std::max(delay, f.delay_us);
          } else if (f.count > 0) {
            --f.count;
            delay = std::max(delay, f.delay_us);
          }
          break;
      }
    }
    // Seeded per-offset transient bursts (see FaultPlan doc). Each
    // offset is rolled exactly once, on its first read: either it fails
    // the next `burst` attempts then clears, or it is immune for good —
    // so a read that once succeeded at an offset can never start failing
    // there later, which is what keeps burst < max_attempts a hard
    // absorption guarantee rather than a probabilistic one.
    if (!fail && !short_read && plan_.transient_rate > 0.0 &&
        cleared_.find(offset) == cleared_.end()) {
      const auto armed = armed_.find(offset);
      if (armed != armed_.end()) {
        if (--armed->second == 0) {
          armed_.erase(armed);
          cleared_.insert(offset);
        }
        fail = true;
      } else if (rng_.next_double() < plan_.transient_rate) {
        if (plan_.transient_burst > 1) {
          armed_.emplace(offset, plan_.transient_burst - 1);
        } else {
          cleared_.insert(offset);
        }
        fail = true;
      } else {
        cleared_.insert(offset);
      }
    }
    if (fail) ++stats_.transient_failures;
    if (short_read) ++stats_.short_reads;
    if (delay > 0) ++stats_.delayed_reads;
    if (!fail && !short_read && !ops.empty()) ++stats_.corrupted_reads;
  }

  if (delay > 0) std::this_thread::sleep_for(std::chrono::microseconds(delay));
  if (fail) throw IoError("fault injection: transient read failure");
  if (short_read) {
    // Deliver a prefix, then fail — callers must not trust a buffer a
    // failed read touched.
    const std::size_t half = dst.size() / 2;
    if (half > 0) inner_->read_at(offset, dst.subspan(0, half));
    throw IoError("fault injection: short read");
  }
  inner_->read_at(offset, dst);
  for (const CorruptionOp& op : ops) {
    if (op.mask == 0) {
      std::memset(dst.data() + op.begin, 0, op.end - op.begin);
    } else {
      for (std::size_t i = op.begin; i < op.end; ++i) dst[i] ^= op.mask;
    }
  }
}

}  // namespace gompresso::serve
