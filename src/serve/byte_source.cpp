#include "serve/byte_source.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <istream>
#include <mutex>

namespace gompresso::serve {
namespace {

class FileSource final : public ByteSource {
 public:
  explicit FileSource(const std::string& path) {
    fd_ = ::open(path.c_str(), O_RDONLY);
    check_io(fd_ >= 0, "serve: cannot open input file");
    struct stat st{};
    if (::fstat(fd_, &st) != 0) {
      ::close(fd_);
      fd_ = -1;
      throw IoError("serve: cannot stat input file");
    }
    size_ = static_cast<std::uint64_t>(st.st_size);
  }

  ~FileSource() override {
    if (fd_ >= 0) ::close(fd_);
  }

  std::uint64_t size() const override { return size_; }

  void read_at(std::uint64_t offset, MutableByteSpan dst) override {
    check_format(offset <= size_ && dst.size() <= size_ - offset,
                 "serve: read past end of file");
    std::size_t got = 0;
    while (got < dst.size()) {
      const ::ssize_t n =
          ::pread(fd_, dst.data() + got, dst.size() - got,
                  static_cast<::off_t>(offset + got));
      if (n < 0 && errno == EINTR) continue;
      check_io(n >= 0, "serve: file read failed");
      // pread returning 0 inside the sized extent means the file shrank
      // under us (truncated or replaced after open) — an I/O-class
      // failure of the storage contract, not of the data format.
      check_io(n > 0, "serve: file truncated after open (unexpected EOF)");
      got += static_cast<std::size_t>(n);
    }
  }

 private:
  int fd_ = -1;
  std::uint64_t size_ = 0;
};

class MemorySource final : public ByteSource {
 public:
  explicit MemorySource(ByteSpan data) : data_(data) {}

  std::uint64_t size() const override { return data_.size(); }

  void read_at(std::uint64_t offset, MutableByteSpan dst) override {
    check_format(offset <= data_.size() && dst.size() <= data_.size() - offset,
                 "serve: read past end of input");
    std::memcpy(dst.data(), data_.data() + static_cast<std::size_t>(offset),
                dst.size());
  }

 private:
  ByteSpan data_;
};

class IstreamSource final : public ByteSource {
 public:
  explicit IstreamSource(std::istream& in) : in_(in) {
    const std::istream::pos_type begin = in_.tellg();
    check(begin != std::istream::pos_type(-1),
          "serve: stream source requires a seekable stream");
    base_ = begin;
    in_.seekg(0, std::ios::end);
    const std::istream::pos_type end = in_.tellg();
    check_io(in_.good(), "serve: stream seek failed");
    size_ = static_cast<std::uint64_t>(end - begin);
    in_.seekg(begin);
  }

  std::uint64_t size() const override { return size_; }

  void read_at(std::uint64_t offset, MutableByteSpan dst) override {
    check_format(offset <= size_ && dst.size() <= size_ - offset,
                 "serve: read past end of input");
    // One shared cursor: positional reads must serialize.
    std::lock_guard<std::mutex> lock(mutex_);
    in_.clear();
    in_.seekg(base_ + static_cast<std::streamoff>(offset));
    in_.read(reinterpret_cast<char*>(dst.data()),
             static_cast<std::streamsize>(dst.size()));
    check_io(static_cast<std::size_t>(in_.gcount()) == dst.size(),
             "serve: stream read failed");
  }

 private:
  std::istream& in_;
  std::istream::pos_type base_{};
  std::uint64_t size_ = 0;
  std::mutex mutex_;
};

}  // namespace

std::unique_ptr<ByteSource> open_file_source(const std::string& path) {
  return std::make_unique<FileSource>(path);
}

std::unique_ptr<ByteSource> memory_source(ByteSpan data) {
  return std::make_unique<MemorySource>(data);
}

std::unique_ptr<ByteSource> istream_source(std::istream& in) {
  return std::make_unique<IstreamSource>(in);
}

}  // namespace gompresso::serve
