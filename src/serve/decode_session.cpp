#include "serve/decode_session.hpp"

#include <chrono>
#include <cstring>
#include <thread>

#include "obs/trace.hpp"

namespace gompresso::serve {
namespace {

// Serve-plane metrics: every SessionStats counter mirrored as a named
// process-wide metric, plus the per-read latency histogram the serve
// daemon's p50/p99 will report from.
struct ServeObs {
  obs::Counter reads = obs::registry().counter("serve.reads", "reads");
  obs::Histogram read_latency_us =
      obs::registry().histogram("serve.read_latency_us", "us");
  obs::Counter blocks_decoded =
      obs::registry().counter("serve.blocks_decoded", "blocks");
  obs::Counter cache_hits = obs::registry().counter("serve.cache_hits", "reads");
  obs::Counter demand_decodes =
      obs::registry().counter("serve.demand_decodes", "blocks");
  obs::Counter prefetch_decodes =
      obs::registry().counter("serve.prefetch_decodes", "blocks");
  obs::Counter decode_waits =
      obs::registry().counter("serve.decode_waits", "waits");
  obs::Counter decode_failures =
      obs::registry().counter("serve.decode_failures", "blocks");
  obs::Counter evictions = obs::registry().counter("serve.evictions", "blocks");
  obs::Counter bytes_delivered =
      obs::registry().counter("serve.bytes_delivered", "bytes");
  obs::Counter retries = obs::registry().counter("serve.retries", "retries");
  obs::Counter transient_errors =
      obs::registry().counter("serve.transient_errors", "errors");
  obs::Counter permanent_errors =
      obs::registry().counter("serve.permanent_errors", "errors");
  obs::Counter degraded_reads =
      obs::registry().counter("serve.degraded_reads", "reads");
  obs::Counter bytes_zero_filled =
      obs::registry().counter("serve.bytes_zero_filled", "bytes");
};

ServeObs& serve_obs() {
  static ServeObs instance;
  return instance;
}

/// One counter event, recorded in both planes: the session's own
/// atomic (SessionStats) and the process-wide registry mirror.
void bump(std::atomic<std::uint64_t>& local, const obs::Counter& global,
          std::uint64_t n = 1) {
  local.fetch_add(n, std::memory_order_relaxed);
  global.add(n);
}

/// Decode knobs the deprecated native-container constructors forward
/// from their SessionOptions into the backend they build.
BackendDecodeOptions backend_decode_options(const SessionOptions& options) {
  BackendDecodeOptions d;
  d.verify_checksums = options.verify_checksums;
  d.auto_strategy = options.auto_strategy;
  d.strategy = options.strategy;
  return d;
}

}  // namespace

std::uint64_t RetryPolicy::jittered_backoff_us(std::size_t attempt,
                                               std::uint64_t salt) const {
  const std::uint64_t base = backoff_us(attempt);
  const double j = std::min(std::max(jitter, 0.0), 1.0);
  if (j == 0.0 || base == 0) return base;
  // SplitMix64 finalizer over the (seed, salt, attempt) tuple: a
  // stateless, replayable draw — no shared RNG state between concurrent
  // decode tasks, and the same policy always sleeps the same ladder.
  std::uint64_t z = jitter_seed ^ (salt * 0x9E3779B97F4A7C15ull) ^
                    (static_cast<std::uint64_t>(attempt) << 32);
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  const double u = static_cast<double>(z >> 11) * 0x1.0p-53;  // [0, 1)
  const double factor = 1.0 - j + 2.0 * j * u;                // [1-j, 1+j)
  return static_cast<std::uint64_t>(static_cast<double>(base) * factor);
}

DecodeSession::DecodeSession(std::unique_ptr<ByteSource> source,
                             std::shared_ptr<ContainerBackend> backend,
                             SessionOptions options)
    : source_(std::move(source)),
      backend_(std::move(backend)),
      options_(options) {
  check(backend_ != nullptr, "serve: null container backend");
  check_format(backend_->source_size() == source_->size(),
               "serve: seek index does not match the source (rebuild it)");
  init();
}

DecodeSession::DecodeSession(std::unique_ptr<ByteSource> source,
                             SessionOptions options)
    : source_(std::move(source)),
      backend_(make_gmpz_backend(SeekIndex::build(*source_),
                                 backend_decode_options(options))),
      options_(options) {
  init();
}

DecodeSession::DecodeSession(std::unique_ptr<ByteSource> source, SeekIndex index,
                             SessionOptions options)
    : source_(std::move(source)),
      backend_(make_gmpz_backend(std::move(index),
                                 backend_decode_options(options))),
      options_(options) {
  check_format(backend_->source_size() == source_->size(),
               "serve: seek index does not match the source (rebuild it)");
  init();
}

void DecodeSession::init() {
  if (options_.buffer_pool != nullptr) buffers_ = options_.buffer_pool;
  if (options_.pool != nullptr) {
    // Shared pool (the serve daemon): concurrency and memory are bounded
    // per pool, not per session.
    pool_ = options_.pool;
  } else if (options_.num_threads == 0) {
    pool_ = &default_pool();
  } else if (options_.num_threads > 1) {
    own_pool_ = std::make_unique<ThreadPool>(options_.num_threads);
    pool_ = own_pool_.get();
  }
  async_ = pool_ != nullptr && pool_->async();
  window_ = async_ ? std::max<std::size_t>(1, options_.max_inflight_blocks) : 1;
  // A window beyond the block count buys nothing and would drag the
  // cache capacity (clamped up to the window below) along with it.
  window_ = std::min(window_, std::max<std::size_t>(1, backend_->num_blocks()));
  // The cache must hold at least the prefetch window, or the pipeline
  // would evict blocks it just decoded before the reader reaches them.
  cache_capacity_ = std::max(options_.cache_blocks, window_);
  // Construction is single-threaded; the lock satisfies the analysis
  // (init() runs outside the constructor-body exemption).
  util::MutexLock lock(mutex_);
  health_.assign(backend_->num_blocks(), BlockHealth::kUnknown);
}

DecodeSession::~DecodeSession() {
  util::MutexLock lock(mutex_);
  while (inflight_ != 0) ready_cv_.wait(mutex_);
}

std::uint64_t DecodeSession::tell() const {
  util::MutexLock lock(cursor_mutex_);
  return cursor_;
}

void DecodeSession::seek(std::uint64_t offset) {
  util::MutexLock lock(cursor_mutex_);
  cursor_ = offset;
}

std::size_t DecodeSession::read(MutableByteSpan dst) {
  // The cursor lock is held across the whole read so concurrent read()
  // calls deliver disjoint consecutive ranges (never the same bytes
  // twice). It is distinct from mutex_ — fetch_into takes that one while
  // blocking on decodes — and is only ever acquired before it.
  util::MutexLock lock(cursor_mutex_);
  const std::size_t n = read_impl(cursor_, dst);
  cursor_ += n;
  return n;
}

std::size_t DecodeSession::read_at(std::uint64_t offset, MutableByteSpan dst) {
  return read_impl(offset, dst);
}

Bytes DecodeSession::read_bytes_at(std::uint64_t offset, std::size_t length) {
  // Clamp before allocating: an untrusted range request must produce a
  // short read, not a length-capacity allocation attempt.
  const std::uint64_t total = size();
  const std::size_t n =
      offset >= total ? 0
                      : static_cast<std::size_t>(
                            std::min<std::uint64_t>(length, total - offset));
  Bytes out(n);
  out.resize(read_impl(offset, MutableByteSpan(out.data(), out.size())));
  return out;
}

std::size_t DecodeSession::read_impl(std::uint64_t offset, MutableByteSpan dst) {
  const std::uint64_t total = size();
  if (offset >= total || dst.empty()) return 0;
  serve_obs().reads.add(1);
  obs::StageScope stage("serve_read", "serve", serve_obs().read_latency_us);
  const std::size_t n = static_cast<std::size_t>(
      std::min<std::uint64_t>(dst.size(), total - offset));
  std::size_t done = 0;
  while (done < n) {
    const std::uint64_t off = offset + done;
    const std::size_t b = backend_->block_containing(off);
    const BackendBlock e = backend_->block(b);
    const std::size_t in_block = static_cast<std::size_t>(off - e.uncomp_offset);
    const std::size_t take = std::min<std::size_t>(
        n - done, static_cast<std::size_t>(e.uncomp_size) - in_block);
    fetch_into(b, in_block, take, dst.data() + done);
    done += take;
  }
  return n;
}

std::size_t DecodeSession::read_at_damage_tolerant(std::uint64_t offset,
                                                   MutableByteSpan dst,
                                                   DamageReport* report) {
  const std::uint64_t total = size();
  if (offset >= total || dst.empty()) return 0;
  serve_obs().reads.add(1);
  obs::StageScope stage("serve_read", "serve", serve_obs().read_latency_us);
  const std::size_t n = static_cast<std::size_t>(
      std::min<std::uint64_t>(dst.size(), total - offset));
  std::size_t done = 0;
  while (done < n) {
    const std::uint64_t off = offset + done;
    const std::size_t b = backend_->block_containing(off);
    const BackendBlock e = backend_->block(b);
    const std::size_t in_block = static_cast<std::size_t>(off - e.uncomp_offset);
    const std::size_t take = std::min<std::size_t>(
        n - done, static_cast<std::size_t>(e.uncomp_size) - in_block);

    // Known-damaged fast path: a block that already failed permanently
    // is zero-filled without re-decoding it on every read.
    bool damaged = false;
    ErrorKind kind = ErrorKind::kCorruption;
    std::string message;
    {
      util::MutexLock lock(mutex_);
      if (health_[b] == BlockHealth::kDamaged) {
        damaged = true;
        const auto it = damage_.find(b);
        if (it != damage_.end()) {
          kind = it->second.kind;
          message = it->second.message;
        }
      }
    }
    if (!damaged) {
      try {
        fetch_into(b, in_block, take, dst.data() + done);
        done += take;
        continue;
      } catch (const Error& err) {
        // Config-class errors are API misuse, not data damage — degrade
        // only on typed failures (permanent damage, or an IoError that
        // already survived the whole RetryPolicy inside decode_task).
        if (err.kind() == ErrorKind::kConfig) throw;
        kind = err.kind();
        message = err.what();
      }
    }
    std::memset(dst.data() + done, 0, take);
    bump(counters_.degraded_reads, serve_obs().degraded_reads);
    bump(counters_.bytes_zero_filled, serve_obs().bytes_zero_filled, take);
    if (report != nullptr) {
      report->extents.push_back(
          DamagedExtent{off, take, b, kind, std::move(message)});
    }
    done += take;
  }
  return n;
}

DamageReport DecodeSession::verify_archive() {
  DamageReport report;
  Bytes scratch;
  for (std::size_t b = 0; b < backend_->num_blocks(); ++b) {
    const BackendBlock e = backend_->block(b);
    scratch.resize(static_cast<std::size_t>(e.uncomp_size));
    read_at_damage_tolerant(e.uncomp_offset,
                            MutableByteSpan(scratch.data(), scratch.size()),
                            &report);
  }
  return report;
}

BlockHealth DecodeSession::block_health(std::size_t b) const {
  util::MutexLock lock(mutex_);
  check(b < health_.size(), "serve: block index out of range");
  return health_[b];
}

void DecodeSession::schedule_locked(std::uint64_t first,
                                    std::vector<std::uint64_t>& to_run) {
  const std::uint64_t end_block = backend_->num_blocks();
  // Subtractive window bound: `first + window_` could wrap for an absurd
  // max_inflight_blocks (e.g. CLI --inflight -1 wrapping through stoul)
  // and turn the demanded block's scheduling into a livelock.
  for (std::uint64_t b = first; b < end_block && b - first < window_; ++b) {
    if (slots_.find(b) != slots_.end()) continue;
    // The demanded block is always scheduled; lookahead stops at the
    // in-flight cap (the pipeline's backpressure).
    if (b != first && inflight_ >= window_) break;
    slots_.emplace(b, std::make_shared<Slot>());
    ++inflight_;
    to_run.push_back(b);
  }
}

// The lock juggling through the reference parameter is invisible to the
// thread-safety analysis (see the declaration); callers hold mutex_ on
// entry and get it back on return.
void DecodeSession::dispatch(util::MutexLock& lock,
                             const std::vector<std::uint64_t>& to_run,
                             std::uint64_t demanded) NO_THREAD_SAFETY_ANALYSIS {
  if (to_run.empty()) return;
  // The demanded block is demand-driven work even when a pool worker
  // runs it (the reader is about to block on it); only the lookahead
  // beyond it is prefetch. schedule_locked puts the demanded block
  // first when it schedules it at all.
  const std::size_t demand = to_run.front() == demanded ? 1 : 0;
  if (demand != 0) bump(counters_.demand_decodes, serve_obs().demand_decodes);
  if (to_run.size() > demand) {
    bump(counters_.prefetch_decodes, serve_obs().prefetch_decodes,
         to_run.size() - demand);
  }
  lock.unlock();
  for (const std::uint64_t b : to_run) {
    if (async_) {
      pool_->submit([this, b] { decode_task(b); });
    } else {
      decode_task(b);
    }
  }
  lock.lock();
}

void DecodeSession::fetch_into(std::uint64_t block, std::size_t begin,
                               std::size_t len, std::uint8_t* out) {
  util::MutexLock lock(mutex_);
  std::vector<std::uint64_t> to_run;
  schedule_locked(block, to_run);
  const bool scheduled_here =
      !to_run.empty() && to_run.front() == block;
  dispatch(lock, to_run, block);
  bool first_look = true;
  while (true) {
    const auto it = slots_.find(block);
    if (it == slots_.end()) {
      // Evicted between completion and consumption (possible only under
      // heavy concurrent random access) — schedule it again.
      to_run.clear();
      schedule_locked(block, to_run);
      dispatch(lock, to_run, block);
      first_look = false;
      continue;
    }
    const std::shared_ptr<Slot> slot = it->second;
    if (slot->state == Slot::State::kReady) {
      if (first_look && !scheduled_here)
        bump(counters_.cache_hits, serve_obs().cache_hits);
      lru_.erase(slot->lru_it);
      lru_.push_front(block);
      slot->lru_it = lru_.begin();
      bump(counters_.bytes_delivered, serve_obs().bytes_delivered, len);
      // Pin the slot and copy outside the lock: a block-sized memcpy
      // under mutex_ would serialize concurrent readers and stall every
      // decode task trying to publish. Eviction skips slots with
      // waiters != 0, so the buffer cannot be released mid-copy.
      ++slot->waiters;
      lock.unlock();
      std::memcpy(out, slot->data.data() + begin, len);
      lock.lock();
      --slot->waiters;
      return;
    }
    if (slot->state == Slot::State::kFailed) {
      // Failure is delivered, not cached: drop the slot (once no other
      // reader is still draining it) so a later read retries the block —
      // a transient I/O error must not poison the session for its
      // lifetime, and failed slots must not accumulate. A stale failure
      // from a lookahead decode this reader never observed (neither
      // scheduled nor waited on) gets one transparent retry first, so a
      // fault that already cleared does not abort an unrelated read;
      // the retry's own failure is delivered (first_look is false then),
      // which bounds it to one attempt.
      if (first_look && !scheduled_here) {
        if (slot->waiters != 0) {
          // Other readers are still draining the failed slot (woken but
          // not yet past their decrement). The retry is deferred, not
          // skipped: wait for the last of them to drop the slot instead
          // of rethrowing an error this reader never observed.
          while (true) {
            const auto cur = slots_.find(block);
            if (cur == slots_.end() || cur->second != slot ||
                slot->waiters == 0) {
              break;
            }
            ready_cv_.wait(mutex_);
          }
          continue;
        }
        slots_.erase(block);
        to_run.clear();
        schedule_locked(block, to_run);
        dispatch(lock, to_run, block);
        first_look = false;
        continue;
      }
      // Copy the failure record out of the slot before dropping it, then
      // raise a FRESH exception: delivering one shared exception object
      // to concurrent readers races its destruction (see Slot).
      const bool typed = slot->error_typed;
      const ErrorKind kind = slot->error_kind;
      const std::string what = slot->error_what;
      const std::exception_ptr error = slot->error;
      if (slot->waiters == 0) {
        slots_.erase(block);
        // A deferred-retry reader may be waiting for this drain.
        ready_cv_.notify_all();
      }
      if (typed) throw_error(kind, what);
      std::rethrow_exception(error);
    }
    ++slot->waiters;
    bump(counters_.decode_waits, serve_obs().decode_waits);
    while (slot->state == Slot::State::kScheduled) ready_cv_.wait(mutex_);
    --slot->waiters;
    first_look = false;
  }
}

void DecodeSession::backoff_sleep(std::uint64_t us) {
  if (options_.sleep_hook) {
    options_.sleep_hook(us);
  } else if (us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
}

void DecodeSession::decode_task(std::uint64_t block) {
  // Transient (IoError) failures from the source read or the decode are
  // retried here with capped exponential backoff, so a fault that clears
  // is invisible to every reader; permanent errors (corruption, format)
  // publish immediately — retrying would reproduce them byte-for-byte.
  const RetryPolicy& policy = options_.retry;
  std::uint64_t slept_us = 0;
  for (std::size_t attempt = 1;; ++attempt) {
    // Failure record for this attempt; typed failures never keep the
    // exception object itself (see Slot::error_typed).
    bool typed = false;
    ErrorKind kind = ErrorKind::kConfig;
    std::string what;
    std::exception_ptr untyped;
    try {
      const BackendBlock e = backend_->block(static_cast<std::size_t>(block));
      util::PooledBuffer out =
          buffers_->acquire(static_cast<std::size_t>(e.uncomp_size));
      // The backend draws its compressed staging from buffers_ too and
      // returns it before this call publishes, so the memory-bound
      // witness sees the same peak the old inline decode had.
      backend_->decode_block(static_cast<std::size_t>(block), *source_,
                             *buffers_, out.span());

      util::MutexLock lock(mutex_);
      health_[static_cast<std::size_t>(block)] = BlockHealth::kGood;
      damage_.erase(block);
      Slot& slot = *slots_.at(block);
      slot.data = std::move(out);
      slot.state = Slot::State::kReady;
      --inflight_;
      ++ready_count_;
      bump(counters_.blocks_decoded, serve_obs().blocks_decoded);
      lru_.push_front(block);
      slot.lru_it = lru_.begin();
      evict_excess_locked();
      // Notify while holding the lock: the destructor tears the session
      // down as soon as inflight_ hits zero, so the cv must not be touched
      // from the unlocked tail of a task.
      ready_cv_.notify_all();
      return;
    } catch (const Error& e) {
      // Classify by type, never by message: only the Error hierarchy
      // carries a kind; anything else (bad_alloc, logic_error) is
      // unclassified and published as-is, unretried.
      typed = true;
      kind = e.kind();
      what = e.what();
    } catch (const std::exception& e) {
      untyped = std::current_exception();
      what = e.what();
    } catch (...) {
      untyped = std::current_exception();
      what = "unknown decode failure";
    }

    if (kind == ErrorKind::kIo) {
      // Jittered (seeded, per-block salt) so concurrent tasks tripping
      // over the same fault burst do not retry in lockstep; the jittered
      // value also charges the deadline, which therefore stays exact.
      const std::uint64_t backoff = policy.jittered_backoff_us(attempt + 1, block);
      const bool within_deadline =
          policy.deadline_us == 0 || slept_us + backoff <= policy.deadline_us;
      const bool retry = attempt < policy.max_attempts && within_deadline;
      bump(counters_.transient_errors, serve_obs().transient_errors);
      if (retry) bump(counters_.retries, serve_obs().retries);
      if (retry) {
        backoff_sleep(backoff);
        slept_us += backoff;
        continue;
      }
    }

    util::MutexLock lock(mutex_);
    if (kind == ErrorKind::kCorruption || kind == ErrorKind::kFormat) {
      bump(counters_.permanent_errors, serve_obs().permanent_errors);
      health_[static_cast<std::size_t>(block)] = BlockHealth::kDamaged;
      damage_[block] = BlockDamage{kind, what};
    }
    Slot& slot = *slots_.at(block);
    slot.state = Slot::State::kFailed;
    slot.error_typed = typed;
    slot.error_kind = kind;
    slot.error_what = std::move(what);
    slot.error = untyped;
    --inflight_;
    bump(counters_.decode_failures, serve_obs().decode_failures);
    ready_cv_.notify_all();
    return;
  }
}

void DecodeSession::evict_excess_locked() {
  while (ready_count_ > cache_capacity_) {
    // Oldest evictable block (no reader waiting on it).
    auto it = lru_.end();
    bool evicted = false;
    while (it != lru_.begin()) {
      --it;
      const std::uint64_t victim = *it;
      if (slots_.at(victim)->waiters == 0) {
        slots_.erase(victim);
        lru_.erase(it);
        --ready_count_;
        bump(counters_.evictions, serve_obs().evictions);
        evicted = true;
        break;
      }
    }
    if (!evicted) break;  // every ready block has a waiter — overshoot
  }
}

SessionStats DecodeSession::stats() const {
  // Lock-free snapshot: each field is one relaxed atomic load, so this
  // never stalls a decode task and never observes a torn counter.
  const AtomicCounters& c = counters_;
  const auto load = [](const std::atomic<std::uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  SessionStats s;
  s.blocks_decoded = load(c.blocks_decoded);
  s.cache_hits = load(c.cache_hits);
  s.demand_decodes = load(c.demand_decodes);
  s.prefetch_decodes = load(c.prefetch_decodes);
  s.decode_waits = load(c.decode_waits);
  s.decode_failures = load(c.decode_failures);
  s.evictions = load(c.evictions);
  s.bytes_delivered = load(c.bytes_delivered);
  s.retries = load(c.retries);
  s.transient_errors = load(c.transient_errors);
  s.permanent_errors = load(c.permanent_errors);
  s.degraded_reads = load(c.degraded_reads);
  s.bytes_zero_filled = load(c.bytes_zero_filled);
  s.pool = buffers_->stats();
  return s;
}

}  // namespace gompresso::serve
