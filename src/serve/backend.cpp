#include "serve/backend.hpp"

#include <vector>

#include "core/block_decode.hpp"
#include "util/thread_annotations.hpp"

namespace gompresso::serve {
namespace {

/// Native-container backend: the GMPZ-specific half of the old
/// DecodeSession decode task. Holds the SeekIndex, the per-segment
/// strategy table, and a free list of BlockDecodeContext arenas shared
/// by all concurrent decode_block() calls.
class GmpzBackend final : public ContainerBackend {
 public:
  GmpzBackend(SeekIndex index, const BackendDecodeOptions& options)
      : index_(std::move(index)), options_(options) {
    // Per-segment strategy, resolved once: a stream may mix DE and
    // non-DE segments, and an explicit DE request must be validated
    // against every segment before the first decode.
    DecompressOptions dopt;
    dopt.auto_strategy = options_.auto_strategy;
    dopt.strategy = options_.strategy;
    segment_strategy_.reserve(index_.num_segments());
    for (std::size_t s = 0; s < index_.num_segments(); ++s) {
      segment_strategy_.push_back(
          core::resolve_strategy(dopt, index_.segment_header(s)));
    }
  }

  const char* kind_name() const override {
    return index_.is_stream() ? "gmps" : "gmpz";
  }
  std::uint64_t total_uncompressed() const override {
    return index_.total_uncompressed();
  }
  std::uint64_t source_size() const override { return index_.source_size(); }
  std::uint64_t compressed_end() const override { return index_.compressed_end(); }
  std::size_t num_blocks() const override { return index_.num_blocks(); }

  BackendBlock block(std::size_t b) const override {
    const BlockEntry& e = index_.block(b);
    return BackendBlock{e.uncomp_offset, e.uncomp_size, e.comp_offset,
                        e.comp_size};
  }

  std::size_t block_containing(std::uint64_t offset) const override {
    return index_.block_containing(offset);
  }

  void decode_block(std::size_t b, ByteSource& source,
                    util::BufferPool& buffers, MutableByteSpan out) override {
    const BlockEntry& e = index_.block(b);
    check(out.size() == e.uncomp_size, "serve: decode_block output size mismatch");
    util::PooledBuffer comp =
        buffers.acquire(static_cast<std::size_t>(e.comp_size));
    source.read_at(e.comp_offset, comp.span());
    std::unique_ptr<core::BlockDecodeContext> ctx = pop_context();
    try {
      core::decode_block_at(index_.segment_header(e.segment), comp.cspan(), out,
                            segment_strategy_[e.segment],
                            options_.verify_checksums, *ctx,
                            /*lane_pool=*/nullptr);
    } catch (...) {
      push_context(std::move(ctx));
      throw;
    }
    push_context(std::move(ctx));
  }

  const SeekIndex* seek_index() const override { return &index_; }

 private:
  std::unique_ptr<core::BlockDecodeContext> pop_context() EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    if (free_contexts_.empty()) {
      return std::make_unique<core::BlockDecodeContext>();
    }
    auto ctx = std::move(free_contexts_.back());
    free_contexts_.pop_back();
    return ctx;
  }

  void push_context(std::unique_ptr<core::BlockDecodeContext> ctx)
      EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    free_contexts_.push_back(std::move(ctx));
  }

  const SeekIndex index_;
  const BackendDecodeOptions options_;
  std::vector<Strategy> segment_strategy_;

  util::Mutex mutex_;
  std::vector<std::unique_ptr<core::BlockDecodeContext>> free_contexts_
      GUARDED_BY(mutex_);
};

}  // namespace

std::shared_ptr<ContainerBackend> make_gmpz_backend(
    SeekIndex index, const BackendDecodeOptions& options) {
  return std::make_shared<GmpzBackend>(std::move(index), options);
}

}  // namespace gompresso::serve
