// Deterministic fault injection for the serve plane.
//
// FaultInjectingByteSource wraps any ByteSource with a seeded FaultPlan:
// transient read failures (fail attempts 1..k at an offset, then
// succeed), bit-flips and zero-fills over chosen extents (persistent —
// they model damaged media, so every read of the extent sees them),
// short reads, and injected latency. The same plan replays identically
// run-to-run, which is what lets the chaos soak, the degraded-mode
// bench gate, and `gomp --inject-faults` all share one harness.
//
// Everything transient throws gompresso::IoError (the retriable class);
// corruptions silently alter the delivered bytes, so damage is caught
// exactly where production would catch it — the per-block CRC.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "serve/byte_source.hpp"
#include "util/rng.hpp"
#include "util/thread_annotations.hpp"

namespace gompresso::serve {

/// One scripted fault. A read matches when `offset` is kAnyOffset, when
/// it starts exactly at `offset` (length == 0 — the "fail the prefetch
/// of block N" form), or when its byte range intersects
/// [offset, offset + length).
struct FaultSpec {
  enum class Kind : std::uint8_t {
    kTransient,  // matching reads throw IoError, `count` times, then clear
    kShortRead,  // matching reads fill a prefix of dst then throw IoError
    kFlip,       // bytes in the extent are XORed with `mask` (persistent)
    kZeroFill,   // bytes in the extent read back as zero (persistent)
    kLatency,    // matching reads are delayed `delay_us` (count 0 = always)
  };
  static constexpr std::uint64_t kAnyOffset = ~0ull;

  Kind kind = Kind::kTransient;
  std::uint64_t offset = kAnyOffset;
  std::uint64_t length = 0;
  std::uint64_t count = 1;     // remaining occurrences (kTransient/kShortRead;
                               // kLatency: 0 = every matching read)
  std::uint8_t mask = 0x40;    // kFlip XOR mask (must be nonzero)
  std::uint64_t delay_us = 0;  // kLatency

  static FaultSpec transient_at(std::uint64_t offset, std::uint64_t count = 1) {
    FaultSpec f;
    f.kind = Kind::kTransient;
    f.offset = offset;
    f.count = count;
    return f;
  }
  static FaultSpec transient_any(std::uint64_t count) {
    return transient_at(kAnyOffset, count);
  }
  static FaultSpec short_read_at(std::uint64_t offset, std::uint64_t count = 1) {
    FaultSpec f;
    f.kind = Kind::kShortRead;
    f.offset = offset;
    f.count = count;
    return f;
  }
  static FaultSpec flip(std::uint64_t offset, std::uint64_t length,
                        std::uint8_t mask = 0x40) {
    FaultSpec f;
    f.kind = Kind::kFlip;
    f.offset = offset;
    f.length = length;
    f.mask = mask;
    return f;
  }
  static FaultSpec zero_fill(std::uint64_t offset, std::uint64_t length) {
    FaultSpec f;
    f.kind = Kind::kZeroFill;
    f.offset = offset;
    f.length = length;
    return f;
  }
  static FaultSpec latency(std::uint64_t delay_us, std::uint64_t offset = kAnyOffset,
                           std::uint64_t count = 0) {
    FaultSpec f;
    f.kind = Kind::kLatency;
    f.offset = offset;
    f.count = count;
    f.delay_us = delay_us;
    return f;
  }
};

/// A reproducible fault schedule: scripted faults plus an optional
/// seeded random transient-failure rate.
///
/// Random transients are per-offset bursts: when a read's offset first
/// triggers (probability `transient_rate`), that offset fails exactly
/// `transient_burst` consecutive attempts, then succeeds and becomes
/// immune. With burst < RetryPolicy::max_attempts this makes "every
/// transient fault is absorbed by retries" a deterministic property,
/// not a probabilistic one — the invariant the chaos soak asserts.
struct FaultPlan {
  std::vector<FaultSpec> faults;
  double transient_rate = 0.0;
  std::uint64_t transient_burst = 1;
  std::uint64_t seed = 1;
  std::uint64_t latency_us = 0;  // fixed delay added to every read

  /// Parses the `--inject-faults` CLI grammar (comma-separated items):
  ///   transient@OFF[:COUNT]   transient@*:COUNT      short@OFF[:COUNT]
  ///   flip@OFF+LEN[:MASK]     zero@OFF+LEN
  ///   rate=P  burst=K  seed=N  latency=US
  /// Offsets/counts are decimal; MASK is decimal or 0x-hex. Throws
  /// gompresso::Error on a malformed spec.
  static FaultPlan parse(const std::string& spec);
};

struct FaultStats {
  std::uint64_t reads = 0;
  std::uint64_t transient_failures = 0;  // IoErrors thrown (scripted + random)
  std::uint64_t short_reads = 0;
  std::uint64_t corrupted_reads = 0;     // reads with at least one byte altered
  std::uint64_t delayed_reads = 0;
};

/// ByteSource decorator executing a FaultPlan. Thread-safe: read_at may
/// be called concurrently (fault bookkeeping is under one mutex; the
/// wrapped source's read runs outside it).
class FaultInjectingByteSource final : public ByteSource {
 public:
  explicit FaultInjectingByteSource(std::unique_ptr<ByteSource> inner,
                                    FaultPlan plan = {});

  std::uint64_t size() const override { return inner_->size(); }
  void read_at(std::uint64_t offset, MutableByteSpan dst) override EXCLUDES(mutex_);

  /// Arms another fault on a live source (e.g. after the session's
  /// index scan, so open succeeds and only block reads fault).
  void inject(FaultSpec fault) EXCLUDES(mutex_);
  /// Arms (or re-seeds) the random transient plan on a live source.
  void set_random_transients(double rate, std::uint64_t burst, std::uint64_t seed)
      EXCLUDES(mutex_);
  /// Disarms every scripted fault and the random plan.
  void clear_faults() EXCLUDES(mutex_);

  FaultStats stats() const EXCLUDES(mutex_);

 private:
  std::unique_ptr<ByteSource> inner_;
  mutable util::Mutex mutex_;
  FaultPlan plan_ GUARDED_BY(mutex_);  // counts mutate as faults fire
  Rng rng_ GUARDED_BY(mutex_);
  std::unordered_map<std::uint64_t, std::uint64_t> armed_
      GUARDED_BY(mutex_);  // offset -> fails left
  std::unordered_set<std::uint64_t> cleared_
      GUARDED_BY(mutex_);  // offsets done failing (immune)
  FaultStats stats_ GUARDED_BY(mutex_);
};

}  // namespace gompresso::serve
