// Streaming decode sessions: bounded-memory incremental decompression.
//
// A DecodeSession opens a container (native GMPZ/GMPS, or a foreign
// format like gzip) through a ByteSource and serves
// read()/seek()/read_at() with memory bounded by the decode window and
// cache — independent of file size:
//
//   peak pooled bytes <= (max_inflight_blocks + cache capacity + 1)
//                        x (block_size + max compressed block size)
//
// Internally a ContainerBackend (serve/backend.hpp) maps uncompressed
// offsets to compressed block extents and decodes one block at a time;
// a pipelined prefetcher keeps a sliding window of max_inflight_blocks
// decode tasks in flight on the ThreadPool: sequential reads submit the
// next window of blocks before blocking on the first, so decode overlaps
// delivery (the rapidgzip pattern). Decoded blocks land in pooled buffers
// tracked by an LRU cache, so random-access re-reads are cache hits.
// Backpressure is the in-flight cap itself: no new block is scheduled
// while max_inflight_blocks decodes are pending, and the pool's bounded
// task queue backstops even that.
//
// Thread safety: read_at() may be called from many threads concurrently
// (each concurrent reader adds at most one demanded block beyond the
// window to the bound above). read()/seek()/tell() share one cursor
// serialized by a dedicated lock held across the whole read, so
// concurrent read() calls deliver disjoint consecutive ranges; which
// thread gets which range is whatever order the scheduler picks.
#pragma once

#include <atomic>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/backend.hpp"
#include "serve/byte_source.hpp"
#include "serve/seek_index.hpp"
#include "util/buffer_pool.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace gompresso::serve {

/// Retry discipline for transient (IoError) failures inside a decode
/// task: capped exponential backoff with seeded multiplicative jitter —
/// attempt k starts from min(base_backoff_us << (k-1), max_backoff_us)
/// and scales it by a factor drawn deterministically from
/// (jitter_seed, salt, attempt) in [1-jitter, 1+jitter). Seeding keeps
/// fault plans replayable (same seed, same sleeps) while the salt —
/// callers pass the block index, and the serve daemon folds a
/// per-connection id into jitter_seed — de-synchronizes retry storms
/// when many tasks hit the same fault burst at once. Permanent errors
/// (CorruptionError, FormatError) are never retried; classification is
/// by type, never by message string.
struct RetryPolicy {
  /// Total attempts per block (1 = no retry).
  std::size_t max_attempts = 3;
  std::uint64_t base_backoff_us = 500;
  std::uint64_t max_backoff_us = 50 * 1000;
  /// Cumulative backoff budget per block; once sleeping would exceed it
  /// the transient error surfaces even with attempts left. 0 = no cap.
  std::uint64_t deadline_us = 0;
  /// Jitter amplitude as a fraction of the exponential backoff: the
  /// sleep is drawn from [backoff*(1-jitter), backoff*(1+jitter)).
  /// 0 disables jitter (exact ladder); clamped to [0, 1].
  double jitter = 0.25;
  /// Seed for the jitter draw. Fixed default so runs replay; vary it to
  /// de-correlate independent retry streams.
  std::uint64_t jitter_seed = 0x676F6D707A6A6974ull;  // "gompzjit"

  /// Backoff before retry attempt `attempt` (2-based: the sleep between
  /// attempt-1 and attempt), without jitter.
  std::uint64_t backoff_us(std::size_t attempt) const {
    const unsigned shift = attempt >= 2 ? static_cast<unsigned>(attempt - 2) : 0;
    const std::uint64_t uncapped =
        shift >= 63 ? max_backoff_us : base_backoff_us << shift;
    return std::min(uncapped, max_backoff_us);
  }

  /// backoff_us(attempt) scaled by the deterministic jitter factor for
  /// (jitter_seed, salt, attempt).
  std::uint64_t jittered_backoff_us(std::size_t attempt,
                                    std::uint64_t salt) const;
};

struct SessionOptions {
  /// Sliding window of blocks decoded ahead of the reader (including the
  /// block being read). With spawned pool workers this is the prefetch
  /// pipeline depth; without them decode happens on the calling thread
  /// and the window is effectively 1.
  std::size_t max_inflight_blocks = 4;
  /// Decoded-block LRU capacity. Rounded up to max_inflight_blocks so
  /// the prefetch window can never thrash its own output.
  std::size_t cache_blocks = 8;
  /// Worker threads for the prefetch pipeline; 0 = shared default pool,
  /// 1 = decode inline on the calling thread.
  std::size_t num_threads = 0;
  bool verify_checksums = true;
  /// Strategy selection, as in DecompressOptions (auto picks DE for
  /// DE-compressed segments).
  bool auto_strategy = true;
  Strategy strategy = Strategy::kMultiRound;
  /// Transient-failure retry discipline for source reads + block decode.
  RetryPolicy retry;
  /// Test seam: replaces the real backoff sleep. Called with the backoff
  /// in microseconds; null = std::this_thread::sleep_for. Must be
  /// callable from pool workers concurrently.
  std::function<void(std::uint64_t)> sleep_hook;
  /// Shared decode pool. When set it overrides num_threads entirely —
  /// the serve daemon runs every per-connection session on one pool so
  /// concurrency is bounded by the pool, not by the connection count.
  /// Must outlive the session. nullptr = honor num_threads.
  ThreadPool* pool = nullptr;
  /// Shared buffer pool (same motivation: one memory-bound witness for
  /// all sessions). Must outlive the session. nullptr = own pool.
  util::BufferPool* buffer_pool = nullptr;
};

/// One uncompressed range a damage-tolerant read could not reproduce
/// (zero-filled in the output instead).
struct DamagedExtent {
  std::uint64_t offset = 0;  // uncompressed
  std::uint64_t length = 0;
  std::size_t block = 0;     // seek-index block the damage lives in
  ErrorKind kind = ErrorKind::kCorruption;
  std::string message;
};

/// What a best-effort read or an archive scan could not recover.
struct DamageReport {
  std::vector<DamagedExtent> extents;
  bool clean() const { return extents.empty(); }
  std::uint64_t damaged_bytes() const {
    std::uint64_t total = 0;
    for (const DamagedExtent& e : extents) total += e.length;
    return total;
  }
};

/// Decode health of one block, tracked across the session's lifetime.
enum class BlockHealth : std::uint8_t {
  kUnknown = 0,  // never decoded
  kGood,         // decoded (and CRC-verified, if enabled) at least once
  kDamaged,      // failed with a permanent error — will not be retried
};

struct SessionStats {
  std::uint64_t blocks_decoded = 0;   // decode tasks completed
  std::uint64_t cache_hits = 0;       // reads served from an already-decoded block
  std::uint64_t demand_decodes = 0;   // blocks a reader demanded (and waited on)
  std::uint64_t prefetch_decodes = 0; // lookahead blocks decoded ahead of demand
  std::uint64_t decode_waits = 0;     // reader blocked on an in-flight block
  std::uint64_t decode_failures = 0;  // decode tasks that ended in an error
  std::uint64_t evictions = 0;        // decoded blocks dropped by the LRU
  std::uint64_t bytes_delivered = 0;
  std::uint64_t retries = 0;           // backoff retries after transient errors
  std::uint64_t transient_errors = 0;  // IoError observations (incl. retried-away)
  std::uint64_t permanent_errors = 0;  // corruption/format decode failures
  std::uint64_t degraded_reads = 0;    // damage-tolerant reads that zero-filled
  std::uint64_t bytes_zero_filled = 0; // bytes substituted for damaged data
  util::BufferPool::Stats pool;       // the memory-bound witness (bench_serve)
};

class DecodeSession {
 public:
  /// Opens `source` through `backend` — the one constructor every open
  /// path funnels into (gompresso::open() picks the backend by sniffing
  /// the source). Throws FormatError if the backend's block table was
  /// built from a source of a different size.
  DecodeSession(std::unique_ptr<ByteSource> source,
                std::shared_ptr<ContainerBackend> backend,
                SessionOptions options = {});

  /// Deprecated shim (native containers only): scans `source` and
  /// builds a GMPZ backend from the session options. Prefer
  /// gompresso::open(), which also handles foreign formats and
  /// sidecars; kept so existing callers compile unchanged.
  explicit DecodeSession(std::unique_ptr<ByteSource> source,
                         SessionOptions options = {});

  /// Deprecated shim (native containers only): wraps a pre-built
  /// SeekIndex (e.g. SeekIndex::load()) in a GMPZ backend. Prefer
  /// gompresso::open() with OpenOptions::sidecar_path.
  DecodeSession(std::unique_ptr<ByteSource> source, SeekIndex index,
                SessionOptions options = {});

  /// Blocks until every in-flight prefetch task has finished.
  ~DecodeSession();

  DecodeSession(const DecodeSession&) = delete;
  DecodeSession& operator=(const DecodeSession&) = delete;

  /// Total uncompressed size.
  std::uint64_t size() const { return backend_->total_uncompressed(); }

  /// Sequential read at the session cursor; advances it. Returns the
  /// number of bytes produced — short only at end of data, 0 at or past
  /// the end. Prefetches the upcoming window.
  std::size_t read(MutableByteSpan dst) EXCLUDES(cursor_mutex_);

  /// Positional read, cursor untouched; same return convention. Decoded
  /// blocks stay in the LRU, so re-reads of warm ranges do not decode.
  std::size_t read_at(std::uint64_t offset, MutableByteSpan dst);

  /// Convenience: positional read returning the bytes (shorter than
  /// `length` only at end of data).
  Bytes read_bytes_at(std::uint64_t offset, std::size_t length);

  /// Best-effort positional read: like read_at(), but a block whose
  /// decode fails permanently (CorruptionError/FormatError — or an
  /// IoError that survived the whole RetryPolicy) is zero-filled
  /// instead of thrown, and the unrecoverable ranges are appended to
  /// `report` (when given). Every byte outside a damaged block is
  /// exact. Returns the same short-only-at-EOF count as read_at().
  std::size_t read_at_damage_tolerant(std::uint64_t offset, MutableByteSpan dst,
                                      DamageReport* report = nullptr);

  /// Scrubs the whole archive: decodes every block (damage-tolerantly,
  /// through the cache) and returns the ranges that cannot be served.
  /// This is `gomp verify`.
  DamageReport verify_archive();

  /// Decode health of block `b`, as observed so far (kUnknown until a
  /// read or scan touches the block).
  BlockHealth block_health(std::size_t b) const EXCLUDES(mutex_);

  /// Moves the sequential cursor. Offsets past the end are allowed;
  /// subsequent read() calls return 0 there.
  void seek(std::uint64_t offset) EXCLUDES(cursor_mutex_);
  std::uint64_t tell() const EXCLUDES(cursor_mutex_);

  /// Backend-neutral block table accessors.
  std::size_t num_blocks() const { return backend_->num_blocks(); }
  BackendBlock block_extent(std::size_t b) const { return backend_->block(b); }
  std::uint64_t compressed_end() const { return backend_->compressed_end(); }

  const ContainerBackend& backend() const { return *backend_; }

  /// Native SeekIndex accessor — valid only for GMPZ/GMPS-backed
  /// sessions (throws for foreign-format backends). Prefer the
  /// backend-neutral accessors above; kept for sidecar workflows and
  /// existing callers.
  const SeekIndex& index() const {
    const SeekIndex* idx = backend_->seek_index();
    check(idx != nullptr, "serve: session backend has no native seek index");
    return *idx;
  }

  /// Coherent snapshot of the session's counters. Each field is an
  /// atomic relaxed load — no lock, so readers and decode tasks are
  /// never stalled by stats polling, and no counter can be observed
  /// mid-update (the old struct copy read fields one by one while tasks
  /// mutated them). Cross-field invariants settle once in-flight work
  /// quiesces. Every counter is also mirrored into the process-wide
  /// obs registry under `serve.*`.
  SessionStats stats() const;

 private:
  struct Slot {
    enum class State { kScheduled, kReady, kFailed };
    State state = State::kScheduled;
    util::PooledBuffer data;            // valid when kReady
    // Failure record, valid when kFailed (delivered to current waiters,
    // then dropped so a later read retries the block). A classified
    // failure is stored as (kind, message) and re-raised as a FRESH
    // exception per delivery — publishing one exception_ptr to many
    // readers makes concurrent rethrows share the object (libstdc++),
    // racing its destruction against virtual kind() calls. Only
    // unclassified exceptions (bad_alloc, logic_error) keep the
    // exception_ptr, at single-delivery fidelity.
    bool error_typed = false;
    ErrorKind error_kind = ErrorKind::kConfig;
    std::string error_what;
    std::exception_ptr error;           // unclassified failures only
    int waiters = 0;                    // readers blocked on or pinning this
                                        // block (eviction skips pinned slots)
    std::list<std::uint64_t>::iterator lru_it{};  // valid when kReady
  };

  struct BlockDamage {
    ErrorKind kind = ErrorKind::kCorruption;
    std::string message;
  };

  /// SessionStats' counters as relaxed atomics: decode tasks and
  /// readers bump them lock-free, stats() loads them without mutex_.
  struct AtomicCounters {
    std::atomic<std::uint64_t> blocks_decoded{0};
    std::atomic<std::uint64_t> cache_hits{0};
    std::atomic<std::uint64_t> demand_decodes{0};
    std::atomic<std::uint64_t> prefetch_decodes{0};
    std::atomic<std::uint64_t> decode_waits{0};
    std::atomic<std::uint64_t> decode_failures{0};
    std::atomic<std::uint64_t> evictions{0};
    std::atomic<std::uint64_t> bytes_delivered{0};
    std::atomic<std::uint64_t> retries{0};
    std::atomic<std::uint64_t> transient_errors{0};
    std::atomic<std::uint64_t> permanent_errors{0};
    std::atomic<std::uint64_t> degraded_reads{0};
    std::atomic<std::uint64_t> bytes_zero_filled{0};
  };

  void init();
  void backoff_sleep(std::uint64_t us);
  std::size_t read_impl(std::uint64_t offset, MutableByteSpan dst)
      EXCLUDES(mutex_);
  void fetch_into(std::uint64_t block, std::size_t begin, std::size_t len,
                  std::uint8_t* out) EXCLUDES(mutex_);
  void schedule_locked(std::uint64_t first, std::vector<std::uint64_t>& to_run)
      REQUIRES(mutex_);
  // Drops and reacquires `lock` (which guards mutex_) around the task
  // submissions. The analysis cannot follow a capability through a
  // reference parameter, so the definition opts out; callers are still
  // checked against the REQUIRES.
  void dispatch(util::MutexLock& lock, const std::vector<std::uint64_t>& to_run,
                std::uint64_t demanded) REQUIRES(mutex_);
  void decode_task(std::uint64_t block) EXCLUDES(mutex_);
  void evict_excess_locked() REQUIRES(mutex_);

  std::unique_ptr<ByteSource> source_;
  std::shared_ptr<ContainerBackend> backend_;
  SessionOptions options_;

  std::unique_ptr<ThreadPool> own_pool_;
  ThreadPool* pool_ = nullptr;  // nullptr = always decode inline
  bool async_ = false;          // pool_ has spawned workers
  std::size_t window_ = 1;      // effective max_inflight_blocks
  std::size_t cache_capacity_ = 0;

  util::BufferPool own_buffers_;
  util::BufferPool* buffers_ = &own_buffers_;  // options_.buffer_pool if set

  /// Serializes the sequential cursor (read/seek/tell). Always acquired
  /// before mutex_, never while holding it.
  mutable util::Mutex cursor_mutex_ ACQUIRED_BEFORE(mutex_);

  mutable util::Mutex mutex_;
  util::CondVar ready_cv_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Slot>> slots_
      GUARDED_BY(mutex_);
  std::list<std::uint64_t> lru_ GUARDED_BY(mutex_);  // ready, most recent first
  std::size_t inflight_ GUARDED_BY(mutex_) = 0;     // slots in kScheduled state
  std::size_t ready_count_ GUARDED_BY(mutex_) = 0;  // slots in kReady state
  std::uint64_t cursor_ GUARDED_BY(cursor_mutex_) = 0;
  AtomicCounters counters_;
  std::vector<BlockHealth> health_ GUARDED_BY(mutex_);  // per block
  std::unordered_map<std::uint64_t, BlockDamage> damage_
      GUARDED_BY(mutex_);  // kDamaged blocks
};

}  // namespace gompresso::serve
