#include "obs/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "obs/trace.hpp"
#include "util/common.hpp"

namespace gompresso::obs {
namespace {

std::atomic<std::uint64_t> g_next_registry_id{1};

const char* kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "counter";
}

}  // namespace

thread_local std::uint64_t Registry::tls_registry_id_;
thread_local std::atomic<std::uint64_t>* Registry::tls_slots_;

Registry::Registry() : id_(g_next_registry_id.fetch_add(1)) {}

Registry::~Registry() = default;

std::atomic<std::uint64_t>* Registry::slots_slow() {
  auto shard = std::make_unique<Shard>();
  std::atomic<std::uint64_t>* slots = shard->slots.data();
  {
    util::MutexLock lock(mutex_);
    shards_.push_back(std::move(shard));
  }
  // Cache for this thread. A stale entry for a destroyed registry can
  // never match: ids are process-unique and never reused. Publish the
  // slots pointer before the id: slots_fast() keys on the id.
  tls_slots_ = slots;
  tls_registry_id_ = id_;
  return slots;
}

std::uint32_t Registry::register_metric(std::string_view name,
                                        std::string_view unit, MetricKind kind,
                                        std::uint32_t width) {
  util::MutexLock lock(mutex_);
  for (const Descriptor& d : descriptors_) {
    if (d.name == name) {
      check(d.kind == kind, "obs: metric re-registered with different kind");
      return d.slot;
    }
  }
  std::uint32_t slot = 0;
  if (kind == MetricKind::kGauge) {
    check(next_gauge_ < kMaxGauges, "obs: gauge budget exhausted");
    slot = next_gauge_++;
  } else {
    check(next_slot_ + width <= kMaxSlots, "obs: metric slot budget exhausted");
    slot = next_slot_;
    next_slot_ += width;
  }
  descriptors_.push_back(Descriptor{std::string(name), std::string(unit), kind,
                                    slot, width});
  return slot;
}

Counter Registry::counter(std::string_view name, std::string_view unit) {
  return Counter(this, register_metric(name, unit, MetricKind::kCounter, 1));
}

Gauge Registry::gauge(std::string_view name, std::string_view unit) {
  return Gauge(this, register_metric(name, unit, MetricKind::kGauge, 0));
}

Histogram Registry::histogram(std::string_view name, std::string_view unit) {
  return Histogram(
      this, register_metric(name, unit, MetricKind::kHistogram,
                            static_cast<std::uint32_t>(kHistogramBuckets) + 1));
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  util::MutexLock lock(mutex_);
  snap.metrics.reserve(descriptors_.size());
  for (const Descriptor& d : descriptors_) {
    MetricValue mv;
    mv.name = d.name;
    mv.unit = d.unit;
    mv.kind = d.kind;
    switch (d.kind) {
      case MetricKind::kCounter: {
        std::uint64_t total = 0;
        for (const auto& sh : shards_)
          total += sh->slots[d.slot].load(std::memory_order_relaxed);
        mv.value = total;
        break;
      }
      case MetricKind::kGauge:
        mv.gauge = gauges_[d.slot].load(std::memory_order_relaxed);
        break;
      case MetricKind::kHistogram: {
        for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
          std::uint64_t total = 0;
          for (const auto& sh : shards_)
            total += sh->slots[d.slot + b].load(std::memory_order_relaxed);
          mv.hist.buckets[b] = total;
        }
        std::uint64_t sum = 0;
        for (const auto& sh : shards_)
          sum += sh->slots[d.slot + kHistogramBuckets].load(
              std::memory_order_relaxed);
        mv.hist.sum = sum;
        break;
      }
    }
    snap.metrics.push_back(std::move(mv));
  }
  return snap;
}

void Registry::reset() {
  util::MutexLock lock(mutex_);
  for (const auto& sh : shards_)
    for (auto& slot : sh->slots) slot.store(0, std::memory_order_relaxed);
  for (auto& g : gauges_) g.store(0, std::memory_order_relaxed);
}

std::uint64_t HistogramData::percentile(double p) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  const double target = static_cast<double>(n) * p / 100.0;
  std::uint64_t cumulative = 0;
  std::size_t last = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    if (buckets[i] == 0) continue;
    cumulative += buckets[i];
    last = i;
    if (static_cast<double>(cumulative) >= target)
      return histogram_bucket_upper(i);
  }
  return histogram_bucket_upper(last);
}

const MetricValue* MetricsSnapshot::find(std::string_view name) const {
  for (const MetricValue& m : metrics)
    if (m.name == name) return &m;
  return nullptr;
}

std::uint64_t MetricsSnapshot::counter(std::string_view name) const {
  const MetricValue* m = find(name);
  if (m == nullptr) return 0;
  if (m->kind == MetricKind::kGauge)
    return m->gauge > 0 ? static_cast<std::uint64_t>(m->gauge) : 0;
  return m->value;
}

namespace {

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out += buf;
}

}  // namespace

std::string MetricsSnapshot::to_json() const {
  std::string out = "[";
  bool first = true;
  for (const MetricValue& m : metrics) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    append_json_string(out, m.name);
    out += ",\"kind\":\"";
    out += kind_name(m.kind);
    out += "\",\"unit\":";
    append_json_string(out, m.unit);
    switch (m.kind) {
      case MetricKind::kCounter:
        out += ",\"value\":";
        append_u64(out, m.value);
        break;
      case MetricKind::kGauge:
        out += ",\"value\":";
        append_i64(out, m.gauge);
        break;
      case MetricKind::kHistogram: {
        out += ",\"count\":";
        append_u64(out, m.hist.count());
        out += ",\"sum\":";
        append_u64(out, m.hist.sum);
        out += ",\"p50\":";
        append_u64(out, m.hist.percentile(50.0));
        out += ",\"p99\":";
        append_u64(out, m.hist.percentile(99.0));
        out += ",\"buckets\":[";
        for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
          if (b != 0) out += ',';
          append_u64(out, m.hist.buckets[b]);
        }
        out += ']';
        break;
      }
    }
    out += '}';
  }
  out += ']';
  return out;
}

Registry& registry() {
  static Registry instance;
  return instance;
}

MetricsSnapshot metrics_snapshot() { return registry().snapshot(); }

void ensure_initialized() {
  registry();
  Tracer::instance();
}

}  // namespace gompresso::obs
