#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace gompresso::obs {
namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Tracer::Tracer() : epoch_ns_(steady_now_ns()) {}

Tracer& Tracer::instance() {
  static Tracer instance;
  return instance;
}

std::uint64_t Tracer::now_ns() const { return steady_now_ns() - epoch_ns_; }

Tracer::Ring& Tracer::ring() {
  static thread_local Ring* tls_ring = nullptr;
  if (tls_ring != nullptr) return *tls_ring;
  auto ring = std::make_unique<Ring>(0);
  Ring* r = ring.get();
  {
    util::MutexLock lock(mutex_);
    r->tid = static_cast<std::uint32_t>(rings_.size());
    rings_.push_back(std::move(ring));
  }
  tls_ring = r;
  return *r;
}

void Tracer::start() {
  util::MutexLock lock(mutex_);
  for (const auto& r : rings_) {
    // publishes: the cleared ring (count 0 truncates any stale events);
    // pairs-with: the acquire load of count in collect().
    r->count.store(0, std::memory_order_release);
    r->dropped.store(0, std::memory_order_relaxed);
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::stop() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::record(const char* name, const char* category,
                    std::uint64_t start_ns, std::uint64_t dur_ns) {
  Ring& r = ring();
  const std::uint32_t n = r.count.load(std::memory_order_relaxed);
  if (n >= kRingCapacity) {
    r.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  r.events[n] = TraceEvent{name, category, start_ns, dur_ns, r.tid};
  // publishes: the event just written to slot n (single-writer ring);
  // pairs-with: the acquire load of count in collect().
  r.count.store(n + 1, std::memory_order_release);
}

std::vector<TraceEvent> Tracer::collect() const {
  std::vector<TraceEvent> out;
  {
    util::MutexLock lock(mutex_);
    for (const auto& r : rings_) {
      // pairs-with: the release stores of count in record() and start()
      // — slots below n are fully written before n became visible.
      const std::uint32_t n = r->count.load(std::memory_order_acquire);
      out.insert(out.end(), r->events.begin(), r->events.begin() + n);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_ns < b.start_ns;
            });
  return out;
}

std::uint64_t Tracer::dropped() const {
  util::MutexLock lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& r : rings_)
    total += r->dropped.load(std::memory_order_relaxed);
  return total;
}

std::string Tracer::chrome_json() const {
  const std::vector<TraceEvent> events = collect();

  std::uint32_t max_tid = 0;
  for (const TraceEvent& e : events) max_tid = std::max(max_tid, e.tid);

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[256];
  bool first = true;
  if (!events.empty()) {
    for (std::uint32_t t = 0; t <= max_tid; ++t) {
      std::snprintf(buf, sizeof buf,
                    "%s{\"ph\":\"M\",\"pid\":1,\"tid\":%" PRIu32
                    ",\"name\":\"thread_name\",\"args\":{\"name\":\"gomp-%"
                    PRIu32 "\"}}",
                    first ? "" : ",", t, t);
      out += buf;
      first = false;
    }
  }
  for (const TraceEvent& e : events) {
    // ts/dur in microseconds, fractional part preserved.
    std::snprintf(buf, sizeof buf,
                  "%s{\"ph\":\"X\",\"pid\":1,\"tid\":%" PRIu32
                  ",\"name\":\"%s\",\"cat\":\"%s\",\"ts\":%.3f,\"dur\":%.3f}",
                  first ? "" : ",", e.tid, e.name, e.category,
                  static_cast<double>(e.start_ns) / 1000.0,
                  static_cast<double>(e.dur_ns) / 1000.0);
    out += buf;
    first = false;
  }
  out += "]}";
  return out;
}

bool Tracer::write_chrome_trace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string json = chrome_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace gompresso::obs
