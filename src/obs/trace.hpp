// Span-based pipeline tracer: per-thread lock-free ring buffers of
// (stage, thread, t_start, t_end) events, exported as Chrome
// `trace_event` JSON (loadable in chrome://tracing and Perfetto).
//
// Each thread records into its own fixed-capacity ring — single-writer,
// so record() is a relaxed count load, a plain slot store, and one
// release store of the new count. The collector acquire-loads each
// ring's count and reads only below it, so collection is race-free
// without ever blocking a recording thread. When a ring fills, further
// events on that thread are counted as dropped, never blocked.
//
// Tracing is off by default; TraceSpan costs one relaxed load when
// disabled. start()/stop() must not race in-flight spans (the CLI and
// tests start tracing before submitting work and stop after the
// session/pool has quiesced).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "util/thread_annotations.hpp"

namespace gompresso::obs {

struct TraceEvent {
  const char* name = nullptr;      // static-storage stage name
  const char* category = nullptr;  // static-storage category
  std::uint64_t start_ns = 0;      // steady time since tracer epoch
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;  // dense per-thread id (ring registration order)
};

class Tracer {
 public:
  /// Events retained per thread before drops begin (64 KiB/ring).
  static constexpr std::size_t kRingCapacity = 1 << 14;

  static Tracer& instance();

  /// Clears all rings and begins recording.
  void start() EXCLUDES(mutex_);
  /// Stops recording; rings keep their contents for collect().
  void stop();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Steady-clock nanoseconds since the tracer's epoch (process start).
  std::uint64_t now_ns() const;

  /// Appends one complete span to the calling thread's ring. `name` and
  /// `category` must have static storage duration.
  void record(const char* name, const char* category, std::uint64_t start_ns,
              std::uint64_t dur_ns);

  /// Merged copy of every ring, sorted by start time. Call after stop()
  /// (or after all recording threads have quiesced).
  std::vector<TraceEvent> collect() const EXCLUDES(mutex_);

  /// Events lost to full rings since the last start().
  std::uint64_t dropped() const EXCLUDES(mutex_);

  /// Chrome trace_event JSON ("X" complete events, µs timestamps, one
  /// named thread track per ring).
  std::string chrome_json() const;

  /// Writes chrome_json() to `path`. Returns false on I/O failure.
  bool write_chrome_trace(const std::string& path) const;

 private:
  struct Ring {
    explicit Ring(std::uint32_t tid_in) : events(kRingCapacity), tid(tid_in) {}
    std::vector<TraceEvent> events;
    std::atomic<std::uint32_t> count{0};
    std::atomic<std::uint64_t> dropped{0};
    std::uint32_t tid;
  };

  Tracer();
  // Calling thread's ring, registered on first use (cold path locks).
  Ring& ring() EXCLUDES(mutex_);

  const std::uint64_t epoch_ns_;
  std::atomic<bool> enabled_{false};
  mutable util::Mutex mutex_;  // ring list
  // The list is guarded; each Ring's slots are single-writer (owning
  // thread) with a release-store count that collect() acquire-loads.
  std::vector<std::unique_ptr<Ring>> rings_ GUARDED_BY(mutex_);
};

/// RAII span: stamps start at construction when tracing is enabled,
/// records on destruction. Zero-cost (one relaxed load) when disabled.
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* category)
      : name_(name), category_(category) {
    Tracer& t = Tracer::instance();
    if (t.enabled()) {
      active_ = true;
      start_ns_ = t.now_ns();
    }
  }
  ~TraceSpan() {
    if (active_) {
      Tracer& t = Tracer::instance();
      t.record(name_, category_, start_ns_, t.now_ns() - start_ns_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  const char* category_;
  std::uint64_t start_ns_ = 0;
  bool active_ = false;
};

/// Times one pipeline stage: records a latency histogram sample (in µs,
/// when metrics are enabled) and a trace span (when tracing is
/// enabled). With both planes off this is two relaxed loads.
class StageScope {
 public:
  StageScope(const char* name, const char* category, const Histogram& hist)
      : name_(name), category_(category), hist_(hist) {
    Tracer& t = Tracer::instance();
    tracing_ = t.enabled();
    timing_ = tracing_ || registry().enabled();
    if (timing_) start_ns_ = t.now_ns();
  }
  ~StageScope() {
    if (!timing_) return;
    Tracer& t = Tracer::instance();
    const std::uint64_t dur_ns = t.now_ns() - start_ns_;
    hist_.record(dur_ns / 1000);  // no-op if the registry is disabled
    if (tracing_) t.record(name_, category_, start_ns_, dur_ns);
  }
  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  const char* name_;
  const char* category_;
  Histogram hist_;
  std::uint64_t start_ns_ = 0;
  bool tracing_ = false;
  bool timing_ = false;
};

}  // namespace gompresso::obs
