// Process-wide metrics registry: counters, gauges, and fixed-bucket
// histograms with lock-free per-thread shards merged on snapshot.
//
// Design mirrors the arena philosophy of the decode path: registration
// (cold, mutex-guarded) hands out light value-type handles; the hot
// path — Counter::add(), Histogram::record() — is an enabled-flag load,
// a thread-local shard lookup, and one relaxed fetch_add into a
// pre-sized atomic slot array. No mutex, no allocation, no false
// sharing between workers in steady state. snapshot() merges every
// shard under the registration mutex and returns a plain-value
// MetricsSnapshot that can be serialized to JSON.
//
// Shards are owned by the Registry and are never freed before it, so
// counts survive thread exit. The thread-local shard cache is keyed by
// a process-unique registry id, so a Registry dying (tests construct
// short-lived ones) can never alias a stale cache entry onto a new
// Registry at a reused address.
//
// Handles must not outlive their Registry. For the process-wide
// obs::registry() singleton that is automatic; code that may run during
// static destruction (e.g. a static ThreadPool draining its queue)
// calls obs::ensure_initialized() from its constructor so the registry
// is constructed first and therefore destroyed last.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/thread_annotations.hpp"

namespace gompresso::obs {

class Registry;

/// Power-of-two latency/size buckets: bucket 0 holds the value 0,
/// bucket i (1 <= i < kHistogramBuckets-1) holds [2^(i-1), 2^i), and
/// the last bucket is the overflow tail [2^(kHistogramBuckets-2), inf).
inline constexpr std::size_t kHistogramBuckets = 32;

inline std::size_t histogram_bucket(std::uint64_t v) {
  const std::size_t w = static_cast<std::size_t>(std::bit_width(v));
  return w < kHistogramBuckets ? w : kHistogramBuckets - 1;
}

/// Inclusive lower bound of bucket `i`.
inline std::uint64_t histogram_bucket_lower(std::size_t i) {
  return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
}

/// Inclusive upper bound of bucket `i` (the overflow tail reports its
/// lower bound: there is no meaningful ceiling to quote).
inline std::uint64_t histogram_bucket_upper(std::size_t i) {
  if (i == 0) return 0;
  if (i >= kHistogramBuckets - 1) return histogram_bucket_lower(i);
  return (std::uint64_t{1} << i) - 1;
}

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// Monotonic counter. add() is the single-relaxed-atomic-add hot path.
class Counter {
 public:
  Counter() = default;
  inline void add(std::uint64_t n) const;
  void inc() const { add(1); }

 private:
  friend class Registry;
  Counter(Registry* reg, std::uint32_t slot) : reg_(reg), slot_(slot) {}
  Registry* reg_ = nullptr;
  std::uint32_t slot_ = 0;
};

/// Up/down instantaneous value (queue depth, worker occupancy). Backed
/// by one shared atomic — not sharded, because a gauge's point-in-time
/// reading must not be split across shards. Update sites are block- or
/// task-granularity, so the shared cache line is acceptable.
class Gauge {
 public:
  Gauge() = default;
  inline void add(std::int64_t delta) const;
  inline void set(std::int64_t v) const;

 private:
  friend class Registry;
  Gauge(Registry* reg, std::uint32_t slot) : reg_(reg), slot_(slot) {}
  Registry* reg_ = nullptr;
  std::uint32_t slot_ = 0;
};

/// Fixed-bucket log2 histogram (latencies in µs, sizes in bytes).
/// record() is two relaxed adds: the bucket slot and the running sum.
class Histogram {
 public:
  Histogram() = default;
  inline void record(std::uint64_t v) const;

 private:
  friend class Registry;
  Histogram(Registry* reg, std::uint32_t slot) : reg_(reg), slot_(slot) {}
  Registry* reg_ = nullptr;
  std::uint32_t slot_ = 0;  // base of kHistogramBuckets bucket slots + 1 sum slot
};

struct HistogramData {
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
  std::uint64_t sum = 0;

  std::uint64_t count() const {
    std::uint64_t n = 0;
    for (std::uint64_t b : buckets) n += b;
    return n;
  }
  double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(n);
  }
  /// Upper-bound estimate of the p-th percentile (0 < p <= 100): the
  /// bucket ceiling of the first bucket whose cumulative count reaches
  /// p% of the total. 0 when empty.
  std::uint64_t percentile(double p) const;
};

struct MetricValue {
  std::string name;
  std::string unit;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t value = 0;  // counter total
  std::int64_t gauge = 0;   // gauge reading
  HistogramData hist;       // histogram contents
};

struct MetricsSnapshot {
  std::vector<MetricValue> metrics;

  const MetricValue* find(std::string_view name) const;
  /// Counter total (or gauge reading clamped at 0) by name; 0 if absent.
  std::uint64_t counter(std::string_view name) const;
  /// Serializes the whole snapshot as a JSON array of metric objects.
  std::string to_json() const;
};

class Registry {
 public:
  /// Slot budget per shard: every counter takes 1 slot, every histogram
  /// kHistogramBuckets+1. One shard is ~8 KiB of atomics.
  static constexpr std::size_t kMaxSlots = 1024;
  static constexpr std::size_t kMaxGauges = 64;

  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Registration is idempotent by name: re-registering returns a handle
  /// to the existing metric (the kind must match). Throws gompresso::
  /// Error when the slot budget is exhausted or a name is reused with a
  /// different kind.
  Counter counter(std::string_view name, std::string_view unit = "");
  Gauge gauge(std::string_view name, std::string_view unit = "");
  Histogram histogram(std::string_view name, std::string_view unit = "");

  /// Disabling turns every handle operation into a single relaxed load
  /// + branch (the bench's metrics-off lane). Enabled by default.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Merges all shards into plain values. Safe to call concurrently
  /// with hot-path updates (relaxed reads — each counter is internally
  /// consistent; cross-counter invariants settle once writers quiesce).
  MetricsSnapshot snapshot() const EXCLUDES(mutex_);

  /// Zeroes every shard slot and gauge. Test/bench seam; callers must
  /// quiesce writers for an exact zero.
  void reset() EXCLUDES(mutex_);

  // -- hot-path plumbing (public for the inline handle methods) --------
  void counter_add(std::uint32_t slot, std::uint64_t n) {
    if (!enabled()) return;
    slots_fast()[slot].fetch_add(n, std::memory_order_relaxed);
  }
  void histogram_record(std::uint32_t slot, std::uint64_t v) {
    if (!enabled()) return;
    std::atomic<std::uint64_t>* s = slots_fast();
    s[slot + histogram_bucket(v)].fetch_add(1, std::memory_order_relaxed);
    s[slot + kHistogramBuckets].fetch_add(v, std::memory_order_relaxed);
  }
  void gauge_add(std::uint32_t slot, std::int64_t delta) {
    if (!enabled()) return;
    gauges_[slot].fetch_add(delta, std::memory_order_relaxed);
  }
  void gauge_set(std::uint32_t slot, std::int64_t v) {
    if (!enabled()) return;
    gauges_[slot].store(v, std::memory_order_relaxed);
  }

 private:
  struct Shard {
    std::array<std::atomic<std::uint64_t>, kMaxSlots> slots{};
  };
  struct Descriptor {
    std::string name;
    std::string unit;
    MetricKind kind;
    std::uint32_t slot;    // shard slot base (counters/histograms), or
                           // gauge index (gauges)
    std::uint32_t width;   // shard slots consumed
  };

  /// Thread-local shard cache, keyed by registry id. Two primitive
  /// zero-initialized thread_locals (not a struct with initializers):
  /// constant-initialized TLS needs no per-thread init wrapper, so the
  /// hit path is a plain TLS load + compare that folds into
  /// counter_add's single-add fast path under optimization (a wrapped
  /// dynamic-init TLS also trips UBSan's null-member check at -O1).
  static thread_local std::uint64_t tls_registry_id_;
  static thread_local std::atomic<std::uint64_t>* tls_slots_;

  std::atomic<std::uint64_t>* slots_fast() {
    if (tls_registry_id_ == id_) return tls_slots_;
    return slots_slow();
  }
  // Registers this thread's shard (cold; the only mutex on the path).
  std::atomic<std::uint64_t>* slots_slow() EXCLUDES(mutex_);

  std::uint32_t register_metric(std::string_view name, std::string_view unit,
                                MetricKind kind, std::uint32_t width)
      EXCLUDES(mutex_);

  const std::uint64_t id_;
  std::atomic<bool> enabled_{true};
  mutable util::Mutex mutex_;  // registration, shard list, snapshot
  std::vector<Descriptor> descriptors_ GUARDED_BY(mutex_);
  std::uint32_t next_slot_ GUARDED_BY(mutex_) = 0;
  std::uint32_t next_gauge_ GUARDED_BY(mutex_) = 0;
  // The vector itself (growth, element pointers) is guarded; the atomic
  // slot arrays the elements own are updated lock-free through the TLS
  // cache and read with relaxed loads by snapshot().
  std::vector<std::unique_ptr<Shard>> shards_ GUARDED_BY(mutex_);
  std::array<std::atomic<std::int64_t>, kMaxGauges> gauges_{};
};

inline void Counter::add(std::uint64_t n) const {
  if (reg_ != nullptr) reg_->counter_add(slot_, n);
}
inline void Gauge::add(std::int64_t delta) const {
  if (reg_ != nullptr) reg_->gauge_add(slot_, delta);
}
inline void Gauge::set(std::int64_t v) const {
  if (reg_ != nullptr) reg_->gauge_set(slot_, v);
}
inline void Histogram::record(std::uint64_t v) const {
  if (reg_ != nullptr) reg_->histogram_record(slot_, v);
}

/// The process-wide registry every pipeline stage reports into.
Registry& registry();

/// Public API: one coherent snapshot of the process-wide registry.
MetricsSnapshot metrics_snapshot();

/// Forces construction of the process-wide registry (and tracer) so
/// they outlive the caller's static. See the header comment.
void ensure_initialized();

}  // namespace gompresso::obs
