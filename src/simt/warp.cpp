#include "simt/warp.hpp"

#include <algorithm>

namespace gompresso::simt {

void WarpMetrics::record_round(std::uint64_t round, std::uint64_t bytes,
                               std::uint64_t refs) {
  if (round == 0) return;
  if (bytes_per_round.size() < round) bytes_per_round.resize(round, 0);
  if (refs_per_round.size() < round) refs_per_round.resize(round, 0);
  bytes_per_round[round - 1] += bytes;
  refs_per_round[round - 1] += refs;
}

void WarpMetrics::merge(const WarpMetrics& other) {
  groups += other.groups;
  rounds += other.rounds;
  ballots += other.ballots;
  shuffles += other.shuffles;
  max_rounds_in_group = std::max(max_rounds_in_group, other.max_rounds_in_group);
  if (bytes_per_round.size() < other.bytes_per_round.size()) {
    bytes_per_round.resize(other.bytes_per_round.size(), 0);
  }
  for (std::size_t i = 0; i < other.bytes_per_round.size(); ++i) {
    bytes_per_round[i] += other.bytes_per_round[i];
  }
  if (refs_per_round.size() < other.refs_per_round.size()) {
    refs_per_round.resize(other.refs_per_round.size(), 0);
  }
  for (std::size_t i = 0; i < other.refs_per_round.size(); ++i) {
    refs_per_round[i] += other.refs_per_round[i];
  }
}

}  // namespace gompresso::simt
