// SIMT warp execution substrate.
//
// The paper's decompression kernels are warp-synchronous programs: 32
// threads execute in lock step and exchange data with the `ballot` and
// `shfl` instructions (§II-B). No GPU is available in this environment, so
// this module simulates the warp execution model on the CPU: a lane's
// state lives in a LaneArray slot, code between warp-synchronous points
// runs as a plain loop over the active lanes, and the warp primitives
// operate across the arrays with CUDA-equivalent semantics.
//
// Because MRR/DE are *algorithms over the warp model* — their round
// counts and dependency behaviour are independent of the silicon — the
// simulator reproduces the paper's Fig. 9b/9c measurements directly from
// the executed rounds. WarpMetrics records them.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/common.hpp"

namespace gompresso::simt {

inline constexpr unsigned kWarpSize = 32;

/// One value per lane of the warp.
template <typename T>
using LaneArray = std::array<T, kWarpSize>;

/// Bitmask of lanes; bit i corresponds to lane i (CUDA convention: the
/// ballot result is b31*2^31 + ... + b1*2 + b0, paper §II-B).
using LaneMask = std::uint32_t;
inline constexpr LaneMask kFullMask = 0xFFFFFFFFu;

/// Warp-wide vote: returns the mask of active lanes whose predicate is
/// true. Inactive lanes contribute 0 (CUDA __ballot_sync semantics).
inline LaneMask ballot(const LaneArray<bool>& predicate, LaneMask active = kFullMask) {
  LaneMask mask = 0;
  for (unsigned lane = 0; lane < kWarpSize; ++lane) {
    if ((active >> lane) & 1u) {
      mask |= static_cast<LaneMask>(predicate[lane]) << lane;
    }
  }
  return mask;
}

/// Broadcast: every lane receives lane `src_lane`'s value (CUDA __shfl).
template <typename T>
inline T shfl(const LaneArray<T>& values, unsigned src_lane) {
  return values[src_lane % kWarpSize];
}

/// Number of lanes in the completed prefix of a pending-mask: the index of
/// the lowest set bit, i.e. the first still-pending lane. The paper's
/// Fig. 5 line 9 computes this with count_leading_zero_bits under its
/// MSB-first bitmap rendering; with CUDA's LSB-first lane order it is a
/// count of trailing zeros.
inline unsigned completed_prefix(LaneMask pending) {
  if (pending == 0) return kWarpSize;
  return static_cast<unsigned>(std::countr_zero(pending));
}

/// Exclusive prefix sum across lanes using the log2(32)-step shfl_up
/// network ("We use NVIDIA's shuffle instructions to efficiently compute
/// this prefix sum without memory accesses", §III-B). Lane i receives the
/// sum of values[0..i).
template <typename T>
inline LaneArray<T> exclusive_scan(const LaneArray<T>& values) {
  // Inclusive Hillis-Steele scan via shfl_up, then shift right by one.
  LaneArray<T> inclusive = values;
  for (unsigned delta = 1; delta < kWarpSize; delta <<= 1) {
    LaneArray<T> shifted{};
    for (unsigned lane = 0; lane < kWarpSize; ++lane) {
      // shfl_up(value, delta): lane receives lane-delta's value.
      shifted[lane] = lane >= delta ? inclusive[lane - delta] : T{};
    }
    for (unsigned lane = 0; lane < kWarpSize; ++lane) {
      if (lane >= delta) inclusive[lane] = inclusive[lane] + shifted[lane];
    }
  }
  LaneArray<T> exclusive{};
  for (unsigned lane = kWarpSize; lane-- > 1;) exclusive[lane] = inclusive[lane - 1];
  exclusive[0] = T{};
  return exclusive;
}

/// Warp-wide sum (reduction) of per-lane values.
template <typename T>
inline T reduce_sum(const LaneArray<T>& values, LaneMask active = kFullMask) {
  T sum{};
  for (unsigned lane = 0; lane < kWarpSize; ++lane) {
    if ((active >> lane) & 1u) sum = sum + values[lane];
  }
  return sum;
}

/// Execution metrics accumulated by the warp-parallel decompressors.
/// Fig. 9b plots bytes_per_round; Fig. 9c depends on total rounds.
struct WarpMetrics {
  std::uint64_t groups = 0;        // 32-sequence warp groups processed
  std::uint64_t rounds = 0;        // total MRR iterations across groups
  std::uint64_t ballots = 0;       // warp votes executed
  std::uint64_t shuffles = 0;      // broadcast/shfl operations executed
  std::uint64_t max_rounds_in_group = 0;
  std::vector<std::uint64_t> bytes_per_round;  // [r] = bytes resolved in round r+1
  std::vector<std::uint64_t> refs_per_round;   // [r] = back-refs resolved in round r+1

  /// Records `bytes`/`refs` resolved during round `round` (1-based).
  void record_round(std::uint64_t round, std::uint64_t bytes, std::uint64_t refs);

  /// Accumulates another metrics object (per-block metrics -> total).
  void merge(const WarpMetrics& other);

  /// Zeroes every counter while keeping the round vectors' capacity, so
  /// a reused accumulator (the sharded resolver's per-shard slots) stays
  /// allocation-free across blocks.
  void reset() {
    groups = rounds = ballots = shuffles = max_rounds_in_group = 0;
    bytes_per_round.clear();
    refs_per_round.clear();
  }

  /// Average number of resolution rounds per warp group.
  double avg_rounds_per_group() const {
    return groups == 0 ? 0.0 : static_cast<double>(rounds) / static_cast<double>(groups);
  }
};

}  // namespace gompresso::simt
