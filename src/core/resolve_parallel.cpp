#include "core/resolve_parallel.hpp"

#include <thread>

#include "obs/trace.hpp"

namespace gompresso::core {
namespace {

using simt::kWarpSize;

// Sharded-resolve metrics: blocks that actually fanned out, and how
// many back-references each run pushed to the watermark-gated phase B.
struct ResolveObs {
  obs::Counter sharded_blocks =
      obs::registry().counter("resolve.sharded_blocks", "blocks");
  obs::Counter deferrals =
      obs::registry().counter("resolve.deferrals", "refs");
};

ResolveObs& resolve_obs() {
  static ResolveObs instance;
  return instance;
}

/// Watermark value published when a shard fails: above every valid
/// output offset, so parked waiters wake, observe the abort flag via the
/// sentinel, and unwind instead of reading bytes no one will write.
constexpr std::uint64_t kAbortedWatermark = ~std::uint64_t{0};

/// Blocks until the completed watermark covers `target`. Spins briefly
/// (the common DE case resolves within a few groups of the predecessor's
/// tail), then parks on the atomic. Throws when the run was aborted by a
/// failing shard.
void await_watermark(ResolveSync& sync, std::uint64_t target) {
  // pairs-with: the release stores in publish_completion/publish_abort —
  // an acquired watermark >= target makes every byte below it visible.
  std::uint64_t seen = sync.watermark.load(std::memory_order_acquire);
  for (int spin = 0; seen < target && spin < 256; ++spin) {
    if ((spin & 31) == 31) std::this_thread::yield();
    // pairs-with: the release stores in publish_completion/publish_abort.
    seen = sync.watermark.load(std::memory_order_acquire);
  }
  while (seen < target) {
    // pairs-with: the release stores in publish_completion/publish_abort.
    sync.watermark.wait(seen, std::memory_order_acquire);
    // pairs-with: the release stores in publish_completion/publish_abort.
    seen = sync.watermark.load(std::memory_order_acquire);
  }
  check(seen != kAbortedWatermark, "warp_lz77: shard resolution aborted");
}

/// Marks shard `s` complete and advances the watermark over the
/// contiguous completed prefix. The walk runs under the mutex, so the
/// done flags and the cursor stay consistent no matter which shard
/// finishes last; the release store transfers the completed shards'
/// bytes to any waiter that acquires the new watermark.
void publish_completion(ResolvePlan& plan, std::size_t s, std::uint64_t out_size) {
  ResolveSync& sync = *plan.sync;
  {
    util::MutexLock lock(sync.mutex);
    if (sync.aborted) return;  // keep the abort sentinel pinned
    plan.shard_done[s] = 1;
    const std::size_t n_shards = plan.shards.size();
    while (sync.next_shard < n_shards && plan.shard_done[sync.next_shard]) {
      ++sync.next_shard;
    }
    const std::uint64_t wm =
        sync.next_shard < n_shards ? plan.shards[sync.next_shard].out_base : out_size;
    // publishes: every output byte below wm (the contiguous completed
    // shards' writes); pairs-with the acquire loads in await_watermark.
    sync.watermark.store(wm, std::memory_order_release);
  }
  sync.watermark.notify_all();
}

/// Pins the watermark at the abort sentinel so every parked shard wakes
/// and unwinds. The failing shard's own exception propagates through the
/// pool; waiters throw the generic abort error, which the pool discards
/// if the real error was captured first.
void publish_abort(ResolveSync& sync) {
  {
    util::MutexLock lock(sync.mutex);
    sync.aborted = true;
    // publishes: the abort flag (via the sentinel value itself);
    // pairs-with the acquire loads in await_watermark, whose check()
    // turns the sentinel into the unwind path.
    sync.watermark.store(kAbortedWatermark, std::memory_order_release);
  }
  sync.watermark.notify_all();
}

/// Dirty-bitmap granularity: one bit per 2^kDirtyShift output bytes,
/// relative to the shard base.
constexpr unsigned kDirtyShift = 6;

inline void mark_dirty(std::vector<std::uint64_t>& dirty, std::uint64_t base,
                       std::uint64_t begin, std::uint64_t end) {
  for (std::uint64_t g = (begin - base) >> kDirtyShift;
       g <= (end - 1 - base) >> kDirtyShift; ++g) {
    dirty[g >> 6] |= std::uint64_t{1} << (g & 63);
  }
}

/// True when no granule of [begin, end) is dirty. begin >= base and
/// begin < end are the caller's invariants.
inline bool range_clean(const std::vector<std::uint64_t>& dirty, std::uint64_t base,
                        std::uint64_t begin, std::uint64_t end) {
  for (std::uint64_t g = (begin - base) >> kDirtyShift;
       g <= (end - 1 - base) >> kDirtyShift; ++g) {
    if (dirty[g >> 6] & (std::uint64_t{1} << (g & 63))) return false;
  }
  return true;
}

/// Chase-copy for a back-reference whose source interval touches pending
/// (deferred) output: every source byte is chased through the pending
/// list's redirection map — a byte inside a deferred reference's output
/// region has the same value as the corresponding byte of that
/// reference's own source — until it reaches either a clean in-shard
/// byte (copy it now) or the shard base (the whole reference truly
/// depends on an earlier shard: give up, the caller defers it). This is
/// what keeps DE-style streams concurrent: a deferred region only
/// poisons readers whose *transitive* origin crosses the shard base,
/// instead of cascading through the whole shard.
///
/// `pending` holds the shard's deferrals so far, ordered by write
/// position with disjoint intervals; each hop strictly decreases the
/// position, so the walk terminates. Chasing is charged against the
/// shard-wide `budget` (hops remaining): streams whose chains mostly
/// ground inside the shard spend almost nothing, while deep-chain
/// streams — where nearly every chase would cross the base after dozens
/// of hops — drain it quickly and fall back to cheap wholesale deferral
/// instead of paying a failed deep walk per reference.
bool chase_copy(MutableByteSpan out, std::span<const PendingRef> pending,
                const std::vector<std::uint64_t>& dirty, std::uint64_t shard_base,
                std::uint64_t write_pos, std::uint64_t src, std::uint32_t len,
                std::uint64_t& budget) {
  for (std::uint32_t i = 0; i < len; ++i) {
    std::uint64_t p = src + i;
    // p >= write_pos reads the reference's own forward output, written
    // earlier in this loop; the chase below leaves it alone (a shard's
    // own reference is never in `pending`).
    for (int hops = 0;; ++hops) {
      if (p < shard_base) return false;
      // Bitmap prefilter: a clean granule means no pending ref covers p,
      // so the (cold) precise list is only probed for dirty granules —
      // and only while budget remains; once it is spent, dirty bytes
      // defer without touching the list at all.
      if (range_clean(dirty, shard_base, p, p + 1)) break;
      if (hops >= 16 || budget == 0) return false;  // deep chain: defer
      --budget;  // charged per probe, hit or miss
      const auto it = std::partition_point(
          pending.begin(), pending.end(),
          [&](const PendingRef& r) { return r.write_pos + r.len <= p; });
      if (it == pending.end() || it->write_pos > p) break;  // clean byte
      p = (it->write_pos - it->dist) + (p - it->write_pos);
    }
    out[write_pos + i] = out[p];
  }
  return true;
}

/// Phase A: walk the shard's warp groups, write every literal string,
/// copy each back-reference whose source is resolved within the shard,
/// and defer the rest (ordered by write position) to `pending`.
void resolve_shard_immediate(std::span<const lz77::Sequence> sequences,
                             const ResolveShard& shard, const std::uint8_t* literals,
                             MutableByteSpan out, Strategy strategy,
                             std::vector<PendingRef>& pending,
                             std::vector<std::uint64_t>& dirty,
                             simt::WarpMetrics& metrics) {
  std::uint64_t lit_cursor = shard.lit_base;
  std::uint64_t out_cursor = shard.out_base;
  // Chase-work allowance: about a hop per sequence keeps phase A linear
  // even when every chain is adversarially deep; the failure counter
  // below cuts chasing off early when the stream clearly will not pay.
  std::uint64_t chase_budget = shard.seq_end - shard.seq_begin;
  std::uint32_t chase_fails = 0;
  for (std::uint64_t first = shard.seq_begin; first < shard.seq_end;
       first += kWarpSize) {
    const unsigned lanes =
        static_cast<unsigned>(std::min<std::uint64_t>(kWarpSize, shard.seq_end - first));
    const std::uint64_t group_base = out_cursor;

    // Literal phase: all lanes write their strings (plan-stage totals
    // bound the cursors, so these writes stay inside the shard's slice).
    std::uint64_t own_start[kWarpSize];
    std::uint64_t write_pos[kWarpSize];
    for (unsigned lane = 0; lane < lanes; ++lane) {
      const lz77::Sequence& seq = sequences[first + lane];
      if (seq.literal_len != 0) {
        std::memcpy(out.data() + out_cursor, literals + lit_cursor, seq.literal_len);
      }
      lit_cursor += seq.literal_len;
      own_start[lane] = out_cursor;
      out_cursor += seq.literal_len;
      write_pos[lane] = out_cursor;
      out_cursor += seq.match_len;
    }
    metrics.shuffles += 2 * 5;  // the two lane scans

    // Back-reference phase: copy or defer.
    std::uint64_t bytes = 0;
    std::uint64_t refs = 0;
    for (unsigned lane = 0; lane < lanes; ++lane) {
      const lz77::Sequence& seq = sequences[first + lane];
      if (seq.match_len == 0) continue;
      check(seq.match_dist >= 1 && seq.match_dist <= write_pos[lane],
            "warp_lz77: back-reference past start of output");
      const std::uint64_t src = write_pos[lane] - seq.match_dist;
      const std::uint64_t src_end = src + seq.match_len;
      if (strategy == Strategy::kDependencyFree) {
        // Same validation as the serial DE resolver: the source may touch
        // earlier groups' output and this group's literal regions, but
        // never another lane's back-reference output (Fig. 7).
        check(src_end <= group_base || src >= own_start[lane] ||
                  group_part_available(own_start, write_pos, lanes, lane, group_base,
                                       src, src_end),
              "warp_lz77: DE strategy on a stream with intra-group dependencies");
      }
      // The shard's walk is sequential, so every in-shard byte below the
      // write position is already written except the deferred regions:
      // bitmap-clean sources memcpy immediately, dirty ones are chased
      // through the redirection map, and only references whose origin
      // (conservatively, by granule) crosses the shard base defer.
      if (src >= shard.out_base &&
          range_clean(dirty, shard.out_base, src, std::min(src_end, write_pos[lane]))) {
        copy_backref(out.data(), write_pos[lane], src, seq.match_len);
        bytes += seq.match_len;
        ++refs;
      } else if (chase_budget != 0 &&
                 chase_copy(out, pending, dirty, shard.out_base, write_pos[lane], src,
                            seq.match_len, chase_budget)) {
        bytes += seq.match_len;
        ++refs;
      } else {
        pending.push_back({write_pos[lane], seq.match_dist, seq.match_len});
        mark_dirty(dirty, shard.out_base, write_pos[lane],
                   write_pos[lane] + seq.match_len);
        // Adaptive cut: a stream whose chases keep failing has deep
        // chains everywhere — stop paying for probes that end in
        // deferral anyway and fall back to bitmap-only deferral.
        if (++chase_fails > 64) chase_budget = 0;
      }
    }
    ++metrics.groups;
    ++metrics.rounds;
    metrics.record_round(1, bytes, refs);
    metrics.max_rounds_in_group = std::max<std::uint64_t>(metrics.max_rounds_in_group, 1);
  }
  check(out_cursor == shard.out_end, "warp_lz77: shard output size mismatch");
}

/// Phase B: once every byte below the shard base is resolved, sweep the
/// deferred references in write order — the pending list is ordered and
/// everything below a reference's write position (earlier shards, the
/// shard's phase-A output, earlier pending entries) is resolved by the
/// time the sweep reaches it, so one pass suffices.
void resolve_shard_deferred(const ResolveShard& shard,
                            std::span<const PendingRef> pending, MutableByteSpan out,
                            ResolveSync& sync, simt::WarpMetrics& metrics) {
  if (!pending.empty()) {
    await_watermark(sync, shard.out_base);
    std::uint64_t bytes = 0;
    for (const PendingRef& ref : pending) {
      copy_backref(out.data(), ref.write_pos, ref.write_pos - ref.dist, ref.len);
      bytes += ref.len;
    }
    ++metrics.rounds;
    metrics.record_round(2, bytes, pending.size());
    metrics.max_rounds_in_group = std::max<std::uint64_t>(metrics.max_rounds_in_group, 2);
  }
}

}  // namespace

bool resolve_block_sharded(std::span<const lz77::Sequence> sequences,
                           const std::uint8_t* literals, std::size_t literal_count,
                           MutableByteSpan out, Strategy strategy, ResolvePlan& plan,
                           ThreadPool& pool, simt::WarpMetrics* metrics,
                           std::uint64_t* deferrals, const ResolveShardConfig& config) {
  check(strategy != Strategy::kMultiPass,
        "warp_lz77: kMultiPass is handled by mrr_multipass");
  const std::uint64_t n = sequences.size();
  const std::size_t participants = pool.parallelism();
  if (participants <= 1 || n == 0) return false;

  // Shard size: a few shards per participant for load balance, floored
  // so tiny blocks do not pay the handoff overhead, rounded up to whole
  // warp groups so shard boundaries coincide with group boundaries.
  std::uint64_t per =
      std::max<std::uint64_t>(config.min_sequences_per_shard,
                              (n + participants * config.shards_per_participant - 1) /
                                  (participants * config.shards_per_participant));
  per = (per + kWarpSize - 1) / kWarpSize * kWarpSize;
  const std::size_t n_shards = static_cast<std::size_t>((n + per - 1) / per);
  if (n_shards < 2) return false;

  // Grow-only plan tables: shrinking would free the warm per-shard
  // buffers, so past-high-water slots simply sit idle.
  plan.shards.resize(n_shards);
  if (plan.shard_pending.size() < n_shards) plan.shard_pending.resize(n_shards);
  if (plan.shard_dirty.size() < n_shards) plan.shard_dirty.resize(n_shards);
  if (plan.shard_metrics.size() < n_shards) plan.shard_metrics.resize(n_shards);
  if (plan.shard_done.size() < n_shards) plan.shard_done.resize(n_shards);
  if (!plan.sync) plan.sync = std::make_unique<ResolveSync>();

  // Plan: per-shard totals in parallel (stashed in the base fields),
  // then one serial exclusive scan turns them into bases — the
  // prepare_group running-sum discipline at shard granularity.
  pool.parallel_for(n_shards, [&](std::size_t s) {
    ResolveShard& shard = plan.shards[s];
    shard.seq_begin = s * per;
    shard.seq_end = std::min<std::uint64_t>(n, shard.seq_begin + per);
    std::uint64_t lit_total = 0;
    std::uint64_t out_total = 0;
    for (std::uint64_t i = shard.seq_begin; i < shard.seq_end; ++i) {
      const lz77::Sequence& seq = sequences[i];
      lit_total += seq.literal_len;
      out_total += static_cast<std::uint64_t>(seq.literal_len) + seq.match_len;
    }
    shard.lit_base = lit_total;  // scanned into a base below
    shard.out_base = out_total;
  });
  std::uint64_t lit_run = 0;
  std::uint64_t out_run = 0;
  for (std::size_t s = 0; s < n_shards; ++s) {
    ResolveShard& shard = plan.shards[s];
    const std::uint64_t lit_total = shard.lit_base;
    const std::uint64_t out_total = shard.out_base;
    shard.lit_base = lit_run;
    shard.out_base = out_run;
    lit_run += lit_total;
    out_run += out_total;
    shard.out_end = out_run;
  }
  // Validate the block bounds up front, before any thread writes a byte.
  check(out_run == out.size(), "warp_lz77: output size mismatch");
  check(lit_run == literal_count, "warp_lz77: literal count mismatch");

  ResolveSync& sync = *plan.sync;
  sync.watermark.store(0, std::memory_order_relaxed);
  {
    // No shard threads exist yet; the lock is for the analysis, not for
    // a real race — it keeps the guarded reset visible to TSA.
    util::MutexLock lock(sync.mutex);
    sync.next_shard = 0;
    sync.aborted = false;
  }
  for (std::size_t s = 0; s < n_shards; ++s) {
    plan.shard_done[s] = 0;
    plan.shard_metrics[s].reset();
    plan.shard_pending[s].clear();
    const std::uint64_t span = plan.shards[s].out_end - plan.shards[s].out_base;
    plan.shard_dirty[s].assign(((span >> kDirtyShift) >> 6) + 1, 0);
  }

  pool.parallel_for(n_shards, [&](std::size_t s) {
    try {
      const ResolveShard& shard = plan.shards[s];
      {
        // Phase A: immediate copies + dirty-bitmap chase, no cross-shard
        // waits. Phase B below blocks on the completed watermark, so the
        // two spans expose exactly where a shard's time went.
        obs::TraceSpan span("resolve_shardA", "resolve");
        resolve_shard_immediate(sequences, shard, literals, out, strategy,
                                plan.shard_pending[s], plan.shard_dirty[s],
                                plan.shard_metrics[s]);
      }
      if (!plan.shard_pending[s].empty()) {
        obs::TraceSpan span("resolve_shardB", "resolve");
        resolve_shard_deferred(shard, plan.shard_pending[s], out, sync,
                               plan.shard_metrics[s]);
      }
      publish_completion(plan, s, out.size());
    } catch (...) {
      publish_abort(sync);
      throw;
    }
  });

  std::uint64_t deferred = 0;
  for (std::size_t s = 0; s < n_shards; ++s) {
    if (metrics) metrics->merge(plan.shard_metrics[s]);
    deferred += plan.shard_pending[s].size();
  }
  if (deferrals) *deferrals += deferred;
  resolve_obs().sharded_blocks.add(1);
  resolve_obs().deferrals.add(deferred);
  return true;
}

}  // namespace gompresso::core
