// Single-block decode, shared by the batch and streaming paths.
//
// decompress() (whole file in RAM, core/decompressor.cpp) and the serve
// subsystem's DecodeSession (bounded-memory random access,
// serve/decode_session.cpp) decode the same block payloads; this is the
// one implementation both call. A block payload is what the per-block
// size list delimits in Fig. 3: CRC32, mode byte, then the codec body.
#pragma once

#include "core/decode_scratch.hpp"
#include "core/mrr_multipass.hpp"
#include "core/options.hpp"
#include "simt/warp.hpp"
#include "util/common.hpp"
#include "util/thread_pool.hpp"

namespace gompresso::core {

/// Everything one decode participant (pool worker, serve prefetch task)
/// mutates while decoding blocks. Contexts are private to a participant,
/// so block decode needs no locks; accumulated metrics are merged by the
/// owner once at the end.
struct BlockDecodeContext {
  simt::WarpMetrics metrics;
  MultiPassStats multipass;
  DecodeScratch scratch;
  bool scratch_reserved = false;  // arena pre-sized on first block touched
};

/// Resolves the effective strategy for a file: auto picks kDependencyFree
/// for DE-compressed files and kMultiRound otherwise; an explicit
/// kDependencyFree request on a non-DE file throws.
Strategy resolve_strategy(const DecompressOptions& options,
                          const format::FileHeader& header);

/// Decodes one block payload (CRC32 + mode byte + codec body, i.e. the
/// byte range the header's size list assigns to the block) into `out`,
/// which must be sized to the block's uncompressed length. `lane_pool`
/// optionally fans both decode phases of the block out across a pool
/// (single-block files): phase-1 token decode by sub-block lane, and
/// phase-2 LZ77 resolution by warp-group shard with a completed-
/// watermark handoff. Pass nullptr to stay on the calling thread.
void decode_block_at(const format::FileHeader& header, ByteSpan payload_with_crc,
                     MutableByteSpan out, Strategy strategy, bool verify_checksum,
                     BlockDecodeContext& ctx, ThreadPool* lane_pool = nullptr);

}  // namespace gompresso::core
