// The Gompresso compressor: block-parallel LZ77 + entropy stage (§III-A).
#pragma once

#include "core/encode_scratch.hpp"
#include "core/options.hpp"
#include "lz77/parser.hpp"
#include "util/common.hpp"

namespace gompresso {

/// Aggregate statistics from a compression run.
struct CompressStats {
  std::uint64_t input_bytes = 0;
  std::uint64_t output_bytes = 0;
  std::uint64_t blocks = 0;
  lz77::ParseStats parse;
  /// Per-worker encode-scratch reuse counters, merged across workers —
  /// the encode-side mirror of DecompressResult::scratch. In the steady
  /// state blocks == buffer_reuses (no per-block allocations) and
  /// matcher_inits stays at the worker count.
  core::EncodeScratchStats scratch;

  double ratio() const {
    return output_bytes == 0 ? 0.0
                             : static_cast<double>(input_bytes) /
                                   static_cast<double>(output_bytes);
  }
};

/// Compresses `input` into a self-contained Gompresso file.
///
/// The input is split into `options.block_size` blocks that are
/// LZ77-parsed and entropy-coded independently and in parallel; the file
/// header records every block's compressed size so decompression can
/// locate them without scanning (Fig. 3).
Bytes compress(ByteSpan input, const CompressOptions& options = {},
               CompressStats* stats = nullptr);

}  // namespace gompresso
