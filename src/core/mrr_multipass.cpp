#include "core/mrr_multipass.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "core/resolve_common.hpp"
#include "simt/warp.hpp"

namespace gompresso::core {

void resolve_block_multipass(std::span<const lz77::Sequence> sequences,
                             const std::uint8_t* literals, std::size_t literal_count,
                             MutableByteSpan out, MultiPassStats* stats,
                             MultiPassWorkspace* workspace) {
  // Pass 0 ("first kernel"): the warp walks its groups without ever
  // stalling — all 32 lanes of a group run in lock step, write their
  // literal strings, copy the back-references that are resolvable right
  // now, and spill the rest to the (global-memory) worklist. A lane may
  // rely on: output below the gap-free watermark, literal intervals of
  // its *own* group (written in this group's literal phase), and its own
  // forward copy. It may NOT rely on same-group back-reference output
  // (the lanes are concurrent) nor on anything above the first spilled
  // reference (tracking finer-grained availability is the "increased
  // complexity" the paper cites against this variant).
  MultiPassWorkspace local;
  MultiPassWorkspace& ws = workspace ? *workspace : local;
  std::vector<PendingRef>& pending = ws.pending;
  pending.clear();
  std::uint64_t lit_cursor = 0;
  std::uint64_t out_cursor = 0;

  const std::size_t n = sequences.size();
  for (std::size_t first = 0; first < n; first += simt::kWarpSize) {
    const unsigned lanes =
        static_cast<unsigned>(std::min<std::size_t>(simt::kWarpSize, n - first));
    const std::uint64_t group_base = out_cursor;

    // Literal phase: all lanes write their literal strings.
    simt::LaneArray<std::uint64_t> own_start{};
    simt::LaneArray<std::uint64_t> write_pos{};
    for (unsigned lane = 0; lane < lanes; ++lane) {
      const lz77::Sequence& seq = sequences[first + lane];
      check(lit_cursor + seq.literal_len <= literal_count,
            "multipass: literal buffer overrun");
      check(out_cursor + seq.literal_len + seq.match_len <= out.size(),
            "multipass: output overrun");
      std::memcpy(out.data() + out_cursor, literals + lit_cursor, seq.literal_len);
      lit_cursor += seq.literal_len;
      own_start[lane] = out_cursor;
      out_cursor += seq.literal_len;
      write_pos[lane] = out_cursor;
      out_cursor += seq.match_len;
    }

    // Back-reference phase: copy or spill, in lock step. A source
    // interval below the group base is available unless it intersects
    // the output interval of a still-pending earlier reference ("the
    // increased complexity of tracking when a dependency can be
    // resolved"); the in-group part may rely on the group's literal
    // intervals and the lane's own forward copy. Only earlier-group refs
    // live in `pending` during the capped below-base probe — this
    // group's spills land at or above group_base, which the probe never
    // reaches.
    for (unsigned lane = 0; lane < lanes; ++lane) {
      const lz77::Sequence& seq = sequences[first + lane];
      if (seq.match_len == 0) continue;
      check(seq.match_dist >= 1 && seq.match_dist <= write_pos[lane],
            "multipass: back-reference past start of output");
      const std::uint64_t src = write_pos[lane] - seq.match_dist;
      const std::uint64_t src_end = src + seq.match_len;
      const bool resolvable =
          !intersects_pending(pending, src, std::min(src_end, group_base)) &&
          (src_end <= group_base || src >= own_start[lane] ||
           group_part_available(own_start.data(), write_pos.data(), lanes, lane,
                                group_base, src, src_end));
      if (resolvable) {
        copy_backref(out.data(), write_pos[lane], src, seq.match_len);
      } else {
        pending.push_back({write_pos[lane], seq.match_dist, seq.match_len});
      }
    }
  }
  check(out_cursor == out.size(), "multipass: output size mismatch");
  check(lit_cursor == literal_count, "multipass: literal count mismatch");

  if (stats) {
    stats->passes = 1;
    stats->spilled_refs += pending.size();
    stats->spilled_bytes += pending.size() * sizeof(PendingRef);
  }

  // Later passes ("separate kernels"): sweep the worklist in write-
  // position order. Pass 0 appended refs in that order, so during the
  // sweep everything below the first still-unresolved reference is
  // gap-free; unlike MRR, chains are not capped at the warp width and a
  // block-long chain resolves link by link within the sweep. On the GPU
  // this is where the variant loses: every link is a device-memory
  // round-trip (read the spilled ref, check availability, write the
  // copy) instead of a register-resident warp round — the "overhead of
  // writing to and reading from memory, together with the increased
  // complexity of tracking when a dependency can be resolved" that made
  // the paper reject the design. MultiPassStats carries the traffic so
  // the K40 model can charge it.
  std::vector<PendingRef>& next = ws.next;
  while (!pending.empty()) {
    if (stats) ++stats->passes;
    next.clear();
    std::size_t resolved = 0;
    for (const auto& ref : pending) {
      // Gap-free watermark: the first reference that is still unresolved
      // after this sweep's progress so far.
      const std::uint64_t watermark = next.empty() ? ref.write_pos : next.front().write_pos;
      const std::uint64_t src = ref.write_pos - ref.dist;
      const std::uint64_t src_end = src + ref.len;
      // (The lane's literal start is no longer known after the spill —
      // tracking complexity — so the self-overlap clause degrades to
      // write_pos <= watermark.)
      const bool resolvable = src_end <= watermark || ref.write_pos <= watermark;
      if (resolvable) {
        copy_backref(out.data(), ref.write_pos, src, ref.len);
        ++resolved;
      } else {
        next.push_back(ref);
      }
    }
    check(resolved != 0, "multipass: no progress");
    if (stats) {
      stats->spilled_bytes += next.size() * sizeof(PendingRef);  // re-read + re-write
    }
    pending.swap(next);
  }
}

}  // namespace gompresso::core
