// Fused single-lookup decode tables for the bit codec hot path.
//
// The paper's single-lookup tables (§III-B.1) map a peeked bit pattern to
// a token symbol. The fused variant goes one step further (the technique
// rapidgzip uses on CPUs): each packed 32-bit entry also carries the
// pre-decoded DEFLATE bucket parameters, so decoding a match token costs
// one table load instead of the chain
//   lookup -> decode_length() -> length_extra_bits() -> branch.
//
// Packed fused entry layout:
//   bits  0..15  value — literal byte, base match length, or base distance
//   bits 16..19  number of raw extra bits that follow the codeword (0..13)
//   bits 20..23  codeword length to consume (1..15)
//   bits 24..25  token kind (lit/len table only)
//
// A valid entry always has a non-zero codeword length, so the all-zero
// word marks the table holes of an incomplete code (invalid codewords in
// a corrupt stream).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/common.hpp"

namespace gompresso::core {

inline constexpr unsigned kFusedExtraShift = 16;
inline constexpr unsigned kFusedLenShift = 20;
inline constexpr unsigned kFusedKindShift = 24;

/// Token kinds stored in a fused lit/len entry.
inline constexpr std::uint32_t kFusedLiteral = 0;
inline constexpr std::uint32_t kFusedEnd = 1;
inline constexpr std::uint32_t kFusedMatch = 2;
/// Two literals in one entry (value = lit1 | lit2 << 8): built wherever
/// the peeked window fully determines the *next* codeword too and that
/// codeword is also a literal. One load then emits two bytes — the
/// double-literal caching rapidgzip showed pays off on text, where short
/// literal codes leave most of the peek window unused.
inline constexpr std::uint32_t kFusedDoubleLiteral = 3;

constexpr std::uint32_t fused_value(std::uint32_t e) { return e & 0xFFFFu; }
constexpr unsigned fused_extra_bits(std::uint32_t e) {
  return (e >> kFusedExtraShift) & 0xFu;
}
constexpr unsigned fused_code_length(std::uint32_t e) {
  return (e >> kFusedLenShift) & 0xFu;
}
constexpr std::uint32_t fused_kind(std::uint32_t e) { return e >> kFusedKindShift; }

constexpr std::uint32_t pack_fused(std::uint32_t kind, std::uint32_t value,
                                   unsigned extra_bits, unsigned code_length) {
  return value | (static_cast<std::uint32_t>(extra_bits) << kFusedExtraShift) |
         (static_cast<std::uint32_t>(code_length) << kFusedLenShift) |
         (kind << kFusedKindShift);
}

/// The two fused tables of one block, rebuilt in place (the vectors keep
/// their capacity across blocks, so a steady-state rebuild allocates
/// nothing). `tree_bytes` caches the serialized tree section the tables
/// were built from; a byte-exact match lets repeated trees skip the
/// rebuild (an exact compare of ~160 bytes — hashing would risk silent
/// collisions for no speed gain).
struct FusedTables {
  std::vector<std::uint32_t> litlen;
  std::vector<std::uint32_t> offset;
  std::vector<std::uint8_t> tree_bytes;
  unsigned bits = 0;
  bool valid = false;

  /// True when the cached tables were built from exactly these tree
  /// bytes at this table width.
  bool matches(ByteSpan trees, unsigned table_bits) const {
    return valid && bits == table_bits && tree_bytes.size() == trees.size() &&
           std::equal(trees.begin(), trees.end(), tree_bytes.begin());
  }

  /// (Re)builds both tables for codes of at most `table_bits` bits.
  void build(const std::vector<std::uint8_t>& litlen_lengths,
             const std::vector<std::uint8_t>& offset_lengths, unsigned table_bits);
};

}  // namespace gompresso::core
