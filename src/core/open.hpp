// gompresso::open(): format-agnostic session opening.
//
// One call sniffs the container magic (format/sniff.hpp), builds or
// loads the matching ContainerBackend, and returns a ready
// DecodeSession — so every consumer (gomp cat/range/serve/verify, the
// net daemon, decompress_stream's seekable path) gets prefetch, LRU
// caching, retry/backoff, damage-tolerant reads, and serve.* metrics
// regardless of whether the bytes are GMPZ, GMPS, or gzip.
//
// Backend map (who handles what):
//
//   magic                 backend                     seek table
//   ------------------    ------------------------   -------------------------
//   GMPZ / GMPS           serve::make_gmpz_backend    serve::SeekIndex (header
//                                                     scan, "GMPX" sidecar)
//   1F 8B 08 (gzip)       ingest::make_gzip_backend   ingest::GzipIndex
//                                                     (discovered by parallel
//                                                     speculative decode,
//                                                     "GZIX" sidecar)
//
// OpenOptions::sidecar_path points at a checkpointed seek table of
// either flavor; the sidecar's own magic picks the loader, and a
// sidecar of the wrong flavor for the sniffed container is a
// FormatError. With a valid sidecar, open() does no data scan at all —
// reopen cost is proportional to the sidecar, not the stream.
#pragma once

#include <memory>
#include <string>

#include "ingest/gzip_index.hpp"
#include "serve/backend.hpp"
#include "serve/decode_session.hpp"

namespace gompresso {

struct OpenOptions {
  /// Session tuning, passed through to the DecodeSession (and used to
  /// resolve the gzip index-build pool when `gzip.pool` is unset).
  serve::SessionOptions session;
  /// Optional checkpointed seek table ("GMPX" or "GZIX"); empty = scan
  /// the source. A missing file is an error — callers that treat the
  /// sidecar as a cache should stat it first (as `gomp` does).
  std::string sidecar_path;
  /// Gzip index-build tuning. `gzip.pool` defaults to the session's
  /// decode pool resolution: options.session.pool if set, else a pool
  /// sized by options.session.num_threads (0 = the shared default
  /// pool, 1 = sequential).
  ingest::GzipIndexOptions gzip;
};

/// Sniffs `source` and returns the matching backend (shared, so the
/// net daemon can hand one backend to many sessions). Throws
/// FormatError for an unrecognized container.
std::shared_ptr<serve::ContainerBackend> open_backend(
    serve::ByteSource& source, const OpenOptions& options = {});

/// Opens a ready session over `source` (takes ownership).
std::unique_ptr<serve::DecodeSession> open(
    std::unique_ptr<serve::ByteSource> source, const OpenOptions& options = {});

/// Opens a ready session over a file path (pread-backed source).
std::unique_ptr<serve::DecodeSession> open(const std::string& path,
                                           const OpenOptions& options = {});

}  // namespace gompresso
