// Per-worker encode scratch arena — the compression-side sibling of
// DecodeScratch.
//
// compress() is the round-trip bottleneck now that decode runs through
// its scratch arena; this gives the encoder the same discipline. Each
// worker thread owns one EncodeScratch whose buffers — matcher hash/chain
// tables, parsed token block, histograms, package-merge workspace,
// canonical-code storage, fused emit tables, bit writers, tANS models and
// staging buffers — are reused across every block the worker compresses.
// The matcher tables get a cheap generation reset per block (see
// matcher.hpp) instead of a 2^hash_bits fill. After reserve(), a block
// encode performs zero heap allocations; the counters in
// EncodeScratchStats prove it and bench_encode_hotpath asserts on them
// (tests additionally assert with a real allocation-counting hook).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "ans/tans.hpp"
#include "bitstream/bit_writer.hpp"
#include "core/encode_tables.hpp"
#include "huffman/code_builder.hpp"
#include "lz77/matcher.hpp"
#include "lz77/sequence.hpp"

namespace gompresso::core {

/// Reuse counters exposed through CompressStats (mirrors ScratchStats on
/// the decode side).
struct EncodeScratchStats {
  std::uint64_t blocks = 0;         // blocks encoded through a scratch
  std::uint64_t buffer_reuses = 0;  // blocks needing no buffer growth
  std::uint64_t table_builds = 0;   // canonical-code / tANS-model builds
  std::uint64_t matcher_inits = 0;  // matcher table (re)constructions —
                                    // steady state: 1, generation resets
                                    // cover every later block
  std::uint64_t lane_fanouts = 0;   // blocks whose sub-block token coding
                                    // ran thread-parallel

  void merge(const EncodeScratchStats& other) {
    blocks += other.blocks;
    buffer_reuses += other.buffer_reuses;
    table_builds += other.table_builds;
    matcher_inits += other.matcher_inits;
    lane_fanouts += other.lane_fanouts;
  }
};

/// One sub-block's encode-side bookkeeping (the block header's size-list
/// entry). The bit codec fills `bits`; the tans codec fills the two
/// stream sizes.
struct SubblockEnc {
  std::uint64_t bits = 0;           // bit codec: compressed size in bits
  std::uint64_t record_bytes = 0;   // tans: encoded record-stream size
  std::uint64_t literal_bytes = 0;  // tans: encoded literal-stream size
  std::uint32_t n_sequences = 0;
  std::uint32_t n_literals = 0;
};

/// All mutable state a block encode needs, owned by one worker thread.
struct EncodeScratch {
  // -- parse stage -------------------------------------------------------
  std::optional<lz77::ChainMatcher> matcher;
  std::uint32_t matcher_depth = 0;
  lz77::TokenBlock block;          // parse output, reused per block
  lz77::DeConstraint de_constraint;  // DE interval storage, reused per block

  // -- shared ------------------------------------------------------------
  std::vector<SubblockEnc> subblocks;
  Bytes payload;  // the codec's encoded block payload
  EncodeScratchStats stats;
  /// Set by the caller when a stage outside the codec (the parse) grew a
  /// scratch buffer for the current block; the codec folds it into the
  /// buffer_reuses accounting and clears it.
  bool pending_growth = false;
  /// Lazy-reservation latch for callers that size a scratch on its first
  /// block (compress() workers; see EncodeScratch::reserve).
  bool reserved = false;

  // -- bit codec ---------------------------------------------------------
  std::vector<std::uint64_t> litlen_freqs;
  std::vector<std::uint64_t> offset_freqs;
  std::vector<std::uint8_t> litlen_lengths;
  std::vector<std::uint8_t> offset_lengths;
  std::vector<huffman::CodeEntry> litlen_codes;
  std::vector<huffman::CodeEntry> offset_codes;
  huffman::CodeBuildWorkspace code_ws;
  FusedEmitTables emit;
  BitWriter stream;  // token bitstream
  BitWriter trees;   // nibble-packed code lengths

  // -- tans codec --------------------------------------------------------
  std::vector<std::uint8_t> record_bytes;  // packed 4-byte records
  std::vector<std::uint64_t> record_freqs;
  std::vector<std::uint64_t> literal_freqs;
  ans::Model record_model;
  ans::Model literal_model;
  ans::EncodeStreamWorkspace ans_ws;
  Bytes stage;  // concatenated sub-block streams (sizes go in the table)

  /// Returns the reusable chain matcher, (re)constructing it only when
  /// the configuration changed (counted in stats.matcher_inits; in the
  /// steady state the same matcher serves every block via its cheap
  /// generation reset).
  lz77::ChainMatcher& chain_matcher(const lz77::MatcherConfig& config,
                                    std::uint32_t depth) {
    const bool match = matcher.has_value() && matcher_depth == depth &&
                       matcher->config() == config;
    if (!match) {
      matcher.emplace(config, depth);
      matcher_depth = depth;
      ++stats.matcher_inits;
    }
    return *matcher;
  }

  /// Pre-sizes every buffer for blocks of up to `max_block_size`
  /// uncompressed bytes, so every block encode from the first one on is
  /// allocation-free (buffer_reuses == blocks). `bit` pre-sizes the
  /// Huffman histogram/code/emit storage and the stream writer; `tans`
  /// the record arena, stream staging and model tables. The byte codec
  /// needs neither (parse + payload buffers only).
  void reserve(std::uint32_t max_block_size, std::uint32_t tokens_per_subblock,
               bool tans = false, unsigned tans_table_log = ans::kMaxTableLog,
               bool bit = true) {
    // Worst-case sequence count: every non-terminator sequence covers >=
    // 3 input bytes (a match), plus the literal-run splits of the
    // byte/tans record domain (every 8191 literals), plus terminator.
    const std::size_t max_seq = max_block_size / 3 + max_block_size / 8191 + 2;
    const std::size_t max_lanes =
        max_seq / std::max<std::uint32_t>(1, tokens_per_subblock) + 1;
    block.sequences.reserve(max_seq);
    block.literals.reserve(max_block_size);
    de_constraint.forbidden.reserve(64);  // at most group_size - 1 intervals
    subblocks.reserve(max_lanes);
    // Worst-case stream bits: 15 per literal (CWL cap) + 48 per match
    // token; the payload additionally holds the sub-block table (<= 24
    // bytes/lane) and the tree section.
    // One bound covers every codec's payload: the bit codec's stream +
    // table + trees, the tans codec's staged streams + models, and the
    // byte codec's records + literals.
    payload.reserve(2 * std::size_t{max_block_size} + 8 * max_seq + 24 * max_lanes +
                    4096);
    if (bit) {
      const std::size_t max_stream_bytes =
          (15ull * max_block_size + 48ull * max_seq) / 8 + 64;
      stream.reserve(max_stream_bytes + 16);
      trees.reserve(512);
      litlen_freqs.reserve(kLitLenAlphabet);
      offset_freqs.reserve(kOffsetAlphabet);
      litlen_lengths.reserve(kLitLenAlphabet);
      offset_lengths.reserve(kOffsetAlphabet);
      litlen_codes.reserve(kLitLenAlphabet);
      offset_codes.reserve(kOffsetAlphabet);
      code_ws.reserve(kLitLenAlphabet, 15);
    }
    if (tans) {
      record_bytes.reserve(max_seq * 4);
      record_freqs.reserve(256);
      literal_freqs.reserve(256);
      record_model.reserve_encode(tans_table_log);
      literal_model.reserve_encode(tans_table_log);
      // The largest single stream a sub-block can produce: all of a
      // block's literals can land in one lane, so size for the block.
      ans_ws.reserve(std::max<std::size_t>(max_block_size,
                                           tokens_per_subblock * std::size_t{4}));
      stage.reserve(2 * std::size_t{max_block_size} + 8 * max_seq + 16 * max_lanes);
    }
  }

  /// Capacity fingerprint of every growable buffer — equal snapshots
  /// before and after a block prove the block allocated nothing (the
  /// buffer_reuses signal; package-merge workspace included).
  using CapSnapshot = std::array<std::size_t, 25>;
  CapSnapshot capacities() const {
    std::size_t ws_levels = 0;
    for (const auto& l : code_ws.levels) ws_levels += l.capacity();
    return {block.sequences.capacity(),
            block.literals.capacity(),
            de_constraint.forbidden.capacity(),
            subblocks.capacity(),
            payload.capacity(),
            stream.capacity(),
            trees.capacity(),
            litlen_freqs.capacity(),
            offset_freqs.capacity(),
            litlen_lengths.capacity(),
            offset_lengths.capacity(),
            litlen_codes.capacity(),
            offset_codes.capacity(),
            code_ws.active.capacity(),
            code_ws.leaves.capacity(),
            code_ws.levels.capacity(),
            ws_levels,
            code_ws.packages.capacity(),
            code_ws.stack.capacity(),
            record_bytes.capacity(),
            record_freqs.capacity(),
            literal_freqs.capacity(),
            ans_ws.bit_stack.capacity(),
            ans_ws.bits.capacity(),
            stage.capacity()};
  }
};

}  // namespace gompresso::core
