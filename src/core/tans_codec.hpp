// Gompresso/Tans block codec — the paper's future work, implemented.
//
// "Future work includes determining the extent to which our techniques
// can be applied to alternative coding and context-based compression
// schemes, and evaluating their performance." (§VI)
//
// This codec keeps Gompresso's parallel-decode architecture and swaps the
// entropy stage: instead of two Huffman trees, each block carries two
// shared tANS models (one over the packed sequence-record bytes, one over
// the literal bytes), and every sub-block is an independently decodable
// pair of tANS streams. Decoder lanes decode sub-blocks in parallel
// exactly as in §III-B.1 — same shared-table idea, same sub-block size
// lists, different coder. Zstd's FSE demonstrates this coder class is
// "typically faster than Huffman decoding" (§V-D), which is what makes
// the variant interesting.
//
// Block payload layout:
//   varint  n_sequences, n_literals, n_subblocks
//   bytes   record model (ans::Model, gap-coded normalized counts)
//   bytes   literal model (present iff n_literals > 0)
//   per sub-block: varint n_seqs, n_lits, record_stream_size,
//                  literal_stream_size
//   bytes   per sub-block: record stream, then literal stream
//
// Records use the same 4-byte packing as Gompresso/Byte (window <= 8 KB,
// match <= 65, literal runs split at 8191).
#pragma once

#include "core/decode_scratch.hpp"
#include "core/encode_scratch.hpp"
#include "lz77/sequence.hpp"
#include "util/common.hpp"

namespace gompresso {
class ThreadPool;
}

namespace gompresso::core {

/// Tans codec tuning knobs.
struct TansCodecConfig {
  std::uint32_t tokens_per_subblock = 16;
  unsigned table_log = 11;  // 2^11-state tables (2 KB decode table each)
};

/// Serialises a parsed block (domain limits as per Gompresso/Byte).
/// Convenience wrapper around the scratch overload below.
Bytes encode_block_tans(const lz77::TokenBlock& block, const TansCodecConfig& config);

/// Scratch fast path: the packed-record arena, both shared tANS models
/// (rebuilt in place), the per-stream bit stack and the staged streams
/// all live in `scratch` and are reused across blocks (zero steady-state
/// allocations). With a non-null `lane_pool` and more than one
/// sub-block, the independent per-sub-block stream encodes fan out
/// across the pool — output bytes are identical either way. Returns
/// scratch.payload.
const Bytes& encode_block_tans(const lz77::TokenBlock& block, const TansCodecConfig& config,
                               EncodeScratch& scratch, ThreadPool* lane_pool = nullptr);

/// Decodes a payload back into sequences + literals; each sub-block is an
/// independent lane's work. Throws gompresso::Error on corrupt payloads.
/// Convenience wrapper around the scratch-arena overload below.
lz77::TokenBlock decode_block_tans(ByteSpan payload, const TansCodecConfig& config);

/// Zero-allocation fast path: rebuilds the two shared models in
/// `scratch`'s reusable storage, decodes every lane's record stream into
/// the scratch record arena and its literals straight into the token
/// block, and returns a reference to scratch.block (valid until the next
/// decode with the same scratch). When `lane_pool` is non-null and the
/// block has more than one sub-block, the independent lanes are fanned
/// out across the pool exactly like decode_block_bit's — pass it only
/// when the caller is not itself running block-parallel work.
/// `max_output`, when non-zero, is the block's known uncompressed size
/// (the container always has it): claimed counts are bounded against it
/// *before* any buffer is sized, so a crafted header cannot stage
/// gigabytes. Without it a generous payload-relative plausibility cap
/// applies instead.
const lz77::TokenBlock& decode_block_tans(ByteSpan payload, const TansCodecConfig& config,
                                          DecodeScratch& scratch,
                                          ThreadPool* lane_pool = nullptr,
                                          std::size_t max_output = 0);

}  // namespace gompresso::core
