// Thread-parallel phase-2 LZ77 resolution with a completed-watermark
// handoff.
//
// The paper's decompression is two-phase: parallel token decode (phase
// 1), then back-reference resolution (phase 2). Phase 1 fans a single
// block's sub-block lanes across the ThreadPool for every codec; this
// module does the same for phase 2, the last serial stage of the decode
// path:
//
//   * Plan. The sequence list is partitioned into warp-group-aligned
//     shards and each shard's literal/output base is computed with an
//     exclusive prefix sum over per-shard totals (the running-sum
//     discipline of prepare_group, lifted to shard granularity). Totals
//     are validated against the block bounds before any byte is written.
//   * Phase A (fully concurrent). Every shard walks its warp groups like
//     the serial resolver: literal strings first, then back-references.
//     A reference is copied immediately when its source is resolved
//     *within the shard* — at or above the shard base, not overlapping
//     the write region of an already-deferred reference, and satisfying
//     the usual group rules (below the group base, a group literal
//     interval, or the lane's own forward copy). Anything else — in
//     particular any source reaching below the shard base — is deferred
//     to the shard's pending list, ordered by write position.
//   * Phase B (watermark handoff). A shard spins briefly and then parks
//     on an atomic high-water mark that earlier shards publish as they
//     complete; once the watermark reaches the shard's base (every byte
//     below it is resolved), one ordered sweep of the pending list
//     resolves the deferrals — each reference's source is fully written
//     by the time the sweep reaches it — and the shard publishes the
//     watermark for its successor.
//
// A deferred reference's output would normally poison every later
// reader of that region and cascade through the shard; phase A instead
// chases dirty reads byte-wise through the pending list's redirection
// map down to their origin, so only references whose *transitive*
// origin crosses the shard base defer. Literals, shard-local matches
// and chase-resolvable chains — the bulk of phase 2 — run fully
// concurrently; the phase-B sweeps of truly cross-shard chains are
// plain ordered memcpys that pipeline down the watermark chain, which
// is the graceful-degradation path for deeply nested streams. Output
// bytes are identical to the serial resolver for every strategy, and
// the DE strategy still rejects streams with intra-group dependencies.
#pragma once

#include <atomic>
#include <memory>
#include <span>
#include <vector>

#include "core/options.hpp"
#include "core/resolve_common.hpp"
#include "lz77/sequence.hpp"
#include "simt/warp.hpp"
#include "util/common.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace gompresso::core {

/// Shard sizing knobs. The defaults balance scheduling slack (a few
/// shards per pool participant) against deferral rate — a shard's first
/// chain-depth x window bytes of back-references tend to cross its base,
/// so small shards defer a larger fraction of their work to phase B.
/// Tests shrink min_sequences_per_shard to force many shards on small
/// inputs.
struct ResolveShardConfig {
  std::uint32_t min_sequences_per_shard = 16384;  // rounded up to warp multiple
  std::uint32_t shards_per_participant = 4;       // load-balance target
};

/// One shard of the plan: a warp-group-aligned sequence range plus the
/// exclusive prefix sums locating its literals and output.
struct ResolveShard {
  std::uint64_t seq_begin = 0;
  std::uint64_t seq_end = 0;
  std::uint64_t lit_base = 0;  // literal offset of seq_begin's string
  std::uint64_t out_base = 0;  // output offset where the shard starts
  std::uint64_t out_end = 0;   // output offset just past the shard
};

/// Cross-shard synchronisation state: the completed watermark (every
/// output byte below it is resolved) and the contiguous-completion
/// cursor it is derived from. Heap-held by the plan so DecodeScratch
/// stays movable; allocated once in reserve(), reused for every block.
struct ResolveSync {
  /// Watermark publishes with release under `mutex`, waiters load/park
  /// with acquire — the bytes below the published offset happen-before
  /// any read gated on it.
  std::atomic<std::uint64_t> watermark{0};
  util::Mutex mutex;
  std::size_t next_shard GUARDED_BY(mutex) = 0;  // first incomplete shard
  bool aborted GUARDED_BY(mutex) = false;  // a shard failed; watermark pinned
};

/// The arena-resident shard plan: grows to the high-water shard count of
/// the blocks it has seen and then serves every block allocation-free
/// (per-shard pending lists and metric vectors stay warm across blocks).
struct ResolvePlan {
  std::vector<ResolveShard> shards;
  std::vector<std::vector<PendingRef>> shard_pending;  // phase-B worklists
  /// Per-shard dirty bitmap, one bit per 64 output bytes: set when a
  /// deferred reference's write region touches the granule. The
  /// L1-resident bitmap answers the hot-path "is this source clean?"
  /// probe without binary-searching the (large, cold) pending list; a
  /// set bit is conservative — the budgeted chase consults the precise
  /// list.
  std::vector<std::vector<std::uint64_t>> shard_dirty;
  std::vector<simt::WarpMetrics> shard_metrics;  // merged after the join
  std::vector<std::uint8_t> shard_done;          // guarded by sync->mutex
  std::unique_ptr<ResolveSync> sync;

  /// Pre-sizes the per-shard tables for up to `max_shards` shards and
  /// allocates the sync block, so steady-state blocks plan without
  /// touching the heap.
  void reserve(std::size_t max_shards) {
    shards.reserve(max_shards);
    shard_pending.reserve(max_shards);
    shard_dirty.reserve(max_shards);
    shard_metrics.reserve(max_shards);
    shard_done.reserve(max_shards);
    if (!sync) sync = std::make_unique<ResolveSync>();
  }
};

/// Resolves all sequences of one block into `out` using the sharded
/// concurrent resolver. Returns false — leaving `out` untouched — when
/// the block is too small to shard or the pool has no spawned workers;
/// the caller falls back to the serial resolve_block. kMultiPass is not
/// handled here (its spill semantics are the point of that variant).
///
/// On success `metrics` receives the per-shard warp metrics (phase-A
/// copies recorded as round 1, phase-B deferrals as round 2) and
/// `deferrals` (optional) the number of back-references that crossed to
/// phase B. Throws gompresso::Error on malformed sequences, exactly like
/// the serial resolver; a failing shard aborts the others' waits before
/// the error is rethrown, so no thread is left parked.
bool resolve_block_sharded(std::span<const lz77::Sequence> sequences,
                           const std::uint8_t* literals, std::size_t literal_count,
                           MutableByteSpan out, Strategy strategy, ResolvePlan& plan,
                           ThreadPool& pool, simt::WarpMetrics* metrics = nullptr,
                           std::uint64_t* deferrals = nullptr,
                           const ResolveShardConfig& config = {});

}  // namespace gompresso::core
