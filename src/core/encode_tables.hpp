// Fused symbol-emission tables for the Gompresso/Bit encoder.
//
// The per-symbol encode path costs ~6 calls per match sequence: a Huffman
// code lookup + BitWriter::write for the length bucket, a separate write
// for the length extra bits, and the same pair again for the distance —
// plus encode_length/encode_distance bucket searches to find the buckets
// in the first place. These tables pre-merge everything that is fixed for
// a given block's canonical codes (mirroring the decoder's fused tables
// in core/decode_tables):
//
//   * len[match_len - 3]   — the Huffman code of the length bucket with
//                            the extra-value bits already merged behind
//                            it (the extra value is a function of the
//                            length alone). One table load + one
//                            write_unchecked emits the whole length.
//   * dist[bucket]         — the Huffman code of the distance bucket plus
//                            the bucket base, so the emit merges
//                            (distance - base) behind the code in
//                            registers. The bucket itself comes from the
//                            closed-form lz77::distance_code (bit width),
//                            not a table walk.
//   * lit[byte], end       — plain pre-reversed literal / END codes.
//
// A worst-case match token is 15 (length code) + 5 (length extra) + 15
// (distance code) + 13 (distance extra) = 48 bits, within BitWriter's
// 57-bit single-write limit — so one fused write emits length AND
// distance. bench_encode_hotpath measures the resulting speedup;
// tests/test_encode_hotpath.cpp proves bit-identical streams against the
// per-symbol path for every length and every bucket boundary.
#pragma once

#include <cstdint>
#include <vector>

#include "core/alphabet.hpp"
#include "huffman/code_builder.hpp"
#include "lz77/deflate_tables.hpp"

namespace gompresso::core {

/// Per-block fused emit tables, rebuilt from the block's canonical codes
/// (fixed-size storage — lives in EncodeScratch and is reused).
struct FusedEmitTables {
  /// A fully pre-merged code: LSB-first bits and total width.
  struct Entry {
    std::uint32_t bits = 0;
    std::uint32_t nbits = 0;
  };
  /// A distance bucket: pre-reversed code plus what the emit needs to
  /// merge the distance-dependent extra bits in registers.
  struct DistEntry {
    std::uint32_t code_bits = 0;
    std::uint16_t base = 0;       // smallest distance of the bucket
    std::uint8_t code_len = 0;    // Huffman code length
    std::uint8_t extra_bits = 0;  // raw bits that follow the code
  };

  Entry lit[256];
  Entry end;  // kEndSymbol, terminates a block's final sequence
  Entry len[lz77::kMaxMatch - lz77::kMinMatch + 1];
  DistEntry dist[lz77::kNumDistanceCodes];

  /// Rebuilds every entry from the two canonical code sets
  /// (assign_canonical_codes output for the lit/len and offset
  /// alphabets). Symbols absent from the codes get zero-width entries;
  /// emitting one is a logic error the encoder's histograms rule out.
  void build(const std::vector<huffman::CodeEntry>& litlen_codes,
             const std::vector<huffman::CodeEntry>& offset_codes);

  /// A merged multi-symbol token ready for one BitWriter write.
  struct Token {
    std::uint64_t bits = 0;
    std::uint32_t nbits = 0;
  };

  /// The merged length+distance token for one match (<= 48 bits, one
  /// write_unchecked). Precondition: domains as per encode_block_bit.
  Token match_token(std::uint32_t match_len, std::uint32_t match_dist) const {
    const Entry le = len[match_len - lz77::kMinMatch];
    const DistEntry de = dist[lz77::distance_code(match_dist)];
    const std::uint64_t dv =
        de.code_bits |
        (static_cast<std::uint64_t>(match_dist - de.base) << de.code_len);
    const std::uint32_t dn = static_cast<std::uint32_t>(de.code_len) + de.extra_bits;
    return Token{le.bits | (dv << le.nbits), le.nbits + dn};
  }
};

}  // namespace gompresso::core
