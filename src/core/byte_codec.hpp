// Gompresso/Byte block codec.
//
// "Gompresso/Byte can combine decoding and decompression in a single pass
// because of its fixed-length byte-level coding scheme. The token streams
// can be read directly from the compressed output." (paper §III-B)
//
// Block payload layout:
//   varint  n_sequences
//   records n_sequences * 4 bytes, little-endian packed:
//             bits  0..12  literal_len          (0..8191)
//             bits 13..18  match_len - 2        (1..63 -> len 3..65;
//                                                0 = no back-reference)
//             bits 19..31  match_dist - 1       (0..8191 -> dist 1..8192)
//   bytes   literal region (concatenated literal strings, sequence order)
//
// The fixed-width records are what make lane-parallel reads possible: lane
// i of a warp group loads record (group*32 + i) directly, with no
// sequential scan — this is the "fixed-length byte-level coding" the
// paper contrasts with LZ4's variable-length greedy tokens. The packing
// requires window <= 8 KB and max match <= 65 (the paper's §V defaults
// are 8 KB / 64) and literal runs <= 8191 (longer runs are split by the
// parser, ParserOptions::max_literal_run). The 4-byte records are still
// wider than LZ4's 1-3 byte tokens, which is why Gompresso/Byte trades
// ratio for random access in Fig. 13.
#pragma once

#include <vector>

#include "core/decode_scratch.hpp"
#include "core/encode_scratch.hpp"
#include "lz77/sequence.hpp"
#include "util/common.hpp"

namespace gompresso {
class ThreadPool;
}

namespace gompresso::core {

// kByteRecordSize (the 4-byte packed record width) lives in
// core/decode_scratch.hpp, next to the scratch arena sized against it.
inline constexpr std::uint32_t kByteCodecMaxLiteralRun = 8191;
inline constexpr std::uint32_t kByteCodecMaxMatch = 65;
inline constexpr std::uint32_t kByteCodecMaxDistance = 8192;

/// Serialises a parsed block. Requires literal_len <= 8191,
/// match_len in {0} + [3, 65], match_dist <= 8192. Convenience wrapper
/// around the scratch overload below.
Bytes encode_block_byte(const lz77::TokenBlock& block);

/// Scratch fast path: serialises into scratch.payload (reused across
/// blocks, zero steady-state allocations). The fixed record width makes
/// any sub-range of the record array an independent lane, so with a
/// non-null `lane_pool` the record packing fans out across the pool —
/// output bytes are identical either way. Returns scratch.payload.
const Bytes& encode_block_byte(const lz77::TokenBlock& block, EncodeScratch& scratch,
                               ThreadPool* lane_pool = nullptr);

/// Parses a payload back into sequences + literal bytes.
/// Throws gompresso::Error on truncated or inconsistent payloads.
/// Convenience wrapper around the scratch-arena overload below.
lz77::TokenBlock decode_block_byte(ByteSpan payload);

/// Zero-allocation fast path: unpacks the fixed-width records directly
/// into `scratch`'s reused token block and returns a reference to
/// scratch.block (valid until the next decode with the same scratch).
/// The fixed record width makes any sub-range of the record array an
/// independent lane, so with a non-null `lane_pool` the unpack is fanned
/// out across the pool (the paper's lane-parallel record loads) — pass it
/// only when the caller is not itself running block-parallel work.
const lz77::TokenBlock& decode_block_byte(ByteSpan payload, DecodeScratch& scratch,
                                          ThreadPool* lane_pool = nullptr);

/// Upper bound on the encoded size of a block (for buffer reservations).
/// Overflow-guarded: throws rather than wrapping for absurd counts.
std::size_t max_encoded_size_byte(const lz77::TokenBlock& block);

/// Packs one sequence into the 4-byte record word (domain-checked).
std::uint32_t pack_record(const lz77::Sequence& s);

/// Packs `count` sequences as consecutive 4-byte little-endian records
/// at `dst` (which must hold count * kByteRecordSize bytes). Shared by
/// the byte codec's payload serialisation and the tans codec's record
/// arena so the record layout lives in one place.
void pack_records_into(const lz77::Sequence* seqs, std::size_t count,
                       std::uint8_t* dst);

/// Unpacks a 4-byte record word (throws on a malformed word).
lz77::Sequence unpack_record(std::uint32_t word);

}  // namespace gompresso::core
