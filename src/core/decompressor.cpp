#include "core/decompressor.hpp"

#include "core/bit_codec.hpp"
#include "core/byte_codec.hpp"
#include "core/tans_codec.hpp"
#include "core/warp_lz77.hpp"
#include "util/crc32.hpp"
#include "util/thread_pool.hpp"
#include "util/varint.hpp"

namespace gompresso {
namespace {

/// Everything one pool participant mutates while decoding blocks. Slots
/// are per-worker, so the block loop needs no mutex; the accumulators are
/// merged into the DecompressResult once at the end.
struct WorkerState {
  simt::WarpMetrics metrics;
  core::MultiPassStats multipass;
  core::DecodeScratch scratch;
  bool scratch_reserved = false;  // arena pre-sized on first block touched
};

}  // namespace

DecompressResult decompress(ByteSpan file, const DecompressOptions& options) {
  std::size_t pos = 0;
  const format::FileHeader header = format::FileHeader::deserialize(file, pos);

  Strategy strategy = options.strategy;
  if (options.auto_strategy) {
    strategy = header.dependency_elimination ? Strategy::kDependencyFree
                                             : Strategy::kMultiRound;
  } else if (strategy == Strategy::kDependencyFree) {
    check(header.dependency_elimination,
          "decompress: DE strategy requires a DE-compressed file");
  }

  // Locate every block payload from the size list (inter-block
  // parallelism needs no scanning, Fig. 3).
  const std::size_t num_blocks = header.num_blocks();
  std::vector<std::size_t> offsets(num_blocks + 1);
  offsets[0] = pos;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    offsets[b + 1] = offsets[b] + static_cast<std::size_t>(header.block_compressed_sizes[b]);
  }
  check(offsets[num_blocks] == file.size(), "decompress: file size mismatch");
  check(header.block_size > 0, "decompress: zero block size");
  check(num_blocks == div_ceil<std::uint64_t>(header.uncompressed_size, header.block_size),
        "decompress: block count mismatch");

  DecompressResult result;
  result.strategy_used = strategy;
  result.data.resize(static_cast<std::size_t>(header.uncompressed_size));

  core::BitCodecConfig bit_config;
  bit_config.tokens_per_subblock = header.tokens_per_subblock;
  bit_config.codeword_limit = header.codeword_limit;

  auto decompress_one = [&](WorkerState& ws, std::size_t b, ThreadPool* lane_pool) {
    const ByteSpan payload_with_crc =
        file.subspan(offsets[b], offsets[b + 1] - offsets[b]);
    std::size_t p = 0;
    const std::uint32_t stored_crc = get_u32le(payload_with_crc, p);
    check(p < payload_with_crc.size(), "decompress: truncated block payload");
    const std::uint8_t mode = payload_with_crc[p++];
    const ByteSpan payload = payload_with_crc.subspan(p);

    const std::size_t out_begin = b * header.block_size;
    const std::size_t out_len = std::min<std::size_t>(
        header.block_size, result.data.size() - out_begin);
    const MutableByteSpan out_span(result.data.data() + out_begin, out_len);

    if (mode == kBlockModeStored) {
      check(payload.size() == out_len, "decompress: stored block size mismatch");
      std::copy(payload.begin(), payload.end(), out_span.begin());
    } else {
      check(mode == kBlockModeCoded, "decompress: unknown block mode");
      // Phase 1: token decode (warp-parallel over sub-blocks for /Bit
      // and /Tans). The bit codec decodes into the worker's scratch arena
      // — zero allocations once its buffers are warm — and optionally
      // fans its sub-block lanes out across `lane_pool`.
      lz77::TokenBlock local_block;  // byte/tans output (bit uses the arena)
      const lz77::TokenBlock* tokens;
      if (header.codec == Codec::kBit) {
        // Pre-size the arena on the worker's first block (not eagerly for
        // every pool participant — most workers never run when blocks are
        // few), so no block decode ever grows a buffer.
        if (!ws.scratch_reserved) {
          ws.scratch.reserve(header.block_size, header.tokens_per_subblock);
          ws.scratch_reserved = true;
        }
        tokens = &core::decode_block_bit(payload, bit_config, ws.scratch, lane_pool);
      } else if (header.codec == Codec::kByte) {
        local_block = core::decode_block_byte(payload);
        tokens = &local_block;
      } else {
        core::TansCodecConfig tans_config;
        tans_config.tokens_per_subblock = header.tokens_per_subblock;
        local_block = core::decode_block_tans(payload, tans_config);
        tokens = &local_block;
      }
      check(tokens->uncompressed_size == out_len, "decompress: block size mismatch");

      // Phase 2: warp-parallel LZ77 resolution, accumulating straight
      // into the worker's metrics (all WarpMetrics updates are additive).
      if (strategy == Strategy::kMultiPass) {
        core::MultiPassStats block_multipass;
        core::resolve_block_multipass(tokens->sequences, tokens->literals.data(),
                                      tokens->literals.size(), out_span,
                                      &block_multipass);
        ws.multipass.merge(block_multipass);
      } else {
        core::resolve_block(tokens->sequences, tokens->literals.data(),
                            tokens->literals.size(), out_span, strategy,
                            &ws.metrics);
      }
    }

    if (options.verify_checksums) {
      check(crc32(ByteSpan(out_span.data(), out_span.size())) == stored_crc,
            "decompress: block checksum mismatch (corrupt data)");
    }
  };

  // Pick the thread plan (see the header comment).
  ThreadPool* pool = nullptr;
  std::unique_ptr<ThreadPool> own_pool;
  if (options.num_threads == 0) {
    pool = &default_pool();
  } else if (options.num_threads > 1) {
    own_pool = std::make_unique<ThreadPool>(options.num_threads);
    pool = own_pool.get();
  }

  std::vector<WorkerState> workers;
  if (pool == nullptr || pool->parallelism() == 1) {
    // Serial: one worker state, blocks in order.
    workers.resize(1);
    for (std::size_t b = 0; b < num_blocks; ++b) decompress_one(workers[0], b, nullptr);
  } else if (num_blocks != 1 || header.codec != Codec::kBit) {
    // (An empty file — zero blocks — also lands here; the parallel_for
    // over zero indices is a no-op.)
    // Inter-block parallelism: workers pull whole blocks from the queue.
    // This stays the right plan even for 2 <= num_blocks < parallelism:
    // lane fan-out only parallelises token decode, so pipelining whole
    // blocks (token decode + resolution overlapped across blocks) beats
    // serialising the blocks whenever there is more than one.
    workers.resize(pool->parallelism());
    pool->parallel_for_worker(num_blocks, [&](std::size_t worker, std::size_t b) {
      decompress_one(workers[worker], b, nullptr);
    });
  } else {
    // A single block cannot use inter-block parallelism at all: fan its
    // sub-block decode lanes out across the pool instead.
    workers.resize(1);
    decompress_one(workers[0], 0, pool);
  }

  for (const WorkerState& ws : workers) {
    result.metrics.merge(ws.metrics);
    result.multipass.merge(ws.multipass);
    result.scratch.merge(ws.scratch.stats);
  }
  return result;
}

}  // namespace gompresso
