#include "core/decompressor.hpp"

#include "core/block_decode.hpp"
#include "util/thread_pool.hpp"
#include "util/varint.hpp"

namespace gompresso {

DecompressResult decompress(ByteSpan file, const DecompressOptions& options) {
  std::size_t pos = 0;
  const format::FileHeader header = format::FileHeader::deserialize(file, pos);
  // Catch a truncated or corrupt-length file with one clear error before
  // any block decode can trip over it.
  header.check_payload(file.size() - pos);

  const Strategy strategy = core::resolve_strategy(options, header);

  // Locate every block payload from the size list (inter-block
  // parallelism needs no scanning, Fig. 3).
  const std::size_t num_blocks = header.num_blocks();
  std::vector<std::size_t> offsets(num_blocks + 1);
  offsets[0] = pos;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    offsets[b + 1] = offsets[b] + static_cast<std::size_t>(header.block_compressed_sizes[b]);
  }

  DecompressResult result;
  result.strategy_used = strategy;
  result.data.resize(static_cast<std::size_t>(header.uncompressed_size));

  auto decompress_one = [&](core::BlockDecodeContext& ctx, std::size_t b,
                            ThreadPool* lane_pool) {
    const ByteSpan payload_with_crc =
        file.subspan(offsets[b], offsets[b + 1] - offsets[b]);
    const std::size_t out_begin = b * header.block_size;
    const std::size_t out_len = std::min<std::size_t>(
        header.block_size, result.data.size() - out_begin);
    core::decode_block_at(header, payload_with_crc,
                          MutableByteSpan(result.data.data() + out_begin, out_len),
                          strategy, options.verify_checksums, ctx, lane_pool);
  };

  // Pick the thread plan (see the header comment).
  ThreadPool* pool = nullptr;
  std::unique_ptr<ThreadPool> own_pool;
  if (options.num_threads == 0) {
    pool = &default_pool();
  } else if (options.num_threads > 1) {
    own_pool = std::make_unique<ThreadPool>(options.num_threads);
    pool = own_pool.get();
  }

  std::vector<core::BlockDecodeContext> workers;
  if (pool == nullptr || pool->parallelism() == 1) {
    // Serial: one worker context, blocks in order.
    workers.resize(1);
    for (std::size_t b = 0; b < num_blocks; ++b) decompress_one(workers[0], b, nullptr);
  } else if (num_blocks != 1) {
    // (An empty file — zero blocks — also lands here; the parallel_for
    // over zero indices is a no-op.)
    // Inter-block parallelism: workers pull whole blocks from the queue.
    // This stays the right plan even for 2 <= num_blocks < parallelism:
    // lane fan-out only parallelises token decode, so pipelining whole
    // blocks (token decode + resolution overlapped across blocks) beats
    // serialising the blocks whenever there is more than one.
    workers.resize(pool->parallelism());
    pool->parallel_for_worker(num_blocks, [&](std::size_t worker, std::size_t b) {
      decompress_one(workers[worker], b, nullptr);
    });
  } else {
    // A single block cannot use inter-block parallelism at all: fan both
    // of its decode phases out across the pool instead — phase-1 token
    // decode by sub-block lane (every codec), then phase-2 LZ77
    // resolution by warp-group shard with a completed-watermark handoff.
    workers.resize(1);
    decompress_one(workers[0], 0, pool);
  }

  for (const core::BlockDecodeContext& ctx : workers) {
    result.metrics.merge(ctx.metrics);
    result.multipass.merge(ctx.multipass);
    result.scratch.merge(ctx.scratch.stats);
  }
  return result;
}

}  // namespace gompresso
