#include "core/decompressor.hpp"

#include <mutex>

#include "core/bit_codec.hpp"
#include "core/byte_codec.hpp"
#include "core/tans_codec.hpp"
#include "core/warp_lz77.hpp"
#include "util/crc32.hpp"
#include "util/thread_pool.hpp"
#include "util/varint.hpp"

namespace gompresso {

DecompressResult decompress(ByteSpan file, const DecompressOptions& options) {
  std::size_t pos = 0;
  const format::FileHeader header = format::FileHeader::deserialize(file, pos);

  Strategy strategy = options.strategy;
  if (options.auto_strategy) {
    strategy = header.dependency_elimination ? Strategy::kDependencyFree
                                             : Strategy::kMultiRound;
  } else if (strategy == Strategy::kDependencyFree) {
    check(header.dependency_elimination,
          "decompress: DE strategy requires a DE-compressed file");
  }

  // Locate every block payload from the size list (inter-block
  // parallelism needs no scanning, Fig. 3).
  const std::size_t num_blocks = header.num_blocks();
  std::vector<std::size_t> offsets(num_blocks + 1);
  offsets[0] = pos;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    offsets[b + 1] = offsets[b] + static_cast<std::size_t>(header.block_compressed_sizes[b]);
  }
  check(offsets[num_blocks] == file.size(), "decompress: file size mismatch");
  check(header.block_size > 0, "decompress: zero block size");
  check(num_blocks == div_ceil<std::uint64_t>(header.uncompressed_size, header.block_size),
        "decompress: block count mismatch");

  DecompressResult result;
  result.strategy_used = strategy;
  result.data.resize(static_cast<std::size_t>(header.uncompressed_size));

  core::BitCodecConfig bit_config;
  bit_config.tokens_per_subblock = header.tokens_per_subblock;
  bit_config.codeword_limit = header.codeword_limit;

  std::mutex metrics_mutex;

  auto decompress_one = [&](std::size_t b) {
    const ByteSpan payload_with_crc =
        file.subspan(offsets[b], offsets[b + 1] - offsets[b]);
    std::size_t p = 0;
    const std::uint32_t stored_crc = get_u32le(payload_with_crc, p);
    check(p < payload_with_crc.size(), "decompress: truncated block payload");
    const std::uint8_t mode = payload_with_crc[p++];
    const ByteSpan payload = payload_with_crc.subspan(p);

    const std::size_t out_begin = b * header.block_size;
    const std::size_t out_len = std::min<std::size_t>(
        header.block_size, result.data.size() - out_begin);
    const MutableByteSpan out_span(result.data.data() + out_begin, out_len);

    simt::WarpMetrics block_metrics;
    core::MultiPassStats block_multipass;
    if (mode == kBlockModeStored) {
      check(payload.size() == out_len, "decompress: stored block size mismatch");
      std::copy(payload.begin(), payload.end(), out_span.begin());
    } else {
      check(mode == kBlockModeCoded, "decompress: unknown block mode");
      // Phase 1: token decode (warp-parallel over sub-blocks for /Bit
      // and /Tans).
      core::TansCodecConfig tans_config;
      tans_config.tokens_per_subblock = header.tokens_per_subblock;
      const lz77::TokenBlock tokens =
          header.codec == Codec::kByte  ? core::decode_block_byte(payload)
          : header.codec == Codec::kBit ? core::decode_block_bit(payload, bit_config)
                                        : core::decode_block_tans(payload, tans_config);
      check(tokens.uncompressed_size == out_len, "decompress: block size mismatch");

      // Phase 2: warp-parallel LZ77 resolution.
      if (strategy == Strategy::kMultiPass) {
        core::resolve_block_multipass(tokens.sequences, tokens.literals.data(),
                                      tokens.literals.size(), out_span,
                                      &block_multipass);
      } else {
        core::resolve_block(tokens.sequences, tokens.literals.data(),
                            tokens.literals.size(), out_span, strategy,
                            &block_metrics);
      }
    }

    if (options.verify_checksums) {
      check(crc32(ByteSpan(out_span.data(), out_span.size())) == stored_crc,
            "decompress: block checksum mismatch (corrupt data)");
    }
    {
      std::lock_guard<std::mutex> lock(metrics_mutex);
      result.metrics.merge(block_metrics);
      result.multipass.merge(block_multipass);
    }
  };

  if (options.num_threads == 1) {
    for (std::size_t b = 0; b < num_blocks; ++b) decompress_one(b);
  } else if (options.num_threads == 0) {
    default_pool().parallel_for(num_blocks, decompress_one);
  } else {
    ThreadPool pool(options.num_threads);
    pool.parallel_for(num_blocks, decompress_one);
  }
  return result;
}

}  // namespace gompresso
