#include "core/encode_tables.hpp"

namespace gompresso::core {

void FusedEmitTables::build(const std::vector<huffman::CodeEntry>& litlen_codes,
                            const std::vector<huffman::CodeEntry>& offset_codes) {
  check(litlen_codes.size() == kLitLenAlphabet, "emit tables: bad lit/len alphabet");
  check(offset_codes.size() == kOffsetAlphabet, "emit tables: bad offset alphabet");

  for (std::size_t s = 0; s < 256; ++s) {
    lit[s].bits = huffman::reverse_bits(litlen_codes[s].code, litlen_codes[s].length);
    lit[s].nbits = litlen_codes[s].length;
  }
  {
    const auto& e = litlen_codes[kEndSymbol];
    end.bits = huffman::reverse_bits(e.code, e.length);
    end.nbits = e.length;
  }

  // Length table: the extra value is (length - bucket base), a function
  // of the length alone, so it merges behind the code at build time.
  for (std::uint32_t l = lz77::kMinMatch; l <= lz77::kMaxMatch; ++l) {
    const std::uint32_t code = lz77::length_code(l);
    const auto& e = litlen_codes[kFirstLengthSymbol + code];
    const std::uint32_t extra = l - lz77::length_base(code);
    len[l - lz77::kMinMatch].bits =
        huffman::reverse_bits(e.code, e.length) | (extra << e.length);
    len[l - lz77::kMinMatch].nbits =
        static_cast<std::uint32_t>(e.length) + lz77::length_extra_bits(code);
  }

  // Distance buckets: the extra value depends on the distance, so the
  // entry carries the base and widths for the emit-time merge.
  for (std::uint32_t c = 0; c < lz77::kNumDistanceCodes; ++c) {
    const auto& e = offset_codes[c];
    dist[c].code_bits = huffman::reverse_bits(e.code, e.length);
    dist[c].base = static_cast<std::uint16_t>(lz77::distance_base(c));
    dist[c].code_len = e.length;
    dist[c].extra_bits = static_cast<std::uint8_t>(lz77::distance_extra_bits(c));
  }
}

}  // namespace gompresso::core
