// Gompresso/Bit symbol alphabets (DEFLATE-style), shared by the encode
// and decode table builders. Kept in a leaf header so the fused emit
// tables (core/encode_tables) and the codec interface (core/bit_codec)
// can both use them without an include cycle.
#pragma once

#include <cstddef>
#include <cstdint>

namespace gompresso::core {

inline constexpr std::size_t kLitLenAlphabet = 286;  // 256 lit + END + 29 lengths
inline constexpr std::size_t kOffsetAlphabet = 30;
inline constexpr std::uint16_t kEndSymbol = 256;
inline constexpr std::uint16_t kFirstLengthSymbol = 257;

}  // namespace gompresso::core
