#include "core/tans_codec.hpp"

#include <atomic>
#include <cstring>
#include <vector>

#include "ans/tans.hpp"
#include "core/byte_codec.hpp"
#include "huffman/histogram.hpp"
#include "util/thread_pool.hpp"
#include "util/varint.hpp"

namespace gompresso::core {

const Bytes& encode_block_tans(const lz77::TokenBlock& block, const TansCodecConfig& config,
                               EncodeScratch& scratch, ThreadPool* lane_pool) {
  check(config.tokens_per_subblock >= 1, "tans codec: tokens_per_subblock must be >= 1");
  check(!block.sequences.empty(), "tans codec: empty block");
  const EncodeScratch::CapSnapshot caps = scratch.capacities();

  // Pack every record once into the scratch arena (the per-sub-block
  // streams encode slices of it) and histogram both alphabets, with
  // four sub-histograms to break the per-byte store-to-load dependency.
  const std::size_t n_seq = block.sequences.size();
  auto& records = scratch.record_bytes;
  records.resize(n_seq * kByteRecordSize);
  pack_records_into(block.sequences.data(), n_seq, records.data());
  // Block-wide histograms -> the two shared models (§III-B.1 analogue),
  // rebuilt in place in the scratch-owned model storage.
  scratch.record_freqs.assign(256, 0);
  huffman::add_byte_histogram(records.data(), records.size(),
                              scratch.record_freqs.data());
  bool models_warm =
      scratch.record_model.build_encode_into(scratch.record_freqs, config.table_log);
  ++scratch.stats.table_builds;
  if (!block.literals.empty()) {
    scratch.literal_freqs.assign(256, 0);
    huffman::add_byte_histogram(block.literals.data(), block.literals.size(),
                                scratch.literal_freqs.data());
    models_warm &= scratch.literal_model.build_encode_into(scratch.literal_freqs,
                                                           config.table_log);
    ++scratch.stats.table_builds;
  }

  // Per sub-block: encode the record words and the literal slab as
  // independent streams against the shared models. The streams stage
  // into scratch.stage (their sizes go in the table, which precedes them
  // in the payload).
  const std::size_t tps = config.tokens_per_subblock;
  const std::size_t n_sub = (n_seq + tps - 1) / tps;
  scratch.subblocks.assign(n_sub, SubblockEnc{});
  // Every lane's input slices, via prefix sums (also what the decoder
  // derives from the table).
  std::uint64_t lit_total = 0;
  for (std::size_t sb = 0; sb < n_sub; ++sb) {
    SubblockEnc& info = scratch.subblocks[sb];
    const std::size_t lo = sb * tps;
    const std::size_t hi = std::min(n_seq, lo + tps);
    info.n_sequences = static_cast<std::uint32_t>(hi - lo);
    std::uint32_t lits = 0;
    for (std::size_t i = lo; i < hi; ++i) lits += block.sequences[i].literal_len;
    info.n_literals = lits;
    lit_total += lits;
  }
  check(lit_total == block.literals.size(), "tans codec: literal count mismatch");

  const auto encode_lanes = [&](std::size_t sb_begin, std::size_t sb_end,
                                std::uint64_t lit_base, Bytes& out,
                                ans::EncodeStreamWorkspace& ws) {
    for (std::size_t sb = sb_begin; sb < sb_end; ++sb) {
      SubblockEnc& info = scratch.subblocks[sb];
      const std::size_t lo = sb * tps;
      std::size_t before = out.size();
      scratch.record_model.encode_stream_into(
          ByteSpan(records.data() + lo * kByteRecordSize,
                   std::size_t{info.n_sequences} * kByteRecordSize),
          out, ws);
      info.record_bytes = out.size() - before;
      before = out.size();
      if (info.n_literals != 0) {
        scratch.literal_model.encode_stream_into(
            ByteSpan(block.literals.data() + lit_base, info.n_literals), out, ws);
      }
      info.literal_bytes = out.size() - before;
      lit_base += info.n_literals;
    }
  };

  // The encoded streams are staged (their sizes must land in the table,
  // which precedes them in the payload), then appended after the table
  // is written: the serial path stages once through scratch.stage, the
  // fan-out path keeps the per-chunk buffers and appends them directly.
  std::vector<Bytes> chunk_bytes;
  if (lane_pool != nullptr && n_sub > 1) {
    // Independent per-sub-block streams: chunks encode into their own
    // staging buffers, concatenated in order at assembly. Identical
    // bytes to the serial path.
    const std::size_t grain = std::max<std::size_t>(
        1, n_sub / (4 * lane_pool->parallelism()));
    const std::size_t n_chunks = (n_sub + grain - 1) / grain;
    chunk_bytes.resize(n_chunks);
    std::vector<std::uint64_t> lit_base(n_sub + 1, 0);
    for (std::size_t sb = 0; sb < n_sub; ++sb) {
      lit_base[sb + 1] = lit_base[sb] + scratch.subblocks[sb].n_literals;
    }
    lane_pool->parallel_for_chunked(n_sub, grain, [&](std::size_t sb_begin,
                                                      std::size_t sb_end) {
      ans::EncodeStreamWorkspace ws;
      encode_lanes(sb_begin, sb_end, lit_base[sb_begin],
                   chunk_bytes[sb_begin / grain], ws);
    });
    ++scratch.stats.lane_fanouts;
  } else {
    scratch.stage.clear();
    encode_lanes(0, n_sub, 0, scratch.stage, scratch.ans_ws);
  }

  Bytes& out = scratch.payload;
  out.clear();
  put_varint(out, n_seq);
  put_varint(out, block.literals.size());
  put_varint(out, n_sub);
  scratch.record_model.serialize(out);
  if (!block.literals.empty()) scratch.literal_model.serialize(out);
  for (const auto& info : scratch.subblocks) {
    put_varint(out, info.n_sequences);
    put_varint(out, info.n_literals);
    put_varint(out, info.record_bytes);
    put_varint(out, info.literal_bytes);
  }
  if (!chunk_bytes.empty()) {
    for (const auto& cb : chunk_bytes) out.insert(out.end(), cb.begin(), cb.end());
  } else {
    out.insert(out.end(), scratch.stage.begin(), scratch.stage.end());
  }

  ++scratch.stats.blocks;
  if (!scratch.pending_growth && models_warm && caps == scratch.capacities()) {
    ++scratch.stats.buffer_reuses;
  }
  scratch.pending_growth = false;
  return out;
}

Bytes encode_block_tans(const lz77::TokenBlock& block, const TansCodecConfig& config) {
  EncodeScratch scratch;
  encode_block_tans(block, config, scratch);
  return std::move(scratch.payload);
}

namespace {

/// Accumulates up to four same-model stream-decode jobs and flushes them
/// through the interleaved quad kernel. Stack-only, so lane decode stays
/// allocation-free.
struct StreamBatch {
  const ans::Model& model;
  ByteSpan streams[4];
  std::uint8_t* outs[4] = {};
  std::size_t counts[4] = {};
  int n = 0;

  explicit StreamBatch(const ans::Model& m) : model(m) {}

  void push(ByteSpan stream, std::uint8_t* out, std::size_t count) {
    streams[n] = stream;
    outs[n] = out;
    counts[n] = count;
    if (++n == 4) flush();
  }
  void flush() {
    ans::Model::decode_streams4(model, streams, outs, counts, n);
    n = 0;
  }
};

/// Decodes a contiguous range of sub-block lanes in three phases — record
/// streams four lanes wide, literal streams four lanes wide, then the
/// unpack + cross-check pass — so the tANS state chains of neighbouring
/// lanes overlap in the out-of-order core (the warp-lane decomposition
/// mapped onto CPU ILP). Returns the range's output byte count.
std::uint64_t decode_tans_lanes(ByteSpan payload, const TansLaneLayout* lanes,
                                std::size_t count, const ans::Model& record_model,
                                const ans::Model& literal_model,
                                lz77::TokenBlock& block, std::uint8_t* record_arena) {
  const auto lane_record_out = [&](const TansLaneLayout& lane) {
    return record_arena + std::size_t{lane.seq_base} * kByteRecordSize;
  };

  StreamBatch records(record_model);
  for (std::size_t i = 0; i < count; ++i) {
    const TansLaneLayout& lane = lanes[i];
    records.push(payload.subspan(static_cast<std::size_t>(lane.record_offset),
                                 static_cast<std::size_t>(lane.record_bytes)),
                 lane_record_out(lane), std::size_t{lane.n_sequences} * kByteRecordSize);
  }
  records.flush();

  StreamBatch literals(literal_model);
  for (std::size_t i = 0; i < count; ++i) {
    const TansLaneLayout& lane = lanes[i];
    if (lane.n_literals == 0) continue;  // no stream was written for the lane
    literals.push(payload.subspan(static_cast<std::size_t>(lane.literal_offset),
                                  static_cast<std::size_t>(lane.literal_bytes)),
                  block.literals.data() + lane.lit_base, lane.n_literals);
  }
  literals.flush();

  // Unpack the decoded record words and cross-check each lane's
  // record-derived literal count against the header's claim (the literal
  // spans above were sized from that claim; a disagreement is corrupt).
  std::uint64_t out_bytes = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const TansLaneLayout& lane = lanes[i];
    const std::uint8_t* record_out = lane_record_out(lane);
    lz77::Sequence* seq_out = block.sequences.data() + lane.seq_base;
    std::uint64_t sub_lits = 0;
    std::uint64_t match_bytes = 0;
    for (std::uint32_t k = 0; k < lane.n_sequences; ++k) {
      std::uint32_t word;
      std::memcpy(&word, record_out + std::size_t{k} * kByteRecordSize, 4);  // LE hosts
      const lz77::Sequence s = unpack_record(word);
      sub_lits += s.literal_len;
      match_bytes += s.match_len;
      seq_out[k] = s;
    }
    check(sub_lits == lane.n_literals, "tans codec: literal count mismatch");
    out_bytes += sub_lits + match_bytes;
  }
  return out_bytes;
}

}  // namespace

lz77::TokenBlock decode_block_tans(ByteSpan payload, const TansCodecConfig& config) {
  DecodeScratch scratch;
  decode_block_tans(payload, config, scratch);
  return std::move(scratch.block);
}

const lz77::TokenBlock& decode_block_tans(ByteSpan payload, const TansCodecConfig& config,
                                          DecodeScratch& scratch, ThreadPool* lane_pool,
                                          std::size_t max_output) {
  (void)config;  // models are self-describing; the config shapes encoding only
  std::size_t pos = 0;
  const std::uint64_t n_seq = get_varint(payload, pos);
  const std::uint64_t n_literals = get_varint(payload, pos);
  const std::uint64_t n_subblocks = get_varint(payload, pos);
  check(n_seq > 0, "tans codec: empty block");
  // Lane output slots are 32-bit; a block's output size is uint32 too, so
  // counts beyond that are corrupt and must not wrap the prefix sums.
  check(n_seq <= 0xFFFFFFFFull && n_literals <= 0xFFFFFFFFull,
        "tans codec: block counts exceed 32-bit bounds");
  // Bound the claimed counts BEFORE any buffer is sized from them — tANS
  // streams can legitimately pack many symbols per byte (0-bit symbols
  // under a degenerate model), so unlike the byte codec there is no
  // exact records-per-payload-byte bound. With the block's uncompressed
  // size in hand the bounds are exact: a block emits at most max_output
  // bytes and every non-terminator sequence emits at least min-match
  // (3). Standalone decodes fall back to a generous payload-relative
  // plausibility cap (64 Ki claimed symbols per payload byte) that still
  // turns a ~30-byte allocation bomb into a clean Error instead of a
  // std::bad_alloc from a multi-gigabyte resize.
  if (max_output != 0) {
    check(n_literals <= max_output, "tans codec: literal count exceeds block size");
    check(n_seq <= max_output / 3 + 2, "tans codec: sequence count exceeds block size");
  } else {
    const std::uint64_t cap = static_cast<std::uint64_t>(payload.size()) << 16;
    check(n_seq <= cap && n_literals <= cap,
          "tans codec: block counts implausible for payload size");
  }
  check(n_subblocks > 0 && n_subblocks <= n_seq, "tans codec: bad sub-block count");
  // Each sub-block table entry takes at least 4 varint bytes, so a count
  // that outruns the remaining payload is corrupt — reject it before the
  // lane-table resize can be made to allocate gigabytes by a few crafted
  // header bytes.
  check(n_subblocks <= (payload.size() - pos) / 4,
        "tans codec: sub-block count outruns payload");

  const std::size_t record_raw_total = static_cast<std::size_t>(n_seq) * kByteRecordSize;
  const bool buffers_fit =
      scratch.tans_lanes.capacity() >= n_subblocks &&
      scratch.block.sequences.capacity() >= n_seq &&
      scratch.block.literals.capacity() >= n_literals &&
      scratch.record_bytes.capacity() >= record_raw_total;

  // Rebuild the two shared models in the scratch's reusable storage
  // (§III-B.1's shared-table idea with tANS state tables).
  bool models_warm = scratch.record_model.deserialize_decode_into(payload, pos);
  ++scratch.stats.table_builds;
  if (n_literals > 0) {
    models_warm &= scratch.literal_model.deserialize_decode_into(payload, pos);
    ++scratch.stats.table_builds;
  }

  // Parse the sub-block table and derive every lane's stream extents and
  // output slots via prefix sums — the header's whole purpose (§III-A).
  scratch.tans_lanes.resize(static_cast<std::size_t>(n_subblocks));
  std::uint64_t seq_total = 0, lit_total = 0;
  for (auto& lane : scratch.tans_lanes) {
    const std::uint64_t ns = get_varint(payload, pos);
    const std::uint64_t nl = get_varint(payload, pos);
    // Reject before narrowing: a crafted 2^32 + k varint must not alias a
    // small count (the u64 running totals can be made to agree with it).
    check(ns <= 0xFFFFFFFFull && nl <= 0xFFFFFFFFull,
          "tans codec: sub-block counts exceed 32-bit bounds");
    lane.n_sequences = static_cast<std::uint32_t>(ns);
    lane.n_literals = static_cast<std::uint32_t>(nl);
    lane.record_bytes = get_varint(payload, pos);
    lane.literal_bytes = get_varint(payload, pos);
    lane.seq_base = static_cast<std::uint32_t>(seq_total);
    lane.lit_base = static_cast<std::uint32_t>(lit_total);
    seq_total += lane.n_sequences;
    lit_total += lane.n_literals;
  }
  check(seq_total == n_seq, "tans codec: sub-block sequence counts disagree");
  check(lit_total == n_literals, "tans codec: sub-block literal counts disagree");

  // Locate every lane's streams. Each size is validated against the
  // remaining payload on its own — summing sizes first wraps for crafted
  // varints near 2^64 and would let the subspans read out of bounds.
  std::size_t stream_pos = pos;
  for (auto& lane : scratch.tans_lanes) {
    check(lane.record_bytes <= payload.size() - stream_pos,
          "tans codec: truncated record stream");
    lane.record_offset = stream_pos;
    stream_pos += static_cast<std::size_t>(lane.record_bytes);
    check(lane.literal_bytes <= payload.size() - stream_pos,
          "tans codec: truncated literal stream");
    lane.literal_offset = stream_pos;
    stream_pos += static_cast<std::size_t>(lane.literal_bytes);
  }
  check(stream_pos == payload.size(), "tans codec: trailing bytes in payload");

  lz77::TokenBlock& block = scratch.block;
  block.sequences.resize(static_cast<std::size_t>(n_seq));
  block.literals.resize(static_cast<std::size_t>(n_literals));
  scratch.record_bytes.resize(record_raw_total);

  // Each lane's streams and output slots are known up front, so lanes are
  // independent; with a lane pool they run on real threads (the paper's
  // intra-block parallelism), otherwise lock-step-equivalently in a loop.
  std::atomic<std::uint64_t> out_bytes{0};
  auto decode_lanes = [&](std::size_t begin, std::size_t end) {
    const std::uint64_t local = decode_tans_lanes(
        payload, scratch.tans_lanes.data() + begin, end - begin, scratch.record_model,
        scratch.literal_model, block, scratch.record_bytes.data());
    out_bytes.fetch_add(local, std::memory_order_relaxed);
  };
  if (lane_pool != nullptr && n_subblocks > 1) {
    const std::size_t grain = std::max<std::size_t>(
        1, static_cast<std::size_t>(n_subblocks) / (4 * lane_pool->parallelism()));
    lane_pool->parallel_for_chunked(static_cast<std::size_t>(n_subblocks), grain,
                                    decode_lanes);
    ++scratch.stats.lane_fanouts;
  } else {
    decode_lanes(0, static_cast<std::size_t>(n_subblocks));
  }
  const std::uint64_t total = out_bytes.load();
  check(total <= 0xFFFFFFFFull, "tans codec: block too large");
  block.uncompressed_size = static_cast<std::uint32_t>(total);

  ++scratch.stats.blocks;
  if (buffers_fit && models_warm) ++scratch.stats.buffer_reuses;
  return block;
}

}  // namespace gompresso::core
