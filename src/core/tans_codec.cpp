#include "core/tans_codec.hpp"

#include <atomic>
#include <cstring>
#include <vector>

#include "ans/tans.hpp"
#include "core/byte_codec.hpp"
#include "util/thread_pool.hpp"
#include "util/varint.hpp"

namespace gompresso::core {
namespace {

struct SubblockInfo {
  std::uint32_t n_sequences = 0;
  std::uint32_t n_literals = 0;
  std::uint64_t record_bytes = 0;   // encoded record-stream size
  std::uint64_t literal_bytes = 0;  // encoded literal-stream size
};

/// Serialises a sub-block's records as packed little-endian words.
Bytes pack_records(const lz77::Sequence* seqs, std::size_t count) {
  Bytes raw;
  raw.reserve(count * kByteRecordSize);
  for (std::size_t i = 0; i < count; ++i) put_u32le(raw, pack_record(seqs[i]));
  return raw;
}

}  // namespace

Bytes encode_block_tans(const lz77::TokenBlock& block, const TansCodecConfig& config) {
  check(config.tokens_per_subblock >= 1, "tans codec: tokens_per_subblock must be >= 1");
  check(!block.sequences.empty(), "tans codec: empty block");

  // Block-wide histograms -> the two shared models (§III-B.1 analogue).
  std::vector<std::uint64_t> record_freqs(256, 0);
  {
    const Bytes all_records = pack_records(block.sequences.data(), block.sequences.size());
    for (const auto b : all_records) ++record_freqs[b];
  }
  const ans::Model record_model =
      ans::Model::from_frequencies(record_freqs, config.table_log);
  ans::Model literal_model;
  if (!block.literals.empty()) {
    std::vector<std::uint64_t> literal_freqs(256, 0);
    for (const auto b : block.literals) ++literal_freqs[b];
    literal_model = ans::Model::from_frequencies(literal_freqs, config.table_log);
  }

  // Per sub-block: encode the record words and the literal slab as
  // independent streams against the shared models.
  std::vector<SubblockInfo> table;
  std::vector<Bytes> streams;
  const std::size_t n_seq = block.sequences.size();
  const std::uint8_t* lit = block.literals.data();
  std::size_t seq_index = 0;
  while (seq_index < n_seq) {
    SubblockInfo info;
    const std::size_t count =
        std::min<std::size_t>(config.tokens_per_subblock, n_seq - seq_index);
    info.n_sequences = static_cast<std::uint32_t>(count);
    for (std::size_t k = 0; k < count; ++k) {
      info.n_literals += block.sequences[seq_index + k].literal_len;
    }
    const Bytes raw_records = pack_records(block.sequences.data() + seq_index, count);
    Bytes rec_stream = record_model.encode_stream(raw_records);
    info.record_bytes = rec_stream.size();
    Bytes lit_stream;
    if (info.n_literals != 0) {
      lit_stream = literal_model.encode_stream(ByteSpan(lit, info.n_literals));
    }
    info.literal_bytes = lit_stream.size();
    lit += info.n_literals;
    table.push_back(info);
    streams.push_back(std::move(rec_stream));
    streams.push_back(std::move(lit_stream));
    seq_index += count;
  }

  Bytes out;
  put_varint(out, n_seq);
  put_varint(out, block.literals.size());
  put_varint(out, table.size());
  record_model.serialize(out);
  if (!block.literals.empty()) literal_model.serialize(out);
  for (const auto& info : table) {
    put_varint(out, info.n_sequences);
    put_varint(out, info.n_literals);
    put_varint(out, info.record_bytes);
    put_varint(out, info.literal_bytes);
  }
  for (const auto& s : streams) out.insert(out.end(), s.begin(), s.end());
  return out;
}

namespace {

/// Accumulates up to four same-model stream-decode jobs and flushes them
/// through the interleaved quad kernel. Stack-only, so lane decode stays
/// allocation-free.
struct StreamBatch {
  const ans::Model& model;
  ByteSpan streams[4];
  std::uint8_t* outs[4] = {};
  std::size_t counts[4] = {};
  int n = 0;

  explicit StreamBatch(const ans::Model& m) : model(m) {}

  void push(ByteSpan stream, std::uint8_t* out, std::size_t count) {
    streams[n] = stream;
    outs[n] = out;
    counts[n] = count;
    if (++n == 4) flush();
  }
  void flush() {
    ans::Model::decode_streams4(model, streams, outs, counts, n);
    n = 0;
  }
};

/// Decodes a contiguous range of sub-block lanes in three phases — record
/// streams four lanes wide, literal streams four lanes wide, then the
/// unpack + cross-check pass — so the tANS state chains of neighbouring
/// lanes overlap in the out-of-order core (the warp-lane decomposition
/// mapped onto CPU ILP). Returns the range's output byte count.
std::uint64_t decode_tans_lanes(ByteSpan payload, const TansLaneLayout* lanes,
                                std::size_t count, const ans::Model& record_model,
                                const ans::Model& literal_model,
                                lz77::TokenBlock& block, std::uint8_t* record_arena) {
  const auto lane_record_out = [&](const TansLaneLayout& lane) {
    return record_arena + std::size_t{lane.seq_base} * kByteRecordSize;
  };

  StreamBatch records(record_model);
  for (std::size_t i = 0; i < count; ++i) {
    const TansLaneLayout& lane = lanes[i];
    records.push(payload.subspan(static_cast<std::size_t>(lane.record_offset),
                                 static_cast<std::size_t>(lane.record_bytes)),
                 lane_record_out(lane), std::size_t{lane.n_sequences} * kByteRecordSize);
  }
  records.flush();

  StreamBatch literals(literal_model);
  for (std::size_t i = 0; i < count; ++i) {
    const TansLaneLayout& lane = lanes[i];
    if (lane.n_literals == 0) continue;  // no stream was written for the lane
    literals.push(payload.subspan(static_cast<std::size_t>(lane.literal_offset),
                                  static_cast<std::size_t>(lane.literal_bytes)),
                  block.literals.data() + lane.lit_base, lane.n_literals);
  }
  literals.flush();

  // Unpack the decoded record words and cross-check each lane's
  // record-derived literal count against the header's claim (the literal
  // spans above were sized from that claim; a disagreement is corrupt).
  std::uint64_t out_bytes = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const TansLaneLayout& lane = lanes[i];
    const std::uint8_t* record_out = lane_record_out(lane);
    lz77::Sequence* seq_out = block.sequences.data() + lane.seq_base;
    std::uint64_t sub_lits = 0;
    std::uint64_t match_bytes = 0;
    for (std::uint32_t k = 0; k < lane.n_sequences; ++k) {
      std::uint32_t word;
      std::memcpy(&word, record_out + std::size_t{k} * kByteRecordSize, 4);  // LE hosts
      const lz77::Sequence s = unpack_record(word);
      sub_lits += s.literal_len;
      match_bytes += s.match_len;
      seq_out[k] = s;
    }
    check(sub_lits == lane.n_literals, "tans codec: literal count mismatch");
    out_bytes += sub_lits + match_bytes;
  }
  return out_bytes;
}

}  // namespace

lz77::TokenBlock decode_block_tans(ByteSpan payload, const TansCodecConfig& config) {
  DecodeScratch scratch;
  decode_block_tans(payload, config, scratch);
  return std::move(scratch.block);
}

const lz77::TokenBlock& decode_block_tans(ByteSpan payload, const TansCodecConfig& config,
                                          DecodeScratch& scratch, ThreadPool* lane_pool,
                                          std::size_t max_output) {
  (void)config;  // models are self-describing; the config shapes encoding only
  std::size_t pos = 0;
  const std::uint64_t n_seq = get_varint(payload, pos);
  const std::uint64_t n_literals = get_varint(payload, pos);
  const std::uint64_t n_subblocks = get_varint(payload, pos);
  check(n_seq > 0, "tans codec: empty block");
  // Lane output slots are 32-bit; a block's output size is uint32 too, so
  // counts beyond that are corrupt and must not wrap the prefix sums.
  check(n_seq <= 0xFFFFFFFFull && n_literals <= 0xFFFFFFFFull,
        "tans codec: block counts exceed 32-bit bounds");
  // Bound the claimed counts BEFORE any buffer is sized from them — tANS
  // streams can legitimately pack many symbols per byte (0-bit symbols
  // under a degenerate model), so unlike the byte codec there is no
  // exact records-per-payload-byte bound. With the block's uncompressed
  // size in hand the bounds are exact: a block emits at most max_output
  // bytes and every non-terminator sequence emits at least min-match
  // (3). Standalone decodes fall back to a generous payload-relative
  // plausibility cap (64 Ki claimed symbols per payload byte) that still
  // turns a ~30-byte allocation bomb into a clean Error instead of a
  // std::bad_alloc from a multi-gigabyte resize.
  if (max_output != 0) {
    check(n_literals <= max_output, "tans codec: literal count exceeds block size");
    check(n_seq <= max_output / 3 + 2, "tans codec: sequence count exceeds block size");
  } else {
    const std::uint64_t cap = static_cast<std::uint64_t>(payload.size()) << 16;
    check(n_seq <= cap && n_literals <= cap,
          "tans codec: block counts implausible for payload size");
  }
  check(n_subblocks > 0 && n_subblocks <= n_seq, "tans codec: bad sub-block count");
  // Each sub-block table entry takes at least 4 varint bytes, so a count
  // that outruns the remaining payload is corrupt — reject it before the
  // lane-table resize can be made to allocate gigabytes by a few crafted
  // header bytes.
  check(n_subblocks <= (payload.size() - pos) / 4,
        "tans codec: sub-block count outruns payload");

  const std::size_t record_raw_total = static_cast<std::size_t>(n_seq) * kByteRecordSize;
  const bool buffers_fit =
      scratch.tans_lanes.capacity() >= n_subblocks &&
      scratch.block.sequences.capacity() >= n_seq &&
      scratch.block.literals.capacity() >= n_literals &&
      scratch.record_bytes.capacity() >= record_raw_total;

  // Rebuild the two shared models in the scratch's reusable storage
  // (§III-B.1's shared-table idea with tANS state tables).
  bool models_warm = scratch.record_model.deserialize_decode_into(payload, pos);
  ++scratch.stats.table_builds;
  if (n_literals > 0) {
    models_warm &= scratch.literal_model.deserialize_decode_into(payload, pos);
    ++scratch.stats.table_builds;
  }

  // Parse the sub-block table and derive every lane's stream extents and
  // output slots via prefix sums — the header's whole purpose (§III-A).
  scratch.tans_lanes.resize(static_cast<std::size_t>(n_subblocks));
  std::uint64_t seq_total = 0, lit_total = 0;
  for (auto& lane : scratch.tans_lanes) {
    const std::uint64_t ns = get_varint(payload, pos);
    const std::uint64_t nl = get_varint(payload, pos);
    // Reject before narrowing: a crafted 2^32 + k varint must not alias a
    // small count (the u64 running totals can be made to agree with it).
    check(ns <= 0xFFFFFFFFull && nl <= 0xFFFFFFFFull,
          "tans codec: sub-block counts exceed 32-bit bounds");
    lane.n_sequences = static_cast<std::uint32_t>(ns);
    lane.n_literals = static_cast<std::uint32_t>(nl);
    lane.record_bytes = get_varint(payload, pos);
    lane.literal_bytes = get_varint(payload, pos);
    lane.seq_base = static_cast<std::uint32_t>(seq_total);
    lane.lit_base = static_cast<std::uint32_t>(lit_total);
    seq_total += lane.n_sequences;
    lit_total += lane.n_literals;
  }
  check(seq_total == n_seq, "tans codec: sub-block sequence counts disagree");
  check(lit_total == n_literals, "tans codec: sub-block literal counts disagree");

  // Locate every lane's streams. Each size is validated against the
  // remaining payload on its own — summing sizes first wraps for crafted
  // varints near 2^64 and would let the subspans read out of bounds.
  std::size_t stream_pos = pos;
  for (auto& lane : scratch.tans_lanes) {
    check(lane.record_bytes <= payload.size() - stream_pos,
          "tans codec: truncated record stream");
    lane.record_offset = stream_pos;
    stream_pos += static_cast<std::size_t>(lane.record_bytes);
    check(lane.literal_bytes <= payload.size() - stream_pos,
          "tans codec: truncated literal stream");
    lane.literal_offset = stream_pos;
    stream_pos += static_cast<std::size_t>(lane.literal_bytes);
  }
  check(stream_pos == payload.size(), "tans codec: trailing bytes in payload");

  lz77::TokenBlock& block = scratch.block;
  block.sequences.resize(static_cast<std::size_t>(n_seq));
  block.literals.resize(static_cast<std::size_t>(n_literals));
  scratch.record_bytes.resize(record_raw_total);

  // Each lane's streams and output slots are known up front, so lanes are
  // independent; with a lane pool they run on real threads (the paper's
  // intra-block parallelism), otherwise lock-step-equivalently in a loop.
  std::atomic<std::uint64_t> out_bytes{0};
  auto decode_lanes = [&](std::size_t begin, std::size_t end) {
    const std::uint64_t local = decode_tans_lanes(
        payload, scratch.tans_lanes.data() + begin, end - begin, scratch.record_model,
        scratch.literal_model, block, scratch.record_bytes.data());
    out_bytes.fetch_add(local, std::memory_order_relaxed);
  };
  if (lane_pool != nullptr && n_subblocks > 1) {
    const std::size_t grain = std::max<std::size_t>(
        1, static_cast<std::size_t>(n_subblocks) / (4 * lane_pool->parallelism()));
    lane_pool->parallel_for_chunked(static_cast<std::size_t>(n_subblocks), grain,
                                    decode_lanes);
    ++scratch.stats.lane_fanouts;
  } else {
    decode_lanes(0, static_cast<std::size_t>(n_subblocks));
  }
  const std::uint64_t total = out_bytes.load();
  check(total <= 0xFFFFFFFFull, "tans codec: block too large");
  block.uncompressed_size = static_cast<std::uint32_t>(total);

  ++scratch.stats.blocks;
  if (buffers_fit && models_warm) ++scratch.stats.buffer_reuses;
  return block;
}

}  // namespace gompresso::core
