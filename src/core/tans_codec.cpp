#include "core/tans_codec.hpp"

#include <vector>

#include "ans/tans.hpp"
#include "core/byte_codec.hpp"
#include "util/varint.hpp"

namespace gompresso::core {
namespace {

struct SubblockInfo {
  std::uint32_t n_sequences = 0;
  std::uint32_t n_literals = 0;
  std::uint64_t record_bytes = 0;   // encoded record-stream size
  std::uint64_t literal_bytes = 0;  // encoded literal-stream size
};

/// Serialises a sub-block's records as packed little-endian words.
Bytes pack_records(const lz77::Sequence* seqs, std::size_t count) {
  Bytes raw;
  raw.reserve(count * kByteRecordSize);
  for (std::size_t i = 0; i < count; ++i) put_u32le(raw, pack_record(seqs[i]));
  return raw;
}

}  // namespace

Bytes encode_block_tans(const lz77::TokenBlock& block, const TansCodecConfig& config) {
  check(config.tokens_per_subblock >= 1, "tans codec: tokens_per_subblock must be >= 1");
  check(!block.sequences.empty(), "tans codec: empty block");

  // Block-wide histograms -> the two shared models (§III-B.1 analogue).
  std::vector<std::uint64_t> record_freqs(256, 0);
  {
    const Bytes all_records = pack_records(block.sequences.data(), block.sequences.size());
    for (const auto b : all_records) ++record_freqs[b];
  }
  const ans::Model record_model =
      ans::Model::from_frequencies(record_freqs, config.table_log);
  ans::Model literal_model;
  if (!block.literals.empty()) {
    std::vector<std::uint64_t> literal_freqs(256, 0);
    for (const auto b : block.literals) ++literal_freqs[b];
    literal_model = ans::Model::from_frequencies(literal_freqs, config.table_log);
  }

  // Per sub-block: encode the record words and the literal slab as
  // independent streams against the shared models.
  std::vector<SubblockInfo> table;
  std::vector<Bytes> streams;
  const std::size_t n_seq = block.sequences.size();
  const std::uint8_t* lit = block.literals.data();
  std::size_t seq_index = 0;
  while (seq_index < n_seq) {
    SubblockInfo info;
    const std::size_t count =
        std::min<std::size_t>(config.tokens_per_subblock, n_seq - seq_index);
    info.n_sequences = static_cast<std::uint32_t>(count);
    for (std::size_t k = 0; k < count; ++k) {
      info.n_literals += block.sequences[seq_index + k].literal_len;
    }
    const Bytes raw_records = pack_records(block.sequences.data() + seq_index, count);
    Bytes rec_stream = record_model.encode_stream(raw_records);
    info.record_bytes = rec_stream.size();
    Bytes lit_stream;
    if (info.n_literals != 0) {
      lit_stream = literal_model.encode_stream(ByteSpan(lit, info.n_literals));
    }
    info.literal_bytes = lit_stream.size();
    lit += info.n_literals;
    table.push_back(info);
    streams.push_back(std::move(rec_stream));
    streams.push_back(std::move(lit_stream));
    seq_index += count;
  }

  Bytes out;
  put_varint(out, n_seq);
  put_varint(out, block.literals.size());
  put_varint(out, table.size());
  record_model.serialize(out);
  if (!block.literals.empty()) literal_model.serialize(out);
  for (const auto& info : table) {
    put_varint(out, info.n_sequences);
    put_varint(out, info.n_literals);
    put_varint(out, info.record_bytes);
    put_varint(out, info.literal_bytes);
  }
  for (const auto& s : streams) out.insert(out.end(), s.begin(), s.end());
  return out;
}

lz77::TokenBlock decode_block_tans(ByteSpan payload, const TansCodecConfig& config) {
  (void)config;  // models are self-describing; the config shapes encoding only
  std::size_t pos = 0;
  const std::uint64_t n_seq = get_varint(payload, pos);
  const std::uint64_t n_literals = get_varint(payload, pos);
  const std::uint64_t n_subblocks = get_varint(payload, pos);
  check(n_seq > 0, "tans codec: empty block");
  check(n_subblocks > 0 && n_subblocks <= n_seq, "tans codec: bad sub-block count");

  const ans::Model record_model = ans::Model::deserialize(payload, pos);
  ans::Model literal_model;
  if (n_literals > 0) literal_model = ans::Model::deserialize(payload, pos);

  std::vector<SubblockInfo> table(static_cast<std::size_t>(n_subblocks));
  std::uint64_t seq_total = 0, lit_total = 0;
  for (auto& info : table) {
    info.n_sequences = static_cast<std::uint32_t>(get_varint(payload, pos));
    info.n_literals = static_cast<std::uint32_t>(get_varint(payload, pos));
    info.record_bytes = get_varint(payload, pos);
    info.literal_bytes = get_varint(payload, pos);
    seq_total += info.n_sequences;
    lit_total += info.n_literals;
  }
  check(seq_total == n_seq, "tans codec: sub-block sequence counts disagree");
  check(lit_total == n_literals, "tans codec: sub-block literal counts disagree");

  lz77::TokenBlock block;
  block.sequences.resize(static_cast<std::size_t>(n_seq));
  block.literals.resize(static_cast<std::size_t>(n_literals));

  // Lane-parallel decode: every sub-block's streams and output slots are
  // known up front, so lanes are independent (executed as a loop here).
  std::size_t seq_base = 0;
  std::size_t lit_base = 0;
  for (const auto& info : table) {
    check(pos + info.record_bytes + info.literal_bytes <= payload.size(),
          "tans codec: truncated streams");
    const Bytes raw_records = record_model.decode_stream(
        payload.subspan(pos, static_cast<std::size_t>(info.record_bytes)),
        info.n_sequences * kByteRecordSize);
    pos += static_cast<std::size_t>(info.record_bytes);
    std::size_t rp = 0;
    for (std::uint32_t k = 0; k < info.n_sequences; ++k) {
      block.sequences[seq_base + k] = unpack_record(get_u32le(raw_records, rp));
    }
    std::uint64_t sub_lits = 0;
    for (std::uint32_t k = 0; k < info.n_sequences; ++k) {
      sub_lits += block.sequences[seq_base + k].literal_len;
    }
    check(sub_lits == info.n_literals, "tans codec: literal count mismatch");
    if (info.n_literals != 0) {
      const Bytes lits = literal_model.decode_stream(
          payload.subspan(pos, static_cast<std::size_t>(info.literal_bytes)),
          info.n_literals);
      std::copy(lits.begin(), lits.end(),
                block.literals.begin() + static_cast<std::ptrdiff_t>(lit_base));
    }
    pos += static_cast<std::size_t>(info.literal_bytes);
    seq_base += info.n_sequences;
    lit_base += info.n_literals;
  }
  check(pos == payload.size(), "tans codec: trailing bytes in payload");
  block.uncompressed_size = block.computed_size();
  return block;
}

}  // namespace gompresso::core
