#include "core/stream.hpp"

#include <fstream>
#include <istream>
#include <memory>
#include <ostream>
#include <vector>

#include "core/block_decode.hpp"
#include "core/compressor.hpp"
#include "core/decompressor.hpp"
#include "serve/decode_session.hpp"
#include "util/byte_reader.hpp"
#include "util/varint.hpp"

namespace gompresso {
namespace {

void write_bytes(std::ostream& out, ByteSpan data) {
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  check(out.good(), "stream: write failed");
}

/// Decode path for seekable inputs: a DecodeSession over the stream gives
/// the pipelined-prefetch engine, and memory stays bounded by its window
/// regardless of segment size (the old implementation buffered whole
/// segments).
std::uint64_t decompress_stream_session(std::istream& in, std::ostream& out,
                                        const DecompressOptions& options) {
  serve::SessionOptions sopt;
  sopt.num_threads = options.num_threads;
  sopt.verify_checksums = options.verify_checksums;
  sopt.auto_strategy = options.auto_strategy;
  sopt.strategy = options.strategy;

  const std::istream::pos_type base = in.tellg();
  // The session accepts a GMPS stream or a bare GMPZ container — the
  // decode front end serves either.
  serve::DecodeSession session(serve::istream_source(in), sopt);

  Bytes chunk(kStreamCopyChunk);
  std::uint64_t total = 0;
  while (true) {
    const std::size_t n = session.read(MutableByteSpan(chunk.data(), chunk.size()));
    if (n == 0) break;
    write_bytes(out, ByteSpan(chunk.data(), n));
    total += n;
  }
  // Leave the stream where sequential consumption would: just past the
  // terminator (the session's random-access reads scattered the cursor).
  in.clear();
  in.seekg(base + static_cast<std::streamoff>(session.index().compressed_end()));
  return total;
}

/// Decode path for non-seekable inputs (pipes): one segment header at a
/// time through the buffered reader, then batches of blocks decoded in
/// parallel through the same decode_block_at() the sessions use. Memory
/// is one pool-sized batch of compressed + decoded blocks — the same
/// O(parallelism x block) shape as a session window, never a whole
/// segment.
std::uint64_t decompress_stream_sequential(std::istream& in, std::ostream& out,
                                           const DecompressOptions& options) {
  // buffer_size 1: a pipe cannot seek back, so the reader must consume
  // byte-exactly — anything after the terminator belongs to the caller
  // (e.g. a second concatenated stream). Framing varints and headers are
  // a few hundred bytes per 64 MiB segment; the block payloads, which
  // are the volume, go through read_exact's direct bulk path.
  util::IstreamReader reader(in, /*buffer_size=*/1);

  // Same thread-plan selection as decompress(): a pipe narrows the
  // *input* to one cursor, not the decode itself.
  ThreadPool* pool = nullptr;
  std::unique_ptr<ThreadPool> own_pool;
  if (options.num_threads == 0) {
    pool = &default_pool();
  } else if (options.num_threads > 1) {
    own_pool = std::make_unique<ThreadPool>(options.num_threads);
    pool = own_pool.get();
  }
  const std::size_t batch = pool != nullptr ? pool->parallelism() : 1;

  std::vector<core::BlockDecodeContext> ctxs(batch);
  std::vector<Bytes> comp(batch);
  std::vector<Bytes> decoded(batch);
  std::uint64_t total = 0;
  const auto decode_blocks = [&](const format::FileHeader& header) {
    // A pipe has no payload length to validate the header's sizes
    // against (the seekable path bounds them by the real file size), and
    // the decode buffer is allocated before any payload arrives — so cap
    // the block size absolutely; 1 GiB is far beyond any plausible
    // configuration (the CLI caps --block at the same bound).
    check(header.block_size <= (1u << 30), "stream: implausible block size");
    const Strategy strategy = core::resolve_strategy(options, header);
    for (std::size_t b = 0; b < header.num_blocks(); b += batch) {
      const std::size_t n = std::min(batch, header.num_blocks() - b);
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t comp_size = header.block_compressed_sizes[b + i];
        const std::uint64_t uncomp_len = std::min<std::uint64_t>(
            header.block_size, header.uncompressed_size -
                                   static_cast<std::uint64_t>(b + i) * header.block_size);
        // Bound each block's compressed size by what any codec here
        // could plausibly emit — the worst case is well under 16x even
        // with degenerate sub-block settings — so a crafted huge size
        // fails with a clean Error, not std::length_error.
        check(comp_size <= 16 * uncomp_len + 65536,
              "stream: implausible compressed block size");
        // Grow the staging buffer while reading rather than trusting
        // comp_size up front: allocation never outruns bytes actually
        // received, so a lying size fails at EOF ("truncated input")
        // with memory proportional to what was sent, not claimed.
        comp[i].clear();
        std::uint64_t filled = 0;
        while (filled < comp_size) {
          const std::size_t step = static_cast<std::size_t>(
              std::min<std::uint64_t>(comp_size - filled, 16u << 20));
          comp[i].resize(static_cast<std::size_t>(filled) + step);
          reader.read_exact(MutableByteSpan(comp[i].data() + filled, step));
          filled += step;
        }
        decoded[i].resize(static_cast<std::size_t>(uncomp_len));
      }
      const auto decode_one = [&](std::size_t worker, std::size_t i) {
        core::decode_block_at(header, comp[i],
                              MutableByteSpan(decoded[i].data(), decoded[i].size()),
                              strategy, options.verify_checksums, ctxs[worker]);
      };
      if (n == 1 || pool == nullptr) {
        for (std::size_t i = 0; i < n; ++i) decode_one(0, i);
      } else {
        pool->parallel_for_worker(n, decode_one);
      }
      for (std::size_t i = 0; i < n; ++i) {
        write_bytes(out, decoded[i]);
        total += decoded[i].size();
      }
    }
  };

  const std::uint32_t magic = reader.read_u32le();
  if (magic == format::kMagic) {
    // A bare GMPZ container (accepted on either path): no framing, so
    // there is no payload size to validate against — the size list alone
    // delimits the blocks, and consumption stops exactly after the last.
    // The block-count invariant still must hold, or a corrupt header
    // claiming fewer blocks silently truncates the output.
    const format::FileHeader header = format::FileHeader::deserialize_body(reader);
    header.check_block_count();
    decode_blocks(header);
    return total;
  }
  check(magic == kStreamMagic, "stream: bad magic");
  while (true) {
    const std::uint64_t segment_size = reader.read_varint();
    if (segment_size == 0) break;  // terminator
    check(segment_size <= (1ull << 40), "stream: implausible segment size");
    const std::uint64_t segment_begin = reader.offset();
    const format::FileHeader header = format::FileHeader::deserialize(reader);
    const std::uint64_t header_bytes = reader.offset() - segment_begin;
    check(header_bytes <= segment_size, "stream: segment smaller than its header");
    header.check_payload(segment_size - header_bytes);
    decode_blocks(header);
  }
  return total;
}

}  // namespace

std::uint64_t compress_stream(std::istream& in, std::ostream& out,
                              const CompressOptions& options,
                              std::size_t chunk_size) {
  check(chunk_size >= options.block_size, "stream: chunk smaller than a block");
  Bytes magic;
  put_u32le(magic, kStreamMagic);
  write_bytes(out, magic);

  std::uint64_t total = 0;
  Bytes chunk(chunk_size);
  while (in.good()) {
    in.read(reinterpret_cast<char*>(chunk.data()),
            static_cast<std::streamsize>(chunk.size()));
    const std::size_t got = static_cast<std::size_t>(in.gcount());
    if (got == 0) break;
    total += got;
    const Bytes segment = compress(ByteSpan(chunk.data(), got), options);
    Bytes framing;
    put_varint(framing, segment.size());
    write_bytes(out, framing);
    write_bytes(out, segment);
  }
  check(in.eof() || in.good(), "stream: read failed");
  out.put(0);  // zero-length terminator
  check(out.good(), "stream: write failed");
  return total;
}

std::uint64_t decompress_stream(std::istream& in, std::ostream& out,
                                const DecompressOptions& options) {
  const bool seekable = in.tellg() != std::istream::pos_type(-1);
  if (!seekable) in.clear();  // a failed tellg may latch failbit
  return seekable ? decompress_stream_session(in, out, options)
                  : decompress_stream_sequential(in, out, options);
}

std::uint64_t compress_file(const std::string& input_path,
                            const std::string& output_path,
                            const CompressOptions& options, std::size_t chunk_size) {
  std::ifstream in(input_path, std::ios::binary);
  check(in.good(), "stream: cannot open input file");
  std::ofstream out(output_path, std::ios::binary);
  check(out.good(), "stream: cannot open output file");
  return compress_stream(in, out, options, chunk_size);
}

std::uint64_t decompress_file(const std::string& input_path,
                              const std::string& output_path,
                              const DecompressOptions& options) {
  std::ifstream in(input_path, std::ios::binary);
  check(in.good(), "stream: cannot open input file");
  std::ofstream out(output_path, std::ios::binary);
  check(out.good(), "stream: cannot open output file");
  return decompress_stream(in, out, options);
}

}  // namespace gompresso
