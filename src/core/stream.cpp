#include "core/stream.hpp"

#include <fstream>
#include <istream>
#include <memory>
#include <ostream>
#include <vector>

#include "core/block_decode.hpp"
#include "core/compressor.hpp"
#include "core/decompressor.hpp"
#include "core/open.hpp"
#include "format/sniff.hpp"
#include "ingest/gzip_format.hpp"
#include "ingest/inflate.hpp"
#include "serve/decode_session.hpp"
#include "util/byte_reader.hpp"
#include "util/varint.hpp"

namespace gompresso {
namespace {

void write_bytes(std::ostream& out, ByteSpan data) {
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  check(out.good(), "stream: write failed");
}

/// Decode path for seekable inputs: gompresso::open() sniffs the
/// container (GMPS, bare GMPZ, or gzip) and a DecodeSession over the
/// stream gives the pipelined-prefetch engine; memory stays bounded by
/// its window regardless of segment size (the old implementation
/// buffered whole segments).
std::uint64_t decompress_stream_session(std::istream& in, std::ostream& out,
                                        const DecompressOptions& options) {
  OpenOptions oopt;
  oopt.session.num_threads = options.num_threads;
  oopt.session.verify_checksums = options.verify_checksums;
  oopt.session.auto_strategy = options.auto_strategy;
  oopt.session.strategy = options.strategy;

  const std::istream::pos_type base = in.tellg();
  std::unique_ptr<serve::DecodeSession> session =
      open(serve::istream_source(in), oopt);

  Bytes chunk(kStreamCopyChunk);
  std::uint64_t total = 0;
  while (true) {
    const std::size_t n = session->read(MutableByteSpan(chunk.data(), chunk.size()));
    if (n == 0) break;
    write_bytes(out, ByteSpan(chunk.data(), n));
    total += n;
  }
  // Leave the stream where sequential consumption would: just past the
  // terminator (the session's random-access reads scattered the cursor).
  in.clear();
  in.seekg(base + static_cast<std::streamoff>(session->compressed_end()));
  return total;
}

/// Sequential gzip decode for non-seekable inputs. The compressed bytes
/// are slurped (a pipe cannot be rewound, and the chunk driver's retry
/// protocol would re-emit already-flushed output), but the OUTPUT
/// streams through a flushing sink that retains only the 32 KiB
/// reference window — so memory is O(compressed), never
/// O(uncompressed). Trailer CRC/ISIZE verification happens on the
/// indexed (seekable) path; here structural damage still fails decode.
std::uint64_t decompress_gzip_sequential(std::istream& in, ByteSpan prefix,
                                         std::ostream& out) {
  // Slurp the rest of the pipe. The byte-exact reader that sniffed the
  // prefix holds no lookahead (its 4-byte read bypassed the window), so
  // the stream cursor sits right after the prefix.
  Bytes data(prefix.begin(), prefix.end());
  while (in.good()) {
    const std::size_t old = data.size();
    data.resize(old + kStreamCopyChunk);
    in.read(reinterpret_cast<char*>(data.data() + old),
            static_cast<std::streamsize>(kStreamCopyChunk));
    data.resize(old + static_cast<std::size_t>(in.gcount()));
  }
  check_io(in.eof(), "stream: read failed");

  // Strict cold-open header parse first: a malformed leading header is
  // a FormatError ("this is not gzip"), unlike mid-stream damage.
  util::SpanReader hdr_reader(ByteSpan(data.data(), data.size()));
  ingest::parse_member_header(hdr_reader);

  ingest::GrowingByteSink sink(ByteSpan(),
                               ingest::max_inflated_bytes(data.size()));
  sink.enable_flush(
      [](void* ctx, ByteSpan flushed) {
        write_bytes(*static_cast<std::ostream*>(ctx), flushed);
      },
      &out, kStreamCopyChunk);
  ingest::InflateScratch scratch;
  ingest::ChunkResult result;
  const ingest::ChunkStatus status = ingest::inflate_chunk(
      ByteSpan(data.data(), data.size()), 8 * hdr_reader.offset(),
      /*stop_bit=*/8 * data.size(), /*stream_end_byte=*/data.size(), sink,
      scratch, result);
  check_corrupt(status == ingest::ChunkStatus::kEndOfStream,
                "gzip: compressed stream truncated");
  const std::uint64_t total = sink.produced();
  sink.finish();
  return total;
}

/// Decode path for non-seekable inputs (pipes): one segment header at a
/// time through the buffered reader, then batches of blocks decoded in
/// parallel through the same decode_block_at() the sessions use. Memory
/// is one pool-sized batch of compressed + decoded blocks — the same
/// O(parallelism x block) shape as a session window, never a whole
/// segment.
std::uint64_t decompress_stream_sequential(std::istream& in, std::ostream& out,
                                           const DecompressOptions& options) {
  // buffer_size 1: a pipe cannot seek back, so the reader must consume
  // byte-exactly — anything after the terminator belongs to the caller
  // (e.g. a second concatenated stream). Framing varints and headers are
  // a few hundred bytes per 64 MiB segment; the block payloads, which
  // are the volume, go through read_exact's direct bulk path.
  util::IstreamReader reader(in, /*buffer_size=*/1);

  // Same thread-plan selection as decompress(): a pipe narrows the
  // *input* to one cursor, not the decode itself.
  ThreadPool* pool = nullptr;
  std::unique_ptr<ThreadPool> own_pool;
  if (options.num_threads == 0) {
    pool = &default_pool();
  } else if (options.num_threads > 1) {
    own_pool = std::make_unique<ThreadPool>(options.num_threads);
    pool = own_pool.get();
  }
  const std::size_t batch = pool != nullptr ? pool->parallelism() : 1;

  std::vector<core::BlockDecodeContext> ctxs(batch);
  std::vector<Bytes> comp(batch);
  std::vector<Bytes> decoded(batch);
  std::uint64_t total = 0;
  const auto decode_blocks = [&](const format::FileHeader& header) {
    // A pipe has no payload length to validate the header's sizes
    // against (the seekable path bounds them by the real file size), and
    // the decode buffer is allocated before any payload arrives — so cap
    // the block size absolutely; 1 GiB is far beyond any plausible
    // configuration (the CLI caps --block at the same bound).
    check(header.block_size <= (1u << 30), "stream: implausible block size");
    const Strategy strategy = core::resolve_strategy(options, header);
    for (std::size_t b = 0; b < header.num_blocks(); b += batch) {
      const std::size_t n = std::min(batch, header.num_blocks() - b);
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t comp_size = header.block_compressed_sizes[b + i];
        const std::uint64_t uncomp_len = std::min<std::uint64_t>(
            header.block_size, header.uncompressed_size -
                                   static_cast<std::uint64_t>(b + i) * header.block_size);
        // Bound each block's compressed size by what any codec here
        // could plausibly emit — the worst case is well under 16x even
        // with degenerate sub-block settings — so a crafted huge size
        // fails with a clean Error, not std::length_error.
        check(comp_size <= 16 * uncomp_len + 65536,
              "stream: implausible compressed block size");
        // Grow the staging buffer while reading rather than trusting
        // comp_size up front: allocation never outruns bytes actually
        // received, so a lying size fails at EOF ("truncated input")
        // with memory proportional to what was sent, not claimed.
        comp[i].clear();
        std::uint64_t filled = 0;
        while (filled < comp_size) {
          const std::size_t step = static_cast<std::size_t>(
              std::min<std::uint64_t>(comp_size - filled, 16u << 20));
          comp[i].resize(static_cast<std::size_t>(filled) + step);
          reader.read_exact(MutableByteSpan(comp[i].data() + filled, step));
          filled += step;
        }
        decoded[i].resize(static_cast<std::size_t>(uncomp_len));
      }
      const auto decode_one = [&](std::size_t worker, std::size_t i) {
        core::decode_block_at(header, comp[i],
                              MutableByteSpan(decoded[i].data(), decoded[i].size()),
                              strategy, options.verify_checksums, ctxs[worker]);
      };
      if (n == 1 || pool == nullptr) {
        for (std::size_t i = 0; i < n; ++i) decode_one(0, i);
      } else {
        pool->parallel_for_worker(n, decode_one);
      }
      for (std::size_t i = 0; i < n; ++i) {
        write_bytes(out, decoded[i]);
        total += decoded[i].size();
      }
    }
  };

  // One shared classifier decides the container — the same
  // format::sniff_container() the session open path uses, so a format
  // readable when seekable is readable on a pipe too.
  std::uint8_t prefix[format::kSniffBytes];
  reader.read_exact(MutableByteSpan(prefix, sizeof prefix));
  switch (format::sniff_container(ByteSpan(prefix, sizeof prefix))) {
    case format::ContainerKind::kGmpz: {
      // A bare GMPZ container (accepted on either path): no framing, so
      // there is no payload size to validate against — the size list
      // alone delimits the blocks, and consumption stops exactly after
      // the last. The block-count invariant still must hold, or a
      // corrupt header claiming fewer blocks silently truncates the
      // output.
      const format::FileHeader header =
          format::FileHeader::deserialize_body(reader);
      header.check_block_count();
      decode_blocks(header);
      return total;
    }
    case format::ContainerKind::kGzip:
      return decompress_gzip_sequential(in, ByteSpan(prefix, sizeof prefix),
                                        out);
    case format::ContainerKind::kGmps:
      break;  // segment loop below
    case format::ContainerKind::kUnknown:
      throw FormatError("stream: bad magic");
  }
  while (true) {
    const std::uint64_t segment_size = reader.read_varint();
    if (segment_size == 0) break;  // terminator
    check(segment_size <= (1ull << 40), "stream: implausible segment size");
    const std::uint64_t segment_begin = reader.offset();
    const format::FileHeader header = format::FileHeader::deserialize(reader);
    const std::uint64_t header_bytes = reader.offset() - segment_begin;
    check(header_bytes <= segment_size, "stream: segment smaller than its header");
    header.check_payload(segment_size - header_bytes);
    decode_blocks(header);
  }
  return total;
}

}  // namespace

std::uint64_t compress_stream(std::istream& in, std::ostream& out,
                              const CompressOptions& options,
                              std::size_t chunk_size) {
  check(chunk_size >= options.block_size, "stream: chunk smaller than a block");
  Bytes magic;
  put_u32le(magic, kStreamMagic);
  write_bytes(out, magic);

  std::uint64_t total = 0;
  Bytes chunk(chunk_size);
  while (in.good()) {
    in.read(reinterpret_cast<char*>(chunk.data()),
            static_cast<std::streamsize>(chunk.size()));
    const std::size_t got = static_cast<std::size_t>(in.gcount());
    if (got == 0) break;
    total += got;
    const Bytes segment = compress(ByteSpan(chunk.data(), got), options);
    Bytes framing;
    put_varint(framing, segment.size());
    write_bytes(out, framing);
    write_bytes(out, segment);
  }
  check(in.eof() || in.good(), "stream: read failed");
  out.put(0);  // zero-length terminator
  check(out.good(), "stream: write failed");
  return total;
}

std::uint64_t decompress_stream(std::istream& in, std::ostream& out,
                                const DecompressOptions& options) {
  const bool seekable = in.tellg() != std::istream::pos_type(-1);
  if (!seekable) in.clear();  // a failed tellg may latch failbit
  return seekable ? decompress_stream_session(in, out, options)
                  : decompress_stream_sequential(in, out, options);
}

std::uint64_t compress_file(const std::string& input_path,
                            const std::string& output_path,
                            const CompressOptions& options, std::size_t chunk_size) {
  std::ifstream in(input_path, std::ios::binary);
  check(in.good(), "stream: cannot open input file");
  std::ofstream out(output_path, std::ios::binary);
  check(out.good(), "stream: cannot open output file");
  return compress_stream(in, out, options, chunk_size);
}

std::uint64_t decompress_file(const std::string& input_path,
                              const std::string& output_path,
                              const DecompressOptions& options) {
  std::ifstream in(input_path, std::ios::binary);
  check(in.good(), "stream: cannot open input file");
  std::ofstream out(output_path, std::ios::binary);
  check(out.good(), "stream: cannot open output file");
  return decompress_stream(in, out, options);
}

}  // namespace gompresso
