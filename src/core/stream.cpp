#include "core/stream.hpp"

#include <fstream>
#include <istream>
#include <ostream>

#include "core/compressor.hpp"
#include "core/decompressor.hpp"
#include "util/varint.hpp"

namespace gompresso {
namespace {

constexpr std::uint32_t kStreamMagic = 0x53504D47u;  // "GMPS"

void write_bytes(std::ostream& out, ByteSpan data) {
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  check(out.good(), "stream: write failed");
}

/// Reads one varint directly from a stream (byte at a time).
std::uint64_t read_varint(std::istream& in) {
  std::uint64_t v = 0;
  unsigned shift = 0;
  while (true) {
    const int c = in.get();
    check(c != std::char_traits<char>::eof(), "stream: truncated varint");
    check(shift < 64, "stream: varint too long");
    v |= static_cast<std::uint64_t>(c & 0x7F) << shift;
    if ((c & 0x80) == 0) return v;
    shift += 7;
  }
}

}  // namespace

std::uint64_t compress_stream(std::istream& in, std::ostream& out,
                              const CompressOptions& options,
                              std::size_t chunk_size) {
  check(chunk_size >= options.block_size, "stream: chunk smaller than a block");
  Bytes magic;
  put_u32le(magic, kStreamMagic);
  write_bytes(out, magic);

  std::uint64_t total = 0;
  Bytes chunk(chunk_size);
  while (in.good()) {
    in.read(reinterpret_cast<char*>(chunk.data()),
            static_cast<std::streamsize>(chunk.size()));
    const std::size_t got = static_cast<std::size_t>(in.gcount());
    if (got == 0) break;
    total += got;
    const Bytes segment = compress(ByteSpan(chunk.data(), got), options);
    Bytes framing;
    put_varint(framing, segment.size());
    write_bytes(out, framing);
    write_bytes(out, segment);
  }
  check(in.eof() || in.good(), "stream: read failed");
  out.put(0);  // zero-length terminator
  check(out.good(), "stream: write failed");
  return total;
}

std::uint64_t decompress_stream(std::istream& in, std::ostream& out,
                                const DecompressOptions& options) {
  Bytes magic(4);
  in.read(reinterpret_cast<char*>(magic.data()), 4);
  check(in.gcount() == 4, "stream: truncated magic");
  std::size_t pos = 0;
  check(get_u32le(magic, pos) == kStreamMagic, "stream: bad magic");

  std::uint64_t total = 0;
  while (true) {
    const std::uint64_t segment_size = read_varint(in);
    if (segment_size == 0) break;  // terminator
    check(segment_size <= (1ull << 40), "stream: implausible segment size");
    Bytes segment(static_cast<std::size_t>(segment_size));
    in.read(reinterpret_cast<char*>(segment.data()),
            static_cast<std::streamsize>(segment.size()));
    check(static_cast<std::uint64_t>(in.gcount()) == segment_size,
          "stream: truncated segment");
    const Bytes data = decompress(segment, options).data;
    write_bytes(out, data);
    total += data.size();
  }
  return total;
}

std::uint64_t compress_file(const std::string& input_path,
                            const std::string& output_path,
                            const CompressOptions& options, std::size_t chunk_size) {
  std::ifstream in(input_path, std::ios::binary);
  check(in.good(), "stream: cannot open input file");
  std::ofstream out(output_path, std::ios::binary);
  check(out.good(), "stream: cannot open output file");
  return compress_stream(in, out, options, chunk_size);
}

std::uint64_t decompress_file(const std::string& input_path,
                              const std::string& output_path,
                              const DecompressOptions& options) {
  std::ifstream in(input_path, std::ios::binary);
  check(in.good(), "stream: cannot open input file");
  std::ofstream out(output_path, std::ios::binary);
  check(out.good(), "stream: cannot open output file");
  return decompress_stream(in, out, options);
}

}  // namespace gompresso
