// Gompresso/Bit block codec: LZ77 sequences entropy-coded with two
// limited-length canonical Huffman trees per block (paper §III-A, Fig. 3).
//
// Alphabets (DEFLATE-style):
//   lit/len tree — 0..255 literal bytes, 256 = END (terminates the final
//                  all-literal sequence of a block), 257..285 = the 29
//                  RFC 1951 match-length buckets (+ extra bits).
//   offset tree  — the 30 RFC 1951 distance buckets (+ extra bits).
//
// "Similar to DEFLATE, Gompresso/Bit uses two separate Huffman trees to
// facilitate the encoding, one for the match offset values and the second
// for the length of the matches and the literals themselves."
//
// To enable parallel decoding, the sequences of a block are split into
// sub-blocks of a fixed number of sequences (16 in §V); each sub-block's
// compressed size in bits is stored in the block header so decoder lanes
// can seek directly to their sub-block. In addition to the bit sizes the
// header stores per-sub-block sequence and literal-byte counts, which let
// each lane compute its output slot in the sequence array and literal
// buffer without a separate pass — preserving the paper's "only one pass
// over the encoded data" property. This header overhead is included in
// every compression-ratio measurement.
//
// Block payload layout (byte granularity unless noted):
//   varint  n_sequences
//   varint  n_literal_bytes
//   varint  n_subblocks
//   per sub-block: varint bit_size, varint n_seqs, varint n_literals
//   nibbles 286 lit/len code lengths, 30 offset code lengths (bit-packed)
//   bytes   Huffman bitstream (sub-block i starts at bit offset
//           sum of bit_size[j < i])
#pragma once

#include <cstdint>
#include <vector>

#include "core/alphabet.hpp"
#include "core/decode_scratch.hpp"
#include "core/encode_scratch.hpp"
#include "lz77/sequence.hpp"
#include "simt/warp.hpp"
#include "util/common.hpp"

namespace gompresso {
class ThreadPool;
}

namespace gompresso::core {

/// Bit codec tuning knobs (subset of CompressOptions).
struct BitCodecConfig {
  std::uint32_t tokens_per_subblock = 16;  // sequences per sub-block (§V)
  unsigned codeword_limit = 10;            // CWL (§V-C)
};

/// Encodes a parsed block. Requires match lengths in [3, 258] and
/// distances in [1, 32768] (the DEFLATE bucket domains). Convenience
/// wrapper around the scratch-arena overload below.
Bytes encode_block_bit(const lz77::TokenBlock& block, const BitCodecConfig& config);

/// Encode fast path: histograms, canonical codes, fused emit tables and
/// the output payload all live in `scratch` and are reused across blocks
/// (zero steady-state allocations — EncodeScratchStats counts it).
/// Token emission runs through the fused tables: one unchecked write per
/// merged length+distance token, multi-literal packing for runs. With a
/// non-null `lane_pool` and more than one sub-block, sub-block token
/// coding fans out across the pool (the encode-side mirror of decode's
/// lane fan-out); output bytes are identical either way, and identical
/// to the pre-fast-path per-symbol encoder. Returns scratch.payload
/// (valid until the next encode with the same scratch).
const Bytes& encode_block_bit(const lz77::TokenBlock& block, const BitCodecConfig& config,
                              EncodeScratch& scratch, ThreadPool* lane_pool = nullptr);

/// Decodes a payload back into sequences + literals. Each sub-block is
/// decoded by a separate warp lane on the GPU; here the lanes run
/// lock-step-equivalently in a loop. Throws gompresso::Error on corrupt
/// payloads. Convenience wrapper around the scratch-arena overload below.
lz77::TokenBlock decode_block_bit(ByteSpan payload, const BitCodecConfig& config);

/// Zero-allocation fast path: decodes into `scratch`'s reused buffers and
/// returns a reference to scratch.block (valid until the next decode with
/// the same scratch). When `lane_pool` is non-null and the block has more
/// than one sub-block, the independent sub-block lanes are fanned out
/// across the pool (intra-block parallelism, paper §III-B) — pass it only
/// when the caller is not itself running block-parallel work.
const lz77::TokenBlock& decode_block_bit(ByteSpan payload, const BitCodecConfig& config,
                                         DecodeScratch& scratch,
                                         ThreadPool* lane_pool = nullptr);

/// Decode-table on-chip footprint for one block (both tables), in bytes;
/// the occupancy model in sim/ uses this (Fig. 12 discussion).
std::size_t decode_tables_footprint(unsigned codeword_limit);

}  // namespace gompresso::core
