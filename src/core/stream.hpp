// Bounded-memory streaming over the Gompresso container.
//
// A stream is a sequence of self-contained Gompresso segments, each
// compressing one chunk of the input. Compression never holds more than
// one chunk (plus its compressed form) in memory, which is how a
// production deployment would feed multi-gigabyte files like the paper's
// 1 GB Wikipedia dump through the codec. Segments preserve all
// parallelism properties (each segment is a normal block-parallel
// container).
//
// Decompression rides on the serve subsystem: a seekable input gets a
// DecodeSession (seek index + pipelined block prefetch, see
// serve/decode_session.hpp), so memory stays bounded by the session
// window instead of the old whole-segment buffering. Non-seekable inputs
// (pipes) fall back to byte-exact framing with pool-parallel decode of
// one batch of blocks at a time — O(parallelism x block) memory. Either
// path accepts a bare GMPZ container as well as a GMPS stream.
//
// Stream layout:
//   u32le  magic "GMPS"
//   per segment: varint compressed_size, then the Gompresso container
//   varint 0 terminator
#pragma once

#include <functional>
#include <iosfwd>

#include "core/options.hpp"
#include "format/sniff.hpp"
#include "util/common.hpp"

namespace gompresso {

/// Default chunk: large enough to amortise per-segment headers, small
/// enough to bound memory (§V uses 256 KB blocks; 64 MiB ≈ 256 blocks).
inline constexpr std::size_t kDefaultChunkSize = 64 * 1024 * 1024;

/// Copy-loop granularity of the streaming decompressor (output side).
inline constexpr std::size_t kStreamCopyChunk = 1024 * 1024;

/// Stream magic "GMPS" (the container's own magic is format::kMagic).
/// Canonically defined next to the shared sniffer (format/sniff.hpp);
/// re-exported here for the stream framing code and serve::SeekIndex.
inline constexpr std::uint32_t kStreamMagic = format::kGmpsMagic;

/// Compresses `in` to `out` as a Gompresso stream. Returns the number of
/// uncompressed bytes consumed. Throws gompresso::Error on I/O failure.
std::uint64_t compress_stream(std::istream& in, std::ostream& out,
                              const CompressOptions& options = {},
                              std::size_t chunk_size = kDefaultChunkSize);

/// Decompresses a Gompresso stream from `in` to `out`. Returns the
/// number of uncompressed bytes produced.
std::uint64_t decompress_stream(std::istream& in, std::ostream& out,
                                const DecompressOptions& options = {});

/// Convenience: file-path front ends.
std::uint64_t compress_file(const std::string& input_path,
                            const std::string& output_path,
                            const CompressOptions& options = {},
                            std::size_t chunk_size = kDefaultChunkSize);
std::uint64_t decompress_file(const std::string& input_path,
                              const std::string& output_path,
                              const DecompressOptions& options = {});

}  // namespace gompresso
