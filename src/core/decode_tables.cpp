#include "core/decode_tables.hpp"

#include "core/bit_codec.hpp"
#include "huffman/decoder.hpp"
#include "lz77/deflate_tables.hpp"

namespace gompresso::core {

void FusedTables::build(const std::vector<std::uint8_t>& litlen_lengths,
                        const std::vector<std::uint8_t>& offset_lengths,
                        unsigned table_bits) {
  valid = false;
  huffman::build_packed_table(
      litlen_lengths, table_bits, litlen, [](std::uint16_t symbol, unsigned len) {
        if (symbol < kEndSymbol) {
          return pack_fused(kFusedLiteral, symbol, 0, len);
        }
        if (symbol == kEndSymbol) {
          return pack_fused(kFusedEnd, 0, 0, len);
        }
        const std::uint32_t lcode = static_cast<std::uint32_t>(symbol) - kFirstLengthSymbol;
        check(lcode < lz77::kNumLengthCodes, "fused tables: bad length symbol");
        return pack_fused(kFusedMatch, lz77::decode_length(lcode, 0),
                          lz77::length_extra_bits(lcode), len);
      });
  // Second pass: upgrade literal entries to double-literal entries where
  // the remaining peeked bits pin down the next codeword as well. The
  // descending order guarantees t[i >> len] (a strictly smaller index for
  // i > 0) is still an original single-symbol entry when read.
  for (std::size_t i = litlen.size(); i-- > 0;) {
    const std::uint32_t e = litlen[i];
    if (e == 0 || fused_kind(e) != kFusedLiteral) continue;
    const unsigned len = fused_code_length(e);
    const std::uint32_t e2 = litlen[i >> len];
    if (e2 == 0 || fused_kind(e2) != kFusedLiteral) continue;
    const unsigned len2 = fused_code_length(e2);
    if (len + len2 > table_bits) continue;  // second code not fully visible
    litlen[i] = pack_fused(kFusedDoubleLiteral,
                           fused_value(e) | (fused_value(e2) << 8), 0, len + len2);
  }

  huffman::build_packed_table(
      offset_lengths, table_bits, offset, [](std::uint16_t symbol, unsigned len) {
        check(symbol < lz77::kNumDistanceCodes, "fused tables: bad distance symbol");
        return pack_fused(kFusedMatch, lz77::decode_distance(symbol, 0),
                          lz77::distance_extra_bits(symbol), len);
      });
  bits = table_bits;
  valid = true;
}

}  // namespace gompresso::core
