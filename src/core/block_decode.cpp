#include "core/block_decode.hpp"

#include "core/bit_codec.hpp"
#include "core/byte_codec.hpp"
#include "core/resolve_parallel.hpp"
#include "core/tans_codec.hpp"
#include "core/warp_lz77.hpp"
#include "obs/trace.hpp"
#include "util/crc32.hpp"
#include "util/varint.hpp"

namespace gompresso::core {
namespace {

// Decode-plane metrics. The paper's cost model splits a block into
// entropy decode (phase 1) and LZ77 resolution (phase 2); the two
// histograms below are that breakdown, per block, in microseconds.
struct DecodeObs {
  obs::Counter blocks = obs::registry().counter("decode.blocks", "blocks");
  obs::Counter stored_blocks =
      obs::registry().counter("decode.stored_blocks", "blocks");
  obs::Counter bytes = obs::registry().counter("decode.bytes", "bytes");
  obs::Histogram entropy_us =
      obs::registry().histogram("decode.entropy_us", "us");
  obs::Histogram resolve_us =
      obs::registry().histogram("decode.resolve_us", "us");
};

DecodeObs& decode_obs() {
  static DecodeObs instance;
  return instance;
}

}  // namespace

Strategy resolve_strategy(const DecompressOptions& options,
                          const format::FileHeader& header) {
  if (options.auto_strategy) {
    return header.dependency_elimination ? Strategy::kDependencyFree
                                         : Strategy::kMultiRound;
  }
  if (options.strategy == Strategy::kDependencyFree) {
    check(header.dependency_elimination,
          "decompress: DE strategy requires a DE-compressed file");
  }
  return options.strategy;
}

void decode_block_at(const format::FileHeader& header, ByteSpan payload_with_crc,
                     MutableByteSpan out, Strategy strategy, bool verify_checksum,
                     BlockDecodeContext& ctx, ThreadPool* lane_pool) try {
  std::size_t p = 0;
  const std::uint32_t stored_crc = get_u32le(payload_with_crc, p);
  check_corrupt(p < payload_with_crc.size(), "decompress: truncated block payload");
  const std::uint8_t mode = payload_with_crc[p++];
  const ByteSpan payload = payload_with_crc.subspan(p);

  if (mode == kBlockModeStored) {
    check_corrupt(payload.size() == out.size(),
                  "decompress: stored block size mismatch");
    std::copy(payload.begin(), payload.end(), out.begin());
    decode_obs().stored_blocks.add(1);
  } else {
    check_corrupt(mode == kBlockModeCoded, "decompress: unknown block mode");
    // Phase 1: token decode. Every codec decodes into the context's
    // scratch arena — zero allocations once its buffers are warm — and
    // optionally fans its independent sub-block lanes (record-array
    // chunks for /Byte) out across `lane_pool`.
    // Pre-size the arena on the context's first block (not eagerly —
    // most pool participants never run when blocks are few), so no
    // block decode ever grows a buffer.
    if (!ctx.scratch_reserved) {
      ctx.scratch.reserve(header.block_size, header.tokens_per_subblock,
                          header.codec == Codec::kTans);
      ctx.scratch_reserved = true;
    }
    const lz77::TokenBlock* tokens = nullptr;
    {
      obs::StageScope stage("entropy_decode", "decode",
                            decode_obs().entropy_us);
      if (header.codec == Codec::kBit) {
        BitCodecConfig bit_config;
        bit_config.tokens_per_subblock = header.tokens_per_subblock;
        bit_config.codeword_limit = header.codeword_limit;
        tokens = &decode_block_bit(payload, bit_config, ctx.scratch, lane_pool);
      } else if (header.codec == Codec::kByte) {
        tokens = &decode_block_byte(payload, ctx.scratch, lane_pool);
      } else {
        TansCodecConfig tans_config;
        tans_config.tokens_per_subblock = header.tokens_per_subblock;
        tokens = &decode_block_tans(payload, tans_config, ctx.scratch,
                                    lane_pool, out.size());
      }
    }
    check_corrupt(tokens->uncompressed_size == out.size(),
                  "decompress: block size mismatch");

    // Phase 2: LZ77 resolution, accumulating straight into the context's
    // metrics (all WarpMetrics updates are additive). With a lane pool
    // the block's warp groups are sharded across the pool's threads with
    // a completed-watermark handoff (resolve_parallel.hpp); otherwise —
    // and for blocks too small to shard — the serial warp simulator
    // runs. The kMultiPass variant keeps its spill semantics regardless.
    obs::StageScope stage("resolve", "decode", decode_obs().resolve_us);
    if (strategy == Strategy::kMultiPass) {
      MultiPassStats block_multipass;
      resolve_block_multipass(tokens->sequences, tokens->literals.data(),
                              tokens->literals.size(), out, &block_multipass,
                              &ctx.scratch.multipass_ws);
      ctx.multipass.merge(block_multipass);
    } else if (lane_pool != nullptr &&
               resolve_block_sharded(tokens->sequences, tokens->literals.data(),
                                     tokens->literals.size(), out, strategy,
                                     ctx.scratch.resolve, *lane_pool, &ctx.metrics,
                                     &ctx.scratch.stats.resolve_deferrals)) {
      ++ctx.scratch.stats.resolve_fanouts;
    } else {
      resolve_block(tokens->sequences, tokens->literals.data(),
                    tokens->literals.size(), out, strategy, &ctx.metrics);
    }
  }
  decode_obs().blocks.add(1);
  decode_obs().bytes.add(out.size());

  if (verify_checksum) {
    check_corrupt(crc32(ByteSpan(out.data(), out.size())) == stored_crc,
                  "decompress: block checksum mismatch (corrupt data)");
  }
} catch (const Error& e) {
  // This is the typed-error boundary for block data: the codec and
  // resolver internals (bit/tans/byte decode, LZ77 resolution) raise
  // plain Error on malformed payloads. Anything untyped that escapes a
  // block decode is data-level damage confined to this block; already-
  // typed failures (an IoError from a faulting mmap-backed span, say)
  // keep their class.
  if (e.kind() != ErrorKind::kConfig) throw;
  throw CorruptionError(e.what());
}

}  // namespace gompresso::core
