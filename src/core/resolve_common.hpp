// Shared phase-2 resolution primitives.
//
// Three resolvers copy LZ77 back-references into a block's output window:
// the serial warp simulator (core/warp_lz77.cpp), the multi-pass spill
// variant (core/mrr_multipass.cpp), and the sharded thread-parallel
// resolver (core/resolve_parallel.cpp). They share the overlap-safe copy
// kernel, the spilled-reference record, and the warp-group availability
// rules; this header is that common ground so the three stay bit-for-bit
// agreeing on the tricky cases (RLE runs, same-group literal sources,
// self-overlapping forward copies).
#pragma once

#include <algorithm>
#include <cstring>
#include <span>

#include "util/common.hpp"

namespace gompresso::core {

/// One unresolved (deferred/spilled) back-reference. 16 bytes — for the
/// multi-pass variant this is also the unit of its extra memory traffic.
struct PendingRef {
  std::uint64_t write_pos = 0;  // where the copy lands
  std::uint32_t dist = 0;
  std::uint32_t len = 0;
};

/// Copies `len` bytes within `out` from `src` to `dst` (dst > src).
/// Overlapping regions (dst - src < len) replicate the dist-byte pattern
/// forward — the LZ77 run semantics — via pattern doubling: once the
/// first `dist` bytes are placed, the written prefix itself is a valid
/// (non-overlapping) source for ever larger memcpys.
inline void copy_backref(std::uint8_t* out, std::uint64_t dst, std::uint64_t src,
                         std::uint32_t len) {
  const std::uint64_t dist = dst - src;
  if (dist >= len) {
    std::memcpy(out + dst, out + src, len);
  } else if (dist == 1) {
    std::memset(out + dst, out[src], len);
  } else {
    std::memcpy(out + dst, out + src, dist);
    std::uint32_t copied = static_cast<std::uint32_t>(dist);
    while (copied < len) {
      const std::uint32_t chunk = std::min(copied, len - copied);
      std::memcpy(out + dst + copied, out + dst, chunk);
      copied += chunk;
    }
  }
}

/// True when [s, e) intersects the write region of any reference in
/// `pending`. The list must be ordered by write position with disjoint
/// intervals (both spill resolvers append in walk order), so a single
/// partition_point suffices.
inline bool intersects_pending(std::span<const PendingRef> pending, std::uint64_t s,
                               std::uint64_t e) {
  if (s >= e) return false;
  const auto it = std::partition_point(
      pending.begin(), pending.end(),
      [&](const PendingRef& r) { return r.write_pos + r.len <= s; });
  return it != pending.end() && it->write_pos < e;
}

/// Availability of the in-group part [max(src, group_base), src_end) of a
/// source interval: literal intervals of the group (all written in the
/// group's literal phase) plus the lane's own forward copy. The group's
/// lanes are described by their literal intervals [own_start[j],
/// write_pos[j]), ascending in j; bytes of the group outside those
/// intervals are other lanes' back-reference output and are NOT available.
inline bool group_part_available(const std::uint64_t* own_start,
                                 const std::uint64_t* write_pos, unsigned lanes,
                                 unsigned lane, std::uint64_t group_base,
                                 std::uint64_t src, std::uint64_t src_end) {
  std::uint64_t covered = std::max(src, group_base);
  for (unsigned j = 0; j < lanes && covered < src_end; ++j) {
    if (own_start[j] > covered) break;  // gap: covered byte is a match output
    if (covered < write_pos[j]) covered = write_pos[j];
  }
  if (covered >= src_end) return true;
  // Remaining bytes must be the lane's own output (self-overlap).
  return covered >= own_start[lane];
}

}  // namespace gompresso::core
