// Umbrella public header for the Gompresso library.
//
// Quickstart:
//
//   #include "core/gompresso.hpp"
//
//   gompresso::CompressOptions opt;            // paper §V defaults
//   opt.codec = gompresso::Codec::kBit;        // or kByte
//   gompresso::Bytes file = gompresso::compress(input, opt);
//   gompresso::Bytes back = gompresso::decompress_bytes(file);
//
// Reading any supported container (native GMPZ/GMPS or gzip) goes
// through one front door:
//
//   auto session = gompresso::open("data.gz");   // sniffs the magic
//   session->read_at(offset, span);              // prefetch + cache
//
// Backend map — open() dispatches on the leading bytes:
//   GMPZ/GMPS -> serve::make_gmpz_backend (SeekIndex from the header,
//                "GMPX" sidecar checkpoint)
//   gzip      -> ingest::make_gzip_backend (GzipIndex discovered by
//                speculative parallel decode, "GZIX" sidecar)
// See core/open.hpp for OpenOptions (sidecars, gzip chunking) and
// serve/backend.hpp for the ContainerBackend seam itself.
//
// See README.md for the architecture overview and DESIGN.md for the
// paper-to-module map.
#pragma once

#include "core/compressor.hpp"        // IWYU pragma: export
#include "core/decompressor.hpp"      // IWYU pragma: export
#include "core/open.hpp"              // IWYU pragma: export
#include "core/options.hpp"           // IWYU pragma: export
#include "core/stream.hpp"            // IWYU pragma: export
#include "obs/metrics.hpp"            // IWYU pragma: export
#include "obs/trace.hpp"              // IWYU pragma: export
#include "serve/decode_session.hpp"   // IWYU pragma: export

namespace gompresso {
/// The serve subsystem's streaming session, re-exported for the common
/// "open a file and read from it" use (see serve/decode_session.hpp).
using serve::DecodeSession;
/// One coherent snapshot of the process-wide metrics registry (see
/// obs/metrics.hpp for the registry and obs/trace.hpp for the tracer).
using obs::metrics_snapshot;
}  // namespace gompresso
