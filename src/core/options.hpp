// Public configuration types for the Gompresso compressor/decompressor.
#pragma once

#include <cstdint>
#include <string>

#include "format/header.hpp"

namespace gompresso {

using format::Codec;

/// Back-reference resolution strategy for decompression (paper §IV, §V-A).
enum class Strategy : std::uint8_t {
  /// Sequential Copying: the baseline — back-references of a warp group
  /// are copied one lane at a time, in order, with no intra-group
  /// parallelism (§V-A).
  kSequentialCopy = 0,
  /// Multi-Round Resolution: iterative warp-synchronous resolution with
  /// ballot/shfl and a high-water mark (Fig. 5).
  kMultiRound = 1,
  /// Dependency-free single-round resolution; requires a stream compressed
  /// with dependency elimination (Fig. 7). One round per warp group.
  kDependencyFree = 2,
  /// The alternative MRR variant of §V-A: unresolved back-references are
  /// spilled to a global worklist and later passes (separate "kernels")
  /// resolve them, at the price of extra memory traffic.
  kMultiPass = 3,
};

/// Per-block mode byte (follows the block's CRC32 in the payload).
inline constexpr std::uint8_t kBlockModeCoded = 0;   // codec payload
inline constexpr std::uint8_t kBlockModeStored = 1;  // verbatim bytes

/// Human-readable strategy name (bench output).
inline const char* strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kSequentialCopy: return "SC";
    case Strategy::kMultiRound: return "MRR";
    case Strategy::kDependencyFree: return "DE";
    case Strategy::kMultiPass: return "MRR-multipass";
  }
  return "?";
}

/// Compression configuration. Defaults are the paper's §V settings:
/// 256 KB blocks, 8 KB window, 64 B max match, 16 sequences per
/// sub-block, CWL = 10, DE on with 1 KB minimal staleness.
struct CompressOptions {
  Codec codec = Codec::kBit;
  std::uint32_t block_size = 256 * 1024;
  std::uint32_t window_size = 8 * 1024;
  std::uint32_t min_match = 3;
  std::uint32_t max_match = 64;
  std::uint32_t tokens_per_subblock = 16;
  std::uint8_t codeword_limit = 10;
  /// tANS state-table log for Codec::kTans (2^log states per model).
  std::uint8_t tans_table_log = 11;
  bool dependency_elimination = true;
  /// Hash-chain search depth. The paper's GPU compressor uses "an
  /// exhaustive parallel matching technique" (§III-A); a chain walk of
  /// this depth is the CPU analogue. 1 = cheapest/greedy.
  std::uint32_t match_effort = 16;
  /// Tie-breaking ablation: prefer the oldest occurrence among
  /// equal-length matches (see MatcherConfig::prefer_older_matches).
  /// Shallower MRR nesting, slightly larger encoded distances.
  bool prefer_older_matches = false;
  /// Emit a block verbatim when the coded form would be larger
  /// (DEFLATE's "stored" mode); bounds worst-case expansion.
  bool allow_stored_blocks = true;
  /// Worker threads for inter-block parallelism; 0 = shared default pool.
  std::size_t num_threads = 0;

  /// Validates parameter ranges; throws gompresso::Error on violation.
  /// The byte codec's packed records additionally require
  /// window_size <= 8192 and max_match <= 65.
  void validate() const;
};

/// Decompression configuration.
struct DecompressOptions {
  /// When true (default), picks kDependencyFree for DE-compressed files
  /// and kMultiRound otherwise. When false, `strategy` is used as given
  /// (selecting kDependencyFree for a non-DE file is rejected).
  bool auto_strategy = true;
  Strategy strategy = Strategy::kMultiRound;
  std::size_t num_threads = 0;
  /// Verify per-block CRC32 of the decompressed output (on by default).
  bool verify_checksums = true;
};

}  // namespace gompresso
