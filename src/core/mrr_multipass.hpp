// Alternative multi-pass MRR variant (paper §V-A, last paragraph).
//
// "We also implemented an alternative variant of MRR that wrote nested
// back-references to device memory during each round. Each round is
// performed in a separate kernel. Later passes read unresolved
// back-references and all threads in a warp can be doing useful work.
// Because of the overhead of writing to and reading from memory, together
// with the increased complexity of tracking when a dependency can be
// resolved, the alternative variant did not improve the performance of
// MRR."
//
// In this variant the warp never stalls on a nested reference: pass 0
// writes all literals and every immediately-resolvable back-reference,
// spilling unresolved ones to a (global-memory) worklist. Subsequent
// passes — separate kernels on the GPU — sweep the worklist, using the
// block's gap-free watermark (the minimum write position of any pending
// reference) to decide resolvability. MultiPassStats counts passes and
// the spilled bytes, the overhead that made the paper reject this design.
#pragma once

#include <span>
#include <vector>

#include "core/resolve_common.hpp"
#include "lz77/sequence.hpp"
#include "simt/warp.hpp"
#include "util/common.hpp"

namespace gompresso::core {

/// Costs of the spill-based variant.
struct MultiPassStats {
  std::uint64_t passes = 0;
  std::uint64_t spilled_refs = 0;    // refs written to the worklist
  std::uint64_t spilled_bytes = 0;   // worklist traffic (16 B per ref per pass)

  void merge(const MultiPassStats& other) {
    passes = std::max(passes, other.passes);
    spilled_refs += other.spilled_refs;
    spilled_bytes += other.spilled_bytes;
  }
};

/// Reusable worklist storage (the variant's "device memory"). A caller
/// that resolves many blocks keeps one workspace so the steady-state
/// block loop allocates nothing; the semantics are unchanged.
struct MultiPassWorkspace {
  std::vector<PendingRef> pending;
  std::vector<PendingRef> next;
};

/// Resolves all sequences of one block into `out` using the multi-pass
/// spill variant. Semantics are identical to resolve_block with MRR.
/// `workspace` (optional) supplies reusable worklist storage.
void resolve_block_multipass(std::span<const lz77::Sequence> sequences,
                             const std::uint8_t* literals, std::size_t literal_count,
                             MutableByteSpan out, MultiPassStats* stats = nullptr,
                             MultiPassWorkspace* workspace = nullptr);

}  // namespace gompresso::core
