#include "core/bit_codec.hpp"

#include "bitstream/bit_reader.hpp"
#include "bitstream/bit_writer.hpp"
#include "huffman/code_builder.hpp"
#include "huffman/decoder.hpp"
#include "huffman/encoder.hpp"
#include "huffman/histogram.hpp"
#include "huffman/serial.hpp"
#include "lz77/deflate_tables.hpp"
#include "util/varint.hpp"

namespace gompresso::core {
namespace {

struct SubblockInfo {
  std::uint64_t bits = 0;
  std::uint32_t n_sequences = 0;
  std::uint32_t n_literals = 0;
};

}  // namespace

std::size_t decode_tables_footprint(unsigned codeword_limit) {
  // Two tables of 2^CWL entries, 4 bytes each ({symbol u16, length u8} padded).
  return 2 * (std::size_t{1} << codeword_limit) * 4;
}

Bytes encode_block_bit(const lz77::TokenBlock& block, const BitCodecConfig& config) {
  check(config.tokens_per_subblock >= 1, "bit codec: tokens_per_subblock must be >= 1");
  check(config.codeword_limit >= 9 && config.codeword_limit <= 15,
        "bit codec: CWL out of range (need >= ceil(log2(286)))");

  // Pass 1: histogram both alphabets.
  huffman::Histogram litlen_hist(kLitLenAlphabet);
  huffman::Histogram offset_hist(kOffsetAlphabet);
  for (const auto b : block.literals) litlen_hist.add(b);
  for (const auto& s : block.sequences) {
    if (s.match_len == 0) {
      litlen_hist.add(kEndSymbol);
      continue;
    }
    check(s.match_len >= lz77::kMinMatch && s.match_len <= lz77::kMaxMatch,
          "bit codec: match length outside DEFLATE domain");
    check(s.match_dist >= 1 && s.match_dist <= lz77::kMaxDistance,
          "bit codec: match distance outside DEFLATE domain");
    litlen_hist.add(kFirstLengthSymbol + lz77::encode_length(s.match_len).code);
    offset_hist.add(lz77::encode_distance(s.match_dist).code);
  }

  // Build the two limited-length canonical codes.
  const auto litlen_lengths =
      huffman::build_code_lengths(litlen_hist.counts(), config.codeword_limit);
  const auto offset_lengths =
      huffman::build_code_lengths(offset_hist.counts(), config.codeword_limit);
  const huffman::Encoder litlen_enc(huffman::assign_canonical_codes(litlen_lengths));
  const huffman::Encoder offset_enc(huffman::assign_canonical_codes(offset_lengths));

  // Pass 2: emit the bitstream sub-block by sub-block, recording sizes.
  BitWriter bits;
  std::vector<SubblockInfo> table;
  const std::size_t n_seq = block.sequences.size();
  const std::uint8_t* lit = block.literals.data();
  std::size_t seq_index = 0;
  while (seq_index < n_seq) {
    SubblockInfo info;
    const std::uint64_t start_bits = bits.bit_count();
    const std::size_t count =
        std::min<std::size_t>(config.tokens_per_subblock, n_seq - seq_index);
    for (std::size_t k = 0; k < count; ++k) {
      const lz77::Sequence& s = block.sequences[seq_index + k];
      for (std::uint32_t i = 0; i < s.literal_len; ++i) litlen_enc.encode(lit[i], bits);
      lit += s.literal_len;
      info.n_literals += s.literal_len;
      if (s.match_len == 0) {
        litlen_enc.encode(kEndSymbol, bits);
      } else {
        const auto lc = lz77::encode_length(s.match_len);
        litlen_enc.encode(kFirstLengthSymbol + lc.code, bits);
        bits.write(lc.extra_value, lc.extra_bits);
        const auto dc = lz77::encode_distance(s.match_dist);
        offset_enc.encode(dc.code, bits);
        bits.write(dc.extra_value, dc.extra_bits);
      }
    }
    info.n_sequences = static_cast<std::uint32_t>(count);
    info.bits = bits.bit_count() - start_bits;
    table.push_back(info);
    seq_index += count;
  }

  // Assemble: counts, sub-block table, serialized trees, bitstream.
  Bytes out;
  put_varint(out, n_seq);
  put_varint(out, block.literals.size());
  put_varint(out, table.size());
  for (const auto& info : table) {
    put_varint(out, info.bits);
    put_varint(out, info.n_sequences);
    put_varint(out, info.n_literals);
  }
  BitWriter trees;
  huffman::write_code_lengths(litlen_lengths, trees);
  huffman::write_code_lengths(offset_lengths, trees);
  const Bytes tree_bytes = trees.finish();
  out.insert(out.end(), tree_bytes.begin(), tree_bytes.end());
  const Bytes stream = bits.finish();
  out.insert(out.end(), stream.begin(), stream.end());
  return out;
}

lz77::TokenBlock decode_block_bit(ByteSpan payload, const BitCodecConfig& config) {
  std::size_t pos = 0;
  const std::uint64_t n_seq = get_varint(payload, pos);
  const std::uint64_t n_literals = get_varint(payload, pos);
  const std::uint64_t n_subblocks = get_varint(payload, pos);
  check(n_seq > 0, "bit codec: empty block");
  check(n_subblocks > 0 && n_subblocks <= n_seq, "bit codec: bad sub-block count");

  std::vector<SubblockInfo> table(static_cast<std::size_t>(n_subblocks));
  std::uint64_t seq_total = 0, lit_total = 0;
  for (auto& info : table) {
    info.bits = get_varint(payload, pos);
    info.n_sequences = static_cast<std::uint32_t>(get_varint(payload, pos));
    info.n_literals = static_cast<std::uint32_t>(get_varint(payload, pos));
    seq_total += info.n_sequences;
    lit_total += info.n_literals;
  }
  check(seq_total == n_seq, "bit codec: sub-block sequence counts disagree");
  check(lit_total == n_literals, "bit codec: sub-block literal counts disagree");

  // Deserialize the two trees and build the single-lookup decode tables
  // ("stored in the software-controlled, on-chip memories of the GPU").
  BitReader tree_reader(payload, 8 * pos);
  const auto litlen_lengths = huffman::read_code_lengths(kLitLenAlphabet, tree_reader);
  const auto offset_lengths = huffman::read_code_lengths(kOffsetAlphabet, tree_reader);
  check(!tree_reader.overflowed(), "bit codec: truncated tree section");
  const huffman::Decoder litlen_dec(litlen_lengths, config.codeword_limit);
  const huffman::Decoder offset_dec(offset_lengths, config.codeword_limit);
  const std::size_t tree_nibbles = kLitLenAlphabet + kOffsetAlphabet;
  const std::size_t stream_base_bit = 8 * pos + 8 * ((tree_nibbles * 4 + 7) / 8);

  lz77::TokenBlock block;
  block.sequences.resize(static_cast<std::size_t>(n_seq));
  block.literals.resize(static_cast<std::size_t>(n_literals));

  // Each warp lane decodes one sub-block; lanes are independent because
  // the table gives every lane its bit offset and output slots. Here the
  // lanes execute as a loop (lock-step equivalent: no data flows between
  // sub-block decodes).
  std::uint64_t bit_offset = stream_base_bit;
  std::size_t seq_base = 0;
  std::size_t lit_base = 0;
  for (const auto& info : table) {
    BitReader reader(payload, bit_offset);
    lz77::Sequence* seq_out = block.sequences.data() + seq_base;
    std::uint8_t* lit_out = block.literals.data() + lit_base;
    std::uint32_t lits_left = info.n_literals;
    for (std::uint32_t k = 0; k < info.n_sequences; ++k) {
      lz77::Sequence seq;
      while (true) {
        const std::uint16_t sym = litlen_dec.decode(reader);
        check(sym != huffman::Decoder::kInvalidSymbol, "bit codec: invalid lit/len code");
        if (sym < 256) {
          check(lits_left != 0, "bit codec: literal overflow in sub-block");
          *lit_out++ = static_cast<std::uint8_t>(sym);
          --lits_left;
          ++seq.literal_len;
          continue;
        }
        if (sym == kEndSymbol) break;  // terminator sequence: no match
        const std::uint32_t lcode = sym - kFirstLengthSymbol;
        check(lcode < lz77::kNumLengthCodes, "bit codec: bad length symbol");
        const std::uint32_t lextra = reader.read(lz77::length_extra_bits(lcode));
        seq.match_len = lz77::decode_length(lcode, lextra);
        const std::uint16_t dsym = offset_dec.decode(reader);
        check(dsym != huffman::Decoder::kInvalidSymbol, "bit codec: invalid offset code");
        const std::uint32_t dextra = reader.read(lz77::distance_extra_bits(dsym));
        seq.match_dist = lz77::decode_distance(dsym, dextra);
        break;
      }
      seq_out[k] = seq;
    }
    check(lits_left == 0, "bit codec: literal underflow in sub-block");
    check(reader.bit_pos() == bit_offset + info.bits, "bit codec: sub-block size mismatch");
    check(!reader.overflowed(), "bit codec: sub-block overran payload");
    bit_offset += info.bits;
    seq_base += info.n_sequences;
    lit_base += info.n_literals;
  }
  block.uncompressed_size = block.computed_size();
  return block;
}

}  // namespace gompresso::core
