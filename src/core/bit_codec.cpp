#include "core/bit_codec.hpp"

#include <atomic>

#include "bitstream/bit_reader.hpp"
#include "bitstream/bit_writer.hpp"
#include "core/decode_tables.hpp"
#include "core/encode_tables.hpp"
#include "huffman/code_builder.hpp"
#include "huffman/histogram.hpp"
#include "huffman/serial.hpp"
#include "lz77/deflate_tables.hpp"
#include "util/thread_pool.hpp"
#include "util/varint.hpp"

namespace gompresso::core {

std::size_t decode_tables_footprint(unsigned codeword_limit) {
  // Two tables of 2^CWL entries, one packed uint32 each.
  return 2 * (std::size_t{1} << codeword_limit) * 4;
}

namespace {

/// Worst-case emitted bits for a span of tokens: every literal/END code
/// is bounded by the 15-bit CWL cap, every match token by 48 bits (see
/// FusedEmitTables). Used to reserve BitWriter unchecked runs.
std::uint64_t emit_bits_bound(std::uint64_t n_literals, std::uint64_t n_sequences) {
  return 15 * n_literals + 48 * n_sequences + 64;
}

/// Emits sequences [seq_begin, seq_end) through the fused tables into
/// `w`, one sub-block at a time (sub-block boundaries are global: the
/// first sub-block of the range starts at seq_begin, which callers align
/// to tokens_per_subblock). Fills table[0..] with per-sub-block sizes.
/// `lit` points at the range's first literal byte; `span_lits` is the
/// range's total literal count (callers already have it).
void emit_subblocks(const lz77::TokenBlock& block, std::size_t seq_begin,
                    std::size_t seq_end, const std::uint8_t* lit,
                    std::uint64_t span_lits, std::size_t tokens_per_subblock,
                    const FusedEmitTables& emit, BitWriter& w, SubblockEnc* table) {
  w.begin_run(emit_bits_bound(span_lits, seq_end - seq_begin));
  std::size_t seq_index = seq_begin;
  while (seq_index < seq_end) {
    SubblockEnc info;
    const std::uint64_t start_bits = w.bit_count();
    const std::size_t count =
        std::min<std::size_t>(tokens_per_subblock, seq_end - seq_index);
    for (std::size_t k = 0; k < count; ++k) {
      const lz77::Sequence& s = block.sequences[seq_index + k];
      // Literal run: pack as many codes as fit the 57-bit write limit
      // into one unchecked write (>= 3 at the worst-case 15-bit CWL).
      std::uint64_t v = 0;
      unsigned n = 0;
      for (std::uint32_t i = 0; i < s.literal_len; ++i) {
        const FusedEmitTables::Entry e = emit.lit[lit[i]];
        v |= static_cast<std::uint64_t>(e.bits) << n;
        n += e.nbits;
        if (n > 42) {
          w.write_unchecked(v, n);
          v = 0;
          n = 0;
        }
      }
      if (n != 0) w.write_unchecked(v, n);
      lit += s.literal_len;
      info.n_literals += s.literal_len;
      if (s.match_len == 0) {
        w.write_unchecked(emit.end.bits, emit.end.nbits);
      } else {
        // One fused write emits length code + extra + distance code +
        // extra (<= 48 bits) — the 6-call per-symbol chain collapsed.
        const FusedEmitTables::Token t = emit.match_token(s.match_len, s.match_dist);
        w.write_unchecked(t.bits, t.nbits);
      }
    }
    info.n_sequences = static_cast<std::uint32_t>(count);
    info.bits = w.bit_count() - start_bits;
    *table++ = info;
    seq_index += count;
  }
  w.end_run();
}

}  // namespace

const Bytes& encode_block_bit(const lz77::TokenBlock& block, const BitCodecConfig& config,
                              EncodeScratch& scratch, ThreadPool* lane_pool) {
  check(config.tokens_per_subblock >= 1, "bit codec: tokens_per_subblock must be >= 1");
  check(config.codeword_limit >= 9 && config.codeword_limit <= 15,
        "bit codec: CWL out of range (need >= ceil(log2(286)))");
  const EncodeScratch::CapSnapshot caps = scratch.capacities();

  // Pass 1: histogram both alphabets. Literals go through the 4-way
  // byte histogram; match buckets come from the constexpr length table
  // and the closed-form distance bit-width (no BucketCode round trips).
  auto& litlen_freqs = scratch.litlen_freqs;
  auto& offset_freqs = scratch.offset_freqs;
  litlen_freqs.assign(kLitLenAlphabet, 0);
  offset_freqs.assign(kOffsetAlphabet, 0);
  huffman::add_byte_histogram(block.literals.data(), block.literals.size(),
                              litlen_freqs.data());
  for (const auto& s : block.sequences) {
    if (s.match_len == 0) {
      ++litlen_freqs[kEndSymbol];
      continue;
    }
    check(s.match_len >= lz77::kMinMatch && s.match_len <= lz77::kMaxMatch,
          "bit codec: match length outside DEFLATE domain");
    check(s.match_dist >= 1 && s.match_dist <= lz77::kMaxDistance,
          "bit codec: match distance outside DEFLATE domain");
    ++litlen_freqs[kFirstLengthSymbol + lz77::length_code(s.match_len)];
    ++offset_freqs[lz77::distance_code(s.match_dist)];
  }

  // Build the two limited-length canonical codes and the fused emit
  // tables, all in reused storage.
  huffman::build_code_lengths_into(litlen_freqs, config.codeword_limit,
                                   scratch.litlen_lengths, scratch.code_ws);
  huffman::build_code_lengths_into(offset_freqs, config.codeword_limit,
                                   scratch.offset_lengths, scratch.code_ws);
  huffman::assign_canonical_codes_into(scratch.litlen_lengths, scratch.litlen_codes);
  huffman::assign_canonical_codes_into(scratch.offset_lengths, scratch.offset_codes);
  scratch.emit.build(scratch.litlen_codes, scratch.offset_codes);
  ++scratch.stats.table_builds;

  // Pass 2: emit the bitstream sub-block by sub-block, recording sizes.
  const std::size_t n_seq = block.sequences.size();
  const std::size_t tps = config.tokens_per_subblock;
  const std::size_t n_sub = n_seq == 0 ? 0 : (n_seq + tps - 1) / tps;
  scratch.subblocks.assign(n_sub, SubblockEnc{});

  if (lane_pool != nullptr && n_sub > 1) {
    // Sub-block token coding is embarrassingly parallel once every lane
    // knows its literal base: chunks of sub-blocks emit into their own
    // writers, then the streams are spliced in order at bit granularity.
    // Output bytes are identical to the serial path.
    const std::size_t grain = std::max<std::size_t>(
        1, n_sub / (4 * lane_pool->parallelism()));
    const std::size_t n_chunks = (n_sub + grain - 1) / grain;
    std::vector<BitWriter> lane_writers(n_chunks);
    // Literal offset of every sub-block (prefix sums over sequences).
    std::vector<std::uint64_t> lit_base(n_sub + 1, 0);
    {
      std::uint64_t lits = 0;
      for (std::size_t sb = 0; sb < n_sub; ++sb) {
        const std::size_t lo = sb * tps;
        const std::size_t hi = std::min(n_seq, lo + tps);
        for (std::size_t i = lo; i < hi; ++i) lits += block.sequences[i].literal_len;
        lit_base[sb + 1] = lits;
      }
    }
    lane_pool->parallel_for_chunked(n_sub, grain, [&](std::size_t sb_begin,
                                                      std::size_t sb_end) {
      const std::size_t chunk = sb_begin / grain;
      emit_subblocks(block, sb_begin * tps, std::min(n_seq, sb_end * tps),
                     block.literals.data() + lit_base[sb_begin],
                     lit_base[sb_end] - lit_base[sb_begin], tps, scratch.emit,
                     lane_writers[chunk], scratch.subblocks.data() + sb_begin);
    });
    for (std::size_t c = 0; c < n_chunks; ++c) {
      const std::uint64_t nbits = lane_writers[c].bit_count();
      const Bytes bytes = lane_writers[c].finish();
      scratch.stream.append_bits(bytes, nbits);
    }
    ++scratch.stats.lane_fanouts;
  } else if (n_sub != 0) {
    emit_subblocks(block, 0, n_seq, block.literals.data(), block.literals.size(), tps,
                   scratch.emit, scratch.stream, scratch.subblocks.data());
  }

  // Assemble: counts, sub-block table, serialized trees, bitstream.
  Bytes& out = scratch.payload;
  out.clear();
  put_varint(out, n_seq);
  put_varint(out, block.literals.size());
  put_varint(out, scratch.subblocks.size());
  for (const auto& info : scratch.subblocks) {
    put_varint(out, info.bits);
    put_varint(out, info.n_sequences);
    put_varint(out, info.n_literals);
  }
  huffman::write_code_lengths(scratch.litlen_lengths, scratch.trees);
  huffman::write_code_lengths(scratch.offset_lengths, scratch.trees);
  scratch.trees.flush_into(out);
  scratch.stream.flush_into(out);

  ++scratch.stats.blocks;
  if (!scratch.pending_growth && caps == scratch.capacities()) {
    ++scratch.stats.buffer_reuses;
  }
  scratch.pending_growth = false;
  return out;
}

Bytes encode_block_bit(const lz77::TokenBlock& block, const BitCodecConfig& config) {
  EncodeScratch scratch;
  encode_block_bit(block, config, scratch);
  return std::move(scratch.payload);
}

namespace {

/// Decodes one sub-block lane with the fused tables. Steady-state token
/// cost: one refill, one fused lit/len load, and (for matches) one fused
/// offset load — no conditional refills and no secondary value-decode
/// lookups on the critical path. Returns the lane's output byte count.
std::uint64_t decode_subblock(ByteSpan payload, const SubblockLayout& lane,
                              const FusedTables& tables, lz77::Sequence* seq_out,
                              std::uint8_t* lit_out) {
  BitReader reader(payload, lane.bit_offset);
  // Hoisted raw pointers: the byte stores through lit_out may alias
  // anything, so indexing through the vectors would reload their data
  // pointers on every token.
  const std::uint32_t* const litlen_table = tables.litlen.data();
  const std::uint32_t* const offset_table = tables.offset.data();
  const unsigned table_bits = tables.bits;
  std::uint32_t lits_left = lane.n_literals;
  std::uint64_t match_bytes = 0;
  for (std::uint32_t k = 0; k < lane.n_sequences; ++k) {
    lz77::Sequence seq;
    while (true) {
      // One branchless refill per token guarantees 56 bits — more than
      // the worst-case token of CWL(15) + 5 length extra + CWL(15) + 13
      // distance extra = 48 bits — so the token decode below runs with
      // no conditional refills at all.
      reader.refill();
      const std::uint32_t e = litlen_table[reader.peek_unchecked(table_bits)];
      check(e != 0, "bit codec: invalid lit/len code");
      reader.consume_unchecked(fused_code_length(e));
      const std::uint32_t kind = fused_kind(e);
      if (kind == kFusedDoubleLiteral) {
        check(lits_left >= 2, "bit codec: literal overflow in sub-block");
        const std::uint32_t v = fused_value(e);
        lit_out[0] = static_cast<std::uint8_t>(v);
        lit_out[1] = static_cast<std::uint8_t>(v >> 8);
        lit_out += 2;
        lits_left -= 2;
        seq.literal_len += 2;
        continue;
      }
      if (kind == kFusedLiteral) {
        check(lits_left != 0, "bit codec: literal overflow in sub-block");
        *lit_out++ = static_cast<std::uint8_t>(fused_value(e));
        --lits_left;
        ++seq.literal_len;
        continue;
      }
      if (kind == kFusedEnd) break;  // terminator sequence: no match
      seq.match_len = fused_value(e) + reader.read_unchecked(fused_extra_bits(e));
      const std::uint32_t d = offset_table[reader.peek_unchecked(table_bits)];
      check(d != 0, "bit codec: invalid offset code");
      reader.consume_unchecked(fused_code_length(d));
      seq.match_dist = fused_value(d) + reader.read_unchecked(fused_extra_bits(d));
      match_bytes += seq.match_len;
      break;
    }
    seq_out[k] = seq;
  }
  check(lits_left == 0, "bit codec: literal underflow in sub-block");
  check(reader.bit_pos() == lane.bit_offset + lane.bits,
        "bit codec: sub-block size mismatch");
  check(!reader.overflowed(), "bit codec: sub-block overran payload");
  return lane.n_literals + match_bytes;
}

}  // namespace

lz77::TokenBlock decode_block_bit(ByteSpan payload, const BitCodecConfig& config) {
  DecodeScratch scratch;
  decode_block_bit(payload, config, scratch);
  return std::move(scratch.block);
}

const lz77::TokenBlock& decode_block_bit(ByteSpan payload, const BitCodecConfig& config,
                                         DecodeScratch& scratch, ThreadPool* lane_pool) {
  std::size_t pos = 0;
  const std::uint64_t n_seq = get_varint(payload, pos);
  const std::uint64_t n_literals = get_varint(payload, pos);
  const std::uint64_t n_subblocks = get_varint(payload, pos);
  check(n_seq > 0, "bit codec: empty block");
  check(n_subblocks > 0 && n_subblocks <= n_seq, "bit codec: bad sub-block count");
  // Lane output slots are 32-bit; a block's output size is uint32 too, so
  // counts beyond that are corrupt and must not wrap the prefix sums.
  check(n_seq <= 0xFFFFFFFFull && n_literals <= 0xFFFFFFFFull,
        "bit codec: block counts exceed 32-bit bounds");

  // Steady-state accounting: did every scratch buffer already have room?
  const bool buffers_fit =
      scratch.subblocks.capacity() >= n_subblocks &&
      scratch.block.sequences.capacity() >= n_seq &&
      scratch.block.literals.capacity() >= n_literals;

  // Parse the sub-block size list and derive every lane's bit offset and
  // output slots via prefix sums — the header's whole purpose (§III-A).
  scratch.subblocks.resize(static_cast<std::size_t>(n_subblocks));
  std::uint64_t seq_total = 0, lit_total = 0, bits_total = 0;
  for (auto& lane : scratch.subblocks) {
    lane.bits = get_varint(payload, pos);
    lane.n_sequences = static_cast<std::uint32_t>(get_varint(payload, pos));
    lane.n_literals = static_cast<std::uint32_t>(get_varint(payload, pos));
    lane.bit_offset = bits_total;  // relative; rebased below
    lane.seq_base = static_cast<std::uint32_t>(seq_total);
    lane.lit_base = static_cast<std::uint32_t>(lit_total);
    seq_total += lane.n_sequences;
    lit_total += lane.n_literals;
    bits_total += lane.bits;
  }
  check(seq_total == n_seq, "bit codec: sub-block sequence counts disagree");
  check(lit_total == n_literals, "bit codec: sub-block literal counts disagree");

  // Deserialize the two trees and build the fused single-lookup decode
  // tables ("stored in the software-controlled, on-chip memories of the
  // GPU"). Blocks shipping byte-identical trees reuse the cached tables.
  const std::size_t tree_nibbles = kLitLenAlphabet + kOffsetAlphabet;
  const std::size_t tree_bytes = (tree_nibbles * 4 + 7) / 8;
  check(pos + tree_bytes <= payload.size(), "bit codec: truncated tree section");
  const ByteSpan tree_section = payload.subspan(pos, tree_bytes);
  if (scratch.tables.matches(tree_section, config.codeword_limit)) {
    ++scratch.stats.table_reuses;
  } else {
    BitReader tree_reader(payload, 8 * pos);
    huffman::read_code_lengths(kLitLenAlphabet, tree_reader, scratch.litlen_lengths);
    huffman::read_code_lengths(kOffsetAlphabet, tree_reader, scratch.offset_lengths);
    scratch.tables.build(scratch.litlen_lengths, scratch.offset_lengths,
                         config.codeword_limit);
    scratch.tables.tree_bytes.assign(tree_section.begin(), tree_section.end());
    ++scratch.stats.table_builds;
  }
  const std::uint64_t stream_base_bit = 8 * (pos + tree_bytes);
  for (auto& lane : scratch.subblocks) lane.bit_offset += stream_base_bit;

  lz77::TokenBlock& block = scratch.block;
  block.sequences.resize(static_cast<std::size_t>(n_seq));
  block.literals.resize(static_cast<std::size_t>(n_literals));

  // Each warp lane decodes one sub-block; lanes are independent because
  // the table gives every lane its bit offset and output slots. With a
  // lane pool the lanes run on real threads (the paper's intra-block
  // parallelism); otherwise they execute lock-step-equivalently in a loop.
  std::atomic<std::uint64_t> out_bytes{0};
  auto decode_lanes = [&](std::size_t begin, std::size_t end) {
    std::uint64_t local = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const SubblockLayout& lane = scratch.subblocks[i];
      local += decode_subblock(payload, lane, scratch.tables,
                               block.sequences.data() + lane.seq_base,
                               block.literals.data() + lane.lit_base);
    }
    out_bytes.fetch_add(local, std::memory_order_relaxed);
  };
  if (lane_pool != nullptr && n_subblocks > 1) {
    // Grain: a few chunks per participant balances load without paying a
    // queue pop per tiny lane.
    const std::size_t grain = std::max<std::size_t>(
        1, static_cast<std::size_t>(n_subblocks) / (4 * lane_pool->parallelism()));
    lane_pool->parallel_for_chunked(static_cast<std::size_t>(n_subblocks), grain,
                                    decode_lanes);
    ++scratch.stats.lane_fanouts;
  } else {
    decode_lanes(0, static_cast<std::size_t>(n_subblocks));
  }
  block.uncompressed_size = static_cast<std::uint32_t>(out_bytes.load());

  ++scratch.stats.blocks;
  if (buffers_fit) ++scratch.stats.buffer_reuses;
  return block;
}

}  // namespace gompresso::core
