#include "core/compressor.hpp"

#include <memory>
#include <mutex>

#include "core/bit_codec.hpp"
#include "core/byte_codec.hpp"
#include "core/tans_codec.hpp"
#include "lz77/deflate_tables.hpp"
#include "obs/trace.hpp"
#include "util/crc32.hpp"
#include "util/thread_pool.hpp"
#include "util/varint.hpp"

namespace gompresso {
namespace {

// Encode-plane metrics: the compressor's per-block breakdown is LZ77
// parse (matcher + DE constraint) vs. entropy emit.
struct CompressObs {
  obs::Counter blocks = obs::registry().counter("compress.blocks", "blocks");
  obs::Counter bytes = obs::registry().counter("compress.bytes", "bytes");
  obs::Histogram parse_us =
      obs::registry().histogram("compress.parse_us", "us");
  obs::Histogram emit_us = obs::registry().histogram("compress.emit_us", "us");
};

CompressObs& compress_obs() {
  static CompressObs instance;
  return instance;
}

}  // namespace

void CompressOptions::validate() const {
  check(block_size >= 1024, "options: block_size must be >= 1 KiB");
  check(block_size <= (1u << 30), "options: block_size must be <= 1 GiB");
  check(is_pow2(window_size), "options: window_size must be a power of two");
  check(window_size >= 256 && window_size <= lz77::kMaxDistance,
        "options: window_size out of [256, 32768]");
  check(min_match >= 3, "options: min_match must be >= 3");
  check(max_match >= min_match, "options: max_match < min_match");
  check(max_match <= lz77::kMaxMatch, "options: max_match must be <= 258");
  check(tokens_per_subblock >= 1 && tokens_per_subblock <= 4096,
        "options: tokens_per_subblock out of range");
  check(codeword_limit >= 9 && codeword_limit <= 15, "options: CWL out of [9, 15]");
  check(match_effort >= 1, "options: match_effort must be >= 1");
  if (codec == Codec::kByte || codec == Codec::kTans) {
    // Both use the 4-byte packed record domain.
    check(window_size <= core::kByteCodecMaxDistance,
          "options: byte/tans codec requires window_size <= 8192");
    check(max_match <= core::kByteCodecMaxMatch,
          "options: byte/tans codec requires max_match <= 65");
  }
  if (codec == Codec::kTans) {
    check(tans_table_log >= 9 && tans_table_log <= 14,
          "options: tans_table_log out of [9, 14]");
  }
}

Bytes compress(ByteSpan input, const CompressOptions& options, CompressStats* stats) {
  options.validate();

  format::FileHeader header;
  header.codec = options.codec;
  header.dependency_elimination = options.dependency_elimination;
  header.codeword_limit = options.codeword_limit;
  header.window_size = options.window_size;
  header.min_match = options.min_match;
  header.max_match = options.max_match;
  header.block_size = options.block_size;
  header.tokens_per_subblock = options.tokens_per_subblock;
  header.uncompressed_size = input.size();

  const std::size_t num_blocks = div_ceil<std::size_t>(input.size(), options.block_size);
  std::vector<Bytes> payloads(num_blocks);
  // ParseStats gathering is not free (with DE every literal position runs
  // a second, unconstrained matcher probe), so it only runs when asked.
  std::vector<lz77::ParseStats> parse_stats(stats != nullptr ? num_blocks : 0);

  lz77::ParserOptions parser_options;
  parser_options.matcher.window_size = options.window_size;
  parser_options.matcher.min_match = options.min_match;
  parser_options.matcher.max_match = options.max_match;
  parser_options.dependency_elimination = options.dependency_elimination;
  parser_options.group_size = simt::kWarpSize;
  parser_options.matcher.prefer_older_matches = options.prefer_older_matches;
  if (options.codec == Codec::kByte || options.codec == Codec::kTans) {
    parser_options.max_literal_run = core::kByteCodecMaxLiteralRun;
  }

  core::BitCodecConfig bit_config;
  bit_config.tokens_per_subblock = options.tokens_per_subblock;
  bit_config.codeword_limit = options.codeword_limit;
  core::TansCodecConfig tans_config;
  tans_config.tokens_per_subblock = options.tokens_per_subblock;
  tans_config.table_log = options.tans_table_log;

  // Scratch reservation is lazy (first block a worker actually pulls):
  // a wide pool compressing a short input must not pre-touch worst-case
  // buffers for participants that never run a block. The reserve bound
  // is clamped to the input size — no block can exceed it, and a small
  // input with a huge configured block_size must not commit gigabytes.
  const bool tans_scratch = options.codec == Codec::kTans;
  const bool bit_scratch = options.codec == Codec::kBit;
  const std::uint32_t reserve_block_size = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(options.block_size, input.size()));
  auto compress_one = [&](core::EncodeScratch& scratch, std::size_t b,
                          ThreadPool* lane_pool) {
    if (!scratch.reserved) {
      scratch.reserve(reserve_block_size, options.tokens_per_subblock, tans_scratch,
                      options.tans_table_log, bit_scratch);
      scratch.reserved = true;
    }
    const std::size_t begin = b * options.block_size;
    const std::size_t len = std::min<std::size_t>(options.block_size, input.size() - begin);
    const ByteSpan block = input.subspan(begin, len);
    // Blocks are compressed independently: the worker's matcher is reset
    // per block via its cheap generation bump (decisions identical to a
    // fresh matcher). Hash chains approximate the paper's exhaustive
    // parallel matching (§III-A); with DE, the chain's older entries also
    // supply the below-HWM candidates that §IV-B's staleness policy
    // preserves in the single-slot (LZ4) setting.
    const core::EncodeScratch::CapSnapshot caps = scratch.capacities();
    lz77::ChainMatcher& matcher =
        scratch.chain_matcher(parser_options.matcher, options.match_effort);
    {
      obs::StageScope stage("parse", "encode", compress_obs().parse_us);
      lz77::parse_block_into(block, parser_options, matcher, scratch.block,
                             stats != nullptr ? &parse_stats[b] : nullptr,
                             &scratch.de_constraint);
    }
    if (!(caps == scratch.capacities())) scratch.pending_growth = true;
    const Bytes* encoded_out = nullptr;
    {
      obs::StageScope stage("emit", "encode", compress_obs().emit_us);
      encoded_out =
          options.codec == Codec::kByte
              ? &core::encode_block_byte(scratch.block, scratch, lane_pool)
          : options.codec == Codec::kBit
              ? &core::encode_block_bit(scratch.block, bit_config, scratch,
                                        lane_pool)
              : &core::encode_block_tans(scratch.block, tans_config, scratch,
                                         lane_pool);
    }
    const Bytes& encoded = *encoded_out;
    compress_obs().blocks.add(1);
    compress_obs().bytes.add(block.size());
    Bytes& payload = payloads[b];
    if (options.allow_stored_blocks && encoded.size() >= block.size()) {
      // Stored block (DEFLATE's "stored" mode): incompressible blocks are
      // emitted verbatim, bounding expansion at the mode byte + CRC.
      payload.reserve(5 + block.size());
      put_u32le(payload, crc32(block));
      payload.push_back(kBlockModeStored);
      payload.insert(payload.end(), block.begin(), block.end());
    } else {
      payload.reserve(5 + encoded.size());
      put_u32le(payload, crc32(block));
      payload.push_back(kBlockModeCoded);
      payload.insert(payload.end(), encoded.begin(), encoded.end());
    }
  };

  // Thread plan (mirrors decompress): whole-block pipelining across the
  // pool when there are multiple blocks, intra-block sub-block fan-out
  // for a single-block input, serial otherwise. Every worker owns one
  // pre-reserved EncodeScratch.
  ThreadPool* pool = nullptr;
  std::unique_ptr<ThreadPool> own_pool;
  if (options.num_threads == 0) {
    pool = &default_pool();
  } else if (options.num_threads > 1) {
    own_pool = std::make_unique<ThreadPool>(options.num_threads);
    pool = own_pool.get();
  }

  std::vector<core::EncodeScratch> workers;
  if (pool == nullptr || pool->parallelism() == 1) {
    workers.resize(1);
    for (std::size_t b = 0; b < num_blocks; ++b) compress_one(workers[0], b, nullptr);
  } else if (num_blocks != 1) {
    workers.resize(pool->parallelism());
    pool->parallel_for_worker(num_blocks, [&](std::size_t worker, std::size_t b) {
      compress_one(workers[worker], b, nullptr);
    });
  } else {
    // A single block cannot use inter-block parallelism: fan its
    // sub-block token coding out across the pool instead.
    workers.resize(1);
    compress_one(workers[0], 0, pool);
  }

  header.block_compressed_sizes.reserve(num_blocks);
  std::size_t total_payload = 0;
  for (const auto& p : payloads) {
    header.block_compressed_sizes.push_back(p.size());
    total_payload += p.size();
  }

  Bytes out = header.serialize();
  out.reserve(out.size() + total_payload);
  for (const auto& p : payloads) out.insert(out.end(), p.begin(), p.end());

  if (stats) {
    stats->input_bytes = input.size();
    stats->output_bytes = out.size();
    stats->blocks = num_blocks;
    for (const auto& ps : parse_stats) {
      stats->parse.sequences += ps.sequences;
      stats->parse.match_bytes += ps.match_bytes;
      stats->parse.literal_bytes += ps.literal_bytes;
      stats->parse.matches_rejected_by_hwm += ps.matches_rejected_by_hwm;
    }
    for (const auto& w : workers) stats->scratch.merge(w.stats);
  }
  return out;
}

}  // namespace gompresso
