// The Gompresso decompressor: inter-block parallelism across worker
// threads, intra-block parallelism via the warp engine (§III-B).
//
// Thread plan: with at least as many blocks as pool participants, workers
// pull whole blocks from the common queue (the paper's inter-block
// parallelism). A single-block file cannot use that at all, so both of
// its decode phases are fanned out across the pool instead: token decode
// by sub-block lane (the paper's warp lanes, executed as real threads)
// and LZ77 resolution by warp-group shard with a completed-watermark
// handoff (core/resolve_parallel.hpp). Every worker owns a DecodeScratch
// arena and private metric accumulators, merged once at the end — the
// steady-state block loop takes no locks and performs no heap
// allocations.
#pragma once

#include "core/decode_scratch.hpp"
#include "core/mrr_multipass.hpp"
#include "core/options.hpp"
#include "simt/warp.hpp"
#include "util/common.hpp"

namespace gompresso {

/// Result of a decompression run: the data plus the warp execution
/// metrics used by the Fig. 9 benchmarks.
struct DecompressResult {
  Bytes data;
  Strategy strategy_used = Strategy::kMultiRound;
  simt::WarpMetrics metrics;
  core::MultiPassStats multipass;  // populated only for kMultiPass
  /// Decode-arena reuse counters (all codecs). In the steady state every
  /// block is a buffer_reuse (arenas are pre-reserved from the header
  /// bound); scratch.lane_fanouts counts blocks whose sub-block lanes
  /// were decoded thread-parallel and scratch.resolve_fanouts blocks
  /// whose LZ77 resolution ran sharded (both intra-block paths taken for
  /// a single-block file on a multi-thread pool). resolve_deferrals
  /// counts back-references that crossed a shard boundary and resolved
  /// in a phase-B watermark sweep.
  core::ScratchStats scratch;
};

/// Decompresses a Gompresso file produced by gompresso::compress().
///
/// Strategy selection: with `options.auto_strategy` (default) DE files
/// use the single-round dependency-free resolver and non-DE files use
/// MRR. An explicit kDependencyFree request on a non-DE file throws,
/// since such streams may contain intra-warp dependencies.
DecompressResult decompress(ByteSpan file, const DecompressOptions& options = {});

/// Convenience: decompress and return only the bytes.
inline Bytes decompress_bytes(ByteSpan file, const DecompressOptions& options = {}) {
  return decompress(file, options).data;
}

}  // namespace gompresso
