// The Gompresso decompressor: inter-block parallelism across worker
// threads, intra-block parallelism via the warp engine (§III-B).
#pragma once

#include "core/mrr_multipass.hpp"
#include "core/options.hpp"
#include "simt/warp.hpp"
#include "util/common.hpp"

namespace gompresso {

/// Result of a decompression run: the data plus the warp execution
/// metrics used by the Fig. 9 benchmarks.
struct DecompressResult {
  Bytes data;
  Strategy strategy_used = Strategy::kMultiRound;
  simt::WarpMetrics metrics;
  core::MultiPassStats multipass;  // populated only for kMultiPass
};

/// Decompresses a Gompresso file produced by gompresso::compress().
///
/// Strategy selection: with `options.auto_strategy` (default) DE files
/// use the single-round dependency-free resolver and non-DE files use
/// MRR. An explicit kDependencyFree request on a non-DE file throws,
/// since such streams may contain intra-warp dependencies.
DecompressResult decompress(ByteSpan file, const DecompressOptions& options = {});

/// Convenience: decompress and return only the bytes.
inline Bytes decompress_bytes(ByteSpan file, const DecompressOptions& options = {}) {
  return decompress(file, options).data;
}

}  // namespace gompresso
