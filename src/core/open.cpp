#include "core/open.hpp"

#include <fstream>
#include <iterator>
#include <optional>

#include "format/sniff.hpp"
#include "ingest/gzip_backend.hpp"
#include "serve/seek_index.hpp"
#include "util/varint.hpp"

namespace gompresso {
namespace {

serve::BackendDecodeOptions backend_decode_options(
    const serve::SessionOptions& s) {
  serve::BackendDecodeOptions o;
  o.verify_checksums = s.verify_checksums;
  o.auto_strategy = s.auto_strategy;
  o.strategy = s.strategy;
  return o;
}

Bytes read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  check_io(in.good(), "open: cannot open sidecar");
  return Bytes((std::istreambuf_iterator<char>(in)),
               std::istreambuf_iterator<char>());
}

/// The sidecar's own magic picks its loader; handing a backend a table
/// of the wrong flavor is a structural error, not a scan fallback —
/// silently rebuilding would hide the operator's mistake.
std::uint32_t sidecar_magic(ByteSpan sidecar) {
  std::size_t pos = 0;
  check_format(sidecar.size() >= 4, "open: sidecar too short");
  return get_u32le(sidecar, pos);
}

}  // namespace

std::shared_ptr<serve::ContainerBackend> open_backend(
    serve::ByteSource& source, const OpenOptions& options) {
  Bytes prefix(static_cast<std::size_t>(
      std::min<std::uint64_t>(source.size(), format::kSniffBytes)));
  if (!prefix.empty()) {
    source.read_at(0, MutableByteSpan(prefix.data(), prefix.size()));
  }
  const format::ContainerKind kind =
      format::sniff_container(ByteSpan(prefix.data(), prefix.size()));

  std::shared_ptr<serve::ContainerBackend> backend;
  switch (kind) {
    case format::ContainerKind::kGmpz:
    case format::ContainerKind::kGmps: {
      serve::SeekIndex index;
      if (!options.sidecar_path.empty()) {
        const Bytes sidecar = read_file_bytes(options.sidecar_path);
        check_format(sidecar_magic(sidecar) == serve::kIndexMagic,
                     "open: sidecar format does not match the container");
        index = serve::SeekIndex::deserialize(
            ByteSpan(sidecar.data(), sidecar.size()));
      } else {
        index = serve::SeekIndex::build(source);
      }
      backend = serve::make_gmpz_backend(std::move(index),
                                         backend_decode_options(options.session));
      break;
    }
    case format::ContainerKind::kGzip: {
      if (!options.sidecar_path.empty()) {
        const Bytes sidecar = read_file_bytes(options.sidecar_path);
        check_format(sidecar_magic(sidecar) == ingest::kGzipIndexMagic,
                     "open: sidecar format does not match the container");
        backend = ingest::make_gzip_backend(ingest::GzipIndex::deserialize(
            ByteSpan(sidecar.data(), sidecar.size())));
        break;
      }
      ingest::GzipIndexOptions g = options.gzip;
      // The index build parallelizes on the same pool resolution the
      // session will use for decode, unless the caller pinned one.
      std::optional<ThreadPool> own_pool;
      if (g.pool == nullptr) {
        if (options.session.pool != nullptr) {
          g.pool = options.session.pool;
        } else if (options.session.num_threads == 0) {
          g.pool = &default_pool();
        } else if (options.session.num_threads > 1) {
          own_pool.emplace(options.session.num_threads);
          g.pool = &*own_pool;
        }
        // num_threads == 1: leave null — sequential build.
      }
      backend = ingest::make_gzip_backend(ingest::GzipIndex::build(source, g));
      break;
    }
    case format::ContainerKind::kUnknown:
      throw FormatError("open: unrecognized container format");
  }
  check_format(backend->source_size() == source.size(),
               "serve: seek index does not match the source (rebuild it)");
  return backend;
}

std::unique_ptr<serve::DecodeSession> open(
    std::unique_ptr<serve::ByteSource> source, const OpenOptions& options) {
  check(source != nullptr, "open: null source");
  std::shared_ptr<serve::ContainerBackend> backend =
      open_backend(*source, options);
  return std::make_unique<serve::DecodeSession>(
      std::move(source), std::move(backend), options.session);
}

std::unique_ptr<serve::DecodeSession> open(const std::string& path,
                                           const OpenOptions& options) {
  return open(serve::open_file_source(path), options);
}

}  // namespace gompresso
