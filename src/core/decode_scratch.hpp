// Per-worker decode scratch arena.
//
// The block decode loop is the decompressor's hottest path; on the GPU it
// runs out of pre-sized on-chip buffers with no allocator in sight. This
// arena gives the CPU implementation the same discipline: each worker
// thread owns one DecodeScratch whose buffers (token block, sub-block
// layout, code-length vectors, fused decode tables) are reused across
// every block the worker decodes. After the first block warms the
// capacities, a block decode performs zero heap allocations — the
// `buffer_reuses` counter in ScratchStats proves it, and
// bench_decode_hotpath asserts on it.
//
// The fused tables are additionally cached against a byte-exact copy of
// the serialized tree section: blocks that ship identical trees (common
// for stationary sources) skip the table rebuild entirely.
#pragma once

#include <cstdint>
#include <vector>

#include "ans/tans.hpp"
#include "core/decode_tables.hpp"
#include "core/mrr_multipass.hpp"
#include "core/resolve_parallel.hpp"
#include "lz77/sequence.hpp"

namespace gompresso::core {

/// Width of the packed little-endian LZ77 record word shared by the
/// byte and tans codecs (see core/byte_codec.hpp for the field layout).
/// Defined here so the scratch record arena and both codecs size against
/// the same constant.
inline constexpr std::size_t kByteRecordSize = 4;

/// One sub-block lane's slice of the block: where its bits start and
/// where its outputs go. Computed once from the block header's size list,
/// then each lane decodes independently (the paper's warp lanes).
struct SubblockLayout {
  std::uint64_t bit_offset = 0;  // absolute first bit of the lane's stream
  std::uint64_t bits = 0;        // compressed size in bits
  std::uint32_t n_sequences = 0;
  std::uint32_t n_literals = 0;
  std::uint32_t seq_base = 0;  // output slot in TokenBlock::sequences
  std::uint32_t lit_base = 0;  // output slot in TokenBlock::literals
};

/// The tans codec's equivalent of SubblockLayout: one lane owns a pair of
/// tANS streams (packed records + literals) at byte granularity, plus the
/// same output slots. Computed up front from the sub-block table so every
/// lane decodes independently.
struct TansLaneLayout {
  std::uint64_t record_offset = 0;   // absolute byte offset of the record stream
  std::uint64_t record_bytes = 0;    // encoded record-stream size
  std::uint64_t literal_offset = 0;  // absolute byte offset of the literal stream
  std::uint64_t literal_bytes = 0;   // encoded literal-stream size
  std::uint32_t n_sequences = 0;
  std::uint32_t n_literals = 0;
  std::uint32_t seq_base = 0;  // output slot in TokenBlock::sequences
  std::uint32_t lit_base = 0;  // output slot in TokenBlock::literals
};

/// Reuse counters exposed through DecompressResult.
struct ScratchStats {
  std::uint64_t blocks = 0;         // blocks decoded through a scratch
  std::uint64_t buffer_reuses = 0;  // blocks needing no buffer growth
  std::uint64_t table_builds = 0;   // decode-table (re)builds: fused Huffman
                                    // tables or tANS models
  std::uint64_t table_reuses = 0;   // cached-tree hits (bit codec)
  std::uint64_t lane_fanouts = 0;   // blocks whose lanes ran thread-parallel
  std::uint64_t resolve_fanouts = 0;    // blocks whose phase-2 ran sharded
  std::uint64_t resolve_deferrals = 0;  // back-refs handed to a phase-B sweep

  void merge(const ScratchStats& other) {
    blocks += other.blocks;
    buffer_reuses += other.buffer_reuses;
    table_builds += other.table_builds;
    table_reuses += other.table_reuses;
    lane_fanouts += other.lane_fanouts;
    resolve_fanouts += other.resolve_fanouts;
    resolve_deferrals += other.resolve_deferrals;
  }
};

/// All mutable state a block decode needs, owned by one worker thread.
struct DecodeScratch {
  lz77::TokenBlock block;
  std::vector<SubblockLayout> subblocks;
  std::vector<TansLaneLayout> tans_lanes;
  std::vector<std::uint8_t> litlen_lengths;
  std::vector<std::uint8_t> offset_lengths;
  FusedTables tables;
  /// Decoded packed-record bytes (tans lanes decode their record stream
  /// into a disjoint slice here before unpacking into block.sequences).
  std::vector<std::uint8_t> record_bytes;
  /// Per-block shared tANS models, rebuilt in place (decode side only).
  ans::Model record_model;
  ans::Model literal_model;
  /// Phase-2 shard plan + watermark state (sharded parallel resolution).
  ResolvePlan resolve;
  /// Phase-2 worklists for the kMultiPass strategy.
  MultiPassWorkspace multipass_ws;
  ScratchStats stats;

  /// Pre-sizes the buffers to the worst case any block of
  /// `max_block_size` uncompressed bytes can need — the CPU analogue of
  /// the GPU's pre-allocated device buffers. After this, every block
  /// decode is allocation-free from the first block on (buffer_reuses ==
  /// blocks). A non-terminator sequence emits at least min-match (3)
  /// bytes, bounding the sequence count. `tans` additionally pre-sizes
  /// the record arena and the model tables (the models are
  /// self-describing, so size for the largest permitted table).
  void reserve(std::uint32_t max_block_size, std::uint32_t tokens_per_subblock,
               bool tans = false) {
    const std::size_t max_seq = max_block_size / 3 + 2;
    const std::size_t max_lanes =
        max_seq / std::max<std::uint32_t>(1, tokens_per_subblock) + 1;
    block.sequences.reserve(max_seq);
    block.literals.reserve(max_block_size);
    subblocks.reserve(max_lanes);
    resolve.reserve(max_seq / ResolveShardConfig{}.min_sequences_per_shard + 2);
    if (tans) {
      tans_lanes.reserve(max_lanes);
      record_bytes.reserve(max_seq * kByteRecordSize);
      record_model.reserve_decode(ans::kMaxTableLog);
      literal_model.reserve_decode(ans::kMaxTableLog);
    }
  }
};

}  // namespace gompresso::core
