// Per-worker decode scratch arena.
//
// The block decode loop is the decompressor's hottest path; on the GPU it
// runs out of pre-sized on-chip buffers with no allocator in sight. This
// arena gives the CPU implementation the same discipline: each worker
// thread owns one DecodeScratch whose buffers (token block, sub-block
// layout, code-length vectors, fused decode tables) are reused across
// every block the worker decodes. After the first block warms the
// capacities, a block decode performs zero heap allocations — the
// `buffer_reuses` counter in ScratchStats proves it, and
// bench_decode_hotpath asserts on it.
//
// The fused tables are additionally cached against a byte-exact copy of
// the serialized tree section: blocks that ship identical trees (common
// for stationary sources) skip the table rebuild entirely.
#pragma once

#include <cstdint>
#include <vector>

#include "core/decode_tables.hpp"
#include "lz77/sequence.hpp"

namespace gompresso::core {

/// One sub-block lane's slice of the block: where its bits start and
/// where its outputs go. Computed once from the block header's size list,
/// then each lane decodes independently (the paper's warp lanes).
struct SubblockLayout {
  std::uint64_t bit_offset = 0;  // absolute first bit of the lane's stream
  std::uint64_t bits = 0;        // compressed size in bits
  std::uint32_t n_sequences = 0;
  std::uint32_t n_literals = 0;
  std::uint32_t seq_base = 0;  // output slot in TokenBlock::sequences
  std::uint32_t lit_base = 0;  // output slot in TokenBlock::literals
};

/// Reuse counters exposed through DecompressResult.
struct ScratchStats {
  std::uint64_t blocks = 0;         // blocks decoded through a scratch
  std::uint64_t buffer_reuses = 0;  // blocks needing no buffer growth
  std::uint64_t table_builds = 0;   // fused-table (re)builds
  std::uint64_t table_reuses = 0;   // cached-tree hits
  std::uint64_t lane_fanouts = 0;   // blocks whose lanes ran thread-parallel

  void merge(const ScratchStats& other) {
    blocks += other.blocks;
    buffer_reuses += other.buffer_reuses;
    table_builds += other.table_builds;
    table_reuses += other.table_reuses;
    lane_fanouts += other.lane_fanouts;
  }
};

/// All mutable state a block decode needs, owned by one worker thread.
struct DecodeScratch {
  lz77::TokenBlock block;
  std::vector<SubblockLayout> subblocks;
  std::vector<std::uint8_t> litlen_lengths;
  std::vector<std::uint8_t> offset_lengths;
  FusedTables tables;
  ScratchStats stats;

  /// Pre-sizes the buffers to the worst case any block of
  /// `max_block_size` uncompressed bytes can need — the CPU analogue of
  /// the GPU's pre-allocated device buffers. After this, every block
  /// decode is allocation-free from the first block on (buffer_reuses ==
  /// blocks). A non-terminator sequence emits at least min-match (3)
  /// bytes, bounding the sequence count.
  void reserve(std::uint32_t max_block_size, std::uint32_t tokens_per_subblock) {
    const std::size_t max_seq = max_block_size / 3 + 2;
    block.sequences.reserve(max_seq);
    block.literals.reserve(max_block_size);
    subblocks.reserve(max_seq / std::max<std::uint32_t>(1, tokens_per_subblock) + 1);
  }
};

}  // namespace gompresso::core
