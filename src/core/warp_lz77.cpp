#include "core/warp_lz77.hpp"

#include <algorithm>
#include <cstring>

#include "core/resolve_common.hpp"

namespace gompresso::core {
namespace {

using simt::kWarpSize;
using simt::LaneArray;
using simt::LaneMask;

/// Per-group lane state, loaded once per 32-sequence group. The arrays
/// are deliberately left uninitialized — prepare_group fills lanes
/// [0, lanes) and every consumer iterates only the active lanes —
/// zeroing 1.2 KB per group was measurable in the block decode loop.
struct GroupState {
  LaneArray<std::uint32_t> literal_len;
  LaneArray<std::uint32_t> match_len;
  LaneArray<std::uint32_t> match_dist;
  LaneArray<std::uint64_t> literal_src;  // offset into the literal buffer
  LaneArray<std::uint64_t> out_start;    // output offset of the literal string
  LaneArray<std::uint64_t> write_pos;    // output offset of the back-reference
  unsigned lanes = 0;                    // active lanes (last group may be short)
  std::uint64_t group_out_base = 0;      // output offset where the group starts
  std::uint64_t group_out_end = 0;       // output offset just past the group
};

/// Step (a) + (b): load sequences, compute the two exclusive prefix sums,
/// and copy the literal strings of every active lane. The sums are plain
/// running totals here — lane-for-lane identical to the two 5-step
/// shfl_up scan networks the GPU executes (simt::exclusive_scan), which
/// is what the shuffle metric continues to count.
GroupState prepare_group(std::span<const lz77::Sequence> sequences, std::size_t first,
                         const std::uint8_t* literals, std::uint64_t literal_base,
                         std::uint64_t out_base, MutableByteSpan out,
                         simt::WarpMetrics* metrics) {
  GroupState g;
  g.lanes = static_cast<unsigned>(std::min<std::size_t>(kWarpSize, sequences.size() - first));
  g.group_out_base = out_base;

  std::uint64_t lit_run = 0;  // exclusive scan of literal lengths
  std::uint64_t out_run = 0;  // exclusive scan of literal + match lengths
  for (unsigned lane = 0; lane < g.lanes; ++lane) {
    const lz77::Sequence& s = sequences[first + lane];
    g.literal_len[lane] = s.literal_len;
    g.match_len[lane] = s.match_len;
    g.match_dist[lane] = s.match_dist;
    g.literal_src[lane] = literal_base + lit_run;
    g.out_start[lane] = out_base + out_run;
    g.write_pos[lane] = g.out_start[lane] + s.literal_len;
    lit_run += s.literal_len;
    out_run += static_cast<std::uint64_t>(s.literal_len) + s.match_len;
  }
  if (metrics) metrics->shuffles += 2 * 5;  // two 5-step shfl_up scans

  g.group_out_end = out_base + out_run;
  check(g.group_out_end <= out.size(), "warp_lz77: output overrun");

  // Copy the literal strings. On the GPU all lanes proceed concurrently;
  // there are no inter-lane dependencies in this phase.
  for (unsigned lane = 0; lane < g.lanes; ++lane) {
    if (g.literal_len[lane] == 0) continue;
    std::memcpy(out.data() + g.out_start[lane], literals + g.literal_src[lane],
                g.literal_len[lane]);
  }
  return g;
}

/// Validates one lane's back-reference bounds before any copy.
inline void check_backref(const GroupState& g, unsigned lane) {
  check(g.match_dist[lane] >= 1 && g.match_dist[lane] <= g.write_pos[lane],
        "warp_lz77: back-reference past start of output");
}

/// Strategy SC: back-references resolved strictly in lane order.
void resolve_group_sc(const GroupState& g, MutableByteSpan out) {
  for (unsigned lane = 0; lane < g.lanes; ++lane) {
    if (g.match_len[lane] == 0) continue;
    check_backref(g, lane);
    copy_backref(out.data(), g.write_pos[lane], g.write_pos[lane] - g.match_dist[lane],
                 g.match_len[lane]);
  }
}

/// Strategy MRR (Fig. 5): iterative resolution driven by warp votes and a
/// high-water mark broadcast.
void resolve_group_mrr(const GroupState& g, MutableByteSpan out,
                       simt::WarpMetrics* metrics) {
  LaneArray<bool> pending{};
  LaneMask active = 0;
  for (unsigned lane = 0; lane < g.lanes; ++lane) {
    pending[lane] = g.match_len[lane] != 0;
    active |= 1u << lane;
    if (pending[lane]) check_backref(g, lane);
  }

  std::uint64_t hwm = g.group_out_base;  // all previous groups fully resolved
  std::uint64_t round = 0;
  LaneMask votes = simt::ballot(pending, active);
  if (metrics) ++metrics->ballots;

  while (votes != 0) {
    ++round;
    std::uint64_t bytes_this_round = 0;
    std::uint64_t refs_this_round = 0;
    for (unsigned lane = 0; lane < g.lanes; ++lane) {
      if (!pending[lane]) continue;
      const std::uint64_t src = g.write_pos[lane] - g.match_dist[lane];
      const std::uint64_t src_end = src + g.match_len[lane];
      const std::uint64_t own = g.out_start[lane];
      const bool resolvable = src_end <= hwm || src >= own || own <= hwm;
      if (resolvable) {
        copy_backref(out.data(), g.write_pos[lane], src, g.match_len[lane]);
        pending[lane] = false;  // Fig. 5 line 6
        bytes_this_round += g.match_len[lane];
        ++refs_this_round;
      }
    }
    // Fig. 5 lines 8-10: vote, find the last gap-free writer, broadcast
    // the new HWM.
    votes = simt::ballot(pending, active);
    if (metrics) ++metrics->ballots;
    const unsigned prefix = simt::completed_prefix(votes);
    if (prefix >= g.lanes) {
      hwm = g.group_out_end;
    } else {
      // The first pending lane's literals are written; output is gap-free
      // up to its back-reference write position.
      hwm = std::max(hwm, g.write_pos[prefix]);
    }
    if (metrics) {
      ++metrics->shuffles;  // the HWM broadcast
      metrics->record_round(round, bytes_this_round, refs_this_round);
    }
    check(refs_this_round != 0 || votes == 0, "warp_lz77: MRR made no progress");
  }
  if (metrics) {
    ++metrics->groups;
    metrics->rounds += round;
    metrics->max_rounds_in_group = std::max(metrics->max_rounds_in_group, round);
  }
}

/// True when every byte of [src, src_end) is safe to read in a single
/// round for `lane`: below the group base (earlier groups are fully
/// resolved), inside some lane's literal interval (all literals are
/// written before the back-reference phase), or at/after the lane's own
/// literal start (forward self-copy).
bool de_source_available(const GroupState& g, unsigned lane, std::uint64_t src,
                         std::uint64_t src_end) {
  return group_part_available(g.out_start.data(), g.write_pos.data(), g.lanes, lane,
                              g.group_out_base, src, src_end);
}

/// Strategy DE: the stream was compressed with dependency elimination, so
/// no back-reference depends on another back-reference of the same warp
/// group; a single round suffices and no voting is needed.
void resolve_group_de(const GroupState& g, MutableByteSpan out,
                      simt::WarpMetrics* metrics) {
  std::uint64_t bytes = 0;
  std::uint64_t refs = 0;
  for (unsigned lane = 0; lane < g.lanes; ++lane) {
    if (g.match_len[lane] == 0) continue;
    check_backref(g, lane);
    const std::uint64_t src = g.write_pos[lane] - g.match_dist[lane];
    const std::uint64_t src_end = src + g.match_len[lane];
    // DE invariant (Fig. 7): the source may touch earlier groups' output
    // and this group's literal regions, but never another lane's
    // back-reference output.
    check(src_end <= g.group_out_base || src >= g.out_start[lane] ||
              de_source_available(g, lane, src, src_end),
          "warp_lz77: DE strategy on a stream with intra-group dependencies");
    copy_backref(out.data(), g.write_pos[lane], src, g.match_len[lane]);
    bytes += g.match_len[lane];
    ++refs;
  }
  if (metrics) {
    ++metrics->groups;
    ++metrics->rounds;
    metrics->record_round(1, bytes, refs);
    metrics->max_rounds_in_group = std::max<std::uint64_t>(metrics->max_rounds_in_group, 1);
  }
}

}  // namespace

void resolve_block(std::span<const lz77::Sequence> sequences,
                   const std::uint8_t* literals, std::size_t literal_count,
                   MutableByteSpan out, Strategy strategy, simt::WarpMetrics* metrics) {
  std::uint64_t literal_base = 0;
  std::uint64_t out_base = 0;
  for (std::size_t first = 0; first < sequences.size(); first += kWarpSize) {
    GroupState g = prepare_group(sequences, first, literals, literal_base, out_base,
                                 out, metrics);
    // Literal source bounds check (all lanes read below literal_count).
    const unsigned last = g.lanes - 1;
    check(g.literal_src[last] + g.literal_len[last] <= literal_count,
          "warp_lz77: literal buffer overrun");
    switch (strategy) {
      case Strategy::kSequentialCopy:
        resolve_group_sc(g, out);
        if (metrics) {
          ++metrics->groups;
          // SC serialises the copies: one "round" per active back-reference.
          for (unsigned lane = 0; lane < g.lanes; ++lane) {
            if (g.match_len[lane] != 0) ++metrics->rounds;
          }
        }
        break;
      case Strategy::kMultiRound:
        resolve_group_mrr(g, out, metrics);
        break;
      case Strategy::kDependencyFree:
        resolve_group_de(g, out, metrics);
        break;
      case Strategy::kMultiPass:
        throw Error("warp_lz77: kMultiPass is handled by mrr_multipass");
    }
    literal_base = g.literal_src[last] + g.literal_len[last];
    out_base = g.group_out_end;
  }
  check(out_base == out.size(), "warp_lz77: output size mismatch");
  check(literal_base == literal_count, "warp_lz77: literal count mismatch");
}

}  // namespace gompresso::core
