#include "core/byte_codec.hpp"

#include <cstring>

#include "util/varint.hpp"

namespace gompresso::core {

std::size_t max_encoded_size_byte(const lz77::TokenBlock& block) {
  return 10 + block.sequences.size() * kByteRecordSize + block.literals.size();
}

std::uint32_t pack_record(const lz77::Sequence& s) {
  check(s.literal_len <= kByteCodecMaxLiteralRun,
        "byte codec: literal run exceeds record field (split at parse time)");
  std::uint32_t len_field = 0;
  std::uint32_t dist_field = 0;
  if (s.match_len != 0) {
    check(s.match_len >= 3 && s.match_len <= kByteCodecMaxMatch,
          "byte codec: match length outside [3, 65]");
    check(s.match_dist >= 1 && s.match_dist <= kByteCodecMaxDistance,
          "byte codec: match distance outside [1, 8192]");
    len_field = s.match_len - 2;
    dist_field = s.match_dist - 1;
  } else {
    check(s.match_dist == 0, "byte codec: zero-length match with distance");
  }
  return s.literal_len | (len_field << 13) | (dist_field << 19);
}

lz77::Sequence unpack_record(std::uint32_t word) {
  lz77::Sequence s;
  s.literal_len = word & 0x1FFFu;
  const std::uint32_t len_field = (word >> 13) & 0x3Fu;
  const std::uint32_t dist_field = word >> 19;
  if (len_field == 0) {
    check(dist_field == 0, "byte codec: zero-length match with distance");
    s.match_len = 0;
    s.match_dist = 0;
  } else {
    s.match_len = len_field + 2;
    s.match_dist = dist_field + 1;
  }
  return s;
}

Bytes encode_block_byte(const lz77::TokenBlock& block) {
  Bytes out;
  out.reserve(max_encoded_size_byte(block));
  put_varint(out, block.sequences.size());
  for (const auto& s : block.sequences) put_u32le(out, pack_record(s));
  out.insert(out.end(), block.literals.begin(), block.literals.end());
  return out;
}

lz77::TokenBlock decode_block_byte(ByteSpan payload) {
  std::size_t pos = 0;
  const std::uint64_t n_sequences = get_varint(payload, pos);
  check(n_sequences > 0, "byte codec: empty block");
  check(n_sequences <= (payload.size() - pos) / kByteRecordSize,
        "byte codec: truncated record array");

  lz77::TokenBlock block;
  block.sequences.resize(static_cast<std::size_t>(n_sequences));
  std::uint64_t total = 0;
  std::uint64_t literal_total = 0;
  for (auto& s : block.sequences) {
    s = unpack_record(get_u32le(payload, pos));
    total += s.literal_len + s.match_len;
    literal_total += s.literal_len;
  }
  check(literal_total == payload.size() - pos, "byte codec: literal region size mismatch");
  block.literals.assign(payload.begin() + static_cast<std::ptrdiff_t>(pos), payload.end());
  check(total <= 0xFFFFFFFFull, "byte codec: block too large");
  block.uncompressed_size = static_cast<std::uint32_t>(total);
  return block;
}

}  // namespace gompresso::core
