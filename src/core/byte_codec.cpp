#include "core/byte_codec.hpp"

#include <atomic>
#include <cstring>
#include <limits>

#include "util/thread_pool.hpp"
#include "util/varint.hpp"

namespace gompresso::core {

std::size_t max_encoded_size_byte(const lz77::TokenBlock& block) {
  // Same strict-parse discipline as the decoder: the sum must not wrap,
  // or the caller's reserve() under-allocates and the append loop runs
  // against an undersized buffer.
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  check(block.literals.size() <= kMax - 10, "byte codec: block too large to encode");
  check(block.sequences.size() <= (kMax - 10 - block.literals.size()) / kByteRecordSize,
        "byte codec: block too large to encode");
  return 10 + block.sequences.size() * kByteRecordSize + block.literals.size();
}

std::uint32_t pack_record(const lz77::Sequence& s) {
  check(s.literal_len <= kByteCodecMaxLiteralRun,
        "byte codec: literal run exceeds record field (split at parse time)");
  std::uint32_t len_field = 0;
  std::uint32_t dist_field = 0;
  if (s.match_len != 0) {
    check(s.match_len >= 3 && s.match_len <= kByteCodecMaxMatch,
          "byte codec: match length outside [3, 65]");
    check(s.match_dist >= 1 && s.match_dist <= kByteCodecMaxDistance,
          "byte codec: match distance outside [1, 8192]");
    len_field = s.match_len - 2;
    dist_field = s.match_dist - 1;
  } else {
    check(s.match_dist == 0, "byte codec: zero-length match with distance");
  }
  return s.literal_len | (len_field << 13) | (dist_field << 19);
}

lz77::Sequence unpack_record(std::uint32_t word) {
  lz77::Sequence s;
  s.literal_len = word & 0x1FFFu;
  const std::uint32_t len_field = (word >> 13) & 0x3Fu;
  const std::uint32_t dist_field = word >> 19;
  if (len_field == 0) {
    check(dist_field == 0, "byte codec: zero-length match with distance");
    s.match_len = 0;
    s.match_dist = 0;
  } else {
    s.match_len = len_field + 2;
    s.match_dist = dist_field + 1;
  }
  return s;
}

void pack_records_into(const lz77::Sequence* seqs, std::size_t count,
                       std::uint8_t* dst) {
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t word = pack_record(seqs[i]);
    std::memcpy(dst, &word, 4);  // little-endian hosts
    dst += kByteRecordSize;
  }
}

Bytes encode_block_byte(const lz77::TokenBlock& block) {
  Bytes out;
  out.reserve(max_encoded_size_byte(block));
  put_varint(out, block.sequences.size());
  for (const auto& s : block.sequences) put_u32le(out, pack_record(s));
  out.insert(out.end(), block.literals.begin(), block.literals.end());
  return out;
}

const Bytes& encode_block_byte(const lz77::TokenBlock& block, EncodeScratch& scratch,
                               ThreadPool* lane_pool) {
  const EncodeScratch::CapSnapshot caps = scratch.capacities();
  Bytes& out = scratch.payload;
  out.clear();
  const std::size_t max_size = max_encoded_size_byte(block);
  if (out.capacity() < max_size) out.reserve(max_size);
  put_varint(out, block.sequences.size());
  const std::size_t records_begin = out.size();
  const std::size_t n = block.sequences.size();
  out.resize(records_begin + n * kByteRecordSize);

  // Fixed record width: record k's bytes are at a known offset, so any
  // sub-range packs independently (the encode mirror of the decoder's
  // lane-parallel unpack).
  const auto pack_range = [&](std::size_t begin, std::size_t end) {
    pack_records_into(block.sequences.data() + begin, end - begin,
                      out.data() + records_begin + begin * kByteRecordSize);
  };
  if (lane_pool != nullptr && n > 1) {
    const std::size_t grain = std::max<std::size_t>(
        512, n / (4 * lane_pool->parallelism()));
    lane_pool->parallel_for_chunked(n, grain, pack_range);
    ++scratch.stats.lane_fanouts;
  } else {
    pack_range(0, n);
  }
  out.insert(out.end(), block.literals.begin(), block.literals.end());

  ++scratch.stats.blocks;
  if (!scratch.pending_growth && caps == scratch.capacities()) {
    ++scratch.stats.buffer_reuses;
  }
  scratch.pending_growth = false;
  return out;
}

lz77::TokenBlock decode_block_byte(ByteSpan payload) {
  DecodeScratch scratch;
  decode_block_byte(payload, scratch);
  return std::move(scratch.block);
}

const lz77::TokenBlock& decode_block_byte(ByteSpan payload, DecodeScratch& scratch,
                                          ThreadPool* lane_pool) {
  std::size_t pos = 0;
  const std::uint64_t n_sequences = get_varint(payload, pos);
  check(n_sequences > 0, "byte codec: empty block");
  check(n_sequences <= (payload.size() - pos) / kByteRecordSize,
        "byte codec: truncated record array");
  const std::size_t records_begin = pos;
  const std::size_t records_end =
      records_begin + static_cast<std::size_t>(n_sequences) * kByteRecordSize;
  const std::size_t lit_region = payload.size() - records_end;

  const bool buffers_fit = scratch.block.sequences.capacity() >= n_sequences &&
                           scratch.block.literals.capacity() >= lit_region;

  lz77::TokenBlock& block = scratch.block;
  block.sequences.resize(static_cast<std::size_t>(n_sequences));

  // Unpack the fixed-width records. Each lane accumulates its own output
  // and literal byte counts; the per-record fields are bit-bounded
  // (literal_len <= 8191, match_len <= 65), so a lane's u64 sums cannot
  // wrap for any record count a real payload can hold.
  const auto unpack_range = [&](std::size_t begin, std::size_t end,
                                std::uint64_t& lane_total, std::uint64_t& lane_lits) {
    std::size_t rp = records_begin + begin * kByteRecordSize;
    std::uint64_t total = 0, lits = 0;
    for (std::size_t k = begin; k < end; ++k) {
      std::uint32_t word;
      std::memcpy(&word, payload.data() + rp, 4);  // little-endian hosts
      rp += kByteRecordSize;
      const lz77::Sequence s = unpack_record(word);
      total += s.literal_len + s.match_len;
      lits += s.literal_len;
      // Per-record accumulation checks (necessary conditions that hold
      // for every lane): fail at the first lying record instead of after
      // the whole array has been staged. Never taken for valid payloads,
      // so the branches cost nothing on the hot path.
      check(lits <= lit_region, "byte codec: literal region size mismatch");
      check(total <= 0xFFFFFFFFull, "byte codec: block too large");
      block.sequences[k] = s;
    }
    lane_total = total;
    lane_lits = lits;
  };

  std::uint64_t total = 0;
  std::uint64_t literal_total = 0;
  if (lane_pool != nullptr && n_sequences > 1) {
    std::atomic<std::uint64_t> pool_total{0}, pool_lits{0};
    const std::size_t grain = std::max<std::size_t>(
        512, static_cast<std::size_t>(n_sequences) / (4 * lane_pool->parallelism()));
    lane_pool->parallel_for_chunked(
        static_cast<std::size_t>(n_sequences), grain,
        [&](std::size_t begin, std::size_t end) {
          std::uint64_t lane_total = 0, lane_lits = 0;
          unpack_range(begin, end, lane_total, lane_lits);
          pool_total.fetch_add(lane_total, std::memory_order_relaxed);
          pool_lits.fetch_add(lane_lits, std::memory_order_relaxed);
        });
    ++scratch.stats.lane_fanouts;
    total = pool_total.load();
    literal_total = pool_lits.load();
  } else {
    unpack_range(0, static_cast<std::size_t>(n_sequences), total, literal_total);
  }

  // Strict parse: every accumulated claim is validated before a single
  // literal byte is copied, so a lying record array cannot make the
  // decoder stage a bogus multi-gigabyte block.
  check(literal_total == lit_region, "byte codec: literal region size mismatch");
  check(total <= 0xFFFFFFFFull, "byte codec: block too large");
  block.literals.resize(lit_region);
  if (lit_region != 0) {
    std::memcpy(block.literals.data(), payload.data() + records_end, lit_region);
  }
  block.uncompressed_size = static_cast<std::uint32_t>(total);

  ++scratch.stats.blocks;
  if (buffers_fit) ++scratch.stats.buffer_reuses;
  return block;
}

}  // namespace gompresso::core
