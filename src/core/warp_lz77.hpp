// Warp-parallel LZ77 back-reference resolution (paper §III-B.2 and §IV).
//
// Each data block is assigned to a single warp; the warp walks the
// block's sequences in groups of 32, one sequence per lane (Fig. 4). For
// every group the lanes:
//   (a) read their sequences and locate their literal strings via an
//       intra-warp exclusive prefix sum over literal lengths,
//   (b) locate their output positions via a second exclusive prefix sum
//       over (literal length + match length) and copy the literal strings,
//   (c) resolve their back-references using the configured strategy:
//       SC   — sequential, lane order (the paper's baseline),
//       MRR  — Fig. 5's iterative ballot/HWM algorithm,
//       DE   — single round (valid only for DE-compressed streams).
//
// Resolvability rule (MRR): a back-reference with source interval
// [src, src+len) and own output start `own` is safe to copy forward when
//     src+len <= HWM        (source fully below the gap-free high-water mark)
//  or src >= own            (pure self-reference: reads only bytes this
//                            lane itself wrote or is writing)
//  or own <= HWM            (everything before this lane is gap-free, so
//                            reads below `own` are written and reads at or
//                            above `own` are the lane's own forward copy).
// The third clause covers matches that begin below the lane's output but
// overlap its own region (dist < len with dist > literal_len); Fig. 5
// elides it, but any LZ77 stream with RLE-style runs requires it.
#pragma once

#include <span>

#include "core/options.hpp"
#include "lz77/sequence.hpp"
#include "simt/warp.hpp"
#include "util/common.hpp"

namespace gompresso::core {

/// Resolves all sequences of one block into `out`.
///
/// `sequences` and `literals` describe the block's token stream; `out`
/// must be pre-sized to exactly the block's uncompressed size. `metrics`
/// (optional) accumulates warp rounds / bytes-per-round for Fig. 9b/9c.
///
/// Throws gompresso::Error on malformed sequences (bad distance, output
/// overrun) and on a DE-strategy stream that is not dependency-free.
void resolve_block(std::span<const lz77::Sequence> sequences,
                   const std::uint8_t* literals, std::size_t literal_count,
                   MutableByteSpan out, Strategy strategy,
                   simt::WarpMetrics* metrics = nullptr);

}  // namespace gompresso::core
