#include "ans/tans.hpp"

#include <algorithm>
#include <numeric>

#include "bitstream/bit_reader.hpp"
#include "bitstream/bit_writer.hpp"
#include "util/varint.hpp"

namespace gompresso::ans {
namespace {

constexpr std::size_t kAlphabet = kAlphabetSize;

// Payload tags for the self-contained convenience format.
constexpr std::uint8_t kTagEmpty = 0;
constexpr std::uint8_t kTagRle = 1;   // single distinct symbol
constexpr std::uint8_t kTagCoded = 2;

/// FSE-style spread: distributes symbol occurrences over the state table
/// with the co-prime step (5/8 table + 3). Fills the caller's buffer
/// (first 2^table_log entries) so table rebuilds stay allocation-free.
void spread_symbols_into(const std::vector<std::uint32_t>& norm, unsigned table_log,
                         std::uint8_t* spread) {
  const std::size_t table_size = std::size_t{1} << table_log;
  const std::size_t step = (table_size >> 1) + (table_size >> 3) + 3;
  const std::size_t mask = table_size - 1;
  std::size_t pos = 0;
  for (std::size_t s = 0; s < kAlphabet; ++s) {
    for (std::uint32_t i = 0; i < norm[s]; ++i) {
      spread[pos] = static_cast<std::uint8_t>(s);
      pos = (pos + step) & mask;
    }
  }
  check(pos == 0, "tans: spread did not cover table");  // step co-prime with size
}

}  // namespace

namespace {

/// The normalization core, writing into caller storage. `norm` must hold
/// `count` zero-initialised entries; `remainders` must hold `count`
/// slots. Results are identical to the original heap-returning wrapper.
void normalize_frequencies_core(const std::uint64_t* freqs, std::size_t count,
                                unsigned table_log, std::uint32_t* norm,
                                std::pair<double, std::uint32_t>* remainders) {
  const std::uint64_t total = std::accumulate(freqs, freqs + count, std::uint64_t{0});
  if (total == 0) return;
  const std::uint64_t target = 1ull << table_log;

  // First pass: proportional share, at least 1 for present symbols.
  std::uint64_t assigned = 0;
  std::size_t n_rem = 0;
  for (std::size_t s = 0; s < count; ++s) {
    if (freqs[s] == 0) continue;
    const double exact = static_cast<double>(freqs[s]) * static_cast<double>(target) /
                         static_cast<double>(total);
    std::uint32_t n = static_cast<std::uint32_t>(exact);
    if (n == 0) n = 1;
    norm[s] = n;
    assigned += n;
    remainders[n_rem++] = {exact - static_cast<double>(n),
                           static_cast<std::uint32_t>(s)};
  }
  // Distribute the remainder to the symbols with the largest fractional
  // parts (or shave from the largest counts when over-assigned).
  std::sort(remainders, remainders + n_rem,
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::size_t i = 0;
  while (assigned < target) {
    norm[remainders[i % n_rem].second] += 1;
    ++assigned;
    ++i;
  }
  while (assigned > target) {
    // Shave the largest normalized count that stays >= 1.
    std::size_t best = count;
    for (std::size_t s = 0; s < count; ++s) {
      if (norm[s] > 1 && (best == count || norm[s] > norm[best])) best = s;
    }
    check(best != count, "tans: cannot normalize (too many symbols for table)");
    norm[best] -= 1;
    --assigned;
  }
}

}  // namespace

std::vector<std::uint32_t> normalize_frequencies(const std::vector<std::uint64_t>& freqs,
                                                 unsigned table_log) {
  std::vector<std::uint32_t> norm(freqs.size(), 0);
  std::vector<std::pair<double, std::uint32_t>> remainders(freqs.size());
  normalize_frequencies_core(freqs.data(), freqs.size(), table_log, norm.data(),
                             remainders.data());
  return norm;
}

// ---------------------------------------------------------------------------
// Model

Model Model::from_frequencies(const std::vector<std::uint64_t>& freqs,
                              unsigned table_log) {
  check(table_log >= kMinTableLog && table_log <= kMaxTableLog,
        "tans: table_log out of [9, 14]");
  check(freqs.size() <= kAlphabet, "tans: alphabet too large");
  Model m;
  m.table_log_ = table_log;
  std::vector<std::uint64_t> padded(freqs);
  padded.resize(kAlphabet, 0);
  m.norm_ = normalize_frequencies(padded, table_log);
  check(std::accumulate(m.norm_.begin(), m.norm_.end(), std::uint64_t{0}) ==
            (1ull << table_log),
        "tans: empty model");
  m.build_tables(/*build_encoder=*/true);
  return m;
}

void Model::build_tables(bool build_encoder) {
  const std::size_t table_size = std::size_t{1} << table_log_;
  // Stack scratch (16 KiB + 1 KiB worst case) keeps rebuilds heap-free.
  std::uint8_t spread[std::size_t{1} << kMaxTableLog];
  spread_symbols_into(norm_, table_log_, spread);
  std::uint32_t counter[kAlphabet];
  for (std::size_t s = 0; s < kAlphabet; ++s) counter[s] = norm_[s];

  if (build_encoder) {
    enc_offset_.assign(kAlphabet + 1, 0);
    for (std::size_t s = 0; s < kAlphabet; ++s) {
      enc_offset_[s + 1] = enc_offset_[s] + norm_[s];
    }
    enc_next_state_.assign(table_size, 0);
  } else {
    enc_offset_.clear();
    enc_next_state_.clear();
  }
  dec_table_.assign(table_size, {});

  for (std::size_t u = 0; u < table_size; ++u) {
    const std::uint8_t s = spread[u];
    const std::uint32_t x = counter[s]++;  // in [norm[s], 2*norm[s])
    if (build_encoder) {
      enc_next_state_[enc_offset_[s] + (x - norm_[s])] =
          static_cast<std::uint32_t>(u + table_size);
    }
    const unsigned nb = table_log_ - floor_log2(x);
    dec_table_[u].symbol = s;
    dec_table_[u].nb_bits = static_cast<std::uint8_t>(nb);
    dec_table_[u].new_state = static_cast<std::uint16_t>((x << nb) - table_size);
  }
}

void Model::reserve_decode(unsigned table_log) {
  check(table_log >= kMinTableLog && table_log <= kMaxTableLog,
        "tans: table_log out of [9, 14]");
  norm_.reserve(kAlphabet);
  dec_table_.reserve(std::size_t{1} << table_log);
}

bool Model::build_encode_into(const std::vector<std::uint64_t>& freqs,
                              unsigned table_log) {
  check(table_log >= kMinTableLog && table_log <= kMaxTableLog,
        "tans: table_log out of [9, 14]");
  check(freqs.size() <= kAlphabet, "tans: alphabet too large");
  const std::size_t table_size = std::size_t{1} << table_log;
  const bool warm = norm_.capacity() >= kAlphabet &&
                    enc_offset_.capacity() >= kAlphabet + 1 &&
                    enc_next_state_.capacity() >= table_size &&
                    dec_table_.capacity() >= table_size;
  table_log_ = table_log;
  // Stack staging (padded counts + remainder slots) keeps the rebuild
  // heap-free; the normalization is identical to from_frequencies.
  std::uint64_t padded[kAlphabet] = {};
  std::copy(freqs.begin(), freqs.end(), padded);
  std::pair<double, std::uint32_t> remainders[kAlphabet];
  norm_.assign(kAlphabet, 0);
  normalize_frequencies_core(padded, kAlphabet, table_log, norm_.data(), remainders);
  check(std::accumulate(norm_.begin(), norm_.end(), std::uint64_t{0}) ==
            (1ull << table_log),
        "tans: empty model");
  build_tables(/*build_encoder=*/true);
  return warm;
}

void Model::reserve_encode(unsigned table_log) {
  check(table_log >= kMinTableLog && table_log <= kMaxTableLog,
        "tans: table_log out of [9, 14]");
  norm_.reserve(kAlphabet);
  enc_offset_.reserve(kAlphabet + 1);
  enc_next_state_.reserve(std::size_t{1} << table_log);
  dec_table_.reserve(std::size_t{1} << table_log);
}

void Model::serialize(Bytes& out) const {
  check(valid(), "tans: serializing an empty model");
  std::uint32_t present = 0;
  for (std::size_t s = 0; s < kAlphabet; ++s) present += norm_[s] != 0;
  put_varint(out, present);
  std::size_t prev = 0;
  for (std::size_t s = 0; s < kAlphabet; ++s) {
    if (norm_[s] == 0) continue;
    put_varint(out, s - prev);
    put_varint(out, norm_[s]);
    prev = s;
  }
}

void Model::parse_counts(ByteSpan data, std::size_t& pos) {
  // The caller supplies the table_log out of band in the convenience
  // format; the shared-model format stores it adjacent. To keep one code
  // path, deserialization reads counts and infers the log from their sum.
  norm_.assign(kAlphabet, 0);
  const std::uint64_t present = get_varint(data, pos);
  check(present >= 1 && present <= kAlphabet, "tans: bad symbol count");
  std::size_t sym = 0;
  std::uint64_t total = 0;
  for (std::uint64_t i = 0; i < present; ++i) {
    sym += static_cast<std::size_t>(get_varint(data, pos));
    check(sym < kAlphabet, "tans: symbol out of range");
    const std::uint64_t c = get_varint(data, pos);
    check(c >= 1 && c <= (1u << kMaxTableLog), "tans: bad normalized count");
    norm_[sym] = static_cast<std::uint32_t>(c);
    total += c;
  }
  check(is_pow2(total) && total >= (1u << kMinTableLog) && total <= (1u << kMaxTableLog),
        "tans: normalized counts do not sum to a table size");
  table_log_ = floor_log2(total);
}

Model Model::deserialize(ByteSpan data, std::size_t& pos) {
  Model m;
  m.parse_counts(data, pos);
  m.build_tables(/*build_encoder=*/true);
  return m;
}

bool Model::deserialize_decode_into(ByteSpan data, std::size_t& pos) {
  const bool norm_warm = norm_.capacity() >= kAlphabet;
  parse_counts(data, pos);
  const bool tables_warm = dec_table_.capacity() >= (std::size_t{1} << table_log_);
  build_tables(/*build_encoder=*/false);
  return norm_warm && tables_warm;
}

Bytes Model::encode_stream(ByteSpan data) const {
  check(valid(), "tans: encoding with an empty model");
  check(!enc_next_state_.empty(), "tans: model lacks encoder tables (decode-only)");
  const std::size_t table_size = std::size_t{1} << table_log_;

  // Encode in reverse; bits are stacked and replayed forward so the
  // decoder can read the stream front to back.
  std::vector<std::pair<std::uint32_t, std::uint8_t>> bit_stack;
  bit_stack.reserve(data.size());
  std::uint32_t state = static_cast<std::uint32_t>(table_size);
  for (std::size_t i = data.size(); i-- > 0;) {
    const std::uint8_t s = data[i];
    const std::uint32_t f = norm_[s];
    check(f != 0, "tans: symbol absent from shared model");
    unsigned nb = 0;
    while ((state >> nb) >= 2 * f) ++nb;
    bit_stack.emplace_back(state & ((1u << nb) - 1), static_cast<std::uint8_t>(nb));
    state = enc_next_state_[enc_offset_[s] + (state >> nb) - f];
  }

  Bytes out;
  put_varint(out, state);
  BitWriter bits;
  for (std::size_t i = bit_stack.size(); i-- > 0;) {
    bits.write(bit_stack[i].first, bit_stack[i].second);
  }
  const Bytes stream = bits.finish();
  put_varint(out, stream.size());
  out.insert(out.end(), stream.begin(), stream.end());
  return out;
}

void Model::encode_stream_into(ByteSpan data, Bytes& out,
                               EncodeStreamWorkspace& ws) const {
  check(valid(), "tans: encoding with an empty model");
  check(!enc_next_state_.empty(), "tans: model lacks encoder tables (decode-only)");
  const std::size_t table_size = std::size_t{1} << table_log_;

  // Encode in reverse; bits are stacked and replayed forward so the
  // decoder can read the stream front to back. Identical to
  // encode_stream, staging through the reusable workspace.
  auto& bit_stack = ws.bit_stack;
  bit_stack.clear();
  std::uint32_t state = static_cast<std::uint32_t>(table_size);
  for (std::size_t i = data.size(); i-- > 0;) {
    const std::uint8_t s = data[i];
    const std::uint32_t f = norm_[s];
    check(f != 0, "tans: symbol absent from shared model");
    unsigned nb = 0;
    while ((state >> nb) >= 2 * f) ++nb;
    bit_stack.emplace_back(state & ((1u << nb) - 1), static_cast<std::uint8_t>(nb));
    state = enc_next_state_[enc_offset_[s] + (state >> nb) - f];
  }

  put_varint(out, state);
  auto& bits = ws.bits;
  for (std::size_t i = bit_stack.size(); i-- > 0;) {
    bits.write(bit_stack[i].first, bit_stack[i].second);
  }
  put_varint(out, (bits.bit_count() + 7) / 8);
  bits.flush_into(out);
}

Bytes Model::decode_stream(ByteSpan stream, std::size_t count) const {
  Bytes out(count);
  decode_stream_into(stream, out);
  return out;
}

std::uint32_t Model::parse_stream_header(ByteSpan stream, ByteSpan& bits) const {
  check(valid(), "tans: decoding with an empty model");
  const std::size_t table_size = std::size_t{1} << table_log_;
  std::size_t pos = 0;
  const std::uint64_t start_state = get_varint(stream, pos);
  check(start_state >= table_size && start_state < 2 * table_size,
        "tans: bad stream start state");
  // Validated against the remainder, not via `pos + stream_bytes`: a
  // crafted size near 2^64 would wrap the sum and pass.
  const std::uint64_t stream_bytes = get_varint(stream, pos);
  check(stream_bytes <= stream.size() - pos, "tans: truncated stream");
  bits = stream.subspan(pos, static_cast<std::size_t>(stream_bytes));
  return static_cast<std::uint32_t>(start_state - table_size);
}

// For any table the build invariant gives new_state <= table_size -
// 2^nb_bits, so new_state + read(nb_bits) < table_size always: the state
// cannot escape the table even on corrupt bits (those are caught by the
// overflow latch and the callers' symbol-count checks), and the decode
// loops below need no per-symbol bounds check.

void Model::decode_stream_into(ByteSpan stream, MutableByteSpan out) const {
  ByteSpan payload;
  std::uint32_t state = parse_stream_header(stream, payload);
  BitReader bits(payload);
  const DecodeEntry* const table = dec_table_.data();
  std::uint8_t* o = out.data();
  std::size_t n = out.size();
  // One refill covers four symbols: 4 * kMaxTableLog = 56 bits, exactly
  // the BitReader guarantee.
  while (n >= 4) {
    bits.refill();
    for (int k = 0; k < 4; ++k) {
      const DecodeEntry e = table[state];
      *o++ = e.symbol;
      state = e.new_state + bits.read_unchecked(e.nb_bits);
    }
    n -= 4;
  }
  bits.refill();
  while (n-- > 0) {
    const DecodeEntry e = table[state];
    *o++ = e.symbol;
    state = e.new_state + bits.read_unchecked(e.nb_bits);
  }
  check(!bits.overflowed(), "tans: bitstream underrun");
}

void Model::decode_streams4(const Model& model, const ByteSpan* streams,
                            std::uint8_t* const* outs, const std::size_t* counts,
                            int n) {
  check(n >= 0 && n <= 4, "tans: bad stream batch size");
  if (n < 4) {
    // Remainder batches (at most three per lane chunk) take the
    // single-chain kernel; the interleave only pays at full width.
    for (int i = 0; i < n; ++i) {
      model.decode_stream_into(streams[i], MutableByteSpan(outs[i], counts[i]));
    }
    return;
  }

  ByteSpan payloads[4];
  std::uint32_t st[4];
  for (int i = 0; i < 4; ++i) st[i] = model.parse_stream_header(streams[i], payloads[i]);
  BitReader br[4] = {BitReader(payloads[0]), BitReader(payloads[1]),
                     BitReader(payloads[2]), BitReader(payloads[3])};
  const DecodeEntry* const table = model.dec_table_.data();
  std::uint8_t* o[4] = {outs[0], outs[1], outs[2], outs[3]};
  std::size_t rem[4] = {counts[0], counts[1], counts[2], counts[3]};

  // Interleaved main loop: four independent state chains, four symbols
  // each per refill (4 * kMaxTableLog = 56 bits, the BitReader
  // guarantee). Runs for min(rem)/4 rounds without any per-round
  // bookkeeping beyond the counters.
  std::size_t rounds = std::min(std::min(rem[0], rem[1]), std::min(rem[2], rem[3])) / 4;
  for (int i = 0; i < 4; ++i) rem[i] -= rounds * 4;
  while (rounds-- > 0) {
    br[0].refill();
    br[1].refill();
    br[2].refill();
    br[3].refill();
    for (int k = 0; k < 4; ++k) {
      const DecodeEntry e0 = table[st[0]];
      const DecodeEntry e1 = table[st[1]];
      const DecodeEntry e2 = table[st[2]];
      const DecodeEntry e3 = table[st[3]];
      *o[0]++ = e0.symbol;
      *o[1]++ = e1.symbol;
      *o[2]++ = e2.symbol;
      *o[3]++ = e3.symbol;
      st[0] = e0.new_state + br[0].read_unchecked(e0.nb_bits);
      st[1] = e1.new_state + br[1].read_unchecked(e1.nb_bits);
      st[2] = e2.new_state + br[2].read_unchecked(e2.nb_bits);
      st[3] = e3.new_state + br[3].read_unchecked(e3.nb_bits);
    }
  }

  // Tails: with near-uniform lane counts (equal tokens_per_subblock)
  // these are under four symbols each; skewed literal counts just fall
  // back to the single-chain rate for the imbalance.
  for (int i = 0; i < 4; ++i) {
    std::size_t left = rem[i];
    while (left > 0) {
      br[i].refill();
      const std::size_t run = left < 4 ? left : 4;
      for (std::size_t k = 0; k < run; ++k) {
        const DecodeEntry e = table[st[i]];
        *o[i]++ = e.symbol;
        st[i] = e.new_state + br[i].read_unchecked(e.nb_bits);
      }
      left -= run;
    }
    check(!br[i].overflowed(), "tans: bitstream underrun");
  }
}

// ---------------------------------------------------------------------------
// Self-contained convenience format

Bytes encode(ByteSpan data, unsigned table_log) {
  check(table_log >= kMinTableLog && table_log <= kMaxTableLog,
        "tans: table_log out of [9, 14]");
  Bytes out;
  if (data.empty()) {
    out.push_back(kTagEmpty);
    return out;
  }

  std::vector<std::uint64_t> freqs(kAlphabet, 0);
  for (const auto b : data) ++freqs[b];
  std::size_t distinct = 0;
  std::size_t the_symbol = 0;
  for (std::size_t s = 0; s < kAlphabet; ++s) {
    if (freqs[s] != 0) {
      ++distinct;
      the_symbol = s;
    }
  }
  if (distinct == 1) {
    out.push_back(kTagRle);
    out.push_back(static_cast<std::uint8_t>(the_symbol));
    put_varint(out, data.size());
    return out;
  }

  const Model model = Model::from_frequencies(freqs, table_log);
  out.push_back(kTagCoded);
  put_varint(out, data.size());
  model.serialize(out);
  const Bytes stream = model.encode_stream(data);
  out.insert(out.end(), stream.begin(), stream.end());
  return out;
}

Bytes decode(ByteSpan payload) {
  check(!payload.empty(), "tans: empty payload");
  std::size_t pos = 0;
  const std::uint8_t tag = payload[pos++];
  if (tag == kTagEmpty) return {};
  if (tag == kTagRle) {
    check(pos < payload.size(), "tans: truncated RLE payload");
    const std::uint8_t symbol = payload[pos++];
    const std::uint64_t n = get_varint(payload, pos);
    check(n <= (1ull << 32), "tans: implausible RLE length");
    return Bytes(static_cast<std::size_t>(n), symbol);
  }
  check(tag == kTagCoded, "tans: unknown payload tag");
  const std::uint64_t n = get_varint(payload, pos);
  check(n <= (1ull << 32), "tans: implausible size");
  const Model model = Model::deserialize(payload, pos);
  return model.decode_stream(payload.subspan(pos), static_cast<std::size_t>(n));
}

}  // namespace gompresso::ans
