// Tabled Asymmetric Numeral System (tANS) entropy coder.
//
// The paper's Fig. 13/14 comparison includes Zstd, whose entropy stage is
// FSE — a tANS coder — "a different coding algorithm on top of
// LZ-compression that is typically faster than Huffman decoding" (§V-D).
// This module provides a from-scratch tANS implementation over byte
// alphabets; the zstd_like baseline uses it for its literal stream.
//
// Encoding walks the input in reverse, maintaining a state in
// [table_size, 2*table_size); decoding walks the emitted bits forward
// with a single table lookup per symbol, mirroring the branch-free decode
// property that makes tANS fast.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "bitstream/bit_writer.hpp"
#include "util/common.hpp"

namespace gompresso::ans {

/// Default table log (2^11 states, the FSE default neighbourhood).
inline constexpr unsigned kDefaultTableLog = 11;

/// Valid table-log range for any model (decode tables up to 2^14 states).
inline constexpr unsigned kMinTableLog = 9;
inline constexpr unsigned kMaxTableLog = 14;

/// Byte alphabet size shared by every model.
inline constexpr std::size_t kAlphabetSize = 256;

/// Encodes `data` (byte alphabet) into a self-contained payload embedding
/// the normalized frequency table and the original size.
Bytes encode(ByteSpan data, unsigned table_log = kDefaultTableLog);

/// Decodes a payload produced by encode(). Throws gompresso::Error on
/// corrupt input.
Bytes decode(ByteSpan payload);

/// Normalizes `freqs` so the non-zero entries sum to 2^table_log, keeping
/// every present symbol >= 1 (largest-remainder method). Exposed for
/// testing. Returns an all-zero vector when `total` is 0.
std::vector<std::uint32_t> normalize_frequencies(const std::vector<std::uint64_t>& freqs,
                                                 unsigned table_log);

/// Reusable storage for Model::encode_stream_into: the reversed-bit stack
/// and the stream bit writer, both reused across streams so steady-state
/// encoding performs no heap allocation. reserve() pre-sizes for streams
/// of up to `max_symbols` input bytes.
struct EncodeStreamWorkspace {
  std::vector<std::pair<std::uint32_t, std::uint8_t>> bit_stack;
  BitWriter bits;
  void reserve(std::size_t max_symbols) {
    bit_stack.reserve(max_symbols);
    bits.reserve(max_symbols * 2 + 16);  // <= ~table_log bits per symbol
  }
};

/// A shared tANS model: one normalized distribution serving many
/// independently decodable streams. This mirrors Gompresso's shared-table
/// design — "All sub-blocks of a given data block decode their bitstreams
/// using look-up tables created from the same two Huffman trees for that
/// block" (§III-B.1) — with tANS state tables in place of Huffman tables.
/// Used by the Gompresso/Tans codec (core/tans_codec).
class Model {
 public:
  Model() = default;

  /// Builds a model from raw symbol frequencies. At least one symbol must
  /// be present.
  static Model from_frequencies(const std::vector<std::uint64_t>& freqs,
                                unsigned table_log = kDefaultTableLog);

  /// Serialises the normalized counts (gap-coded varints).
  void serialize(Bytes& out) const;

  /// Reads a model back; `pos` advances past it.
  static Model deserialize(ByteSpan data, std::size_t& pos);

  /// In-place variant of deserialize() for the decode hot path: rebuilds
  /// this model from the serialized counts, reusing the existing table
  /// storage (allocation-free once the buffers are warm — see
  /// reserve_decode). Only the decode table is built; calling
  /// encode_stream on a model read this way throws. Returns true when no
  /// internal buffer had to grow (the steady-state reuse signal the
  /// scratch counters aggregate).
  bool deserialize_decode_into(ByteSpan data, std::size_t& pos);

  /// Pre-sizes the decode-side buffers for tables up to `table_log`, so
  /// every later deserialize_decode_into is allocation-free.
  void reserve_decode(unsigned table_log);

  /// In-place variant of from_frequencies for the encode hot path:
  /// rebuilds this model (encoder + decoder tables) reusing the existing
  /// table storage, so per-block model builds are allocation-free once
  /// the buffers are warm (see reserve_encode). Identical normalization
  /// and tables to from_frequencies. Returns true when no internal
  /// buffer had to grow (the steady-state reuse signal).
  bool build_encode_into(const std::vector<std::uint64_t>& freqs, unsigned table_log);

  /// Pre-sizes every buffer build_encode_into touches for tables up to
  /// `table_log`, so later rebuilds are allocation-free.
  void reserve_encode(unsigned table_log);

  /// Encodes one stream with this model (the stream embeds only its
  /// final state and bit payload — the model is shared externally).
  /// Every symbol of `data` must be present in the model.
  Bytes encode_stream(ByteSpan data) const;

  /// Appending, allocation-free variant of encode_stream: produces the
  /// identical stream bytes at the end of `out`, staging through `ws`.
  void encode_stream_into(ByteSpan data, Bytes& out, EncodeStreamWorkspace& ws) const;

  /// Decodes a stream of `count` symbols produced by encode_stream.
  Bytes decode_stream(ByteSpan stream, std::size_t count) const;

  /// Allocation-free span variant of decode_stream: decodes exactly
  /// out.size() symbols into `out`. This is the sub-block lane kernel —
  /// one branchless refill covers four symbols (4 * kMaxTableLog bits fit
  /// the BitReader guarantee), so the steady-state symbol cost is one
  /// table load plus one unchecked bit read.
  void decode_stream_into(ByteSpan stream, MutableByteSpan out) const;

  /// Decodes up to four independent streams of one shared model
  /// concurrently, interleaving their state chains so the out-of-order
  /// core overlaps the serial table-load latencies (the FSE multi-state
  /// trick applied across sub-block lanes instead of within one stream —
  /// the on-disk format is unchanged; this is the CPU register file
  /// playing the role of the paper's warp lanes). Equivalent to decoding
  /// stream i with decode_stream_into(streams[i], {outs[i], counts[i]}).
  static void decode_streams4(const Model& model, const ByteSpan* streams,
                              std::uint8_t* const* outs, const std::size_t* counts,
                              int n);

  unsigned table_log() const { return table_log_; }
  bool valid() const { return table_log_ != 0; }

  /// On-chip footprint of the decode table (the occupancy currency of
  /// Fig. 12's discussion).
  std::size_t decode_table_bytes() const { return (std::size_t{1} << table_log_) * 4; }

 private:
  /// Validates a stream's header (start state + payload size) and returns
  /// the table-biased initial state; `bits` receives the bit payload.
  std::uint32_t parse_stream_header(ByteSpan stream, ByteSpan& bits) const;
  /// Parses the gap-coded counts into norm_ and infers table_log_.
  void parse_counts(ByteSpan data, std::size_t& pos);
  /// (Re)builds the state tables in place; the encoder side is optional
  /// (the decode hot path never touches it).
  void build_tables(bool build_encoder);

  unsigned table_log_ = 0;
  std::vector<std::uint32_t> norm_;  // 256 entries, sums to 2^table_log

  // Encoder: next_state[offset[s] + (x - norm[s])] for x in [norm, 2norm).
  std::vector<std::uint32_t> enc_offset_;
  std::vector<std::uint32_t> enc_next_state_;
  // Decoder: per state {symbol, nb_bits, new_state}.
  struct DecodeEntry {
    std::uint8_t symbol = 0;
    std::uint8_t nb_bits = 0;
    std::uint16_t new_state = 0;
  };
  std::vector<DecodeEntry> dec_table_;
};

}  // namespace gompresso::ans
