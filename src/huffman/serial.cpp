#include "huffman/serial.hpp"

#include "util/common.hpp"

namespace gompresso::huffman {

void write_code_lengths(const std::vector<std::uint8_t>& lengths, BitWriter& writer) {
  for (const auto len : lengths) {
    check(len <= 15, "huffman serial: length exceeds nibble");
    writer.write(len, 4);
  }
}

std::vector<std::uint8_t> read_code_lengths(std::size_t count, BitReader& reader) {
  std::vector<std::uint8_t> lengths;
  read_code_lengths(count, reader, lengths);
  return lengths;
}

void read_code_lengths(std::size_t count, BitReader& reader,
                       std::vector<std::uint8_t>& out) {
  out.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = static_cast<std::uint8_t>(reader.read(4));
  }
}

}  // namespace gompresso::huffman
