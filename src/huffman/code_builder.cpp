#include "huffman/code_builder.hpp"

#include <algorithm>
#include <cstddef>

namespace gompresso::huffman {
namespace {

// One item in a package-merge level list: either a leaf (symbol >= 0) or a
// package combining two items of the next-lower denomination level.
struct Item {
  std::uint64_t weight = 0;
  std::int32_t symbol = -1;  // >= 0 for leaves
  std::int32_t left = -1;    // indices into the next level's item list
  std::int32_t right = -1;
};

}  // namespace

std::uint32_t reverse_bits(std::uint32_t code, unsigned nbits) {
  std::uint32_t r = 0;
  for (unsigned i = 0; i < nbits; ++i) {
    r = (r << 1) | (code & 1u);
    code >>= 1;
  }
  return r;
}

std::vector<std::uint8_t> build_code_lengths(const std::vector<std::uint64_t>& freqs,
                                             unsigned max_length) {
  const std::size_t alphabet = freqs.size();
  std::vector<std::uint8_t> lengths(alphabet, 0);

  // Collect and sort the active symbols by frequency (stable on symbol id
  // for determinism).
  std::vector<std::int32_t> active;
  for (std::size_t s = 0; s < alphabet; ++s) {
    if (freqs[s] != 0) active.push_back(static_cast<std::int32_t>(s));
  }
  const std::size_t n = active.size();
  if (n == 0) return lengths;
  if (n == 1) {
    lengths[static_cast<std::size_t>(active[0])] = 1;
    return lengths;
  }
  check(max_length >= 1 && (1ull << max_length) >= n,
        "huffman: max code length too small for alphabet");

  std::sort(active.begin(), active.end(), [&](std::int32_t a, std::int32_t b) {
    const auto fa = freqs[static_cast<std::size_t>(a)];
    const auto fb = freqs[static_cast<std::size_t>(b)];
    return fa != fb ? fa < fb : a < b;
  });

  // levels[l] holds the merged item list for denomination 2^-(l+1);
  // levels[max_length-1] is the smallest denomination (pure leaves),
  // levels[0] is the final list items are selected from.
  std::vector<std::vector<Item>> levels(max_length);

  std::vector<Item> leaves(n);
  for (std::size_t i = 0; i < n; ++i) {
    leaves[i].weight = freqs[static_cast<std::size_t>(active[i])];
    leaves[i].symbol = active[i];
  }

  std::vector<Item> prev;  // the level below (higher l), already finished
  for (int l = static_cast<int>(max_length) - 1; l >= 0; --l) {
    auto& cur = levels[static_cast<std::size_t>(l)];
    // Form packages by pairing adjacent items of the previous level.
    std::vector<Item> packages;
    packages.reserve(prev.size() / 2);
    for (std::size_t i = 0; i + 1 < prev.size(); i += 2) {
      Item pkg;
      pkg.weight = prev[i].weight + prev[i + 1].weight;
      pkg.left = static_cast<std::int32_t>(i);
      pkg.right = static_cast<std::int32_t>(i + 1);
      packages.push_back(pkg);
    }
    // Merge leaves and packages by weight (leaves first on ties, which
    // keeps codes deterministic).
    cur.reserve(n + packages.size());
    std::size_t li = 0, pi = 0;
    while (li < n || pi < packages.size()) {
      const bool take_leaf =
          pi >= packages.size() ||
          (li < n && leaves[li].weight <= packages[pi].weight);
      cur.push_back(take_leaf ? leaves[li++] : packages[pi++]);
    }
    prev = cur;
  }

  // Select the first 2(n-1) items of the top list and count how many
  // selected (transitively expanded) items reference each leaf symbol.
  const std::size_t select = 2 * (n - 1);
  check(levels[0].size() >= select, "huffman: package-merge underflow");

  // Explicit stack of (level, index) pairs.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> stack;
  for (std::size_t i = 0; i < select; ++i) {
    stack.emplace_back(0u, static_cast<std::uint32_t>(i));
  }
  while (!stack.empty()) {
    const auto [lvl, idx] = stack.back();
    stack.pop_back();
    const Item& item = levels[lvl][idx];
    if (item.symbol >= 0) {
      ++lengths[static_cast<std::size_t>(item.symbol)];
    } else {
      stack.emplace_back(lvl + 1, static_cast<std::uint32_t>(item.left));
      stack.emplace_back(lvl + 1, static_cast<std::uint32_t>(item.right));
    }
  }
  return lengths;
}

std::uint64_t kraft_sum(const std::vector<std::uint8_t>& lengths, unsigned max_length) {
  std::uint64_t sum = 0;
  for (const auto len : lengths) {
    if (len == 0) continue;
    check(len <= max_length, "huffman: code length exceeds limit");
    sum += 1ull << (max_length - len);
  }
  return sum;
}

std::vector<CodeEntry> assign_canonical_codes(const std::vector<std::uint8_t>& lengths) {
  unsigned max_len = 0;
  for (const auto len : lengths) max_len = std::max<unsigned>(max_len, len);
  std::vector<CodeEntry> codes(lengths.size());
  if (max_len == 0) return codes;

  check(kraft_sum(lengths, max_len) <= (1ull << max_len),
        "huffman: over-subscribed code lengths");

  // DEFLATE RFC 1951 §3.2.2 canonical assignment.
  std::vector<std::uint32_t> bl_count(max_len + 1, 0);
  for (const auto len : lengths) {
    if (len != 0) ++bl_count[len];
  }
  std::vector<std::uint32_t> next_code(max_len + 2, 0);
  std::uint32_t code = 0;
  for (unsigned len = 1; len <= max_len; ++len) {
    code = (code + bl_count[len - 1]) << 1;
    next_code[len] = code;
  }
  for (std::size_t s = 0; s < lengths.size(); ++s) {
    const unsigned len = lengths[s];
    if (len == 0) continue;
    codes[s].code = static_cast<std::uint16_t>(next_code[len]++);
    codes[s].length = static_cast<std::uint8_t>(len);
  }
  return codes;
}

}  // namespace gompresso::huffman
