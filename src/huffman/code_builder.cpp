#include "huffman/code_builder.hpp"

#include <algorithm>
#include <array>
#include <cstddef>

namespace gompresso::huffman {

using detail::PmItem;

std::uint32_t reverse_bits(std::uint32_t code, unsigned nbits) {
  std::uint32_t r = 0;
  for (unsigned i = 0; i < nbits; ++i) {
    r = (r << 1) | (code & 1u);
    code >>= 1;
  }
  return r;
}

void build_code_lengths_into(const std::vector<std::uint64_t>& freqs,
                             unsigned max_length, std::vector<std::uint8_t>& lengths,
                             CodeBuildWorkspace& ws) {
  const std::size_t alphabet = freqs.size();
  lengths.assign(alphabet, 0);

  // Collect and sort the active symbols by frequency (stable on symbol id
  // for determinism).
  ws.active.clear();
  for (std::size_t s = 0; s < alphabet; ++s) {
    if (freqs[s] != 0) ws.active.push_back(static_cast<std::int32_t>(s));
  }
  const std::size_t n = ws.active.size();
  if (n == 0) return;
  if (n == 1) {
    lengths[static_cast<std::size_t>(ws.active[0])] = 1;
    return;
  }
  check(max_length >= 1 && (1ull << max_length) >= n,
        "huffman: max code length too small for alphabet");

  std::sort(ws.active.begin(), ws.active.end(), [&](std::int32_t a, std::int32_t b) {
    const auto fa = freqs[static_cast<std::size_t>(a)];
    const auto fb = freqs[static_cast<std::size_t>(b)];
    return fa != fb ? fa < fb : a < b;
  });

  // levels[l] holds the merged item list for denomination 2^-(l+1);
  // levels[max_length-1] is the smallest denomination (pure leaves),
  // levels[0] is the final list items are selected from.
  if (ws.levels.size() < max_length) ws.levels.resize(max_length);
  auto& levels = ws.levels;

  ws.leaves.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    ws.leaves[i] = PmItem{};
    ws.leaves[i].weight = freqs[static_cast<std::size_t>(ws.active[i])];
    ws.leaves[i].symbol = ws.active[i];
  }
  const auto& leaves = ws.leaves;

  const std::vector<PmItem>* prev = nullptr;  // the level below, already finished
  for (int l = static_cast<int>(max_length) - 1; l >= 0; --l) {
    auto& cur = levels[static_cast<std::size_t>(l)];
    cur.clear();
    // Form packages by pairing adjacent items of the previous level.
    auto& packages = ws.packages;
    packages.clear();
    const std::size_t prev_size = prev ? prev->size() : 0;
    for (std::size_t i = 0; i + 1 < prev_size; i += 2) {
      PmItem pkg;
      pkg.weight = (*prev)[i].weight + (*prev)[i + 1].weight;
      pkg.left = static_cast<std::int32_t>(i);
      pkg.right = static_cast<std::int32_t>(i + 1);
      packages.push_back(pkg);
    }
    // Merge leaves and packages by weight (leaves first on ties, which
    // keeps codes deterministic).
    cur.reserve(n + packages.size());
    std::size_t li = 0, pi = 0;
    while (li < n || pi < packages.size()) {
      const bool take_leaf =
          pi >= packages.size() ||
          (li < n && leaves[li].weight <= packages[pi].weight);
      cur.push_back(take_leaf ? leaves[li++] : packages[pi++]);
    }
    prev = &cur;
  }

  // Select the first 2(n-1) items of the top list and count how many
  // selected (transitively expanded) items reference each leaf symbol.
  const std::size_t select = 2 * (n - 1);
  check(levels[0].size() >= select, "huffman: package-merge underflow");

  // Explicit stack of (level, index) pairs.
  auto& stack = ws.stack;
  stack.clear();
  for (std::size_t i = 0; i < select; ++i) {
    stack.emplace_back(0u, static_cast<std::uint32_t>(i));
  }
  while (!stack.empty()) {
    const auto [lvl, idx] = stack.back();
    stack.pop_back();
    const PmItem& item = levels[lvl][idx];
    if (item.symbol >= 0) {
      ++lengths[static_cast<std::size_t>(item.symbol)];
    } else {
      stack.emplace_back(lvl + 1, static_cast<std::uint32_t>(item.left));
      stack.emplace_back(lvl + 1, static_cast<std::uint32_t>(item.right));
    }
  }
}

std::vector<std::uint8_t> build_code_lengths(const std::vector<std::uint64_t>& freqs,
                                             unsigned max_length) {
  std::vector<std::uint8_t> lengths;
  CodeBuildWorkspace ws;
  build_code_lengths_into(freqs, max_length, lengths, ws);
  return lengths;
}

std::uint64_t kraft_sum(const std::vector<std::uint8_t>& lengths, unsigned max_length) {
  std::uint64_t sum = 0;
  for (const auto len : lengths) {
    if (len == 0) continue;
    check(len <= max_length, "huffman: code length exceeds limit");
    sum += 1ull << (max_length - len);
  }
  return sum;
}

void assign_canonical_codes_into(const std::vector<std::uint8_t>& lengths,
                                 std::vector<CodeEntry>& codes) {
  unsigned max_len = 0;
  for (const auto len : lengths) max_len = std::max<unsigned>(max_len, len);
  codes.assign(lengths.size(), CodeEntry{});
  if (max_len == 0) return;

  check(kraft_sum(lengths, max_len) <= (1ull << max_len),
        "huffman: over-subscribed code lengths");

  // DEFLATE RFC 1951 §3.2.2 canonical assignment. Lengths are uint8, so
  // fixed stack arrays cover every possible max_len without a heap trip.
  std::array<std::uint32_t, 256> bl_count{};
  std::array<std::uint32_t, 257> next_code{};
  for (const auto len : lengths) {
    if (len != 0) ++bl_count[len];
  }
  std::uint32_t code = 0;
  for (unsigned len = 1; len <= max_len; ++len) {
    code = (code + bl_count[len - 1]) << 1;
    next_code[len] = code;
  }
  for (std::size_t s = 0; s < lengths.size(); ++s) {
    const unsigned len = lengths[s];
    if (len == 0) continue;
    codes[s].code = static_cast<std::uint16_t>(next_code[len]++);
    codes[s].length = static_cast<std::uint8_t>(len);
  }
}

std::vector<CodeEntry> assign_canonical_codes(const std::vector<std::uint8_t>& lengths) {
  std::vector<CodeEntry> codes;
  assign_canonical_codes_into(lengths, codes);
  return codes;
}

}  // namespace gompresso::huffman
