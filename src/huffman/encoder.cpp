#include "huffman/encoder.hpp"

namespace gompresso::huffman {

Encoder::Encoder(const std::vector<CodeEntry>& codes) : entries_(codes.size()) {
  for (std::size_t s = 0; s < codes.size(); ++s) {
    entries_[s].length = codes[s].length;
    entries_[s].bits = reverse_bits(codes[s].code, codes[s].length);
  }
}

std::uint64_t Encoder::cost_bits(const std::vector<std::uint64_t>& freqs) const {
  std::uint64_t bits = 0;
  for (std::size_t s = 0; s < freqs.size() && s < entries_.size(); ++s) {
    bits += freqs[s] * entries_[s].length;
  }
  return bits;
}

}  // namespace gompresso::huffman
