#include "huffman/decoder.hpp"

namespace gompresso::huffman {

Decoder::Decoder(const std::vector<std::uint8_t>& lengths, unsigned table_bits)
    : table_(std::size_t{1} << table_bits), table_bits_(table_bits) {
  check(table_bits >= 1 && table_bits <= 15, "huffman: bad table_bits");
  const auto codes = assign_canonical_codes(lengths);
  for (std::size_t s = 0; s < codes.size(); ++s) {
    const unsigned len = codes[s].length;
    if (len == 0) continue;
    check(len <= table_bits, "huffman: code longer than decode table");
    // All table indices whose low `len` bits equal the reversed code map
    // to this symbol.
    const std::uint32_t base = reverse_bits(codes[s].code, len);
    const std::uint32_t step = 1u << len;
    for (std::uint32_t i = base; i < table_.size(); i += step) {
      table_[i].symbol = static_cast<std::uint16_t>(s);
      table_[i].length = static_cast<std::uint8_t>(len);
    }
  }
}

}  // namespace gompresso::huffman
