#include "huffman/decoder.hpp"

namespace gompresso::huffman {

Decoder::Decoder(const std::vector<std::uint8_t>& lengths, unsigned table_bits)
    : table_bits_(table_bits) {
  build_packed_table(lengths, table_bits, table_,
                     [](std::uint16_t symbol, unsigned len) {
                       return pack_entry(symbol, len);
                     });
}

}  // namespace gompresso::huffman
