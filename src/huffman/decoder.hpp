// Single-lookup Huffman decoder.
//
// "We can retrieve the original token symbol with a single lookup in each
// table, which is much faster than searching through the (more compact)
// Huffman trees, which would introduce branches and hence divergence of
// the threads' execution paths." (paper §III-B.1)
//
// The table has 2^table_bits entries; entry i gives the symbol whose
// (LSB-first) code is a prefix of the bit pattern i, plus the code length
// to consume. table_bits is the maximum codeword length CWL (10 in the
// paper, §V-C).
//
// Each entry is packed into a single uint32_t (symbol in the low 16 bits,
// code length in bits 16..23) so a decode is one 32-bit load — half the
// bandwidth of the previous {uint16, uint8} struct and the exact shape a
// GPU would keep in shared memory. Entry 0 is never a valid packed value
// (a real entry always has length >= 1), so zero marks the table holes of
// an incomplete code.
#pragma once

#include <cstdint>
#include <vector>

#include "bitstream/bit_reader.hpp"
#include "huffman/code_builder.hpp"

namespace gompresso::huffman {

/// Table-driven decoder for canonical codes with lengths <= table_bits.
class Decoder {
 public:
  static constexpr std::uint16_t kInvalidSymbol = 0xFFFF;

  /// Packed entry accessors (shared with the fused decode tables).
  static constexpr unsigned kLengthShift = 16;
  static constexpr std::uint32_t pack_entry(std::uint16_t symbol, unsigned length) {
    return static_cast<std::uint32_t>(symbol) |
           (static_cast<std::uint32_t>(length) << kLengthShift);
  }
  static constexpr std::uint16_t entry_symbol(std::uint32_t e) {
    return static_cast<std::uint16_t>(e);
  }
  static constexpr unsigned entry_length(std::uint32_t e) { return e >> kLengthShift; }

  /// Builds the lookup table from per-symbol code lengths.
  Decoder(const std::vector<std::uint8_t>& lengths, unsigned table_bits);

  /// Decodes one symbol; returns kInvalidSymbol on a bit pattern that is
  /// not a valid codeword (corrupt stream). A single table load: the
  /// packed entry carries both the symbol and the bits to consume.
  std::uint16_t decode(BitReader& reader) const {
    const std::uint32_t e = table_[reader.peek(table_bits_)];
    reader.consume(entry_length(e));
    return e == 0 ? kInvalidSymbol : entry_symbol(e);
  }

  unsigned table_bits() const { return table_bits_; }
  std::size_t table_size() const { return table_.size(); }

  /// On-chip memory footprint of this table in bytes; the paper's block
  /// size study (Fig. 12) hinges on this limiting GPU occupancy.
  std::size_t footprint_bytes() const { return table_.size() * sizeof(std::uint32_t); }

 private:
  std::vector<std::uint32_t> table_;
  unsigned table_bits_;
};

/// Fills `table` (resized to 2^table_bits, zeroed) with packed entries for
/// a canonical code given per-symbol lengths; `transform(symbol)` maps a
/// symbol to the 32-bit packed value stored for it (the plain decoder
/// stores pack_entry(symbol, len); the fused codec tables store
/// pre-decoded match parameters). Reuses the vector's capacity, so
/// steady-state rebuilds allocate nothing.
template <typename Transform>
void build_packed_table(const std::vector<std::uint8_t>& lengths, unsigned table_bits,
                        std::vector<std::uint32_t>& table, Transform&& transform) {
  check(table_bits >= 1 && table_bits <= 15, "huffman: bad table_bits");
  table.assign(std::size_t{1} << table_bits, 0);

  // Canonical assignment (RFC 1951 §3.2.2) with stack-resident counters —
  // unlike assign_canonical_codes() this path performs no heap allocation,
  // which the per-block table rebuilds of the decode loop rely on.
  std::uint32_t bl_count[16] = {};
  unsigned max_len = 0;
  for (const auto len : lengths) {
    check(len <= 15, "huffman: code length exceeds 15");
    ++bl_count[len];
    max_len = std::max<unsigned>(max_len, len);
  }
  if (max_len == 0) return;  // empty code: all-holes table
  check(max_len <= table_bits, "huffman: code longer than decode table");
  check(kraft_sum(lengths, max_len) <= (1ull << max_len),
        "huffman: over-subscribed code lengths");
  std::uint32_t next_code[16] = {};
  std::uint32_t code = 0;
  bl_count[0] = 0;
  for (unsigned len = 1; len <= max_len; ++len) {
    code = (code + bl_count[len - 1]) << 1;
    next_code[len] = code;
  }
  for (std::size_t s = 0; s < lengths.size(); ++s) {
    const unsigned len = lengths[s];
    if (len == 0) continue;
    // All table indices whose low `len` bits equal the reversed code map
    // to this symbol.
    const std::uint32_t base = reverse_bits(next_code[len]++, len);
    const std::uint32_t step = 1u << len;
    const std::uint32_t packed = transform(static_cast<std::uint16_t>(s), len);
    for (std::uint32_t i = base; i < table.size(); i += step) {
      table[i] = packed;
    }
  }
}

}  // namespace gompresso::huffman
