// Single-lookup Huffman decoder.
//
// "We can retrieve the original token symbol with a single lookup in each
// table, which is much faster than searching through the (more compact)
// Huffman trees, which would introduce branches and hence divergence of
// the threads' execution paths." (paper §III-B.1)
//
// The table has 2^table_bits entries; entry i gives the symbol whose
// (LSB-first) code is a prefix of the bit pattern i, plus the code length
// to consume. table_bits is the maximum codeword length CWL (10 in the
// paper, §V-C).
#pragma once

#include <cstdint>
#include <vector>

#include "bitstream/bit_reader.hpp"
#include "huffman/code_builder.hpp"

namespace gompresso::huffman {

/// Table-driven decoder for canonical codes with lengths <= table_bits.
class Decoder {
 public:
  static constexpr std::uint16_t kInvalidSymbol = 0xFFFF;

  /// Builds the lookup table from per-symbol code lengths.
  Decoder(const std::vector<std::uint8_t>& lengths, unsigned table_bits);

  /// Decodes one symbol; returns kInvalidSymbol on a bit pattern that is
  /// not a valid codeword (corrupt stream).
  std::uint16_t decode(BitReader& reader) const {
    const Entry e = table_[reader.peek(table_bits_)];
    reader.consume(e.length);
    return e.length == 0 ? kInvalidSymbol : e.symbol;
  }

  unsigned table_bits() const { return table_bits_; }
  std::size_t table_size() const { return table_.size(); }

  /// On-chip memory footprint of this table in bytes; the paper's block
  /// size study (Fig. 12) hinges on this limiting GPU occupancy.
  std::size_t footprint_bytes() const { return table_.size() * sizeof(Entry); }

 private:
  struct Entry {
    std::uint16_t symbol = kInvalidSymbol;
    std::uint8_t length = 0;  // 0 marks an invalid/unused entry
  };
  std::vector<Entry> table_;
  unsigned table_bits_;
};

}  // namespace gompresso::huffman
