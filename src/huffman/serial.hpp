// Canonical-representation serialisation of Huffman codes.
//
// A canonical code is fully determined by its per-symbol code lengths
// (paper §III-A: "the Huffman trees are written in a canonical
// representation"). With CWL <= 10 each length fits in a 4-bit nibble, so
// a tree costs alphabet_size/2 bytes in the block header. The ratio
// benchmarks account for this overhead.
#pragma once

#include <cstdint>
#include <vector>

#include "bitstream/bit_reader.hpp"
#include "bitstream/bit_writer.hpp"

namespace gompresso::huffman {

/// Writes `lengths` as 4-bit nibbles. All lengths must be <= 15.
void write_code_lengths(const std::vector<std::uint8_t>& lengths, BitWriter& writer);

/// Reads `count` 4-bit code lengths.
std::vector<std::uint8_t> read_code_lengths(std::size_t count, BitReader& reader);

/// Reads `count` 4-bit code lengths into `out` (resized; its capacity is
/// reused, so steady-state calls perform no heap allocation).
void read_code_lengths(std::size_t count, BitReader& reader,
                       std::vector<std::uint8_t>& out);

}  // namespace gompresso::huffman
