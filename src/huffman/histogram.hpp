// Symbol frequency counting for Huffman code construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gompresso::huffman {

/// Adds the byte frequencies of [p, p+n) into freqs[0..255]. Four
/// sub-histograms break the per-byte store-to-load dependency chain that
/// serialises a naive counting loop (the encode hot path histograms
/// whole blocks per compression). The sub-counters are 32-bit, which any
/// n < 2^32 cannot overflow — callers histogram one block (<= 1 GiB) at
/// a time.
inline void add_byte_histogram(const std::uint8_t* p, std::size_t n,
                               std::uint64_t* freqs) {
  std::uint32_t h[4][256] = {};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    ++h[0][p[i]];
    ++h[1][p[i + 1]];
    ++h[2][p[i + 2]];
    ++h[3][p[i + 3]];
  }
  for (; i < n; ++i) ++h[0][p[i]];
  for (std::size_t s = 0; s < 256; ++s) {
    freqs[s] += static_cast<std::uint64_t>(h[0][s]) + h[1][s] + h[2][s] + h[3][s];
  }
}

/// Frequency table over a dense symbol alphabet [0, alphabet_size).
class Histogram {
 public:
  explicit Histogram(std::size_t alphabet_size) : counts_(alphabet_size, 0) {}

  void add(std::size_t symbol, std::uint64_t n = 1) { counts_[symbol] += n; }

  std::uint64_t count(std::size_t symbol) const { return counts_[symbol]; }
  std::size_t alphabet_size() const { return counts_.size(); }
  const std::vector<std::uint64_t>& counts() const { return counts_; }

  /// Number of symbols with non-zero frequency.
  std::size_t distinct() const {
    std::size_t n = 0;
    for (auto c : counts_) n += (c != 0);
    return n;
  }

 private:
  std::vector<std::uint64_t> counts_;
};

}  // namespace gompresso::huffman
