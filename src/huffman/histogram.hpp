// Symbol frequency counting for Huffman code construction.
#pragma once

#include <cstdint>
#include <vector>

namespace gompresso::huffman {

/// Frequency table over a dense symbol alphabet [0, alphabet_size).
class Histogram {
 public:
  explicit Histogram(std::size_t alphabet_size) : counts_(alphabet_size, 0) {}

  void add(std::size_t symbol, std::uint64_t n = 1) { counts_[symbol] += n; }

  std::uint64_t count(std::size_t symbol) const { return counts_[symbol]; }
  std::size_t alphabet_size() const { return counts_.size(); }
  const std::vector<std::uint64_t>& counts() const { return counts_; }

  /// Number of symbols with non-zero frequency.
  std::size_t distinct() const {
    std::size_t n = 0;
    for (auto c : counts_) n += (c != 0);
    return n;
  }

 private:
  std::vector<std::uint64_t> counts_;
};

}  // namespace gompresso::huffman
