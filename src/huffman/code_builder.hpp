// Length-limited Huffman code construction (package-merge) and canonical
// code assignment.
//
// The paper (§V-C) uses limited-length Huffman coding with a maximum
// codeword length CWL = 10 bits so that each decode table has 2^CWL
// entries and fits in the GPU's on-chip memory. Package-merge produces the
// optimal code subject to that limit. Canonical assignment follows the
// DEFLATE convention so a code is fully described by its per-symbol
// lengths, which is what the block headers store ("the Huffman trees are
// written in a canonical representation", §III-A).
#pragma once

#include <cstdint>
#include <vector>

#include "util/common.hpp"

namespace gompresso::huffman {

/// A canonical code for one symbol. `code` holds the MSB-first canonical
/// value; use reversed() when writing to an LSB-first bitstream.
struct CodeEntry {
  std::uint16_t code = 0;
  std::uint8_t length = 0;  // 0 = symbol absent from the code
};

/// Computes optimal code lengths for `freqs` subject to `max_length`,
/// using the package-merge algorithm. Symbols with zero frequency get
/// length 0. Requires 2^max_length >= number of non-zero symbols.
/// A single-symbol alphabet gets length 1.
std::vector<std::uint8_t> build_code_lengths(const std::vector<std::uint64_t>& freqs,
                                             unsigned max_length);

/// Assigns canonical (DEFLATE-style) codes from per-symbol lengths.
/// Throws gompresso::Error if the lengths violate the Kraft inequality
/// (over-subscribed code).
std::vector<CodeEntry> assign_canonical_codes(const std::vector<std::uint8_t>& lengths);

/// Kraft sum scaled by 2^max_length: sum over symbols of 2^(max_length -
/// length). Equals 2^max_length for a complete code.
std::uint64_t kraft_sum(const std::vector<std::uint8_t>& lengths, unsigned max_length);

/// Reverses the low `nbits` bits of `code` (MSB-first -> LSB-first).
std::uint32_t reverse_bits(std::uint32_t code, unsigned nbits);

}  // namespace gompresso::huffman
