// Length-limited Huffman code construction (package-merge) and canonical
// code assignment.
//
// The paper (§V-C) uses limited-length Huffman coding with a maximum
// codeword length CWL = 10 bits so that each decode table has 2^CWL
// entries and fits in the GPU's on-chip memory. Package-merge produces the
// optimal code subject to that limit. Canonical assignment follows the
// DEFLATE convention so a code is fully described by its per-symbol
// lengths, which is what the block headers store ("the Huffman trees are
// written in a canonical representation", §III-A).
//
// The `_into` variants write into caller-owned storage and run the
// package-merge out of a reusable workspace, so a per-worker encode
// scratch can rebuild both block codes with zero steady-state heap
// allocations. Results are identical to the plain variants.
#pragma once

#include <cstdint>
#include <vector>

#include "util/common.hpp"

namespace gompresso::huffman {

/// A canonical code for one symbol. `code` holds the MSB-first canonical
/// value; use reversed() when writing to an LSB-first bitstream.
struct CodeEntry {
  std::uint16_t code = 0;
  std::uint8_t length = 0;  // 0 = symbol absent from the code
};

namespace detail {

// One item in a package-merge level list: either a leaf (symbol >= 0) or a
// package combining two items of the next-lower denomination level.
struct PmItem {
  std::uint64_t weight = 0;
  std::int32_t symbol = -1;  // >= 0 for leaves
  std::int32_t left = -1;    // indices into the next level's item list
  std::int32_t right = -1;
};

}  // namespace detail

/// Reusable storage for build_code_lengths_into. All buffers are cleared
/// (capacity kept) per call; after the first build of a given alphabet
/// size and length limit, rebuilds are heap-allocation-free.
struct CodeBuildWorkspace {
  std::vector<std::int32_t> active;
  std::vector<detail::PmItem> leaves;
  std::vector<std::vector<detail::PmItem>> levels;
  std::vector<detail::PmItem> packages;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> stack;

  /// Pre-sizes for alphabets up to `alphabet` symbols and limits up to
  /// `max_length`, making even the first build allocation-free. Each
  /// level list holds at most 2n items (n leaves + n/... packages); the
  /// selection stack grows by at most one entry per pop from 2(n-1).
  void reserve(std::size_t alphabet, unsigned max_length) {
    active.reserve(alphabet);
    leaves.reserve(alphabet);
    levels.resize(max_length);
    for (auto& l : levels) l.reserve(2 * alphabet);
    packages.reserve(alphabet);
    stack.reserve(2 * alphabet + max_length + 2);
  }
};

/// Computes optimal code lengths for `freqs` subject to `max_length`,
/// using the package-merge algorithm. Symbols with zero frequency get
/// length 0. Requires 2^max_length >= number of non-zero symbols.
/// A single-symbol alphabet gets length 1.
std::vector<std::uint8_t> build_code_lengths(const std::vector<std::uint64_t>& freqs,
                                             unsigned max_length);

/// Workspace variant: writes the lengths into `lengths` (resized) reusing
/// `ws` buffers. Identical output to build_code_lengths.
void build_code_lengths_into(const std::vector<std::uint64_t>& freqs,
                             unsigned max_length, std::vector<std::uint8_t>& lengths,
                             CodeBuildWorkspace& ws);

/// Assigns canonical (DEFLATE-style) codes from per-symbol lengths.
/// Throws gompresso::Error if the lengths violate the Kraft inequality
/// (over-subscribed code).
std::vector<CodeEntry> assign_canonical_codes(const std::vector<std::uint8_t>& lengths);

/// Storage-reusing variant of assign_canonical_codes (identical output;
/// `codes` is resized, its capacity reused; no other heap use).
void assign_canonical_codes_into(const std::vector<std::uint8_t>& lengths,
                                 std::vector<CodeEntry>& codes);

/// Kraft sum scaled by 2^max_length: sum over symbols of 2^(max_length -
/// length). Equals 2^max_length for a complete code.
std::uint64_t kraft_sum(const std::vector<std::uint8_t>& lengths, unsigned max_length);

/// Reverses the low `nbits` bits of `code` (MSB-first -> LSB-first).
std::uint32_t reverse_bits(std::uint32_t code, unsigned nbits);

}  // namespace gompresso::huffman
