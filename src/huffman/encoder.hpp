// Huffman symbol encoder over an LSB-first bitstream.
#pragma once

#include <cstdint>
#include <vector>

#include "bitstream/bit_writer.hpp"
#include "huffman/code_builder.hpp"

namespace gompresso::huffman {

/// Encodes symbols using a canonical code. Codes are pre-reversed at
/// construction so the hot path is a single BitWriter::write.
class Encoder {
 public:
  /// Builds from per-symbol canonical code entries (assign_canonical_codes).
  explicit Encoder(const std::vector<CodeEntry>& codes);

  /// Writes `symbol`'s code. The symbol must have a non-zero length.
  void encode(std::size_t symbol, BitWriter& writer) const {
    const Entry& e = entries_[symbol];
    writer.write(e.bits, e.length);
  }

  /// Code length in bits for `symbol` (0 if absent).
  unsigned length(std::size_t symbol) const { return entries_[symbol].length; }

  /// Total encoded size in bits of a message with the given frequencies.
  std::uint64_t cost_bits(const std::vector<std::uint64_t>& freqs) const;

 private:
  struct Entry {
    std::uint32_t bits = 0;  // LSB-first (already reversed)
    std::uint8_t length = 0;
  };
  std::vector<Entry> entries_;
};

}  // namespace gompresso::huffman
