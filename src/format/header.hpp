// The Gompresso file format (paper Fig. 3).
//
//   +--------------------------------------------------------------+
//   | file header: magic, version, codec, DE flag, CWL,            |
//   |   window size, min/max match, block size, tokens/sub-block,  |
//   |   uncompressed size, per-block compressed sizes              |
//   +--------------------------------------------------------------+
//   | block 1 payload (codec-specific, see core/{byte,bit}_codec)  |
//   | block 2 payload                                              |
//   | ...                                                          |
//   +--------------------------------------------------------------+
//
// The per-block compressed-size list plays the same role as the paper's
// sub-block size list one level up: it lets the decompressor locate every
// block without scanning, which is what enables inter-block parallelism.
#pragma once

#include <cstdint>
#include <vector>

#include "util/byte_reader.hpp"
#include "util/common.hpp"

namespace gompresso::format {

inline constexpr std::uint32_t kMagic = 0x5A504D47u;  // "GMPZ"
inline constexpr std::uint8_t kVersion = 1;

enum class Codec : std::uint8_t {
  kByte = 0,  // Gompresso/Byte: fixed-width byte-aligned sequence records
  kBit = 1,   // Gompresso/Bit: two Huffman trees per block (DEFLATE-like)
  kTans = 2,  // Gompresso/Tans: two shared tANS models per block (the
              // paper's "alternative coding schemes" future work, §VI)
};

/// File-level metadata. All fields mirror Fig. 3's "compressed file
/// header" box (dictionary size = window_size, etc.).
struct FileHeader {
  Codec codec = Codec::kBit;
  bool dependency_elimination = false;
  std::uint8_t codeword_limit = 10;  // CWL, bit codec only
  std::uint32_t window_size = 8 * 1024;
  std::uint32_t min_match = 3;
  std::uint32_t max_match = 64;
  std::uint32_t block_size = 256 * 1024;
  std::uint32_t tokens_per_subblock = 16;
  std::uint64_t uncompressed_size = 0;
  std::vector<std::uint64_t> block_compressed_sizes;

  std::size_t num_blocks() const { return block_compressed_sizes.size(); }

  /// Serialises the header to bytes.
  Bytes serialize() const;

  /// Parses a header from the start of `data`; `pos` is advanced past it.
  static FileHeader deserialize(ByteSpan data, std::size_t& pos);

  /// Parses a header from any buffered byte reader (file, stream, or
  /// serve::ByteSource) — the entry point the seek-index scan uses so a
  /// multi-gigabyte container never has to be resident to be indexed.
  static FileHeader deserialize(util::ByteReader& reader);

  /// Parses the header fields after the leading magic, for callers that
  /// already consumed the magic to dispatch on it (the streaming decoder
  /// cannot rewind a pipe to re-read it).
  static FileHeader deserialize_body(util::ByteReader& reader);

  /// Validates the block count against uncompressed_size / block_size.
  /// Every consumer that walks the block table assumes the blocks tile
  /// [0, uncompressed_size) without gaps; callers that cannot run the
  /// full check_payload (no payload length in hand, e.g. a seek-index
  /// sidecar or a bare container on a pipe) must still run this, or a
  /// crafted header yields a table with gaps/overlaps and downstream
  /// offset arithmetic wraps. Throws gompresso::Error.
  void check_block_count() const;

  /// Validates the size list against the `payload_bytes` that follow the
  /// header: the per-block compressed sizes must sum to exactly the
  /// payload, and the block count must match uncompressed_size /
  /// block_size (check_block_count). Calling this at parse time turns a
  /// truncated or corrupt-length file into one clear error instead of a
  /// confusing per-block failure later. Throws gompresso::Error.
  void check_payload(std::uint64_t payload_bytes) const;
};

}  // namespace gompresso::format
