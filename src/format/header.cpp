#include "format/header.hpp"

#include "util/varint.hpp"

namespace gompresso::format {

Bytes FileHeader::serialize() const {
  Bytes out;
  put_u32le(out, kMagic);
  out.push_back(kVersion);
  out.push_back(static_cast<std::uint8_t>(codec));
  out.push_back(dependency_elimination ? 1 : 0);
  out.push_back(codeword_limit);
  put_varint(out, window_size);
  put_varint(out, min_match);
  put_varint(out, max_match);
  put_varint(out, block_size);
  put_varint(out, tokens_per_subblock);
  put_varint(out, uncompressed_size);
  put_varint(out, block_compressed_sizes.size());
  for (const auto s : block_compressed_sizes) put_varint(out, s);
  return out;
}

FileHeader FileHeader::deserialize(ByteSpan data, std::size_t& pos) {
  FileHeader h;
  check(get_u32le(data, pos) == kMagic, "format: bad magic");
  check(pos < data.size() && data[pos] == kVersion, "format: unsupported version");
  ++pos;
  check(pos + 3 <= data.size(), "format: truncated header");
  const std::uint8_t codec_byte = data[pos++];
  check(codec_byte <= 2, "format: unknown codec");
  h.codec = static_cast<Codec>(codec_byte);
  h.dependency_elimination = data[pos++] != 0;
  h.codeword_limit = data[pos++];
  check(h.codeword_limit >= 1 && h.codeword_limit <= 15, "format: bad CWL");
  h.window_size = static_cast<std::uint32_t>(get_varint(data, pos));
  h.min_match = static_cast<std::uint32_t>(get_varint(data, pos));
  h.max_match = static_cast<std::uint32_t>(get_varint(data, pos));
  h.block_size = static_cast<std::uint32_t>(get_varint(data, pos));
  h.tokens_per_subblock = static_cast<std::uint32_t>(get_varint(data, pos));
  h.uncompressed_size = get_varint(data, pos);
  const std::uint64_t num_blocks = get_varint(data, pos);
  check(num_blocks <= (1ull << 32), "format: implausible block count");
  check(h.block_size > 0, "format: zero block size");
  check(h.tokens_per_subblock > 0, "format: zero tokens per sub-block");
  h.block_compressed_sizes.reserve(static_cast<std::size_t>(num_blocks));
  for (std::uint64_t i = 0; i < num_blocks; ++i) {
    h.block_compressed_sizes.push_back(get_varint(data, pos));
  }
  return h;
}

}  // namespace gompresso::format
