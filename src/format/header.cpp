#include "format/header.hpp"

#include <algorithm>

#include "util/varint.hpp"

namespace gompresso::format {

Bytes FileHeader::serialize() const {
  Bytes out;
  put_u32le(out, kMagic);
  out.push_back(kVersion);
  out.push_back(static_cast<std::uint8_t>(codec));
  out.push_back(dependency_elimination ? 1 : 0);
  out.push_back(codeword_limit);
  put_varint(out, window_size);
  put_varint(out, min_match);
  put_varint(out, max_match);
  put_varint(out, block_size);
  put_varint(out, tokens_per_subblock);
  put_varint(out, uncompressed_size);
  put_varint(out, block_compressed_sizes.size());
  for (const auto s : block_compressed_sizes) put_varint(out, s);
  return out;
}

FileHeader FileHeader::deserialize(ByteSpan data, std::size_t& pos) {
  util::SpanReader reader(data.subspan(pos));
  const FileHeader h = deserialize(reader);
  pos += static_cast<std::size_t>(reader.offset());
  return h;
}

FileHeader FileHeader::deserialize(util::ByteReader& reader) {
  check_format(reader.read_u32le() == kMagic, "format: bad magic");
  return deserialize_body(reader);
}

FileHeader FileHeader::deserialize_body(util::ByteReader& reader) {
  FileHeader h;
  check_format(reader.read_u8() == kVersion, "format: unsupported version");
  const std::uint8_t codec_byte = reader.read_u8();
  check_format(codec_byte <= 2, "format: unknown codec");
  h.codec = static_cast<Codec>(codec_byte);
  h.dependency_elimination = reader.read_u8() != 0;
  h.codeword_limit = reader.read_u8();
  check_format(h.codeword_limit >= 1 && h.codeword_limit <= 15, "format: bad CWL");
  h.window_size = static_cast<std::uint32_t>(reader.read_varint());
  h.min_match = static_cast<std::uint32_t>(reader.read_varint());
  h.max_match = static_cast<std::uint32_t>(reader.read_varint());
  h.block_size = static_cast<std::uint32_t>(reader.read_varint());
  h.tokens_per_subblock = static_cast<std::uint32_t>(reader.read_varint());
  h.uncompressed_size = reader.read_varint();
  const std::uint64_t num_blocks = reader.read_varint();
  check_format(num_blocks <= (1ull << 32), "format: implausible block count");
  check_format(h.block_size > 0, "format: zero block size");
  check_format(h.tokens_per_subblock > 0, "format: zero tokens per sub-block");
  // The reserve is only a hint — bound it so a crafted num_blocks just
  // under the plausibility cap cannot attempt a 32 GiB allocation from a
  // ~15-byte input before the per-entry reads fail on truncation.
  h.block_compressed_sizes.reserve(
      static_cast<std::size_t>(std::min<std::uint64_t>(num_blocks, 1u << 16)));
  for (std::uint64_t i = 0; i < num_blocks; ++i) {
    h.block_compressed_sizes.push_back(reader.read_varint());
  }
  return h;
}

void FileHeader::check_block_count() const {
  check_format(num_blocks() == div_ceil<std::uint64_t>(uncompressed_size, block_size),
        "format: block count inconsistent with uncompressed size");
}

void FileHeader::check_payload(std::uint64_t payload_bytes) const {
  check_block_count();
  std::uint64_t total = 0;
  for (const std::uint64_t s : block_compressed_sizes) {
    // Incremental bound so an adversarial size list cannot overflow the
    // accumulator before the comparison.
    check_format(s <= payload_bytes - total,
          "format: compressed payload shorter than the block size list "
          "(truncated file?)");
    total += s;
  }
  check_format(total == payload_bytes,
        "format: compressed payload does not match the block size list");
}

}  // namespace gompresso::format
