// Container-format sniffing: one shared magic-byte classifier.
//
// Every open path — gompresso::open(), decompress_stream()'s pipe
// fallback, the CLI — dispatches on the same few leading bytes. Before
// this header each path re-implemented the comparison, which is exactly
// how the bare-GMPZ vs GMPS split once drifted between the session and
// stream code. The classifier lives in format/ (below core/ and serve/)
// so every layer can use it without cycles.
//
// Recognised containers:
//   GMPZ  — the native block container (format::kMagic, u32 LE)
//   GMPS  — the native streaming framing (kGmpsMagic, u32 LE)
//   gzip  — RFC 1952: ID1=0x1F ID2=0x8B CM=8 (deflate)
#pragma once

#include <cstdint>

#include "util/common.hpp"

namespace gompresso::format {

/// GMPS streaming-container magic ("GMPS" little-endian). Canonical
/// definition; core/stream.hpp re-exports it as core's kStreamMagic.
inline constexpr std::uint32_t kGmpsMagic = 0x53504D47u;

/// gzip member magic + deflate compression method (RFC 1952 §2.3.1).
inline constexpr std::uint8_t kGzipId1 = 0x1F;
inline constexpr std::uint8_t kGzipId2 = 0x8B;
inline constexpr std::uint8_t kGzipCmDeflate = 8;

/// Prefix length that fully determines the classification.
inline constexpr std::size_t kSniffBytes = 4;

enum class ContainerKind : std::uint8_t {
  kGmpz,     // native block container (FileHeader)
  kGmps,     // native streaming framing (segment sequence)
  kGzip,     // RFC 1952 gzip (one or more members)
  kUnknown,  // none of the above (or prefix too short)
};

/// Classifies a file/stream by its leading bytes. Needs at least 3
/// bytes for gzip and 4 for the native containers; shorter prefixes
/// classify as far as they can and otherwise return kUnknown (no
/// container this library reads is shorter than 4 bytes).
ContainerKind sniff_container(ByteSpan prefix);

/// Human-readable name for diagnostics ("gmpz", "gmps", "gzip", ...).
const char* container_kind_name(ContainerKind kind);

}  // namespace gompresso::format
