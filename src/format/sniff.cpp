#include "format/sniff.hpp"

#include "format/header.hpp"

namespace gompresso::format {

ContainerKind sniff_container(ByteSpan prefix) {
  if (prefix.size() >= 3 && prefix[0] == kGzipId1 && prefix[1] == kGzipId2 &&
      prefix[2] == kGzipCmDeflate) {
    return ContainerKind::kGzip;
  }
  if (prefix.size() >= 4) {
    std::uint32_t magic = 0;
    for (unsigned i = 0; i < 4; ++i) {
      magic |= static_cast<std::uint32_t>(prefix[i]) << (8 * i);
    }
    if (magic == kMagic) return ContainerKind::kGmpz;
    if (magic == kGmpsMagic) return ContainerKind::kGmps;
  }
  return ContainerKind::kUnknown;
}

const char* container_kind_name(ContainerKind kind) {
  switch (kind) {
    case ContainerKind::kGmpz:
      return "gmpz";
    case ContainerKind::kGmps:
      return "gmps";
    case ContainerKind::kGzip:
      return "gzip";
    case ContainerKind::kUnknown:
      return "unknown";
  }
  return "unknown";
}

}  // namespace gompresso::format
