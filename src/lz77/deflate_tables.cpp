#include "lz77/deflate_tables.hpp"

#include <array>
#include <cassert>

namespace gompresso::lz77 {
namespace {

// RFC 1951 §3.2.5, table for codes 257..285 re-indexed to 0..28.
constexpr std::array<std::uint16_t, kNumLengthCodes> kLengthBase = {
    3,  4,  5,  6,  7,  8,  9,  10, 11,  13,  15,  17,  19,  23, 27,
    31, 35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258};
constexpr std::array<std::uint8_t, kNumLengthCodes> kLengthExtra = {
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0};

constexpr std::array<std::uint16_t, kNumDistanceCodes> kDistBase = {
    1,    2,    3,    4,    5,    7,     9,     13,    17,   25,
    33,   49,   65,   97,   129,  193,   257,   385,   513,  769,
    1025, 1537, 2049, 3073, 4097, 6145,  8193,  12289, 16385, 24577};
constexpr std::array<std::uint8_t, kNumDistanceCodes> kDistExtra = {
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13};

// Dense lookup: length (3..258) -> bucket.
struct LengthTable {
  std::array<std::uint8_t, kMaxMatch - kMinMatch + 1> code{};
  LengthTable() {
    for (unsigned c = 0; c < kNumLengthCodes; ++c) {
      const std::uint32_t lo = kLengthBase[c];
      const std::uint32_t hi =
          c + 1 < kNumLengthCodes ? kLengthBase[c + 1] : kMaxMatch + 1;
      for (std::uint32_t len = lo; len < hi && len <= kMaxMatch; ++len) {
        code[len - kMinMatch] = static_cast<std::uint8_t>(c);
      }
    }
    // Length 258 has its own dedicated bucket (28).
    code[kMaxMatch - kMinMatch] = 28;
  }
};

// Dense lookup: distance (1..32768) -> bucket.
struct DistTable {
  std::array<std::uint8_t, kMaxDistance + 1> code{};
  DistTable() {
    for (unsigned c = 0; c < kNumDistanceCodes; ++c) {
      const std::uint32_t lo = kDistBase[c];
      const std::uint32_t hi =
          c + 1 < kNumDistanceCodes ? kDistBase[c + 1] : kMaxDistance + 1;
      for (std::uint32_t d = lo; d < hi; ++d) code[d] = static_cast<std::uint8_t>(c);
    }
  }
};

const LengthTable kLengthTable;
const DistTable kDistTable;

}  // namespace

BucketCode encode_length(std::uint32_t length) {
  assert(length >= kMinMatch && length <= kMaxMatch);
  BucketCode bc;
  bc.code = kLengthTable.code[length - kMinMatch];
  bc.extra_bits = kLengthExtra[bc.code];
  bc.extra_value = static_cast<std::uint16_t>(length - kLengthBase[bc.code]);
  return bc;
}

std::uint32_t decode_length(std::uint32_t code, std::uint32_t extra) {
  assert(code < kNumLengthCodes);
  return kLengthBase[code] + extra;
}

unsigned length_extra_bits(std::uint32_t code) {
  assert(code < kNumLengthCodes);
  return kLengthExtra[code];
}

BucketCode encode_distance(std::uint32_t distance) {
  assert(distance >= 1 && distance <= kMaxDistance);
  BucketCode bc;
  bc.code = kDistTable.code[distance];
  bc.extra_bits = kDistExtra[bc.code];
  bc.extra_value = static_cast<std::uint16_t>(distance - kDistBase[bc.code]);
  return bc;
}

std::uint32_t decode_distance(std::uint32_t code, std::uint32_t extra) {
  assert(code < kNumDistanceCodes);
  return kDistBase[code] + extra;
}

unsigned distance_extra_bits(std::uint32_t code) {
  assert(code < kNumDistanceCodes);
  return kDistExtra[code];
}

}  // namespace gompresso::lz77
