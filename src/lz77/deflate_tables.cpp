#include "lz77/deflate_tables.hpp"

#include <cassert>

namespace gompresso::lz77 {

// The bucket maps themselves are constexpr in the header (dense length
// table + closed-form distance bit-width); these out-of-line wrappers keep
// the original readable interface for the baselines, decoders and tests.

BucketCode encode_length(std::uint32_t length) {
  assert(length >= kMinMatch && length <= kMaxMatch);
  BucketCode bc;
  bc.code = static_cast<std::uint16_t>(length_code(length));
  bc.extra_bits = detail::kLengthExtra[bc.code];
  bc.extra_value = static_cast<std::uint16_t>(length - detail::kLengthBase[bc.code]);
  return bc;
}

std::uint32_t decode_length(std::uint32_t code, std::uint32_t extra) {
  assert(code < kNumLengthCodes);
  return detail::kLengthBase[code] + extra;
}

unsigned length_extra_bits(std::uint32_t code) {
  assert(code < kNumLengthCodes);
  return detail::kLengthExtra[code];
}

BucketCode encode_distance(std::uint32_t distance) {
  assert(distance >= 1 && distance <= kMaxDistance);
  BucketCode bc;
  bc.code = static_cast<std::uint16_t>(distance_code(distance));
  bc.extra_bits = detail::kDistExtra[bc.code];
  bc.extra_value = static_cast<std::uint16_t>(distance - detail::kDistBase[bc.code]);
  return bc;
}

std::uint32_t decode_distance(std::uint32_t code, std::uint32_t extra) {
  assert(code < kNumDistanceCodes);
  return detail::kDistBase[code] + extra;
}

unsigned distance_extra_bits(std::uint32_t code) {
  assert(code < kNumDistanceCodes);
  return detail::kDistExtra[code];
}

}  // namespace gompresso::lz77
