#include "lz77/ref_decoder.hpp"

namespace gompresso::lz77 {

void append_sequence(Bytes& out, const Sequence& seq, const std::uint8_t* literal) {
  out.insert(out.end(), literal, literal + seq.literal_len);
  if (seq.match_len == 0) return;
  check(seq.match_dist >= 1 && seq.match_dist <= out.size(),
        "lz77: back-reference past start of block");
  // Byte-wise forward copy: correct for overlapping matches (dist < len),
  // where the copy reads bytes it has just written (RLE-style runs).
  std::size_t src = out.size() - seq.match_dist;
  for (std::uint32_t i = 0; i < seq.match_len; ++i) out.push_back(out[src + i]);
}

Bytes decode_reference(const TokenBlock& block) {
  validate(block);
  Bytes out;
  out.reserve(block.uncompressed_size);
  const std::uint8_t* lit = block.literals.data();
  for (const auto& seq : block.sequences) {
    append_sequence(out, seq, lit);
    lit += seq.literal_len;
  }
  check(out.size() == block.uncompressed_size, "lz77: size mismatch after decode");
  return out;
}

void validate(const TokenBlock& block) {
  std::uint64_t literal_bytes = 0;
  std::uint64_t out_bytes = 0;
  for (std::size_t i = 0; i < block.sequences.size(); ++i) {
    const Sequence& seq = block.sequences[i];
    literal_bytes += seq.literal_len;
    out_bytes += seq.literal_len;
    if (seq.match_len == 0) {
      // Zero-match sequences occur as the block terminator and as
      // literal-run splits (ParserOptions::max_literal_run).
      check(seq.match_dist == 0, "lz77: zero-length match with distance");
      continue;
    }
    check(seq.match_dist >= 1, "lz77: zero distance");
    check(seq.match_dist <= out_bytes, "lz77: distance exceeds produced output");
    out_bytes += seq.match_len;
  }
  check(literal_bytes == block.literals.size(), "lz77: literal byte count mismatch");
  check(out_bytes == block.uncompressed_size, "lz77: uncompressed size mismatch");
  check(!block.sequences.empty(), "lz77: no sequences");
  check(block.sequences.back().match_len == 0, "lz77: missing terminator sequence");
}

}  // namespace gompresso::lz77
