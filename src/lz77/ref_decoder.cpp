#include "lz77/ref_decoder.hpp"

#include "core/resolve_common.hpp"

namespace gompresso::lz77 {

std::uint64_t resolve_span(std::span<const Sequence> sequences,
                           const std::uint8_t* literals, std::size_t literal_count,
                           MutableByteSpan window, std::uint64_t base) {
  check(base <= window.size(), "lz77: span base past end of window");
  std::uint64_t out = base;
  std::uint64_t lit_cursor = 0;
  for (const Sequence& seq : sequences) {
    check(lit_cursor + seq.literal_len <= literal_count,
          "lz77: literal buffer overrun");
    check(out + seq.literal_len + seq.match_len <= window.size(),
          "lz77: output overrun");
    if (seq.literal_len != 0) {
      std::memcpy(window.data() + out, literals + lit_cursor, seq.literal_len);
      lit_cursor += seq.literal_len;
      out += seq.literal_len;
    }
    if (seq.match_len == 0) continue;
    check(seq.match_dist >= 1 && seq.match_dist <= out,
          "lz77: back-reference past start of block");
    core::copy_backref(window.data(), out, out - seq.match_dist, seq.match_len);
    out += seq.match_len;
  }
  check(lit_cursor == literal_count, "lz77: literal count mismatch");
  return out - base;
}

Bytes decode_reference(const TokenBlock& block) {
  validate(block);
  Bytes out(block.uncompressed_size);
  const std::uint64_t written =
      resolve_span(block.sequences, block.literals.data(), block.literals.size(),
                   out, /*base=*/0);
  check(written == block.uncompressed_size, "lz77: size mismatch after decode");
  return out;
}

void validate(const TokenBlock& block) {
  std::uint64_t literal_bytes = 0;
  std::uint64_t out_bytes = 0;
  for (std::size_t i = 0; i < block.sequences.size(); ++i) {
    const Sequence& seq = block.sequences[i];
    literal_bytes += seq.literal_len;
    out_bytes += seq.literal_len;
    if (seq.match_len == 0) {
      // Zero-match sequences occur as the block terminator and as
      // literal-run splits (ParserOptions::max_literal_run).
      check(seq.match_dist == 0, "lz77: zero-length match with distance");
      continue;
    }
    check(seq.match_dist >= 1, "lz77: zero distance");
    check(seq.match_dist <= out_bytes, "lz77: distance exceeds produced output");
    out_bytes += seq.match_len;
  }
  check(literal_bytes == block.literals.size(), "lz77: literal byte count mismatch");
  check(out_bytes == block.uncompressed_size, "lz77: uncompressed size mismatch");
  check(!block.sequences.empty(), "lz77: no sequences");
  check(block.sequences.back().match_len == 0, "lz77: missing terminator sequence");
}

}  // namespace gompresso::lz77
