#include "lz77/matcher.hpp"

namespace gompresso::lz77 {

// Table entries are generation-biased positions (entry = base_ + pos);
// anything below base_ reads as empty. A full reset therefore fills with
// 0 (always below base_, which starts at 1), and the per-block reset just
// advances base_ past the previous block's positions — no fill at all
// until the 32-bit bias runs out (~4 GiB parsed through one matcher).

// ---------------------------------------------------------------------------
// HashMatcher

HashMatcher::HashMatcher(const MatcherConfig& config)
    : config_(config), table_(std::size_t{1} << config.hash_bits, 0) {
  check(config.hash_bits >= 8 && config.hash_bits <= 24, "matcher: bad hash_bits");
  check(config.min_match >= 3, "matcher: min_match must be >= 3");
  check(config.max_match >= config.min_match, "matcher: max_match < min_match");
}

void HashMatcher::reset() {
  std::fill(table_.begin(), table_.end(), 0u);
  base_ = 1;
  block_span_ = 0;
}

bool HashMatcher::begin_block(std::uint32_t block_size) {
  // The bias must leave room for base_ + pos of every position the new
  // block can insert, and must stay below the kEmpty sentinel.
  if (std::uint64_t{base_} + block_span_ + block_size > kNoLimit - 1) {
    reset();
    block_span_ = block_size;
    return false;
  }
  base_ += block_span_;
  block_span_ = block_size;
  return true;
}

// ---------------------------------------------------------------------------
// ChainMatcher

ChainMatcher::ChainMatcher(const MatcherConfig& config, std::uint32_t max_chain_depth)
    : config_(config),
      max_chain_depth_(max_chain_depth),
      head_(std::size_t{1} << config.hash_bits, 0),
      prev_(config.window_size, 0) {
  check(config.hash_bits >= 8 && config.hash_bits <= 24, "matcher: bad hash_bits");
  check(config.min_match >= 3, "matcher: min_match must be >= 3");
  check(config.max_match >= config.min_match, "matcher: max_match < min_match");
  check(is_pow2(config.window_size), "chain matcher: window must be a power of two");
  check(max_chain_depth >= 1, "chain matcher: depth must be >= 1");
}

void ChainMatcher::reset() {
  std::fill(head_.begin(), head_.end(), 0u);
  std::fill(prev_.begin(), prev_.end(), 0u);
  base_ = 1;
  block_span_ = 0;
}

bool ChainMatcher::begin_block(std::uint32_t block_size) {
  if (std::uint64_t{base_} + block_span_ + block_size > kNoLimit - 1) {
    reset();
    block_span_ = block_size;
    return false;
  }
  base_ += block_span_;
  block_span_ = block_size;
  return true;
}

}  // namespace gompresso::lz77
