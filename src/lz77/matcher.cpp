#include "lz77/matcher.hpp"

#include <algorithm>
#include <cstring>

namespace gompresso::lz77 {
namespace {

// Fibonacci-hash of the three bytes at `p` (the trigram key of §IV-B).
inline std::uint32_t trigram_hash(const std::uint8_t* p, unsigned hash_bits) {
  const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                          (static_cast<std::uint32_t>(p[1]) << 8) |
                          (static_cast<std::uint32_t>(p[2]) << 16);
  return (v * 2654435761u) >> (32 - hash_bits);
}

}  // namespace

std::uint32_t match_length(ByteSpan input, std::uint32_t a, std::uint32_t b,
                           std::uint32_t cap) {
  const std::uint8_t* pa = input.data() + a;
  const std::uint8_t* pb = input.data() + b;
  std::uint32_t len = 0;
  // 8-byte-at-a-time comparison, then byte tail.
  while (len + 8 <= cap) {
    std::uint64_t va, vb;
    std::memcpy(&va, pa + len, 8);
    std::memcpy(&vb, pb + len, 8);
    if (va != vb) {
      const std::uint64_t diff = va ^ vb;
      return len + static_cast<std::uint32_t>(std::countr_zero(diff) >> 3);
    }
    len += 8;
  }
  while (len < cap && pa[len] == pb[len]) ++len;
  return len;
}

// ---------------------------------------------------------------------------
// HashMatcher

HashMatcher::HashMatcher(const MatcherConfig& config)
    : config_(config), table_(std::size_t{1} << config.hash_bits, kEmpty) {
  check(config.hash_bits >= 8 && config.hash_bits <= 24, "matcher: bad hash_bits");
  check(config.min_match >= 3, "matcher: min_match must be >= 3");
  check(config.max_match >= config.min_match, "matcher: max_match < min_match");
}

void HashMatcher::reset() {
  std::fill(table_.begin(), table_.end(), kEmpty);
}

std::uint32_t HashMatcher::hash(ByteSpan input, std::uint32_t pos) const {
  return trigram_hash(input.data() + pos, config_.hash_bits);
}

Match HashMatcher::find(ByteSpan input, std::uint32_t pos, std::uint32_t start_limit,
                        const DeConstraint* de) const {
  Match best;
  if (pos + config_.min_match > input.size()) return best;
  const std::uint32_t max_cap = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(config_.max_match, input.size() - pos));

  auto consider = [&](std::uint32_t cand) {
    if (cand == kEmpty || cand >= start_limit) return;
    if (pos - cand > config_.window_size) return;
    std::uint32_t cap = max_cap;
    if (de != nullptr) cap = std::min<std::uint32_t>(cap, de->allowed_cap(cand));
    if (cap < config_.min_match || cap <= best.len) return;
    const std::uint32_t len = match_length(input, cand, pos, cap);
    if (len >= config_.min_match && len > best.len) {
      best.pos = cand;
      best.len = len;
    }
  };

  consider(table_[hash(input, pos)]);
  // RLE probe: the immediately preceding byte. Runs compress as
  // distance-1 overlapping matches; the minimal-staleness table
  // deliberately keeps *old* entries, so without this probe runs would
  // only be found when the table entry happens to be adjacent.
  if (pos >= 1) consider(pos - 1);
  return best;
}

void HashMatcher::insert(ByteSpan input, std::uint32_t pos) {
  if (pos + 3 > input.size()) return;
  std::uint32_t& slot = table_[hash(input, pos)];
  // Minimal-staleness replacement (§IV-B): keep the older entry unless it
  // has fallen more than `staleness` bytes behind the cursor. Older
  // entries are more likely to lie below the warp HWM and therefore to be
  // usable by the DE parser. staleness == 0 disables the policy (always
  // replace, the stock LZ4 behaviour).
  if (slot != kEmpty && config_.staleness != 0) {
    if (pos - slot <= config_.staleness) return;
  }
  slot = pos;
}

// ---------------------------------------------------------------------------
// ChainMatcher

ChainMatcher::ChainMatcher(const MatcherConfig& config, std::uint32_t max_chain_depth)
    : config_(config),
      max_chain_depth_(max_chain_depth),
      head_(std::size_t{1} << config.hash_bits, kEmpty),
      prev_(config.window_size, kEmpty) {
  check(is_pow2(config.window_size), "chain matcher: window must be a power of two");
  check(max_chain_depth >= 1, "chain matcher: depth must be >= 1");
}

void ChainMatcher::reset() {
  std::fill(head_.begin(), head_.end(), kEmpty);
  std::fill(prev_.begin(), prev_.end(), kEmpty);
}

std::uint32_t ChainMatcher::hash(ByteSpan input, std::uint32_t pos) const {
  return trigram_hash(input.data() + pos, config_.hash_bits);
}

Match ChainMatcher::find(ByteSpan input, std::uint32_t pos, std::uint32_t start_limit,
                         const DeConstraint* de) const {
  Match best;
  if (pos + config_.min_match > input.size()) return best;
  std::uint32_t cand = head_[hash(input, pos)];
  const std::uint32_t max_cap =
      static_cast<std::uint32_t>(std::min<std::uint64_t>(config_.max_match, input.size() - pos));

  const bool prefer_older = config_.prefer_older_matches;
  std::uint32_t depth = max_chain_depth_;
  while (cand != kEmpty && depth-- > 0) {
    if (pos - cand > config_.window_size) break;  // chain left the window
    if (cand < start_limit) {
      std::uint32_t cap = max_cap;
      if (de != nullptr) cap = std::min<std::uint32_t>(cap, de->allowed_cap(cand));
      if (cap >= config_.min_match) {
        const std::uint32_t len = match_length(input, cand, pos, cap);
        // The chain runs recent -> old, so ">=" keeps the oldest among
        // equal-length candidates (exhaustive-matcher behaviour).
        if (len >= config_.min_match &&
            (prefer_older ? len >= best.len : len > best.len)) {
          best.pos = cand;
          best.len = len;
          if (!prefer_older && len == max_cap) break;  // cannot improve
        }
      }
    }
    const std::uint32_t next = prev_[cand & (config_.window_size - 1)];
    if (next != kEmpty && next >= cand) break;  // stale ring slot, stop
    cand = next;
  }
  // RLE probe (see HashMatcher::find).
  if (pos >= 1 && pos - 1 < start_limit) {
    std::uint32_t cap = max_cap;
    if (de != nullptr) cap = std::min<std::uint32_t>(cap, de->allowed_cap(pos - 1));
    if (cap >= config_.min_match && cap > best.len) {
      const std::uint32_t len = match_length(input, pos - 1, pos, cap);
      if (len >= config_.min_match && len > best.len) {
        best.pos = pos - 1;
        best.len = len;
      }
    }
  }
  return best;
}

void ChainMatcher::insert(ByteSpan input, std::uint32_t pos) {
  if (pos + 3 > input.size()) return;
  std::uint32_t& slot = head_[hash(input, pos)];
  prev_[pos & (config_.window_size - 1)] = slot;
  slot = pos;
}

}  // namespace gompresso::lz77
