// Sequential reference decoder for LZ77 token blocks.
//
// Used as the correctness oracle for the warp-parallel decompressors and
// as the inner loop of the CPU baseline codecs.
#pragma once

#include <span>

#include "lz77/sequence.hpp"
#include "util/common.hpp"

namespace gompresso::lz77 {

/// Reconstructs the uncompressed block from sequences + literals.
/// Throws gompresso::Error on malformed input (distance past the start,
/// literal buffer mismatch, size mismatch).
Bytes decode_reference(const TokenBlock& block);

/// Sequential span-resolving kernel: resolves `sequences` into `window`
/// starting at absolute offset `base`. Literal strings and matches are
/// written from window[base] onward; back-references may read any window
/// byte below their write position, including [0, base) — the caller
/// guarantees that prefix is already resolved. This is the oracle the
/// sharded resolver's shards are checked against (resolve one shard's
/// range at its output base over a window whose prefix is done), and
/// what decode_reference runs over the whole block at base 0. Returns
/// the number of bytes written. Throws gompresso::Error on malformed
/// input (bounds are checked before every write).
std::uint64_t resolve_span(std::span<const Sequence> sequences,
                           const std::uint8_t* literals, std::size_t literal_count,
                           MutableByteSpan window, std::uint64_t base);

/// Validates structural invariants of a token block without decoding:
/// distances within bounds, literal byte count consistent, terminator
/// shape. Throws gompresso::Error on violation.
void validate(const TokenBlock& block);

}  // namespace gompresso::lz77
