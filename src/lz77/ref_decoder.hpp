// Sequential reference decoder for LZ77 token blocks.
//
// Used as the correctness oracle for the warp-parallel decompressors and
// as the inner loop of the CPU baseline codecs.
#pragma once

#include "lz77/sequence.hpp"
#include "util/common.hpp"

namespace gompresso::lz77 {

/// Reconstructs the uncompressed block from sequences + literals.
/// Throws gompresso::Error on malformed input (distance past the start,
/// literal buffer mismatch, size mismatch).
Bytes decode_reference(const TokenBlock& block);

/// Appends one resolved sequence to `out` (shared helper).
/// `literal` points at this sequence's literal bytes.
void append_sequence(Bytes& out, const Sequence& seq, const std::uint8_t* literal);

/// Validates structural invariants of a token block without decoding:
/// distances within bounds, literal byte count consistent, terminator
/// shape. Throws gompresso::Error on violation.
void validate(const TokenBlock& block);

}  // namespace gompresso::lz77
