// Exhaustive window matcher — the reference for "an exhaustive parallel
// matching technique" (paper §III-A, citing the authors' GTC'13 work).
//
// On the GPU, a warp's 32 lanes each scan a strided slice of the sliding
// window and the best candidate is selected with a warp reduction. This
// CPU analogue scans the same candidates in the same lane-strided order
// and reduces identically, so its results are what the paper's compressor
// would produce. Cost is O(window) per query — it exists as a correctness
// and quality oracle for the hash-based matchers (tests) and for
// small-input demonstrations, not for production parsing.
#pragma once

#include "lz77/matcher.hpp"
#include "simt/warp.hpp"

namespace gompresso::lz77 {

class ExhaustiveMatcher {
 public:
  explicit ExhaustiveMatcher(const MatcherConfig& config) : config_(config) {}

  void reset() {}

  /// No dictionary state: a new block needs no reset at all.
  bool begin_block(std::uint32_t) { return true; }

  /// Finds the longest match for input[pos..]; ties go to the *oldest*
  /// candidate, matching the scan order of the parallel implementation.
  /// Honors the DE constraint like the other matchers.
  Match find(ByteSpan input, std::uint32_t pos, std::uint32_t start_limit,
             const DeConstraint* de = nullptr) const {
    Match best;
    if (pos + config_.min_match > input.size()) return best;
    const std::uint32_t window_start =
        pos > config_.window_size ? pos - config_.window_size : 0;
    const std::uint32_t end = std::min(start_limit, pos);
    const std::uint32_t max_cap = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(config_.max_match, input.size() - pos));

    // Lane-strided scan: lane L examines window_start + L, + L + 32, ...
    // Each lane keeps its local best; a warp reduction picks the global
    // best (oldest wins ties, matching the deterministic GPU reduction).
    simt::LaneArray<Match> lane_best{};
    for (unsigned lane = 0; lane < simt::kWarpSize; ++lane) {
      for (std::uint32_t cand = window_start + lane; cand < end;
           cand += simt::kWarpSize) {
        std::uint32_t cap = max_cap;
        if (de != nullptr) cap = std::min<std::uint32_t>(cap, de->allowed_cap(cand));
        if (cap < config_.min_match) continue;
        const std::uint32_t len = match_length(input, cand, pos, cap);
        if (len >= config_.min_match &&
            (len > lane_best[lane].len ||
             (len == lane_best[lane].len && lane_best[lane].found() &&
              cand < lane_best[lane].pos))) {
          lane_best[lane] = {cand, len};
        }
      }
    }
    // Warp reduction.
    for (unsigned lane = 0; lane < simt::kWarpSize; ++lane) {
      const Match& m = lane_best[lane];
      if (!m.found()) continue;
      if (m.len > best.len || (m.len == best.len && m.pos < best.pos)) best = m;
    }
    return best;
  }

  /// No dictionary state: inserts are no-ops (the scan sees everything).
  void insert(ByteSpan, std::uint32_t) {}
  void insert_span(ByteSpan, std::uint32_t, std::uint32_t) {}

  const MatcherConfig& config() const { return config_; }

 private:
  MatcherConfig config_;
};

}  // namespace gompresso::lz77
