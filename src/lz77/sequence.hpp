// LZ77 sequences: the unit of work for warp-parallel decompression.
//
// "We first group consecutive literals into a single literal string. We
// further require that a literal string is followed by a back-reference
// and vice versa, similar to the LZ4 compression scheme. ... A pair
// consisting of a literal string and a back-reference is called a
// sequence. We assign each sequence to a different thread." (paper §III-B)
#pragma once

#include <cstdint>
#include <vector>

#include "util/common.hpp"

namespace gompresso::lz77 {

/// One (literal string, back-reference) pair. The literal string may be
/// empty; the back-reference is absent (match_len == 0) only in the final
/// sequence of a block.
struct Sequence {
  std::uint32_t literal_len = 0;
  std::uint32_t match_len = 0;   // 0 = no back-reference (block terminator)
  std::uint32_t match_dist = 0;  // distance back from the write position
};

/// The parsed form of one data block: sequences plus the concatenated
/// literal bytes they reference (in sequence order).
struct TokenBlock {
  std::vector<Sequence> sequences;
  Bytes literals;
  std::uint32_t uncompressed_size = 0;

  /// Recomputes the uncompressed size from the sequences.
  std::uint32_t computed_size() const {
    std::uint64_t n = 0;
    for (const auto& s : sequences) n += s.literal_len + s.match_len;
    return static_cast<std::uint32_t>(n);
  }
};

}  // namespace gompresso::lz77
