#include "lz77/parser.hpp"

namespace gompresso::lz77 {

TokenBlock parse(ByteSpan block, const ParserOptions& options, ParseStats* stats) {
  return parse_block<HashMatcher>(block, options, stats);
}

TokenBlock parse_chained(ByteSpan block, const ParserOptions& options,
                         std::uint32_t chain_depth, ParseStats* stats) {
  return parse_block<ChainMatcher>(block, options, stats, chain_depth);
}

}  // namespace gompresso::lz77
