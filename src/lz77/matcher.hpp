// Sliding-window match finders.
//
// Two matchers are provided:
//
//  * HashMatcher — a single-slot trigram hash table, the design the paper
//    adopted from LZ4 (§IV-B: "the compressor of the LZ4 library uses a
//    hash table ... The key in the hash table is a string of three bytes
//    (trigram). The value is the most recent position"). It implements the
//    paper's "minimal staleness" replacement policy: an existing entry is
//    only replaced by a more recent occurrence when it has fallen more
//    than `staleness` bytes behind the cursor, which keeps entries that
//    are likely to lie below the warp high-water mark available to the
//    Dependency-Elimination parser.
//
//  * ChainMatcher — classic zlib-style hash chains with a configurable
//    search depth, used by compress() and the deflate_like / zstd_like
//    baselines where compression ratio (not parse speed) is the point of
//    comparison.
//
// Both matchers accept a start limit (candidate match positions must be
// < start_limit, normally the cursor) and an optional DeConstraint that
// restricts *source intervals* for Dependency Elimination (§IV-B).
//
// Table reuse across blocks (the encode fast path): blocks compress
// independently, so each new block must see an empty table — but zeroing
// 2^hash_bits entries per block is pure overhead. Both matchers therefore
// store *generation-biased* positions: entry = base + pos, where `base`
// advances past the previous block's positions on begin_block(). An entry
// below the current base belongs to an earlier generation and reads as
// empty, so the epoch bump IS the table clear. When the 32-bit bias would
// overflow (once per ~4 GiB parsed through one matcher) a real fill runs.
// Match decisions are bit-identical to a freshly constructed matcher.
//
// The hot methods (find/insert/match_length) are defined inline here so
// the parser template's per-byte probe loop inlines them; keeping them in
// a separate TU cost ~8% of single-thread parse throughput.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <limits>
#include <utility>
#include <vector>

#include "util/common.hpp"

namespace gompresso::lz77 {

inline constexpr std::uint32_t kNoLimit = std::numeric_limits<std::uint32_t>::max();

/// Dependency-Elimination source constraint for the current warp group.
///
/// DE forbids back-references "that would depend on other back-references
/// within the same warp" (§IV-B). A source byte is therefore usable when
/// it lies below the warp high-water mark (output of earlier groups,
/// fully resolved before this group's back-reference phase) or inside a
/// *literal* region of the current group (all of a group's literal
/// strings are written before any of its back-references, §III-B step b).
/// Only the output intervals of back-references already emitted in the
/// current group are forbidden; `forbidden` lists them in ascending
/// order (at most warp_size-1 entries).
struct DeConstraint {
  std::uint32_t warp_hwm = 0;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> forbidden;  // [start, end)

  /// Starts a new warp group at input position `hwm`.
  void begin_group(std::uint32_t hwm) {
    warp_hwm = hwm;
    forbidden.clear();
  }

  /// Records an emitted back-reference's output interval.
  void add_backref(std::uint32_t start, std::uint32_t end) {
    forbidden.emplace_back(start, end);
  }

  /// Longest usable contiguous source run starting at `c` (0 if `c`
  /// itself is forbidden). The run may extend past the cursor into the
  /// candidate match's own output (self-overlap is resolved by the lane's
  /// own forward copy).
  ///
  /// This is called for every match probe during a DE parse, so the two
  /// common cases are O(1): candidates past the group's last emitted
  /// back-reference (the RLE probe, fresh literals) and candidates below
  /// the first one (prior-group output).
  std::uint32_t allowed_cap(std::uint32_t c) const {
    if (forbidden.empty() || c >= forbidden.back().second) return kNoLimit;
    if (c < forbidden.front().first) return forbidden.front().first - c;
    for (const auto& [s, e] : forbidden) {
      if (c >= s && c < e) return 0;
      if (s > c) return s - c;  // sorted: first interval past c bounds the run
    }
    return kNoLimit;
  }
};

/// A match found in the window: absolute source position and length.
struct Match {
  std::uint32_t pos = 0;
  std::uint32_t len = 0;
  bool found() const { return len != 0; }
};

/// Configuration shared by the matchers.
struct MatcherConfig {
  std::uint32_t window_size = 8 * 1024;  // §V: 8 KB sliding window
  std::uint32_t min_match = 3;
  std::uint32_t max_match = 64;          // §V: 64-byte lookahead
  std::uint32_t staleness = 1024;        // §IV-B: 1 KB minimal staleness
  std::uint32_t hash_bits = 15;
  /// ChainMatcher tie-breaking: prefer the *oldest* occurrence among
  /// equal-length candidates. The paper's GPU compressor scans the whole
  /// window ("an exhaustive parallel matching technique", §III-A), which
  /// keeps the first — oldest — longest match; older sources both reduce
  /// intra-warp nesting depth under MRR and fall below the warp HWM more
  /// often under DE. Distance cost: none for the fixed-width byte codec,
  /// a few extra-bits for the bit codec's distance buckets.
  bool prefer_older_matches = false;

  /// Wholesale comparison (EncodeScratch reuses a matcher only while its
  /// config is unchanged — a new field here is picked up automatically).
  friend bool operator==(const MatcherConfig&, const MatcherConfig&) = default;
};

/// Longest common extension of input[a..] and input[b..], capped.
inline std::uint32_t match_length(ByteSpan input, std::uint32_t a, std::uint32_t b,
                                  std::uint32_t cap) {
  const std::uint8_t* pa = input.data() + a;
  const std::uint8_t* pb = input.data() + b;
  std::uint32_t len = 0;
  // 8-byte-at-a-time comparison, then byte tail.
  while (len + 8 <= cap) {
    std::uint64_t va, vb;
    std::memcpy(&va, pa + len, 8);
    std::memcpy(&vb, pb + len, 8);
    if (va != vb) {
      const std::uint64_t diff = va ^ vb;
      return len + static_cast<std::uint32_t>(std::countr_zero(diff) >> 3);
    }
    len += 8;
  }
  while (len < cap && pa[len] == pb[len]) ++len;
  return len;
}

namespace detail {

// Fibonacci-hash of the three bytes at `p` (the trigram key of §IV-B).
inline std::uint32_t trigram_hash(const std::uint8_t* p, unsigned hash_bits) {
  const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                          (static_cast<std::uint32_t>(p[1]) << 8) |
                          (static_cast<std::uint32_t>(p[2]) << 16);
  return (v * 2654435761u) >> (32 - hash_bits);
}

// Same hash via one 4-byte load when the input has the headroom (the
// common case everywhere but the last three positions of a block).
inline std::uint32_t trigram_hash_at(ByteSpan input, std::uint32_t pos,
                                     unsigned hash_bits) {
  if (std::size_t{pos} + 4 <= input.size()) {
    std::uint32_t v;
    std::memcpy(&v, input.data() + pos, 4);  // little-endian hosts
    return ((v & 0xFFFFFFu) * 2654435761u) >> (32 - hash_bits);
  }
  return trigram_hash(input.data() + pos, hash_bits);
}

}  // namespace detail

/// Single-slot trigram hash matcher with the minimal-staleness policy.
class HashMatcher {
 public:
  explicit HashMatcher(const MatcherConfig& config);

  /// Resets all table state (start of a new independent block) with a
  /// full fill. begin_block() is the cheap per-block variant.
  void reset();

  /// Starts a new independent block of `block_size` bytes: advances the
  /// generation bias so every existing entry reads as empty. Falls back
  /// to a full fill when the 32-bit bias would overflow. Returns true
  /// when the cheap epoch bump sufficed (the scratch reuse signal).
  bool begin_block(std::uint32_t block_size);

  /// Finds the longest match for input[pos..] subject to the limits.
  /// `de` (optional) applies the Dependency-Elimination source constraint.
  Match find(ByteSpan input, std::uint32_t pos, std::uint32_t start_limit,
             const DeConstraint* de = nullptr) const {
    Match best;
    if (pos + config_.min_match > input.size()) return best;
    const std::uint32_t max_cap = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(config_.max_match, input.size() - pos));

    auto consider = [&](std::uint32_t cand) {
      if (cand == kEmpty || cand >= start_limit) return;
      if (pos - cand > config_.window_size) return;
      std::uint32_t cap = max_cap;
      if (de != nullptr) cap = std::min<std::uint32_t>(cap, de->allowed_cap(cand));
      if (cap < config_.min_match || cap <= best.len) return;
      const std::uint32_t len = match_length(input, cand, pos, cap);
      if (len >= config_.min_match && len > best.len) {
        best.pos = cand;
        best.len = len;
      }
    };

    const std::uint32_t slot = table_[detail::trigram_hash_at(input, pos, config_.hash_bits)];
    consider(slot >= base_ ? slot - base_ : kEmpty);
    // RLE probe: the immediately preceding byte. Runs compress as
    // distance-1 overlapping matches; the minimal-staleness table
    // deliberately keeps *old* entries, so without this probe runs would
    // only be found when the table entry happens to be adjacent.
    if (pos >= 1) consider(pos - 1);
    return best;
  }

  /// Registers position `pos` in the table (subject to staleness policy).
  void insert(ByteSpan input, std::uint32_t pos) {
    if (pos + 3 > input.size()) return;
    std::uint32_t& slot = table_[detail::trigram_hash_at(input, pos, config_.hash_bits)];
    // Minimal-staleness replacement (§IV-B): keep the older entry unless
    // it has fallen more than `staleness` bytes behind the cursor. Older
    // entries are more likely to lie below the warp HWM and therefore to
    // be usable by the DE parser. staleness == 0 disables the policy
    // (always replace, the stock LZ4 behaviour). Entries below the
    // generation bias belong to an earlier block and read as empty.
    if (slot >= base_ && config_.staleness != 0) {
      if (pos - (slot - base_) <= config_.staleness) return;
    }
    slot = base_ + pos;
  }

  /// Inserts every position in [begin, end) (the staleness policy makes
  /// each slot update data-dependent, so this is the plain loop).
  void insert_span(ByteSpan input, std::uint32_t begin, std::uint32_t end) {
    for (std::uint32_t p = begin; p < end; ++p) insert(input, p);
  }

  const MatcherConfig& config() const { return config_; }

 private:
  MatcherConfig config_;
  std::vector<std::uint32_t> table_;  // 0 or generation-biased position
  std::uint32_t base_ = 1;            // current generation bias
  std::uint32_t block_span_ = 0;      // positions the current block may use
  static constexpr std::uint32_t kEmpty = kNoLimit;
};

/// Hash-chain matcher (zlib-style) with bounded chain walk.
class ChainMatcher {
 public:
  ChainMatcher(const MatcherConfig& config, std::uint32_t max_chain_depth);

  /// Full-fill reset; see HashMatcher::reset().
  void reset();

  /// Cheap generation reset; see HashMatcher::begin_block().
  bool begin_block(std::uint32_t block_size);

  Match find(ByteSpan input, std::uint32_t pos, std::uint32_t start_limit,
             const DeConstraint* de = nullptr) const {
    Match best;
    if (pos + config_.min_match > input.size()) return best;
    const std::uint32_t head = head_[detail::trigram_hash_at(input, pos, config_.hash_bits)];
    std::uint32_t cand = head >= base_ ? head - base_ : kEmpty;
    const std::uint32_t max_cap = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(config_.max_match, input.size() - pos));

    const bool prefer_older = config_.prefer_older_matches;
    std::uint32_t depth = max_chain_depth_;
    while (cand != kEmpty && depth-- > 0) {
      if (pos - cand > config_.window_size) break;  // chain left the window
      if (cand < start_limit) {
        std::uint32_t cap = max_cap;
        if (de != nullptr) cap = std::min<std::uint32_t>(cap, de->allowed_cap(cand));
        if (cap >= config_.min_match) {
          // Improvement guard (skipped under prefer_older, whose ">="
          // keeps equal-length candidates): a candidate that can beat
          // best.len must match at least best.len + 1 bytes, so its byte
          // at offset best.len must agree — one compare rejects most of
          // the chain without a full match_length walk. Results are
          // identical: rejected candidates could never update `best`.
          const bool plausible =
              prefer_older ||
              (cap > best.len && (best.len == 0 || input.data()[cand + best.len] ==
                                                       input.data()[pos + best.len]));
          if (plausible) {
            const std::uint32_t len = match_length(input, cand, pos, cap);
            // The chain runs recent -> old, so ">=" keeps the oldest
            // among equal-length candidates (exhaustive-matcher
            // behaviour).
            if (len >= config_.min_match &&
                (prefer_older ? len >= best.len : len > best.len)) {
              best.pos = cand;
              best.len = len;
              if (!prefer_older && len == max_cap) break;  // cannot improve
            }
          }
        }
      }
      const std::uint32_t link = prev_[cand & (config_.window_size - 1)];
      const std::uint32_t next = link >= base_ ? link - base_ : kEmpty;
      if (next != kEmpty && next >= cand) break;  // stale ring slot, stop
      cand = next;
    }
    // RLE probe (see HashMatcher::find).
    if (pos >= 1 && pos - 1 < start_limit) {
      std::uint32_t cap = max_cap;
      if (de != nullptr) cap = std::min<std::uint32_t>(cap, de->allowed_cap(pos - 1));
      if (cap >= config_.min_match && cap > best.len) {
        const std::uint32_t len = match_length(input, pos - 1, pos, cap);
        if (len >= config_.min_match && len > best.len) {
          best.pos = pos - 1;
          best.len = len;
        }
      }
    }
    return best;
  }

  void insert(ByteSpan input, std::uint32_t pos) {
    if (pos + 3 > input.size()) return;
    std::uint32_t& slot = head_[detail::trigram_hash_at(input, pos, config_.hash_bits)];
    prev_[pos & (config_.window_size - 1)] = slot;
    slot = base_ + pos;
  }

  /// Inserts every position in [begin, end) — identical table state to
  /// calling insert() per position. Consecutive trigrams share bytes, so
  /// one 8-byte load feeds six hash computations (the match-region
  /// dictionary update is a large share of parse time).
  void insert_span(ByteSpan input, std::uint32_t begin, std::uint32_t end) {
    const std::uint32_t mask = config_.window_size - 1;
    const unsigned shift = 32 - config_.hash_bits;
    std::uint32_t p = begin;
    while (p < end && std::size_t{p} + 8 <= input.size()) {
      std::uint64_t w;
      std::memcpy(&w, input.data() + p, 8);  // little-endian hosts
      const std::uint32_t lim = std::min<std::uint32_t>(end, p + 6);
      while (p < lim) {
        const std::uint32_t v = static_cast<std::uint32_t>(w) & 0xFFFFFFu;
        std::uint32_t& slot = head_[(v * 2654435761u) >> shift];
        prev_[p & mask] = slot;
        slot = base_ + p;
        w >>= 8;
        ++p;
      }
    }
    for (; p < end; ++p) insert(input, p);
  }

  const MatcherConfig& config() const { return config_; }

 private:
  MatcherConfig config_;
  std::uint32_t max_chain_depth_;
  std::vector<std::uint32_t> head_;  // hash -> generation-biased position
  std::vector<std::uint32_t> prev_;  // pos % window -> biased previous position
  std::uint32_t base_ = 1;           // current generation bias
  std::uint32_t block_span_ = 0;     // positions the current block may use
  static constexpr std::uint32_t kEmpty = kNoLimit;
};

}  // namespace gompresso::lz77
