// Sliding-window match finders.
//
// Two matchers are provided:
//
//  * HashMatcher — a single-slot trigram hash table, the design the paper
//    adopted from LZ4 (§IV-B: "the compressor of the LZ4 library uses a
//    hash table ... The key in the hash table is a string of three bytes
//    (trigram). The value is the most recent position"). It implements the
//    paper's "minimal staleness" replacement policy: an existing entry is
//    only replaced by a more recent occurrence when it has fallen more
//    than `staleness` bytes behind the cursor, which keeps entries that
//    are likely to lie below the warp high-water mark available to the
//    Dependency-Elimination parser.
//
//  * ChainMatcher — classic zlib-style hash chains with a configurable
//    search depth, used by the deflate_like / zstd_like baselines where
//    compression ratio (not parse speed) is the point of comparison.
//
// Both matchers accept a start limit (candidate match positions must be
// < start_limit, normally the cursor) and an optional DeConstraint that
// restricts *source intervals* for Dependency Elimination (§IV-B).
#pragma once

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "util/common.hpp"

namespace gompresso::lz77 {

inline constexpr std::uint32_t kNoLimit = std::numeric_limits<std::uint32_t>::max();

/// Dependency-Elimination source constraint for the current warp group.
///
/// DE forbids back-references "that would depend on other back-references
/// within the same warp" (§IV-B). A source byte is therefore usable when
/// it lies below the warp high-water mark (output of earlier groups,
/// fully resolved before this group's back-reference phase) or inside a
/// *literal* region of the current group (all of a group's literal
/// strings are written before any of its back-references, §III-B step b).
/// Only the output intervals of back-references already emitted in the
/// current group are forbidden; `forbidden` lists them in ascending
/// order (at most warp_size-1 entries).
struct DeConstraint {
  std::uint32_t warp_hwm = 0;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> forbidden;  // [start, end)

  /// Starts a new warp group at input position `hwm`.
  void begin_group(std::uint32_t hwm) {
    warp_hwm = hwm;
    forbidden.clear();
  }

  /// Records an emitted back-reference's output interval.
  void add_backref(std::uint32_t start, std::uint32_t end) {
    forbidden.emplace_back(start, end);
  }

  /// Longest usable contiguous source run starting at `c` (0 if `c`
  /// itself is forbidden). The run may extend past the cursor into the
  /// candidate match's own output (self-overlap is resolved by the lane's
  /// own forward copy).
  ///
  /// This is called for every match probe during a DE parse, so the two
  /// common cases are O(1): candidates past the group's last emitted
  /// back-reference (the RLE probe, fresh literals) and candidates below
  /// the first one (prior-group output).
  std::uint32_t allowed_cap(std::uint32_t c) const {
    if (forbidden.empty() || c >= forbidden.back().second) return kNoLimit;
    if (c < forbidden.front().first) return forbidden.front().first - c;
    for (const auto& [s, e] : forbidden) {
      if (c >= s && c < e) return 0;
      if (s > c) return s - c;  // sorted: first interval past c bounds the run
    }
    return kNoLimit;
  }
};

/// A match found in the window: absolute source position and length.
struct Match {
  std::uint32_t pos = 0;
  std::uint32_t len = 0;
  bool found() const { return len != 0; }
};

/// Configuration shared by the matchers.
struct MatcherConfig {
  std::uint32_t window_size = 8 * 1024;  // §V: 8 KB sliding window
  std::uint32_t min_match = 3;
  std::uint32_t max_match = 64;          // §V: 64-byte lookahead
  std::uint32_t staleness = 1024;        // §IV-B: 1 KB minimal staleness
  std::uint32_t hash_bits = 15;
  /// ChainMatcher tie-breaking: prefer the *oldest* occurrence among
  /// equal-length candidates. The paper's GPU compressor scans the whole
  /// window ("an exhaustive parallel matching technique", §III-A), which
  /// keeps the first — oldest — longest match; older sources both reduce
  /// intra-warp nesting depth under MRR and fall below the warp HWM more
  /// often under DE. Distance cost: none for the fixed-width byte codec,
  /// a few extra-bits for the bit codec's distance buckets.
  bool prefer_older_matches = false;
};

/// Single-slot trigram hash matcher with the minimal-staleness policy.
class HashMatcher {
 public:
  explicit HashMatcher(const MatcherConfig& config);

  /// Resets all table state (start of a new independent block).
  void reset();

  /// Finds the longest match for input[pos..] subject to the limits.
  /// `de` (optional) applies the Dependency-Elimination source constraint.
  Match find(ByteSpan input, std::uint32_t pos, std::uint32_t start_limit,
             const DeConstraint* de = nullptr) const;

  /// Registers position `pos` in the table (subject to staleness policy).
  void insert(ByteSpan input, std::uint32_t pos);

  const MatcherConfig& config() const { return config_; }

 private:
  std::uint32_t hash(ByteSpan input, std::uint32_t pos) const;

  MatcherConfig config_;
  std::vector<std::uint32_t> table_;  // kEmpty or absolute position
  static constexpr std::uint32_t kEmpty = kNoLimit;
};

/// Hash-chain matcher (zlib-style) with bounded chain walk.
class ChainMatcher {
 public:
  ChainMatcher(const MatcherConfig& config, std::uint32_t max_chain_depth);

  void reset();

  Match find(ByteSpan input, std::uint32_t pos, std::uint32_t start_limit,
             const DeConstraint* de = nullptr) const;

  void insert(ByteSpan input, std::uint32_t pos);

  const MatcherConfig& config() const { return config_; }

 private:
  std::uint32_t hash(ByteSpan input, std::uint32_t pos) const;

  MatcherConfig config_;
  std::uint32_t max_chain_depth_;
  std::vector<std::uint32_t> head_;  // hash -> most recent position
  std::vector<std::uint32_t> prev_;  // pos % window -> previous position
  static constexpr std::uint32_t kEmpty = kNoLimit;
};

/// Longest common extension of input[a..] and input[b..], capped.
std::uint32_t match_length(ByteSpan input, std::uint32_t a, std::uint32_t b,
                           std::uint32_t cap);

}  // namespace gompresso::lz77
