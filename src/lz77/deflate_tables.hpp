// DEFLATE (RFC 1951) length and distance bucket tables.
//
// Gompresso/Bit encodes match lengths and distances the way DEFLATE does:
// a Huffman-coded bucket symbol followed by a fixed number of raw extra
// bits. Using the RFC tables keeps the bit codec auditable against a
// well-known reference and lets the deflate_like baseline share the code.
#pragma once

#include <cstdint>

namespace gompresso::lz77 {

inline constexpr unsigned kNumLengthCodes = 29;    // lengths 3..258
inline constexpr unsigned kNumDistanceCodes = 30;  // distances 1..32768
inline constexpr std::uint32_t kMinMatch = 3;
inline constexpr std::uint32_t kMaxMatch = 258;
inline constexpr std::uint32_t kMaxDistance = 32768;

/// A (bucket, extra bits) encoding of a value.
struct BucketCode {
  std::uint16_t code = 0;        // bucket index within its alphabet
  std::uint8_t extra_bits = 0;   // number of raw bits that follow
  std::uint16_t extra_value = 0; // value of those raw bits
};

/// Encodes a match length (3..258) as a length bucket (0..28).
BucketCode encode_length(std::uint32_t length);

/// Decodes a length bucket + extra bits back to a match length.
std::uint32_t decode_length(std::uint32_t code, std::uint32_t extra);

/// Number of extra bits for a length bucket.
unsigned length_extra_bits(std::uint32_t code);

/// Encodes a match distance (1..32768) as a distance bucket (0..29).
BucketCode encode_distance(std::uint32_t distance);

/// Decodes a distance bucket + extra bits back to a distance.
std::uint32_t decode_distance(std::uint32_t code, std::uint32_t extra);

/// Number of extra bits for a distance bucket.
unsigned distance_extra_bits(std::uint32_t code);

}  // namespace gompresso::lz77
