// DEFLATE (RFC 1951) length and distance bucket tables.
//
// Gompresso/Bit encodes match lengths and distances the way DEFLATE does:
// a Huffman-coded bucket symbol followed by a fixed number of raw extra
// bits. Using the RFC tables keeps the bit codec auditable against a
// well-known reference and lets the deflate_like baseline share the code.
//
// The bucket maps are exposed two ways:
//   * encode_length()/encode_distance() return the full BucketCode
//     (bucket, extra bit count, extra value) — the readable interface the
//     baselines and tests use.
//   * length_code()/distance_code() are the constexpr hot-path accessors:
//     a dense 256-entry table for lengths and a closed-form bit-width
//     computation for distances (no 32 KiB dense table, no branchy
//     bucket search). The encoder's fused emit tables are built on top of
//     these (core/encode_tables).
#pragma once

#include <array>
#include <bit>
#include <cstdint>

namespace gompresso::lz77 {

inline constexpr unsigned kNumLengthCodes = 29;    // lengths 3..258
inline constexpr unsigned kNumDistanceCodes = 30;  // distances 1..32768
inline constexpr std::uint32_t kMinMatch = 3;
inline constexpr std::uint32_t kMaxMatch = 258;
inline constexpr std::uint32_t kMaxDistance = 32768;

/// A (bucket, extra bits) encoding of a value.
struct BucketCode {
  std::uint16_t code = 0;        // bucket index within its alphabet
  std::uint8_t extra_bits = 0;   // number of raw bits that follow
  std::uint16_t extra_value = 0; // value of those raw bits
};

namespace detail {

// RFC 1951 §3.2.5, table for codes 257..285 re-indexed to 0..28.
inline constexpr std::array<std::uint16_t, kNumLengthCodes> kLengthBase = {
    3,  4,  5,  6,  7,  8,  9,  10, 11,  13,  15,  17,  19,  23, 27,
    31, 35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258};
inline constexpr std::array<std::uint8_t, kNumLengthCodes> kLengthExtra = {
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0};

inline constexpr std::array<std::uint16_t, kNumDistanceCodes> kDistBase = {
    1,    2,    3,    4,    5,    7,     9,     13,    17,   25,
    33,   49,   65,   97,   129,  193,   257,   385,   513,  769,
    1025, 1537, 2049, 3073, 4097, 6145,  8193,  12289, 16385, 24577};
inline constexpr std::array<std::uint8_t, kNumDistanceCodes> kDistExtra = {
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13};

// Dense constexpr lookup: length - kMinMatch -> bucket (0..28).
inline constexpr auto kLengthCodeTable = [] {
  std::array<std::uint8_t, kMaxMatch - kMinMatch + 1> table{};
  for (unsigned c = 0; c < kNumLengthCodes; ++c) {
    const std::uint32_t lo = kLengthBase[c];
    const std::uint32_t hi = c + 1 < kNumLengthCodes ? kLengthBase[c + 1] : kMaxMatch + 1;
    for (std::uint32_t len = lo; len < hi && len <= kMaxMatch; ++len) {
      table[len - kMinMatch] = static_cast<std::uint8_t>(c);
    }
  }
  table[kMaxMatch - kMinMatch] = 28;  // length 258 has its own bucket
  return table;
}();

}  // namespace detail

/// Hot-path length bucket: dense constexpr table, no search.
/// Precondition: kMinMatch <= length <= kMaxMatch.
constexpr std::uint32_t length_code(std::uint32_t length) {
  return detail::kLengthCodeTable[length - kMinMatch];
}

/// Hot-path distance bucket via bit width (the DEFLATE buckets are two
/// per power of two): for d - 1 >= 4, bucket = 2*(w-1) + next bit below
/// the top, where w = bit_width(d - 1). Closed form — no dense 32 KiB
/// table to pull through the cache, no branchy search.
/// Precondition: 1 <= distance <= kMaxDistance.
constexpr std::uint32_t distance_code(std::uint32_t distance) {
  const std::uint32_t d = distance - 1;
  if (d < 4) return d;
  const unsigned w = std::bit_width(d);  // >= 3
  return 2 * (w - 1) + ((d >> (w - 2)) & 1);
}

/// Base value (smallest member) of a length bucket.
constexpr std::uint32_t length_base(std::uint32_t code) {
  return detail::kLengthBase[code];
}

/// Base value (smallest member) of a distance bucket.
constexpr std::uint32_t distance_base(std::uint32_t code) {
  return detail::kDistBase[code];
}

/// Encodes a match length (3..258) as a length bucket (0..28).
BucketCode encode_length(std::uint32_t length);

/// Decodes a length bucket + extra bits back to a match length.
std::uint32_t decode_length(std::uint32_t code, std::uint32_t extra);

/// Number of extra bits for a length bucket.
unsigned length_extra_bits(std::uint32_t code);

/// Encodes a match distance (1..32768) as a distance bucket (0..29).
BucketCode encode_distance(std::uint32_t distance);

/// Decodes a distance bucket + extra bits back to a distance.
std::uint32_t decode_distance(std::uint32_t code, std::uint32_t extra);

/// Number of extra bits for a distance bucket.
unsigned distance_extra_bits(std::uint32_t code);

}  // namespace gompresso::lz77
