// Greedy LZ77 sequence parser, with optional Dependency Elimination.
//
// This is the compression-side half of the paper's §IV. In normal mode it
// is a standard greedy LZ77 parse producing (literal string,
// back-reference) sequences. With `dependency_elimination` enabled it
// implements Fig. 7: for every group of `group_size` (= warp size = 32)
// sequences that will later be decompressed by one warp, matches may only
// reference data strictly below the warp high-water mark (warpHWM) — the
// input cursor position at which the group started. This guarantees that
// no back-reference depends on the output of another back-reference
// resolved by the same warp group, so decompression resolves every group
// in a single round.
//
// Two entry points per matcher type:
//   * parse_block() — constructs a fresh matcher and returns a fresh
//     TokenBlock (the original interface, used by the baselines).
//   * parse_block_into() — reuses a caller-owned matcher (cheap
//     generational reset, see matcher.hpp) and a caller-owned TokenBlock
//     (cleared, capacity kept). This is the encode fast path's
//     allocation-free variant; it produces bit-identical sequences.
#pragma once

#include <cstdint>

#include "lz77/matcher.hpp"
#include "lz77/sequence.hpp"

namespace gompresso::lz77 {

/// Parser configuration. `group_size` only matters with DE enabled.
struct ParserOptions {
  MatcherConfig matcher;
  bool dependency_elimination = false;
  std::uint32_t group_size = 32;
  /// When non-zero, a literal run reaching this length is closed with a
  /// zero-match sequence (the byte codec's fixed-width records bound the
  /// literal-length field). Split sequences occupy a decoder lane and are
  /// counted against the warp group like any other sequence.
  std::uint32_t max_literal_run = 0;
};

/// Statistics gathered during a parse (used by the DE benchmarks).
/// Gathering them is not free: with DE enabled, every literal position
/// runs a second, unconstrained matcher probe to count
/// matches_rejected_by_hwm — so pass stats = nullptr on the hot path.
struct ParseStats {
  std::uint64_t sequences = 0;
  std::uint64_t match_bytes = 0;
  std::uint64_t literal_bytes = 0;
  std::uint64_t matches_rejected_by_hwm = 0;  // DE only: matches shortened/lost
};

/// Parses one data block into sequences using the supplied matcher type.
/// The matcher is constructed fresh per block (blocks compress
/// independently, §III-A).
template <typename Matcher, typename... MatcherArgs>
TokenBlock parse_block(ByteSpan block, const ParserOptions& options,
                       ParseStats* stats, MatcherArgs&&... matcher_args);

/// Parses one data block into `out` (cleared, capacity reused) with a
/// caller-owned matcher reset via its cheap generational begin_block().
/// `de_ws`, when non-null, is a caller-owned DeConstraint whose interval
/// storage is reused across blocks (the last piece of an allocation-free
/// steady state). Decisions are identical to parse_block with a fresh
/// matcher.
template <typename Matcher>
void parse_block_into(ByteSpan block, const ParserOptions& options, Matcher& matcher,
                      TokenBlock& out, ParseStats* stats = nullptr,
                      DeConstraint* de_ws = nullptr);

/// Convenience wrapper using the single-slot HashMatcher (the Gompresso
/// configuration).
TokenBlock parse(ByteSpan block, const ParserOptions& options,
                 ParseStats* stats = nullptr);

/// Convenience wrapper using the ChainMatcher with the given depth (the
/// deflate_like / zstd_like baseline configuration).
TokenBlock parse_chained(ByteSpan block, const ParserOptions& options,
                         std::uint32_t chain_depth, ParseStats* stats = nullptr);

// ---------------------------------------------------------------------------
// Template implementation

template <typename Matcher>
void parse_block_into(ByteSpan block, const ParserOptions& options, Matcher& matcher,
                      TokenBlock& out, ParseStats* stats, DeConstraint* de_ws) {
  check(block.size() <= kNoLimit / 2, "parse: block too large");
  matcher.begin_block(static_cast<std::uint32_t>(block.size()));

  out.sequences.clear();
  out.literals.clear();
  out.uncompressed_size = static_cast<std::uint32_t>(block.size());
  if (out.literals.capacity() < block.size() / 4) out.literals.reserve(block.size() / 4);

  const std::uint32_t size = static_cast<std::uint32_t>(block.size());
  const bool de = options.dependency_elimination;
  std::uint32_t pos = 0;
  std::uint32_t literal_start = 0;
  // Fig. 7 line 3: the warpHWM is fixed at the input position where the
  // current 32-sequence group starts (== the group's output base during
  // decompression) and only advances when a group completes. The
  // constraint additionally tracks the output intervals of the group's
  // already-emitted back-references: those are the only forbidden source
  // bytes, since all of a group's *literals* are written before any of
  // its back-references resolve (§III-B).
  DeConstraint local_constraint;
  DeConstraint& constraint = de_ws != nullptr ? *de_ws : local_constraint;
  constraint.begin_group(0);       // fresh per-block state, storage reused
  std::uint32_t seq_in_group = 0;  // Fig. 7 loop counter `s`

  // Closes the current literal string with the given match (possibly
  // none) and advances the group bookkeeping.
  auto emit_sequence = [&](std::uint32_t match_len, std::uint32_t match_dist) {
    Sequence seq;
    seq.literal_len = pos - literal_start;
    seq.match_len = match_len;
    seq.match_dist = match_dist;
    out.sequences.push_back(seq);
    out.literals.insert(out.literals.end(), block.begin() + literal_start,
                        block.begin() + pos);
    if (de && match_len != 0) constraint.add_backref(pos, pos + match_len);
    pos += match_len;
    literal_start = pos;
    if (++seq_in_group == options.group_size) {
      seq_in_group = 0;
      constraint.begin_group(pos);  // next group starts at the cursor
    }
    if (stats) {
      ++stats->sequences;
      stats->match_bytes += match_len;
    }
  };

  while (pos < size) {
    const Match match =
        matcher.find(block, pos, /*start_limit=*/pos, de ? &constraint : nullptr);
    if (match.found()) {
      // Fig. 7 line 11: update the dictionary with the back-reference.
      matcher.insert_span(block, pos, pos + match.len);
      emit_sequence(match.len, pos - match.pos);
    } else {
      if (stats && de) {
        // Count positions where a match exists without the DE constraint
        // but not with it (the ratio cost of DE).
        if (matcher.find(block, pos, pos, nullptr).found()) {
          ++stats->matches_rejected_by_hwm;
        }
      }
      // Fig. 7 lines 16-19: extend the literal string.
      matcher.insert(block, pos);
      ++pos;
      if (stats) ++stats->literal_bytes;
      if (options.max_literal_run != 0 &&
          pos - literal_start == options.max_literal_run && pos < size) {
        emit_sequence(0, 0);  // split an over-long literal run
      }
    }
  }
  // Terminating sequence: the tail literal string with no back-reference.
  emit_sequence(0, 0);
}

template <typename Matcher, typename... MatcherArgs>
TokenBlock parse_block(ByteSpan block, const ParserOptions& options,
                       ParseStats* stats, MatcherArgs&&... matcher_args) {
  Matcher matcher(options.matcher, std::forward<MatcherArgs>(matcher_args)...);
  TokenBlock out;
  parse_block_into(block, options, matcher, out, stats);
  return out;
}

}  // namespace gompresso::lz77
