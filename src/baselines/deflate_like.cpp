#include "baselines/deflate_like.hpp"

#include "bitstream/bit_reader.hpp"
#include "bitstream/bit_writer.hpp"
#include "huffman/code_builder.hpp"
#include "huffman/decoder.hpp"
#include "huffman/encoder.hpp"
#include "huffman/histogram.hpp"
#include "huffman/serial.hpp"
#include "lz77/deflate_tables.hpp"
#include "lz77/parser.hpp"
#include "util/varint.hpp"

namespace gompresso::baselines {
namespace {

constexpr std::size_t kLitLenAlphabet = 286;
constexpr std::uint16_t kEndSymbol = 256;
constexpr std::uint16_t kFirstLengthSymbol = 257;
constexpr unsigned kMaxCodeLen = 15;  // RFC 1951 limit (no CWL restriction)

}  // namespace

Bytes DeflateLike::compress_block(ByteSpan input) const {
  Bytes out;
  put_varint(out, input.size());
  if (input.empty()) return out;

  lz77::ParserOptions popt;
  popt.matcher.window_size = 32 * 1024;
  popt.matcher.min_match = 3;
  popt.matcher.max_match = 258;
  popt.matcher.staleness = 0;
  const lz77::TokenBlock tokens = lz77::parse_chained(input, popt, chain_depth_);

  huffman::Histogram litlen_hist(kLitLenAlphabet);
  huffman::Histogram dist_hist(lz77::kNumDistanceCodes);
  for (const auto b : tokens.literals) litlen_hist.add(b);
  for (const auto& s : tokens.sequences) {
    if (s.match_len == 0) {
      litlen_hist.add(kEndSymbol);
    } else {
      litlen_hist.add(kFirstLengthSymbol + lz77::encode_length(s.match_len).code);
      dist_hist.add(lz77::encode_distance(s.match_dist).code);
    }
  }
  const auto litlen_lengths =
      huffman::build_code_lengths(litlen_hist.counts(), kMaxCodeLen);
  const auto dist_lengths = huffman::build_code_lengths(dist_hist.counts(), kMaxCodeLen);
  const huffman::Encoder litlen_enc(huffman::assign_canonical_codes(litlen_lengths));
  const huffman::Encoder dist_enc(huffman::assign_canonical_codes(dist_lengths));

  BitWriter bits;
  huffman::write_code_lengths(litlen_lengths, bits);
  huffman::write_code_lengths(dist_lengths, bits);
  const std::uint8_t* lit = tokens.literals.data();
  for (const auto& s : tokens.sequences) {
    for (std::uint32_t i = 0; i < s.literal_len; ++i) litlen_enc.encode(lit[i], bits);
    lit += s.literal_len;
    if (s.match_len == 0) {
      litlen_enc.encode(kEndSymbol, bits);
    } else {
      const auto lc = lz77::encode_length(s.match_len);
      litlen_enc.encode(kFirstLengthSymbol + lc.code, bits);
      bits.write(lc.extra_value, lc.extra_bits);
      const auto dc = lz77::encode_distance(s.match_dist);
      dist_enc.encode(dc.code, bits);
      bits.write(dc.extra_value, dc.extra_bits);
    }
  }
  const Bytes stream = bits.finish();
  out.insert(out.end(), stream.begin(), stream.end());
  return out;
}

Bytes DeflateLike::decompress_block(ByteSpan payload) const {
  std::size_t pos = 0;
  const std::uint64_t n = get_varint(payload, pos);
  check(n <= (1ull << 32), "zlib-like: implausible size");
  Bytes out;
  out.reserve(static_cast<std::size_t>(n));
  if (n == 0) return out;

  BitReader bits(payload, 8 * pos);
  const auto litlen_lengths = huffman::read_code_lengths(kLitLenAlphabet, bits);
  const auto dist_lengths =
      huffman::read_code_lengths(lz77::kNumDistanceCodes, bits);
  const huffman::Decoder litlen_dec(litlen_lengths, kMaxCodeLen);
  const huffman::Decoder dist_dec(dist_lengths, kMaxCodeLen);

  // Fully sequential decode: each codeword's end position gates the next
  // codeword's start (the intra-block serial dependency of Inflate).
  while (true) {
    const std::uint16_t sym = litlen_dec.decode(bits);
    check(sym != huffman::Decoder::kInvalidSymbol, "zlib-like: invalid lit/len code");
    check(!bits.overflowed(), "zlib-like: bitstream overrun");
    if (sym < 256) {
      out.push_back(static_cast<std::uint8_t>(sym));
      continue;
    }
    if (sym == kEndSymbol) break;
    const std::uint32_t lcode = sym - kFirstLengthSymbol;
    check(lcode < lz77::kNumLengthCodes, "zlib-like: bad length symbol");
    const std::uint32_t len =
        lz77::decode_length(lcode, bits.read(lz77::length_extra_bits(lcode)));
    const std::uint16_t dsym = dist_dec.decode(bits);
    check(dsym != huffman::Decoder::kInvalidSymbol, "zlib-like: invalid distance code");
    const std::uint32_t dist =
        lz77::decode_distance(dsym, bits.read(lz77::distance_extra_bits(dsym)));
    check(dist >= 1 && dist <= out.size(), "zlib-like: bad distance");
    std::size_t src = out.size() - dist;
    for (std::uint32_t i = 0; i < len; ++i) out.push_back(out[src + i]);
    check(out.size() <= n, "zlib-like: output overrun");
  }
  check(out.size() == n, "zlib-like: size mismatch");
  return out;
}

}  // namespace gompresso::baselines

namespace gompresso::baselines {
std::unique_ptr<Codec> make_deflate_like() { return std::make_unique<DeflateLike>(); }
}  // namespace gompresso::baselines
