#include "baselines/snappy_like.hpp"

#include <algorithm>

#include "lz77/matcher.hpp"
#include "util/varint.hpp"

namespace gompresso::baselines {
namespace {

// Tag low bits (Snappy conventions).
constexpr std::uint8_t kTagLiteral = 0;
constexpr std::uint8_t kTagCopy1 = 1;  // len 4..11, offset < 2^11
constexpr std::uint8_t kTagCopy2 = 2;  // len 1..64, offset < 2^16

void emit_literal(Bytes& out, ByteSpan input, std::size_t start, std::size_t len) {
  while (len > 0) {
    const std::size_t chunk = std::min<std::size_t>(len, 16384);
    if (chunk <= 60) {
      out.push_back(static_cast<std::uint8_t>(((chunk - 1) << 2) | kTagLiteral));
    } else if (chunk <= 256) {
      out.push_back(static_cast<std::uint8_t>((60 << 2) | kTagLiteral));
      out.push_back(static_cast<std::uint8_t>(chunk - 1));
    } else {
      out.push_back(static_cast<std::uint8_t>((61 << 2) | kTagLiteral));
      out.push_back(static_cast<std::uint8_t>((chunk - 1) & 0xFF));
      out.push_back(static_cast<std::uint8_t>((chunk - 1) >> 8));
    }
    out.insert(out.end(), input.begin() + static_cast<std::ptrdiff_t>(start),
               input.begin() + static_cast<std::ptrdiff_t>(start + chunk));
    start += chunk;
    len -= chunk;
  }
}

void emit_copy(Bytes& out, std::uint32_t offset, std::uint32_t len) {
  // Prefer the compact copy1 form when it fits; split long matches.
  while (len > 0) {
    if (len >= 4 && len <= 11 && offset < 2048) {
      out.push_back(static_cast<std::uint8_t>(((offset >> 8) << 5) |
                                              ((len - 4) << 2) | kTagCopy1));
      out.push_back(static_cast<std::uint8_t>(offset & 0xFF));
      return;
    }
    const std::uint32_t chunk = std::min<std::uint32_t>(len, 64);
    if (len - chunk > 0 && len - chunk < 4) {
      // Avoid leaving an un-emittable 1..3 byte tail.
      const std::uint32_t adjusted = chunk - (4 - (len - chunk));
      out.push_back(static_cast<std::uint8_t>(((adjusted - 1) << 2) | kTagCopy2));
      out.push_back(static_cast<std::uint8_t>(offset & 0xFF));
      out.push_back(static_cast<std::uint8_t>(offset >> 8));
      len -= adjusted;
      continue;
    }
    out.push_back(static_cast<std::uint8_t>(((chunk - 1) << 2) | kTagCopy2));
    out.push_back(static_cast<std::uint8_t>(offset & 0xFF));
    out.push_back(static_cast<std::uint8_t>(offset >> 8));
    len -= chunk;
  }
}

}  // namespace

Bytes SnappyLike::compress_block(ByteSpan input) const {
  Bytes out;
  put_varint(out, input.size());
  if (input.empty()) return out;

  lz77::MatcherConfig cfg;
  cfg.window_size = 32 * 1024;
  cfg.min_match = 4;
  cfg.max_match = 64;  // Snappy's native copy limit
  cfg.staleness = 0;
  lz77::HashMatcher matcher(cfg);

  check(input.size() < lz77::kNoLimit / 2, "snappy-like: block too large");
  const std::uint32_t size = static_cast<std::uint32_t>(input.size());
  std::uint32_t pos = 0;
  std::uint32_t literal_start = 0;
  while (pos < size) {
    const lz77::Match m = matcher.find(input, pos, pos);
    if (m.found()) {
      emit_literal(out, input, literal_start, pos - literal_start);
      emit_copy(out, pos - m.pos, m.len);
      for (std::uint32_t p = pos; p < pos + m.len; ++p) matcher.insert(input, p);
      pos += m.len;
      literal_start = pos;
    } else {
      matcher.insert(input, pos);
      ++pos;
    }
  }
  emit_literal(out, input, literal_start, pos - literal_start);
  return out;
}

Bytes SnappyLike::decompress_block(ByteSpan payload) const {
  std::size_t pos = 0;
  const std::uint64_t n = get_varint(payload, pos);
  check(n <= (1ull << 32), "snappy-like: implausible size");
  Bytes out;
  out.reserve(static_cast<std::size_t>(n));
  while (out.size() < n) {
    check(pos < payload.size(), "snappy-like: truncated tag");
    const std::uint8_t tag = payload[pos++];
    const std::uint8_t kind = tag & 3;
    if (kind == kTagLiteral) {
      std::uint32_t len = (tag >> 2) + 1;
      if (len == 61) {
        check(pos < payload.size(), "snappy-like: truncated literal length");
        len = payload[pos++] + 1;
      } else if (len == 62) {
        check(pos + 2 <= payload.size(), "snappy-like: truncated literal length");
        len = (static_cast<std::uint32_t>(payload[pos]) |
               (static_cast<std::uint32_t>(payload[pos + 1]) << 8)) +
              1;
        pos += 2;
      } else {
        check(len <= 60, "snappy-like: bad literal tag");
      }
      check(pos + len <= payload.size(), "snappy-like: truncated literals");
      out.insert(out.end(), payload.begin() + static_cast<std::ptrdiff_t>(pos),
                 payload.begin() + static_cast<std::ptrdiff_t>(pos + len));
      pos += len;
    } else if (kind == kTagCopy1) {
      check(pos < payload.size(), "snappy-like: truncated copy1");
      const std::uint32_t len = ((tag >> 2) & 7) + 4;
      const std::uint32_t offset =
          (static_cast<std::uint32_t>(tag >> 5) << 8) | payload[pos++];
      check(offset >= 1 && offset <= out.size(), "snappy-like: bad offset");
      std::size_t src = out.size() - offset;
      for (std::uint32_t i = 0; i < len; ++i) out.push_back(out[src + i]);
    } else if (kind == kTagCopy2) {
      check(pos + 2 <= payload.size(), "snappy-like: truncated copy2");
      const std::uint32_t len = (tag >> 2) + 1;
      const std::uint32_t offset = static_cast<std::uint32_t>(payload[pos]) |
                                   (static_cast<std::uint32_t>(payload[pos + 1]) << 8);
      pos += 2;
      check(offset >= 1 && offset <= out.size(), "snappy-like: bad offset");
      std::size_t src = out.size() - offset;
      for (std::uint32_t i = 0; i < len; ++i) out.push_back(out[src + i]);
    } else {
      // Data-level failure in an untrusted payload: corruption, not
      // config — callers classify by type (PR-6 taxonomy).
      throw CorruptionError("snappy-like: unsupported tag kind");
    }
  }
  check(out.size() == n, "snappy-like: size mismatch");
  return out;
}

}  // namespace gompresso::baselines

namespace gompresso::baselines {
std::unique_ptr<Codec> make_snappy_like() { return std::make_unique<SnappyLike>(); }
}  // namespace gompresso::baselines
