// LZ4-class baseline: greedy byte-aligned LZ77 with nibble-packed tokens.
//
// Mirrors the LZ4 block format's structure: a token byte holding the
// literal length (high nibble) and match length - 4 (low nibble), each
// extended with 255-chained bytes; raw literals; a 2-byte little-endian
// offset. Decoding is a branch-light sequential loop — the fastest class
// of CPU decompressor, which is why LZ4 anchors the right side of the
// speed axis in Fig. 13.
#pragma once

#include "baselines/codec.hpp"

namespace gompresso::baselines {

class Lz4Like final : public Codec {
 public:
  std::string name() const override { return "lz4-like"; }
  Bytes compress_block(ByteSpan input) const override;
  Bytes decompress_block(ByteSpan payload) const override;
};

}  // namespace gompresso::baselines
