// Zstd-class baseline: hash-chain LZ77 plus a tANS entropy stage.
//
// "Zstd implements a different coding algorithm on top of LZ-compression
// that is typically faster than Huffman decoding, and we include it in
// our measurements for completeness." (§V-D)
//
// Structure mirrors Zstd's block anatomy in simplified form: the literal
// stream is tANS-coded (src/ans); the sequence stream (literal lengths,
// match lengths, offsets) is stored as packed varints rather than
// FSE-interleaved — a documented simplification that keeps the decode
// cost profile (table-driven literal decode + sequential LZ apply).
#pragma once

#include "baselines/codec.hpp"

namespace gompresso::baselines {

class ZstdLike final : public Codec {
 public:
  explicit ZstdLike(std::uint32_t chain_depth = 16) : chain_depth_(chain_depth) {}

  std::string name() const override { return "zstd-like"; }
  Bytes compress_block(ByteSpan input) const override;
  Bytes decompress_block(ByteSpan payload) const override;

 private:
  std::uint32_t chain_depth_;
};

}  // namespace gompresso::baselines
