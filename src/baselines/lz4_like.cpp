#include "baselines/lz4_like.hpp"

#include <cstring>

#include "lz77/matcher.hpp"
#include "util/varint.hpp"

namespace gompresso::baselines {
namespace {

constexpr std::uint32_t kMinMatch = 4;

void put_length(Bytes& out, std::uint32_t len) {
  // 255-chained extension bytes (LZ4 convention).
  while (len >= 255) {
    out.push_back(255);
    len -= 255;
  }
  out.push_back(static_cast<std::uint8_t>(len));
}

std::uint32_t get_length(ByteSpan in, std::size_t& pos) {
  std::uint32_t len = 0;
  while (true) {
    check(pos < in.size(), "lz4-like: truncated length");
    const std::uint8_t b = in[pos++];
    len += b;
    if (b != 255) return len;
  }
}

}  // namespace

Bytes Lz4Like::compress_block(ByteSpan input) const {
  Bytes out;
  put_varint(out, input.size());
  if (input.empty()) return out;

  lz77::MatcherConfig cfg;
  cfg.window_size = 32 * 1024;
  cfg.min_match = kMinMatch;
  cfg.max_match = 258;
  cfg.staleness = 0;  // stock LZ4: always keep the most recent position
  lz77::HashMatcher matcher(cfg);

  check(input.size() < lz77::kNoLimit / 2, "lz4-like: block too large");
  const std::uint32_t size = static_cast<std::uint32_t>(input.size());
  std::uint32_t pos = 0;
  std::uint32_t literal_start = 0;
  while (pos < size) {
    const lz77::Match m = matcher.find(input, pos, pos);
    if (m.found()) {
      const std::uint32_t lit_len = pos - literal_start;
      const std::uint32_t ml = m.len - kMinMatch;
      const std::uint8_t token =
          static_cast<std::uint8_t>((std::min<std::uint32_t>(lit_len, 15) << 4) |
                                    std::min<std::uint32_t>(ml, 15));
      out.push_back(token);
      if (lit_len >= 15) put_length(out, lit_len - 15);
      out.insert(out.end(), input.begin() + literal_start, input.begin() + pos);
      const std::uint32_t offset = pos - m.pos;
      out.push_back(static_cast<std::uint8_t>(offset));
      out.push_back(static_cast<std::uint8_t>(offset >> 8));
      if (ml >= 15) put_length(out, ml - 15);
      for (std::uint32_t p = pos; p < pos + m.len; ++p) matcher.insert(input, p);
      pos += m.len;
      literal_start = pos;
    } else {
      matcher.insert(input, pos);
      ++pos;
    }
  }
  // Final literals-only sequence (token with zero match nibble, no offset).
  const std::uint32_t lit_len = pos - literal_start;
  out.push_back(static_cast<std::uint8_t>(std::min<std::uint32_t>(lit_len, 15) << 4));
  if (lit_len >= 15) put_length(out, lit_len - 15);
  out.insert(out.end(), input.begin() + literal_start, input.begin() + pos);
  return out;
}

Bytes Lz4Like::decompress_block(ByteSpan payload) const {
  std::size_t pos = 0;
  const std::uint64_t n = get_varint(payload, pos);
  check(n <= (1ull << 32), "lz4-like: implausible size");
  Bytes out;
  out.reserve(static_cast<std::size_t>(n));
  while (out.size() < n) {
    check(pos < payload.size(), "lz4-like: truncated token");
    const std::uint8_t token = payload[pos++];
    std::uint32_t lit_len = token >> 4;
    if (lit_len == 15) lit_len += get_length(payload, pos);
    check(pos + lit_len <= payload.size(), "lz4-like: truncated literals");
    out.insert(out.end(), payload.begin() + static_cast<std::ptrdiff_t>(pos),
               payload.begin() + static_cast<std::ptrdiff_t>(pos + lit_len));
    pos += lit_len;
    if (out.size() >= n) break;  // final literals-only sequence
    check(pos + 2 <= payload.size(), "lz4-like: truncated offset");
    const std::uint32_t offset = static_cast<std::uint32_t>(payload[pos]) |
                                 (static_cast<std::uint32_t>(payload[pos + 1]) << 8);
    pos += 2;
    std::uint32_t match_len = token & 0xF;
    if (match_len == 15) match_len += get_length(payload, pos);
    match_len += kMinMatch;
    check(offset >= 1 && offset <= out.size(), "lz4-like: bad offset");
    std::size_t src = out.size() - offset;
    for (std::uint32_t i = 0; i < match_len; ++i) out.push_back(out[src + i]);
  }
  check(out.size() == n, "lz4-like: size mismatch");
  return out;
}

}  // namespace gompresso::baselines

namespace gompresso::baselines {
std::unique_ptr<Codec> make_lz4_like() { return std::make_unique<Lz4Like>(); }
}  // namespace gompresso::baselines
