#include "baselines/block_parallel.hpp"

#include <algorithm>

#include "util/crc32.hpp"
#include "util/thread_pool.hpp"
#include "util/varint.hpp"

namespace gompresso::baselines {
namespace {

constexpr std::uint32_t kFrameMagic = 0x42504C47u;  // "GLPB"

void run_indexed(std::size_t count, std::size_t num_threads,
                 const std::function<void(std::size_t)>& fn) {
  if (num_threads == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
  } else if (num_threads == 0) {
    default_pool().parallel_for(count, fn);
  } else {
    ThreadPool pool(num_threads);
    pool.parallel_for(count, fn);
  }
}

}  // namespace

Bytes compress_parallel(const Codec& codec, ByteSpan input, std::uint32_t block_size,
                        std::size_t num_threads) {
  check(block_size >= 1024, "block_parallel: block size too small");
  const std::size_t num_blocks = input.empty() ? 0 : div_ceil(input.size(), std::size_t{block_size});
  std::vector<Bytes> payloads(num_blocks);

  run_indexed(num_blocks, num_threads, [&](std::size_t b) {
    const std::size_t begin = b * block_size;
    const std::size_t len = std::min<std::size_t>(block_size, input.size() - begin);
    const ByteSpan block = input.subspan(begin, len);
    Bytes payload;
    put_u32le(payload, crc32(block));
    const Bytes encoded = codec.compress_block(block);
    payload.insert(payload.end(), encoded.begin(), encoded.end());
    payloads[b] = std::move(payload);
  });

  Bytes out;
  put_u32le(out, kFrameMagic);
  put_varint(out, input.size());
  put_varint(out, block_size);
  put_varint(out, num_blocks);
  for (const auto& p : payloads) put_varint(out, p.size());
  for (const auto& p : payloads) out.insert(out.end(), p.begin(), p.end());
  return out;
}

Bytes decompress_parallel(const Codec& codec, ByteSpan file, std::size_t num_threads,
                          bool verify_checksums) {
  std::size_t pos = 0;
  check(get_u32le(file, pos) == kFrameMagic, "block_parallel: bad magic");
  const std::uint64_t total = get_varint(file, pos);
  const std::uint64_t block_size = get_varint(file, pos);
  const std::uint64_t num_blocks = get_varint(file, pos);
  check(block_size >= 1024, "block_parallel: bad block size");
  check(num_blocks == (total == 0 ? 0 : div_ceil(total, block_size)),
        "block_parallel: block count mismatch");

  std::vector<std::size_t> offsets(static_cast<std::size_t>(num_blocks) + 1);
  std::vector<std::uint64_t> sizes(static_cast<std::size_t>(num_blocks));
  for (auto& s : sizes) s = get_varint(file, pos);
  offsets[0] = pos;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    offsets[b + 1] = offsets[b] + static_cast<std::size_t>(sizes[b]);
  }
  check(offsets[num_blocks] == file.size(), "block_parallel: file size mismatch");

  Bytes out(static_cast<std::size_t>(total));
  run_indexed(static_cast<std::size_t>(num_blocks), num_threads, [&](std::size_t b) {
    const ByteSpan payload_with_crc = file.subspan(offsets[b], offsets[b + 1] - offsets[b]);
    std::size_t p = 0;
    const std::uint32_t stored_crc = get_u32le(payload_with_crc, p);
    const Bytes block = codec.decompress_block(payload_with_crc.subspan(p));
    const std::size_t begin = b * static_cast<std::size_t>(block_size);
    const std::size_t expect =
        std::min<std::size_t>(static_cast<std::size_t>(block_size), out.size() - begin);
    check(block.size() == expect, "block_parallel: block size mismatch");
    if (verify_checksums) {
      check(crc32(block) == stored_crc, "block_parallel: checksum mismatch");
    }
    std::copy(block.begin(), block.end(), out.begin() + static_cast<std::ptrdiff_t>(begin));
  });
  return out;
}

}  // namespace gompresso::baselines
