#include "baselines/zstd_like.hpp"

#include "ans/tans.hpp"
#include "lz77/parser.hpp"
#include "util/varint.hpp"

namespace gompresso::baselines {

Bytes ZstdLike::compress_block(ByteSpan input) const {
  Bytes out;
  put_varint(out, input.size());
  if (input.empty()) return out;

  lz77::ParserOptions popt;
  popt.matcher.window_size = 32 * 1024;
  popt.matcher.min_match = 4;  // zstd's minimum match
  popt.matcher.max_match = 258;
  popt.matcher.staleness = 0;
  const lz77::TokenBlock tokens = lz77::parse_chained(input, popt, chain_depth_);

  // Sequence stream: packed varints (lit_len, match_len, dist), then
  // tANS-coded — zstd FSE-codes its sequence fields; coding the packed
  // byte stream captures most of that entropy win in simplified form.
  Bytes seq_raw;
  put_varint(seq_raw, tokens.sequences.size());
  for (const auto& s : tokens.sequences) {
    put_varint(seq_raw, s.literal_len);
    put_varint(seq_raw, s.match_len);
    if (s.match_len != 0) put_varint(seq_raw, s.match_dist);
  }
  const Bytes seq_stream = ans::encode(seq_raw);
  // Literal stream: tANS-coded.
  const Bytes literals = ans::encode(tokens.literals);

  put_varint(out, seq_stream.size());
  out.insert(out.end(), seq_stream.begin(), seq_stream.end());
  put_varint(out, literals.size());
  out.insert(out.end(), literals.begin(), literals.end());
  return out;
}

Bytes ZstdLike::decompress_block(ByteSpan payload) const {
  std::size_t pos = 0;
  const std::uint64_t n = get_varint(payload, pos);
  check(n <= (1ull << 32), "zstd-like: implausible size");
  Bytes out;
  out.reserve(static_cast<std::size_t>(n));
  if (n == 0) return out;

  const std::uint64_t seq_bytes = get_varint(payload, pos);
  check(pos + seq_bytes <= payload.size(), "zstd-like: truncated sequences");
  const Bytes seq_stream =
      ans::decode(payload.subspan(pos, static_cast<std::size_t>(seq_bytes)));
  pos += static_cast<std::size_t>(seq_bytes);
  const std::uint64_t lit_bytes = get_varint(payload, pos);
  check(pos + lit_bytes <= payload.size(), "zstd-like: truncated literals");
  const Bytes literals =
      ans::decode(payload.subspan(pos, static_cast<std::size_t>(lit_bytes)));

  std::size_t spos = 0;
  const std::uint64_t n_seq = get_varint(seq_stream, spos);
  std::size_t lit_cursor = 0;
  for (std::uint64_t k = 0; k < n_seq; ++k) {
    const std::uint64_t lit_len = get_varint(seq_stream, spos);
    const std::uint64_t match_len = get_varint(seq_stream, spos);
    check(lit_cursor + lit_len <= literals.size(), "zstd-like: literal overrun");
    out.insert(out.end(), literals.begin() + static_cast<std::ptrdiff_t>(lit_cursor),
               literals.begin() + static_cast<std::ptrdiff_t>(lit_cursor + lit_len));
    lit_cursor += static_cast<std::size_t>(lit_len);
    if (match_len != 0) {
      const std::uint64_t dist = get_varint(seq_stream, spos);
      check(dist >= 1 && dist <= out.size(), "zstd-like: bad distance");
      std::size_t src = out.size() - static_cast<std::size_t>(dist);
      for (std::uint64_t i = 0; i < match_len; ++i) out.push_back(out[src + i]);
    }
    check(out.size() <= n, "zstd-like: output overrun");
  }
  check(out.size() == n, "zstd-like: size mismatch");
  check(lit_cursor == literals.size(), "zstd-like: unconsumed literals");
  return out;
}

}  // namespace gompresso::baselines

namespace gompresso::baselines {
std::unique_ptr<Codec> make_zstd_like() { return std::make_unique<ZstdLike>(); }
}  // namespace gompresso::baselines
