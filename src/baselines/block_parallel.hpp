// Block-parallel wrapper: the paper's CPU parallelisation recipe (§V-D).
//
// "We parallelized the single-threaded implementations of the CPU-based
// state-of-the-art compression libraries by splitting the input data into
// equally-sized blocks that are then processed by the different cores in
// parallel. We chose a block size of 2 MB ... Once a thread has completed
// decompressing a data block, it immediately processes the next block
// from a common queue."
#pragma once

#include <cstdint>

#include "baselines/codec.hpp"
#include "util/common.hpp"

namespace gompresso::baselines {

/// §V-D default: 2 MB blocks maximise parallel CPU decompression speed.
inline constexpr std::uint32_t kDefaultCpuBlockSize = 2 * 1024 * 1024;

/// Compresses `input` with `codec`, block-parallel. The framing stores
/// the block size and per-block compressed sizes, plus a CRC32 per block.
Bytes compress_parallel(const Codec& codec, ByteSpan input,
                        std::uint32_t block_size = kDefaultCpuBlockSize,
                        std::size_t num_threads = 0);

/// Decompresses a compress_parallel() file using the common-queue pool.
Bytes decompress_parallel(const Codec& codec, ByteSpan file,
                          std::size_t num_threads = 0,
                          bool verify_checksums = true);

}  // namespace gompresso::baselines
