// Snappy-class baseline: byte-aligned LZ with tag-dispatched elements.
//
// Mirrors Snappy's format structure: each element starts with a tag byte
// whose low 2 bits select literal / 1-byte-offset copy / 2-byte-offset
// copy, trading a little ratio for an extremely cheap decode dispatch.
#pragma once

#include "baselines/codec.hpp"

namespace gompresso::baselines {

class SnappyLike final : public Codec {
 public:
  std::string name() const override { return "snappy-like"; }
  Bytes compress_block(ByteSpan input) const override;
  Bytes decompress_block(ByteSpan payload) const override;
};

}  // namespace gompresso::baselines
