// Common interface for the CPU baseline codecs of §V-D.
//
// The paper compares Gompresso against Snappy, LZ4, Zstd and zlib. This
// environment is offline, so src/baselines reimplements each library's
// *algorithmic class* from scratch (byte-aligned greedy LZ for
// Snappy/LZ4, LZ + Huffman bitstream for zlib, LZ + tANS for Zstd); see
// DESIGN.md §1 for the substitution rationale. The block_parallel wrapper
// applies the paper's parallelisation recipe: "splitting the input data
// into equally-sized blocks that are then processed by the different
// cores ... a block size of 2 MB ... a common queue".
#pragma once

#include <memory>
#include <string>

#include "util/common.hpp"

namespace gompresso::baselines {

/// A single-block codec: compresses one self-contained block.
class Codec {
 public:
  virtual ~Codec() = default;

  /// Short display name used by the benchmark tables ("lz4-like", ...).
  virtual std::string name() const = 0;

  /// Compresses one block into a self-contained payload.
  virtual Bytes compress_block(ByteSpan input) const = 0;

  /// Decompresses one payload produced by compress_block.
  virtual Bytes decompress_block(ByteSpan payload) const = 0;
};

/// Factories for the four §V-D baselines.
std::unique_ptr<Codec> make_lz4_like();
std::unique_ptr<Codec> make_snappy_like();
std::unique_ptr<Codec> make_deflate_like();  // the zlib/gzip stand-in
std::unique_ptr<Codec> make_zstd_like();

}  // namespace gompresso::baselines
