// DEFLATE-class baseline: the zlib/gzip stand-in for Fig. 13/14.
//
// LZ77 with zlib-style hash chains (32 KB window, lazy-free greedy parse,
// configurable chain depth) followed by a dynamic canonical Huffman
// bitstream using the RFC 1951 alphabets (single lit/len tree + distance
// tree, 15-bit codes). One sequential bitstream per block — the
// variable-length codes create the bit-serial dependency that, as the
// paper observes for pigz, forces single-threaded decoding *within* a
// block and motivates Gompresso's sub-block design.
#pragma once

#include "baselines/codec.hpp"

namespace gompresso::baselines {

class DeflateLike final : public Codec {
 public:
  /// `chain_depth` trades compression time for ratio (zlib levels).
  explicit DeflateLike(std::uint32_t chain_depth = 32) : chain_depth_(chain_depth) {}

  std::string name() const override { return "zlib-like"; }
  Bytes compress_block(ByteSpan input) const override;
  Bytes decompress_block(ByteSpan payload) const override;

 private:
  std::uint32_t chain_depth_;
};

}  // namespace gompresso::baselines
