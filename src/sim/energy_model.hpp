// Wall-socket energy model (Fig. 14 substitution).
//
// The paper measured energy with a power meter at the wall, physically
// removing the GPU for CPU-only runs (§V-D). Two observations anchor the
// model: "the power drawn at the system level ... does not differ
// significantly for different algorithms" on one platform, and the
// platform constants below are calibrated so the paper's headline — the
// GPU solution uses ~17 % less energy than parallel zlib despite the
// higher platform power — is reproduced when the modeled runtimes are 2×
// apart. Energy = platform power × runtime.
#pragma once

namespace gompresso::sim {

struct EnergyModel {
  /// Dual-socket E5-2620v2 server, GPUs physically removed, under load.
  double cpu_system_watts = 230.0;
  /// The same server with a Tesla K40 under decompression load.
  double gpu_system_watts = 380.0;

  double cpu_energy_joules(double seconds) const { return cpu_system_watts * seconds; }
  double gpu_energy_joules(double seconds) const { return gpu_system_watts * seconds; }
};

}  // namespace gompresso::sim
