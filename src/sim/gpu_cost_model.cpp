#include "sim/gpu_cost_model.hpp"

#include <algorithm>

namespace gompresso::sim {

double K40Model::seconds(const RunProfile& profile) const {
  const double u = static_cast<double>(profile.uncompressed_bytes);
  const double c = static_cast<double>(profile.compressed_bytes);

  double lz_ns_per_byte = de_cost_ns_per_byte;
  const double extra_rounds = std::max(0.0, profile.avg_rounds_per_group - 1.0);
  switch (profile.strategy) {
    case Strategy::kDependencyFree:
      break;  // single round by construction
    case Strategy::kMultiRound:
      lz_ns_per_byte += mrr_round_cost_ns_per_byte * extra_rounds;
      break;
    case Strategy::kMultiPass:
      lz_ns_per_byte += mrr_round_cost_ns_per_byte * extra_rounds;
      lz_ns_per_byte *= multipass_overhead;
      break;  // worklist traffic + tracking added below
    case Strategy::kSequentialCopy:
      // For SC the metrics count one "round" per back-reference copy; the
      // serialization cost scales with that count.
      lz_ns_per_byte += sc_ref_cost_ns_per_byte * extra_rounds;
      break;
  }

  double core_ns = u * lz_ns_per_byte;
  if (profile.codec == Codec::kBit) {
    core_ns += c * huffman_cost_ns_per_compressed_byte;
  } else if (profile.codec == Codec::kTans) {
    core_ns += c * tans_cost_ns_per_compressed_byte;
  }
  if (profile.strategy == Strategy::kMultiPass) {
    core_ns += static_cast<double>(profile.spilled_refs) * multipass_tracking_ns_per_ref;
    core_ns += static_cast<double>(profile.spilled_bytes) / mem_bandwidth_gb_per_s;
  }
  // Device-memory bandwidth floor: every byte of input and output crosses
  // the memory system at least once.
  const double mem_floor_ns = (u + c) / mem_bandwidth_gb_per_s;
  double seconds = std::max(core_ns, mem_floor_ns) * 1e-9;

  if (profile.pcie_in) seconds += pcie.seconds(profile.compressed_bytes);
  if (profile.pcie_out) seconds += pcie.seconds(profile.uncompressed_bytes);
  return seconds;
}

double K40Model::throughput_gb_per_s(const RunProfile& profile) const {
  const double s = seconds(profile);
  if (s <= 0.0) return 0.0;
  return static_cast<double>(profile.uncompressed_bytes) / 1e9 / s;
}

}  // namespace gompresso::sim
