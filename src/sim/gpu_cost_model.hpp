// Analytic Tesla K40 decompression cost model.
//
// No GPU exists in this environment, so cross-platform figures (9a, 12,
// 13, 14) convert *counted work* — bytes moved, warp resolution rounds,
// compressed bits decoded — into modeled K40 time. The constants are
// calibrated once against the paper's reported operating points (§V-A
// Fig. 9a: Gompresso/Byte DE ≈ 20 GB/s, MRR ≈ 10 GB/s at ~3 rounds, DE ≥
// 5× SC; Fig. 13: Gompresso/Bit ≈ 2× parallel zlib) and then held fixed
// across all experiments; every benchmark also reports the measured
// wall-clock time of the simulated-warp execution on this machine, so the
// model is an annotation, never a replacement for a measurement.
//
// Model structure:
//   t_lz    = U * (c_de + c_round * (avg_rounds - 1))          [LZ77 stage]
//   t_huff  = C * c_huff                    [Gompresso/Bit decode stage]
//   t_core  = max(t_lz + t_huff, (U + C) / BW_mem)     [bandwidth floor]
//   t_total = t_core + pcie_in + pcie_out
// where U/C are uncompressed/compressed byte counts. SC uses a smaller
// per-round constant (its serialised copies skip the vote/broadcast
// overhead that an MRR round pays).
#pragma once

#include <cstdint>

#include "core/options.hpp"
#include "sim/pcie_model.hpp"

namespace gompresso::sim {

/// Work counts describing one decompression run (from DecompressResult).
struct RunProfile {
  std::uint64_t uncompressed_bytes = 0;
  std::uint64_t compressed_bytes = 0;
  Codec codec = Codec::kByte;
  Strategy strategy = Strategy::kDependencyFree;
  double avg_rounds_per_group = 1.0;  // WarpMetrics::avg_rounds_per_group()
  std::uint64_t spilled_refs = 0;     // kMultiPass: worklist entries
  std::uint64_t spilled_bytes = 0;    // kMultiPass: worklist traffic
  bool pcie_in = false;   // transfer compressed input host -> device
  bool pcie_out = false;  // transfer uncompressed output device -> host
};

struct K40Model {
  double mem_bandwidth_gb_per_s = 192.0;  // effective with ECC on (288 peak)
  double de_cost_ns_per_byte = 0.05;      // 1-round LZ stage: 20 GB/s
  double mrr_round_cost_ns_per_byte = 0.025;  // each extra MRR round
  double sc_ref_cost_ns_per_byte = 0.010;     // each serialized SC copy
  double multipass_overhead = 1.15;  // variant's extra kernel launches (§V-A)
  /// Per-spilled-reference cost of the multi-pass variant: one worklist
  /// write plus per-pass re-reads and the resolvability bookkeeping the
  /// paper calls "the increased complexity of tracking when a dependency
  /// can be resolved".
  double multipass_tracking_ns_per_ref = 4.0;
  /// Huffman decode stage cost. Calibrated so Gompresso/Bit lands at the
  /// paper's Fig. 13 anchor of ~2x parallel zlib on the Wikipedia set
  /// (the paper's power figures are consistent with exactly that ratio:
  /// a 17 % energy saving at 380 W vs 230 W implies a 2.0x speed-up).
  double huffman_cost_ns_per_compressed_byte = 0.16;  // ~6.3 GB/s decode
  /// tANS decode stage (Gompresso/Tans): slightly cheaper than Huffman —
  /// the §V-D observation about Zstd's coder class ("typically faster
  /// than Huffman decoding").
  double tans_cost_ns_per_compressed_byte = 0.12;
  PcieModel pcie;

  /// Modeled end-to-end decompression time.
  double seconds(const RunProfile& profile) const;

  /// Modeled decompression bandwidth (uncompressed bytes / second).
  double throughput_gb_per_s(const RunProfile& profile) const;
};

/// Scales a measured single-thread CPU throughput to the paper's CPU
/// platform (2x E5-2620v2, 24 hardware threads on 12 physical cores).
/// Used to place the §V-D baselines on the modeled cross-platform axis.
struct CpuScalingModel {
  /// Effective parallel speed-up of 24 HW threads on 12 cores for
  /// memory-heavy decompression (hyper-threading yields well under 2x).
  double effective_parallelism = 14.0;

  double scale_throughput_gb_per_s(double single_thread_gb_per_s) const {
    return single_thread_gb_per_s * effective_parallelism;
  }
};

}  // namespace gompresso::sim
