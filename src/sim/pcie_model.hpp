// PCIe transfer model.
//
// The paper's GPU measurements include PCIe 3.0 x16 transfers: "In
// separate bandwidth tests, we were able to achieve a PCIe peak bandwidth
// of 13 GB/sec" (§V-D), against a 16 GB/s nominal link. Fig. 13 reports
// three Gompresso/Byte series — No PCIe, In (compressed input only), and
// In/Out (input + decompressed output) — and for Gompresso/Byte the
// output transfer is the bottleneck. With no GPU in this environment the
// transfer time is modeled as latency + bytes / measured-bandwidth.
#pragma once

#include <cstdint>

namespace gompresso::sim {

struct PcieModel {
  double bandwidth_gb_per_s = 13.0;  // measured, not nominal (§V-D)
  double latency_s = 20e-6;          // per-transfer launch/DMA setup cost

  /// Seconds to move `bytes` across the link in one direction.
  double seconds(std::uint64_t bytes) const {
    if (bytes == 0) return 0.0;
    return latency_s + static_cast<double>(bytes) / 1e9 / bandwidth_gb_per_s;
  }
};

}  // namespace gompresso::sim
