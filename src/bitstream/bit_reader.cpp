#include "bitstream/bit_reader.hpp"

#include <cstring>

namespace gompresso {

BitReader::BitReader(ByteSpan data, std::uint64_t start_bit) : data_(data) {
  byte_cursor_ = static_cast<std::size_t>(start_bit / 8);
  bit_pos_ = start_bit;
  const unsigned skip = static_cast<unsigned>(start_bit % 8);
  if (byte_cursor_ < data_.size()) {
    acc_ = data_[byte_cursor_] >> skip;
    acc_bits_ = 8 - skip;
    ++byte_cursor_;
  } else {
    acc_ = 0;
    acc_bits_ = 8 - skip;  // zero padding beyond the end
  }
}

void BitReader::refill() {
  // Fast path: load 8 bytes at once when available. Only the bytes that
  // fit entirely in the accumulator are kept; the rest must be masked off
  // or they would be loaded (and OR'd) a second time on the next refill.
  if (byte_cursor_ + 8 <= data_.size() && acc_bits_ <= 56) {
    std::uint64_t chunk;
    std::memcpy(&chunk, data_.data() + byte_cursor_, 8);  // little-endian hosts
    const unsigned take_bytes = (63 - acc_bits_) / 8;     // 0..7
    const std::uint64_t mask = (1ull << (take_bytes * 8)) - 1;
    acc_ |= (chunk & mask) << acc_bits_;
    acc_bits_ += take_bytes * 8;
    byte_cursor_ += take_bytes;
    return;
  }
  while (acc_bits_ <= 56) {
    const std::uint64_t byte = byte_cursor_ < data_.size() ? data_[byte_cursor_] : 0;
    acc_ |= byte << acc_bits_;
    acc_bits_ += 8;
    ++byte_cursor_;
  }
}

}  // namespace gompresso
