// LSB-first bit stream writer (DEFLATE bit order).
//
// Gompresso/Bit sub-blocks are concatenated at bit granularity: each
// sub-block's compressed size in bits is recorded in the block header so
// decoder lanes can seek to arbitrary bit offsets (paper §III-A). The
// writer therefore tracks an exact bit position.
//
// Two write paths are provided, symmetric to BitReader's checked reads and
// peek/consume_unchecked pair:
//
//   * write() — the checked path: every call spills completed bytes into
//     the buffer with an amortised vector append. Any number of bits up to
//     the 57-bit limit (see below) per call, no setup required.
//   * begin_run()/write_unchecked()/end_run() — the hot path: begin_run()
//     reserves an upper bound up front, after which each write_unchecked()
//     is a branch-free shift/or plus one unconditional 8-byte store
//     (zstd's BIT_addBits/BIT_flushBits collapsed into one step). The
//     fused-emit encoder reserves a per-block worst case and emits whole
//     token sequences this way.
//
// The 57-bit limit: both paths maintain the invariant that at most 7 bits
// are pending in the 64-bit accumulator between calls, so a single call
// may append up to 64 - 7 = 57 bits. Fused emit entries exploit this:
// a worst-case match token (15-bit length code + 5 extra + 15-bit
// distance code + 13 extra = 48 bits) still fits in one call.
#pragma once

#include <cstdint>
#include <cstring>

#include "util/common.hpp"

namespace gompresso {

/// Appends variable-width codes to a byte buffer, least-significant bit
/// first within each byte (the DEFLATE convention).
class BitWriter {
 public:
  BitWriter() = default;

  /// Appends the low `nbits` bits of `value` (0 <= nbits <= 57).
  void write(std::uint64_t value, unsigned nbits);

  /// Total number of bits written so far.
  std::uint64_t bit_count() const { return total_bits_; }

  /// Pads with zero bits to the next byte boundary.
  void align_to_byte();

  /// Flushes any partial byte and returns the finished buffer.
  /// The writer is left empty and reusable — but note the returned
  /// buffer's storage moves out with it; use flush_into() when the
  /// writer's capacity should survive for the next block.
  Bytes finish();

  /// Flushes any partial byte (zero-padded) and appends the finished
  /// stream to `out`, then resets the writer *keeping its buffer
  /// capacity* — the reuse-friendly alternative to finish() for
  /// per-worker scratch writers.
  void flush_into(Bytes& out);

  /// Pre-reserves buffer capacity for `bytes` of output (checked path).
  void reserve(std::size_t bytes) { buf_.reserve(bytes); }

  /// Current buffer capacity (scratch-reuse accounting).
  std::size_t capacity() const { return buf_.capacity(); }

  /// Begins an unchecked run: guarantees room for `max_bits` more bits so
  /// every write_unchecked() until end_run() can skip capacity checks.
  /// Checked write() calls must not be interleaved with a run.
  void begin_run(std::uint64_t max_bits);

  /// Appends the low `nbits` bits of `value` (0 <= nbits <= 57) with no
  /// capacity check: one shift/or plus one unconditional 8-byte store.
  /// Only valid inside a begin_run()/end_run() window, within the
  /// reserved bit budget.
  void write_unchecked(std::uint64_t value, unsigned nbits) {
    acc_ |= value << acc_bits_;
    acc_bits_ += nbits;
    total_bits_ += nbits;
    // Spill every completed byte with one unconditional 8-byte store
    // (little-endian hosts, same as flush_full_bytes); the partial byte,
    // if any, is simply re-written by the next call.
    std::memcpy(buf_.data() + cursor_, &acc_, 8);
    const unsigned nbytes = acc_bits_ >> 3;
    cursor_ += nbytes;
    acc_ = nbytes == 8 ? 0 : acc_ >> (8 * nbytes);
    acc_bits_ &= 7;
  }

  /// Ends an unchecked run, trimming the reservation slack. The writer is
  /// back in the checked state (partial bits stay pending).
  void end_run();

  /// Appends `nbits` bits from `bytes` (LSB-first packed, as produced by
  /// another writer's finish()/flush_into()). This is the bit-granular
  /// splice used to concatenate independently encoded sub-block lane
  /// streams into one block stream.
  void append_bits(ByteSpan bytes, std::uint64_t nbits);

 private:
  void flush_full_bytes();

  Bytes buf_;
  std::size_t cursor_ = 0;      // unchecked-run write position in buf_
  std::uint64_t acc_ = 0;       // pending bits, LSB-first
  unsigned acc_bits_ = 0;       // number of valid bits in acc_
  std::uint64_t total_bits_ = 0;
};

}  // namespace gompresso
