// LSB-first bit stream writer (DEFLATE bit order).
//
// Gompresso/Bit sub-blocks are concatenated at bit granularity: each
// sub-block's compressed size in bits is recorded in the block header so
// decoder lanes can seek to arbitrary bit offsets (paper §III-A). The
// writer therefore tracks an exact bit position.
#pragma once

#include <cstdint>

#include "util/common.hpp"

namespace gompresso {

/// Appends variable-width codes to a byte buffer, least-significant bit
/// first within each byte (the DEFLATE convention).
class BitWriter {
 public:
  BitWriter() = default;

  /// Appends the low `nbits` bits of `value` (0 <= nbits <= 57).
  void write(std::uint64_t value, unsigned nbits);

  /// Total number of bits written so far.
  std::uint64_t bit_count() const { return total_bits_; }

  /// Pads with zero bits to the next byte boundary.
  void align_to_byte();

  /// Flushes any partial byte and returns the finished buffer.
  /// The writer is left empty and reusable.
  Bytes finish();

  /// Appends the pending bits of another writer's finished buffer is not
  /// supported; instead sub-block streams are written through a single
  /// writer sequentially. This helper asserts the invariant in debug mode.
  void reserve(std::size_t bytes) { buf_.reserve(bytes); }

 private:
  void flush_full_bytes();

  Bytes buf_;
  std::uint64_t acc_ = 0;       // pending bits, LSB-first
  unsigned acc_bits_ = 0;       // number of valid bits in acc_
  std::uint64_t total_bits_ = 0;
};

}  // namespace gompresso
