// LSB-first bit stream reader with arbitrary starting bit offset.
//
// Each Huffman-decoder lane starts reading its sub-block at a bit offset
// computed from the sub-block size list in the block header (paper
// §III-B.1), so the reader supports construction at any bit position
// within a buffer. Reads past the end of the buffer yield zero bits and
// latch an overflow flag that callers check once per sub-block; this keeps
// the hot decode loop branch-light, mirroring the single-lookup design the
// paper uses to avoid warp divergence.
//
// The accumulator is 64 bits wide and refill() tops it up with one
// unconditional word-at-a-time load in the steady state (the branchless
// scheme popularised by rapidgzip-style CPU inflate loops): after a
// refill() at least kGuaranteedBits bits are peekable, so a decode loop
// can refill once per token and then use the *_unchecked accessors with
// no conditional refill on the critical path. The last 8 bytes of the
// buffer fall back to a byte-wise zero-padded tail load.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>

#include "util/common.hpp"

namespace gompresso {

/// Reads variable-width codes from a byte buffer, LSB-first.
class BitReader {
 public:
  /// After refill(), at least this many bits can be peeked/consumed via
  /// the *_unchecked accessors (zero-padded past the end of the buffer).
  static constexpr unsigned kGuaranteedBits = 56;

  /// Reads from `data`, starting at absolute bit offset `start_bit`.
  explicit BitReader(ByteSpan data, std::uint64_t start_bit = 0)
      : data_(data.data()), size_(data.size()) {
    byte_cursor_ = static_cast<std::size_t>(start_bit >> 3);
    refill();
    const unsigned skip = static_cast<unsigned>(start_bit & 7);
    acc_ >>= skip;
    acc_bits_ -= skip;
  }

  /// Tops the accumulator up to >= kGuaranteedBits valid bits. In the
  /// steady state (cursor at least 8 bytes from the end) this is one
  /// unconditional 64-bit load + OR; bits that do not fit are reloaded by
  /// the next refill. Past the end the stream reads as zeros.
  void refill() {
    std::uint64_t chunk;
    if (byte_cursor_ + 8 <= size_) [[likely]] {
      std::memcpy(&chunk, data_ + byte_cursor_, 8);  // little-endian hosts
    } else {
      chunk = tail_load();
    }
    acc_ |= chunk << acc_bits_;
    byte_cursor_ += (63 - acc_bits_) >> 3;
    acc_bits_ |= kGuaranteedBits;  // == acc_bits_ + 8 * bytes_taken
  }

  /// Returns the next `nbits` bits without consuming them (0..32).
  /// Bits beyond the end of the buffer read as zero.
  std::uint32_t peek(unsigned nbits) {
    if (acc_bits_ < nbits) refill();
    return peek_unchecked(nbits);
  }

  /// Consumes `nbits` bits (must have been peeked or known available).
  void consume(unsigned nbits) {
    if (acc_bits_ < nbits) refill();
    consume_unchecked(nbits);
  }

  /// Reads and consumes `nbits` bits (0..32).
  std::uint32_t read(unsigned nbits) {
    const std::uint32_t v = peek(nbits);
    consume_unchecked(nbits);
    return v;
  }

  /// peek() without the refill guard: the caller must have refill()ed and
  /// consumed at most kGuaranteedBits - nbits bits since.
  std::uint32_t peek_unchecked(unsigned nbits) const {
    assert(nbits <= 32 && nbits <= acc_bits_);
    return static_cast<std::uint32_t>(acc_ & ((std::uint64_t{1} << nbits) - 1));
  }

  /// consume() without the refill guard (same contract as peek_unchecked).
  void consume_unchecked(unsigned nbits) {
    assert(nbits <= acc_bits_);
    acc_ >>= nbits;
    acc_bits_ -= nbits;
  }

  /// read() without the refill guard (same contract as peek_unchecked).
  std::uint32_t read_unchecked(unsigned nbits) {
    const std::uint32_t v = peek_unchecked(nbits);
    consume_unchecked(nbits);
    return v;
  }

  /// Absolute bit position of the next unread bit. Derived: the cursor
  /// counts every bit ever loaded (zero padding included) and acc_bits_
  /// the loaded-but-unconsumed ones, so no per-consume counter is needed.
  std::uint64_t bit_pos() const {
    return 8 * static_cast<std::uint64_t>(byte_cursor_) - acc_bits_;
  }

  /// True if any *consumed* bit lay beyond the end of the buffer. Peeking
  /// past the end (which reads zero padding) does not count as overflow
  /// until those bits are consumed.
  bool overflowed() const { return bit_pos() > 8 * static_cast<std::uint64_t>(size_); }

 private:
  /// Byte-wise zero-padded load for the last < 8 bytes of the buffer.
  std::uint64_t tail_load() const {
    std::uint64_t chunk = 0;
    for (std::size_t i = byte_cursor_, k = 0; i < size_ && k < 8; ++i, ++k) {
      chunk |= static_cast<std::uint64_t>(data_[i]) << (8 * k);
    }
    return chunk;
  }

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::uint64_t acc_ = 0;        // prefetched bits, next bit at LSB
  unsigned acc_bits_ = 0;        // valid bits in acc_
  std::size_t byte_cursor_ = 0;  // next byte to load into acc_
};

}  // namespace gompresso
