// LSB-first bit stream reader with arbitrary starting bit offset.
//
// Each Huffman-decoder lane starts reading its sub-block at a bit offset
// computed from the sub-block size list in the block header (paper
// §III-B.1), so the reader supports construction at any bit position
// within a buffer. Reads past the end of the buffer yield zero bits and
// latch an overflow flag that callers check once per sub-block; this keeps
// the hot decode loop branch-light, mirroring the single-lookup design the
// paper uses to avoid warp divergence.
#pragma once

#include <cstdint>

#include "util/common.hpp"

namespace gompresso {

/// Reads variable-width codes from a byte buffer, LSB-first.
class BitReader {
 public:
  /// Reads from `data`, starting at absolute bit offset `start_bit`.
  explicit BitReader(ByteSpan data, std::uint64_t start_bit = 0);

  /// Returns the next `nbits` bits without consuming them (0..32).
  /// Bits beyond the end of the buffer read as zero.
  std::uint32_t peek(unsigned nbits) {
    if (acc_bits_ < nbits) refill();
    return static_cast<std::uint32_t>(acc_ & ((1ull << nbits) - 1));
  }

  /// Consumes `nbits` bits (must have been peeked or known available).
  void consume(unsigned nbits) {
    if (acc_bits_ < nbits) refill();
    acc_ >>= nbits;
    acc_bits_ -= nbits;
    bit_pos_ += nbits;
  }

  /// Reads and consumes `nbits` bits (0..32).
  std::uint32_t read(unsigned nbits) {
    const std::uint32_t v = peek(nbits);
    consume(nbits);
    return v;
  }

  /// Absolute bit position of the next unread bit.
  std::uint64_t bit_pos() const { return bit_pos_; }

  /// True if any consumed bit lay beyond the end of the buffer.
  bool overflowed() const { return bit_pos_ > 8 * static_cast<std::uint64_t>(data_.size()); }

 private:
  void refill();

  ByteSpan data_;
  std::uint64_t acc_ = 0;    // prefetched bits, next bit at LSB
  unsigned acc_bits_ = 0;    // valid bits in acc_
  std::uint64_t bit_pos_ = 0;    // absolute position of next unread bit
  std::size_t byte_cursor_ = 0;  // next byte to load into acc_
};

}  // namespace gompresso
