#include "bitstream/bit_writer.hpp"

#include <cassert>

namespace gompresso {

void BitWriter::flush_full_bytes() {
  while (acc_bits_ >= 8) {
    buf_.push_back(static_cast<std::uint8_t>(acc_));
    acc_ >>= 8;
    acc_bits_ -= 8;
  }
}

void BitWriter::write(std::uint64_t value, unsigned nbits) {
  assert(nbits <= 57);
  assert(nbits == 64 || (value >> nbits) == 0);
  acc_ |= value << acc_bits_;
  acc_bits_ += nbits;
  total_bits_ += nbits;
  flush_full_bytes();
}

void BitWriter::align_to_byte() {
  const unsigned rem = total_bits_ % 8;
  if (rem != 0) write(0, 8 - rem);
}

Bytes BitWriter::finish() {
  if (acc_bits_ > 0) {
    buf_.push_back(static_cast<std::uint8_t>(acc_));
    acc_ = 0;
    acc_bits_ = 0;
  }
  total_bits_ = 0;
  Bytes out;
  out.swap(buf_);
  return out;
}

}  // namespace gompresso
