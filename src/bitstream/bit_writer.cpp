#include "bitstream/bit_writer.hpp"

#include <cassert>
#include <cstring>

namespace gompresso {

void BitWriter::flush_full_bytes() {
  // Symmetric to BitReader::refill(): spill all complete bytes of the
  // 64-bit accumulator with one 8-byte store instead of a per-byte loop.
  // The invariant acc_bits_ <= 7 on exit means a following write of up to
  // 57 bits cannot overflow the accumulator.
  if (acc_bits_ < 8) return;
  std::uint8_t chunk[8];
  std::memcpy(chunk, &acc_, 8);  // little-endian hosts
  const unsigned nbytes = acc_bits_ >> 3;
  buf_.insert(buf_.end(), chunk, chunk + nbytes);
  acc_ = nbytes == 8 ? 0 : acc_ >> (8 * nbytes);
  acc_bits_ &= 7;
}

void BitWriter::write(std::uint64_t value, unsigned nbits) {
  assert(nbits <= 57);
  assert(nbits == 64 || (value >> nbits) == 0);
  assert(cursor_ == 0);  // no checked writes inside an unchecked run
  acc_ |= value << acc_bits_;
  acc_bits_ += nbits;
  total_bits_ += nbits;
  flush_full_bytes();
}

void BitWriter::begin_run(std::uint64_t max_bits) {
  assert(cursor_ == 0);
  // write_unchecked stores 8 bytes at the cursor unconditionally, so the
  // reservation needs the bit budget plus one store of slack.
  cursor_ = buf_.size();
  buf_.resize(cursor_ + static_cast<std::size_t>(max_bits / 8) + 16);
}

void BitWriter::end_run() {
  buf_.resize(cursor_);  // drop the slack; pending bits stay in acc_
  cursor_ = 0;
}

void BitWriter::align_to_byte() {
  const unsigned rem = total_bits_ % 8;
  if (rem != 0) write(0, 8 - rem);
}

Bytes BitWriter::finish() {
  assert(cursor_ == 0);
  if (acc_bits_ > 0) {
    buf_.push_back(static_cast<std::uint8_t>(acc_));
    acc_ = 0;
    acc_bits_ = 0;
  }
  total_bits_ = 0;
  Bytes out;
  out.swap(buf_);
  return out;
}

void BitWriter::flush_into(Bytes& out) {
  assert(cursor_ == 0);
  if (acc_bits_ > 0) {
    buf_.push_back(static_cast<std::uint8_t>(acc_));
    acc_ = 0;
    acc_bits_ = 0;
  }
  total_bits_ = 0;
  out.insert(out.end(), buf_.begin(), buf_.end());
  buf_.clear();  // keeps capacity for the next block
}

void BitWriter::append_bits(ByteSpan bytes, std::uint64_t nbits) {
  assert(nbits <= 8 * static_cast<std::uint64_t>(bytes.size()));
  // 32-bit chunks through the checked path: the source has a whole 4-byte
  // word wherever 32 more bits are due, so the loads stay in bounds.
  std::uint64_t off = 0;
  const std::uint8_t* src = bytes.data();
  while (off + 32 <= nbits) {
    std::uint32_t word;
    std::memcpy(&word, src + off / 8, 4);  // little-endian hosts
    write(word, 32);
    off += 32;
  }
  if (off < nbits) {
    const unsigned rem = static_cast<unsigned>(nbits - off);
    std::uint64_t word = 0;
    const std::size_t first = static_cast<std::size_t>(off / 8);
    const std::size_t last = static_cast<std::size_t>((nbits + 7) / 8);
    for (std::size_t i = first; i < last; ++i) {
      word |= static_cast<std::uint64_t>(src[i]) << (8 * (i - first));
    }
    write(word & ((std::uint64_t{1} << rem) - 1), rem);
  }
}

}  // namespace gompresso
