#include "bitstream/bit_writer.hpp"

#include <cassert>
#include <cstring>

namespace gompresso {

void BitWriter::flush_full_bytes() {
  // Symmetric to BitReader::refill(): spill all complete bytes of the
  // 64-bit accumulator with one 8-byte store instead of a per-byte loop.
  // The invariant acc_bits_ <= 7 on exit means a following write of up to
  // 57 bits cannot overflow the accumulator.
  if (acc_bits_ < 8) return;
  std::uint8_t chunk[8];
  std::memcpy(chunk, &acc_, 8);  // little-endian hosts
  const unsigned nbytes = acc_bits_ >> 3;
  buf_.insert(buf_.end(), chunk, chunk + nbytes);
  acc_ = nbytes == 8 ? 0 : acc_ >> (8 * nbytes);
  acc_bits_ &= 7;
}

void BitWriter::write(std::uint64_t value, unsigned nbits) {
  assert(nbits <= 57);
  assert(nbits == 64 || (value >> nbits) == 0);
  acc_ |= value << acc_bits_;
  acc_bits_ += nbits;
  total_bits_ += nbits;
  flush_full_bytes();
}

void BitWriter::align_to_byte() {
  const unsigned rem = total_bits_ % 8;
  if (rem != 0) write(0, 8 - rem);
}

Bytes BitWriter::finish() {
  if (acc_bits_ > 0) {
    buf_.push_back(static_cast<std::uint8_t>(acc_));
    acc_ = 0;
    acc_bits_ = 0;
  }
  total_bits_ = 0;
  Bytes out;
  out.swap(buf_);
  return out;
}

}  // namespace gompresso
