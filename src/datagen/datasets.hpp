// Named benchmark datasets: the paper's two evaluation inputs (§V) plus
// helpers, at sizes scaled to this machine. Generation is deterministic.
#pragma once

#include <string>

#include "datagen/matrix_market.hpp"
#include "datagen/nesting.hpp"
#include "datagen/zipf_text.hpp"
#include "util/common.hpp"

namespace gompresso::datagen {

/// Default benchmark dataset size. The paper uses 1 GB / 0.77 GB files;
/// this container has one vCPU and the compression ratios of both
/// generators are size-stable, so the benches default to 16 MiB.
inline constexpr std::size_t kDefaultBenchSize = 16 * 1024 * 1024;

/// The "English Wikipedia" stand-in (§V dataset 1).
Bytes wikipedia(std::size_t size = kDefaultBenchSize);

/// The "Sparse Matrix" (Hollywood-2009) stand-in (§V dataset 2).
Bytes matrix(std::size_t size = kDefaultBenchSize);

/// Uniform random bytes (incompressible control).
Bytes random_bytes(std::size_t size, std::uint64_t seed = 42);

/// Dataset by name ("wikipedia", "matrix", "random") for CLI tools.
Bytes by_name(const std::string& name, std::size_t size = kDefaultBenchSize);

}  // namespace gompresso::datagen
