#include "datagen/zipf_text.hpp"

#include <string>
#include <vector>

#include "util/rng.hpp"

namespace gompresso::datagen {
namespace {

/// Synthesises a vocabulary of pronounceable lowercase words with
/// Zipf-rank-correlated lengths (frequent words are short, as in natural
/// language — this matters for the match-length distribution).
std::vector<std::string> make_vocabulary(std::size_t n, Rng& rng) {
  static const char* kConsonants = "bcdfghjklmnpqrstvwz";
  static const char* kVowels = "aeiou";
  std::vector<std::string> words;
  words.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Rank-dependent length: top ranks 2-4 chars, tail up to 12.
    const std::size_t len =
        2 + rng.next_below(3) + (i < 64 ? 0 : (i < 1024 ? 2 : 4) + rng.next_below(4));
    std::string w;
    w.reserve(len);
    for (std::size_t k = 0; k < len; ++k) {
      w.push_back(k % 2 == 0 ? kConsonants[rng.next_below(19)]
                             : kVowels[rng.next_below(5)]);
    }
    words.push_back(std::move(w));
  }
  return words;
}

void append(Bytes& out, const std::string& s) {
  out.insert(out.end(), s.begin(), s.end());
}

}  // namespace

Bytes make_wikipedia_xml(std::size_t size, const WikipediaConfig& config) {
  Rng rng(config.seed);
  const auto vocab = make_vocabulary(config.vocabulary, rng);
  const ZipfSampler zipf(config.vocabulary, config.zipf_s);

  Bytes out;
  out.reserve(size + 4096);
  append(out, "<mediawiki xmlns=\"http://www.mediawiki.org/xml/export-0.10/\" "
              "xml:lang=\"en\">\n  <siteinfo>\n    <sitename>Wikipedia</sitename>\n"
              "    <dbname>enwiki</dbname>\n  </siteinfo>\n");

  std::uint64_t page_id = 1000;
  std::uint64_t rev_id = 90000000;
  auto emit_word = [&](Bytes& o) { append(o, vocab[zipf.sample(rng)]); };

  while (out.size() < size) {
    // Page header.
    append(out, "  <page>\n    <title>");
    emit_word(out);
    out.push_back(' ');
    emit_word(out);
    append(out, "</title>\n    <ns>0</ns>\n    <id>");
    append(out, std::to_string(page_id++));
    append(out, "</id>\n    <revision>\n      <id>");
    append(out, std::to_string(rev_id));
    rev_id += 1 + rng.next_below(97);
    append(out, "</id>\n      <timestamp>2016-0");
    append(out, std::to_string(1 + rng.next_below(9)));
    append(out, "-");
    append(out, std::to_string(10 + rng.next_below(18)));
    append(out, "T12:00:00Z</timestamp>\n      <text xml:space=\"preserve\">");

    // Body: paragraphs of Zipfian words with occasional wiki markup.
    const std::size_t paragraphs = 2 + rng.next_below(5);
    for (std::size_t p = 0; p < paragraphs && out.size() < size; ++p) {
      if (rng.next_below(3) == 0) {
        append(out, "== ");
        emit_word(out);
        append(out, " ==\n");
      }
      const std::size_t sentences = 3 + rng.next_below(6);
      for (std::size_t s = 0; s < sentences && out.size() < size; ++s) {
        const std::size_t words_in_sentence = 6 + rng.next_below(12);
        for (std::size_t w = 0; w < words_in_sentence; ++w) {
          const std::uint64_t style = rng.next_below(40);
          if (style == 0) {
            append(out, "[[");
            emit_word(out);
            append(out, "]]");
          } else if (style == 1) {
            append(out, "''");
            emit_word(out);
            append(out, "''");
          } else {
            emit_word(out);
          }
          out.push_back(w + 1 == words_in_sentence ? '.' : ' ');
        }
        out.push_back(' ');
      }
      out.push_back('\n');
    }
    append(out, "</text>\n    </revision>\n  </page>\n");
  }
  out.resize(size);
  return out;
}

}  // namespace gompresso::datagen
