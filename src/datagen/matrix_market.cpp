#include "datagen/matrix_market.hpp"

#include <string>
#include <vector>

#include "util/rng.hpp"

namespace gompresso::datagen {
namespace {

void append(Bytes& out, const std::string& s) {
  out.insert(out.end(), s.begin(), s.end());
}

}  // namespace

Bytes make_matrix_market(std::size_t size, const MatrixMarketConfig& config) {
  Rng rng(config.seed);
  Bytes out;
  out.reserve(size + 256);
  append(out, "%%MatrixMarket matrix coordinate pattern symmetric\n");
  append(out, "% Synthetic power-law community graph (Hollywood-2009 stand-in)\n");
  append(out, std::to_string(config.vertices));
  out.push_back(' ');
  append(out, std::to_string(config.vertices));
  out.push_back(' ');
  // Edge count is approximate; consumers of this dataset only need the
  // byte stream's statistical shape, not graph-theoretic consistency.
  append(out, std::to_string(size / 14));
  out.push_back('\n');

  // Community structure: runs of consecutive vertices draw their
  // neighbours from a shared ascending pool (actors in the same films
  // share co-stars). Repeated neighbour ids across nearby lines are what
  // give the file its gzip-class ~5:1 compressibility, mirroring the
  // paper's Hollywood-2009 measurement.
  std::vector<std::uint64_t> pool(config.community_pool);
  auto refill_pool = [&] {
    std::uint64_t x = 1 + rng.next_below(config.vertices - config.community_pool * 40);
    for (auto& p : pool) {
      x += 1 + rng.next_below(35);
      p = x;
    }
  };
  refill_pool();

  std::uint64_t v = 1;
  std::uint64_t community_left = config.community_vertices;
  std::string line;
  while (out.size() < size) {
    if (community_left-- == 0) {
      community_left = config.community_vertices;
      refill_pool();
    }
    const std::uint64_t degree =
        config.degree_min +
        rng.next_below(config.degree_max - config.degree_min + 1);
    // Each vertex lists an ascending subset of its community's pool.
    std::size_t idx = rng.next_below(pool.size() / 2);
    for (std::uint64_t d = 0; d < degree && out.size() < size; ++d) {
      idx += 1 + rng.next_below(3);
      if (idx >= pool.size()) break;
      line.clear();
      line += std::to_string(v);
      line += ' ';
      line += std::to_string(pool[idx]);
      line += '\n';
      append(out, line);
    }
    v += 1 + rng.next_below(2);
  }
  out.resize(size);
  return out;
}

}  // namespace gompresso::datagen
