// Wikipedia-like XML text generator.
//
// The paper's first dataset is a 1 GB XML dump of the English Wikipedia
// (enwik9), gzip ratio 3.09:1 (§V). That file is not available offline,
// so this generator synthesises text with the same statistical character:
// a Zipf-distributed vocabulary (natural-language word frequencies are
// approximately Zipfian) wrapped in MediaWiki-style XML page markup, with
// wiki link/emphasis syntax sprinkled through the body text. The knobs
// are tuned so a DEFLATE-class compressor lands near the paper's 3:1.
#pragma once

#include <cstdint>

#include "util/common.hpp"

namespace gompresso::datagen {

struct WikipediaConfig {
  std::size_t vocabulary = 16384;  // distinct words
  double zipf_s = 1.05;            // Zipf exponent
  std::uint64_t seed = 0x57696B69ULL;
};

/// Generates `size` bytes of Wikipedia-dump-like XML.
Bytes make_wikipedia_xml(std::size_t size, const WikipediaConfig& config = {});

}  // namespace gompresso::datagen
