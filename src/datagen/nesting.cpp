#include "datagen/nesting.hpp"

#include <vector>

#include "util/rng.hpp"

namespace gompresso::datagen {

Bytes make_nesting(std::size_t size, const NestingConfig& config) {
  check(config.families >= 1 && config.families <= 32, "nesting: families in [1, 32]");
  check(config.string_len >= 8 && config.string_len <= 64, "nesting: string_len in [8, 64]");
  Rng rng(config.seed);

  // Family base strings use bytes from [0x40, 0xFF]; separators come from
  // the disjoint set [0x20, 0x3F] and rotate so separator+prefix trigrams
  // never repeat at short range.
  std::vector<Bytes> family(config.families, Bytes(config.string_len));
  for (auto& f : family) {
    for (auto& b : f) b = static_cast<std::uint8_t>(0x40 + rng.next_below(0xC0));
  }
  // Per-family mutation counters: occurrence j mutates the front (j even)
  // or the back (j odd) of its string.
  //
  // Adaptation note: the paper mutates a single byte, which suffices for
  // its exhaustive matcher. Gompresso's trigram-hash matcher would anchor
  // a match at the mutated byte itself whenever the same byte value
  // recurs within the 8 KB window (192 possible values vs ~480
  // occurrences in a window — pigeonhole guarantees recurrences),
  // producing occasional far back-references that dilute the intended
  // chain. Mutating a two-byte field (181^2 distinct values, unique
  // within any window) removes those accidental anchors while preserving
  // the construction: every match still chains to the previous occurrence
  // of its own family.
  std::vector<std::uint64_t> occurrence(config.families, 0);
  std::uint64_t mutation_counter = 1;

  Bytes out;
  out.reserve(size + 64);
  std::uint64_t t = 0;  // global occurrence counter (round-robin family)
  while (out.size() < size) {
    const std::uint32_t f = static_cast<std::uint32_t>(t % config.families);
    Bytes& s = family[f];
    const std::uint64_t j = occurrence[f]++;
    const std::uint64_t v = mutation_counter++;
    const std::uint8_t b0 = static_cast<std::uint8_t>(0x40 + v % 181);
    const std::uint8_t b1 = static_cast<std::uint8_t>(0x40 + (v / 181) % 181);
    if (j % 2 == 0) {
      s[0] = b0;
      s[1] = b1;
    } else {
      s[s.size() - 2] = b0;
      s[s.size() - 1] = b1;
    }
    // Separator from the disjoint low range, rotating by position.
    out.push_back(static_cast<std::uint8_t>(0x20 + (t % 0x20)));
    out.insert(out.end(), s.begin(), s.end());
    ++t;
  }
  out.resize(size);
  return out;
}

}  // namespace gompresso::datagen
