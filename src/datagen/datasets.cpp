#include "datagen/datasets.hpp"

#include "util/rng.hpp"

namespace gompresso::datagen {

Bytes wikipedia(std::size_t size) { return make_wikipedia_xml(size); }

Bytes matrix(std::size_t size) { return make_matrix_market(size); }

Bytes random_bytes(std::size_t size, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(size);
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    const std::uint64_t v = rng.next_u64();
    for (std::size_t k = 0; k < 8; ++k) out[i + k] = static_cast<std::uint8_t>(v >> (8 * k));
  }
  for (; i < size; ++i) out[i] = static_cast<std::uint8_t>(rng.next_u32());
  return out;
}

Bytes by_name(const std::string& name, std::size_t size) {
  if (name == "wikipedia" || name == "wiki") return wikipedia(size);
  if (name == "matrix") return matrix(size);
  if (name == "random") return random_bytes(size);
  throw Error("unknown dataset: " + name);
}

}  // namespace gompresso::datagen
