// MatrixMarket sparse-matrix file generator.
//
// The paper's second dataset is the "Hollywood-2009" sparse matrix (a
// social-network graph) from the University of Florida collection, stored
// as a 0.77 GB MatrixMarket coordinate file; gzip compresses it 4.99:1
// (§V). This generator emits a MatrixMarket coordinate file for a
// synthetic power-law graph: edges sorted by source vertex, which gives
// the long runs of shared digit prefixes that make such files highly
// compressible.
#pragma once

#include <cstdint>

#include "util/common.hpp"

namespace gompresso::datagen {

struct MatrixMarketConfig {
  std::uint64_t vertices = 1139905;    // Hollywood-2009 vertex count
  std::uint64_t community_pool = 16;   // shared neighbour ids per community
  std::uint64_t community_vertices = 40;  // vertices sharing one pool
  std::uint64_t degree_min = 4;
  std::uint64_t degree_max = 10;
  std::uint64_t seed = 0x4D617472ULL;
};

/// Generates approximately `size` bytes of MatrixMarket coordinate data.
Bytes make_matrix_market(std::size_t size, const MatrixMarketConfig& config = {});

}  // namespace gompresso::datagen
