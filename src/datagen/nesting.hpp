// Nesting-depth dataset generator (paper §V-A, Fig. 10).
//
// "We created a collection of artificial 1 GB datasets that induce a
// specified depth of back-reference nesting. ... we repeat a 16-byte
// string with a one-byte change occurring in an alternating fashion at
// the first and last byte position. ... A separator byte, chosen from a
// disjoint set of bytes, is used to prevent accidental and undesired
// matches ... In order to generate datasets with a smaller nesting depth,
// we alternate multiple distinct repeated strings. For example, two
// repeated strings result in depth 16, four repeated strings in depth 8."
//
// With `families` distinct repeated strings interleaved round-robin, each
// occurrence's back-reference points at the previous occurrence of its
// own family, `families` sequences earlier — so a warp group of 32
// sequences contains dependency chains of depth ceil(32 / families).
#pragma once

#include <cstdint>

#include "util/common.hpp"

namespace gompresso::datagen {

struct NestingConfig {
  /// Number of distinct repeated strings (1..32). 1 → depth 32 (the
  /// fully serial case), 32 → depth 1 (every reference leaves the group).
  std::uint32_t families = 1;
  std::uint32_t string_len = 16;  // paper: "close to the average match length"
  std::uint64_t seed = 0x4E657374ULL;
};

/// Expected MRR resolution rounds per warp group for a family count.
inline std::uint32_t expected_depth(std::uint32_t families) {
  return (32 + families - 1) / families;
}

/// Generates `size` bytes inducing the configured nesting depth.
Bytes make_nesting(std::size_t size, const NestingConfig& config = {});

}  // namespace gompresso::datagen
