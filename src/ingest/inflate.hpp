// Two-pass DEFLATE (RFC 1951) inflate for the gzip ingest backend.
//
// The rapidgzip recipe (PAPERS.md) needs three capabilities beyond a
// classic inflate:
//
//   * decode from an ARBITRARY bit offset with an UNKNOWN 32 KiB
//     window — back-references that reach before the chunk start are
//     emitted as 16-bit marker tokens (kMarkerBase + window index) and
//     patched to bytes once the predecessor chunk's window arrives
//     (MarkerSink / patch_markers);
//   * speculatively find DEFLATE block boundaries in the middle of a
//     stream (find_block_boundary): try each bit offset, parse a block
//     header with strong structural filters (an exactly Kraft-complete
//     lit/len code containing end-of-block, a complete distance code),
//     and let a full trial decode confirm the survivor;
//   * decode a bounded CHUNK of blocks — stop at the first block
//     boundary at/after a target bit — handling gzip member
//     transitions (trailer + next header + window reset) mid-chunk.
//
// The hot loop reuses the fused-table technique of the native codec
// (core/decode_tables.hpp packing, huffman::build_packed_table): one
// table load per token carrying value + extra-bit count + code length
// + kind, with double-literal upgrading, and one BitReader::refill()
// per token (worst case lit/len 15 + extra 5 + dist 15 + extra 13 =
// 48 <= 56 guaranteed bits).
#pragma once

#include <cstdint>
#include <vector>

#include "bitstream/bit_reader.hpp"
#include "util/common.hpp"

namespace gompresso::ingest {

/// DEFLATE window (RFC 1951 §2): no back-reference reaches further.
inline constexpr std::size_t kWindowSize = 32768;

/// Marker tokens: token < kMarkerBase is a literal byte; token
/// kMarkerBase + w reads start-window byte w, where w indexes a dense
/// 32 KiB window ending immediately before the chunk (w = 0 is the
/// oldest byte, kWindowSize - 1 the byte just before the chunk).
inline constexpr std::uint16_t kMarkerBase = 256;

/// Fused decode tables for one DEFLATE block (entry layout shared with
/// core/decode_tables.hpp). Sized to the actual maximum code length so
/// speculative rebuilds stay small.
struct InflateTables {
  std::vector<std::uint32_t> litlen;
  unsigned litlen_bits = 0;
  std::vector<std::uint32_t> dist;
  unsigned dist_bits = 0;
};

/// Per-worker scratch: code-length buffers and tables are reused
/// across blocks/candidates so steady-state decode allocates nothing.
class InflateScratch {
 public:
  InflateTables tables;                      // current dynamic block
  std::vector<std::uint8_t> litlen_lengths;  // 288 entries when parsed
  std::vector<std::uint8_t> dist_lengths;    // 30 entries when parsed
  std::vector<std::uint8_t> precode_lengths;
  std::vector<std::uint32_t> precode_table;

  /// Fixed-code tables (RFC 1951 §3.2.6), built on first use.
  const InflateTables& fixed();

 private:
  InflateTables fixed_;
  bool fixed_built_ = false;
};

/// Parses a dynamic block header (HLIT/HDIST/HCLEN + precode +
/// run-length-coded lengths) at `br` into s.litlen_lengths /
/// s.dist_lengths. Returns false on any structural violation; never
/// throws (the boundary finder calls this at nearly every bit offset).
/// `require_complete` additionally demands an exactly Kraft-complete
/// lit/len code with a non-zero end-of-block length and a complete (or
/// explicitly empty) distance code — real encoders always emit such
/// headers, and the extra filter is what makes false boundary
/// candidates rare.
bool parse_dynamic_header(BitReader& br, InflateScratch& s, bool require_complete);

/// Builds s.tables from the lengths a parse_dynamic_header() call left
/// in `s`. Throws CorruptionError on an invalid code.
void build_dynamic_tables(InflateScratch& s);

/// No plausible block boundary in the scan range.
inline constexpr std::uint64_t kNoBoundary = ~std::uint64_t{0};

struct BoundaryScanStats {
  std::uint64_t bits_scanned = 0;
  std::uint64_t candidates = 0;  // offsets that survived the header filter
};

/// Scans bit offsets [begin_bit, end_bit) of `data` for the first
/// offset where a DEFLATE block header parses cleanly: BTYPE 2 with
/// the strong dynamic-header filter above, or BTYPE 0 whose byte-
/// aligned LEN/~NLEN pair checks out with LEN > 0. BTYPE 1 (fixed) is
/// never accepted as an anchor — any 3-bit pattern matches it, so it
/// carries no evidence (rapidgzip skips it for the same reason).
/// Returns the bit offset or kNoBoundary.
std::uint64_t find_block_boundary(ByteSpan data, std::uint64_t begin_bit,
                                  std::uint64_t end_bit, InflateScratch& s,
                                  BoundaryScanStats* stats = nullptr);

// ---------------------------------------------------------------- sinks

/// Resolved-byte sink over a caller-provided span (the serve-path
/// block decode: output size known from the index). Distances reaching
/// before the first produced byte resolve through `start_window`, the
/// tail of the stream's last <= 32 KiB before this chunk.
class ByteSink {
 public:
  ByteSink(MutableByteSpan out, ByteSpan start_window)
      : out_(out.data()), cap_(out.size()), window_(start_window) {}

  std::uint64_t produced() const { return pos_; }

  void push(std::uint8_t b) {
    check_corrupt(pos_ < cap_, "gzip: block decodes past its indexed size");
    out_[pos_++] = b;
  }

  void copy(std::uint32_t length, std::uint32_t distance);

  /// Member boundary: references never cross it.
  void reset_window() {
    window_ = ByteSpan();
    member_base_ = pos_;
  }

 private:
  std::uint8_t* out_;
  std::size_t cap_;
  std::size_t pos_ = 0;
  ByteSpan window_;
  std::size_t member_base_ = 0;
};

/// Resolved-byte sink with growing storage (index build, sequential
/// fallback, pipe streaming). `flush` (optional) is invoked with
/// resolved bytes once the buffer passes `flush_threshold`; the last
/// kWindowSize bytes are always retained so references stay in reach.
class GrowingByteSink {
 public:
  using FlushFn = void (*)(void* ctx, ByteSpan chunk);

  GrowingByteSink(ByteSpan start_window, std::uint64_t max_output)
      : window_(start_window), max_output_(max_output) {}

  /// Enables streaming: resolved bytes beyond the retained window are
  /// handed to `flush(ctx, span)` once the buffer exceeds `threshold`.
  void enable_flush(FlushFn flush, void* ctx, std::size_t threshold) {
    flush_ = flush;
    flush_ctx_ = ctx;
    flush_threshold_ = threshold;
  }

  std::uint64_t produced() const { return flushed_ + buf_.size(); }

  /// Buffered (unflushed) bytes; the whole output when flush is off.
  Bytes& bytes() { return buf_; }

  /// Flushes everything (end of stream; references are done).
  void finish();

  void push(std::uint8_t b) {
    guard_growth(1);
    buf_.push_back(b);
    maybe_flush();
  }

  void copy(std::uint32_t length, std::uint32_t distance);

  void reset_window() {
    window_ = ByteSpan();
    member_base_ = produced();
  }

 private:
  void guard_growth(std::uint64_t n) {
    check_corrupt(produced() + n <= max_output_,
                  "gzip: chunk output exceeds the deflate expansion bound");
  }
  void maybe_flush();

  Bytes buf_;
  std::uint64_t flushed_ = 0;
  ByteSpan window_;
  std::uint64_t member_base_ = 0;
  std::uint64_t max_output_ = 0;
  FlushFn flush_ = nullptr;
  void* flush_ctx_ = nullptr;
  std::size_t flush_threshold_ = 0;
};

/// Marker-token sink for chunks whose window is unknown: literals and
/// in-chunk references resolve to byte tokens, references into the
/// unknown 32 KiB start window become markers. Copying an earlier
/// token forward is always correct — a marker names an absolute
/// start-window byte, independent of its position.
class MarkerSink {
 public:
  MarkerSink(std::vector<std::uint16_t>& out, std::uint64_t max_output)
      : out_(out), max_output_(max_output) {
    out_.clear();
  }

  std::uint64_t produced() const { return out_.size(); }

  void push(std::uint8_t b) {
    guard_growth(1);
    out_.push_back(b);
  }

  void copy(std::uint32_t length, std::uint32_t distance);

  void reset_window() {
    allow_window_ = false;
    member_base_ = out_.size();
  }

 private:
  void guard_growth(std::uint64_t n) {
    check_corrupt(out_.size() + n <= max_output_,
                  "gzip: chunk output exceeds the deflate expansion bound");
  }

  std::vector<std::uint16_t>& out_;
  bool allow_window_ = true;  // markers permitted (no member start seen yet)
  std::size_t member_base_ = 0;
  std::uint64_t max_output_ = 0;
};

/// Resolves a marker-token stream against the true start window
/// (exactly kWindowSize bytes, oldest first). out.size() must equal
/// tokens.size(). Returns the number of markers patched.
std::uint64_t patch_markers(const std::vector<std::uint16_t>& tokens,
                            ByteSpan window, MutableByteSpan out);

// --------------------------------------------------------- chunk driver

/// One gzip member ending inside a decoded chunk.
struct MemberEvent {
  std::uint64_t out_offset = 0;  // chunk-relative bytes produced at the end
  std::uint32_t crc32 = 0;       // trailer CRC32 of the whole member
  std::uint32_t isize = 0;       // trailer ISIZE (length mod 2^32)
  std::uint64_t trailer_end_byte = 0;  // slice-relative byte past the trailer
};

enum class ChunkStatus {
  kStopped,      // reached stop_bit at a block boundary
  kEndOfStream,  // final member's trailer consumed at stream_end_byte
  kNeedMoreData, // ran past `data` but the stream continues — grow the
                 // slice and retry (chunk decode is idempotent)
};

struct ChunkResult {
  std::uint64_t end_bit = 0;  // slice-relative bit after the last block
                              // (and any trailer/header it closed with)
  std::vector<MemberEvent> members;
};

/// Decodes DEFLATE blocks from slice-relative `start_bit` (which must
/// be a block start) until the first block boundary at/after
/// `stop_bit`, or until the stream ends (a member trailer closing at
/// `stream_end_byte`, also slice-relative; it may exceed data.size()
/// when the slice is partial — that is what kNeedMoreData reports).
/// Member transitions inside the chunk are consumed here: trailer
/// parse (recorded in result.members), next header skip, window reset.
ChunkStatus inflate_chunk(ByteSpan data, std::uint64_t start_bit,
                          std::uint64_t stop_bit, std::uint64_t stream_end_byte,
                          ByteSink& sink, InflateScratch& s, ChunkResult& result);
ChunkStatus inflate_chunk(ByteSpan data, std::uint64_t start_bit,
                          std::uint64_t stop_bit, std::uint64_t stream_end_byte,
                          GrowingByteSink& sink, InflateScratch& s,
                          ChunkResult& result);
ChunkStatus inflate_chunk(ByteSpan data, std::uint64_t start_bit,
                          std::uint64_t stop_bit, std::uint64_t stream_end_byte,
                          MarkerSink& sink, InflateScratch& s,
                          ChunkResult& result);

/// Worst-case DEFLATE expansion of `comp_bytes` compressed bytes (a
/// match emits <= 258 bytes for two 1-bit codes), plus slack for a
/// stored-block tail. Sinks use it as the runaway guard for
/// speculative candidates.
inline std::uint64_t max_inflated_bytes(std::uint64_t comp_bytes) {
  return comp_bytes * 1032 + 66000;
}

}  // namespace gompresso::ingest
