// GzipBackend: serves an RFC 1952 gzip stream through the
// serve::ContainerBackend seam, so a DecodeSession (and everything on
// top of it — prefetch, LRU cache, retry/backoff, damage-tolerant
// reads, the net daemon) works on .gz exactly as on the native
// container. Each "block" is one GzipChunk of the discovered index:
// decode stages the chunk's compressed byte extent, then re-inflates
// it with its checkpointed 32 KiB start window — no markers, no
// dependence on neighbouring chunks.
#pragma once

#include <memory>

#include "ingest/gzip_index.hpp"
#include "serve/backend.hpp"

namespace gompresso::ingest {

/// Wraps a prebuilt (or sidecar-loaded) index.
std::shared_ptr<serve::ContainerBackend> make_gzip_backend(GzipIndex index);

/// Builds the index from `source` first (one full decode of the
/// stream), then wraps it.
std::shared_ptr<serve::ContainerBackend> make_gzip_backend(
    serve::ByteSource& source, const GzipIndexOptions& options = {});

}  // namespace gompresso::ingest
