#include "ingest/inflate.hpp"

#include <algorithm>

#include "core/decode_tables.hpp"
#include "huffman/decoder.hpp"
#include "ingest/gzip_format.hpp"
#include "lz77/deflate_tables.hpp"

namespace gompresso::ingest {
namespace {

// Packed fused-entry transforms (core/decode_tables.hpp layout). The
// RFC-impossible symbols — lit/len 286/287, distance 30/31, present in
// the fixed code's length list — map to 0, i.e. table holes, so using
// one surfaces as an invalid codeword instead of a bogus match.
std::uint32_t litlen_entry(std::uint16_t sym, unsigned len) {
  if (sym < 256) return core::pack_fused(core::kFusedLiteral, sym, 0, len);
  if (sym == 256) return core::pack_fused(core::kFusedEnd, 0, 0, len);
  if (sym >= 286) return 0;
  const std::uint32_t code = sym - 257u;
  return core::pack_fused(core::kFusedMatch, lz77::length_base(code),
                          lz77::length_extra_bits(code), len);
}

std::uint32_t dist_entry(std::uint16_t sym, unsigned len) {
  if (sym >= lz77::kNumDistanceCodes) return 0;
  return core::pack_fused(0, lz77::distance_base(sym),
                          lz77::distance_extra_bits(sym), len);
}

/// Converts literal entries whose peek window also fully determines a
/// following literal into double-literal entries (one load, two
/// bytes). Safe in place: only kFusedLiteral entries are read as
/// second halves, and a converted entry no longer matches that kind —
/// a missed pairing is merely conservative.
void upgrade_double_literals(std::vector<std::uint32_t>& table, unsigned table_bits) {
  for (std::size_t i = 0; i < table.size(); ++i) {
    const std::uint32_t e = table[i];
    if (e == 0 || core::fused_kind(e) != core::kFusedLiteral) continue;
    const unsigned l1 = core::fused_code_length(e);
    if (l1 >= table_bits) continue;
    const std::uint32_t e2 = table[i >> l1];
    if (e2 == 0 || core::fused_kind(e2) != core::kFusedLiteral) continue;
    const unsigned l2 = core::fused_code_length(e2);
    // The second code must lie entirely within the known peeked bits.
    if (l1 + l2 > table_bits) continue;
    table[i] = core::pack_fused(
        core::kFusedDoubleLiteral,
        core::fused_value(e) | (core::fused_value(e2) << 8), 0, l1 + l2);
  }
}

unsigned max_length(const std::vector<std::uint8_t>& lengths) {
  unsigned m = 0;
  for (const auto l : lengths) m = std::max<unsigned>(m, l);
  return m;
}

/// zlib-style Kraft audit: -1 over-subscribed, 0 exactly complete,
/// +1 incomplete (an all-zero length set reads as incomplete).
int code_status(const std::vector<std::uint8_t>& lengths) {
  std::int64_t counts[16] = {};
  for (const auto l : lengths) ++counts[l];
  std::int64_t left = 1;
  for (unsigned len = 1; len <= 15; ++len) {
    left <<= 1;
    left -= counts[len];
    if (left < 0) return -1;
  }
  return left > 0 ? 1 : 0;
}

bool all_zero(const std::vector<std::uint8_t>& lengths) {
  return std::all_of(lengths.begin(), lengths.end(),
                     [](std::uint8_t l) { return l == 0; });
}

/// Fused-table token loop shared by all sinks. One refill() per token:
/// lit/len code (<= 15) + length extra (<= 5) + distance code (<= 15)
/// + distance extra (<= 13) = 48 <= kGuaranteedBits.
template <typename Sink>
void decode_block(BitReader& br, const InflateTables& t, Sink& sink) {
  const std::uint32_t* lit = t.litlen.data();
  const std::uint32_t* dst = t.dist.data();
  const unsigned lbits = t.litlen_bits;
  const unsigned dbits = t.dist_bits;
  while (true) {
    br.refill();
    const std::uint32_t e = lit[br.peek_unchecked(lbits)];
    check_corrupt(e != 0, "gzip: invalid lit/len codeword");
    br.consume_unchecked(core::fused_code_length(e));
    const std::uint32_t kind = core::fused_kind(e);
    if (kind == core::kFusedLiteral) {
      sink.push(static_cast<std::uint8_t>(core::fused_value(e)));
      continue;
    }
    if (kind == core::kFusedDoubleLiteral) {
      const std::uint32_t v = core::fused_value(e);
      sink.push(static_cast<std::uint8_t>(v & 0xFF));
      sink.push(static_cast<std::uint8_t>(v >> 8));
      continue;
    }
    if (kind == core::kFusedEnd) return;
    const std::uint32_t length =
        core::fused_value(e) + br.read_unchecked(core::fused_extra_bits(e));
    const std::uint32_t de = dst[br.peek_unchecked(dbits)];
    check_corrupt(de != 0, "gzip: invalid distance codeword");
    br.consume_unchecked(core::fused_code_length(de));
    const std::uint32_t distance =
        core::fused_value(de) + br.read_unchecked(core::fused_extra_bits(de));
    sink.copy(length, distance);
  }
}

void align_to_byte(BitReader& br) {
  const unsigned pad = static_cast<unsigned>(br.bit_pos() & 7);
  if (pad != 0) br.consume(8 - pad);
}

}  // namespace

const InflateTables& InflateScratch::fixed() {
  if (!fixed_built_) {
    // RFC 1951 §3.2.6. Both codes are complete by construction, so the
    // builds below cannot throw.
    std::vector<std::uint8_t> ll(288);
    for (unsigned s = 0; s < 144; ++s) ll[s] = 8;
    for (unsigned s = 144; s < 256; ++s) ll[s] = 9;
    for (unsigned s = 256; s < 280; ++s) ll[s] = 7;
    for (unsigned s = 280; s < 288; ++s) ll[s] = 8;
    huffman::build_packed_table(ll, 9, fixed_.litlen, litlen_entry);
    upgrade_double_literals(fixed_.litlen, 9);
    fixed_.litlen_bits = 9;
    std::vector<std::uint8_t> dl(32, 5);
    huffman::build_packed_table(dl, 5, fixed_.dist, dist_entry);
    fixed_.dist_bits = 5;
    fixed_built_ = true;
  }
  return fixed_;
}

bool parse_dynamic_header(BitReader& br, InflateScratch& s, bool require_complete) {
  const unsigned hlit = br.read(5) + 257;
  const unsigned hdist = br.read(5) + 1;
  const unsigned hclen = br.read(4) + 4;
  if (hlit > 286 || hdist > 30) return false;

  static constexpr std::uint8_t kPrecodeOrder[19] = {
      16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15};
  s.precode_lengths.assign(19, 0);
  for (unsigned i = 0; i < hclen; ++i) {
    s.precode_lengths[kPrecodeOrder[i]] = static_cast<std::uint8_t>(br.read(3));
  }
  // The precode must be exactly complete (zlib rejects anything else,
  // so no valid stream has an incomplete one) — which also means the
  // table built from it has no holes.
  if (code_status(s.precode_lengths) != 0) return false;
  const unsigned pre_bits = max_length(s.precode_lengths);
  huffman::build_packed_table(
      s.precode_lengths, pre_bits, s.precode_table,
      [](std::uint16_t sym, unsigned len) {
        return core::pack_fused(0, sym, 0, len);
      });

  s.litlen_lengths.assign(hlit, 0);
  s.dist_lengths.assign(hdist, 0);
  const unsigned total = hlit + hdist;
  const auto set_len = [&](unsigned i, std::uint8_t v) {
    if (i < hlit) {
      s.litlen_lengths[i] = v;
    } else {
      s.dist_lengths[i - hlit] = v;
    }
  };
  unsigned i = 0;
  while (i < total) {
    br.refill();  // code (<= 7) + repeat extra (<= 7) per iteration
    const std::uint32_t e = s.precode_table[br.peek_unchecked(pre_bits)];
    if (e == 0) return false;
    br.consume_unchecked(core::fused_code_length(e));
    const std::uint32_t sym = core::fused_value(e);
    if (sym < 16) {
      set_len(i++, static_cast<std::uint8_t>(sym));
      continue;
    }
    unsigned repeat;
    std::uint8_t value = 0;
    if (sym == 16) {
      if (i == 0) return false;  // nothing to repeat
      value = i - 1 < hlit ? s.litlen_lengths[i - 1] : s.dist_lengths[i - 1 - hlit];
      repeat = 3 + br.read_unchecked(2);
    } else if (sym == 17) {
      repeat = 3 + br.read_unchecked(3);
    } else {
      repeat = 11 + br.read_unchecked(7);
    }
    if (i + repeat > total) return false;
    for (unsigned k = 0; k < repeat; ++k) set_len(i++, value);
  }

  // An over-subscribed code is invalid in any mode; holes from an
  // incomplete code are tolerated in decode mode (they error on use).
  const int lit_status = code_status(s.litlen_lengths);
  const int dist_status = code_status(s.dist_lengths);
  if (lit_status < 0 || dist_status < 0) return false;
  if (require_complete) {
    // Real encoders emit an exactly complete lit/len code containing
    // end-of-block, and a complete (or entirely absent) distance code.
    // Demanding that here is what makes random bit offsets fail the
    // filter almost surely.
    if (lit_status != 0 || s.litlen_lengths[256] == 0) return false;
    if (dist_status != 0 && !all_zero(s.dist_lengths)) return false;
  }
  return true;
}

void build_dynamic_tables(InflateScratch& s) {
  try {
    const unsigned lbits = max_length(s.litlen_lengths);
    check_corrupt(lbits != 0, "gzip: dynamic block has an empty lit/len code");
    huffman::build_packed_table(s.litlen_lengths, lbits, s.tables.litlen,
                                litlen_entry);
    upgrade_double_literals(s.tables.litlen, lbits);
    s.tables.litlen_bits = lbits;
    const unsigned dbits = std::max(1u, max_length(s.dist_lengths));
    huffman::build_packed_table(s.dist_lengths, dbits, s.tables.dist, dist_entry);
    s.tables.dist_bits = dbits;
  } catch (const CorruptionError&) {
    throw;
  } catch (const Error&) {
    // build_packed_table reports via plain Error (kConfig); for a
    // decode of untrusted input that is data damage, not API misuse.
    throw CorruptionError("gzip: invalid dynamic huffman code");
  }
}

std::uint64_t find_block_boundary(ByteSpan data, std::uint64_t begin_bit,
                                  std::uint64_t end_bit, InflateScratch& s,
                                  BoundaryScanStats* stats) {
  end_bit = std::min<std::uint64_t>(end_bit, 8 * data.size());
  for (std::uint64_t bit = begin_bit; bit < end_bit; ++bit) {
    if (stats != nullptr) ++stats->bits_scanned;
    BitReader br(data, bit);
    br.read(1);  // BFINAL: either value is plausible
    const std::uint32_t btype = br.read(2);
    if (btype == 0) {
      // Weak filter: byte-aligned LEN/~NLEN must match, and an empty
      // stored block is too unusual to anchor on.
      align_to_byte(br);
      const std::uint32_t len = br.read(16);
      const std::uint32_t nlen = br.read(16);
      if ((len ^ nlen) != 0xFFFF || len == 0 || br.overflowed()) continue;
      if ((br.bit_pos() >> 3) + len > data.size()) continue;
    } else if (btype == 2) {
      if (!parse_dynamic_header(br, s, /*require_complete=*/true)) continue;
      if (br.overflowed()) continue;
    } else {
      // BTYPE 1 (fixed) has no header to validate — any 3 bits match,
      // so it carries no evidence; BTYPE 3 is reserved.
      continue;
    }
    if (stats != nullptr) ++stats->candidates;
    return bit;
  }
  return kNoBoundary;
}

// ---------------------------------------------------------------- sinks

namespace {

/// Grows capacity geometrically before an in-vector overlap copy. A
/// bare reserve(size + length) would request a capacity just past the
/// current one on every call, so a match-dominated run (notably the
/// zero padding past a short slice, which can decode as an endless
/// match chain) would reallocate the whole buffer per match —
/// quadratic time against the expansion bound instead of linear.
template <typename Vec>
void reserve_for(Vec& v, std::size_t length) {
  const std::size_t need = v.size() + length;
  if (need > v.capacity()) {
    v.reserve(std::max(need, v.capacity() + v.capacity() / 2));
  }
}

}  // namespace

void ByteSink::copy(std::uint32_t length, std::uint32_t distance) {
  check_corrupt(length <= cap_ - pos_, "gzip: block decodes past its indexed size");
  std::uint64_t rel = pos_ - member_base_;
  if (distance > rel) {
    const std::uint64_t from_window = distance - rel;
    check_corrupt(from_window <= window_.size(),
                  "gzip: back-reference beyond window");
    const std::uint8_t* wsrc = window_.data() + (window_.size() - from_window);
    const std::uint32_t n =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(length, from_window));
    for (std::uint32_t k = 0; k < n; ++k) out_[pos_++] = wsrc[k];
    length -= n;
    if (length == 0) return;
    // The window part is exhausted, so the source continues at the
    // member's first output byte: distance <= pos_ - member_base_ now.
  }
  const std::uint8_t* src = out_ + (pos_ - distance);
  for (std::uint32_t k = 0; k < length; ++k) out_[pos_++] = *src++;
}

void GrowingByteSink::copy(std::uint32_t length, std::uint32_t distance) {
  guard_growth(length);
  reserve_for(buf_, length);  // keep self-referencing pushes cheap
  const std::uint64_t rel = produced() - member_base_;
  std::uint32_t remaining = length;
  if (distance > rel) {
    const std::uint64_t from_window = distance - rel;
    check_corrupt(from_window <= window_.size(),
                  "gzip: back-reference beyond window");
    const std::uint8_t* wsrc = window_.data() + (window_.size() - from_window);
    const std::uint32_t n = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(remaining, from_window));
    buf_.insert(buf_.end(), wsrc, wsrc + n);
    remaining -= n;
  }
  // In-buffer overlap copy. The buffer always retains at least the last
  // kWindowSize >= distance bytes (maybe_flush keeps that tail), so the
  // source index cannot underrun flushed data.
  for (std::uint32_t k = 0; k < remaining; ++k) {
    buf_.push_back(buf_[buf_.size() - distance]);
  }
  maybe_flush();
}

void GrowingByteSink::maybe_flush() {
  if (flush_ == nullptr || buf_.size() < flush_threshold_ ||
      buf_.size() <= kWindowSize) {
    return;
  }
  const std::size_t n = buf_.size() - kWindowSize;
  flush_(flush_ctx_, ByteSpan(buf_.data(), n));
  buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(n));
  flushed_ += n;
}

void GrowingByteSink::finish() {
  if (flush_ == nullptr || buf_.empty()) return;
  flush_(flush_ctx_, ByteSpan(buf_.data(), buf_.size()));
  flushed_ += buf_.size();
  buf_.clear();
}

void MarkerSink::copy(std::uint32_t length, std::uint32_t distance) {
  guard_growth(length);
  reserve_for(out_, length);
  std::uint32_t remaining = length;
  if (distance > out_.size() - member_base_) {
    check_corrupt(allow_window_, "gzip: back-reference beyond window");
    check_corrupt(distance - (out_.size() - member_base_) <= kWindowSize,
                  "gzip: back-reference beyond window");
    // Positions the reference reaches before the chunk become markers
    // naming absolute start-window bytes: at relative position p the
    // source byte is window[kWindowSize - (distance - p)].
    while (remaining > 0) {
      const std::size_t rel = out_.size() - member_base_;
      if (distance <= rel) break;
      const std::size_t w = kWindowSize - (distance - rel);
      out_.push_back(static_cast<std::uint16_t>(kMarkerBase + w));
      --remaining;
    }
  }
  // Token copy: a marker names an absolute window byte, so replicating
  // it forward preserves meaning.
  for (; remaining > 0; --remaining) {
    out_.push_back(out_[out_.size() - distance]);
  }
}

std::uint64_t patch_markers(const std::vector<std::uint16_t>& tokens,
                            ByteSpan window, MutableByteSpan out) {
  check(window.size() == kWindowSize, "gzip: patch window must be 32 KiB");
  check(out.size() == tokens.size(), "gzip: marker patch size mismatch");
  std::uint64_t patched = 0;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::uint16_t t = tokens[i];
    if (t < kMarkerBase) {
      out[i] = static_cast<std::uint8_t>(t);
    } else {
      out[i] = window[t - kMarkerBase];
      ++patched;
    }
  }
  return patched;
}

// --------------------------------------------------------- chunk driver

namespace {

template <typename Sink>
ChunkStatus run_chunk(ByteSpan data, std::uint64_t start_bit,
                      std::uint64_t stop_bit, std::uint64_t stream_end_byte,
                      Sink& sink, InflateScratch& s, ChunkResult& result) {
  result.members.clear();
  result.end_bit = 0;
  // A partial slice turns "ran past the data" into grow-and-retry; a
  // full slice makes the same condition real corruption.
  const bool partial = data.size() < stream_end_byte;
  BitReader br(data, start_bit);
  const auto bail = [&](const char* msg) -> ChunkStatus {
    if (partial) return ChunkStatus::kNeedMoreData;
    throw CorruptionError(msg);
  };
  try {
    while (true) {
      if (br.bit_pos() >= stop_bit) {
        result.end_bit = br.bit_pos();
        return ChunkStatus::kStopped;
      }
      const std::uint32_t bfinal = br.read(1);
      const std::uint32_t btype = br.read(2);
      if (btype == 0) {
        align_to_byte(br);
        const std::uint32_t len = br.read(16);
        const std::uint32_t nlen = br.read(16);
        check_corrupt((len ^ nlen) == 0xFFFF,
                      "gzip: stored block LEN/NLEN mismatch");
        const std::uint64_t byte_off = br.bit_pos() >> 3;
        if (byte_off + len > data.size()) {
          return bail("gzip: stored block truncated");
        }
        for (std::uint32_t k = 0; k < len; ++k) {
          sink.push(data[static_cast<std::size_t>(byte_off) + k]);
        }
        br = BitReader(data, (byte_off + len) * 8);
      } else if (btype == 1) {
        decode_block(br, s.fixed(), sink);
      } else if (btype == 2) {
        check_corrupt(parse_dynamic_header(br, s, /*require_complete=*/false),
                      "gzip: invalid dynamic block header");
        build_dynamic_tables(s);
        decode_block(br, s.tables, sink);
      } else {
        throw CorruptionError("gzip: reserved block type");
      }
      if (br.overflowed()) return bail("gzip: compressed stream truncated");
      if (bfinal != 0) {
        align_to_byte(br);
        MemberEvent ev;
        ev.crc32 = br.read(32);
        ev.isize = br.read(32);
        if (br.overflowed()) return bail("gzip: member trailer truncated");
        ev.out_offset = sink.produced();
        ev.trailer_end_byte = br.bit_pos() >> 3;
        result.members.push_back(ev);
        if (ev.trailer_end_byte == stream_end_byte) {
          result.end_bit = br.bit_pos();
          return ChunkStatus::kEndOfStream;
        }
        check_corrupt(ev.trailer_end_byte < stream_end_byte,
                      "gzip: member trailer past the end of the stream");
        skip_member_header(br);
        if (br.overflowed()) return bail("gzip: member header truncated");
        sink.reset_window();
      }
    }
  } catch (const CorruptionError&) {
    // Zero padding past a short slice decodes as garbage; that is a
    // grow-and-retry, not damage. Anything thrown before the reader
    // ran off the end is genuine.
    if (partial && br.overflowed()) return ChunkStatus::kNeedMoreData;
    throw;
  }
}

}  // namespace

ChunkStatus inflate_chunk(ByteSpan data, std::uint64_t start_bit,
                          std::uint64_t stop_bit, std::uint64_t stream_end_byte,
                          ByteSink& sink, InflateScratch& s, ChunkResult& result) {
  return run_chunk(data, start_bit, stop_bit, stream_end_byte, sink, s, result);
}

ChunkStatus inflate_chunk(ByteSpan data, std::uint64_t start_bit,
                          std::uint64_t stop_bit, std::uint64_t stream_end_byte,
                          GrowingByteSink& sink, InflateScratch& s,
                          ChunkResult& result) {
  return run_chunk(data, start_bit, stop_bit, stream_end_byte, sink, s, result);
}

ChunkStatus inflate_chunk(ByteSpan data, std::uint64_t start_bit,
                          std::uint64_t stop_bit, std::uint64_t stream_end_byte,
                          MarkerSink& sink, InflateScratch& s,
                          ChunkResult& result) {
  return run_chunk(data, start_bit, stop_bit, stream_end_byte, sink, s, result);
}

}  // namespace gompresso::ingest
