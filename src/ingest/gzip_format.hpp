// RFC 1952 gzip member framing: header parse/skip and trailer layout.
//
// Two parsers on purpose:
//   * parse_member_header() — the strict ByteReader path used where a
//     member starts a stream or is inspected cold (index build, the
//     pipe fallback, `gomp info`). Validates magic/CM, rejects
//     reserved FLG bits, captures FNAME, and verifies FHCRC (the CRC16
//     over the raw header bytes) when present.
//   * skip_member_header() — the in-stream BitReader path the chunk
//     decoders use at member transitions inside DEFLATE data. Same
//     structural validation, but it only skips the variable fields
//     (payload integrity is already guarded by the member CRC32 check
//     at index build). Running past the buffer surfaces through the
//     BitReader's overflow flag, which the chunk driver turns into a
//     grow-and-retry.
#pragma once

#include <cstdint>
#include <string>

#include "bitstream/bit_reader.hpp"
#include "format/sniff.hpp"
#include "util/byte_reader.hpp"
#include "util/common.hpp"

namespace gompresso::ingest {

/// FLG bits (RFC 1952 §2.3.1).
inline constexpr std::uint8_t kGzipFlagText = 1u << 0;
inline constexpr std::uint8_t kGzipFlagHcrc = 1u << 1;
inline constexpr std::uint8_t kGzipFlagExtra = 1u << 2;
inline constexpr std::uint8_t kGzipFlagName = 1u << 3;
inline constexpr std::uint8_t kGzipFlagComment = 1u << 4;
/// Reserved FLG bits "must be zero" — set bits mean a format this
/// parser does not understand.
inline constexpr std::uint8_t kGzipFlagReserved = 0xE0;

/// Fixed member trailer: CRC32 of the uncompressed member, then ISIZE
/// (uncompressed length mod 2^32), both little-endian.
inline constexpr std::size_t kGzipTrailerBytes = 8;

struct GzipMemberHeader {
  std::uint64_t header_bytes = 0;  // total header length
  std::uint8_t flags = 0;
  std::uint32_t mtime = 0;
  std::uint8_t xfl = 0;
  std::uint8_t os = 0;
  std::string name;  // FNAME contents when present (ISO 8859-1)
};

/// Strict parse of one member header starting at the reader's current
/// position. Throws FormatError on bad magic / CM / reserved FLG bits,
/// CorruptionError on an FHCRC mismatch, and whatever the reader
/// throws on truncation.
GzipMemberHeader parse_member_header(util::ByteReader& reader);

/// Skips a member header at a byte-aligned BitReader position,
/// validating magic/CM/reserved bits (CorruptionError — by the time a
/// mid-stream header is malformed the container format is established,
/// so it is data damage, not a format mismatch). Bits past the buffer
/// read as zero; the caller checks overflowed() afterwards.
void skip_member_header(BitReader& br);

}  // namespace gompresso::ingest
