#include "ingest/gzip_index.hpp"

#include <algorithm>
#include <fstream>
#include <iterator>

#include "obs/metrics.hpp"
#include "util/crc32.hpp"
#include "util/varint.hpp"

namespace gompresso::ingest {
namespace {

struct IngestCounters {
  obs::Counter index_builds;
  obs::Counter sidecar_loads;
  obs::Counter chunks_indexed;
  obs::Counter chunk_fallbacks;
  obs::Counter boundary_candidates;
  obs::Counter boundary_bits_scanned;
  obs::Counter bytes_indexed;
};

const IngestCounters& counters() {
  static const IngestCounters c = {
      obs::registry().counter("ingest.index_builds", "builds"),
      obs::registry().counter("ingest.sidecar_loads", "loads"),
      obs::registry().counter("ingest.chunks_indexed", "chunks"),
      obs::registry().counter("ingest.chunk_fallbacks", "chunks"),
      obs::registry().counter("ingest.boundary_candidates", "candidates"),
      obs::registry().counter("ingest.boundary_bits_scanned", "bits"),
      obs::registry().counter("ingest.bytes_indexed", "bytes"),
  };
  return c;
}

/// Extra slice bytes past the grid pitch so a block straddling the
/// nominal chunk end usually decodes without a grow-and-retry.
constexpr std::uint64_t kSliceMargin = 64 * 1024;

/// One grid cell's speculative work, filled in by a pool worker.
struct ChunkTask {
  // Inputs.
  std::uint64_t grid_byte = 0;       // c_i: cell begin (slice base)
  std::uint64_t next_grid_byte = 0;  // c_{i+1}: cell end (stop target)
  bool byte_mode = false;            // known start: decode bytes directly
  std::uint64_t start_bit = 0;       // byte mode only (absolute)

  // Outputs.
  bool ok = false;            // a decode from found_bit/start_bit succeeded
  std::uint64_t found_bit = 0;  // absolute block boundary the decode used
  std::uint64_t end_bit = 0;    // absolute end of the decoded run
  ChunkStatus status = ChunkStatus::kStopped;
  std::vector<std::uint16_t> tokens;   // marker mode
  Bytes bytes;                         // byte mode
  std::vector<MemberEvent> members;    // out_offsets are chunk-relative
  BoundaryScanStats stats;
};

/// Decodes resolved bytes from absolute `start_bit` until the first
/// block boundary at/after byte `stop_byte`, growing the staged slice
/// on kNeedMoreData. Used for the stream-start chunk (window known to
/// be empty) and for stitch fallbacks (window known from the
/// predecessor). Corruption here is genuine — the window is true.
struct ByteRun {
  std::uint64_t end_bit = 0;
  ChunkStatus status = ChunkStatus::kStopped;
  Bytes out;
  std::vector<MemberEvent> members;
};

ByteRun decode_byte_run(serve::ByteSource& source, std::uint64_t source_size,
                        std::uint64_t start_bit, std::uint64_t stop_byte,
                        ByteSpan start_window, InflateScratch& scratch) {
  const std::uint64_t base = start_bit >> 3;
  std::uint64_t slice_len =
      std::min(stop_byte - base + kSliceMargin, source_size - base);
  while (true) {
    Bytes slice(static_cast<std::size_t>(slice_len));
    source.read_at(base, MutableByteSpan(slice.data(), slice.size()));
    // Bounding by the staged slice (not the whole remaining stream)
    // caps the garbage a short slice's zero padding can decode into
    // before the grow-and-retry kicks in.
    GrowingByteSink sink(start_window, max_inflated_bytes(slice_len));
    ChunkResult res;
    const ChunkStatus status = inflate_chunk(
        ByteSpan(slice.data(), slice.size()), start_bit - 8 * base,
        (stop_byte - base) * 8, source_size - base, sink, scratch, res);
    if (status == ChunkStatus::kNeedMoreData) {
      slice_len = std::min(slice_len * 2, source_size - base);
      continue;  // terminates: a full slice can never report kNeedMoreData
    }
    ByteRun run;
    run.end_bit = 8 * base + res.end_bit;
    run.status = status;
    run.out = std::move(sink.bytes());
    run.members = std::move(res.members);
    return run;
  }
}

/// Speculative path: find a boundary in [grid_byte, next_grid_byte),
/// marker-decode from it. Boundary misses and false candidates leave
/// ok == false / advance the scan; only I/O errors escape.
void run_marker_task(serve::ByteSource& source, std::uint64_t source_size,
                     ChunkTask& t) {
  const std::uint64_t base = t.grid_byte;
  const std::uint64_t stop_rel_bit = (t.next_grid_byte - base) * 8;
  std::uint64_t slice_len =
      std::min(t.next_grid_byte - base + kSliceMargin, source_size - base);
  InflateScratch scratch;
  std::uint64_t scan_from = 0;
  while (true) {
    Bytes slice(static_cast<std::size_t>(slice_len));
    source.read_at(base, MutableByteSpan(slice.data(), slice.size()));
    const ByteSpan span(slice.data(), slice.size());
    bool grow = false;
    while (!grow) {
      const std::uint64_t cand =
          find_block_boundary(span, scan_from, stop_rel_bit, scratch, &t.stats);
      if (cand == kNoBoundary) return;  // stitch will fall back
      MarkerSink sink(t.tokens, max_inflated_bytes(slice_len));
      ChunkResult res;
      ChunkStatus status;
      try {
        status = inflate_chunk(span, cand, stop_rel_bit, source_size - base,
                               sink, scratch, res);
      } catch (const CorruptionError&) {
        scan_from = cand + 1;  // false positive: keep scanning
        continue;
      }
      if (status == ChunkStatus::kNeedMoreData) {
        if (slice_len >= source_size - base) {
          scan_from = cand + 1;  // defensive; a full slice cannot ask for more
          continue;
        }
        slice_len = std::min(slice_len * 2, source_size - base);
        scan_from = cand;  // the candidate itself is still plausible
        grow = true;
        continue;
      }
      t.ok = true;
      t.found_bit = 8 * base + cand;
      t.end_bit = 8 * base + res.end_bit;
      t.status = status;
      t.members = std::move(res.members);
      return;
    }
  }
}

void run_byte_task(serve::ByteSource& source, std::uint64_t source_size,
                   ChunkTask& t) {
  InflateScratch scratch;
  ByteRun run = decode_byte_run(source, source_size, t.start_bit,
                                t.next_grid_byte, ByteSpan(), scratch);
  t.ok = true;
  t.found_bit = t.start_bit;
  t.end_bit = run.end_bit;
  t.status = run.status;
  t.bytes = std::move(run.out);
  t.members = std::move(run.members);
}

/// Sequential stitch state threaded through the cells in order.
struct StitchState {
  Bytes window;  // rolling last-32-KiB of output, zero-prefilled
  std::uint64_t uncomp_pos = 0;
  std::uint64_t cur_bit = 0;
  std::uint32_t member_crc = 0;
  std::uint64_t member_len = 0;
  bool eos = false;
};

void roll_window(Bytes& window, ByteSpan out) {
  if (out.size() >= kWindowSize) {
    std::copy(out.end() - kWindowSize, out.end(), window.begin());
    return;
  }
  std::copy(window.begin() + static_cast<std::ptrdiff_t>(out.size()),
            window.end(), window.begin());
  std::copy(out.begin(), out.end(), window.end() - static_cast<std::ptrdiff_t>(out.size()));
}

}  // namespace

GzipIndex GzipIndex::build(serve::ByteSource& source,
                           const GzipIndexOptions& options) {
  const IngestCounters& ctr = counters();
  ctr.index_builds.inc();

  GzipIndex idx;
  idx.source_size_ = source.size();
  const std::uint64_t S = idx.source_size_;

  serve::SourceReader reader(source);
  const GzipMemberHeader first = parse_member_header(reader);
  check_format(S >= first.header_bytes + kGzipTrailerBytes,
               "gzip: stream too short for a member");
  const std::uint64_t data_begin = first.header_bytes;

  const std::uint64_t chunk_comp = std::max<std::uint64_t>(options.chunk_size, 4096);
  const std::size_t n =
      static_cast<std::size_t>(div_ceil(S - data_begin, chunk_comp));
  const std::size_t par =
      options.pool != nullptr ? options.pool->parallelism() : 1;
  const bool speculate = par > 1 && n > 1;

  StitchState st;
  st.window.assign(kWindowSize, 0);
  st.cur_bit = 8 * data_begin;

  InflateScratch stitch_scratch;
  const auto stitch_cell = [&](ChunkTask& t, bool counted_fallback) {
    if (st.cur_bit >= 8 * t.next_grid_byte) return;  // eaten by predecessor
    const std::uint64_t start_bit = st.cur_bit;
    Bytes out;
    std::uint64_t end_bit;
    ChunkStatus status;
    std::vector<MemberEvent> events;
    if (t.ok && (t.byte_mode || t.found_bit == st.cur_bit)) {
      if (t.byte_mode) {
        out = std::move(t.bytes);
      } else {
        out.resize(t.tokens.size());
        patch_markers(t.tokens, ByteSpan(st.window.data(), st.window.size()),
                      MutableByteSpan(out.data(), out.size()));
      }
      end_bit = t.end_bit;
      status = t.status;
      events = std::move(t.members);
    } else {
      // Speculation missed (no boundary, or a boundary the stream did
      // not actually stop at): decode this cell sequentially with the
      // true window in hand.
      if (counted_fallback) ctr.chunk_fallbacks.inc();
      const ByteSpan win =
          st.uncomp_pos == 0
              ? ByteSpan()
              : ByteSpan(st.window.data(), st.window.size());
      ByteRun run = decode_byte_run(source, S, st.cur_bit, t.next_grid_byte,
                                    win, stitch_scratch);
      out = std::move(run.out);
      end_bit = run.end_bit;
      status = run.status;
      events = std::move(run.members);
    }

    if (options.verify_members) {
      std::size_t prev = 0;
      for (const MemberEvent& ev : events) {
        const std::size_t at = static_cast<std::size_t>(ev.out_offset);
        st.member_crc = crc32(ByteSpan(out.data() + prev, at - prev), st.member_crc);
        st.member_len += at - prev;
        check_corrupt(st.member_crc == ev.crc32, "gzip: member CRC32 mismatch");
        check_corrupt(static_cast<std::uint32_t>(st.member_len) == ev.isize,
                      "gzip: member ISIZE mismatch");
        st.member_crc = 0;
        st.member_len = 0;
        prev = at;
      }
      st.member_crc =
          crc32(ByteSpan(out.data() + prev, out.size() - prev), st.member_crc);
      st.member_len += out.size() - prev;
    }
    idx.num_members_ += events.size();

    if (!out.empty()) {
      GzipChunk c;
      c.start_bit = start_bit;
      c.end_bit = end_bit;
      c.uncomp_offset = st.uncomp_pos;
      c.uncomp_size = out.size();
      if (st.uncomp_pos == 0) {
        c.window_bytes = 0;
        c.window_offset = idx.windows_.size();
      } else {
        c.window_offset = idx.windows_.size();
        c.window_bytes = static_cast<std::uint32_t>(kWindowSize);
        idx.windows_.insert(idx.windows_.end(), st.window.begin(), st.window.end());
      }
      idx.chunks_.push_back(c);
      ctr.chunks_indexed.inc();
      ctr.bytes_indexed.add(out.size());
    }

    roll_window(st.window, ByteSpan(out.data(), out.size()));
    st.uncomp_pos += out.size();
    st.cur_bit = end_bit;
    st.eos = status == ChunkStatus::kEndOfStream;
  };

  const auto make_task = [&](std::size_t i) {
    ChunkTask t;
    t.grid_byte = data_begin + i * chunk_comp;
    t.next_grid_byte = std::min(S, t.grid_byte + chunk_comp);
    if (i == 0) {
      t.byte_mode = true;
      t.start_bit = 8 * data_begin;
    }
    return t;
  };

  if (!speculate) {
    // Pure sequential: every cell goes through the stitch fallback with
    // the window always known — no markers, no scan, and chunk-level
    // fallbacks are the norm rather than a miss, so not counted.
    for (std::size_t i = 0; i < n && !st.eos; ++i) {
      ChunkTask t = make_task(i);
      stitch_cell(t, /*counted_fallback=*/false);
    }
  } else {
    // Waves of speculative tasks, stitched in order between waves. The
    // wave width of 2x parallelism keeps workers busy while bounding
    // the token streams held in memory at once.
    const std::size_t wave = 2 * par;
    for (std::size_t w0 = 0; w0 < n && !st.eos; w0 += wave) {
      const std::size_t w1 = std::min(n, w0 + wave);
      std::vector<ChunkTask> tasks;
      tasks.reserve(w1 - w0);
      for (std::size_t i = w0; i < w1; ++i) tasks.push_back(make_task(i));
      options.pool->parallel_for(tasks.size(), [&](std::size_t k) {
        ChunkTask& t = tasks[k];
        if (t.byte_mode) {
          run_byte_task(source, S, t);
        } else {
          run_marker_task(source, S, t);
        }
      });
      for (ChunkTask& t : tasks) {
        ctr.boundary_candidates.add(t.stats.candidates);
        ctr.boundary_bits_scanned.add(t.stats.bits_scanned);
        if (st.eos) break;
        stitch_cell(t, /*counted_fallback=*/true);
      }
    }
  }

  check_corrupt(st.eos, "gzip: stream ended without a final member trailer");
  idx.total_uncompressed_ = st.uncomp_pos;
  return idx;
}

std::size_t GzipIndex::chunk_containing(std::uint64_t offset) const {
  check(offset < total_uncompressed_, "gzip: offset past end of stream");
  const auto it = std::upper_bound(
      chunks_.begin(), chunks_.end(), offset,
      [](std::uint64_t off, const GzipChunk& c) { return off < c.uncomp_offset; });
  return static_cast<std::size_t>(it - chunks_.begin()) - 1;
}

Bytes GzipIndex::serialize() const {
  Bytes out;
  put_u32le(out, kGzipIndexMagic);
  out.push_back(kGzipIndexVersion);
  put_varint(out, source_size_);
  put_varint(out, total_uncompressed_);
  put_varint(out, num_members_);
  put_varint(out, chunks_.size());
  for (const GzipChunk& c : chunks_) {
    put_varint(out, c.start_bit);
    put_varint(out, c.end_bit);
    put_varint(out, c.uncomp_offset);
    put_varint(out, c.uncomp_size);
    put_varint(out, c.window_bytes);
    const ByteSpan w(windows_.data() + c.window_offset, c.window_bytes);
    out.insert(out.end(), w.begin(), w.end());
  }
  return out;
}

GzipIndex GzipIndex::deserialize(ByteSpan sidecar) {
  util::SpanReader reader(sidecar);
  check_format(reader.read_u32le() == kGzipIndexMagic,
               "gzip: bad seek-index magic");
  check_format(reader.read_u8() == kGzipIndexVersion,
               "gzip: unsupported seek-index version");
  GzipIndex idx;
  idx.source_size_ = reader.read_varint();
  idx.total_uncompressed_ = reader.read_varint();
  idx.num_members_ = reader.read_varint();
  const std::uint64_t count = reader.read_varint();
  // A chunk costs >= 6 sidecar bytes, so an implausible count fails
  // fast instead of reserving unbounded memory.
  check_format(count <= sidecar.size(), "gzip: implausible chunk count");
  std::uint64_t expect_offset = 0;
  std::uint64_t prev_end_bit = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    GzipChunk c;
    c.start_bit = reader.read_varint();
    c.end_bit = reader.read_varint();
    c.uncomp_offset = reader.read_varint();
    c.uncomp_size = reader.read_varint();
    const std::uint64_t wbytes = reader.read_varint();
    check_format(c.start_bit >= prev_end_bit && c.start_bit < c.end_bit &&
                     c.end_bit <= 8 * idx.source_size_,
                 "gzip: seek-index chunk extents out of order");
    check_format(c.uncomp_offset == expect_offset && c.uncomp_size > 0,
                 "gzip: seek-index offsets not contiguous");
    // The writer's invariant: only the stream-start chunk has no
    // window, and every other window is exactly 32 KiB. decode_block
    // relies on this to resolve any in-window distance.
    check_format(wbytes == (c.uncomp_offset == 0 ? 0 : kWindowSize),
                 "gzip: seek-index window size invalid");
    c.window_bytes = static_cast<std::uint32_t>(wbytes);
    c.window_offset = idx.windows_.size();
    if (wbytes != 0) {
      idx.windows_.resize(idx.windows_.size() + static_cast<std::size_t>(wbytes));
      reader.read_exact(MutableByteSpan(
          idx.windows_.data() + c.window_offset, static_cast<std::size_t>(wbytes)));
    }
    expect_offset += c.uncomp_size;
    prev_end_bit = c.end_bit;
    idx.chunks_.push_back(c);
  }
  check_format(expect_offset == idx.total_uncompressed_,
               "gzip: seek-index total size mismatch");
  check_format(reader.at_end(), "gzip: trailing bytes in seek index");
  counters().sidecar_loads.inc();
  return idx;
}

void GzipIndex::save(const std::string& path) const {
  const Bytes data = serialize();
  std::ofstream out(path, std::ios::binary);
  check_io(out.good(), "gzip: cannot open sidecar for writing");
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  check_io(out.good(), "gzip: sidecar write failed");
}

GzipIndex GzipIndex::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  check_io(in.good(), "gzip: cannot open sidecar");
  const Bytes data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return deserialize(data);
}

}  // namespace gompresso::ingest
