// GzipIndex: a discovered seek index over an RFC 1952 gzip stream.
//
// The native container hands its block table over in the header; gzip
// has no such table, so this index *discovers* one (the rapidgzip
// recipe, PAPERS.md): cut the compressed stream into fixed-size chunks
// on a byte grid, speculatively find a DEFLATE block boundary near
// each grid point (inflate.hpp's strong header filter), decode every
// chunk in parallel into (literal, marker) token streams, then stitch
// sequentially — each chunk's true 32 KiB window patches its
// successor's markers. Chunks whose speculation missed (boundary not
// found, or found a different bit than the stitch arrived at) fall
// back to a sequential byte decode of just that chunk.
//
// The result is the same shape as serve::SeekIndex: per-chunk extents
// keyed by cumulative uncompressed offset, plus each chunk's start
// window so any chunk can be decoded independently later
// (GzipBackend). It checkpoints into a "GZIX" sidecar, so reopening a
// .gz costs a header parse instead of a boundary scan.
//
// Member CRC32/ISIZE trailers are verified during the build (chained
// across chunk boundaries with crc32's seed threading), which is what
// lets GzipBackend::decode_block skip whole-member verification it has
// no context for.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ingest/gzip_format.hpp"
#include "ingest/inflate.hpp"
#include "serve/byte_source.hpp"
#include "util/common.hpp"
#include "util/thread_pool.hpp"

namespace gompresso::ingest {

inline constexpr std::uint32_t kGzipIndexMagic = 0x58495A47u;  // "GZIX"
inline constexpr std::uint8_t kGzipIndexVersion = 1;

/// One independently decodable run of DEFLATE blocks. Bits are absolute
/// within the source file; a run may span gzip member boundaries (the
/// trailer + next header bytes sit between its blocks).
struct GzipChunk {
  std::uint64_t start_bit = 0;      // first bit of the first block
  std::uint64_t end_bit = 0;        // one past the last consumed bit
  std::uint64_t uncomp_offset = 0;  // cumulative output offset
  std::uint64_t uncomp_size = 0;    // bytes this chunk produces
  std::uint64_t window_offset = 0;  // into the shared window pool
  std::uint32_t window_bytes = 0;   // 0 (stream start) or kWindowSize
};

struct GzipIndexOptions {
  /// Compressed bytes per chunk (grid pitch). Larger chunks amortize
  /// the boundary scan; smaller chunks parallelize and seek better.
  std::uint64_t chunk_size = 512 * 1024;
  /// Verify each member's CRC32 + ISIZE trailer during the build.
  bool verify_members = true;
  /// Pool for the speculative chunk decodes; nullptr (or a pool with
  /// parallelism() == 1) selects the pure sequential build, which never
  /// speculates and therefore never pays a marker pass.
  ThreadPool* pool = nullptr;
};

class GzipIndex {
 public:
  /// Scans and decodes the whole stream once to discover chunk
  /// boundaries, windows, and sizes. Throws FormatError if `source`
  /// is not gzip, CorruptionError on damaged data (bad trailer CRC,
  /// truncation, trailing garbage).
  static GzipIndex build(serve::ByteSource& source,
                         const GzipIndexOptions& options = {});

  /// Sidecar round trip (same discipline as serve::SeekIndex):
  /// deserialize() validates magic/version and every invariant the
  /// decode path depends on, since a sidecar is untrusted input.
  Bytes serialize() const;
  static GzipIndex deserialize(ByteSpan sidecar);
  void save(const std::string& path) const;
  static GzipIndex load(const std::string& path);

  std::uint64_t total_uncompressed() const { return total_uncompressed_; }
  std::uint64_t source_size() const { return source_size_; }
  /// gzip has no framing after the last trailer; trailing bytes are a
  /// build error, so the container always ends at the source end.
  std::uint64_t compressed_end() const { return source_size_; }
  std::uint64_t num_members() const { return num_members_; }

  std::size_t num_chunks() const { return chunks_.size(); }
  const GzipChunk& chunk(std::size_t i) const { return chunks_[i]; }

  /// The 32 KiB start window of chunk `i` (empty for the first chunk).
  ByteSpan window(std::size_t i) const {
    const GzipChunk& c = chunks_[i];
    return ByteSpan(windows_.data() + c.window_offset, c.window_bytes);
  }

  /// Index of the chunk containing uncompressed offset `offset`.
  /// Requires offset < total_uncompressed().
  std::size_t chunk_containing(std::uint64_t offset) const;

 private:
  std::vector<GzipChunk> chunks_;
  Bytes windows_;  // concatenated start windows
  std::uint64_t total_uncompressed_ = 0;
  std::uint64_t source_size_ = 0;
  std::uint64_t num_members_ = 0;
};

}  // namespace gompresso::ingest
