#include "ingest/gzip_format.hpp"

#include "util/crc32.hpp"

namespace gompresso::ingest {

GzipMemberHeader parse_member_header(util::ByteReader& reader) {
  // Raw header bytes are accumulated so FHCRC (CRC32 low 16 bits over
  // everything before the CRC16 field) can be verified exactly.
  Bytes raw;
  raw.reserve(16);
  const auto u8 = [&] {
    const std::uint8_t b = reader.read_u8();
    raw.push_back(b);
    return b;
  };

  GzipMemberHeader h;
  const std::uint8_t id1 = u8();
  const std::uint8_t id2 = u8();
  check_format(id1 == format::kGzipId1 && id2 == format::kGzipId2,
               "gzip: bad member magic");
  const std::uint8_t cm = u8();
  check_format(cm == format::kGzipCmDeflate,
               "gzip: unsupported compression method (want deflate)");
  h.flags = u8();
  check_format((h.flags & kGzipFlagReserved) == 0,
               "gzip: reserved FLG bits set");
  h.mtime = 0;
  for (unsigned i = 0; i < 4; ++i) {
    h.mtime |= static_cast<std::uint32_t>(u8()) << (8 * i);
  }
  h.xfl = u8();
  h.os = u8();

  if ((h.flags & kGzipFlagExtra) != 0) {
    const std::uint32_t xlen =
        static_cast<std::uint32_t>(u8()) | (static_cast<std::uint32_t>(u8()) << 8);
    for (std::uint32_t i = 0; i < xlen; ++i) u8();
  }
  if ((h.flags & kGzipFlagName) != 0) {
    while (true) {
      const std::uint8_t b = u8();
      if (b == 0) break;
      h.name.push_back(static_cast<char>(b));
    }
  }
  if ((h.flags & kGzipFlagComment) != 0) {
    while (u8() != 0) {
    }
  }
  if ((h.flags & kGzipFlagHcrc) != 0) {
    const std::uint32_t expect = crc32(ByteSpan(raw.data(), raw.size())) & 0xFFFFu;
    const std::uint32_t got = static_cast<std::uint32_t>(reader.read_u8()) |
                              (static_cast<std::uint32_t>(reader.read_u8()) << 8);
    check_corrupt(got == expect, "gzip: header CRC16 (FHCRC) mismatch");
    h.header_bytes = raw.size() + 2;
  } else {
    h.header_bytes = raw.size();
  }
  return h;
}

void skip_member_header(BitReader& br) {
  const auto u8 = [&br] { return static_cast<std::uint8_t>(br.read(8)); };
  check_corrupt(u8() == format::kGzipId1 && u8() == format::kGzipId2,
                "gzip: bad member magic mid-stream");
  check_corrupt(u8() == format::kGzipCmDeflate,
                "gzip: unsupported compression method mid-stream");
  const std::uint8_t flags = u8();
  check_corrupt((flags & kGzipFlagReserved) == 0,
                "gzip: reserved FLG bits set mid-stream");
  for (unsigned i = 0; i < 6; ++i) u8();  // MTIME, XFL, OS
  if ((flags & kGzipFlagExtra) != 0) {
    const std::uint32_t xlen =
        static_cast<std::uint32_t>(u8()) | (static_cast<std::uint32_t>(u8()) << 8);
    for (std::uint32_t i = 0; i < xlen; ++i) u8();
  }
  // Zero padding past the buffer terminates these scans (and trips the
  // caller's overflow check).
  if ((flags & kGzipFlagName) != 0) {
    while (u8() != 0) {
    }
  }
  if ((flags & kGzipFlagComment) != 0) {
    while (u8() != 0) {
    }
  }
  if ((flags & kGzipFlagHcrc) != 0) {
    u8();
    u8();
  }
}

}  // namespace gompresso::ingest
