#include "ingest/gzip_backend.hpp"

#include <utility>

namespace gompresso::ingest {
namespace {

class GzipBackend final : public serve::ContainerBackend {
 public:
  explicit GzipBackend(GzipIndex index) : index_(std::move(index)) {}

  const char* kind_name() const override { return "gzip"; }
  std::uint64_t total_uncompressed() const override {
    return index_.total_uncompressed();
  }
  std::uint64_t source_size() const override { return index_.source_size(); }
  std::uint64_t compressed_end() const override {
    return index_.compressed_end();
  }
  std::size_t num_blocks() const override { return index_.num_chunks(); }

  serve::BackendBlock block(std::size_t b) const override {
    const GzipChunk& c = index_.chunk(b);
    serve::BackendBlock e;
    e.uncomp_offset = c.uncomp_offset;
    e.uncomp_size = c.uncomp_size;
    e.comp_offset = c.start_bit >> 3;
    e.comp_size = div_ceil<std::uint64_t>(c.end_bit, 8) - e.comp_offset;
    return e;
  }

  std::size_t block_containing(std::uint64_t offset) const override {
    return index_.chunk_containing(offset);
  }

  void decode_block(std::size_t b, serve::ByteSource& source,
                    util::BufferPool& buffers, MutableByteSpan out) override {
    const GzipChunk& c = index_.chunk(b);
    check(out.size() == c.uncomp_size, "serve: decode_block output size mismatch");
    const std::uint64_t base = c.start_bit >> 3;
    const std::uint64_t slice_len = div_ceil<std::uint64_t>(c.end_bit, 8) - base;
    util::PooledBuffer comp = buffers.acquire(static_cast<std::size_t>(slice_len));
    source.read_at(base, comp.span());
    ByteSink sink(out, index_.window(b));
    InflateScratch scratch;
    ChunkResult res;
    // The slice ends at the chunk's last bit, so the stream looks
    // "partial" relative to the whole file; a run past the slice would
    // surface as kNeedMoreData. A correct chunk consumes exactly
    // [start_bit, end_bit), so anything else is damage.
    const ChunkStatus status = inflate_chunk(
        comp.cspan(), c.start_bit - 8 * base, c.end_bit - 8 * base,
        index_.source_size() - base, sink, scratch, res);
    check_corrupt(status != ChunkStatus::kNeedMoreData,
                  "gzip: chunk ran past its indexed extent");
    check_corrupt(8 * base + res.end_bit == c.end_bit,
                  "gzip: chunk ended at an unexpected bit");
    check_corrupt(sink.produced() == out.size(),
                  "gzip: chunk produced an unexpected byte count");
  }

 private:
  const GzipIndex index_;
};

}  // namespace

std::shared_ptr<serve::ContainerBackend> make_gzip_backend(GzipIndex index) {
  return std::make_shared<GzipBackend>(std::move(index));
}

std::shared_ptr<serve::ContainerBackend> make_gzip_backend(
    serve::ByteSource& source, const GzipIndexOptions& options) {
  return std::make_shared<GzipBackend>(GzipIndex::build(source, options));
}

}  // namespace gompresso::ingest
