// The range-request daemon: HTTP/1.1 byte ranges mapped onto
// DecodeSession::read_at over one shared ThreadPool and BufferPool.
//
// Robustness is the design driver, and every limit is explicit:
//
//   * Admission control. Connections above max_connections are shed at
//     accept with a best-effort 503. Parsed requests enter a bounded
//     queue via try_push — a full queue sheds with 503 instead of
//     queueing unboundedly. Response bytes are admitted against
//     queued_bytes_budget before a body is materialized, so the
//     daemon's response memory is bounded no matter how many clients
//     ask for how much.
//   * Deadlines. A request that waited in the queue past
//     request_deadline_ms is shed (the client has likely given up; the
//     decode work would be wasted). The remaining deadline seeds the
//     per-connection session's RetryPolicy::deadline_us, so retry
//     backoff can never outlive the request that wanted the block.
//   * Slow clients. Every response write carries write_timeout_ms; a
//     stalled peer gets its connection reaped instead of pinning a
//     worker. Idle and half-header connections are reaped on
//     idle_timeout_ms / header_timeout_ms by the poller.
//   * Graceful drain. stop() stops accepting, lets queued and in-flight
//     requests finish, sheds everything else, joins all threads, and
//     returns — deterministically, with no sleeps-and-hope.
//   * Degraded service. A read that hits damaged blocks is a 502 by
//     default; with ServeOptions::degraded it is served zero-filled
//     with an X-Gomp-Degraded header so a mirror client can re-fetch
//     exactly the damaged ranges.
//
// Threads: one poller (accept + idle-connection readiness + timeout
// reaping) and worker_threads request servers. A connection lives on
// exactly one thread at a time: the poller owns it while idle, a worker
// owns it while a request is served, and ownership moves through the
// bounded queue (poller -> worker) and the returned_ list (worker ->
// poller, signalled over a wake pipe). Decode parallelism is separate:
// all per-connection DecodeSessions share one decode ThreadPool and one
// BufferPool, whose peak counters remain the memory-bound witness.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/http.hpp"
#include "serve/backend.hpp"
#include "serve/decode_session.hpp"
#include "serve/seek_index.hpp"
#include "util/bounded_queue.hpp"
#include "util/buffer_pool.hpp"
#include "util/socket.hpp"
#include "util/thread_annotations.hpp"

namespace gompresso::net {

/// Produces one ByteSource view of the archive per call. Called once per
/// connection (each session needs its own source) plus once at startup
/// when no pre-built index is given. Must be callable concurrently.
using SourceFactory = std::function<std::unique_ptr<serve::ByteSource>()>;

struct ServeOptions {
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port (see Server::port).
  std::uint16_t port = 8080;
  /// Threads serving parsed requests (decode work runs on the shared
  /// decode pool, so these mostly wait on decode + socket writes).
  std::size_t worker_threads = 4;
  /// Live-connection ceiling; accepts beyond it are shed with 503.
  std::size_t max_connections = 128;
  /// Bounded parsed-request queue between poller and workers; try_push
  /// failure is the load-shedding signal.
  std::size_t pending_requests = 32;
  /// Ceiling on response bytes admitted but not yet flushed to sockets.
  std::uint64_t queued_bytes_budget = 64ull << 20;
  /// Largest single response body; bigger ranges are shed with 503 (a
  /// client can always re-ask in smaller ranges).
  std::uint64_t max_response_bytes = 16ull << 20;
  /// Queue-wait + decode budget per request. Requests older than this
  /// when a worker picks them up are shed; it also seeds each session's
  /// RetryPolicy::deadline_us (unless the caller set one).
  int request_deadline_ms = 10'000;
  /// Reap a connection that sent a partial request head and stalled.
  int header_timeout_ms = 5'000;
  /// Reap a keep-alive connection with no request in flight.
  int idle_timeout_ms = 30'000;
  /// Per-chunk response write timeout; exceeding it reaps the client.
  int write_timeout_ms = 5'000;
  /// Serve reads over damaged blocks zero-filled (206/200 +
  /// X-Gomp-Degraded) instead of failing them with 502.
  bool degraded = false;
  /// Per-connection DecodeSession tuning. num_threads is ignored — all
  /// sessions share the server's decode pool.
  serve::SessionOptions session;
  /// Workers on the shared decode pool (0 = hardware concurrency).
  std::size_t decode_threads = 0;
};

/// Monotonic per-server counters (the process-wide net.* metrics
/// aggregate across servers; tests run several servers, so assertions
/// use these).
struct ServerStats {
  std::uint64_t accepted = 0;          // connections accepted
  std::uint64_t shed_connections = 0;  // 503-at-accept (over max_connections)
  std::uint64_t requests = 0;          // complete request heads parsed
  std::uint64_t ok_200 = 0;
  std::uint64_t partial_206 = 0;
  std::uint64_t client_4xx = 0;        // 400/404/405/408/416/431
  std::uint64_t shed_503 = 0;          // admission sheds (queue/deadline/bytes)
  std::uint64_t failed_502 = 0;        // damaged reads surfaced as errors
  std::uint64_t error_500 = 0;
  std::uint64_t degraded_responses = 0;  // 200/206 with X-Gomp-Degraded
  std::uint64_t reaped_slow = 0;       // write timeout mid-response
  std::uint64_t reaped_idle = 0;       // idle/header timeout
  std::uint64_t bytes_sent = 0;        // response body bytes delivered
  std::uint64_t peak_queued_bytes = 0; // high-water admitted response bytes
};

class Server {
 public:
  /// Serves the archive `factory` opens through a pre-built container
  /// backend (the robust path: build the geometry from a trusted
  /// source, then even a fault-injected data plane cannot corrupt it).
  /// The backend is shared by every per-connection session — GMPZ/GMPS
  /// and gzip backends alike.
  Server(SourceFactory factory, std::shared_ptr<serve::ContainerBackend> backend,
         ServeOptions options = {});
  /// Native-container compatibility form: wraps the SeekIndex in a
  /// GMPZ backend.
  Server(SourceFactory factory, serve::SeekIndex index,
         ServeOptions options = {});
  /// Convenience: sniffs one factory() source and builds the matching
  /// backend (gompresso::open_backend), so `gomp serve any.gz` works.
  explicit Server(SourceFactory factory, ServeOptions options = {});

  /// Drains and joins (equivalent to stop()).
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and launches the poller + workers. Throws IoError
  /// if the port cannot be bound.
  void start();

  /// The bound port (after start(); resolves port 0 to the kernel's
  /// choice).
  std::uint16_t port() const { return port_; }

  /// Graceful drain: stop accepting, serve or shed everything in
  /// flight, join all threads. Idempotent; safe to call from a signal-
  /// observing thread while clients are mid-request.
  void stop();

  bool draining() const { return draining_.load(std::memory_order_relaxed); }

  ServerStats stats() const;

  /// Total uncompressed bytes of the served archive.
  std::uint64_t archive_size() const { return backend_->total_uncompressed(); }

 private:
  /// One client connection. Owned by exactly one thread at a time; the
  /// owning thread needs no lock to touch it.
  struct Conn {
    util::Fd fd;
    std::string inbuf;  // bytes received, not yet consumed as a head
    std::unique_ptr<serve::DecodeSession> session;  // lazy, first archive read
    std::chrono::steady_clock::time_point last_activity{};
    std::uint64_t id = 0;  // per-connection retry-jitter salt
    bool close_after = false;
  };

  /// A parsed-off request head travelling poller -> worker with its
  /// connection and its admission timestamp (the deadline anchor).
  struct Job {
    std::unique_ptr<Conn> conn;
    std::string head;
    std::chrono::steady_clock::time_point enqueued{};
  };

  /// ServerStats as relaxed atomics (workers and the poller bump
  /// concurrently; stats() loads without a lock).
  struct AtomicStats {
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> shed_connections{0};
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> ok_200{0};
    std::atomic<std::uint64_t> partial_206{0};
    std::atomic<std::uint64_t> client_4xx{0};
    std::atomic<std::uint64_t> shed_503{0};
    std::atomic<std::uint64_t> failed_502{0};
    std::atomic<std::uint64_t> error_500{0};
    std::atomic<std::uint64_t> degraded_responses{0};
    std::atomic<std::uint64_t> reaped_slow{0};
    std::atomic<std::uint64_t> reaped_idle{0};
    std::atomic<std::uint64_t> bytes_sent{0};
    std::atomic<std::uint64_t> peak_queued_bytes{0};
  };

  void poller_loop();
  void worker_loop();

  /// Hands a complete head to the workers, or sheds. Returns the
  /// connection when it was shed-but-kept (per-request overload, client
  /// may retry on the same socket); returns nullptr when consumed.
  std::unique_ptr<Conn> dispatch(std::unique_ptr<Conn> conn,
                                 std::string head);
  /// Serves one request on a worker; returns false when the connection
  /// must close (error, write failure, Connection: close).
  bool serve_request(Conn& conn, const std::string& head,
                     std::chrono::steady_clock::time_point enqueued);
  /// Worker -> poller handoff of a connection going back to idle.
  void return_to_poller(std::unique_ptr<Conn> conn) EXCLUDES(return_mutex_);

  /// Sends a body-less error/shed response without ever blocking the
  /// calling thread (best-effort; shedding must not create new waits).
  /// `keep` advertises keep-alive: per-request sheds leave the socket
  /// usable so overloaded clients retry without a reconnect storm;
  /// connection-level sheds (cap, drain, bad head) advertise close.
  static void shed_response(Conn& conn, int status, const char* reason,
                            bool keep = false);

  static std::shared_ptr<serve::ContainerBackend> build_backend(
      const SourceFactory& factory, const ServeOptions& options);
  void bump_2xx(int status);

  bool admit_bytes(std::uint64_t n);
  void release_bytes(std::uint64_t n);

  SourceFactory factory_;
  std::shared_ptr<serve::ContainerBackend> backend_;
  ServeOptions options_;

  ThreadPool decode_pool_;
  util::BufferPool buffers_;

  std::unique_ptr<util::TcpListener> listener_;  // bound in start()
  std::uint16_t port_ = 0;

  util::BoundedQueue<Job> queue_;
  util::WakePipe wake_;

  std::thread poller_;
  std::vector<std::thread> workers_;
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_poller_{false};

  /// Connections idle between requests; poller-owned, no lock needed.
  std::vector<std::unique_ptr<Conn>> idle_;

  util::Mutex return_mutex_;
  std::vector<std::unique_ptr<Conn>> returned_ GUARDED_BY(return_mutex_);

  std::atomic<std::size_t> live_conns_{0};
  std::atomic<std::uint64_t> queued_bytes_{0};
  std::atomic<std::uint64_t> next_conn_id_{1};
  AtomicStats stats_;

  util::Mutex stop_mutex_;  // serializes concurrent stop() calls
};

}  // namespace gompresso::net
