#include "net/http.hpp"

#include <algorithm>
#include <cctype>

namespace gompresso::net {
namespace {

std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

/// Strict decimal parse for range bounds — rejects empty, signs, and
/// non-digits; saturation-free (overflow returns false).
bool parse_dec(std::string_view s, std::uint64_t& out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return false;
    v = v * 10 + digit;
  }
  out = v;
  return true;
}

}  // namespace

const std::string* HttpRequest::header(std::string_view name) const {
  for (const auto& [n, v] : headers) {
    if (n == name) return &v;
  }
  return nullptr;
}

bool HttpRequest::wants_close() const {
  const std::string* conn = header("connection");
  if (conn != nullptr) {
    const std::string v = lower(*conn);
    if (v.find("close") != std::string::npos) return true;
    if (v.find("keep-alive") != std::string::npos) return false;
  }
  return version == "HTTP/1.0";  // 1.0 defaults to close
}

std::size_t find_head_end(std::string_view buf) {
  const std::size_t pos = buf.find("\r\n\r\n");
  return pos == std::string_view::npos ? std::string::npos : pos + 4;
}

bool parse_request_head(std::string_view head, HttpRequest& out) {
  out = HttpRequest{};
  std::size_t line_end = head.find("\r\n");
  if (line_end == std::string_view::npos) return false;
  const std::string_view request_line = head.substr(0, line_end);

  const std::size_t sp1 = request_line.find(' ');
  if (sp1 == std::string_view::npos || sp1 == 0) return false;
  const std::size_t sp2 = request_line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos || sp2 == sp1 + 1) return false;
  out.method = std::string(request_line.substr(0, sp1));
  out.target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  out.version = std::string(trim(request_line.substr(sp2 + 1)));
  if (out.version.rfind("HTTP/", 0) != 0) return false;

  std::size_t pos = line_end + 2;
  while (pos < head.size()) {
    line_end = head.find("\r\n", pos);
    if (line_end == std::string_view::npos) return false;
    const std::string_view line = head.substr(pos, line_end - pos);
    pos = line_end + 2;
    if (line.empty()) break;  // end of headers
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) return false;
    out.headers.emplace_back(lower(trim(line.substr(0, colon))),
                             std::string(trim(line.substr(colon + 1))));
  }
  return true;
}

RangeStatus parse_range(std::string_view value, std::uint64_t size,
                        std::uint64_t& first, std::uint64_t& last) {
  value = trim(value);
  if (value.rfind("bytes=", 0) != 0) return RangeStatus::kNone;
  std::string_view spec = trim(value.substr(6));
  // Multi-range ("a-b,c-d") is out of scope: ignore it (200 full body)
  // rather than half-implementing multipart/byteranges.
  if (spec.find(',') != std::string_view::npos) return RangeStatus::kNone;
  const std::size_t dash = spec.find('-');
  if (dash == std::string_view::npos) return RangeStatus::kNone;
  const std::string_view a = trim(spec.substr(0, dash));
  const std::string_view b = trim(spec.substr(dash + 1));

  if (a.empty()) {
    // bytes=-N: the final N bytes.
    std::uint64_t n = 0;
    if (!parse_dec(b, n)) return RangeStatus::kNone;
    if (n == 0 || size == 0) return RangeStatus::kUnsatisfiable;
    first = n >= size ? 0 : size - n;
    last = size - 1;
    return RangeStatus::kSingle;
  }

  std::uint64_t lo = 0;
  if (!parse_dec(a, lo)) return RangeStatus::kNone;
  if (lo >= size) return RangeStatus::kUnsatisfiable;
  if (b.empty()) {
    first = lo;
    last = size - 1;
    return RangeStatus::kSingle;
  }
  std::uint64_t hi = 0;
  if (!parse_dec(b, hi) || hi < lo) return RangeStatus::kNone;
  first = lo;
  last = std::min(hi, size - 1);
  return RangeStatus::kSingle;
}

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 206: return "Partial Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 416: return "Range Not Satisfiable";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string response_head(int status, std::uint64_t content_length,
                          bool keep_alive,
                          const std::vector<std::string>& extra) {
  std::string head = "HTTP/1.1 ";
  head += std::to_string(status);
  head += ' ';
  head += status_text(status);
  head += "\r\nContent-Length: ";
  head += std::to_string(content_length);
  head += keep_alive ? "\r\nConnection: keep-alive" : "\r\nConnection: close";
  for (const std::string& line : extra) {
    head += "\r\n";
    head += line;
  }
  head += "\r\n\r\n";
  return head;
}

// ---------------------------------------------------------------------

const std::string* HttpResponse::header(std::string_view name) const {
  for (const auto& [n, v] : headers) {
    if (n == name) return &v;
  }
  return nullptr;
}

HttpClient::HttpClient(std::uint16_t port, int timeout_ms)
    : fd_(util::connect_loopback(port, timeout_ms)), timeout_ms_(timeout_ms) {}

bool HttpClient::get(const std::string& target,
                     const std::vector<std::string>& extra, HttpResponse& out) {
  check_io(fd_.valid(), "net: client connection already closed");
  std::string req = "GET ";
  req += target;
  req += " HTTP/1.1\r\nHost: 127.0.0.1";
  for (const std::string& line : extra) {
    req += "\r\n";
    req += line;
  }
  req += "\r\n\r\n";
  try {
    util::send_all(fd_.get(), as_bytes(req), timeout_ms_);
  } catch (const IoError&) {
    // The server closed (drain) or reset before we finished writing.
    fd_.reset();
    return false;
  }

  // Read until the response head is complete.
  std::size_t head_end;
  std::uint8_t chunk[4096];
  while ((head_end = find_head_end(buf_)) == std::string::npos) {
    check_io(util::wait_readable(fd_.get(), timeout_ms_),
             "net: response timed out");
    const std::ptrdiff_t n =
        util::recv_some(fd_.get(), MutableByteSpan(chunk, sizeof chunk));
    if (n == 0) {
      fd_.reset();
      return false;  // closed without a (complete) response
    }
    if (n > 0) buf_.append(reinterpret_cast<const char*>(chunk),
                           static_cast<std::size_t>(n));
  }

  // Parse the status line + headers by reusing the request parser's
  // header loop shape (the status line differs).
  const std::string_view head(buf_.data(), head_end);
  const std::size_t line_end = head.find("\r\n");
  const std::string_view status_line = head.substr(0, line_end);
  check_io(status_line.rfind("HTTP/", 0) == 0, "net: malformed status line");
  const std::size_t sp = status_line.find(' ');
  check_io(sp != std::string_view::npos && sp + 4 <= status_line.size(),
           "net: malformed status line");
  std::uint64_t code = 0;
  check_io(parse_dec(trim(status_line.substr(sp + 1, 3)), code),
           "net: malformed status code");
  out = HttpResponse{};
  out.status = static_cast<int>(code);

  std::size_t pos = line_end + 2;
  std::uint64_t content_length = 0;
  while (pos < head_end) {
    const std::size_t he = head.find("\r\n", pos);
    const std::string_view line = head.substr(pos, he - pos);
    pos = he + 2;
    if (line.empty()) break;
    const std::size_t colon = line.find(':');
    check_io(colon != std::string_view::npos, "net: malformed response header");
    std::string name = lower(trim(line.substr(0, colon)));
    std::string val(trim(line.substr(colon + 1)));
    if (name == "content-length") {
      check_io(parse_dec(val, content_length), "net: bad content-length");
    }
    out.headers.emplace_back(std::move(name), std::move(val));
  }

  buf_.erase(0, head_end);
  while (buf_.size() < content_length) {
    check_io(util::wait_readable(fd_.get(), timeout_ms_),
             "net: response body timed out");
    const std::ptrdiff_t n =
        util::recv_some(fd_.get(), MutableByteSpan(chunk, sizeof chunk));
    check_io(n != 0, "net: connection closed mid-body");
    if (n > 0) buf_.append(reinterpret_cast<const char*>(chunk),
                           static_cast<std::size_t>(n));
  }
  out.body = buf_.substr(0, static_cast<std::size_t>(content_length));
  buf_.erase(0, static_cast<std::size_t>(content_length));

  const std::string* conn = out.header("connection");
  if (conn != nullptr && lower(*conn).find("close") != std::string::npos) {
    fd_.reset();
  }
  return true;
}

}  // namespace gompresso::net
