// Minimal HTTP/1.1 surface for the range-request daemon: request-head
// parsing, single byte-range parsing (RFC 7233), response-head
// serialization, and a small blocking client for tests and the load
// harness. Dependency-free by design — the daemon's robustness story is
// only auditable if every parsing decision is in this repository.
//
// Scope: GET/HEAD requests with no body, one optional `Range: bytes=`
// header, Connection keep-alive/close. Anything outside that scope is
// rejected with a 4xx by the server, never undefined behavior — the
// parser is exercised by the chaos soak with adversarial bytes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/socket.hpp"

namespace gompresso::net {

/// Hard cap on a request head (request line + headers + CRLFCRLF). A
/// peer that streams an unbounded header section is shed at this bound
/// with 431 — admission control starts at the first byte read.
inline constexpr std::size_t kMaxRequestHeadBytes = 8192;

struct HttpRequest {
  std::string method;
  std::string target;
  std::string version;  // "HTTP/1.1"
  /// Header names are lower-cased at parse time; values are trimmed.
  std::vector<std::pair<std::string, std::string>> headers;

  /// First header value by lower-case name, or nullptr.
  const std::string* header(std::string_view name) const;
  /// True when the client asked for (or implies) connection close.
  bool wants_close() const;
};

/// Offset of the byte AFTER the "\r\n\r\n" head terminator, or
/// std::string::npos while the head is still incomplete.
std::size_t find_head_end(std::string_view buf);

/// Parses a complete request head (terminator included). Returns false
/// on malformed input; `out` is unspecified then.
bool parse_request_head(std::string_view head, HttpRequest& out);

enum class RangeStatus : std::uint8_t {
  kNone,           // no Range header, or a form we ignore (serve 200)
  kSingle,         // one satisfiable range: serve 206 [first, last]
  kUnsatisfiable,  // syntactically valid but outside the resource: 416
};

/// Parses a `Range:` header value against a resource of `size` bytes.
/// Supports the single-range forms bytes=A-B, bytes=A-, bytes=-N.
/// Multi-range and malformed values are ignored (kNone) per RFC 7233's
/// "MAY ignore"; an empty resource never satisfies a range.
RangeStatus parse_range(std::string_view value, std::uint64_t size,
                        std::uint64_t& first, std::uint64_t& last);

const char* status_text(int status);

/// Serializes a response head with Content-Length and Connection
/// headers; `extra` entries are complete "Name: value" lines (no CRLF).
std::string response_head(int status, std::uint64_t content_length,
                          bool keep_alive,
                          const std::vector<std::string>& extra = {});

// ---------------------------------------------------------------------
// Blocking client (tests / bench load harness / smoke probes).

struct HttpResponse {
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;  // lower-case names
  std::string body;

  const std::string* header(std::string_view name) const;
};

/// One keep-alive connection to 127.0.0.1:`port`. Not thread-safe: the
/// load harness gives each simulated client its own instance.
class HttpClient {
 public:
  explicit HttpClient(std::uint16_t port, int timeout_ms = 5000);

  /// Issues `GET target` (plus `extra` header lines) and reads the full
  /// response. Returns false when the server closed the connection
  /// without a response (drain/shed-by-close); throws IoError on
  /// timeout or a malformed response.
  bool get(const std::string& target, const std::vector<std::string>& extra,
           HttpResponse& out);

  /// False once the server closed the connection (a new client must be
  /// constructed to reconnect — deliberate, so the harness counts
  /// reconnects).
  bool alive() const { return fd_.valid(); }

 private:
  util::Fd fd_;
  int timeout_ms_;
  std::string buf_;  // bytes read past the previous response
};

}  // namespace gompresso::net
