#include "net/server.hpp"

#include <poll.h>

#include <algorithm>
#include <utility>

#include "core/open.hpp"
#include "obs/metrics.hpp"

namespace gompresso::net {
namespace {

using Clock = std::chrono::steady_clock;

std::int64_t ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(b - a).count();
}

std::uint64_t us_between(Clock::time_point a, Clock::time_point b) {
  const auto d = std::chrono::duration_cast<std::chrono::microseconds>(b - a);
  return d.count() < 0 ? 0 : static_cast<std::uint64_t>(d.count());
}

/// Process-wide net.* metrics, one registration for all servers (tests
/// run several; per-server assertions use ServerStats instead).
struct NetObs {
  obs::Counter accepted = obs::registry().counter("net.accepted", "conns");
  obs::Counter requests = obs::registry().counter("net.requests", "requests");
  obs::Counter responses_2xx =
      obs::registry().counter("net.responses_2xx", "responses");
  obs::Counter client_4xx =
      obs::registry().counter("net.client_4xx", "responses");
  obs::Counter shed_503 = obs::registry().counter("net.shed_503", "responses");
  obs::Counter failed_502 =
      obs::registry().counter("net.failed_502", "responses");
  obs::Counter degraded_responses =
      obs::registry().counter("net.degraded_responses", "responses");
  obs::Counter reaped = obs::registry().counter("net.reaped", "conns");
  obs::Counter bytes_sent = obs::registry().counter("net.bytes_sent", "bytes");
  obs::Gauge live_connections =
      obs::registry().gauge("net.live_connections", "conns");
  obs::Gauge queued_bytes = obs::registry().gauge("net.queued_bytes", "bytes");
  obs::Histogram queue_wait_us =
      obs::registry().histogram("net.queue_wait_us", "us");
  obs::Histogram request_us = obs::registry().histogram("net.request_us", "us");
  obs::Histogram response_bytes =
      obs::registry().histogram("net.response_bytes", "bytes");
};

NetObs& net_obs() {
  static NetObs instance;
  return instance;
}

/// The poll-tick period: the granularity of timeout reaping and the
/// worst added latency for a wake that raced the poll() entry (the wake
/// pipe makes the common case immediate).
constexpr int kPollTickMs = 50;

constexpr char kContentTypeBin[] = "Content-Type: application/octet-stream";
constexpr char kAcceptRanges[] = "Accept-Ranges: bytes";

}  // namespace

Server::Server(SourceFactory factory,
               std::shared_ptr<serve::ContainerBackend> backend,
               ServeOptions options)
    : factory_(std::move(factory)),
      backend_(std::move(backend)),
      options_(options),
      decode_pool_(options.decode_threads),
      queue_(std::max<std::size_t>(options.pending_requests, 1)) {
  obs::ensure_initialized();
  check(factory_ != nullptr, "net: serve needs a source factory");
  check(backend_ != nullptr, "net: serve needs a container backend");
  check(options_.worker_threads > 0, "net: serve needs at least one worker");
  check(options_.max_connections > 0, "net: max_connections must be positive");
}

Server::Server(SourceFactory factory, serve::SeekIndex index,
               ServeOptions options)
    : Server(std::move(factory),
             serve::make_gmpz_backend(std::move(index),
                                      [&options] {
                                        serve::BackendDecodeOptions o;
                                        o.verify_checksums =
                                            options.session.verify_checksums;
                                        o.auto_strategy =
                                            options.session.auto_strategy;
                                        o.strategy = options.session.strategy;
                                        return o;
                                      }()),
             options) {}

std::shared_ptr<serve::ContainerBackend> Server::build_backend(
    const SourceFactory& factory, const ServeOptions& options) {
  check(factory != nullptr, "net: serve needs a source factory");
  auto probe = factory();
  check(probe != nullptr, "net: source factory returned null");
  // Sniff-and-dispatch through the same front door as gompresso::open():
  // a native container gets its SeekIndex, a gzip stream gets a parallel
  // speculative GzipIndex built on the server's decode-thread budget.
  OpenOptions oopt;
  oopt.session = options.session;
  oopt.session.num_threads = options.decode_threads;
  return open_backend(*probe, oopt);
}

Server::Server(SourceFactory factory, ServeOptions options)
    : Server(factory, build_backend(factory, options), options) {}

Server::~Server() { stop(); }

void Server::start() {
  check(!started_.exchange(true), "net: server already started");
  listener_ = std::make_unique<util::TcpListener>(options_.port);
  port_ = listener_->port();
  poller_ = std::thread([this] { poller_loop(); });
  workers_.reserve(options_.worker_threads);
  for (std::size_t i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void Server::stop() {
  util::MutexLock lock(stop_mutex_);
  if (!started_.load(std::memory_order_relaxed)) return;
  // Phase 1: stop admitting. The poller closes the listener on its next
  // tick; dispatch() starts shedding immediately.
  draining_.store(true, std::memory_order_relaxed);
  wake_.wake();
  // Phase 2: let the workers drain every queued request (close() keeps
  // queued items poppable), then exit.
  queue_.close();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  // Phase 3: the poller absorbs the workers' returned connections,
  // closes everything, and exits.
  stop_poller_.store(true, std::memory_order_relaxed);
  wake_.wake();
  if (poller_.joinable()) poller_.join();
}

ServerStats Server::stats() const {
  ServerStats out;
  const auto load = [](const std::atomic<std::uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  out.accepted = load(stats_.accepted);
  out.shed_connections = load(stats_.shed_connections);
  out.requests = load(stats_.requests);
  out.ok_200 = load(stats_.ok_200);
  out.partial_206 = load(stats_.partial_206);
  out.client_4xx = load(stats_.client_4xx);
  out.shed_503 = load(stats_.shed_503);
  out.failed_502 = load(stats_.failed_502);
  out.error_500 = load(stats_.error_500);
  out.degraded_responses = load(stats_.degraded_responses);
  out.reaped_slow = load(stats_.reaped_slow);
  out.reaped_idle = load(stats_.reaped_idle);
  out.bytes_sent = load(stats_.bytes_sent);
  out.peak_queued_bytes = load(stats_.peak_queued_bytes);
  return out;
}

// ---------------------------------------------------------------------
// Admission accounting.

bool Server::admit_bytes(std::uint64_t n) {
  if (n == 0) return true;
  const std::uint64_t prev =
      queued_bytes_.fetch_add(n, std::memory_order_relaxed);
  if (prev + n > options_.queued_bytes_budget) {
    queued_bytes_.fetch_sub(n, std::memory_order_relaxed);
    return false;
  }
  const std::uint64_t cur = prev + n;
  std::uint64_t peak = stats_.peak_queued_bytes.load(std::memory_order_relaxed);
  while (cur > peak && !stats_.peak_queued_bytes.compare_exchange_weak(
                           peak, cur, std::memory_order_relaxed)) {
  }
  net_obs().queued_bytes.set(static_cast<std::int64_t>(cur));
  return true;
}

void Server::release_bytes(std::uint64_t n) {
  if (n == 0) return;
  const std::uint64_t prev =
      queued_bytes_.fetch_sub(n, std::memory_order_relaxed);
  net_obs().queued_bytes.set(static_cast<std::int64_t>(prev - n));
}

void Server::shed_response(Conn& conn, int status, const char* reason,
                           bool keep) {
  std::string body(status_text(status));
  body += '\n';
  const std::string head = response_head(
      status, body.size(), keep,
      {std::string("X-Gomp-Shed: ") + reason});
  util::send_best_effort(conn.fd.get(), as_bytes(head));
  util::send_best_effort(conn.fd.get(), as_bytes(body));
}

// ---------------------------------------------------------------------
// Poller: accept, readiness, head accumulation, timeout reaping.

void Server::poller_loop() {
  std::vector<struct pollfd> pfds;
  std::vector<std::unique_ptr<Conn>> grabbed;

  const auto drop = [this](std::unique_ptr<Conn> conn) {
    live_conns_.fetch_sub(1, std::memory_order_relaxed);
    net_obs().live_connections.add(-1);
    conn.reset();  // closes the fd, tears down the session
  };

  while (!stop_poller_.load(std::memory_order_relaxed)) {
    const bool draining = draining_.load(std::memory_order_relaxed);
    if (draining && listener_ != nullptr && listener_->listening()) {
      listener_->close();
    }

    // -- wait for readiness anywhere --------------------------------
    pfds.clear();
    pfds.push_back({wake_.rd.get(), POLLIN, 0});
    const bool listening = listener_ != nullptr && listener_->listening();
    if (listening) pfds.push_back({listener_->fd(), POLLIN, 0});
    const std::size_t conn_base = pfds.size();
    for (const std::unique_ptr<Conn>& c : idle_) {
      pfds.push_back({c->fd.get(), POLLIN, 0});
    }
    ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), kPollTickMs);
    wake_.drain();

    // -- absorb connections the workers handed back -----------------
    grabbed.clear();
    {
      util::MutexLock lock(return_mutex_);
      grabbed.swap(returned_);
    }
    for (std::unique_ptr<Conn>& c : grabbed) {
      if (c->close_after || !c->fd.valid() ||
          draining_.load(std::memory_order_relaxed)) {
        drop(std::move(c));
        continue;
      }
      c->last_activity = Clock::now();
      idle_.push_back(std::move(c));
    }

    // -- accept new connections -------------------------------------
    if (listening) {
      while (true) {
        util::Fd fd = listener_->accept(0);
        if (!fd.valid()) break;
        stats_.accepted.fetch_add(1, std::memory_order_relaxed);
        net_obs().accepted.inc();
        if (draining_.load(std::memory_order_relaxed) ||
            live_conns_.load(std::memory_order_relaxed) >=
                options_.max_connections) {
          // Shed at the door: a bounded daemon refuses work it cannot
          // queue, it does not park it in kernel buffers.
          auto doomed = std::make_unique<Conn>();
          doomed->fd = std::move(fd);
          shed_response(*doomed, 503, "connections");
          stats_.shed_connections.fetch_add(1, std::memory_order_relaxed);
          net_obs().shed_503.inc();
          continue;
        }
        auto conn = std::make_unique<Conn>();
        conn->fd = std::move(fd);
        conn->id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
        conn->last_activity = Clock::now();
        live_conns_.fetch_add(1, std::memory_order_relaxed);
        net_obs().live_connections.add(1);
        idle_.push_back(std::move(conn));
      }
    }

    // -- read readable idle connections, dispatch complete heads ----
    // idle_ entries whose pollfd did not exist this tick (just added by
    // the returned/accept passes above) are simply skipped until the
    // next tick's poll covers them.
    const Clock::time_point now = Clock::now();
    for (std::size_t i = 0; i < idle_.size(); ++i) {
      std::unique_ptr<Conn>& c = idle_[i];
      const std::size_t pf = conn_base + i;
      const bool ready =
          pf < pfds.size() && pfds[pf].fd == c->fd.get() &&
          (pfds[pf].revents & (POLLIN | POLLHUP | POLLERR)) != 0;
      if ((pf < pfds.size() && pfds[pf].revents != 0) || !c->inbuf.empty())
      if (ready) {
        bool dead = false;
        std::uint8_t chunk[4096];
        while (true) {
          std::ptrdiff_t n = 0;
          try {
            n = util::recv_some(c->fd.get(),
                                MutableByteSpan(chunk, sizeof chunk));
          } catch (const IoError&) {
            dead = true;  // reset by peer
            break;
          }
          if (n < 0) break;  // drained
          if (n == 0) {      // clean close
            dead = true;
            break;
          }
          c->inbuf.append(reinterpret_cast<const char*>(chunk),
                          static_cast<std::size_t>(n));
          c->last_activity = now;
          if (c->inbuf.size() > kMaxRequestHeadBytes &&
              find_head_end(c->inbuf) == std::string::npos) {
            shed_response(*c, 431, "head");
            stats_.client_4xx.fetch_add(1, std::memory_order_relaxed);
            net_obs().client_4xx.inc();
            dead = true;
            break;
          }
        }
        if (dead) {
          drop(std::move(c));
          c = nullptr;
          continue;
        }
      }

      // Dispatch every complete head already buffered — not only when
      // new bytes arrived this tick: a shed-but-kept connection may
      // still hold pipelined heads that would otherwise sit until the
      // client sends more. dispatch() returns the connection on a
      // kept shed (by value — pushing into idle_ mid-scan would
      // invalidate this iteration), nullptr when it was consumed.
      while (c != nullptr) {
        const std::size_t head_end = find_head_end(c->inbuf);
        if (head_end == std::string::npos) break;
        std::string head = c->inbuf.substr(0, head_end);
        c->inbuf.erase(0, head_end);
        c = dispatch(std::move(c), std::move(head));
      }
      if (c == nullptr) continue;

      // -- timeout reaping ------------------------------------------
      const int budget =
          c->inbuf.empty() ? options_.idle_timeout_ms : options_.header_timeout_ms;
      if (ms_between(c->last_activity, now) > budget) {
        if (!c->inbuf.empty()) shed_response(*c, 408, "header-timeout");
        stats_.reaped_idle.fetch_add(1, std::memory_order_relaxed);
        net_obs().reaped.inc();
        drop(std::move(c));
        c = nullptr;
      }
    }
    idle_.erase(std::remove(idle_.begin(), idle_.end(), nullptr), idle_.end());
  }

  // Shutdown: everything still here is shed by close. Workers have
  // already been joined, so returned_ cannot grow after this drain.
  {
    util::MutexLock lock(return_mutex_);
    for (std::unique_ptr<Conn>& c : returned_) idle_.push_back(std::move(c));
    returned_.clear();
  }
  for (std::unique_ptr<Conn>& c : idle_) drop(std::move(c));
  idle_.clear();
  if (listener_ != nullptr) listener_->close();
}

std::unique_ptr<Server::Conn> Server::dispatch(std::unique_ptr<Conn> conn,
                                               std::string head) {
  // Single-producer pre-check makes the shed path race-free: only the
  // poller pushes, so a non-full queue here cannot be full below
  // (consumers only shrink it). A close() racing in is caught by
  // try_push returning false.
  const bool full = queue_.size() >= queue_.capacity();
  if (draining_.load(std::memory_order_relaxed) || full) {
    const bool drain = draining();
    shed_response(*conn, 503, drain ? "draining" : "queue", /*keep=*/!drain);
    stats_.shed_503.fetch_add(1, std::memory_order_relaxed);
    net_obs().shed_503.inc();
    if (!drain) {
      // Queue-full is a per-request condition: hand the socket back so
      // the client's retry skips the reconnect (and its accept latency).
      conn->last_activity = Clock::now();
      return conn;
    }
    live_conns_.fetch_sub(1, std::memory_order_relaxed);
    net_obs().live_connections.add(-1);
    return nullptr;
  }
  Job job;
  job.conn = std::move(conn);
  job.head = std::move(head);
  job.enqueued = Clock::now();
  if (!queue_.try_push(std::move(job))) {
    // close() won the race; the connection (moved into the dropped job)
    // is already gone — the client sees a close, which drain allows.
    stats_.shed_503.fetch_add(1, std::memory_order_relaxed);
    net_obs().shed_503.inc();
    live_conns_.fetch_sub(1, std::memory_order_relaxed);
    net_obs().live_connections.add(-1);
  }
  return nullptr;
}

// ---------------------------------------------------------------------
// Workers.

void Server::return_to_poller(std::unique_ptr<Conn> conn) {
  {
    util::MutexLock lock(return_mutex_);
    returned_.push_back(std::move(conn));
  }
  wake_.wake();
}

void Server::worker_loop() {
  Job job;
  while (queue_.pop(job)) {
    std::unique_ptr<Conn> conn = std::move(job.conn);
    std::string head = std::move(job.head);
    Clock::time_point enqueued = job.enqueued;
    bool keep = true;
    while (true) {
      try {
        keep = serve_request(*conn, head, enqueued);
      } catch (...) {
        // Last-resort containment (e.g. bad_alloc building a body): the
        // connection dies, the worker does not.
        shed_response(*conn, 500, "internal");
        stats_.error_500.fetch_add(1, std::memory_order_relaxed);
        keep = false;
      }
      if (!keep || draining_.load(std::memory_order_relaxed)) break;
      // Serve a pipelined follow-up directly instead of bouncing the
      // connection through the poller.
      const std::size_t head_end = find_head_end(conn->inbuf);
      if (head_end == std::string::npos) break;
      head = conn->inbuf.substr(0, head_end);
      conn->inbuf.erase(0, head_end);
      enqueued = Clock::now();
    }
    conn->close_after = !keep;
    return_to_poller(std::move(conn));
  }
}

bool Server::serve_request(Conn& conn, const std::string& head,
                           Clock::time_point enqueued) {
  NetObs& obs = net_obs();
  stats_.requests.fetch_add(1, std::memory_order_relaxed);
  obs.requests.inc();
  const Clock::time_point started = Clock::now();
  obs.queue_wait_us.record(us_between(enqueued, started));

  // Worker-side responses go through send_all (bounded by the write
  // timeout); a failed/timed-out write reaps the connection.
  // content_length and the body differ only for HEAD (length, no body).
  const auto send = [&](int status, std::uint64_t content_length,
                        const std::string& body, bool keep,
                        const std::vector<std::string>& extra) -> bool {
    const std::string rhead = response_head(status, content_length, keep, extra);
    try {
      util::send_all(conn.fd.get(), as_bytes(rhead), options_.write_timeout_ms);
      if (!body.empty()) {
        util::send_all(conn.fd.get(), as_bytes(body), options_.write_timeout_ms);
      }
    } catch (const IoError&) {
      stats_.reaped_slow.fetch_add(1, std::memory_order_relaxed);
      obs.reaped.inc();
      return false;
    }
    stats_.bytes_sent.fetch_add(body.size(), std::memory_order_relaxed);
    obs.bytes_sent.add(body.size());
    return keep;
  };
  const auto send_text = [&](int status, const std::string& body, bool keep,
                             const std::vector<std::string>& extra = {}) -> bool {
    return send(status, body.size(), body, keep, extra);
  };
  // Per-request sheds keep the connection (unless the client asked to
  // close): the client's retry must not pay a reconnect, and a daemon
  // under overload must not manufacture a SYN storm for itself.
  const auto shed = [&](const char* reason, bool keep_conn) -> bool {
    stats_.shed_503.fetch_add(1, std::memory_order_relaxed);
    obs.shed_503.inc();
    return send_text(503, "Service Unavailable\n", keep_conn,
                     {std::string("X-Gomp-Shed: ") + reason});
  };
  const auto client_error = [&](int status, std::string body, bool keep,
                                std::vector<std::string> extra = {}) -> bool {
    stats_.client_4xx.fetch_add(1, std::memory_order_relaxed);
    obs.client_4xx.inc();
    return send_text(status, std::move(body), keep, std::move(extra));
  };

  HttpRequest req;
  if (!parse_request_head(head, req)) {
    return client_error(400, "Bad Request\n", /*keep=*/false);
  }
  const bool keep = !req.wants_close();

  // Deadline: a request that aged out in the queue is shed before any
  // decode work is spent on it.
  if (options_.request_deadline_ms > 0 &&
      ms_between(enqueued, started) > options_.request_deadline_ms) {
    return shed("deadline", keep);
  }

  const bool is_head = req.method == "HEAD";
  if (req.method != "GET" && !is_head) {
    return client_error(405, "Method Not Allowed\n", keep,
                        {"Allow: GET, HEAD"});
  }

  if (req.target == "/healthz") {
    const bool draining = draining_.load(std::memory_order_relaxed);
    return send_text(draining ? 503 : 200, draining ? "draining\n" : "ok\n",
                     keep);
  }
  if (req.target == "/metrics") {
    return send_text(200, obs::metrics_snapshot().to_json(), keep,
                     {"Content-Type: application/json"});
  }
  if (req.target != "/" && req.target != "/archive") {
    return client_error(404, "Not Found\n", keep);
  }

  // -- the archive resource -----------------------------------------
  const std::uint64_t total = backend_->total_uncompressed();
  int status = 200;
  std::uint64_t first = 0;
  std::uint64_t last = total == 0 ? 0 : total - 1;
  if (const std::string* range = req.header("range")) {
    switch (parse_range(*range, total, first, last)) {
      case RangeStatus::kNone:
        break;
      case RangeStatus::kSingle:
        status = 206;
        break;
      case RangeStatus::kUnsatisfiable:
        return client_error(
            416, "Range Not Satisfiable\n", keep,
            {"Content-Range: bytes */" + std::to_string(total)});
    }
  }
  const std::uint64_t length = total == 0 ? 0 : last - first + 1;
  std::vector<std::string> extra{kContentTypeBin, kAcceptRanges};
  if (status == 206) {
    extra.push_back("Content-Range: bytes " + std::to_string(first) + "-" +
                    std::to_string(last) + "/" + std::to_string(total));
  }

  if (is_head) {
    // HEAD answers from geometry alone — no decode, no byte admission.
    const bool sent = send(status, length, std::string(), keep, extra);
    bump_2xx(status);
    return sent;
  }

  if (length > options_.max_response_bytes) return shed("response-size", keep);
  if (!admit_bytes(length)) return shed("queued-bytes", keep);
  struct Release {
    Server* s;
    std::uint64_t n;
    ~Release() { s->release_bytes(n); }
  } release{this, length};

  // Lazy per-connection session on the shared decode pool + buffer
  // pool; the request deadline seeds the retry deadline so backoff can
  // never outlive the request.
  if (conn.session == nullptr) {
    serve::SessionOptions sopt = options_.session;
    sopt.pool = &decode_pool_;
    sopt.buffer_pool = &buffers_;
    sopt.num_threads = 0;
    if (sopt.retry.deadline_us == 0 && options_.request_deadline_ms > 0) {
      sopt.retry.deadline_us =
          static_cast<std::uint64_t>(options_.request_deadline_ms) * 1000;
    }
    // De-correlate retry jitter across connections so synchronized
    // faults do not produce synchronized retry storms.
    sopt.retry.jitter_seed ^= conn.id * 0x9E3779B97F4A7C15ull;
    try {
      conn.session = std::make_unique<serve::DecodeSession>(
          factory_(), backend_, sopt);
    } catch (const Error& e) {
      stats_.error_500.fetch_add(1, std::memory_order_relaxed);
      return send_text(500, std::string("open failed: ") + e.what() + "\n",
                       /*keep=*/false);
    }
  }

  std::string body;
  std::uint64_t degraded_bytes = 0;
  if (length > 0) {
    body.resize(static_cast<std::size_t>(length));
    MutableByteSpan dst(reinterpret_cast<std::uint8_t*>(body.data()),
                        body.size());
    try {
      std::size_t got = 0;
      if (options_.degraded) {
        serve::DamageReport report;
        got = conn.session->read_at_damage_tolerant(first, dst, &report);
        degraded_bytes = report.damaged_bytes();
      } else {
        got = conn.session->read_at(first, dst);
      }
      // last < total, so a short read here is an index/source
      // inconsistency, not EOF.
      check(got == body.size(), "net: short read inside the archive");
    } catch (const Error& e) {
      if (e.kind() == ErrorKind::kConfig) {
        stats_.error_500.fetch_add(1, std::memory_order_relaxed);
        return send_text(500, std::string(e.what()) + "\n", /*keep=*/false);
      }
      // Damaged or unreadable blocks: the range cannot be served
      // faithfully and degraded mode is off — a gateway-style 502
      // (the archive behind the daemon failed, not the daemon).
      stats_.failed_502.fetch_add(1, std::memory_order_relaxed);
      obs.failed_502.inc();
      return send_text(502, std::string(e.what()) + "\n", keep);
    }
  }
  if (degraded_bytes > 0) {
    extra.push_back("X-Gomp-Degraded: " + std::to_string(degraded_bytes));
    stats_.degraded_responses.fetch_add(1, std::memory_order_relaxed);
    obs.degraded_responses.inc();
  }

  const bool sent = send(status, body.size(), body, keep, extra);
  bump_2xx(status);
  obs.response_bytes.record(length);
  obs.request_us.record(us_between(started, Clock::now()));
  return sent;
}

void Server::bump_2xx(int status) {
  if (status == 206) {
    stats_.partial_206.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_.ok_200.fetch_add(1, std::memory_order_relaxed);
  }
  net_obs().responses_2xx.inc();
}

}  // namespace gompresso::net
