// Buffered pull-based byte readers shared by the container parsers.
//
// The format layer parses headers out of three kinds of backing store: an
// in-memory span (batch decompress), a std::istream (GMPS streaming), and
// a serve::ByteSource (seek-index construction). ByteReader is the common
// cursor over all three: subclasses only supply windows of contiguous
// bytes, while the varint / u32 / exact-read primitives run on raw window
// pointers. This replaces the old one-byte-at-a-time istream::get()
// varint loop in core/stream.cpp — every istream touch now moves a whole
// buffer.
#pragma once

#include <algorithm>
#include <cstring>
#include <istream>

#include "util/common.hpp"

namespace gompresso::util {

/// Sequential byte cursor with buffered primitives. Subclasses implement
/// next_window() (hand the reader the next run of contiguous bytes) and
/// optionally try_seek() for cheap skipping on random-access backends.
class ByteReader {
 public:
  virtual ~ByteReader() = default;

  /// Absolute offset (from the reader's origin) of the next unread byte.
  std::uint64_t offset() const {
    return window_base_ + static_cast<std::uint64_t>(pos_ - begin_);
  }

  /// Next byte; throws on end of input.
  std::uint8_t read_u8() {
    if (pos_ == end_) require_window();
    return *pos_++;
  }

  /// LEB128 varint (same encoding as util/varint.hpp).
  std::uint64_t read_varint() {
    std::uint64_t v = 0;
    unsigned shift = 0;
    while (true) {
      check_format(shift < 64, "varint: value too long");
      const std::uint8_t byte = read_u8();
      v |= static_cast<std::uint64_t>(byte & 0x7Fu) << shift;
      if ((byte & 0x80u) == 0) return v;
      shift += 7;
    }
  }

  /// Fixed-width little-endian u32.
  std::uint32_t read_u32le() {
    std::uint8_t b[4];
    read_exact(MutableByteSpan(b, 4));
    return static_cast<std::uint32_t>(b[0]) | (static_cast<std::uint32_t>(b[1]) << 8) |
           (static_cast<std::uint32_t>(b[2]) << 16) |
           (static_cast<std::uint32_t>(b[3]) << 24);
  }

  /// Fills `dst` completely; throws on short input. The current window
  /// is drained first, then the remainder goes through read_direct() —
  /// stream-backed readers pull it from the source in one exact read,
  /// bypassing the window buffer (no copy, no readahead).
  void read_exact(MutableByteSpan dst) {
    const std::size_t in_window =
        std::min<std::size_t>(dst.size(), static_cast<std::size_t>(end_ - pos_));
    // Guard the empty-window case: pos_ is null before the first window
    // is installed, and memcpy's pointer arguments are nonnull even for
    // zero lengths.
    if (in_window != 0) std::memcpy(dst.data(), pos_, in_window);
    pos_ += in_window;
    if (in_window < dst.size()) read_direct(dst.subspan(in_window));
  }

  /// Advances `n` bytes, seeking on backends that support it and
  /// read-discarding otherwise. Throws if the input ends first.
  void skip(std::uint64_t n) {
    while (n > 0) {
      const std::uint64_t in_window = static_cast<std::uint64_t>(end_ - pos_);
      if (in_window >= n) {
        pos_ += static_cast<std::size_t>(n);
        return;
      }
      n -= in_window;
      pos_ = end_;
      if (try_seek(offset() + n)) return;
      require_window();
    }
  }

  /// True when the input is exhausted (may pull the next window).
  bool at_end() {
    if (pos_ != end_) return false;
    const ByteSpan w = next_window();
    install_window(w);
    return w.empty();
  }

 protected:
  /// Returns the next run of bytes after the current window (empty span =
  /// end of input). The returned memory must stay valid until the next
  /// next_window()/try_seek() call on this reader.
  virtual ByteSpan next_window() = 0;

  /// Bulk-fills `dst` starting at offset() when the window is empty.
  /// The default loops next_window(); stream-backed readers override it
  /// with one exact source read and then call reset_cursor(offset() +
  /// dst.size()). Only called by read_exact() with the window drained.
  virtual void read_direct(MutableByteSpan dst) {
    std::size_t got = 0;
    while (got < dst.size()) {
      install_window(next_window());
      check_format(begin_ != end_, "read: truncated input");
      const std::size_t take = std::min<std::size_t>(
          dst.size() - got, static_cast<std::size_t>(end_ - pos_));
      std::memcpy(dst.data() + got, pos_, take);
      pos_ += take;
      got += take;
    }
  }

  /// Repositions the underlying source so the next next_window() starts
  /// at absolute offset `abs`; false if the backend cannot seek.
  virtual bool try_seek(std::uint64_t abs) {
    (void)abs;
    return false;
  }

  void install_window(ByteSpan w) {
    window_base_ = offset();
    begin_ = pos_ = w.data();
    end_ = w.data() + w.size();
  }

  /// Resets the cursor (used by subclasses implementing try_seek).
  void reset_cursor(std::uint64_t abs) {
    window_base_ = abs;
    begin_ = pos_ = end_ = nullptr;
  }

 private:
  void require_window() {
    install_window(next_window());
    check_format(pos_ != end_, "read: truncated input");
  }

  const std::uint8_t* begin_ = nullptr;
  const std::uint8_t* pos_ = nullptr;
  const std::uint8_t* end_ = nullptr;
  std::uint64_t window_base_ = 0;
};

/// Zero-copy reader over an in-memory span.
class SpanReader : public ByteReader {
 public:
  explicit SpanReader(ByteSpan data) : data_(data) {}

 protected:
  ByteSpan next_window() override {
    if (served_) return {};
    served_ = true;
    return data_.subspan(static_cast<std::size_t>(offset()));
  }

  bool try_seek(std::uint64_t abs) override {
    check_format(abs <= data_.size(), "read: seek past end of input");
    served_ = false;
    reset_cursor(abs);
    return true;
  }

 private:
  ByteSpan data_;
  bool served_ = false;
};

/// Buffered reader over a std::istream. All consumption of the stream
/// must go through the reader once constructed: it reads ahead up to
/// `buffer_size` bytes. Offsets are relative to the stream position at
/// construction time. Seeking (skip over large extents) is used only when
/// the stream reports itself seekable.
///
/// buffer_size = 1 makes consumption byte-exact: the reader never takes
/// more from the stream than the caller parses (bulk read_exact() calls
/// bypass the window entirely), which is what a non-seekable pipe needs
/// when bytes after the parsed region belong to someone else.
class IstreamReader : public ByteReader {
 public:
  explicit IstreamReader(std::istream& in, std::size_t buffer_size = kDefaultBuffer)
      : in_(in), buf_(std::max<std::size_t>(buffer_size, 1)) {
    const std::istream::pos_type probe = in_.tellg();
    seekable_ = probe != std::istream::pos_type(-1);
    if (seekable_) {
      base_ = probe;
    } else {
      in_.clear();  // a failed tellg may latch failbit on some streambufs
    }
  }

  static constexpr std::size_t kDefaultBuffer = 64 * 1024;

 protected:
  ByteSpan next_window() override {
    in_.read(reinterpret_cast<char*>(buf_.data()),
             static_cast<std::streamsize>(buf_.size()));
    const std::size_t got = static_cast<std::size_t>(in_.gcount());
    check_io(got > 0 || in_.eof(), "read: stream read failed");
    if (got > 0) in_.clear();  // clear eof latched by a short final read
    return ByteSpan(buf_.data(), got);
  }

  bool try_seek(std::uint64_t abs) override {
    if (!seekable_) return false;
    in_.clear();
    in_.seekg(base_ + static_cast<std::streamoff>(abs));
    check_io(in_.good(), "read: stream seek failed");
    reset_cursor(abs);
    return true;
  }

  void read_direct(MutableByteSpan dst) override {
    // The window is drained (read_exact's precondition), so the stream
    // cursor equals offset(): hand the stream the caller's buffer
    // directly — exact-length, no readahead, no double copy.
    const std::uint64_t end = offset() + dst.size();
    in_.read(reinterpret_cast<char*>(dst.data()),
             static_cast<std::streamsize>(dst.size()));
    if (static_cast<std::size_t>(in_.gcount()) != dst.size()) {
      // Distinguish a failing device from an input that simply ends
      // early: eof is structural truncation, anything else is I/O.
      check_io(in_.eof(), "read: stream read failed");
      throw FormatError("read: truncated input");
    }
    reset_cursor(end);
  }

 private:
  std::istream& in_;
  Bytes buf_;
  std::istream::pos_type base_{};
  bool seekable_ = false;
};

}  // namespace gompresso::util
