#include "util/thread_pool.hpp"

namespace gompresso {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  // The calling thread also works, so spawn one fewer worker.
  const std::size_t workers = num_threads > 1 ? num_threads - 1 : 0;
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::run_job(Job& job) {
  while (true) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.count) break;
    try {
      (*job.fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job.error_mutex);
      if (!job.error) job.error = std::current_exception();
    }
    job.done.fetch_add(1, std::memory_order_release);
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t served_generation = 0;
  while (true) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] {
        return stop_ || (current_ != nullptr && generation_ != served_generation);
      });
      if (stop_) return;
      served_generation = generation_;
      job = current_;  // shared ownership keeps the job alive past the caller
    }
    run_job(*job);
    done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (threads_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->count = count;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    current_ = job;
    ++generation_;
  }
  cv_.notify_all();
  run_job(*job);  // caller participates via the same common queue
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&job] {
      return job->done.load(std::memory_order_acquire) >= job->count;
    });
    current_.reset();
  }
  if (job->error) std::rethrow_exception(job->error);
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace gompresso
