#include "util/thread_pool.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace gompresso {
namespace {

// Pool-plane metrics, registered once on first pool construction.
// queue_depth tracks submitted-but-not-yet-popped tasks; workers_busy
// counts threads currently executing job indices or queued tasks.
struct PoolObs {
  obs::Counter tasks_submitted =
      obs::registry().counter("pool.tasks_submitted", "tasks");
  obs::Counter jobs_dispatched =
      obs::registry().counter("pool.jobs_dispatched", "jobs");
  obs::Gauge queue_depth = obs::registry().gauge("pool.queue_depth", "tasks");
  obs::Gauge workers_busy =
      obs::registry().gauge("pool.workers_busy", "workers");
};

PoolObs& pool_obs() {
  static PoolObs instance;
  return instance;
}

// The pool whose job the current thread is executing (nullptr outside any
// job) and the thread's participant index in that pool. A nested
// parallel_for on the *same* pool runs inline — re-entering the dispatch
// protocol would deadlock the caller on its own job — and reports the
// enclosing worker's index so per-worker slots stay exclusive. A call
// into a *different* pool dispatches normally: that pool's state is
// independent, and reusing the enclosing index there would break the
// callee pool's index bound.
thread_local const ThreadPool* tls_current_pool = nullptr;
thread_local std::size_t tls_worker_index = 0;

}  // namespace

// Task-queue capacity. Producers (the serve prefetcher) bound themselves
// far below this with their in-flight windows; the queue bound is the
// backstop that keeps a runaway producer from accumulating closures.
constexpr std::size_t kTaskQueueCapacity = 1024;

ThreadPool::ThreadPool(std::size_t num_threads) : tasks_(kTaskQueueCapacity) {
  // Construct the obs singletons before this pool finishes constructing:
  // a static pool (default_pool) drains tasks in its destructor, and
  // those touch the registry/tracer — this ordering guarantees both are
  // destroyed after any pool that might still report into them.
  obs::ensure_initialized();
  pool_obs();
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  // The calling thread also works, so spawn one fewer worker.
  const std::size_t workers = num_threads > 1 ? num_threads - 1 : 0;
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    util::MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
  // Tasks still queued when the workers shut down run here so no waiter
  // on a task's side effects can hang (see the submit() contract).
  std::function<void()> task;
  while (tasks_.try_pop(task)) {
    pool_obs().queue_depth.add(-1);
    task();
  }
}

void ThreadPool::run_job(Job& job, std::size_t worker_index) const {
  // Save/restore so a cross-pool call (this thread already inside another
  // pool's job) regains its enclosing identity afterwards.
  const ThreadPool* const prev_pool = tls_current_pool;
  const std::size_t prev_index = tls_worker_index;
  tls_current_pool = this;
  tls_worker_index = worker_index;
  pool_obs().workers_busy.add(1);
  while (true) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.count) break;
    try {
      (*job.fn)(worker_index, i);
    } catch (...) {
      util::MutexLock lock(job.error_mutex);
      if (!job.error) job.error = std::current_exception();
    }
    // publishes: fn(i)'s side effects for index i; pairs-with the
    // acquire load in run()'s done-count wait loop.
    job.done.fetch_add(1, std::memory_order_release);
  }
  pool_obs().workers_busy.add(-1);
  tls_current_pool = prev_pool;
  tls_worker_index = prev_index;
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  std::uint64_t served_generation = 0;
  while (true) {
    std::shared_ptr<Job> job;
    {
      util::MutexLock lock(mutex_);
      // Waking for a submitted task relies on submit() notifying cv_
      // under mutex_ after the push: either this worker is already
      // waiting (and receives the notify) or it re-evaluates the
      // condition on wake and sees the non-empty queue.
      while (!stop_ &&
             !(current_ != nullptr && generation_ != served_generation) &&
             tasks_.empty()) {
        cv_.wait(mutex_);
      }
      if (stop_) return;  // still-queued tasks drain in the destructor
      if (current_ != nullptr && generation_ != served_generation) {
        served_generation = generation_;
        job = current_;  // shared ownership keeps the job alive past the caller
      }
    }
    if (job != nullptr) {
      run_job(*job, worker_index);
      // Bracket the notify with the mutex: the caller evaluates the done
      // predicate under mutex_, so acquiring it here ensures the caller
      // is either not yet waiting (and will see the final done count) or
      // already blocked in wait (and receives this notification) —
      // without the bracket the last notify could fire in the gap
      // between the caller's predicate check and its block, hanging
      // parallel_for.
      { util::MutexLock lock(mutex_); }
      done_cv_.notify_all();
    }
    std::function<void()> task;
    while (tasks_.try_pop(task)) {
      pool_obs().queue_depth.add(-1);
      pool_obs().workers_busy.add(1);
      task();
      pool_obs().workers_busy.add(-1);
    }
  }
}

void ThreadPool::submit(std::function<void()> fn) {
  pool_obs().tasks_submitted.add(1);
  if (threads_.empty()) {
    fn();  // no workers to hand the task to — degrade to synchronous
    return;
  }
  // Count before the (possibly blocking) push so a consumer's pop can
  // never observe the task without its depth contribution.
  pool_obs().queue_depth.add(1);
  tasks_.push(std::move(fn));  // blocks at capacity (backpressure)
  {
    util::MutexLock lock(mutex_);
  }
  // One task needs one worker; notify_all here would thundering-herd
  // every idle worker per submitted block on the serve hot path.
  cv_.notify_one();
}

void ThreadPool::run(std::size_t count,
                     const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  const bool nested_same_pool = tls_current_pool == this;
  if (threads_.empty() || count == 1 || nested_same_pool) {
    // Inline path: no workers, trivial job, or a nested call on the same
    // pool from inside one of its jobs (re-entering the dispatcher would
    // deadlock). The nested call keeps the enclosing job's worker index
    // so per-worker slots stay exclusive; calls into a different pool
    // take the normal dispatch path instead.
    const std::size_t worker = nested_same_pool ? tls_worker_index : 0;
    for (std::size_t i = 0; i < count; ++i) fn(worker, i);
    return;
  }
  pool_obs().jobs_dispatched.add(1);
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->count = count;
  {
    util::MutexLock lock(mutex_);
    current_ = job;
    ++generation_;
  }
  cv_.notify_all();
  run_job(*job, 0);  // caller participates via the same common queue
  {
    util::MutexLock lock(mutex_);
    // pairs-with: the release fetch_add in run_job's per-index done
    // count — once done covers count, every index's side effects are
    // visible to this thread.
    while (job->done.load(std::memory_order_acquire) < job->count) {
      done_cv_.wait(mutex_);
    }
    current_.reset();
  }
  std::exception_ptr error;
  {
    util::MutexLock lock(job->error_mutex);
    error = job->error;
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  run(count, [&fn](std::size_t, std::size_t i) { fn(i); });
}

void ThreadPool::parallel_for_worker(
    std::size_t count,
    const std::function<void(std::size_t worker, std::size_t i)>& fn) {
  run(count, fn);
}

void ThreadPool::parallel_for_chunked(
    std::size_t count, std::size_t grain,
    const std::function<void(std::size_t begin, std::size_t end)>& fn) {
  if (count == 0) return;
  grain = std::max<std::size_t>(1, grain);
  const std::size_t chunks = (count + grain - 1) / grain;
  run(chunks, [&fn, grain, count](std::size_t, std::size_t c) {
    const std::size_t begin = c * grain;
    fn(begin, std::min(count, begin + grain));
  });
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace gompresso
