#include "util/crc32.hpp"

#include <array>

namespace gompresso {
namespace {

// Slice-by-4 tables, generated at static-init time from the reflected
// polynomial 0xEDB88320.
struct Crc32Tables {
  std::array<std::array<std::uint32_t, 256>, 4> t{};

  Crc32Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c >> 1) ^ ((c & 1u) ? 0xEDB88320u : 0u);
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFFu];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFFu];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFFu];
    }
  }
};

const Crc32Tables kTables;

}  // namespace

std::uint32_t crc32(ByteSpan data, std::uint32_t seed) {
  std::uint32_t crc = ~seed;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  while (n >= 4) {
    crc ^= static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
    crc = kTables.t[3][crc & 0xFFu] ^ kTables.t[2][(crc >> 8) & 0xFFu] ^
          kTables.t[1][(crc >> 16) & 0xFFu] ^ kTables.t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n--) crc = (crc >> 8) ^ kTables.t[0][(crc ^ *p++) & 0xFFu];
  return ~crc;
}

}  // namespace gompresso
