// A bounded multi-producer / multi-consumer queue with blocking
// backpressure, used as the ThreadPool's task-submission channel (the
// serve prefetcher's decode tasks flow through it). push() blocks while
// the queue is at capacity, which is what bounds a producer that issues
// work faster than the workers drain it.
#pragma once

#include <deque>

#include "util/common.hpp"
#include "util/thread_annotations.hpp"

namespace gompresso::util {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    check(capacity > 0, "bounded_queue: zero capacity");
  }

  /// Blocks until there is room (backpressure), then enqueues `v`.
  /// Returns false — dropping `v` — when the queue has been closed.
  bool push(T v) EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    while (!closed_ && items_.size() >= capacity_) not_full_.wait(mutex_);
    if (closed_) return false;
    items_.push_back(std::move(v));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and
  /// drained; returns false in the latter case.
  bool pop(T& out) EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    while (!closed_ && items_.empty()) not_empty_.wait(mutex_);
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Non-blocking push: false — dropping `v` — when the queue is at
  /// capacity or closed. This is the admission-control primitive: a
  /// producer that must never block (the serve poller) sheds load the
  /// instant the queue is full instead of queuing unboundedly.
  bool try_push(T v) EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(v));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking pop; false when the queue is currently empty.
  bool try_pop(T& out) EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Wakes all blocked producers and consumers; subsequent push() calls
  /// are rejected. Items already queued can still be popped.
  void close() EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return closed_;
  }

  bool empty() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return items_.empty();
  }

  std::size_t size() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  mutable Mutex mutex_;
  CondVar not_full_;
  CondVar not_empty_;
  std::deque<T> items_ GUARDED_BY(mutex_);
  const std::size_t capacity_;
  bool closed_ GUARDED_BY(mutex_) = false;
};

}  // namespace gompresso::util
