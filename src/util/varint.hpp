// LEB128-style variable-length integers used by the container format
// headers (sub-block size lists, Fig. 3 of the paper).
#pragma once

#include <cstdint>

#include "util/common.hpp"

namespace gompresso {

/// Appends `v` to `out` as a little-endian base-128 varint.
inline void put_varint(Bytes& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Reads a varint from `data` starting at `pos`, advancing `pos`.
/// Throws gompresso::Error on truncated or over-long input.
inline std::uint64_t get_varint(ByteSpan data, std::size_t& pos) {
  std::uint64_t v = 0;
  unsigned shift = 0;
  while (true) {
    check(pos < data.size(), "varint: truncated input");
    check(shift < 64, "varint: value too long");
    const std::uint8_t byte = data[pos++];
    v |= static_cast<std::uint64_t>(byte & 0x7Fu) << shift;
    if ((byte & 0x80u) == 0) return v;
    shift += 7;
  }
}

/// Appends a fixed-width little-endian u32.
inline void put_u32le(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

/// Reads a fixed-width little-endian u32 at `pos`, advancing `pos`.
inline std::uint32_t get_u32le(ByteSpan data, std::size_t& pos) {
  check(pos + 4 <= data.size(), "u32: truncated input");
  const std::uint32_t v = static_cast<std::uint32_t>(data[pos]) |
                          (static_cast<std::uint32_t>(data[pos + 1]) << 8) |
                          (static_cast<std::uint32_t>(data[pos + 2]) << 16) |
                          (static_cast<std::uint32_t>(data[pos + 3]) << 24);
  pos += 4;
  return v;
}

}  // namespace gompresso
