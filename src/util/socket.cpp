#include "util/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

namespace gompresso::util {
namespace {

[[noreturn]] void raise_errno(const char* what) {
  throw IoError(std::string("net: ") + what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    raise_errno("fcntl(O_NONBLOCK)");
  }
}

/// poll() one fd for `events`, retrying on EINTR with the remaining
/// budget unmeasured (a signal mid-wait re-waits the full timeout; the
/// callers' deadlines are coarse enough that this cannot extend them
/// unboundedly in practice — signals here are SIGTERM-class, one-shot).
bool poll_one(int fd, short events, int timeout_ms) {
  struct pollfd p;
  p.fd = fd;
  p.events = events;
  p.revents = 0;
  while (true) {
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      raise_errno("poll");
    }
    return rc > 0;
  }
}

}  // namespace

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    reset();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool wait_readable(int fd, int timeout_ms) {
  return poll_one(fd, POLLIN, timeout_ms);
}

bool wait_writable(int fd, int timeout_ms) {
  return poll_one(fd, POLLOUT, timeout_ms);
}

std::ptrdiff_t recv_some(int fd, MutableByteSpan dst) {
  while (true) {
    const ssize_t n = ::recv(fd, dst.data(), dst.size(), 0);
    if (n >= 0) return static_cast<std::ptrdiff_t>(n);
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    if (errno == EINTR) continue;
    raise_errno("recv");
  }
}

void send_all(int fd, ByteSpan data, int timeout_ms) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    // MSG_NOSIGNAL: a peer that closed mid-response must surface as an
    // IoError on this connection, not a process-wide SIGPIPE.
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      check_io(wait_writable(fd, timeout_ms), "net: send timed out (slow client)");
      continue;
    }
    raise_errno("send");
  }
}

void send_best_effort(int fd, ByteSpan data) noexcept {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return;  // full buffer or error — shedding never waits
    sent += static_cast<std::size_t>(n);
  }
}

WakePipe::WakePipe() {
  int fds[2];
  check_io(::pipe(fds) == 0, "net: cannot create wake pipe");
  rd = Fd(fds[0]);
  wr = Fd(fds[1]);
  set_nonblocking(rd.get());
  set_nonblocking(wr.get());
}

void WakePipe::wake() const noexcept {
  const std::uint8_t byte = 1;
  // A full pipe already guarantees a pending wake-up; EAGAIN is success.
  [[maybe_unused]] const ssize_t n = ::write(wr.get(), &byte, 1);
}

void WakePipe::drain() const noexcept {
  std::uint8_t buf[64];
  while (::read(rd.get(), buf, sizeof buf) > 0) {
  }
}

TcpListener::TcpListener(std::uint16_t port, int backlog) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  check_io(fd.valid(), "net: cannot create socket");
  const int one = 1;
  // REUSEADDR: a drained daemon must be restartable without waiting out
  // TIME_WAIT on its own port.
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) != 0) {
    raise_errno("bind");
  }
  if (::listen(fd.get(), backlog) != 0) raise_errno("listen");

  socklen_t len = sizeof addr;
  check_io(::getsockname(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
                         &len) == 0,
           "net: getsockname failed");
  port_ = ntohs(addr.sin_port);
  set_nonblocking(fd.get());
  fd_ = std::move(fd);
}

Fd TcpListener::accept(int timeout_ms) {
  if (!fd_.valid()) return Fd();
  if (timeout_ms > 0 && !poll_one(fd_.get(), POLLIN, timeout_ms)) return Fd();
  while (true) {
    const int conn = ::accept(fd_.get(), nullptr, nullptr);
    if (conn >= 0) {
      Fd out(conn);
      set_nonblocking(conn);
      const int one = 1;
      // NODELAY: range responses are one buffered write; Nagle would add
      // a stacked delay to every small tail segment.
      ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return out;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Fd();
    // Per-connection accept failures (ECONNABORTED, EMFILE under fd
    // pressure) must not kill the accept loop: report none-available and
    // let the caller's next tick retry.
    return Fd();
  }
}

Fd connect_loopback(std::uint16_t port, int timeout_ms) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  check_io(fd.valid(), "net: cannot create socket");
  set_nonblocking(fd.get());
  // RCVBUF: the server writes whole range responses in one burst. On a
  // single-core box the reading thread may not be scheduled until the
  // burst is fully in flight, and the kernel's default receive buffer
  // (tcp_rmem[1], often 128 KiB) then overflows: segments are pruned,
  // the retransmits are dropped too, and the transfer crawls through
  // exponential RTO backoff (observed: a 256 KiB response taking 40+ s).
  // A buffer sized for several full responses absorbs the burst. Must be
  // set before connect() so window scaling is negotiated against it.
  const int rcvbuf = 4 * 1024 * 1024;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof rcvbuf);

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
                sizeof addr) != 0) {
    check_io(errno == EINPROGRESS, "net: connect failed");
    check_io(wait_writable(fd.get(), timeout_ms), "net: connect timed out");
    int err = 0;
    socklen_t len = sizeof err;
    check_io(::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) == 0 &&
                 err == 0,
             "net: connect refused");
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

}  // namespace gompresso::util
