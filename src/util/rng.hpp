// Deterministic pseudo-random number generation for dataset synthesis and
// property tests.
//
// The benchmarks must be reproducible run-to-run (EXPERIMENTS.md records
// paper-vs-measured numbers), so all dataset generators are seeded with
// fixed constants and use this self-contained generator rather than
// std::mt19937 (whose distributions are not bit-stable across standard
// library implementations).
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/common.hpp"

namespace gompresso {

/// xorshift128+ generator: fast, decent statistical quality, fully
/// deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding to avoid correlated low-entropy states.
    auto next_seed = [&seed]() {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };
    s0_ = next_seed();
    s1_ = next_seed();
  }

  std::uint64_t next_u64() {
    std::uint64_t x = s0_;
    const std::uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

  /// Uniform integer in [0, bound). bound must be > 0. Modulo mapping;
  /// bias is negligible for the bounds used here (all << 2^32).
  std::uint64_t next_below(std::uint64_t bound) { return next_u64() % bound; }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t s0_;
  std::uint64_t s1_;
};

/// Zipf(s) sampler over ranks {0, 1, ..., n-1} using inverse-CDF with a
/// precomputed table. Natural-language word frequencies are approximately
/// Zipfian, which is what gives the Wikipedia-like generator its
/// gzip-comparable redundancy profile.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s) : cdf_(n) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) sum += 1.0 / std::pow(double(i + 1), s);
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(double(i + 1), s) / sum;
      cdf_[i] = acc;
    }
    cdf_.back() = 1.0;  // guard against rounding
  }

  /// Draws a rank in [0, n); rank 0 is the most frequent.
  std::size_t sample(Rng& rng) const {
    const double u = rng.next_double();
    // Binary search for the first cdf entry >= u.
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace gompresso
