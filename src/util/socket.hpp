// Thin POSIX socket/poll wrappers for the network serve plane.
//
// The daemon in src/net/ is dependency-free by design, so the raw
// syscall surface it needs lives here: an RAII fd, a loopback TCP
// listener with ephemeral-port support, poll-based readiness waits, and
// bounded send/recv helpers. Every hard failure is a typed IoError
// (the retriable class — a socket error is transient from the archive's
// point of view); timeouts are reported in-band so callers can
// distinguish "slow peer" from "dead peer".
//
// All accepted and connected sockets are non-blocking: the poller
// multiplexes hundreds of idle connections with poll(), and the workers
// use the wait_*/send_all helpers to put explicit deadlines on every
// blocking step (a slow client must never pin a worker thread).
#pragma once

#include <cstdint>

#include "util/common.hpp"

namespace gompresso::util {

/// RAII file descriptor (socket or pipe end). Move-only; closes on
/// destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  ~Fd() { reset(); }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void reset();

 private:
  int fd_ = -1;
};

/// Waits up to `timeout_ms` for `fd` to become readable (POLLIN/HUP).
/// Returns false on timeout; throws IoError on poll failure.
bool wait_readable(int fd, int timeout_ms);

/// Waits up to `timeout_ms` for `fd` to become writable.
bool wait_writable(int fd, int timeout_ms);

/// Non-blocking read of whatever is available into `dst`. Returns the
/// byte count (> 0), 0 on clean EOF, or -1 when no data is ready
/// (EAGAIN). Throws IoError on a hard error (reset, bad fd).
std::ptrdiff_t recv_some(int fd, MutableByteSpan dst);

/// Writes all of `data`, waiting up to `timeout_ms` for writability
/// before every chunk. Throws IoError on timeout (slow client) or on a
/// hard error; the timeout is per-chunk, so total wall time is bounded
/// by timeout_ms x ceil(data/SO_SNDBUF) — a stalled peer hits the
/// timeout on the first full buffer.
void send_all(int fd, ByteSpan data, int timeout_ms);

/// Best-effort non-blocking write (used to shed with a 503 without ever
/// blocking the poller). Writes what the socket buffer accepts and
/// drops the rest; never throws.
void send_best_effort(int fd, ByteSpan data) noexcept;

/// A pipe pair used to wake a poll() loop from another thread. Both
/// ends are non-blocking; wake() coalesces (a full pipe is success).
struct WakePipe {
  Fd rd;
  Fd wr;

  WakePipe();
  void wake() const noexcept;
  /// Reads the pipe dry (called by the poller once woken).
  void drain() const noexcept;
};

/// Listening TCP socket bound to 127.0.0.1. Port 0 binds an ephemeral
/// port; port() reports the one the kernel chose.
class TcpListener {
 public:
  explicit TcpListener(std::uint16_t port, int backlog = 128);

  std::uint16_t port() const { return port_; }
  int fd() const { return fd_.get(); }

  /// Accepts one pending connection, waiting up to `timeout_ms` for one
  /// to arrive (0 = poll and return). Returns an invalid Fd when none
  /// arrived; the accepted socket is non-blocking with TCP_NODELAY.
  Fd accept(int timeout_ms);

  /// Closes the listening socket (new connects are refused). Idempotent.
  void close() { fd_.reset(); }
  bool listening() const { return fd_.valid(); }

 private:
  Fd fd_;
  std::uint16_t port_ = 0;
};

/// Client-side connect to 127.0.0.1:`port` with a bounded handshake
/// wait (tests, the bench load harness, and health probes). The socket
/// comes back non-blocking. Throws IoError on refusal or timeout.
Fd connect_loopback(std::uint16_t port, int timeout_ms);

}  // namespace gompresso::util
