// CRC-32 (IEEE 802.3 polynomial, the same checksum gzip uses).
//
// Every compressed Gompresso block stores the CRC of its uncompressed
// content; the decompressor verifies it so that corruption-injection tests
// can assert detection rather than silent garbage.
#pragma once

#include <cstdint>

#include "util/common.hpp"

namespace gompresso {

/// Computes CRC-32 over `data`, continuing from `seed` (pass 0 to start).
std::uint32_t crc32(ByteSpan data, std::uint32_t seed = 0);

}  // namespace gompresso
