// Clang Thread Safety Analysis: attribute macros and annotated lock
// primitives.
//
// Every invariant of the form "member X is only touched under mutex M"
// used to live in comments and TSan runs — i.e. it was enforced only on
// executed paths. This header turns those comments into compile-time
// contracts: structures declare GUARDED_BY(mutex_), functions declare
// REQUIRES(mutex_) / EXCLUDES(mutex_), and the CI `static-analysis` job
// compiles the tree with `clang++ -Wthread-safety -Werror`, so a lock-
// discipline regression fails the build instead of waiting for a test
// to hit the racing interleaving. On GCC (which has no thread-safety
// analysis) every macro expands to nothing and the wrappers below are
// zero-overhead shims over the std primitives.
//
// Clang's analysis only understands types that carry capability
// attributes — a raw std::mutex is invisible to it — so the annotated
// code uses the wrappers defined here:
//
//   util::Mutex      annotated CAPABILITY wrapper over std::mutex
//   util::MutexLock  SCOPED_CAPABILITY guard; supports the unlock()/
//                    lock() window pattern (pin-copy-relock) the serve
//                    plane uses
//   util::CondVar    condition variable waiting on a util::Mutex; the
//                    predicate form of std::condition_variable::wait is
//                    deliberately absent — the analysis cannot see into
//                    a predicate lambda, so wait loops are written out
//                    as `while (!cond) cv.wait(mu);` at the call site,
//                    where guarded reads are checked normally.
//
// The macro spellings follow the reference implementation in the Clang
// Thread Safety Analysis documentation (the same set abseil and zstd
// ship), unprefixed because this repository has no competing users.
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && !defined(SWIG)
#define GOMPRESSO_TSA_ATTR(x) __attribute__((x))
#else
#define GOMPRESSO_TSA_ATTR(x)  // no-op: GCC/MSVC have no thread-safety analysis
#endif

#define CAPABILITY(x) GOMPRESSO_TSA_ATTR(capability(x))
#define SCOPED_CAPABILITY GOMPRESSO_TSA_ATTR(scoped_lockable)
#define GUARDED_BY(x) GOMPRESSO_TSA_ATTR(guarded_by(x))
#define PT_GUARDED_BY(x) GOMPRESSO_TSA_ATTR(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) GOMPRESSO_TSA_ATTR(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) GOMPRESSO_TSA_ATTR(acquired_after(__VA_ARGS__))
#define REQUIRES(...) GOMPRESSO_TSA_ATTR(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  GOMPRESSO_TSA_ATTR(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) GOMPRESSO_TSA_ATTR(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  GOMPRESSO_TSA_ATTR(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) GOMPRESSO_TSA_ATTR(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  GOMPRESSO_TSA_ATTR(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) GOMPRESSO_TSA_ATTR(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) GOMPRESSO_TSA_ATTR(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) GOMPRESSO_TSA_ATTR(assert_capability(x))
#define RETURN_CAPABILITY(x) GOMPRESSO_TSA_ATTR(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS GOMPRESSO_TSA_ATTR(no_thread_safety_analysis)

namespace gompresso::util {

class CondVar;

/// Annotated exclusive mutex. Same cost as std::mutex; the capability
/// attribute is what lets -Wthread-safety track who holds it.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { m_.lock(); }
  void unlock() RELEASE() { m_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex m_;
};

/// Scoped lock over util::Mutex. Beyond plain RAII it supports the
/// release-window pattern (`lock.unlock(); ...blocking work...;
/// lock.lock();`) that the serve plane's pinned-slot delivery uses; the
/// analysis tracks the held/released state across those calls.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu), owns_(true) {
    mu_.lock();
  }
  ~MutexLock() RELEASE() {
    if (owns_) mu_.unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Opens a release window (e.g. to copy a pinned buffer without
  /// serializing other readers). Must be balanced by lock() or be the
  /// last touch before destruction.
  void unlock() RELEASE() {
    mu_.unlock();
    owns_ = false;
  }
  /// Closes a release window.
  void lock() ACQUIRE() {
    mu_.lock();
    owns_ = true;
  }

 private:
  Mutex& mu_;
  bool owns_;
};

/// Condition variable bound to util::Mutex. wait() atomically releases
/// the mutex and reacquires it before returning, exactly like
/// std::condition_variable — implemented on the underlying std::mutex
/// via an adopting unique_lock, so there is no condition_variable_any
/// overhead. There is intentionally no predicate overload: write the
/// loop at the call site so guarded reads in the predicate are visible
/// to the analysis.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Caller holds `mu` (checked); may wake spuriously, so callers loop.
  void wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> adopted(mu.m_, std::adopt_lock);
    cv_.wait(adopted);
    adopted.release();  // ownership stays with the caller's MutexLock
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace gompresso::util
