// Block-parallel work execution.
//
// The paper parallelises both Gompresso itself (inter-block parallelism,
// §III) and the CPU baseline libraries (§V-D) by splitting the input into
// equally-sized blocks and having worker threads pull block indices from a
// common queue: "Once a thread has completed decompressing a data block,
// it immediately processes the next block from a common queue. This
// balances the load across CPU threads despite input-dependent processing
// times." This pool implements exactly that discipline.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gompresso {

/// A fixed-size pool of worker threads executing indexed block jobs from a
/// shared atomic counter (the "common queue" of §V-D).
class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return threads_.size(); }

  /// Runs fn(i) for every i in [0, count), distributing indices across the
  /// workers via a shared counter. Blocks until all indices are processed.
  /// The calling thread participates in the work. Exceptions thrown by fn
  /// are captured and the first one is rethrown on the caller.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  struct Job {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::exception_ptr error;
    std::mutex error_mutex;
  };

  void worker_loop();
  static void run_job(Job& job);

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Job> current_;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

/// Singleton pool shared by the library's parallel codecs. Sized to the
/// hardware concurrency of the host.
ThreadPool& default_pool();

}  // namespace gompresso
