// Block-parallel work execution.
//
// The paper parallelises both Gompresso itself (inter-block parallelism,
// §III) and the CPU baseline libraries (§V-D) by splitting the input into
// equally-sized blocks and having worker threads pull block indices from a
// common queue: "Once a thread has completed decompressing a data block,
// it immediately processes the next block from a common queue. This
// balances the load across CPU threads despite input-dependent processing
// times." This pool implements exactly that discipline.
//
// Extensions for the fast decode path:
//   * parallel_for_worker exposes a dense participant index so callers can
//     keep per-worker accumulators (scratch arenas, metrics) and merge
//     once at the end instead of taking a mutex per block.
//   * parallel_for_chunked dispatches [begin, end) ranges at a caller-
//     chosen grain, which makes fanning out the many small sub-block lanes
//     of a single block cheap (intra-block parallelism, §III-B).
//   * A job running inside a pool may call any parallel_for variant
//     again: on the same pool the nested call runs inline on the calling
//     worker with its enclosing worker index (no deadlock, no
//     oversubscription); on a different pool it dispatches normally,
//     since that pool's workers and worker-index space are independent.
//   * submit() enqueues a detached task on a bounded queue; idle workers
//     interleave tasks with parallel_for jobs. This is what the serve
//     subsystem's pipelined prefetcher rides on: each in-flight block is
//     one submitted decode task, and the queue bound is the backstop
//     behind the session's own in-flight window.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/bounded_queue.hpp"
#include "util/thread_annotations.hpp"

namespace gompresso {

/// A fixed-size pool of worker threads executing indexed block jobs from a
/// shared atomic counter (the "common queue" of §V-D).
class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return threads_.size(); }

  /// Total concurrent participants of a parallel_for: the spawned workers
  /// plus the calling thread. Also the exclusive upper bound of the worker
  /// index passed to parallel_for_worker.
  std::size_t parallelism() const { return threads_.size() + 1; }

  /// Runs fn(i) for every i in [0, count), distributing indices across the
  /// workers via a shared counter. Blocks until all indices are processed.
  /// The calling thread participates in the work. Exceptions thrown by fn
  /// are captured and the first one is rethrown on the caller.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// Like parallel_for, but fn also receives the dense index of the
  /// participant executing it (0 = the calling thread, 1..num_threads() =
  /// spawned workers). The same participant never runs two indices
  /// concurrently, so fn may freely mutate per-worker state slot
  /// `worker` without synchronisation.
  void parallel_for_worker(
      std::size_t count,
      const std::function<void(std::size_t worker, std::size_t i)>& fn);

  /// Runs fn(begin, end) over [0, count) in chunks of `grain` indices.
  /// One queue pop dispatches a whole chunk, amortising the shared-counter
  /// traffic when individual indices are tiny (sub-block lanes).
  void parallel_for_chunked(
      std::size_t count, std::size_t grain,
      const std::function<void(std::size_t begin, std::size_t end)>& fn);

  /// Enqueues `fn` for asynchronous execution by an idle worker. Blocks
  /// (backpressure) while the bounded task queue is full. With no
  /// spawned workers (parallelism() == 1) the task runs synchronously on
  /// the caller instead. `fn` must not throw — an escaping exception
  /// terminates the process, exactly as it would from a raw std::thread;
  /// callers that need failure reporting capture an exception_ptr inside
  /// the task (see serve::DecodeSession). A task must not block on the
  /// completion of a later-submitted task (the queue is FIFO and workers
  /// are finite), and all submitted tasks must complete or be drained
  /// before the pool is destroyed; the destructor runs any still-queued
  /// tasks on the destructing thread.
  void submit(std::function<void()> fn);

  /// True when submit() executes asynchronously (spawned workers exist).
  bool async() const { return !threads_.empty(); }

 private:
  struct Job {
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    util::Mutex error_mutex;
    std::exception_ptr error GUARDED_BY(error_mutex);
  };

  void run(std::size_t count, const std::function<void(std::size_t, std::size_t)>& fn)
      EXCLUDES(mutex_);
  void worker_loop(std::size_t worker_index) EXCLUDES(mutex_);
  void run_job(Job& job, std::size_t worker_index) const EXCLUDES(mutex_);

  std::vector<std::thread> threads_;
  util::Mutex mutex_;
  util::CondVar cv_;
  util::CondVar done_cv_;
  std::shared_ptr<Job> current_ GUARDED_BY(mutex_);
  std::uint64_t generation_ GUARDED_BY(mutex_) = 0;
  bool stop_ GUARDED_BY(mutex_) = false;
  util::BoundedQueue<std::function<void()>> tasks_;
};

/// Singleton pool shared by the library's parallel codecs. Sized to the
/// hardware concurrency of the host.
ThreadPool& default_pool();

}  // namespace gompresso
