// Wall-clock timing for the benchmark harnesses.
#pragma once

#include <chrono>
#include <cstdint>

namespace gompresso {

/// Monotonic wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Converts (bytes, seconds) to GB/s using decimal gigabytes, matching the
/// paper's bandwidth reporting convention.
inline double gb_per_sec(std::uint64_t bytes, double seconds) {
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(bytes) / 1e9 / seconds;
}

}  // namespace gompresso
