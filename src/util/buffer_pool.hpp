// Pooled byte buffers with outstanding-memory accounting.
//
// The serve subsystem's memory bound rests on this pool: every decoded
// block and every compressed-extent staging buffer a DecodeSession uses
// is leased from one BufferPool, so the pool's peak-outstanding counters
// are a machine-checkable witness that session memory is
// O(max_inflight_blocks x block_size) no matter how large the file is.
// bench_serve asserts exactly that.
#pragma once

#include <utility>
#include <vector>

#include "util/common.hpp"
#include "util/thread_annotations.hpp"

namespace gompresso::util {

class BufferPool;

/// RAII lease of a pool buffer; returns it to the pool on destruction.
class PooledBuffer {
 public:
  PooledBuffer() = default;
  PooledBuffer(PooledBuffer&& other) noexcept
      : pool_(std::exchange(other.pool_, nullptr)), bytes_(std::move(other.bytes_)) {}
  PooledBuffer& operator=(PooledBuffer&& other) noexcept {
    if (this != &other) {
      reset();
      pool_ = std::exchange(other.pool_, nullptr);
      bytes_ = std::move(other.bytes_);
    }
    return *this;
  }
  PooledBuffer(const PooledBuffer&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;
  ~PooledBuffer() { reset(); }

  inline void reset();

  bool valid() const { return pool_ != nullptr; }
  std::uint8_t* data() { return bytes_.data(); }
  const std::uint8_t* data() const { return bytes_.data(); }
  std::size_t size() const { return bytes_.size(); }
  MutableByteSpan span() { return {bytes_.data(), bytes_.size()}; }
  ByteSpan cspan() const { return {bytes_.data(), bytes_.size()}; }

 private:
  friend class BufferPool;
  PooledBuffer(BufferPool* pool, Bytes bytes) : pool_(pool), bytes_(std::move(bytes)) {}

  BufferPool* pool_ = nullptr;
  Bytes bytes_;
};

/// Thread-safe free-list of byte buffers. acquire() prefers the largest
/// free buffer (capacities converge to the block size after a few leases,
/// making the steady state allocation-free), release() returns capacity
/// to the list.
class BufferPool {
 public:
  struct Stats {
    std::uint64_t acquires = 0;          // total leases handed out
    std::uint64_t allocations = 0;       // leases that had to grow capacity
    std::uint64_t reuses = 0;            // leases served fully from the free list
    std::size_t outstanding = 0;         // buffers currently leased
    std::size_t peak_outstanding = 0;
    std::uint64_t outstanding_bytes = 0;  // capacity currently leased
    std::uint64_t peak_outstanding_bytes = 0;
  };

  /// Leases a buffer resized to exactly `size` bytes (contents undefined).
  PooledBuffer acquire(std::size_t size) EXCLUDES(mutex_) {
    Bytes buf;
    bool reused_capacity = false;
    {
      MutexLock lock(mutex_);
      if (!free_.empty()) {
        // Prefer the smallest free buffer that already fits; otherwise
        // grow the largest one (keeps capacities converging instead of
        // re-growing a small buffer while a large one idles).
        std::size_t best = free_.size();
        std::size_t largest = 0;
        for (std::size_t i = 0; i < free_.size(); ++i) {
          const std::size_t cap = free_[i].capacity();
          if (cap >= size && (best == free_.size() || cap < free_[best].capacity())) {
            best = i;
          }
          if (free_[i].capacity() >= free_[largest].capacity()) largest = i;
        }
        const std::size_t pick = best != free_.size() ? best : largest;
        buf = std::move(free_[pick]);
        free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(pick));
        reused_capacity = buf.capacity() >= size;
      }
    }
    buf.resize(size);
    MutexLock lock(mutex_);
    ++stats_.acquires;
    if (reused_capacity) {
      ++stats_.reuses;
    } else {
      ++stats_.allocations;
    }
    ++stats_.outstanding;
    stats_.peak_outstanding = std::max(stats_.peak_outstanding, stats_.outstanding);
    stats_.outstanding_bytes += buf.capacity();
    stats_.peak_outstanding_bytes =
        std::max(stats_.peak_outstanding_bytes, stats_.outstanding_bytes);
    return PooledBuffer(this, std::move(buf));
  }

  Stats stats() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return stats_;
  }

  /// Drops all free-list capacity (leased buffers are unaffected).
  void trim() EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    free_.clear();
    free_.shrink_to_fit();
  }

 private:
  friend class PooledBuffer;

  void release(Bytes&& buf) EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    --stats_.outstanding;
    stats_.outstanding_bytes -= buf.capacity();
    free_.push_back(std::move(buf));
  }

  mutable Mutex mutex_;
  std::vector<Bytes> free_ GUARDED_BY(mutex_);
  Stats stats_ GUARDED_BY(mutex_);
};

inline void PooledBuffer::reset() {
  if (pool_ != nullptr) {
    std::exchange(pool_, nullptr)->release(std::move(bytes_));
    bytes_ = Bytes();
  }
}

}  // namespace gompresso::util
