// Core shared definitions for the Gompresso library.
//
// Everything in this repository lives under the `gompresso` namespace.
// This header provides the error type thrown at public API boundaries,
// byte-span aliases used throughout the codecs, and a handful of small
// bit-manipulation helpers shared by the bitstream, Huffman and SIMT
// layers.
#pragma once

#include <bit>
#include <cstdint>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace gompresso {

/// Classification of a failure, driving retry and degradation decisions
/// in the serve plane (see the subclasses below). Retry logic must
/// branch on these types, never on message strings.
enum class ErrorKind : std::uint8_t {
  kConfig = 0,      // invalid configuration / API misuse — not retriable
  kIo = 1,          // transient I/O — retriable with backoff
  kCorruption = 2,  // permanent, data-level — containable per block
  kFormat = 3,      // permanent, structural — fails the whole container
};

/// Error thrown by public API entry points on malformed input, corrupt
/// compressed data, or invalid configuration. Failures with a known
/// class are thrown as one of the subclasses below; a plain Error means
/// invalid configuration or API misuse (ErrorKind::kConfig).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
  virtual ErrorKind kind() const { return ErrorKind::kConfig; }
};

/// Transient I/O failure (failed pread, stream read/seek error,
/// unexpected EOF from a device): the same operation may succeed if
/// retried, so the serve plane's RetryPolicy applies to this type only.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
  ErrorKind kind() const override { return ErrorKind::kIo; }
};

/// Permanent, data-level damage (CRC mismatch, back-reference out of
/// window, malformed block payload): retrying reproduces the failure,
/// but the block-independent container confines it to one block —
/// degraded reads can zero-fill the block and keep serving.
class CorruptionError : public Error {
 public:
  explicit CorruptionError(const std::string& what) : Error(what) {}
  ErrorKind kind() const override { return ErrorKind::kCorruption; }
};

/// Permanent, structural damage (bad magic/version, header or sidecar
/// validation failure, extents outside the source): the container's
/// skeleton cannot be trusted, so nothing can be served from it.
class FormatError : public Error {
 public:
  explicit FormatError(const std::string& what) : Error(what) {}
  ErrorKind kind() const override { return ErrorKind::kFormat; }
};

/// True for failures a retry can plausibly clear.
inline bool is_transient(const Error& e) { return e.kind() == ErrorKind::kIo; }

/// Throws the taxonomy subclass matching `kind` (kConfig -> plain
/// Error). Lets a failure recorded as (kind, message) — e.g. by a decode
/// task publishing to readers on other threads — be re-raised as a
/// fresh, unshared exception object: libstdc++'s rethrow_exception
/// rethrows the *same* object, and concurrent rethrows of one
/// exception_ptr race its destruction against virtual kind() calls.
[[noreturn]] inline void throw_error(ErrorKind kind, const std::string& what) {
  switch (kind) {
    case ErrorKind::kIo: throw IoError(what);
    case ErrorKind::kCorruption: throw CorruptionError(what);
    case ErrorKind::kFormat: throw FormatError(what);
    case ErrorKind::kConfig: break;
  }
  throw Error(what);
}

/// Throws gompresso::Error with `msg` when `cond` is false.
inline void check(bool cond, const char* msg) {
  if (!cond) throw Error(msg);
}

/// Typed variants of check(): classify the failure at the throw site.
inline void check_io(bool cond, const char* msg) {
  if (!cond) throw IoError(msg);
}
inline void check_corrupt(bool cond, const char* msg) {
  if (!cond) throw CorruptionError(msg);
}
inline void check_format(bool cond, const char* msg) {
  if (!cond) throw FormatError(msg);
}

using ByteSpan = std::span<const std::uint8_t>;
using MutableByteSpan = std::span<std::uint8_t>;
using Bytes = std::vector<std::uint8_t>;

/// Reinterprets a string as a read-only byte span (no copy).
inline ByteSpan as_bytes(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

/// Number of leading zero bits in a 32-bit word; 32 for x == 0.
/// Mirrors CUDA's `__clz` used by the MRR algorithm (paper Fig. 5 line 9).
inline int count_leading_zeros(std::uint32_t x) {
  return x == 0 ? 32 : std::countl_zero(x);
}

/// Integer ceiling division. Written without the (a + b - 1) numerator:
/// that form wraps for `a` near the type's maximum, which matters when
/// `a` is untrusted (e.g. an uncompressed_size of 2^64-1 from a crafted
/// header would make the block-count invariant vacuously pass).
template <typename T>
constexpr T div_ceil(T a, T b) {
  return a / b + (a % b != 0 ? 1 : 0);
}

/// Rounds `v` up to the next multiple of `mult`.
template <typename T>
constexpr T round_up(T v, T mult) {
  return div_ceil(v, mult) * mult;
}

/// True when `v` is a power of two (and non-zero).
constexpr bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// floor(log2(v)) for v >= 1.
constexpr unsigned floor_log2(std::uint64_t v) {
  return 63u - static_cast<unsigned>(std::countl_zero(v | 1));
}

}  // namespace gompresso
