// Core shared definitions for the Gompresso library.
//
// Everything in this repository lives under the `gompresso` namespace.
// This header provides the error type thrown at public API boundaries,
// byte-span aliases used throughout the codecs, and a handful of small
// bit-manipulation helpers shared by the bitstream, Huffman and SIMT
// layers.
#pragma once

#include <bit>
#include <cstdint>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace gompresso {

/// Error thrown by public API entry points on malformed input, corrupt
/// compressed data, or invalid configuration.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Throws gompresso::Error with `msg` when `cond` is false.
inline void check(bool cond, const char* msg) {
  if (!cond) throw Error(msg);
}

using ByteSpan = std::span<const std::uint8_t>;
using MutableByteSpan = std::span<std::uint8_t>;
using Bytes = std::vector<std::uint8_t>;

/// Reinterprets a string as a read-only byte span (no copy).
inline ByteSpan as_bytes(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

/// Number of leading zero bits in a 32-bit word; 32 for x == 0.
/// Mirrors CUDA's `__clz` used by the MRR algorithm (paper Fig. 5 line 9).
inline int count_leading_zeros(std::uint32_t x) {
  return x == 0 ? 32 : std::countl_zero(x);
}

/// Integer ceiling division. Written without the (a + b - 1) numerator:
/// that form wraps for `a` near the type's maximum, which matters when
/// `a` is untrusted (e.g. an uncompressed_size of 2^64-1 from a crafted
/// header would make the block-count invariant vacuously pass).
template <typename T>
constexpr T div_ceil(T a, T b) {
  return a / b + (a % b != 0 ? 1 : 0);
}

/// Rounds `v` up to the next multiple of `mult`.
template <typename T>
constexpr T round_up(T v, T mult) {
  return div_ceil(v, mult) * mult;
}

/// True when `v` is a power of two (and non-zero).
constexpr bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// floor(log2(v)) for v >= 1.
constexpr unsigned floor_log2(std::uint64_t v) {
  return 63u - static_cast<unsigned>(std::countl_zero(v | 1));
}

}  // namespace gompresso
