// Unit tests for the two Gompresso block codecs (byte and bit level).
#include <gtest/gtest.h>

#include "core/bit_codec.hpp"
#include "core/byte_codec.hpp"
#include "datagen/datasets.hpp"
#include "lz77/parser.hpp"
#include "lz77/ref_decoder.hpp"
#include "tests/fuzz_budget.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/varint.hpp"

namespace gompresso::core {
namespace {

lz77::TokenBlock parse_dataset(int which, std::size_t n) {
  Bytes input;
  switch (which) {
    case 0: input = datagen::wikipedia(n); break;
    case 1: input = datagen::matrix(n); break;
    case 2: input = datagen::random_bytes(n); break;
    default: input = Bytes(n, 'm'); break;
  }
  lz77::ParserOptions opt;
  // The byte codec's packed records bound literal runs; parse with the
  // same split the compressor applies.
  opt.max_literal_run = kByteCodecMaxLiteralRun;
  return lz77::parse(input, opt, nullptr);
}

bool token_blocks_equal(const lz77::TokenBlock& a, const lz77::TokenBlock& b) {
  if (a.literals != b.literals) return false;
  if (a.uncompressed_size != b.uncompressed_size) return false;
  if (a.sequences.size() != b.sequences.size()) return false;
  for (std::size_t i = 0; i < a.sequences.size(); ++i) {
    if (a.sequences[i].literal_len != b.sequences[i].literal_len ||
        a.sequences[i].match_len != b.sequences[i].match_len ||
        a.sequences[i].match_dist != b.sequences[i].match_dist) {
      return false;
    }
  }
  return true;
}

TEST(ByteCodec, RoundTripPreservesTokens) {
  for (const int which : {0, 1, 2, 3}) {
    const lz77::TokenBlock tokens = parse_dataset(which, 60000);
    const Bytes payload = encode_block_byte(tokens);
    const lz77::TokenBlock back = decode_block_byte(payload);
    EXPECT_TRUE(token_blocks_equal(tokens, back)) << "dataset " << which;
  }
}

TEST(ByteCodec, PayloadSizeIsRecordsPlusLiterals) {
  const lz77::TokenBlock tokens = parse_dataset(0, 60000);
  const Bytes payload = encode_block_byte(tokens);
  // varint(n) + 8 bytes per sequence + literal bytes, exactly.
  Bytes expect_prefix;
  EXPECT_LE(payload.size(),
            10 + tokens.sequences.size() * kByteRecordSize + tokens.literals.size());
  EXPECT_GE(payload.size(),
            1 + tokens.sequences.size() * kByteRecordSize + tokens.literals.size());
}

TEST(ByteCodec, TruncatedPayloadThrows) {
  const lz77::TokenBlock tokens = parse_dataset(0, 20000);
  const Bytes payload = encode_block_byte(tokens);
  for (const double frac : {0.0, 0.3, 0.9}) {
    Bytes cut(payload.begin(),
              payload.begin() + static_cast<std::ptrdiff_t>(payload.size() * frac));
    EXPECT_THROW(decode_block_byte(cut), Error);
  }
}

TEST(ByteCodec, LiteralRegionSizeMismatchThrows) {
  const lz77::TokenBlock tokens = parse_dataset(0, 20000);
  Bytes payload = encode_block_byte(tokens);
  payload.push_back(0xAA);  // extra literal byte
  EXPECT_THROW(decode_block_byte(payload), Error);
}

TEST(ByteCodec, LyingLiteralRunsFailBeforeStaging) {
  // Regression for the strict-parse rework: records whose claimed
  // literal runs outgrow the actual literal region must fail during the
  // record scan (per-record accumulation checks), before any literal
  // byte is staged into the block.
  Bytes payload;
  put_varint(payload, 4);
  for (int i = 0; i < 4; ++i) {
    lz77::Sequence s;
    s.literal_len = kByteCodecMaxLiteralRun;  // 4 * 8191 claimed
    put_u32le(payload, pack_record(s));
  }
  payload.insert(payload.end(), 16, 0x55);  // but only 16 literal bytes exist
  EXPECT_THROW(decode_block_byte(payload), Error);
}

TEST(ByteCodec, ScratchReusesBuffers) {
  const lz77::TokenBlock tokens = parse_dataset(0, 60000);
  const Bytes payload = encode_block_byte(tokens);
  DecodeScratch scratch;
  EXPECT_TRUE(token_blocks_equal(tokens, decode_block_byte(payload, scratch)));
  EXPECT_EQ(scratch.stats.blocks, 1u);
  EXPECT_EQ(scratch.stats.buffer_reuses, 0u);  // cold buffers grew
  EXPECT_TRUE(token_blocks_equal(tokens, decode_block_byte(payload, scratch)));
  EXPECT_EQ(scratch.stats.blocks, 2u);
  EXPECT_EQ(scratch.stats.buffer_reuses, 1u);
  // Pre-reserved arenas are warm from the first block (decompressor path).
  DecodeScratch reserved;
  reserved.reserve(1 << 20, 16);
  EXPECT_TRUE(token_blocks_equal(tokens, decode_block_byte(payload, reserved)));
  EXPECT_EQ(reserved.stats.buffer_reuses, 1u);
}

TEST(ByteCodec, LanePoolFanOutMatchesSerialDecode) {
  // The fixed-width records make any sub-range an independent lane;
  // chunked unpack across a pool must be bit-identical to the serial
  // scan.
  const lz77::TokenBlock tokens = parse_dataset(0, 200000);
  const Bytes payload = encode_block_byte(tokens);
  DecodeScratch serial_scratch;
  const lz77::TokenBlock serial = decode_block_byte(payload, serial_scratch);
  ThreadPool pool(4);
  DecodeScratch pooled_scratch;
  const lz77::TokenBlock& pooled = decode_block_byte(payload, pooled_scratch, &pool);
  EXPECT_TRUE(token_blocks_equal(serial, pooled));
  EXPECT_TRUE(token_blocks_equal(tokens, pooled));
  EXPECT_EQ(pooled_scratch.stats.lane_fanouts, 1u);
  EXPECT_EQ(serial_scratch.stats.lane_fanouts, 0u);
}

TEST(ByteCodec, RandomMutationFuzzNeverCrashes) {
  const lz77::TokenBlock tokens = parse_dataset(1, 30000);
  const Bytes payload = encode_block_byte(tokens);
  Rng rng(0xB17E);
  const int trials = gompresso::testing::fuzz_trials(300);  // nightly CI: 10x budget
  for (int trial = 0; trial < trials; ++trial) {
    Bytes bad = payload;
    const int edits = 1 + static_cast<int>(rng.next_below(8));
    for (int e = 0; e < edits; ++e) {
      bad[rng.next_below(bad.size())] = static_cast<std::uint8_t>(rng.next_u32());
    }
    if (rng.next_below(4) == 0) bad.resize(1 + rng.next_below(bad.size()));
    try {
      const lz77::TokenBlock back = decode_block_byte(bad);
      (void)back;  // structurally valid mutation: container CRC's job
    } catch (const Error&) {
      // clean rejection
    }
  }
}

TEST(BitCodec, RoundTripPreservesTokens) {
  BitCodecConfig cfg;
  for (const int which : {0, 1, 2, 3}) {
    const lz77::TokenBlock tokens = parse_dataset(which, 60000);
    const Bytes payload = encode_block_bit(tokens, cfg);
    const lz77::TokenBlock back = decode_block_bit(payload, cfg);
    EXPECT_TRUE(token_blocks_equal(tokens, back)) << "dataset " << which;
  }
}

TEST(BitCodec, CompressesTextBetterThanByteCodec) {
  const lz77::TokenBlock tokens = parse_dataset(0, 120000);
  BitCodecConfig cfg;
  const Bytes bit_payload = encode_block_bit(tokens, cfg);
  const Bytes byte_payload = encode_block_byte(tokens);
  EXPECT_LT(bit_payload.size(), byte_payload.size());
}

TEST(BitCodec, SubblockCountMatchesConfig) {
  BitCodecConfig cfg;
  cfg.tokens_per_subblock = 16;
  const lz77::TokenBlock tokens = parse_dataset(0, 60000);
  const Bytes payload = encode_block_bit(tokens, cfg);
  // Decode must agree with the same config; a mismatching config still
  // decodes (the table is self-describing), so sub-block shape is
  // validated through the table's internal consistency checks.
  const lz77::TokenBlock back = decode_block_bit(payload, cfg);
  EXPECT_TRUE(token_blocks_equal(tokens, back));
}

TEST(BitCodec, VariousSubblockSizes) {
  const lz77::TokenBlock tokens = parse_dataset(1, 60000);
  for (const std::uint32_t tps : {1u, 4u, 16u, 64u, 1024u}) {
    BitCodecConfig cfg;
    cfg.tokens_per_subblock = tps;
    const Bytes payload = encode_block_bit(tokens, cfg);
    const lz77::TokenBlock back = decode_block_bit(payload, cfg);
    EXPECT_TRUE(token_blocks_equal(tokens, back)) << "tps=" << tps;
  }
}

TEST(BitCodec, SmallerSubblocksCostRatio) {
  // More sub-blocks -> more header entries -> larger payload (the
  // parallelism-vs-ratio trade-off of §III-A).
  const lz77::TokenBlock tokens = parse_dataset(0, 120000);
  BitCodecConfig small, large;
  small.tokens_per_subblock = 4;
  large.tokens_per_subblock = 256;
  EXPECT_GT(encode_block_bit(tokens, small).size(),
            encode_block_bit(tokens, large).size());
}

TEST(BitCodec, VariousCodewordLimits) {
  const lz77::TokenBlock tokens = parse_dataset(0, 60000);
  std::size_t prev_size = 0;
  for (const unsigned cwl : {9u, 10u, 12u, 15u}) {
    BitCodecConfig cfg;
    cfg.codeword_limit = cwl;
    const Bytes payload = encode_block_bit(tokens, cfg);
    const lz77::TokenBlock back = decode_block_bit(payload, cfg);
    EXPECT_TRUE(token_blocks_equal(tokens, back)) << "cwl=" << cwl;
    if (prev_size != 0) {
      // Longer limits can only improve (or match) the entropy coding;
      // allow a tiny slack for tie-breaking differences.
      EXPECT_LE(payload.size(), prev_size + prev_size / 100) << "cwl=" << cwl;
    }
    prev_size = payload.size();
  }
}

TEST(BitCodec, DecodeTableFootprint) {
  EXPECT_EQ(decode_tables_footprint(10), 2u * 1024u * 4u);
  EXPECT_EQ(decode_tables_footprint(12), 2u * 4096u * 4u);
}

TEST(BitCodec, CorruptBitstreamDetected) {
  BitCodecConfig cfg;
  const lz77::TokenBlock tokens = parse_dataset(0, 40000);
  const Bytes payload = encode_block_bit(tokens, cfg);
  int detected = 0;
  int trials = 0;
  // Flip a byte somewhere in the back half (the bitstream region); most
  // flips must be caught by the codec's structural checks. (Flips that
  // produce a different-but-valid token stream are caught later by the
  // block CRC in the container layer.)
  for (std::size_t at = payload.size() / 2; at < payload.size();
       at += payload.size() / 37 + 1) {
    Bytes bad = payload;
    bad[at] ^= 0x5A;
    ++trials;
    try {
      const lz77::TokenBlock back = decode_block_bit(bad, cfg);
      if (!token_blocks_equal(tokens, back)) ++detected;  // differs -> CRC would catch
    } catch (const Error&) {
      ++detected;
    }
  }
  EXPECT_EQ(detected, trials);
}

TEST(BitCodec, ScratchReusesBuffersAndTables) {
  BitCodecConfig cfg;
  const lz77::TokenBlock tokens = parse_dataset(0, 60000);
  const Bytes payload = encode_block_bit(tokens, cfg);
  DecodeScratch scratch;
  EXPECT_TRUE(token_blocks_equal(tokens, decode_block_bit(payload, cfg, scratch)));
  EXPECT_EQ(scratch.stats.blocks, 1u);
  EXPECT_EQ(scratch.stats.table_builds, 1u);
  EXPECT_EQ(scratch.stats.buffer_reuses, 0u);  // cold buffers grew
  // Decoding the same payload again must reuse everything: identical tree
  // bytes hit the table cache, warm buffers grow nothing.
  EXPECT_TRUE(token_blocks_equal(tokens, decode_block_bit(payload, cfg, scratch)));
  EXPECT_EQ(scratch.stats.blocks, 2u);
  EXPECT_EQ(scratch.stats.table_builds, 1u);
  EXPECT_EQ(scratch.stats.table_reuses, 1u);
  EXPECT_EQ(scratch.stats.buffer_reuses, 1u);
}

TEST(BitCodec, LanePoolFanOutMatchesSerialDecode) {
  // Many sub-blocks, decoded once serially and once with the sub-block
  // lanes fanned out across a pool — bit-identical token blocks.
  BitCodecConfig cfg;
  cfg.tokens_per_subblock = 4;  // lots of lanes
  const lz77::TokenBlock tokens = parse_dataset(0, 120000);
  const Bytes payload = encode_block_bit(tokens, cfg);
  DecodeScratch serial_scratch;
  const lz77::TokenBlock serial = decode_block_bit(payload, cfg, serial_scratch);
  ThreadPool pool(4);
  DecodeScratch pooled_scratch;
  const lz77::TokenBlock& pooled = decode_block_bit(payload, cfg, pooled_scratch, &pool);
  EXPECT_TRUE(token_blocks_equal(serial, pooled));
  EXPECT_TRUE(token_blocks_equal(tokens, pooled));
}

TEST(BitCodec, RejectsBadMatchDomain) {
  lz77::TokenBlock tokens;
  tokens.sequences.push_back({1, 300, 5});  // match length > 258
  tokens.sequences.push_back({0, 0, 0});
  tokens.literals = {'x'};
  tokens.uncompressed_size = 301;
  BitCodecConfig cfg;
  EXPECT_THROW(encode_block_bit(tokens, cfg), Error);
}

}  // namespace
}  // namespace gompresso::core
