// Tests for the warp-parallel LZ77 resolution engine: equivalence with
// the sequential reference decoder across strategies, round-count
// invariants (DE = 1 round), metrics accounting, and malformed input.
#include <gtest/gtest.h>

#include "core/mrr_multipass.hpp"
#include "core/warp_lz77.hpp"
#include "datagen/datasets.hpp"
#include "lz77/parser.hpp"
#include "lz77/ref_decoder.hpp"
#include "util/rng.hpp"

namespace gompresso::core {
namespace {

Bytes resolve_with(const lz77::TokenBlock& tokens, Strategy strategy,
                   simt::WarpMetrics* metrics = nullptr,
                   MultiPassStats* mp = nullptr) {
  Bytes out(tokens.uncompressed_size);
  if (strategy == Strategy::kMultiPass) {
    resolve_block_multipass(tokens.sequences, tokens.literals.data(),
                            tokens.literals.size(), out, mp);
  } else {
    resolve_block(tokens.sequences, tokens.literals.data(), tokens.literals.size(),
                  out, strategy, metrics);
  }
  return out;
}

class StrategyEquivalence
    : public ::testing::TestWithParam<std::tuple<Strategy, bool, int>> {};

TEST_P(StrategyEquivalence, MatchesReferenceDecoder) {
  const auto [strategy, de, which] = GetParam();
  if (strategy == Strategy::kDependencyFree && !de) {
    GTEST_SKIP() << "DE strategy requires DE-parsed stream";
  }
  Bytes input;
  switch (which) {
    case 0: input = datagen::wikipedia(150000); break;
    case 1: input = datagen::matrix(150000); break;
    case 2: input = datagen::random_bytes(60000); break;
    case 3: input = Bytes(100000, 'w'); break;
    case 4: {
      datagen::NestingConfig nc;
      nc.families = 2;
      input = datagen::make_nesting(80000, nc);
      break;
    }
    default: FAIL();
  }
  lz77::ParserOptions popt;
  popt.dependency_elimination = de;
  const lz77::TokenBlock tokens = lz77::parse(input, popt, nullptr);
  const Bytes expect = lz77::decode_reference(tokens);
  ASSERT_EQ(expect, input);
  EXPECT_EQ(resolve_with(tokens, strategy), input);
}

INSTANTIATE_TEST_SUITE_P(
    All, StrategyEquivalence,
    ::testing::Combine(::testing::Values(Strategy::kSequentialCopy,
                                         Strategy::kMultiRound,
                                         Strategy::kDependencyFree,
                                         Strategy::kMultiPass),
                       ::testing::Bool(), ::testing::Values(0, 1, 2, 3, 4)));

TEST(WarpLz77, DeStreamsResolveInOneRoundUnderMrr) {
  // On a DE-parsed stream MRR's HWM logic may still take >1 round for
  // same-group literal references, but the dedicated DE resolver always
  // takes exactly one round per group. Verify the DE resolver's count.
  const Bytes input = datagen::wikipedia(200000);
  lz77::ParserOptions popt;
  popt.dependency_elimination = true;
  const lz77::TokenBlock tokens = lz77::parse(input, popt, nullptr);
  simt::WarpMetrics metrics;
  EXPECT_EQ(resolve_with(tokens, Strategy::kDependencyFree, &metrics), input);
  EXPECT_EQ(metrics.rounds, metrics.groups);
  EXPECT_EQ(metrics.max_rounds_in_group, 1u);
}

TEST(WarpLz77, DeStrategyRejectsNestedStream) {
  // A non-DE parse of nested data must be rejected by the DE resolver.
  datagen::NestingConfig nc;
  nc.families = 1;  // maximal nesting
  const Bytes input = datagen::make_nesting(100000, nc);
  lz77::ParserOptions popt;  // no dependency elimination
  const lz77::TokenBlock tokens = lz77::parse(input, popt, nullptr);
  Bytes out(tokens.uncompressed_size);
  EXPECT_THROW(resolve_block(tokens.sequences, tokens.literals.data(),
                             tokens.literals.size(), out,
                             Strategy::kDependencyFree, nullptr),
               Error);
}

TEST(WarpLz77, MrrRoundsReflectNestingDepth) {
  for (const std::uint32_t families : {1u, 2u, 4u, 8u, 16u, 32u}) {
    datagen::NestingConfig nc;
    nc.families = families;
    const Bytes input = datagen::make_nesting(200000, nc);
    lz77::ParserOptions popt;
    popt.matcher.staleness = 0;  // nearest-match parse induces the chains
    const lz77::TokenBlock tokens = lz77::parse(input, popt, nullptr);
    simt::WarpMetrics metrics;
    ASSERT_EQ(resolve_with(tokens, Strategy::kMultiRound, &metrics), input);
    const double expected = datagen::expected_depth(families);
    const double measured = metrics.avg_rounds_per_group();
    // Allow boundary effects (first group of the block parses long
    // literals, phase drift at group boundaries).
    EXPECT_GT(measured, expected * 0.7) << "families=" << families;
    EXPECT_LT(measured, expected * 1.3 + 2.0) << "families=" << families;
  }
}

TEST(WarpLz77, MrrBytesPerRoundSumsToMatchBytes) {
  const Bytes input = datagen::matrix(150000);
  lz77::ParserOptions popt;
  lz77::ParseStats stats;
  const lz77::TokenBlock tokens = lz77::parse(input, popt, &stats);
  simt::WarpMetrics metrics;
  ASSERT_EQ(resolve_with(tokens, Strategy::kMultiRound, &metrics), input);
  std::uint64_t sum = 0;
  for (const auto b : metrics.bytes_per_round) sum += b;
  EXPECT_EQ(sum, stats.match_bytes);
  // Round 1 must dominate on real data (paper Fig. 9b).
  ASSERT_FALSE(metrics.bytes_per_round.empty());
  EXPECT_GT(metrics.bytes_per_round[0], sum / 2);
}

TEST(WarpLz77, ScCountsOneRoundPerBackref) {
  const Bytes input = datagen::wikipedia(100000);
  lz77::ParserOptions popt;
  const lz77::TokenBlock tokens = lz77::parse(input, popt, nullptr);
  std::uint64_t refs = 0;
  for (const auto& s : tokens.sequences) refs += s.match_len != 0;
  simt::WarpMetrics metrics;
  ASSERT_EQ(resolve_with(tokens, Strategy::kSequentialCopy, &metrics), input);
  EXPECT_EQ(metrics.rounds, refs);
}

TEST(WarpLz77, MultipassSpillsOnlyNestedRefs) {
  // DE stream: nothing to spill beyond pass 1.
  const Bytes de_input = datagen::wikipedia(100000);
  lz77::ParserOptions de_opt;
  de_opt.dependency_elimination = true;
  const lz77::TokenBlock de_tokens = lz77::parse(de_input, de_opt, nullptr);
  MultiPassStats de_stats;
  ASSERT_EQ(resolve_with(de_tokens, Strategy::kMultiPass, nullptr, &de_stats), de_input);
  EXPECT_EQ(de_stats.passes, 1u);
  EXPECT_EQ(de_stats.spilled_refs, 0u);

  // Deep nesting: many passes, many spills.
  datagen::NestingConfig nc;
  nc.families = 1;
  const Bytes nested = datagen::make_nesting(100000, nc);
  lz77::ParserOptions plain;
  plain.matcher.staleness = 0;  // nearest-match parse induces the chains
  const lz77::TokenBlock nested_tokens = lz77::parse(nested, plain, nullptr);
  MultiPassStats nested_stats;
  ASSERT_EQ(resolve_with(nested_tokens, Strategy::kMultiPass, nullptr, &nested_stats),
            nested);
  EXPECT_GT(nested_stats.passes, 1u);
  EXPECT_GT(nested_stats.spilled_refs, 0u);
  EXPECT_GT(nested_stats.spilled_bytes, nested_stats.spilled_refs * 8);
}

TEST(WarpLz77, HandcraftedSelfOverlapAcrossLanes) {
  // 33 sequences: force a second group whose first lane self-overlaps.
  lz77::TokenBlock tokens;
  Bytes expect;
  for (int k = 0; k < 33; ++k) {
    lz77::Sequence s;
    s.literal_len = 1;
    s.match_len = 5;
    s.match_dist = 1;  // run of the literal byte
    tokens.sequences.push_back(s);
    tokens.literals.push_back(static_cast<std::uint8_t>('A' + k % 26));
    for (int i = 0; i < 6; ++i) expect.push_back(static_cast<std::uint8_t>('A' + k % 26));
  }
  tokens.sequences.push_back({0, 0, 0});
  tokens.uncompressed_size = static_cast<std::uint32_t>(expect.size());
  for (const Strategy s : {Strategy::kSequentialCopy, Strategy::kMultiRound,
                           Strategy::kDependencyFree, Strategy::kMultiPass}) {
    EXPECT_EQ(resolve_with(tokens, s), expect) << strategy_name(s);
  }
}

TEST(WarpLz77, HandcraftedCrossGroupReference) {
  // 80 sequences spanning three warp groups; every sequence after the
  // first emits 2 literals then copies 4 bytes from a short distance,
  // so later groups' matches read earlier groups' match output.
  lz77::TokenBlock tokens;
  Bytes expect;
  for (int k = 0; k < 80; ++k) {
    lz77::Sequence s;
    s.literal_len = 2;
    const std::uint8_t a = static_cast<std::uint8_t>(k);
    const std::uint8_t b = static_cast<std::uint8_t>(k + 100);
    tokens.literals.push_back(a);
    tokens.literals.push_back(b);
    expect.push_back(a);
    expect.push_back(b);
    s.match_len = 4;
    s.match_dist = k == 0 ? 2 : 6;  // k=0: only 2 bytes exist yet
    tokens.sequences.push_back(s);
    const std::size_t src = expect.size() - s.match_dist;
    for (unsigned i = 0; i < s.match_len; ++i) expect.push_back(expect[src + i]);
  }
  tokens.sequences.push_back({0, 0, 0});
  tokens.uncompressed_size = static_cast<std::uint32_t>(expect.size());
  for (const Strategy s :
       {Strategy::kSequentialCopy, Strategy::kMultiRound, Strategy::kMultiPass}) {
    EXPECT_EQ(resolve_with(tokens, s), expect) << strategy_name(s);
  }
}

TEST(WarpLz77, RejectsDistancePastStart) {
  lz77::TokenBlock tokens;
  tokens.sequences.push_back({1, 4, 9});
  tokens.sequences.push_back({0, 0, 0});
  tokens.literals = {'a'};
  tokens.uncompressed_size = 5;
  Bytes out(5);
  for (const Strategy s : {Strategy::kSequentialCopy, Strategy::kMultiRound}) {
    EXPECT_THROW(resolve_block(tokens.sequences, tokens.literals.data(), 1, out, s),
                 Error);
  }
  EXPECT_THROW(
      resolve_block_multipass(tokens.sequences, tokens.literals.data(), 1, out),
      Error);
}

TEST(WarpLz77, RejectsOutputSizeMismatch) {
  lz77::TokenBlock tokens;
  tokens.sequences.push_back({3, 0, 0});
  tokens.literals = {'a', 'b', 'c'};
  tokens.uncompressed_size = 3;
  Bytes small(2);
  EXPECT_THROW(resolve_block(tokens.sequences, tokens.literals.data(), 3, small,
                             Strategy::kMultiRound),
               Error);
  Bytes big(4);
  EXPECT_THROW(resolve_block(tokens.sequences, tokens.literals.data(), 3, big,
                             Strategy::kMultiRound),
               Error);
}

TEST(WarpLz77, RejectsLiteralCountMismatch) {
  lz77::TokenBlock tokens;
  tokens.sequences.push_back({3, 0, 0});
  tokens.literals = {'a', 'b', 'c', 'd'};
  tokens.uncompressed_size = 3;
  Bytes out(3);
  EXPECT_THROW(resolve_block(tokens.sequences, tokens.literals.data(), 4, out,
                             Strategy::kMultiRound),
               Error);
}

}  // namespace
}  // namespace gompresso::core
