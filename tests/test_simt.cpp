// Unit tests for the SIMT warp substrate: CUDA-semantics ballot/shfl,
// prefix scans, completed-prefix computation, and metrics accounting.
#include <gtest/gtest.h>

#include <numeric>

#include "simt/warp.hpp"
#include "util/rng.hpp"

namespace gompresso::simt {
namespace {

TEST(Ballot, CudaBitOrder) {
  LaneArray<bool> pred{};
  pred[0] = true;
  pred[5] = true;
  pred[31] = true;
  const LaneMask mask = ballot(pred);
  EXPECT_EQ(mask, (1u << 0) | (1u << 5) | (1u << 31));
}

TEST(Ballot, InactiveLanesVoteZero) {
  LaneArray<bool> pred{};
  pred.fill(true);
  const LaneMask active = 0x0000FFFFu;
  EXPECT_EQ(ballot(pred, active), 0x0000FFFFu);
}

TEST(Ballot, AllFalse) {
  LaneArray<bool> pred{};
  EXPECT_EQ(ballot(pred), 0u);
}

TEST(Shfl, BroadcastsSourceLane) {
  LaneArray<int> vals{};
  std::iota(vals.begin(), vals.end(), 100);
  EXPECT_EQ(shfl(vals, 0), 100);
  EXPECT_EQ(shfl(vals, 17), 117);
  EXPECT_EQ(shfl(vals, 31), 131);
  EXPECT_EQ(shfl(vals, 33), 101);  // CUDA wraps the lane index
}

TEST(CompletedPrefix, FirstPendingLane) {
  EXPECT_EQ(completed_prefix(0), kWarpSize);          // nothing pending
  EXPECT_EQ(completed_prefix(0xFFFFFFFFu), 0u);       // all pending
  EXPECT_EQ(completed_prefix(0xFFFFFFF0u), 4u);       // lanes 0..3 done
  EXPECT_EQ(completed_prefix(1u << 31), 31u);         // only lane 31 pending
  EXPECT_EQ(completed_prefix((1u << 7) | (1u << 20)), 7u);
}

TEST(ExclusiveScan, MatchesSerialReference) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    LaneArray<std::uint64_t> vals{};
    for (auto& v : vals) v = rng.next_below(1000);
    const auto scan = exclusive_scan(vals);
    std::uint64_t acc = 0;
    for (unsigned lane = 0; lane < kWarpSize; ++lane) {
      EXPECT_EQ(scan[lane], acc) << "lane " << lane;
      acc += vals[lane];
    }
  }
}

TEST(ExclusiveScan, ZeroInput) {
  LaneArray<std::uint32_t> vals{};
  const auto scan = exclusive_scan(vals);
  for (const auto v : scan) EXPECT_EQ(v, 0u);
}

TEST(ReduceSum, RespectsActiveMask) {
  LaneArray<std::uint32_t> vals{};
  vals.fill(1);
  EXPECT_EQ(reduce_sum(vals), 32u);
  EXPECT_EQ(reduce_sum(vals, 0x0000000Fu), 4u);
  EXPECT_EQ(reduce_sum(vals, 0u), 0u);
}

TEST(Metrics, RecordRoundGrowsHistogram) {
  WarpMetrics m;
  m.record_round(1, 100, 10);
  m.record_round(3, 50, 5);
  m.record_round(1, 20, 2);
  ASSERT_EQ(m.bytes_per_round.size(), 3u);
  EXPECT_EQ(m.bytes_per_round[0], 120u);
  EXPECT_EQ(m.bytes_per_round[1], 0u);
  EXPECT_EQ(m.bytes_per_round[2], 50u);
  EXPECT_EQ(m.refs_per_round[0], 12u);
  EXPECT_EQ(m.refs_per_round[2], 5u);
}

TEST(Metrics, MergeAccumulates) {
  WarpMetrics a, b;
  a.groups = 2;
  a.rounds = 5;
  a.max_rounds_in_group = 3;
  a.record_round(1, 10, 1);
  b.groups = 1;
  b.rounds = 7;
  b.max_rounds_in_group = 7;
  b.record_round(2, 20, 2);
  a.merge(b);
  EXPECT_EQ(a.groups, 3u);
  EXPECT_EQ(a.rounds, 12u);
  EXPECT_EQ(a.max_rounds_in_group, 7u);
  ASSERT_EQ(a.bytes_per_round.size(), 2u);
  EXPECT_EQ(a.bytes_per_round[0], 10u);
  EXPECT_EQ(a.bytes_per_round[1], 20u);
  EXPECT_DOUBLE_EQ(a.avg_rounds_per_group(), 4.0);
}

TEST(Metrics, EmptyAverageIsZero) {
  WarpMetrics m;
  EXPECT_DOUBLE_EQ(m.avg_rounds_per_group(), 0.0);
}

}  // namespace
}  // namespace gompresso::simt
