// Trial budget for the adversarial mutation-fuzz tests.
//
// PR runs keep the quick 300-trial mode; the nightly CI schedule exports
// GOMPRESSO_FUZZ_TRIALS (10x budget) so the same tests sweep a much
// larger mutation space when wall-clock is cheap. Local runs can export
// it too for a longer soak.
#pragma once

#include <cstdlib>

namespace gompresso::testing {

/// Returns the env-configured mutation-fuzz trial count, or `base` when
/// GOMPRESSO_FUZZ_TRIALS is unset or unparseable.
inline int fuzz_trials(int base) {
  if (const char* env = std::getenv("GOMPRESSO_FUZZ_TRIALS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0 && v <= 1000000) return static_cast<int>(v);
  }
  return base;
}

}  // namespace gompresso::testing
