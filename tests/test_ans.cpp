// Unit and property tests for the tANS entropy coder.
#include <gtest/gtest.h>

#include <numeric>

#include "ans/tans.hpp"
#include "datagen/datasets.hpp"
#include "util/rng.hpp"
#include "util/varint.hpp"

namespace gompresso::ans {
namespace {

TEST(Normalize, SumsToTableAndKeepsPresent) {
  for (const unsigned log : {9u, 11u, 12u}) {
    std::vector<std::uint64_t> freqs(256, 0);
    Rng rng(log);
    for (int i = 0; i < 50; ++i) freqs[rng.next_below(256)] += 1 + rng.next_below(100000);
    const auto norm = normalize_frequencies(freqs, log);
    std::uint64_t sum = 0;
    for (std::size_t s = 0; s < 256; ++s) {
      sum += norm[s];
      if (freqs[s] != 0) EXPECT_GE(norm[s], 1u) << "present symbol dropped";
      if (freqs[s] == 0) EXPECT_EQ(norm[s], 0u) << "absent symbol appeared";
    }
    EXPECT_EQ(sum, 1ull << log);
  }
}

TEST(Normalize, EmptyInput) {
  const auto norm = normalize_frequencies(std::vector<std::uint64_t>(256, 0), 11);
  EXPECT_EQ(std::accumulate(norm.begin(), norm.end(), 0ull), 0ull);
}

TEST(Normalize, ExtremeSkew) {
  std::vector<std::uint64_t> freqs(256, 0);
  freqs['a'] = 1000000;
  freqs['b'] = 1;
  const auto norm = normalize_frequencies(freqs, 11);
  EXPECT_GE(norm['b'], 1u);
  EXPECT_EQ(norm['a'] + norm['b'], 2048u);
  EXPECT_GT(norm['a'], 2000u);
}

TEST(Tans, EmptyRoundTrip) {
  const Bytes empty;
  const Bytes payload = encode(empty);
  EXPECT_EQ(decode(payload), empty);
}

TEST(Tans, SingleSymbolRle) {
  const Bytes input(100000, 'x');
  const Bytes payload = encode(input);
  EXPECT_LT(payload.size(), 32u);  // header only
  EXPECT_EQ(decode(payload), input);
}

TEST(Tans, TwoSymbolStream) {
  Rng rng(5);
  Bytes input(50000);
  for (auto& b : input) b = rng.next_below(10) == 0 ? 'b' : 'a';
  const Bytes payload = encode(input);
  EXPECT_LT(payload.size(), input.size() / 2);  // H ~ 0.47 bits/sym
  EXPECT_EQ(decode(payload), input);
}

TEST(Tans, NearEntropyOnSkewedBytes) {
  // Geometric-ish distribution: entropy well below 8 bits.
  Rng rng(6);
  Bytes input(100000);
  for (auto& b : input) {
    const auto r = rng.next_below(100);
    b = r < 50 ? 0 : r < 75 ? 1 : r < 88 ? 2 : static_cast<std::uint8_t>(rng.next_below(256));
  }
  // Empirical entropy.
  std::vector<double> p(256, 0);
  for (const auto b : input) p[b] += 1;
  double h = 0;
  for (const auto c : p) {
    if (c > 0) h -= c / input.size() * std::log2(c / input.size());
  }
  const Bytes payload = encode(input);
  const double bits_per_sym = 8.0 * payload.size() / input.size();
  EXPECT_LT(bits_per_sym, h + 0.25) << "tANS should be within ~0.25 bits of entropy";
  EXPECT_EQ(decode(payload), input);
}

class TansRoundTrip : public ::testing::TestWithParam<std::tuple<int, unsigned>> {};

TEST_P(TansRoundTrip, RandomAndRealisticData) {
  const auto [which, table_log] = GetParam();
  Bytes input;
  switch (which) {
    case 0: input = datagen::random_bytes(40000, 1); break;
    case 1: input = datagen::wikipedia(40000); break;
    case 2: input = datagen::matrix(40000); break;
    case 3: input = Bytes{0x00}; break;
    case 4: {
      input.resize(517);  // odd size, tiny alphabet
      Rng rng(9);
      for (auto& b : input) b = static_cast<std::uint8_t>(rng.next_below(3) + 'p');
      break;
    }
    default: FAIL();
  }
  const Bytes payload = encode(input, table_log);
  EXPECT_EQ(decode(payload), input);
}

INSTANTIATE_TEST_SUITE_P(Inputs, TansRoundTrip,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                                            ::testing::Values(9u, 11u, 13u)));

TEST(Tans, CorruptPayloadDetected) {
  const Bytes input = datagen::wikipedia(20000);
  const Bytes payload = encode(input);
  // Header corruptions must throw; bitstream corruptions either throw or
  // produce different output (caught by the container CRC in real use).
  for (std::size_t at = 0; at < payload.size(); at += payload.size() / 23 + 1) {
    Bytes bad = payload;
    bad[at] ^= 0x41;
    try {
      const Bytes back = decode(bad);
      EXPECT_NE(back, input) << "undetected corruption at " << at;
    } catch (const Error&) {
      // expected for structural damage
    }
  }
}

TEST(Tans, TruncatedPayloadThrows) {
  const Bytes input = datagen::matrix(20000);
  const Bytes payload = encode(input);
  Bytes cut(payload.begin(), payload.begin() + 3);
  EXPECT_THROW(decode(cut), Error);
  EXPECT_THROW(decode(Bytes{}), Error);
}

TEST(Tans, RejectsBadTableLog) {
  EXPECT_THROW(encode(Bytes(10, 'a'), 3), Error);
  EXPECT_THROW(encode(Bytes(10, 'a'), 20), Error);
}

TEST(TansModelFastPath, DecodeIntoMatchesDecodeStream) {
  const Bytes data = datagen::wikipedia(30000);
  std::vector<std::uint64_t> freqs(256, 0);
  for (const auto b : data) ++freqs[b];
  const Model model = Model::from_frequencies(freqs, 11);
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                              std::size_t{4}, std::size_t{7}, std::size_t{4096}}) {
    const ByteSpan piece(data.data(), n);
    const Bytes stream = model.encode_stream(piece);
    Bytes out(n, 0xEE);
    model.decode_stream_into(stream, out);
    EXPECT_TRUE(std::equal(out.begin(), out.end(), piece.begin())) << "n=" << n;
  }
}

TEST(TansModelFastPath, QuadBatchMatchesSingleStreamDecode) {
  const Bytes data = datagen::wikipedia(60000);
  std::vector<std::uint64_t> freqs(256, 0);
  for (const auto b : data) ++freqs[b];
  const Model model = Model::from_frequencies(freqs, 11);

  // Deliberately skewed counts so the interleaved kernel's tails and the
  // sub-width remainder path both run.
  const std::size_t counts[4] = {1000, 3, 0, 777};
  Bytes streams_store[4];
  ByteSpan streams[4];
  Bytes outs_store[4];
  std::uint8_t* outs[4];
  std::size_t at = 0;
  for (int i = 0; i < 4; ++i) {
    streams_store[i] = model.encode_stream(ByteSpan(data.data() + at, counts[i]));
    streams[i] = streams_store[i];
    outs_store[i].assign(counts[i], 0xEE);
    outs[i] = outs_store[i].data();
    at += counts[i];
  }
  for (const int width : {4, 2, 0}) {
    Model::decode_streams4(model, streams, outs, counts, width);
    at = 0;
    for (int i = 0; i < width; ++i) {
      EXPECT_TRUE(std::equal(outs_store[i].begin(), outs_store[i].end(),
                             data.begin() + static_cast<std::ptrdiff_t>(at)))
          << "width=" << width << " stream " << i;
      at += counts[i];
    }
  }
  EXPECT_THROW(Model::decode_streams4(model, streams, outs, counts, 5), Error);
}

TEST(TansModelFastPath, DeserializeDecodeIntoReusesBuffers) {
  std::vector<std::uint64_t> freqs(256, 0);
  freqs['a'] = 900;
  freqs['b'] = 90;
  freqs['c'] = 9;
  const Model original = Model::from_frequencies(freqs, 10);
  Bytes buf;
  original.serialize(buf);
  const Bytes msg = {'a', 'b', 'a', 'c', 'a', 'a', 'b'};
  const Bytes stream = original.encode_stream(msg);

  Model scratch;
  std::size_t pos = 0;
  EXPECT_FALSE(scratch.deserialize_decode_into(buf, pos));  // cold: buffers grew
  EXPECT_EQ(pos, buf.size());
  EXPECT_EQ(scratch.table_log(), 10u);
  EXPECT_EQ(scratch.decode_stream(stream, msg.size()), msg);
  // A decode-only model must refuse to encode rather than crash.
  EXPECT_THROW(scratch.encode_stream(msg), Error);

  pos = 0;
  EXPECT_TRUE(scratch.deserialize_decode_into(buf, pos));  // warm: pure reuse
  EXPECT_EQ(scratch.decode_stream(stream, msg.size()), msg);

  Model reserved;
  reserved.reserve_decode(kMaxTableLog);
  pos = 0;
  EXPECT_TRUE(reserved.deserialize_decode_into(buf, pos));  // pre-sized: no growth
  EXPECT_EQ(reserved.decode_stream(stream, msg.size()), msg);
}

TEST(TansModelFastPath, WrappingInnerStreamSizeRejected) {
  // A stream whose embedded byte-size varint sits near 2^64 must not wrap
  // the truncation check and read out of bounds.
  std::vector<std::uint64_t> freqs(256, 0);
  freqs['x'] = 3;
  freqs['y'] = 1;
  const Model model = Model::from_frequencies(freqs, 9);
  Bytes evil;
  put_varint(evil, 512);                      // valid start state for 2^9 tables
  put_varint(evil, 0xFFFFFFFFFFFFFFF0ull);    // stream_bytes wraps pos + size
  evil.push_back(0);
  EXPECT_THROW(model.decode_stream(evil, 4), Error);
}

}  // namespace
}  // namespace gompresso::ans
