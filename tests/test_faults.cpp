// Tests for the serve-plane robustness layer: the deterministic
// fault-injection harness (FaultInjectingByteSource + FaultPlan), the
// typed error taxonomy (IoError / CorruptionError / FormatError), the
// DecodeSession retry/backoff policy, and damage-tolerant reads
// (read_at_damage_tolerant / verify_archive / block_health).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <sstream>

#include "core/gompresso.hpp"
#include "datagen/datasets.hpp"
#include "serve/fault_source.hpp"

namespace gompresso {
namespace {

struct Fixture {
  Bytes input;
  Bytes file;  // single GMPZ container

  explicit Fixture(std::size_t size = 100000, std::uint32_t block_size = 16 * 1024,
                   Codec codec = Codec::kBit) {
    input = datagen::wikipedia(size);
    CompressOptions opt;
    opt.codec = codec;
    opt.block_size = block_size;
    file = compress(input, opt);
  }
};

std::unique_ptr<serve::FaultInjectingByteSource> wrap(const Bytes& data,
                                                      serve::FaultPlan plan = {}) {
  return std::make_unique<serve::FaultInjectingByteSource>(
      serve::memory_source(ByteSpan(data.data(), data.size())), std::move(plan));
}

// ---------------------------------------------------------------------------
// FaultPlan grammar

TEST(FaultPlan, ParsesEveryItemKind) {
  const serve::FaultPlan plan = serve::FaultPlan::parse(
      "transient@128:2,transient@*:5,short@64,flip@32+8:0x7,zero@16+4,"
      "rate=0.25,burst=3,seed=9,latency=5");
  ASSERT_EQ(plan.faults.size(), 5u);
  EXPECT_EQ(plan.faults[0].kind, serve::FaultSpec::Kind::kTransient);
  EXPECT_EQ(plan.faults[0].offset, 128u);
  EXPECT_EQ(plan.faults[0].count, 2u);
  EXPECT_EQ(plan.faults[1].offset, serve::FaultSpec::kAnyOffset);
  EXPECT_EQ(plan.faults[1].count, 5u);
  EXPECT_EQ(plan.faults[2].kind, serve::FaultSpec::Kind::kShortRead);
  EXPECT_EQ(plan.faults[2].count, 1u);
  EXPECT_EQ(plan.faults[3].kind, serve::FaultSpec::Kind::kFlip);
  EXPECT_EQ(plan.faults[3].offset, 32u);
  EXPECT_EQ(plan.faults[3].length, 8u);
  EXPECT_EQ(plan.faults[3].mask, 0x7);
  EXPECT_EQ(plan.faults[4].kind, serve::FaultSpec::Kind::kZeroFill);
  EXPECT_EQ(plan.faults[4].length, 4u);
  EXPECT_DOUBLE_EQ(plan.transient_rate, 0.25);
  EXPECT_EQ(plan.transient_burst, 3u);
  EXPECT_EQ(plan.seed, 9u);
  EXPECT_EQ(plan.latency_us, 5u);
}

TEST(FaultPlan, EmptySpecIsEmptyPlan) {
  const serve::FaultPlan plan = serve::FaultPlan::parse("");
  EXPECT_TRUE(plan.faults.empty());
  EXPECT_DOUBLE_EQ(plan.transient_rate, 0.0);
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(serve::FaultPlan::parse("bogus@1"), Error);
  EXPECT_THROW(serve::FaultPlan::parse("flip@3"), Error);       // needs +LEN
  EXPECT_THROW(serve::FaultPlan::parse("flip@3+0"), Error);     // empty extent
  EXPECT_THROW(serve::FaultPlan::parse("zero@3+4:1"), Error);   // no suffix
  EXPECT_THROW(serve::FaultPlan::parse("transient@*:0"), Error);
  EXPECT_THROW(serve::FaultPlan::parse("transient@x"), Error);
  EXPECT_THROW(serve::FaultPlan::parse("rate=1.5"), Error);
  EXPECT_THROW(serve::FaultPlan::parse("rate=nope"), Error);
  EXPECT_THROW(serve::FaultPlan::parse("burst=0"), Error);
  EXPECT_THROW(serve::FaultPlan::parse("foo=1"), Error);
  EXPECT_THROW(serve::FaultPlan::parse("transient"), Error);
}

// ---------------------------------------------------------------------------
// Harness semantics

TEST(FaultSource, TransientFailsExactlyCountTimesThenClears) {
  Bytes data(256);
  std::iota(data.begin(), data.end(), 0);
  auto src = wrap(data);
  src->inject(serve::FaultSpec::transient_at(0, 2));

  Bytes buf(16);
  const MutableByteSpan dst(buf.data(), buf.size());
  EXPECT_THROW(src->read_at(0, dst), IoError);
  EXPECT_THROW(src->read_at(0, dst), IoError);
  src->read_at(0, dst);  // cleared
  EXPECT_TRUE(std::equal(buf.begin(), buf.end(), data.begin()));
  // Reads at other offsets never matched the fault.
  src->read_at(100, dst);
  EXPECT_TRUE(std::equal(buf.begin(), buf.end(), data.begin() + 100));

  const serve::FaultStats st = src->stats();
  EXPECT_EQ(st.reads, 4u);
  EXPECT_EQ(st.transient_failures, 2u);
  EXPECT_EQ(st.corrupted_reads, 0u);
}

TEST(FaultSource, AnyOffsetMatchesEveryRead) {
  Bytes data(64, std::uint8_t{7});
  auto src = wrap(data);
  src->inject(serve::FaultSpec::transient_any(2));
  Bytes buf(8);
  const MutableByteSpan dst(buf.data(), buf.size());
  EXPECT_THROW(src->read_at(0, dst), IoError);
  EXPECT_THROW(src->read_at(40, dst), IoError);
  src->read_at(20, dst);
}

TEST(FaultSource, ShortReadDeliversPrefixThenThrows) {
  Bytes data(64);
  std::iota(data.begin(), data.end(), 0);
  auto src = wrap(data);
  src->inject(serve::FaultSpec::short_read_at(0));
  Bytes buf(16, std::uint8_t{0xEE});
  EXPECT_THROW(src->read_at(0, MutableByteSpan(buf.data(), buf.size())), IoError);
  // The prefix was filled before the failure; the tail was not touched.
  EXPECT_TRUE(std::equal(buf.begin(), buf.begin() + 8, data.begin()));
  EXPECT_EQ(buf[15], 0xEE);
  EXPECT_EQ(src->stats().short_reads, 1u);
  src->read_at(0, MutableByteSpan(buf.data(), buf.size()));  // one-shot
}

TEST(FaultSource, FlipAndZeroFillCorruptOnlyTheirExtents) {
  Bytes data(64);
  std::iota(data.begin(), data.end(), 0);
  auto src = wrap(data);
  src->inject(serve::FaultSpec::flip(10, 4, 0xFF));
  src->inject(serve::FaultSpec::zero_fill(20, 5));

  Bytes buf(64);
  src->read_at(0, MutableByteSpan(buf.data(), buf.size()));
  for (std::size_t i = 0; i < 64; ++i) {
    if (i >= 10 && i < 14) {
      EXPECT_EQ(buf[i], static_cast<std::uint8_t>(data[i] ^ 0xFF)) << i;
    } else if (i >= 20 && i < 25) {
      EXPECT_EQ(buf[i], 0u) << i;
    } else {
      EXPECT_EQ(buf[i], data[i]) << i;
    }
  }
  EXPECT_EQ(src->stats().corrupted_reads, 1u);

  // Persistent (damaged media): a second read sees the same bytes, and
  // partial overlap corrupts only the intersection.
  Bytes part(8);
  src->read_at(12, MutableByteSpan(part.data(), part.size()));
  EXPECT_EQ(part[0], static_cast<std::uint8_t>(data[12] ^ 0xFF));
  EXPECT_EQ(part[1], static_cast<std::uint8_t>(data[13] ^ 0xFF));
  EXPECT_EQ(part[2], data[14]);
  // A read that misses every extent is untouched.
  src->read_at(30, MutableByteSpan(part.data(), part.size()));
  EXPECT_TRUE(std::equal(part.begin(), part.end(), data.begin() + 30));
  EXPECT_EQ(src->stats().corrupted_reads, 2u);
}

TEST(FaultSource, LatencyCountsDelayedReads) {
  Bytes data(32, std::uint8_t{1});
  auto src = wrap(data);
  src->inject(serve::FaultSpec::latency(/*delay_us=*/1));
  Bytes buf(4);
  src->read_at(0, MutableByteSpan(buf.data(), buf.size()));
  src->read_at(8, MutableByteSpan(buf.data(), buf.size()));
  EXPECT_EQ(src->stats().delayed_reads, 2u);
}

TEST(FaultSource, RandomBurstsAreDeterministicAndBounded) {
  Bytes data(4096, std::uint8_t{3});
  const auto pattern = [&](std::uint64_t seed) {
    auto src = wrap(data);
    src->set_random_transients(/*rate=*/0.5, /*burst=*/2, seed);
    std::vector<int> fails_per_offset;
    Bytes buf(64);
    for (std::uint64_t off = 0; off < 4096; off += 64) {
      int fails = 0;
      // Retry until the offset succeeds; burst=2 bounds this.
      for (int attempt = 0; attempt < 8; ++attempt) {
        try {
          src->read_at(off, MutableByteSpan(buf.data(), buf.size()));
          break;
        } catch (const IoError&) {
          ++fails;
        }
      }
      // Once cleared, the offset is immune.
      src->read_at(off, MutableByteSpan(buf.data(), buf.size()));
      fails_per_offset.push_back(fails);
    }
    return fails_per_offset;
  };

  const std::vector<int> a = pattern(42);
  const std::vector<int> b = pattern(42);
  const std::vector<int> c = pattern(43);
  EXPECT_EQ(a, b);  // same seed -> identical schedule
  EXPECT_NE(a, c);  // different seed -> different schedule
  int triggered = 0;
  for (const int fails : a) {
    EXPECT_TRUE(fails == 0 || fails == 2) << "burst must fail exactly twice";
    triggered += fails > 0 ? 1 : 0;
  }
  EXPECT_GT(triggered, 0);          // rate 0.5 over 64 offsets
  EXPECT_LT(triggered, 64);
}

TEST(FaultSource, ClearFaultsDisarmsEverything) {
  Bytes data(64, std::uint8_t{9});
  auto src = wrap(data);
  src->inject(serve::FaultSpec::transient_any(100));
  src->set_random_transients(1.0, 1, 7);
  src->clear_faults();
  Bytes buf(8);
  src->read_at(0, MutableByteSpan(buf.data(), buf.size()));  // no throw
}

// ---------------------------------------------------------------------------
// Typed error taxonomy

TEST(ErrorTaxonomy, KindsAndTransience) {
  EXPECT_EQ(Error("x").kind(), ErrorKind::kConfig);
  EXPECT_EQ(IoError("x").kind(), ErrorKind::kIo);
  EXPECT_EQ(CorruptionError("x").kind(), ErrorKind::kCorruption);
  EXPECT_EQ(FormatError("x").kind(), ErrorKind::kFormat);
  EXPECT_TRUE(is_transient(IoError("x")));
  EXPECT_FALSE(is_transient(CorruptionError("x")));
  EXPECT_FALSE(is_transient(FormatError("x")));
  EXPECT_FALSE(is_transient(Error("x")));
}

TEST(ErrorTaxonomy, BadMagicIsFormatError) {
  const Bytes junk = {'N', 'O', 'P', 'E', 0, 0, 0, 0};
  const auto source = serve::memory_source(ByteSpan(junk.data(), junk.size()));
  EXPECT_THROW(serve::SeekIndex::build(*source), FormatError);
}

TEST(ErrorTaxonomy, CrcMismatchIsCorruptionError) {
  Fixture f;
  f.file[f.file.size() / 2] ^= 0x40;
  serve::SessionOptions opt;
  opt.num_threads = 1;
  DecodeSession session(serve::memory_source(ByteSpan(f.file.data(), f.file.size())),
                        opt);
  Bytes buf(f.input.size());
  EXPECT_THROW(session.read_at(0, MutableByteSpan(buf.data(), buf.size())),
               CorruptionError);
  EXPECT_GE(session.stats().permanent_errors, 1u);
}

TEST(ErrorTaxonomy, IstreamSourceDeviceFailureIsIoError) {
  // The stream's buffer shrinks under the source after wrap time —
  // a mid-read device failure, not a malformed container.
  std::istringstream stream(std::string(1000, 'a'));
  const auto source = serve::istream_source(stream);
  ASSERT_EQ(source->size(), 1000u);
  stream.str(std::string(10, 'a'));
  Bytes buf(50);
  EXPECT_THROW(source->read_at(100, MutableByteSpan(buf.data(), buf.size())),
               IoError);
}

TEST(ErrorTaxonomy, FileTruncatedAfterOpenIsIoError) {
  const Fixture f;
  const std::string path = "/tmp/gompresso_fault_trunc_test.gmp";
  {
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(f.file.data()),
              static_cast<std::streamsize>(f.file.size()));
  }
  serve::SessionOptions opt;
  opt.num_threads = 1;
  opt.retry.max_attempts = 1;  // surface the IoError, not its retries
  DecodeSession session(serve::open_file_source(path), opt);  // scan succeeds
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);  // shrink to 0
  }
  Bytes buf(1000);
  EXPECT_THROW(session.read_at(0, MutableByteSpan(buf.data(), buf.size())),
               IoError);
  std::remove(path.c_str());
}

TEST(ErrorTaxonomy, SidecarShorterThanHeaderIsFormatError) {
  const Fixture f;
  const auto source = serve::memory_source(ByteSpan(f.file.data(), f.file.size()));
  const serve::SeekIndex index = serve::SeekIndex::build(*source);
  const std::string path = "/tmp/gompresso_fault_sidecar_test.gmpx";
  index.save(path);
  const Bytes sidecar = [&] {
    std::ifstream in(path, std::ios::binary);
    Bytes all((std::istreambuf_iterator<char>(in)),
              std::istreambuf_iterator<char>());
    return all;
  }();
  ASSERT_GT(sidecar.size(), 6u);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(sidecar.data()), 6);
  }
  EXPECT_THROW(serve::SeekIndex::load(path), FormatError);
  std::remove(path.c_str());
}

TEST(SourceReader, TrySeekReportsPastEndInsteadOfThrowing) {
  // Satellite regression: try_seek used to throw on a past-end target,
  // violating the ByteReader contract (report false; the caller decides).
  const Bytes data(100, std::uint8_t{5});
  const auto source = serve::memory_source(ByteSpan(data.data(), data.size()));

  struct Probe : serve::SourceReader {
    using serve::SourceReader::SourceReader;
    using serve::SourceReader::try_seek;  // expose the protected contract
  } reader(*source);

  EXPECT_TRUE(reader.try_seek(0));
  EXPECT_TRUE(reader.try_seek(100));  // end is reachable (zero bytes left)
  EXPECT_FALSE(reader.try_seek(101));

  // seek_to turns the false into a typed structural error.
  Probe seeker(*source);
  EXPECT_THROW(seeker.seek_to(101), FormatError);

  // skip past the end drains the window and reports truncation (the
  // fallback path try_seek's false return hands control to).
  Probe skipper(*source);
  EXPECT_THROW(skipper.skip(101), FormatError);
  Probe ok(*source);
  ok.skip(100);
  EXPECT_TRUE(ok.at_end());
}

// ---------------------------------------------------------------------------
// Retry / backoff policy

TEST(RetryPolicy, BackoffIsCappedExponential) {
  serve::RetryPolicy p;
  p.base_backoff_us = 500;
  p.max_backoff_us = 3000;
  EXPECT_EQ(p.backoff_us(2), 500u);
  EXPECT_EQ(p.backoff_us(3), 1000u);
  EXPECT_EQ(p.backoff_us(4), 2000u);
  EXPECT_EQ(p.backoff_us(5), 3000u);  // capped
  EXPECT_EQ(p.backoff_us(100), 3000u);  // shift overflow guarded
}

TEST(RetryPolicy, JitterStaysInsideTheConfiguredBand) {
  serve::RetryPolicy p;
  p.jitter = 0.25;
  for (std::uint64_t salt = 0; salt < 64; ++salt) {
    for (std::size_t attempt = 2; attempt <= 6; ++attempt) {
      const std::uint64_t base = p.backoff_us(attempt);
      const std::uint64_t j = p.jittered_backoff_us(attempt, salt);
      // [base*(1-j), base*(1+j)) — integer-truncated at the low edge.
      EXPECT_GE(j, base - base / 4);
      EXPECT_LT(j, base + base / 4 + 1);
    }
  }
}

TEST(RetryPolicy, JitterIsDeterministicPerSeedAndSalt) {
  serve::RetryPolicy a;
  serve::RetryPolicy b = a;
  // Same (seed, salt, attempt) -> same sleep: fault plans replay.
  EXPECT_EQ(a.jittered_backoff_us(2, 7), b.jittered_backoff_us(2, 7));
  // Different salts (blocks/connections) de-correlate.
  bool varies = false;
  for (std::uint64_t salt = 0; salt < 16 && !varies; ++salt) {
    varies = a.jittered_backoff_us(2, salt) != a.jittered_backoff_us(2, salt + 1);
  }
  EXPECT_TRUE(varies);
  // A different seed draws a different ladder somewhere.
  b.jitter_seed ^= 0xDEADBEEFull;
  bool seed_varies = false;
  for (std::uint64_t salt = 0; salt < 16 && !seed_varies; ++salt) {
    seed_varies = a.jittered_backoff_us(2, salt) != b.jittered_backoff_us(2, salt);
  }
  EXPECT_TRUE(seed_varies);
}

TEST(RetryPolicy, ZeroJitterReproducesTheExactLadder) {
  serve::RetryPolicy p;
  p.jitter = 0;
  for (std::size_t attempt = 2; attempt <= 8; ++attempt) {
    EXPECT_EQ(p.jittered_backoff_us(attempt, 42), p.backoff_us(attempt));
  }
}

TEST(DecodeSession, JitteredRetrySleepsStayInBandAndAbsorbFaults) {
  const Fixture f;
  auto faulty = wrap(f.file);
  serve::FaultInjectingByteSource* handle = faulty.get();
  std::vector<std::uint64_t> sleeps;
  serve::SessionOptions opt;
  opt.num_threads = 1;  // default jitter = 0.25 stays on
  opt.sleep_hook = [&sleeps](std::uint64_t us) { sleeps.push_back(us); };
  DecodeSession session(std::move(faulty), opt);

  handle->inject(serve::FaultSpec::transient_any(2));
  Bytes buf(1000);
  ASSERT_EQ(session.read_at(0, MutableByteSpan(buf.data(), buf.size())), 1000u);
  EXPECT_TRUE(std::equal(buf.begin(), buf.end(), f.input.begin()));
  ASSERT_EQ(sleeps.size(), 2u);
  // attempt 2 from base 500, attempt 3 from base 1000, each +/- 25%.
  EXPECT_GE(sleeps[0], 375u);
  EXPECT_LT(sleeps[0], 626u);
  EXPECT_GE(sleeps[1], 750u);
  EXPECT_LT(sleeps[1], 1251u);
}

TEST(DecodeSession, RetryAbsorbsTransientFaults) {
  const Fixture f;
  auto faulty = wrap(f.file);
  serve::FaultInjectingByteSource* handle = faulty.get();
  std::vector<std::uint64_t> sleeps;
  serve::SessionOptions opt;
  opt.num_threads = 1;
  opt.retry.jitter = 0;  // exact ladder for this test
  opt.sleep_hook = [&sleeps](std::uint64_t us) { sleeps.push_back(us); };
  DecodeSession session(std::move(faulty), opt);

  handle->inject(serve::FaultSpec::transient_any(2));  // < max_attempts = 3
  Bytes buf(1000);
  ASSERT_EQ(session.read_at(0, MutableByteSpan(buf.data(), buf.size())), 1000u);
  EXPECT_TRUE(std::equal(buf.begin(), buf.end(), f.input.begin()));

  const serve::SessionStats st = session.stats();
  EXPECT_EQ(st.transient_errors, 2u);
  EXPECT_EQ(st.retries, 2u);
  EXPECT_EQ(st.permanent_errors, 0u);
  EXPECT_EQ(st.decode_failures, 0u);
  // Deterministic backoff ladder: 500, then 1000.
  ASSERT_EQ(sleeps.size(), 2u);
  EXPECT_EQ(sleeps[0], 500u);
  EXPECT_EQ(sleeps[1], 1000u);
}

TEST(DecodeSession, RetryExhaustionSurfacesIoErrorAndHealthStaysUnknown) {
  const Fixture f;
  auto faulty = wrap(f.file);
  serve::FaultInjectingByteSource* handle = faulty.get();
  std::vector<std::uint64_t> sleeps;
  serve::SessionOptions opt;
  opt.num_threads = 1;
  opt.sleep_hook = [&sleeps](std::uint64_t us) { sleeps.push_back(us); };
  DecodeSession session(std::move(faulty), opt);

  handle->inject(serve::FaultSpec::transient_any(3));  // == max_attempts
  Bytes buf(1000);
  EXPECT_THROW(session.read_at(0, MutableByteSpan(buf.data(), buf.size())),
               IoError);
  ASSERT_EQ(sleeps.size(), 2u);  // slept before attempts 2 and 3 only

  // Transient exhaustion is not damage: the block stays kUnknown and the
  // next read (fault now cleared) succeeds.
  EXPECT_EQ(session.block_health(0), serve::BlockHealth::kUnknown);
  ASSERT_EQ(session.read_at(0, MutableByteSpan(buf.data(), buf.size())), 1000u);
  EXPECT_TRUE(std::equal(buf.begin(), buf.end(), f.input.begin()));
  EXPECT_EQ(session.block_health(0), serve::BlockHealth::kGood);
  EXPECT_EQ(session.stats().transient_errors, 3u);
  EXPECT_EQ(session.stats().retries, 2u);
}

TEST(DecodeSession, DeadlineCapsCumulativeBackoff) {
  const Fixture f;
  auto faulty = wrap(f.file);
  serve::FaultInjectingByteSource* handle = faulty.get();
  std::vector<std::uint64_t> sleeps;
  serve::SessionOptions opt;
  opt.num_threads = 1;
  opt.retry.max_attempts = 10;
  opt.retry.jitter = 0;         // exact ladder for the deadline arithmetic
  opt.retry.deadline_us = 600;  // allows the 500us sleep, not 500 + 1000
  opt.sleep_hook = [&sleeps](std::uint64_t us) { sleeps.push_back(us); };
  DecodeSession session(std::move(faulty), opt);

  handle->inject(serve::FaultSpec::transient_any(5));
  Bytes buf(1000);
  EXPECT_THROW(session.read_at(0, MutableByteSpan(buf.data(), buf.size())),
               IoError);
  ASSERT_EQ(sleeps.size(), 1u);
  EXPECT_EQ(sleeps[0], 500u);
}

TEST(DecodeSession, PermanentErrorsAreNeverRetried) {
  Fixture f;
  f.file[f.file.size() / 2] ^= 0x40;
  std::vector<std::uint64_t> sleeps;
  serve::SessionOptions opt;
  opt.num_threads = 1;
  opt.sleep_hook = [&sleeps](std::uint64_t us) { sleeps.push_back(us); };
  DecodeSession session(serve::memory_source(ByteSpan(f.file.data(), f.file.size())),
                        opt);
  Bytes buf(f.input.size());
  EXPECT_THROW(session.read_at(0, MutableByteSpan(buf.data(), buf.size())),
               CorruptionError);
  EXPECT_TRUE(sleeps.empty());
  EXPECT_EQ(session.stats().retries, 0u);
}

// ---------------------------------------------------------------------------
// Damage tolerance

TEST(DecodeSession, BestEffortReadZeroFillsExactlyTheDamagedBlock) {
  Fixture f;
  f.file[f.file.size() / 2] ^= 0x40;
  serve::SessionOptions opt;
  opt.num_threads = 1;
  DecodeSession session(serve::memory_source(ByteSpan(f.file.data(), f.file.size())),
                        opt);

  Bytes got(f.input.size());
  serve::DamageReport report;
  ASSERT_EQ(session.read_at_damage_tolerant(
                0, MutableByteSpan(got.data(), got.size()), &report),
            f.input.size());
  ASSERT_FALSE(report.clean());

  // The damaged extents name exactly one block; every byte outside them
  // is exact, every byte inside is zero.
  std::vector<bool> damaged(f.input.size(), false);
  for (const serve::DamagedExtent& e : report.extents) {
    EXPECT_EQ(e.block, report.extents.front().block);
    EXPECT_NE(e.kind, ErrorKind::kIo);
    EXPECT_FALSE(e.message.empty());
    for (std::uint64_t i = e.offset; i < e.offset + e.length; ++i) {
      damaged[static_cast<std::size_t>(i)] = true;
    }
  }
  for (std::size_t i = 0; i < f.input.size(); ++i) {
    if (damaged[i]) {
      ASSERT_EQ(got[i], 0u) << i;
    } else {
      ASSERT_EQ(got[i], f.input[i]) << i;
    }
  }
  EXPECT_EQ(report.damaged_bytes(), session.stats().bytes_zero_filled);
  EXPECT_GE(session.stats().degraded_reads, 1u);

  // Re-reading hits the known-damaged fast path (no second decode).
  const std::uint64_t decoded_before = session.stats().blocks_decoded;
  serve::DamageReport again;
  session.read_at_damage_tolerant(0, MutableByteSpan(got.data(), got.size()),
                                  &again);
  EXPECT_EQ(again.damaged_bytes(), report.damaged_bytes());
  EXPECT_EQ(session.stats().blocks_decoded, decoded_before);
}

TEST(DecodeSession, VerifyArchiveReportsPerBlockHealth) {
  Fixture f;
  f.file[f.file.size() / 2] ^= 0x40;
  serve::SessionOptions opt;
  opt.num_threads = 1;
  DecodeSession session(serve::memory_source(ByteSpan(f.file.data(), f.file.size())),
                        opt);

  const serve::DamageReport report = session.verify_archive();
  ASSERT_FALSE(report.clean());
  const std::size_t bad = report.extents.front().block;
  std::size_t damaged_blocks = 0;
  for (std::size_t b = 0; b < session.index().num_blocks(); ++b) {
    const serve::BlockHealth h = session.block_health(b);
    if (h == serve::BlockHealth::kDamaged) {
      ++damaged_blocks;
      EXPECT_EQ(b, bad);
    } else {
      EXPECT_EQ(h, serve::BlockHealth::kGood) << b;
    }
  }
  EXPECT_EQ(damaged_blocks, 1u);
  EXPECT_EQ(report.damaged_bytes(), session.index().block(bad).uncomp_size);
}

TEST(DecodeSession, CleanArchiveVerifiesClean) {
  const Fixture f;
  serve::SessionOptions opt;
  opt.num_threads = 1;
  DecodeSession session(serve::memory_source(ByteSpan(f.file.data(), f.file.size())),
                        opt);
  EXPECT_TRUE(session.verify_archive().clean());
  for (std::size_t b = 0; b < session.index().num_blocks(); ++b) {
    EXPECT_EQ(session.block_health(b), serve::BlockHealth::kGood);
  }
  EXPECT_EQ(session.stats().bytes_zero_filled, 0u);
}

TEST(DecodeSession, BestEffortDegradesExhaustedTransientsWithoutMarkingDamage) {
  const Fixture f;
  auto faulty = wrap(f.file);
  serve::FaultInjectingByteSource* handle = faulty.get();
  serve::SessionOptions opt;
  opt.num_threads = 1;
  opt.retry.max_attempts = 1;
  DecodeSession session(std::move(faulty), opt);
  const std::size_t block0_size = session.index().block(0).uncomp_size;

  // Enough failures that the first tolerant read degrades block 0...
  handle->inject(
      serve::FaultSpec::transient_at(session.index().block(0).comp_offset, 1));
  Bytes got(block0_size);
  serve::DamageReport report;
  ASSERT_EQ(session.read_at_damage_tolerant(
                0, MutableByteSpan(got.data(), got.size()), &report),
            block0_size);
  ASSERT_EQ(report.extents.size(), 1u);
  EXPECT_EQ(report.extents[0].kind, ErrorKind::kIo);
  EXPECT_TRUE(std::all_of(got.begin(), got.end(),
                          [](std::uint8_t b) { return b == 0; }));

  // ...but an I/O fault is not damage: the block stays kUnknown and the
  // next tolerant read (fault cleared) recovers the real bytes.
  EXPECT_EQ(session.block_health(0), serve::BlockHealth::kUnknown);
  serve::DamageReport clean;
  ASSERT_EQ(session.read_at_damage_tolerant(
                0, MutableByteSpan(got.data(), got.size()), &clean),
            block0_size);
  EXPECT_TRUE(clean.clean());
  EXPECT_TRUE(std::equal(got.begin(), got.end(), f.input.begin()));
  EXPECT_EQ(session.block_health(0), serve::BlockHealth::kGood);
}

}  // namespace
}  // namespace gompresso
