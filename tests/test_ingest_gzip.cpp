// The gzip ingest backend: rapidgzip-style parallel decode behind
// gompresso::open().
//
// Coverage map:
//   - golden corpus: real `gzip` output at levels 1/6/9 over text,
//     incompressible, empty, and tiny inputs, plus multi-member
//     concatenation, byte-compared against the original (GTEST_SKIP
//     when no gzip binary is on PATH — the in-process stored-block
//     writer below keeps structural coverage hermetic);
//   - adversarial headers: every FLG combination, reserved bits,
//     truncations at every prefix, lying ISIZE/CRC32, oversized FEXTRA;
//   - mutation fuzz within the repo's GOMPRESSO_FUZZ_TRIALS budget:
//     decode of a damaged stream throws a typed Error or succeeds —
//     never crashes, never hangs;
//   - chaos soak: a gzip session over FaultInjectingByteSource absorbs
//     transient-only plans byte-exactly;
//   - the "GZIX" sidecar: reopen loads it instead of re-scanning
//     (counter-asserted) and a wrong-flavor sidecar is rejected;
//   - parallel == sequential: the speculative wave build and the pure
//     sequential build produce identical bytes;
//   - the pipe fallback: gzip on a non-seekable stream decodes through
//     decompress_stream's sequential path.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/gompresso.hpp"
#include "datagen/datasets.hpp"
#include "format/header.hpp"
#include "format/sniff.hpp"
#include "fuzz_budget.hpp"
#include "ingest/gzip_format.hpp"
#include "ingest/gzip_index.hpp"
#include "ingest/inflate.hpp"
#include "serve/fault_source.hpp"
#include "util/crc32.hpp"
#include "util/varint.hpp"
#include "util/rng.hpp"

namespace gompresso {
namespace {

// ------------------------------------------------------------ helpers

/// In-process gzip writer using stored (BTYPE 0) DEFLATE blocks: pure
/// framing, so header/trailer structure can be fuzzed hermetically
/// without a compressor. `flags` may request FTEXT/FHCRC/FEXTRA/FNAME/
/// FCOMMENT; the optional fields are filled with fixed contents.
Bytes gzip_store_member(ByteSpan data, std::uint8_t flags = 0,
                        std::size_t extra_len = 6) {
  Bytes out;
  out.push_back(0x1F);
  out.push_back(0x8B);
  out.push_back(8);  // CM = deflate
  out.push_back(flags);
  for (int i = 0; i < 4; ++i) out.push_back(0);  // MTIME
  out.push_back(0);                              // XFL
  out.push_back(255);                            // OS = unknown
  if (flags & ingest::kGzipFlagExtra) {
    out.push_back(static_cast<std::uint8_t>(extra_len & 0xFF));
    out.push_back(static_cast<std::uint8_t>(extra_len >> 8));
    for (std::size_t i = 0; i < extra_len; ++i) {
      out.push_back(static_cast<std::uint8_t>('x'));
    }
  }
  if (flags & ingest::kGzipFlagName) {
    for (const char c : std::string("file.bin")) {
      out.push_back(static_cast<std::uint8_t>(c));
    }
    out.push_back(0);
  }
  if (flags & ingest::kGzipFlagComment) {
    for (const char c : std::string("a comment")) {
      out.push_back(static_cast<std::uint8_t>(c));
    }
    out.push_back(0);
  }
  if (flags & ingest::kGzipFlagHcrc) {
    const std::uint32_t crc = crc32(ByteSpan(out.data(), out.size()));
    out.push_back(static_cast<std::uint8_t>(crc & 0xFF));
    out.push_back(static_cast<std::uint8_t>((crc >> 8) & 0xFF));
  }

  // Stored blocks: 3-bit header (BFINAL, BTYPE=00), pad to byte, then
  // LEN/NLEN + raw bytes. An empty input is one final LEN=0 block.
  std::size_t pos = 0;
  do {
    const std::size_t n = std::min<std::size_t>(data.size() - pos, 65535);
    const bool final_block = pos + n == data.size();
    out.push_back(final_block ? 1 : 0);  // header bits land in one byte
    out.push_back(static_cast<std::uint8_t>(n & 0xFF));
    out.push_back(static_cast<std::uint8_t>(n >> 8));
    out.push_back(static_cast<std::uint8_t>(~n & 0xFF));
    out.push_back(static_cast<std::uint8_t>((~n >> 8) & 0xFF));
    out.insert(out.end(), data.begin() + static_cast<long>(pos),
               data.begin() + static_cast<long>(pos + n));
    pos += n;
  } while (pos < data.size());

  const std::uint32_t crc = crc32(data);
  const std::uint32_t isize = static_cast<std::uint32_t>(data.size());
  for (const std::uint32_t v : {crc, isize}) {
    out.push_back(static_cast<std::uint8_t>(v & 0xFF));
    out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
    out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
    out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xFF));
  }
  return out;
}

/// Decodes a whole in-memory gzip stream through gompresso::open().
Bytes decode_gzip(ByteSpan file, std::size_t threads = 2,
                  std::size_t chunk_size = 64 * 1024) {
  OpenOptions opt;
  opt.session.num_threads = threads;
  opt.gzip.chunk_size = chunk_size;
  auto session = open(serve::memory_source(file), opt);
  Bytes out(session->size());
  if (!out.empty()) {
    EXPECT_EQ(session->read_at(0, MutableByteSpan(out.data(), out.size())),
              out.size());
  }
  return out;
}

std::string temp_path(const char* tag) {
  return "/tmp/gomp_gz_" + std::to_string(getpid()) + "_" + tag;
}

void write_file(const std::string& path, ByteSpan data) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  ASSERT_TRUE(out.good());
}

Bytes read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return Bytes((std::istreambuf_iterator<char>(in)),
               std::istreambuf_iterator<char>());
}

bool have_gzip_binary() {
  return std::system("gzip --version >/dev/null 2>&1") == 0;
}

/// A streambuf that cannot seek (pubseekoff keeps the std::streambuf
/// default of failing), modelling a pipe (same idiom as test_stream).
class SequentialBuf : public std::streambuf {
 public:
  explicit SequentialBuf(std::string data) : data_(std::move(data)) {
    setg(data_.data(), data_.data(), data_.data() + data_.size());
  }

 private:
  std::string data_;
};

// ------------------------------------------------------------- sniffer

TEST(Sniff, ClassifiesAllContainers) {
  const std::uint8_t gz[] = {0x1F, 0x8B, 0x08, 0x00};
  EXPECT_EQ(format::sniff_container(ByteSpan(gz, 4)),
            format::ContainerKind::kGzip);
  EXPECT_EQ(format::sniff_container(ByteSpan(gz, 3)),
            format::ContainerKind::kGzip);
  const std::uint8_t not_deflate[] = {0x1F, 0x8B, 0x07, 0x00};
  EXPECT_EQ(format::sniff_container(ByteSpan(not_deflate, 4)),
            format::ContainerKind::kUnknown);
  Bytes gmpz;
  put_u32le(gmpz, format::kMagic);
  EXPECT_EQ(format::sniff_container(ByteSpan(gmpz.data(), gmpz.size())),
            format::ContainerKind::kGmpz);
  Bytes gmps;
  put_u32le(gmps, format::kGmpsMagic);
  EXPECT_EQ(format::sniff_container(ByteSpan(gmps.data(), gmps.size())),
            format::ContainerKind::kGmps);
  EXPECT_EQ(format::sniff_container(ByteSpan(gz, 2)),
            format::ContainerKind::kUnknown);
}

// ------------------------------------------------- stored-block writer

TEST(IngestGzip, StoredMembersRoundTrip) {
  for (const std::size_t size : {std::size_t{0}, std::size_t{1},
                                 std::size_t{65535}, std::size_t{200000}}) {
    const Bytes input = datagen::wikipedia(std::max<std::size_t>(size, 1));
    const ByteSpan data(input.data(), size);
    const Bytes file = gzip_store_member(data);
    const Bytes out = decode_gzip(ByteSpan(file.data(), file.size()));
    ASSERT_EQ(out.size(), size);
    EXPECT_TRUE(std::equal(out.begin(), out.end(), data.begin()));
  }
}

TEST(IngestGzip, EveryHeaderFlagCombinationParses) {
  const Bytes input = datagen::wikipedia(5000);
  const ByteSpan data(input.data(), input.size());
  for (std::uint8_t flags = 0; flags < 32; ++flags) {
    const Bytes file = gzip_store_member(data, flags);
    const Bytes out = decode_gzip(ByteSpan(file.data(), file.size()));
    ASSERT_EQ(out.size(), input.size()) << "flags=" << int(flags);
    EXPECT_EQ(out, input) << "flags=" << int(flags);
  }
}

TEST(IngestGzip, MultiMemberStreamsConcatenate) {
  const Bytes a = datagen::wikipedia(70000);
  const Bytes b = datagen::random_bytes(50000, 7);
  Bytes file = gzip_store_member(ByteSpan(a.data(), a.size()),
                                 ingest::kGzipFlagName);
  const Bytes second = gzip_store_member(ByteSpan(b.data(), b.size()));
  file.insert(file.end(), second.begin(), second.end());
  // An empty trailing member must also be consumed.
  const Bytes third = gzip_store_member(ByteSpan());
  file.insert(file.end(), third.begin(), third.end());

  const Bytes out = decode_gzip(ByteSpan(file.data(), file.size()));
  ASSERT_EQ(out.size(), a.size() + b.size());
  EXPECT_TRUE(std::equal(a.begin(), a.end(), out.begin()));
  EXPECT_TRUE(std::equal(b.begin(), b.end(),
                         out.begin() + static_cast<long>(a.size())));
}

// --------------------------------------------------- adversarial input

TEST(IngestGzip, ReservedFlagBitsAreAFormatError) {
  const Bytes input = datagen::wikipedia(100);
  Bytes file = gzip_store_member(ByteSpan(input.data(), input.size()));
  file[3] |= ingest::kGzipFlagReserved;
  EXPECT_THROW(decode_gzip(ByteSpan(file.data(), file.size())), FormatError);
}

TEST(IngestGzip, HeaderCrc16MismatchIsCorruption) {
  const Bytes input = datagen::wikipedia(100);
  Bytes file =
      gzip_store_member(ByteSpan(input.data(), input.size()), ingest::kGzipFlagHcrc);
  file[10] ^= 0xFF;  // flip an FHCRC byte (header is 10 fixed + 2 crc)
  EXPECT_THROW(decode_gzip(ByteSpan(file.data(), file.size())), Error);
}

TEST(IngestGzip, LyingTrailerIsCorruption) {
  const Bytes input = datagen::wikipedia(3000);
  const Bytes good = gzip_store_member(ByteSpan(input.data(), input.size()));
  {
    Bytes bad = good;
    bad[bad.size() - 2] ^= 0x40;  // ISIZE
    EXPECT_THROW(decode_gzip(ByteSpan(bad.data(), bad.size())), CorruptionError);
  }
  {
    Bytes bad = good;
    bad[bad.size() - 6] ^= 0x01;  // CRC32
    EXPECT_THROW(decode_gzip(ByteSpan(bad.data(), bad.size())), CorruptionError);
  }
}

TEST(IngestGzip, TruncationAtEveryPrefixThrows) {
  const Bytes input = datagen::wikipedia(2000);
  const Bytes file = gzip_store_member(
      ByteSpan(input.data(), input.size()),
      ingest::kGzipFlagExtra | ingest::kGzipFlagName | ingest::kGzipFlagHcrc);
  for (std::size_t len = 0; len < file.size(); ++len) {
    EXPECT_THROW(decode_gzip(ByteSpan(file.data(), len)), Error)
        << "prefix " << len;
  }
  EXPECT_EQ(decode_gzip(ByteSpan(file.data(), file.size())), input);
}

TEST(IngestGzip, OversizedFextraIsTruncation) {
  const Bytes input = datagen::wikipedia(100);
  Bytes file = gzip_store_member(ByteSpan(input.data(), input.size()),
                                 ingest::kGzipFlagExtra);
  // XLEN claims far more than the stream holds.
  file[10] = 0xFF;
  file[11] = 0xFF;
  EXPECT_THROW(decode_gzip(ByteSpan(file.data(), file.size())), Error);
}

TEST(IngestGzip, MutationFuzzNeverCrashes) {
  const Bytes input = datagen::wikipedia(60000);
  Bytes file = gzip_store_member(ByteSpan(input.data(), input.size()));
  const int trials = testing::fuzz_trials(60);
  Rng rng(20260809);
  for (int t = 0; t < trials; ++t) {
    const std::size_t at = static_cast<std::size_t>(
        rng.next_u64() % static_cast<std::uint64_t>(file.size()));
    const std::uint8_t old = file[at];
    file[at] ^= static_cast<std::uint8_t>(1u << (rng.next_u64() % 8));
    try {
      // Any typed Error is acceptable; silent success is too (a flip in
      // stored payload decodes "wrong" bytes but the trailer CRC check
      // catches it — flips in FNAME/MTIME are genuinely harmless).
      (void)decode_gzip(ByteSpan(file.data(), file.size()));
    } catch (const Error&) {
    }
    file[at] = old;
  }
}

// -------------------------------------------------------- golden gzip

TEST(IngestGzip, GoldenCorpusMatchesRealGzip) {
  if (!have_gzip_binary()) GTEST_SKIP() << "no gzip binary on PATH";
  struct Case {
    const char* tag;
    Bytes input;
  };
  std::vector<Case> cases;
  cases.push_back({"text", datagen::wikipedia(1 << 20)});
  cases.push_back({"random", datagen::random_bytes(300000, 9)});
  cases.push_back({"empty", Bytes()});
  cases.push_back({"tiny", Bytes{'h', 'i'}});

  for (const Case& c : cases) {
    const std::string raw = temp_path(c.tag);
    write_file(raw, ByteSpan(c.input.data(), c.input.size()));
    for (const int level : {1, 6, 9}) {
      const std::string gz = raw + "." + std::to_string(level) + ".gz";
      const std::string cmd =
          "gzip -" + std::to_string(level) + " -c " + raw + " > " + gz;
      ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;
      const Bytes file = read_file(gz);
      for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
        const Bytes out =
            decode_gzip(ByteSpan(file.data(), file.size()), threads);
        EXPECT_EQ(out, c.input)
            << c.tag << " level " << level << " threads " << threads;
      }
      std::remove(gz.c_str());
    }
    std::remove(raw.c_str());
  }
}

TEST(IngestGzip, GoldenMultiMemberConcatenation) {
  if (!have_gzip_binary()) GTEST_SKIP() << "no gzip binary on PATH";
  const Bytes a = datagen::wikipedia(400000);
  const Bytes b = datagen::matrix(200000);
  const std::string pa = temp_path("cat_a"), pb = temp_path("cat_b");
  write_file(pa, ByteSpan(a.data(), a.size()));
  write_file(pb, ByteSpan(b.data(), b.size()));
  const std::string gz = temp_path("cat.gz");
  ASSERT_EQ(std::system(("gzip -c " + pa + " > " + gz + " && gzip -9 -c " + pb +
                         " >> " + gz)
                            .c_str()),
            0);
  const Bytes file = read_file(gz);
  const Bytes out = decode_gzip(ByteSpan(file.data(), file.size()));
  ASSERT_EQ(out.size(), a.size() + b.size());
  EXPECT_TRUE(std::equal(a.begin(), a.end(), out.begin()));
  EXPECT_TRUE(std::equal(b.begin(), b.end(),
                         out.begin() + static_cast<long>(a.size())));
  std::remove(pa.c_str());
  std::remove(pb.c_str());
  std::remove(gz.c_str());
}

// -------------------------------------------- parallel vs sequential

TEST(IngestGzip, ParallelBuildMatchesSequential) {
  if (!have_gzip_binary()) GTEST_SKIP() << "no gzip binary on PATH";
  const Bytes input = datagen::wikipedia(2 << 20);
  const std::string raw = temp_path("par");
  write_file(raw, ByteSpan(input.data(), input.size()));
  const std::string gz = raw + ".gz";
  ASSERT_EQ(std::system(("gzip -c " + raw + " > " + gz).c_str()), 0);
  const Bytes file = read_file(gz);

  ThreadPool pool(4);
  ingest::GzipIndexOptions seq, par;
  seq.chunk_size = par.chunk_size = 96 * 1024;
  par.pool = &pool;
  auto ssrc = serve::memory_source(ByteSpan(file.data(), file.size()));
  auto psrc = serve::memory_source(ByteSpan(file.data(), file.size()));
  const ingest::GzipIndex si = ingest::GzipIndex::build(*ssrc, seq);
  const ingest::GzipIndex pi = ingest::GzipIndex::build(*psrc, par);

  ASSERT_EQ(si.total_uncompressed(), input.size());
  ASSERT_EQ(pi.total_uncompressed(), input.size());
  // The wave build must land on the same chunk geometry the sequential
  // build finds — speculation changes the schedule, not the result.
  ASSERT_EQ(pi.num_chunks(), si.num_chunks());
  for (std::size_t i = 0; i < si.num_chunks(); ++i) {
    EXPECT_EQ(pi.chunk(i).start_bit, si.chunk(i).start_bit);
    EXPECT_EQ(pi.chunk(i).end_bit, si.chunk(i).end_bit);
    EXPECT_EQ(pi.chunk(i).uncomp_offset, si.chunk(i).uncomp_offset);
  }

  const Bytes out = decode_gzip(ByteSpan(file.data(), file.size()), 4, 96 * 1024);
  EXPECT_EQ(out, input);
  std::remove(raw.c_str());
  std::remove(gz.c_str());
}

// ------------------------------------------------------------ sidecar

TEST(IngestGzip, SidecarReopenSkipsTheScan) {
  const Bytes input = datagen::wikipedia(500000);
  const Bytes file = gzip_store_member(ByteSpan(input.data(), input.size()));
  const std::string gz = temp_path("side.gz");
  const std::string sidecar = gz + ".gzix";
  write_file(gz, ByteSpan(file.data(), file.size()));

  {
    auto src = serve::open_file_source(gz);
    ingest::GzipIndexOptions gopt;
    gopt.chunk_size = 64 * 1024;
    ingest::GzipIndex::build(*src, gopt).save(sidecar);
  }

  const obs::MetricsSnapshot before = metrics_snapshot();
  OpenOptions opt;
  opt.sidecar_path = sidecar;
  auto session = open(gz, opt);
  Bytes out(session->size());
  ASSERT_EQ(session->read_at(0, MutableByteSpan(out.data(), out.size())),
            out.size());
  EXPECT_EQ(out, input);
  const obs::MetricsSnapshot after = metrics_snapshot();

  // Reopen is O(sidecar): no new index build, not one boundary bit
  // scanned, exactly one sidecar load.
  EXPECT_EQ(after.counter("ingest.index_builds"),
            before.counter("ingest.index_builds"));
  EXPECT_EQ(after.counter("ingest.boundary_bits_scanned"),
            before.counter("ingest.boundary_bits_scanned"));
  EXPECT_EQ(after.counter("ingest.sidecar_loads"),
            before.counter("ingest.sidecar_loads") + 1);

  std::remove(gz.c_str());
  std::remove(sidecar.c_str());
}

TEST(IngestGzip, SidecarRoundTripsThroughSerialization) {
  const Bytes input = datagen::wikipedia(300000);
  const Bytes file = gzip_store_member(ByteSpan(input.data(), input.size()));
  auto src = serve::memory_source(ByteSpan(file.data(), file.size()));
  ingest::GzipIndexOptions gopt;
  gopt.chunk_size = 64 * 1024;
  const ingest::GzipIndex index = ingest::GzipIndex::build(*src, gopt);
  const Bytes blob = index.serialize();
  const ingest::GzipIndex back =
      ingest::GzipIndex::deserialize(ByteSpan(blob.data(), blob.size()));
  ASSERT_EQ(back.num_chunks(), index.num_chunks());
  ASSERT_EQ(back.total_uncompressed(), index.total_uncompressed());
  ASSERT_EQ(back.source_size(), index.source_size());
  for (std::size_t i = 0; i < index.num_chunks(); ++i) {
    EXPECT_EQ(back.chunk(i).start_bit, index.chunk(i).start_bit);
    EXPECT_EQ(back.chunk(i).uncomp_size, index.chunk(i).uncomp_size);
  }
}

TEST(IngestGzip, WrongSidecarFlavorIsRejected) {
  const Bytes input = datagen::wikipedia(50000);
  const Bytes gzfile = gzip_store_member(ByteSpan(input.data(), input.size()));
  const std::string gz = temp_path("wrong.gz");
  write_file(gz, ByteSpan(gzfile.data(), gzfile.size()));

  // A native .gmpx sidecar offered for a gzip container must not be
  // silently accepted (nor silently rebuilt).
  const Bytes native = compress(ByteSpan(input.data(), input.size()), {});
  const std::string gmpx = temp_path("wrong.gmpx");
  {
    auto nsrc = serve::memory_source(ByteSpan(native.data(), native.size()));
    serve::SeekIndex::build(*nsrc).save(gmpx);
  }
  OpenOptions opt;
  opt.sidecar_path = gmpx;
  EXPECT_THROW(open(gz, opt), FormatError);
  std::remove(gz.c_str());
  std::remove(gmpx.c_str());
}

// --------------------------------------------------------- chaos soak

TEST(IngestGzip, TransientFaultsAreAbsorbed) {
  const Bytes input = datagen::wikipedia(250000);
  const Bytes file = gzip_store_member(ByteSpan(input.data(), input.size()));
  const int trials = testing::fuzz_trials(2);
  for (int trial = 0; trial < trials; ++trial) {
    auto faulty = std::make_unique<serve::FaultInjectingByteSource>(
        serve::memory_source(ByteSpan(file.data(), file.size())));
    serve::FaultInjectingByteSource* handle = faulty.get();
    OpenOptions opt;
    opt.session.num_threads = 2;
    opt.session.cache_blocks = 2;  // force re-decodes (fresh faults)
    opt.session.sleep_hook = [](std::uint64_t) {};
    opt.gzip.chunk_size = 48 * 1024;
    auto session = open(std::move(faulty), opt);

    // Armed after the scan; burst 2 < max_attempts 3 makes absorption a
    // certainty, not a probability (same contract as test_chaos).
    handle->set_random_transients(/*rate=*/0.3, /*burst=*/2,
                                  /*seed=*/500u + static_cast<unsigned>(trial));

    Bytes out(session->size());
    ASSERT_EQ(session->read_at(0, MutableByteSpan(out.data(), out.size())),
              out.size());
    EXPECT_EQ(out, input) << "trial " << trial;
    const serve::SessionStats st = session->stats();
    EXPECT_EQ(st.permanent_errors, 0u);
  }
}

// ------------------------------------------------------ pipe fallback

TEST(IngestGzip, PipeFallbackDecodesSequentially) {
  const Bytes a = datagen::wikipedia(150000);
  const Bytes b = datagen::random_bytes(30000, 11);
  Bytes file = gzip_store_member(ByteSpan(a.data(), a.size()));
  const Bytes second = gzip_store_member(ByteSpan(b.data(), b.size()));
  file.insert(file.end(), second.begin(), second.end());

  SequentialBuf buf(std::string(reinterpret_cast<const char*>(file.data()),
                                file.size()));
  std::istream in(&buf);
  ASSERT_EQ(in.tellg(), std::istream::pos_type(-1));  // really not seekable
  in.clear();
  std::ostringstream out;
  const std::uint64_t n = decompress_stream(in, out);
  ASSERT_EQ(n, a.size() + b.size());
  const std::string& s = out.str();
  EXPECT_TRUE(std::equal(a.begin(), a.end(),
                         reinterpret_cast<const std::uint8_t*>(s.data())));
  EXPECT_TRUE(std::equal(
      b.begin(), b.end(),
      reinterpret_cast<const std::uint8_t*>(s.data()) + a.size()));
}

TEST(IngestGzip, SeekableStreamUsesTheSessionPath) {
  const Bytes input = datagen::wikipedia(120000);
  const Bytes file = gzip_store_member(ByteSpan(input.data(), input.size()));
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(file.data()), file.size()));
  std::ostringstream out;
  const std::uint64_t n = decompress_stream(in, out);
  EXPECT_EQ(n, input.size());
  EXPECT_EQ(out.str(),
            std::string(reinterpret_cast<const char*>(input.data()),
                        input.size()));
  // The cursor lands just past the stream, as sequential use expects.
  EXPECT_EQ(static_cast<std::uint64_t>(in.tellg()), file.size());
}

// ------------------------------------------------------- random reads

TEST(IngestGzip, RandomRangeReadsMatchReference) {
  const Bytes input = datagen::wikipedia(600000);
  const Bytes file = gzip_store_member(ByteSpan(input.data(), input.size()));
  OpenOptions opt;
  opt.session.num_threads = 2;
  opt.gzip.chunk_size = 64 * 1024;
  auto session =
      open(serve::memory_source(ByteSpan(file.data(), file.size())), opt);
  Rng rng(77);
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t off = rng.next_u64() % input.size();
    const std::size_t len = static_cast<std::size_t>(
        std::min<std::uint64_t>(1 + rng.next_u64() % 5000, input.size() - off));
    Bytes got(len);
    ASSERT_EQ(session->read_at(off, MutableByteSpan(got.data(), got.size())),
              len);
    EXPECT_TRUE(std::equal(got.begin(), got.end(),
                           input.begin() + static_cast<long>(off)));
  }
}

}  // namespace
}  // namespace gompresso
