// Tests for the sharded parallel phase-2 resolver (completed-watermark
// handoff): byte-equality with the serial resolver across corpora,
// strategies and thread counts; crafted cross-shard and shard-starvation
// streams; abort behaviour on malformed input; arena reuse; and the
// resolve_span oracle kernel it is checked against. The whole suite runs
// under ThreadSanitizer in CI — the handoff's claim is exactly that the
// cross-shard reads are properly ordered.
#include <gtest/gtest.h>

#include "core/decompressor.hpp"
#include "core/gompresso.hpp"
#include "core/resolve_parallel.hpp"
#include "core/warp_lz77.hpp"
#include "datagen/datasets.hpp"
#include "lz77/parser.hpp"
#include "lz77/ref_decoder.hpp"
#include "util/thread_pool.hpp"

namespace gompresso::core {
namespace {

Bytes corpus(int which, std::size_t size) {
  switch (which) {
    case 0: return datagen::wikipedia(size);
    case 1: return datagen::matrix(size);
    case 2: return datagen::random_bytes(size / 2);
    case 3: return Bytes(size, 'w');
    default: {
      datagen::NestingConfig nc;
      nc.families = 2;
      return datagen::make_nesting(size, nc);
    }
  }
}

/// Small shards so even test-sized token blocks split many ways.
ResolveShardConfig tiny_shards() {
  ResolveShardConfig config;
  config.min_sequences_per_shard = 64;
  return config;
}

Bytes resolve_sharded_or_die(const lz77::TokenBlock& tokens, Strategy strategy,
                             ThreadPool& pool, const ResolveShardConfig& config,
                             std::uint64_t* deferrals = nullptr,
                             ResolvePlan* plan_out = nullptr) {
  Bytes out(tokens.uncompressed_size);
  ResolvePlan local;
  ResolvePlan& plan = plan_out ? *plan_out : local;
  simt::WarpMetrics metrics;
  const bool sharded = resolve_block_sharded(
      tokens.sequences, tokens.literals.data(), tokens.literals.size(), out, strategy,
      plan, pool, &metrics, deferrals, config);
  EXPECT_TRUE(sharded) << "block unexpectedly too small to shard";
  return out;
}


class ShardedEquivalence
    : public ::testing::TestWithParam<std::tuple<Strategy, bool, int>> {};

TEST_P(ShardedEquivalence, MatchesSerialResolver) {
  const auto [strategy, de, which] = GetParam();
  if (strategy == Strategy::kDependencyFree && !de) {
    GTEST_SKIP() << "DE strategy requires DE-parsed stream";
  }
  const Bytes input = corpus(which, 150000);
  lz77::ParserOptions popt;
  popt.dependency_elimination = de;
  const lz77::TokenBlock tokens = lz77::parse(input, popt, nullptr);

  Bytes serial(tokens.uncompressed_size);
  resolve_block(tokens.sequences, tokens.literals.data(), tokens.literals.size(),
                serial, strategy, nullptr);
  ASSERT_EQ(serial, input);

  ThreadPool pool(4);
  Bytes sharded(tokens.uncompressed_size);
  ResolvePlan plan;
  std::uint64_t deferrals = 0;
  if (!resolve_block_sharded(tokens.sequences, tokens.literals.data(),
                             tokens.literals.size(), sharded, strategy, plan, pool,
                             nullptr, &deferrals, tiny_shards())) {
    // The incompressible corpus parses to a handful of long literal
    // runs; declining to shard such a block is the contract.
    EXPECT_LE(tokens.sequences.size(), 64u * 2);
    return;
  }
  EXPECT_EQ(sharded, serial);
}

INSTANTIATE_TEST_SUITE_P(
    All, ShardedEquivalence,
    ::testing::Combine(::testing::Values(Strategy::kSequentialCopy,
                                         Strategy::kMultiRound,
                                         Strategy::kDependencyFree),
                       ::testing::Bool(), ::testing::Values(0, 1, 2, 3, 4)));

TEST(ResolveParallel, EndToEndSingleBlockOneVsManyThreads) {
  // The acceptance shape: a single-block file decoded on a multi-thread
  // pool must take the sharded phase-2 path and produce bytes identical
  // to the 1-thread decode, for every codec and both stream kinds.
  const Bytes input = datagen::wikipedia(400000);
  for (const Codec codec : {Codec::kBit, Codec::kByte, Codec::kTans}) {
    for (const bool de : {true, false}) {
      CompressOptions opt;
      opt.codec = codec;
      opt.dependency_elimination = de;
      opt.block_size = 1024 * 1024;  // > input: exactly one block
      const Bytes file = compress(input, opt);

      DecompressOptions one;
      one.num_threads = 1;
      const DecompressResult serial = decompress(file, one);
      ASSERT_EQ(serial.data, input);
      EXPECT_EQ(serial.scratch.resolve_fanouts, 0u);

      DecompressOptions many;
      many.num_threads = 4;
      const DecompressResult parallel = decompress(file, many);
      ASSERT_EQ(parallel.data, serial.data)
          << "codec " << static_cast<int>(codec) << " de=" << de;
      EXPECT_EQ(parallel.scratch.resolve_fanouts, 1u)
          << "codec " << static_cast<int>(codec) << " de=" << de
          << ": single block + 4 threads must shard phase 2";
      EXPECT_EQ(parallel.scratch.lane_fanouts, 1u);
      // The arena is pre-reserved from the header bound: the sharded
      // resolve must not have cost the block its buffer-reuse claim.
      EXPECT_EQ(parallel.scratch.blocks, parallel.scratch.buffer_reuses);
    }
  }
}

TEST(ResolveParallel, ShardLocalStreamResolvesWithoutDeferrals) {
  // A stream whose every match copies from its own literal string never
  // reaches below a shard base, so phase A must resolve all of it
  // concurrently — zero deferrals, no watermark parking. This is the
  // fully-concurrent end of the concurrent-vs-pipelined spectrum (the
  // crafted cross-shard test below is the other end).
  lz77::TokenBlock tokens;
  for (int k = 0; k < 8192; ++k) {
    for (int i = 0; i < 8; ++i) {
      tokens.literals.push_back(static_cast<std::uint8_t>(k * 8 + i));
    }
    tokens.sequences.push_back({8, 4, 8});  // copies its own literals
  }
  tokens.sequences.push_back({0, 0, 0});
  tokens.uncompressed_size = static_cast<std::uint32_t>(8192 * 12);
  const Bytes expect = lz77::decode_reference(tokens);

  ThreadPool pool(4);
  std::uint64_t deferrals = 0;
  EXPECT_EQ(resolve_sharded_or_die(tokens, Strategy::kMultiRound, pool, tiny_shards(),
                                   &deferrals),
            expect);
  EXPECT_EQ(deferrals, 0u);
}

TEST(ResolveParallel, ChaseResolvesDirtyReadsInsideTheShard) {
  // References that read a deferred reference's output but whose
  // transitive origin stays inside the shard must be chased to that
  // origin and copied in phase A rather than joining the cascade: only
  // the refs whose chains truly cross a shard base may defer.
  lz77::TokenBlock tokens;
  // Each sequence: 4 literals then a match of 4 at distance 6 — the
  // source straddles the previous sequence's match output (dirty when
  // that ref deferred) and own literals, with the chain grounding in
  // literal bytes after a couple of hops.
  for (int k = 0; k < 8192; ++k) {
    for (int i = 0; i < 4; ++i) {
      tokens.literals.push_back(static_cast<std::uint8_t>(k ^ (i * 41)));
    }
    lz77::Sequence s;
    s.literal_len = 4;
    s.match_len = 4;
    const std::uint64_t pos = static_cast<std::uint64_t>(k) * 8 + 4;  // write_pos
    s.match_dist = pos >= 6 ? 6 : static_cast<std::uint32_t>(pos);
    tokens.sequences.push_back(s);
  }
  tokens.sequences.push_back({0, 0, 0});
  tokens.uncompressed_size = static_cast<std::uint32_t>(8192 * 8);
  const Bytes expect = lz77::decode_reference(tokens);

  ThreadPool pool(4);
  std::uint64_t deferrals = 0;
  EXPECT_EQ(resolve_sharded_or_die(tokens, Strategy::kMultiRound, pool, tiny_shards(),
                                   &deferrals),
            expect);
  // Only the boundary-straddling ref of each shard may defer; the
  // dirty reads right behind it must chase-resolve instead of joining
  // a cascade (one cascade would already defer a whole shard, hundreds
  // of refs).
  EXPECT_GT(deferrals, 0u);
  EXPECT_LT(deferrals, 8192u / 16);
}

TEST(ResolveParallel, CraftedRefsSpanEveryShardBoundary) {
  // A non-DE stream built so that every back-reference (after warm-up)
  // reaches below its shard's base: with 64-sequence shards each
  // emitting 5 bytes per sequence, a constant distance of 321 bytes
  // always crosses at least one 320-byte shard boundary. Every shard's
  // phase A defers everything and the watermark handoff must still
  // reconstruct the exact byte stream.
  lz77::TokenBlock tokens;
  for (int k = 0; k < 4096; ++k) {
    lz77::Sequence s;
    s.literal_len = 1;
    s.match_len = 4;
    const std::uint64_t pos = static_cast<std::uint64_t>(k) * 5 + 1;  // write_pos
    s.match_dist = pos > 321 ? 321 : static_cast<std::uint32_t>(pos);
    tokens.sequences.push_back(s);
    tokens.literals.push_back(static_cast<std::uint8_t>(k * 37 + 11));
  }
  tokens.sequences.push_back({0, 0, 0});
  tokens.uncompressed_size = static_cast<std::uint32_t>(4096 * 5);
  const Bytes expect = lz77::decode_reference(tokens);

  ThreadPool pool(4);
  for (const Strategy strategy : {Strategy::kSequentialCopy, Strategy::kMultiRound}) {
    std::uint64_t deferrals = 0;
    EXPECT_EQ(resolve_sharded_or_die(tokens, strategy, pool, tiny_shards(), &deferrals),
              expect)
        << strategy_name(strategy);
    EXPECT_GT(deferrals, 3000u) << "nearly every ref must cross its shard base";
  }
}

TEST(ResolveParallel, ShardStarvationGiantMatch) {
  // One giant RLE match covers most of the window; every later shard's
  // references read deep inside it, so they all park on the watermark
  // until the first shard finishes — the worst-case handoff pattern.
  lz77::TokenBlock tokens;
  tokens.literals.push_back('G');
  tokens.sequences.push_back({1, 200000, 1});
  for (int k = 0; k < 4096; ++k) {
    lz77::Sequence s;
    s.literal_len = 1;
    s.match_len = 8;
    s.match_dist = 150000;  // deep inside the giant run
    tokens.sequences.push_back(s);
    tokens.literals.push_back(static_cast<std::uint8_t>('a' + k % 26));
  }
  tokens.sequences.push_back({0, 0, 0});
  tokens.uncompressed_size = static_cast<std::uint32_t>(1 + 200000 + 4096 * 9);
  const Bytes expect = lz77::decode_reference(tokens);

  ThreadPool pool(4);
  std::uint64_t deferrals = 0;
  EXPECT_EQ(resolve_sharded_or_die(tokens, Strategy::kMultiRound, pool, tiny_shards(),
                                   &deferrals),
            expect);
  EXPECT_GT(deferrals, 3000u);
}

TEST(ResolveParallel, MalformedMiddleShardAbortsWithoutHanging) {
  // A bad distance deep in a middle shard, in a stream whose other
  // references all cross their shard base: later shards are parked on
  // the watermark when the bad shard throws, so the abort must wake
  // them and the caller must see the error instead of a deadlock.
  lz77::TokenBlock tokens;
  for (int k = 0; k < 2048; ++k) {
    lz77::Sequence s;
    s.literal_len = 1;
    s.match_len = 4;
    const std::uint64_t pos = static_cast<std::uint64_t>(k) * 5 + 1;  // write_pos
    s.match_dist = pos > 801 ? 801 : static_cast<std::uint32_t>(pos);
    if (k == 1500) s.match_dist = 1000000;  // far past the start
    tokens.sequences.push_back(s);
    tokens.literals.push_back('x');
  }
  tokens.sequences.push_back({0, 0, 0});
  tokens.uncompressed_size = static_cast<std::uint32_t>(2048 * 5);

  ThreadPool pool(4);
  Bytes out(tokens.uncompressed_size);
  ResolvePlan plan;
  EXPECT_THROW(resolve_block_sharded(tokens.sequences, tokens.literals.data(),
                                     tokens.literals.size(), out,
                                     Strategy::kMultiRound, plan, pool, nullptr,
                                     nullptr, tiny_shards()),
               Error);
}

TEST(ResolveParallel, DeValidationStillRejectsNestedStreams) {
  // The sharded DE path keeps the serial resolver's validation: a
  // non-DE parse of nested data must be rejected, not silently resolved.
  datagen::NestingConfig nc;
  nc.families = 1;
  const Bytes input = datagen::make_nesting(100000, nc);
  lz77::ParserOptions popt;  // no dependency elimination
  popt.matcher.staleness = 0;
  const lz77::TokenBlock tokens = lz77::parse(input, popt, nullptr);

  ThreadPool pool(4);
  Bytes out(tokens.uncompressed_size);
  ResolvePlan plan;
  EXPECT_THROW(resolve_block_sharded(tokens.sequences, tokens.literals.data(),
                                     tokens.literals.size(), out,
                                     Strategy::kDependencyFree, plan, pool, nullptr,
                                     nullptr, tiny_shards()),
               Error);
}

TEST(ResolveParallel, TinyBlocksFallBackToSerial) {
  const Bytes input = datagen::wikipedia(8000);
  lz77::ParserOptions popt;
  const lz77::TokenBlock tokens = lz77::parse(input, popt, nullptr);
  ASSERT_LT(tokens.sequences.size(), 2048u);  // below one default shard

  ThreadPool pool(4);
  Bytes out(tokens.uncompressed_size);
  ResolvePlan plan;
  EXPECT_FALSE(resolve_block_sharded(tokens.sequences, tokens.literals.data(),
                                     tokens.literals.size(), out,
                                     Strategy::kMultiRound, plan, pool));
  // And the end-to-end path must agree: no resolve fan-out, right bytes.
  CompressOptions opt;
  const Bytes file = compress(input, opt);
  DecompressOptions dopt;
  dopt.num_threads = 4;
  const DecompressResult r = decompress(file, dopt);
  EXPECT_EQ(r.data, input);
  EXPECT_EQ(r.scratch.resolve_fanouts, 0u);
}

TEST(ResolveParallel, WarmPlanBuffersDoNotGrow) {
  // Steady-state claim at the arena level: resolving the same block
  // shape twice through one plan must not grow any plan-owned buffer
  // (shard table, pending worklists, metric round vectors) — the warm
  // pass runs out of the capacities the first pass established.
  const Bytes input = datagen::wikipedia(200000);
  lz77::ParserOptions popt;
  popt.dependency_elimination = true;
  const lz77::TokenBlock tokens = lz77::parse(input, popt, nullptr);

  ThreadPool pool(4);
  ResolvePlan plan;
  const ResolveShardConfig config = tiny_shards();
  const Bytes first =
      resolve_sharded_or_die(tokens, Strategy::kDependencyFree, pool, config,
                             nullptr, &plan);
  ASSERT_EQ(first, input);

  std::vector<std::size_t> pending_caps;
  std::vector<std::size_t> round_caps;
  for (const auto& p : plan.shard_pending) pending_caps.push_back(p.capacity());
  for (const auto& m : plan.shard_metrics) round_caps.push_back(m.bytes_per_round.capacity());
  const std::size_t shard_cap = plan.shards.capacity();

  const Bytes second =
      resolve_sharded_or_die(tokens, Strategy::kDependencyFree, pool, config,
                             nullptr, &plan);
  ASSERT_EQ(second, input);
  EXPECT_EQ(plan.shards.capacity(), shard_cap);
  for (std::size_t s = 0; s < plan.shard_pending.size(); ++s) {
    EXPECT_EQ(plan.shard_pending[s].capacity(), pending_caps[s]) << "shard " << s;
  }
  for (std::size_t s = 0; s < plan.shard_metrics.size(); ++s) {
    EXPECT_EQ(plan.shard_metrics[s].bytes_per_round.capacity(), round_caps[s])
        << "shard " << s;
  }
}

TEST(ResolveParallel, ShardedMetricsCoverEveryGroup) {
  // The per-shard metrics must add up to the serial resolver's group
  // count (every 32-sequence group processed exactly once), and a DE
  // stream's phase-B rounds only appear where deferrals happened.
  const Bytes input = datagen::wikipedia(200000);
  lz77::ParserOptions popt;
  popt.dependency_elimination = true;
  const lz77::TokenBlock tokens = lz77::parse(input, popt, nullptr);

  simt::WarpMetrics serial_metrics;
  Bytes serial(tokens.uncompressed_size);
  resolve_block(tokens.sequences, tokens.literals.data(), tokens.literals.size(),
                serial, Strategy::kDependencyFree, &serial_metrics);

  ThreadPool pool(4);
  Bytes out(tokens.uncompressed_size);
  ResolvePlan plan;
  simt::WarpMetrics sharded_metrics;
  ASSERT_TRUE(resolve_block_sharded(tokens.sequences, tokens.literals.data(),
                                    tokens.literals.size(), out,
                                    Strategy::kDependencyFree, plan, pool,
                                    &sharded_metrics, nullptr, tiny_shards()));
  ASSERT_EQ(out, serial);
  EXPECT_EQ(sharded_metrics.groups, serial_metrics.groups);
  // Total resolved bytes across rounds equal the stream's match bytes.
  std::uint64_t serial_bytes = 0;
  for (const auto b : serial_metrics.bytes_per_round) serial_bytes += b;
  std::uint64_t sharded_bytes = 0;
  for (const auto b : sharded_metrics.bytes_per_round) sharded_bytes += b;
  EXPECT_EQ(sharded_bytes, serial_bytes);
}

// ----------------------------------------------------------------- oracle

TEST(ResolveSpan, ResolvesAtAbsoluteBaseOverDonePrefix) {
  // Resolve a block serially, then re-resolve its tail span over a
  // window whose prefix is the already-resolved output — the shard
  // contract in miniature.
  const Bytes input = datagen::wikipedia(100000);
  lz77::ParserOptions popt;
  const lz77::TokenBlock tokens = lz77::parse(input, popt, nullptr);
  const Bytes whole = lz77::decode_reference(tokens);
  ASSERT_EQ(whole, input);

  // Split the sequence list at a warp-group boundary.
  const std::size_t split = (tokens.sequences.size() / 2) / 32 * 32;
  std::uint64_t head_lits = 0;
  std::uint64_t head_out = 0;
  for (std::size_t i = 0; i < split; ++i) {
    head_lits += tokens.sequences[i].literal_len;
    head_out += tokens.sequences[i].literal_len + tokens.sequences[i].match_len;
  }
  Bytes window(whole.begin(), whole.end());
  // Scrub the tail, then re-resolve only the tail span at its base.
  std::fill(window.begin() + static_cast<std::ptrdiff_t>(head_out), window.end(), 0);
  const std::uint64_t written = lz77::resolve_span(
      std::span<const lz77::Sequence>(tokens.sequences).subspan(split),
      tokens.literals.data() + head_lits, tokens.literals.size() - head_lits,
      window, head_out);
  EXPECT_EQ(written, whole.size() - head_out);
  EXPECT_EQ(window, whole);
}

TEST(ResolveSpan, RejectsMalformedSpans) {
  lz77::Sequence bad_dist{1, 4, 9};
  lz77::Sequence term{0, 0, 0};
  const std::uint8_t lit = 'a';
  Bytes window(5);
  {
    const lz77::Sequence seqs[] = {bad_dist, term};
    EXPECT_THROW(lz77::resolve_span(seqs, &lit, 1, window, 0), Error);
  }
  {
    // Output overrun: window too small for the span.
    const lz77::Sequence seqs[] = {{1, 8, 1}, term};
    EXPECT_THROW(lz77::resolve_span(seqs, &lit, 1, window, 0), Error);
  }
  {
    // Literal buffer too small.
    const lz77::Sequence seqs[] = {{3, 0, 0}};
    EXPECT_THROW(lz77::resolve_span(seqs, &lit, 1, window, 0), Error);
  }
  {
    // Base past the window.
    const lz77::Sequence seqs[] = {term};
    EXPECT_THROW(lz77::resolve_span(seqs, &lit, 0, window, 9), Error);
  }
}

}  // namespace
}  // namespace gompresso::core
