// Corruption-injection tests: every random mutation of a compressed file
// must either throw gompresso::Error or be caught by the per-block CRC —
// silent wrong output is never acceptable.
#include <gtest/gtest.h>

#include "core/gompresso.hpp"
#include "datagen/datasets.hpp"
#include "util/rng.hpp"

namespace gompresso {
namespace {

class CorruptionSweep : public ::testing::TestWithParam<std::tuple<Codec, bool>> {};

TEST_P(CorruptionSweep, ByteFlipsNeverProduceSilentGarbage) {
  const auto [codec, de] = GetParam();
  const Bytes input = datagen::wikipedia(200000);
  CompressOptions opt;
  opt.codec = codec;
  opt.dependency_elimination = de;
  opt.block_size = 64 * 1024;
  const Bytes file = compress(input, opt);

  Rng rng(1234);
  int silent_wrong = 0;
  for (int trial = 0; trial < 60; ++trial) {
    Bytes bad = file;
    const std::size_t at = rng.next_below(bad.size());
    bad[at] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    try {
      const Bytes out = decompress_bytes(bad);
      if (out != input) ++silent_wrong;
    } catch (const Error&) {
      // detected: good
    }
  }
  EXPECT_EQ(silent_wrong, 0);
}

INSTANTIATE_TEST_SUITE_P(Configs, CorruptionSweep,
                         ::testing::Combine(::testing::Values(Codec::kByte, Codec::kBit),
                                            ::testing::Bool()));

TEST(Corruption, PackedTableRejectsInvalidCodewords) {
  // Target the Huffman tree section specifically: flipping serialized
  // code lengths yields decode tables with different holes, so the
  // packed-table fast path must hit an invalid (all-zero) entry or some
  // other structural check — or the CRC catches a silently altered
  // decode. Never silent wrong output.
  const Bytes input = datagen::wikipedia(120000);
  CompressOptions opt;
  opt.codec = Codec::kBit;
  const Bytes file = compress(input, opt);
  format::FileHeader header;
  std::size_t pos = 0;
  header = format::FileHeader::deserialize(file, pos);
  // Block payload: crc32 u32, mode u8, then varints + sub-block table +
  // tree nibbles. Probe a window that covers the tree section.
  Rng rng(77);
  int silent_wrong = 0;
  for (int trial = 0; trial < 40; ++trial) {
    Bytes bad = file;
    const std::size_t at = pos + 5 + rng.next_below(400);
    bad[at] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    try {
      const Bytes out = decompress_bytes(bad);
      if (out != input) ++silent_wrong;
    } catch (const Error&) {
      // detected: good
    }
  }
  EXPECT_EQ(silent_wrong, 0);
}

TEST(Corruption, TruncationAlwaysDetected) {
  const Bytes input = datagen::matrix(150000);
  const Bytes file = compress(input, {});
  for (const double frac : {0.1, 0.5, 0.9, 0.99}) {
    Bytes cut(file.begin(),
              file.begin() + static_cast<std::ptrdiff_t>(file.size() * frac));
    EXPECT_THROW(decompress_bytes(cut), Error) << "frac=" << frac;
  }
}

TEST(Corruption, AppendedGarbageDetected) {
  const Bytes input = datagen::matrix(100000);
  Bytes file = compress(input, {});
  file.push_back(0xAA);
  EXPECT_THROW(decompress_bytes(file), Error);
}

TEST(Corruption, ChecksumCanBeDisabled) {
  // With verification off, a bitstream flip that survives the structural
  // checks may produce wrong output without throwing. This knob exists
  // for the benchmarks; verify it actually bypasses the CRC compare by
  // corrupting the *stored checksum* itself (output is then correct but
  // would fail verification).
  const Bytes input = datagen::wikipedia(100000);
  const Bytes file = compress(input, {});
  // The first block's CRC is the 4 bytes right after the header.
  format::FileHeader header;
  std::size_t pos = 0;
  header = format::FileHeader::deserialize(file, pos);
  Bytes bad = file;
  bad[pos] ^= 0xFF;  // corrupt stored CRC of block 0
  EXPECT_THROW(decompress_bytes(bad), Error);
  DecompressOptions lax;
  lax.verify_checksums = false;
  EXPECT_EQ(decompress(bad, lax).data, input);
}

TEST(Corruption, CrossCodecFilesRejected) {
  // A /Bit file decoded with a header flipped to /Byte (and vice versa)
  // must fail structurally or by CRC — never crash.
  const Bytes input = datagen::wikipedia(80000);
  for (const Codec codec : {Codec::kByte, Codec::kBit}) {
    CompressOptions opt;
    opt.codec = codec;
    Bytes file = compress(input, opt);
    // Codec byte is at offset 5 (magic u32 + version u8).
    file[5] ^= 1;
    try {
      const Bytes out = decompress_bytes(file);
      EXPECT_NE(out, input);  // if it "succeeds", CRC must have caught it
      FAIL() << "expected a throw from CRC verification";
    } catch (const Error&) {
      // expected
    }
  }
}

}  // namespace
}  // namespace gompresso
