// Tests for the device models: PCIe transfer, energy, and the calibrated
// K40 cost model (monotonicity and calibration-point properties).
#include <gtest/gtest.h>

#include "sim/energy_model.hpp"
#include "sim/gpu_cost_model.hpp"
#include "sim/pcie_model.hpp"

namespace gompresso::sim {
namespace {

TEST(Pcie, TransferTimeScalesWithBytes) {
  PcieModel pcie;
  EXPECT_DOUBLE_EQ(pcie.seconds(0), 0.0);
  const double one_gb = pcie.seconds(1'000'000'000);
  EXPECT_NEAR(one_gb, 1.0 / 13.0 + pcie.latency_s, 1e-9);
  EXPECT_GT(pcie.seconds(2'000'000'000), one_gb * 1.9);
}

TEST(Energy, ProportionalToTime) {
  EnergyModel e;
  EXPECT_DOUBLE_EQ(e.cpu_energy_joules(2.0), 2.0 * e.cpu_system_watts);
  EXPECT_DOUBLE_EQ(e.gpu_energy_joules(0.5), 0.5 * e.gpu_system_watts);
  EXPECT_GT(e.gpu_system_watts, e.cpu_system_watts)
      << "adding a K40 must raise platform power";
}

RunProfile base_profile() {
  RunProfile p;
  p.uncompressed_bytes = 1'000'000'000;
  p.compressed_bytes = 500'000'000;
  p.codec = Codec::kByte;
  p.strategy = Strategy::kDependencyFree;
  p.avg_rounds_per_group = 1.0;
  return p;
}

TEST(K40, DeHitsCalibrationPoint) {
  K40Model k40;
  const RunProfile p = base_profile();
  // Calibration target (§V-A, Fig. 9a): Gompresso/Byte with DE ~= 20 GB/s
  // without PCIe.
  EXPECT_NEAR(k40.throughput_gb_per_s(p), 20.0, 1.0);
}

TEST(K40, MoreRoundsAreSlower) {
  K40Model k40;
  RunProfile p = base_profile();
  p.strategy = Strategy::kMultiRound;
  double prev = 1e9;
  for (const double rounds : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    p.avg_rounds_per_group = rounds;
    const double gbps = k40.throughput_gb_per_s(p);
    EXPECT_LT(gbps, prev + 1e-9) << "rounds=" << rounds;
    prev = gbps;
  }
}

TEST(K40, StrategyOrderingMatchesFig9a) {
  K40Model k40;
  RunProfile de = base_profile();
  RunProfile mrr = base_profile();
  mrr.strategy = Strategy::kMultiRound;
  mrr.avg_rounds_per_group = 3.0;  // paper: ~3 rounds on Wikipedia
  RunProfile sc = base_profile();
  sc.strategy = Strategy::kSequentialCopy;
  sc.avg_rounds_per_group = 28.0;  // ~refs per warp group
  const double t_de = k40.throughput_gb_per_s(de);
  const double t_mrr = k40.throughput_gb_per_s(mrr);
  const double t_sc = k40.throughput_gb_per_s(sc);
  EXPECT_GT(t_de, t_mrr);
  EXPECT_GT(t_mrr, t_sc);
  EXPECT_GE(t_de / t_sc, 5.0) << "paper: DE at least 5x faster than SC";
}

TEST(K40, MultipassSlowerThanMrr) {
  K40Model k40;
  RunProfile mrr = base_profile();
  mrr.strategy = Strategy::kMultiRound;
  mrr.avg_rounds_per_group = 3.0;
  RunProfile mp = mrr;
  mp.strategy = Strategy::kMultiPass;
  EXPECT_LT(k40.throughput_gb_per_s(mp), k40.throughput_gb_per_s(mrr));
}

TEST(K40, BitCodecPaysHuffmanCost) {
  K40Model k40;
  RunProfile byte = base_profile();
  RunProfile bit = byte;
  bit.codec = Codec::kBit;
  EXPECT_LT(k40.throughput_gb_per_s(bit), k40.throughput_gb_per_s(byte));
}

TEST(K40, PcieTransfersAddTime) {
  K40Model k40;
  RunProfile none = base_profile();
  RunProfile in = none;
  in.pcie_in = true;
  RunProfile inout = in;
  inout.pcie_out = true;
  EXPECT_LT(k40.seconds(none), k40.seconds(in));
  EXPECT_LT(k40.seconds(in), k40.seconds(inout));
  // Output transfer dominates for Gompresso/Byte (paper: "PCIe transfers
  // turned out to be the bottleneck").
  const double out_cost = k40.seconds(inout) - k40.seconds(in);
  const double in_cost = k40.seconds(in) - k40.seconds(none);
  EXPECT_GT(out_cost, in_cost);
}

TEST(K40, MemoryFloorBindsWhenComputeIsTiny) {
  K40Model k40;
  RunProfile p = base_profile();
  // Absurdly cheap compute: floor must bind.
  K40Model fast = k40;
  fast.de_cost_ns_per_byte = 1e-6;
  const double s = fast.seconds(p);
  const double floor_s =
      (1'000'000'000.0 + 500'000'000.0) / (fast.mem_bandwidth_gb_per_s * 1e9);
  EXPECT_NEAR(s, floor_s, floor_s * 0.01);
}

TEST(CpuScaling, ScalesSingleThread) {
  CpuScalingModel cpu;
  EXPECT_NEAR(cpu.scale_throughput_gb_per_s(0.2), 0.2 * cpu.effective_parallelism, 1e-12);
  EXPECT_LT(cpu.effective_parallelism, 24.0) << "24 HW threads on 12 cores < 24x";
}

}  // namespace
}  // namespace gompresso::sim
