// Tests for the exhaustive (oracle) matcher and matcher-quality
// properties: the hash-chain matcher at full depth must find matches as
// long as brute force everywhere.
#include <gtest/gtest.h>

#include "datagen/datasets.hpp"
#include "lz77/exhaustive_matcher.hpp"
#include "lz77/parser.hpp"
#include "lz77/ref_decoder.hpp"
#include "util/rng.hpp"

namespace gompresso::lz77 {
namespace {

TEST(ExhaustiveMatcher, FindsKnownBestMatch) {
  const std::string s = "abcdef__abcd____abcdefgh====abcdefg";
  const ByteSpan input = as_bytes(s);
  MatcherConfig cfg;
  cfg.min_match = 3;
  cfg.max_match = 64;
  ExhaustiveMatcher m(cfg);
  const Match match = m.find(input, 28, 28);
  ASSERT_TRUE(match.found());
  EXPECT_EQ(match.len, 7u);   // "abcdefg"
  EXPECT_EQ(match.pos, 16u);  // the longest candidate
}

TEST(ExhaustiveMatcher, OldestWinsTies) {
  const std::string s = "abcXabcY abc";
  const ByteSpan input = as_bytes(s);
  MatcherConfig cfg;
  cfg.min_match = 3;
  ExhaustiveMatcher m(cfg);
  const Match match = m.find(input, 9, 9);
  ASSERT_TRUE(match.found());
  EXPECT_EQ(match.len, 3u);
  EXPECT_EQ(match.pos, 0u);  // both "abc" candidates tie; the oldest wins
}

TEST(ExhaustiveMatcher, RespectsWindowAndDe) {
  Bytes data(600, 'x');
  const char* pat = "PQRs";
  for (int i = 0; i < 4; ++i) data[10 + i] = static_cast<std::uint8_t>(pat[i]);
  for (int i = 0; i < 4; ++i) data[500 + i] = static_cast<std::uint8_t>(pat[i]);
  MatcherConfig cfg;
  cfg.window_size = 256;  // candidate at 10 is out of window from 500
  cfg.min_match = 4;
  ExhaustiveMatcher m(cfg);
  const Match far = m.find(data, 500, 500);
  // The only in-window source for "PQRs" is gone; 'x' runs still match
  // via nearby positions, but not the pattern.
  if (far.found()) EXPECT_NE(far.pos, 10u);

  // DE: forbid an interval covering the candidate.
  MatcherConfig cfg2;
  cfg2.min_match = 4;
  ExhaustiveMatcher m2(cfg2);
  DeConstraint de;
  de.begin_group(400);
  de.add_backref(9, 20);
  const Match constrained = m2.find(data, 500, 500, &de);
  if (constrained.found()) {
    EXPECT_TRUE(constrained.pos + constrained.len <= 9 || constrained.pos >= 20);
  }
}

TEST(MatcherQuality, FullDepthChainMatchesOracleLengths) {
  // Property: for every position of a small corpus, the chain matcher at
  // effectively-unbounded depth finds a match exactly as long as brute
  // force (same trigram start -> same candidate set, modulo nothing at
  // this depth).
  for (const int which : {0, 1}) {
    const Bytes input =
        which == 0 ? datagen::wikipedia(4000) : datagen::matrix(4000);
    MatcherConfig cfg;
    cfg.window_size = 1024;
    cfg.min_match = 3;
    cfg.max_match = 64;
    ExhaustiveMatcher oracle(cfg);
    ChainMatcher chain(cfg, 1u << 20);
    for (std::uint32_t pos = 0; pos + 3 <= input.size(); ++pos) {
      const Match want = oracle.find(input, pos, pos);
      const Match got = chain.find(input, pos, pos);
      ASSERT_EQ(got.len, want.len) << "pos=" << pos << " which=" << which;
      chain.insert(input, pos);
    }
  }
}

TEST(MatcherQuality, SingleSlotHashIsWeakerButValid) {
  const Bytes input = datagen::wikipedia(4000);
  MatcherConfig cfg;
  cfg.window_size = 1024;
  cfg.staleness = 0;
  ExhaustiveMatcher oracle(cfg);
  HashMatcher hash(cfg);
  std::uint64_t oracle_total = 0, hash_total = 0;
  for (std::uint32_t pos = 0; pos + 3 <= input.size(); ++pos) {
    oracle_total += oracle.find(input, pos, pos).len;
    const Match got = hash.find(input, pos, pos);
    // Whatever the single-slot table returns must be a real match.
    if (got.found()) {
      ASSERT_LE(got.len, oracle.find(input, pos, pos).len);
      ASSERT_TRUE(std::equal(input.begin() + got.pos,
                             input.begin() + got.pos + got.len,
                             input.begin() + pos));
    }
    hash_total += got.len;
    hash.insert(input, pos);
  }
  EXPECT_LE(hash_total, oracle_total);
  EXPECT_GT(hash_total, oracle_total / 3) << "single slot should not be useless";
}

TEST(MatcherQuality, ExhaustiveParseRoundTrips) {
  const Bytes input = datagen::matrix(20000);
  ParserOptions popt;
  popt.matcher.window_size = 1024;
  for (const bool de : {false, true}) {
    popt.dependency_elimination = de;
    ParseStats stats;
    const TokenBlock tokens =
        parse_block<ExhaustiveMatcher>(input, popt, &stats);
    validate(tokens);
    EXPECT_EQ(decode_reference(tokens), input) << "de=" << de;
  }
}

TEST(MatcherQuality, ExhaustiveParseCompressesAtLeastAsWellAsChained) {
  const Bytes input = datagen::wikipedia(20000);
  ParserOptions popt;
  popt.matcher.window_size = 1024;
  ParseStats exhaustive_stats, chained_stats;
  parse_block<ExhaustiveMatcher>(input, popt, &exhaustive_stats);
  parse_chained(input, popt, 8, &chained_stats);
  EXPECT_GE(exhaustive_stats.match_bytes, chained_stats.match_bytes);
}

}  // namespace
}  // namespace gompresso::lz77
