// Regression tests for CLI signal handling: SIGINT mid-`gomp cat
// --trace` must still finish the trace file and exit 130, and SIGTERM
// against `gomp serve` must drain gracefully and exit 0. Both tests
// fork/exec the real binary (a sibling of this test executable) so the
// handlers, the TraceGuard teardown order, and the exit codes are
// exercised exactly as a user would hit them.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/gompresso.hpp"
#include "datagen/datasets.hpp"
#include "net/http.hpp"

namespace gompresso {
namespace {

std::string cli_binary() {
  char buf[4096];
  const ssize_t n = readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n <= 0) return "./gomp_cli";
  std::string self(buf, static_cast<std::size_t>(n));
  const std::size_t slash = self.rfind('/');
  return self.substr(0, slash + 1) + "gomp_cli";
}

std::string temp_path(const char* tag) {
  return "/tmp/gomp_sig_" + std::to_string(getpid()) + "_" + tag;
}

void write_archive(const std::string& path, std::size_t input_size) {
  const Bytes input = datagen::wikipedia(input_size);
  CompressOptions opt;
  opt.block_size = 16 * 1024;
  const Bytes file = compress(input, opt);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(file.data()),
            static_cast<std::streamsize>(file.size()));
  ASSERT_TRUE(out.good());
}

/// fork/exec the CLI with stdout redirected to `stdout_fd` (or
/// inherited when -1). Returns the child pid.
pid_t spawn_cli(const std::vector<std::string>& args, int stdout_fd) {
  const std::string bin = cli_binary();
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(bin.c_str()));
  for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);

  const pid_t pid = fork();
  if (pid == 0) {
    if (stdout_fd >= 0) {
      dup2(stdout_fd, STDOUT_FILENO);
      close(stdout_fd);
    }
    execv(bin.c_str(), argv.data());
    _exit(127);
  }
  return pid;
}

/// waitpid with a deadline; SIGKILLs and fails the test on a hang.
int wait_for_exit(pid_t pid, int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  int status = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    const pid_t got = waitpid(pid, &status, WNOHANG);
    if (got == pid) return status;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  kill(pid, SIGKILL);
  waitpid(pid, &status, 0);
  ADD_FAILURE() << "child did not exit within " << timeout_ms << " ms";
  return status;
}

TEST(CliSignals, SigintDuringTracedCatFinishesTheTraceAndExits130) {
  const std::string archive = temp_path("cat.gmpz");
  const std::string output = temp_path("cat.out");
  const std::string trace = temp_path("cat_trace.json");
  write_archive(archive, 800000);  // ~50 blocks

  // 8 ms of injected latency per source read keeps the cat alive for
  // hundreds of milliseconds — plenty of window to land the signal.
  const pid_t pid = spawn_cli(
      {"cat", archive, output, "--trace", trace, "--inject-faults",
       "latency=8000"},
      -1);
  ASSERT_GT(pid, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  ASSERT_EQ(kill(pid, SIGINT), 0);

  const int status = wait_for_exit(pid, 15000);
  ASSERT_TRUE(WIFEXITED(status)) << "killed by signal, handler did not run";
  EXPECT_EQ(WEXITSTATUS(status), 130);

  // The interrupted run still flushed a complete trace: non-empty JSON
  // that terminates properly instead of an abandoned half-written file.
  std::ifstream in(trace);
  ASSERT_TRUE(in.good()) << "trace file missing";
  std::stringstream ss;
  ss << in.rdbuf();
  std::string body = ss.str();
  while (!body.empty() && (body.back() == '\n' || body.back() == ' ')) {
    body.pop_back();
  }
  ASSERT_FALSE(body.empty());
  EXPECT_EQ(body.front(), '{');
  EXPECT_EQ(body.back(), '}');
  EXPECT_NE(body.find("\"traceEvents\""), std::string::npos);

  std::remove(archive.c_str());
  std::remove(output.c_str());
  std::remove(trace.c_str());
}

TEST(CliSignals, SigtermDuringServeDrainsAndExitsZero) {
  const std::string archive = temp_path("serve.gmpz");
  write_archive(archive, 300000);

  int pipe_fds[2];
  ASSERT_EQ(pipe(pipe_fds), 0);
  const pid_t pid =
      spawn_cli({"serve", archive, "--port", "0", "--workers", "2"},
                pipe_fds[1]);
  ASSERT_GT(pid, 0);
  close(pipe_fds[1]);

  // The daemon prints a parseable banner once the listener is bound:
  //   gomp serve: listening on 127.0.0.1:PORT (...)
  std::string banner;
  char c;
  while (banner.find('\n') == std::string::npos &&
         read(pipe_fds[0], &c, 1) == 1) {
    banner.push_back(c);
  }
  close(pipe_fds[0]);
  const std::string key = "listening on 127.0.0.1:";
  const std::size_t at = banner.find(key);
  ASSERT_NE(at, std::string::npos) << "banner: " << banner;
  const auto port = static_cast<std::uint16_t>(
      std::stoul(banner.substr(at + key.size())));
  ASSERT_GT(port, 0);

  // It really serves before the signal lands.
  net::HttpClient client(port);
  net::HttpResponse resp;
  ASSERT_TRUE(client.get("/healthz", {}, resp));
  EXPECT_EQ(resp.status, 200);

  ASSERT_EQ(kill(pid, SIGTERM), 0);
  const int status = wait_for_exit(pid, 15000);
  ASSERT_TRUE(WIFEXITED(status)) << "killed by signal, no graceful drain";
  EXPECT_EQ(WEXITSTATUS(status), 0);

  std::remove(archive.c_str());
}

}  // namespace
}  // namespace gompresso
