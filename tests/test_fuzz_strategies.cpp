// Randomised property tests: arbitrary *valid* token blocks must resolve
// identically under every strategy and survive codec round trips.
#include <gtest/gtest.h>

#include "core/bit_codec.hpp"
#include "core/byte_codec.hpp"
#include "core/mrr_multipass.hpp"
#include "core/warp_lz77.hpp"
#include "lz77/ref_decoder.hpp"
#include "util/rng.hpp"

namespace gompresso {
namespace {

/// Generates a random structurally-valid token block: random literal
/// runs, matches whose distances stay within the produced output, and
/// a deliberate bias toward warp-group-boundary and overlap edge cases.
lz77::TokenBlock random_tokens(Rng& rng, std::size_t target_sequences) {
  lz77::TokenBlock tokens;
  std::uint64_t out_pos = 0;
  for (std::size_t i = 0; i < target_sequences; ++i) {
    lz77::Sequence s;
    // Literal run: mostly short, occasionally zero or long.
    const auto lit_kind = rng.next_below(10);
    s.literal_len = lit_kind == 0   ? 0
                    : lit_kind == 1 ? static_cast<std::uint32_t>(rng.next_below(500))
                                    : static_cast<std::uint32_t>(rng.next_below(12));
    if (out_pos + s.literal_len == 0) s.literal_len = 1;  // first output byte
    for (std::uint32_t k = 0; k < s.literal_len; ++k) {
      tokens.literals.push_back(static_cast<std::uint8_t>(rng.next_u32()));
    }
    out_pos += s.literal_len;
    // Match: length 3..64, distance 1..out_pos (bias small distances to
    // exercise overlap and intra-group dependencies).
    s.match_len = 3 + static_cast<std::uint32_t>(rng.next_below(62));
    const std::uint64_t max_dist = out_pos;
    s.match_dist = static_cast<std::uint32_t>(
        rng.next_below(2) == 0 ? 1 + rng.next_below(std::min<std::uint64_t>(max_dist, 20))
                               : 1 + rng.next_below(max_dist));
    out_pos += s.match_len;
    tokens.sequences.push_back(s);
  }
  tokens.sequences.push_back({0, 0, 0});
  tokens.uncompressed_size = static_cast<std::uint32_t>(out_pos);
  return tokens;
}

class StrategyFuzz : public ::testing::TestWithParam<int> {};

TEST_P(StrategyFuzz, AllStrategiesMatchReference) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u + 17);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.next_below(200);
    const lz77::TokenBlock tokens = random_tokens(rng, n);
    lz77::validate(tokens);
    const Bytes expect = lz77::decode_reference(tokens);

    for (const Strategy s : {Strategy::kSequentialCopy, Strategy::kMultiRound}) {
      Bytes out(tokens.uncompressed_size);
      core::resolve_block(tokens.sequences, tokens.literals.data(),
                          tokens.literals.size(), out, s);
      ASSERT_EQ(out, expect) << strategy_name(s) << " trial " << trial;
    }
    Bytes out(tokens.uncompressed_size);
    core::resolve_block_multipass(tokens.sequences, tokens.literals.data(),
                                  tokens.literals.size(), out);
    ASSERT_EQ(out, expect) << "multipass trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrategyFuzz, ::testing::Range(1, 9));

class CodecFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CodecFuzz, BitCodecRoundTripsRandomTokens) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919u + 3);
  for (int trial = 0; trial < 10; ++trial) {
    lz77::TokenBlock tokens = random_tokens(rng, 1 + rng.next_below(100));
    // Bit codec domain: lengths <= 258 (satisfied), distances <= 32768.
    bool in_domain = true;
    for (auto& s : tokens.sequences) {
      if (s.match_dist > 32768) in_domain = false;
    }
    if (!in_domain) continue;
    core::BitCodecConfig cfg;
    cfg.tokens_per_subblock = 1 + static_cast<std::uint32_t>(rng.next_below(40));
    const Bytes payload = core::encode_block_bit(tokens, cfg);
    const lz77::TokenBlock back = core::decode_block_bit(payload, cfg);
    ASSERT_EQ(lz77::decode_reference(back), lz77::decode_reference(tokens))
        << "trial " << trial;
  }
}

TEST_P(CodecFuzz, ByteCodecRoundTripsRandomTokens) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729u + 5);
  for (int trial = 0; trial < 10; ++trial) {
    lz77::TokenBlock tokens = random_tokens(rng, 1 + rng.next_below(100));
    // Byte codec domain: lit <= 8191 (satisfied: max 500), len <= 65,
    // dist <= 8192.
    bool in_domain = true;
    for (auto& s : tokens.sequences) {
      if (s.match_dist > 8192 || s.match_len > 65) in_domain = false;
    }
    if (!in_domain) continue;
    const Bytes payload = core::encode_block_byte(tokens);
    const lz77::TokenBlock back = core::decode_block_byte(payload);
    ASSERT_EQ(lz77::decode_reference(back), lz77::decode_reference(tokens))
        << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz, ::testing::Range(1, 5));

}  // namespace
}  // namespace gompresso
