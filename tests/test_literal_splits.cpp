// Tests for literal-run splitting (ParserOptions::max_literal_run) and
// its interplay with warp groups, DE and both codecs — the path taken by
// incompressible data under the byte codec's bounded record fields.
#include <gtest/gtest.h>

#include "core/gompresso.hpp"
#include "datagen/datasets.hpp"
#include "lz77/parser.hpp"
#include "lz77/ref_decoder.hpp"

namespace gompresso {
namespace {

TEST(LiteralSplits, ParserSplitsLongRuns) {
  // Incompressible data yields literal runs far beyond the cap.
  const Bytes input = datagen::random_bytes(100000, 99);
  lz77::ParserOptions popt;
  popt.max_literal_run = 1000;
  const lz77::TokenBlock tokens = lz77::parse(input, popt, nullptr);
  lz77::validate(tokens);
  for (const auto& s : tokens.sequences) {
    EXPECT_LE(s.literal_len, 1000u);
  }
  // There must be several zero-match split sequences.
  std::size_t splits = 0;
  for (std::size_t i = 0; i + 1 < tokens.sequences.size(); ++i) {
    splits += tokens.sequences[i].match_len == 0;
  }
  EXPECT_GT(splits, 50u);
  EXPECT_EQ(lz77::decode_reference(tokens), input);
}

TEST(LiteralSplits, NoSplitsWhenUnlimited) {
  const Bytes input = datagen::random_bytes(50000, 7);
  lz77::ParserOptions popt;  // max_literal_run = 0
  const lz77::TokenBlock tokens = lz77::parse(input, popt, nullptr);
  for (std::size_t i = 0; i + 1 < tokens.sequences.size(); ++i) {
    EXPECT_NE(tokens.sequences[i].match_len, 0u) << "unexpected split at " << i;
  }
}

TEST(LiteralSplits, SplitSequencesCountTowardDeGroups) {
  // A DE parse with splits must still satisfy the single-round invariant:
  // compress incompressible-then-compressible data with the byte codec
  // (which enables splitting) and decode with the strict DE resolver.
  Bytes input = datagen::random_bytes(60000, 3);
  const Bytes tail = datagen::wikipedia(60000);
  input.insert(input.end(), tail.begin(), tail.end());

  CompressOptions opt;
  opt.codec = Codec::kByte;
  opt.dependency_elimination = true;
  const Bytes file = compress(input, opt);
  DecompressOptions dopt;
  dopt.auto_strategy = false;
  dopt.strategy = Strategy::kDependencyFree;  // throws on any intra-group dep
  EXPECT_EQ(decompress(file, dopt).data, input);
}

TEST(LiteralSplits, ByteCodecOnPurelyIncompressibleData) {
  const Bytes input = datagen::random_bytes(300000, 11);
  for (const bool de : {false, true}) {
    CompressOptions opt;
    opt.codec = Codec::kByte;
    opt.dependency_elimination = de;
    CompressStats stats;
    const Bytes file = compress(input, opt, &stats);
    // Expansion stays bounded: 4 B of record per 8191-byte literal run.
    EXPECT_LT(file.size(), input.size() + input.size() / 100 + 1024);
    EXPECT_EQ(decompress_bytes(file), input);
  }
}

TEST(LiteralSplits, ExactSplitPositions) {
  // 256 distinct bytes contain no repeated trigram, so the parse is one
  // pure literal run; with a 100-byte cap it splits deterministically
  // into 100 + 100 + 56 (terminator).
  Bytes input(256);
  for (std::size_t i = 0; i < input.size(); ++i) input[i] = static_cast<std::uint8_t>(i);
  lz77::ParserOptions popt;
  popt.max_literal_run = 100;
  const lz77::TokenBlock tokens = lz77::parse(input, popt, nullptr);
  lz77::validate(tokens);
  EXPECT_EQ(lz77::decode_reference(tokens), input);
  ASSERT_EQ(tokens.sequences.size(), 3u);
  EXPECT_EQ(tokens.sequences[0].literal_len, 100u);
  EXPECT_EQ(tokens.sequences[0].match_len, 0u);
  EXPECT_EQ(tokens.sequences[1].literal_len, 100u);
  EXPECT_EQ(tokens.sequences[2].literal_len, 56u);
}

TEST(LiteralSplits, NoTrailingSplitWhenRunEndsAtBlockEnd) {
  // Run length exactly equals the cap at end-of-block: the terminator
  // carries the run; no extra zero-length split is appended.
  Bytes input(100);
  for (std::size_t i = 0; i < input.size(); ++i) input[i] = static_cast<std::uint8_t>(i);
  lz77::ParserOptions popt;
  popt.max_literal_run = 100;
  const lz77::TokenBlock tokens = lz77::parse(input, popt, nullptr);
  ASSERT_EQ(tokens.sequences.size(), 1u);
  EXPECT_EQ(tokens.sequences[0].literal_len, 100u);
  EXPECT_EQ(lz77::decode_reference(tokens), input);
}

}  // namespace
}  // namespace gompresso
