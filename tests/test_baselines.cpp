// Tests for the §V-D baseline codecs and the block-parallel wrapper.
#include <gtest/gtest.h>

#include "baselines/block_parallel.hpp"
#include "baselines/codec.hpp"
#include "baselines/deflate_like.hpp"
#include "datagen/datasets.hpp"
#include "util/rng.hpp"

namespace gompresso::baselines {
namespace {

std::unique_ptr<Codec> make_codec(int id) {
  switch (id) {
    case 0: return make_lz4_like();
    case 1: return make_snappy_like();
    case 2: return make_deflate_like();
    case 3: return make_zstd_like();
  }
  return nullptr;
}

class BaselineRoundTrip : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BaselineRoundTrip, SingleBlock) {
  const auto [codec_id, which] = GetParam();
  const auto codec = make_codec(codec_id);
  Bytes input;
  switch (which) {
    case 0: input = datagen::wikipedia(120000); break;
    case 1: input = datagen::matrix(120000); break;
    case 2: input = datagen::random_bytes(60000); break;
    case 3: input = Bytes(90000, 'e'); break;
    case 4: input = Bytes{}; break;
    case 5: input = Bytes{'q'}; break;
    case 6: {
      Rng rng(17);
      input.resize(33333);
      for (auto& b : input) b = static_cast<std::uint8_t>('a' + rng.next_below(4));
      break;
    }
    default: FAIL();
  }
  const Bytes payload = codec->compress_block(input);
  EXPECT_EQ(codec->decompress_block(payload), input)
      << codec->name() << " dataset " << which;
}

INSTANTIATE_TEST_SUITE_P(CodecsAndInputs, BaselineRoundTrip,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(0, 1, 2, 3, 4, 5, 6)));

TEST(BaselineRatios, ExpectedOrderingOnText) {
  // Bit-level codecs out-compress byte-level ones on text; every real
  // compressor beats size on compressible input.
  const Bytes input = datagen::wikipedia(400000);
  const double lz4 = static_cast<double>(input.size()) /
                     make_lz4_like()->compress_block(input).size();
  const double snappy = static_cast<double>(input.size()) /
                        make_snappy_like()->compress_block(input).size();
  const double zlib = static_cast<double>(input.size()) /
                      make_deflate_like()->compress_block(input).size();
  const double zstd = static_cast<double>(input.size()) /
                      make_zstd_like()->compress_block(input).size();
  EXPECT_GT(lz4, 1.3);
  EXPECT_GT(snappy, 1.3);
  EXPECT_GT(zlib, lz4) << "entropy stage must beat byte-aligned tokens";
  EXPECT_GT(zlib, snappy);
  EXPECT_GT(zstd, lz4);
}

TEST(BaselineRatios, IncompressibleExpandsOnlySlightly) {
  const Bytes input = datagen::random_bytes(100000);
  for (int id = 0; id < 4; ++id) {
    const auto codec = make_codec(id);
    const Bytes payload = codec->compress_block(input);
    EXPECT_LT(payload.size(), input.size() + input.size() / 8 + 1024) << codec->name();
  }
}

TEST(DeflateChainDepth, DeeperChainsCompressBetter) {
  const Bytes input = datagen::wikipedia(300000);
  const DeflateLike shallow(1);
  const DeflateLike deep(64);
  const Bytes p_shallow = shallow.compress_block(input);
  const Bytes p_deep = deep.compress_block(input);
  EXPECT_LE(p_deep.size(), p_shallow.size());
  EXPECT_EQ(deep.decompress_block(p_deep), input);
}

TEST(BlockParallel, RoundTripAllCodecs) {
  const Bytes input = datagen::matrix(5 * 1024 * 1024);  // several 2 MB blocks
  for (int id = 0; id < 4; ++id) {
    const auto codec = make_codec(id);
    const Bytes file = compress_parallel(*codec, input);
    EXPECT_EQ(decompress_parallel(*codec, file), input) << codec->name();
  }
}

TEST(BlockParallel, CustomBlockSizeAndThreads) {
  const Bytes input = datagen::wikipedia(700000);
  const auto codec = make_lz4_like();
  for (const std::uint32_t bs : {64u * 1024u, 256u * 1024u}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      const Bytes file = compress_parallel(*codec, input, bs, threads);
      EXPECT_EQ(decompress_parallel(*codec, file, threads), input)
          << "bs=" << bs << " threads=" << threads;
    }
  }
}

TEST(BlockParallel, EmptyInput) {
  const auto codec = make_snappy_like();
  const Bytes file = compress_parallel(*codec, Bytes{});
  EXPECT_TRUE(decompress_parallel(*codec, file).empty());
}

TEST(BlockParallel, CorruptBlockDetectedByCrc) {
  const Bytes input = datagen::wikipedia(300000);
  const auto codec = make_lz4_like();
  Bytes file = compress_parallel(*codec, input, 64 * 1024);
  // Flip a byte in the middle of the payload area.
  file[file.size() / 2] ^= 0xFF;
  EXPECT_THROW(decompress_parallel(*codec, file), Error);
}

TEST(BlockParallel, BadMagicThrows) {
  Bytes junk = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto codec = make_lz4_like();
  EXPECT_THROW(decompress_parallel(*codec, junk), Error);
}

TEST(BlockParallel, TruncatedFileThrows) {
  const Bytes input = datagen::matrix(200000);
  const auto codec = make_zstd_like();
  const Bytes file = compress_parallel(*codec, input, 64 * 1024);
  Bytes cut(file.begin(), file.begin() + static_cast<std::ptrdiff_t>(file.size() / 2));
  EXPECT_THROW(decompress_parallel(*codec, cut), Error);
}

}  // namespace
}  // namespace gompresso::baselines
