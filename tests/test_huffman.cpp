// Unit and property tests for the Huffman substrate: package-merge code
// construction, canonical assignment, encode/decode tables,
// serialisation.
#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "bitstream/bit_reader.hpp"
#include "bitstream/bit_writer.hpp"
#include "huffman/code_builder.hpp"
#include "huffman/decoder.hpp"
#include "huffman/encoder.hpp"
#include "huffman/histogram.hpp"
#include "huffman/serial.hpp"
#include "util/rng.hpp"

namespace gompresso::huffman {
namespace {

std::vector<std::uint64_t> random_freqs(std::size_t n, std::uint64_t seed,
                                        bool allow_zero = true) {
  Rng rng(seed);
  std::vector<std::uint64_t> f(n);
  for (auto& v : f) {
    v = allow_zero && rng.next_below(4) == 0 ? 0 : 1 + rng.next_below(10000);
  }
  return f;
}

TEST(Histogram, CountsAndDistinct) {
  Histogram h(10);
  h.add(3);
  h.add(3, 5);
  h.add(7);
  EXPECT_EQ(h.count(3), 6u);
  EXPECT_EQ(h.count(7), 1u);
  EXPECT_EQ(h.count(0), 0u);
  EXPECT_EQ(h.distinct(), 2u);
  EXPECT_EQ(h.alphabet_size(), 10u);
}

TEST(CodeBuilder, EmptyAlphabet) {
  const auto lengths = build_code_lengths({0, 0, 0}, 10);
  EXPECT_EQ(lengths, (std::vector<std::uint8_t>{0, 0, 0}));
}

TEST(CodeBuilder, SingleSymbolGetsLengthOne) {
  const auto lengths = build_code_lengths({0, 42, 0}, 10);
  EXPECT_EQ(lengths, (std::vector<std::uint8_t>{0, 1, 0}));
}

TEST(CodeBuilder, TwoSymbols) {
  const auto lengths = build_code_lengths({5, 100}, 10);
  EXPECT_EQ(lengths, (std::vector<std::uint8_t>{1, 1}));
}

TEST(CodeBuilder, RespectsLengthLimit) {
  // Extremely skewed distribution would want very long codes.
  std::vector<std::uint64_t> freqs;
  std::uint64_t f = 1;
  for (int i = 0; i < 30; ++i) {
    freqs.push_back(f);
    f = f * 2 + 1;
  }
  for (const unsigned limit : {5u, 8u, 10u, 15u}) {
    const auto lengths = build_code_lengths(freqs, limit);
    for (const auto len : lengths) {
      EXPECT_GT(len, 0u);
      EXPECT_LE(len, limit);
    }
    // A length-limited code must still satisfy Kraft with equality (the
    // package-merge result is complete).
    EXPECT_EQ(kraft_sum(lengths, limit), 1ull << limit);
  }
}

TEST(CodeBuilder, ThrowsWhenLimitTooSmall) {
  std::vector<std::uint64_t> freqs(10, 1);  // 10 symbols need >= 4 bits
  EXPECT_THROW(build_code_lengths(freqs, 3), Error);
  EXPECT_NO_THROW(build_code_lengths(freqs, 4));
}

TEST(CodeBuilder, MatchesHuffmanCostWhenUnconstrained) {
  // With a generous limit, package-merge yields an optimal (Huffman)
  // code; verify total cost against a classic two-queue Huffman build.
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    const auto freqs = random_freqs(64, seed, false);
    const auto lengths = build_code_lengths(freqs, 15);
    std::uint64_t pm_cost = 0;
    for (std::size_t s = 0; s < freqs.size(); ++s) pm_cost += freqs[s] * lengths[s];

    // Reference Huffman cost: repeatedly merge two smallest weights; the
    // total cost equals the sum of all internal node weights.
    std::multimap<std::uint64_t, int> heap;
    for (const auto f : freqs) heap.emplace(f, 0);
    std::uint64_t huff_cost = 0;
    while (heap.size() > 1) {
      const auto a = heap.begin()->first;
      heap.erase(heap.begin());
      const auto b = heap.begin()->first;
      heap.erase(heap.begin());
      huff_cost += a + b;
      heap.emplace(a + b, 0);
    }
    EXPECT_EQ(pm_cost, huff_cost) << "seed=" << seed;
  }
}

TEST(CodeBuilder, MonotoneLengthsByFrequency) {
  const auto freqs = random_freqs(100, 99, false);
  const auto lengths = build_code_lengths(freqs, 15);
  for (std::size_t a = 0; a < freqs.size(); ++a) {
    for (std::size_t b = 0; b < freqs.size(); ++b) {
      if (freqs[a] > freqs[b]) {
        EXPECT_LE(lengths[a], lengths[b])
            << "more frequent symbol must not get a longer code";
      }
    }
  }
}

TEST(CanonicalCodes, PrefixFreeAndOrdered) {
  const auto freqs = random_freqs(30, 5, false);
  const auto lengths = build_code_lengths(freqs, 12);
  const auto codes = assign_canonical_codes(lengths);
  // Prefix-freedom: no code is a prefix of another (MSB-first).
  for (std::size_t a = 0; a < codes.size(); ++a) {
    for (std::size_t b = 0; b < codes.size(); ++b) {
      if (a == b || codes[a].length == 0 || codes[b].length == 0) continue;
      if (codes[a].length > codes[b].length) continue;
      const unsigned shift = codes[b].length - codes[a].length;
      EXPECT_FALSE((codes[b].code >> shift) == codes[a].code && a != b)
          << "code " << a << " is a prefix of code " << b;
    }
  }
}

TEST(CanonicalCodes, OverSubscribedThrows) {
  // Three symbols of length 1 violate Kraft.
  EXPECT_THROW(assign_canonical_codes({1, 1, 1}), Error);
}

TEST(ReverseBits, Basic) {
  EXPECT_EQ(reverse_bits(0b1, 1), 0b1u);
  EXPECT_EQ(reverse_bits(0b10, 2), 0b01u);
  EXPECT_EQ(reverse_bits(0b1101, 4), 0b1011u);
  EXPECT_EQ(reverse_bits(0, 10), 0u);
}

TEST(Decoder, PackedEntryRoundTrips) {
  // The packed uint32 layout is shared with the fused codec tables.
  const std::uint32_t e = Decoder::pack_entry(0x1234, 11);
  EXPECT_EQ(Decoder::entry_symbol(e), 0x1234u);
  EXPECT_EQ(Decoder::entry_length(e), 11u);
  // Entry 0 is reserved for table holes: any real entry has length >= 1.
  EXPECT_NE(Decoder::pack_entry(0, 1), 0u);
}

TEST(Decoder, DegenerateSingleSymbolTree) {
  // A one-symbol alphabet gets a single 1-bit code; every peeked pattern
  // with a 0 in the low bit decodes to it, a 1 is an invalid codeword.
  const auto lengths = build_code_lengths({0, 7, 0}, 10);
  ASSERT_EQ(lengths[1], 1u);
  const Encoder enc(assign_canonical_codes(lengths));
  const Decoder dec(lengths, 10);
  BitWriter w;
  for (int i = 0; i < 100; ++i) enc.encode(1, w);
  const Bytes buf = w.finish();
  BitReader r(buf);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(dec.decode(r), 1u);
  EXPECT_FALSE(r.overflowed());
}

TEST(Decoder, AllCodewordLengthLimits) {
  // CWL 9..15: the full range the bit codec accepts. Skewed frequencies
  // force codes at the limit; every tree must round-trip.
  std::vector<std::uint64_t> freqs(286);
  std::uint64_t f = 1;
  for (std::size_t s = 0; s < freqs.size(); ++s) {
    freqs[s] = f;
    if (s % 10 == 9) f *= 2;  // geometric decay -> long tail codes
  }
  for (unsigned cwl = 9; cwl <= 15; ++cwl) {
    const auto lengths = build_code_lengths(freqs, cwl);
    unsigned max_len = 0;
    for (const auto len : lengths) max_len = std::max<unsigned>(max_len, len);
    EXPECT_EQ(max_len, cwl) << "skew should saturate the limit";
    const Encoder enc(assign_canonical_codes(lengths));
    const Decoder dec(lengths, cwl);
    Rng rng(cwl);
    std::vector<std::uint16_t> symbols(2000);
    for (auto& s : symbols) s = static_cast<std::uint16_t>(rng.next_below(286));
    BitWriter w;
    for (const auto s : symbols) enc.encode(s, w);
    const Bytes buf = w.finish();
    BitReader r(buf);
    for (const auto expected : symbols) ASSERT_EQ(dec.decode(r), expected);
    EXPECT_FALSE(r.overflowed()) << "cwl=" << cwl;
  }
}

TEST(Decoder, InvalidPatternYieldsInvalidSymbol) {
  // Incomplete code: one symbol of length 2 leaves table holes.
  std::vector<std::uint8_t> lengths = {2};
  Decoder dec(lengths, 4);
  BitWriter w;
  w.write(0b11, 2);  // not the canonical code 00
  const Bytes buf = w.finish();
  BitReader r(buf);
  EXPECT_EQ(dec.decode(r), Decoder::kInvalidSymbol);
}

TEST(Decoder, FootprintMatchesTableBits) {
  std::vector<std::uint8_t> lengths = {1, 1};
  Decoder dec(lengths, 10);
  EXPECT_EQ(dec.table_size(), 1024u);
  EXPECT_EQ(dec.footprint_bytes(), 1024u * 4u);
}

TEST(Serial, RoundTrip) {
  const std::vector<std::uint8_t> lengths = {0, 1, 5, 10, 15, 0, 7};
  BitWriter w;
  write_code_lengths(lengths, w);
  const Bytes buf = w.finish();
  BitReader r(buf);
  EXPECT_EQ(read_code_lengths(lengths.size(), r), lengths);
}

// Property: encode-then-decode round trips for random alphabets, symbol
// streams, and codeword limits.
class HuffmanRoundTrip
    : public ::testing::TestWithParam<std::tuple<std::size_t, unsigned, int>> {};

TEST_P(HuffmanRoundTrip, EncodeDecode) {
  const auto [alphabet, limit, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 7919 + alphabet);
  // Skewed frequencies: rank-based geometric-ish decay.
  std::vector<std::uint64_t> freqs(alphabet);
  for (std::size_t s = 0; s < alphabet; ++s) {
    freqs[s] = 1 + rng.next_below(1 + 100000 / (s + 1));
  }
  const auto lengths = build_code_lengths(freqs, limit);
  const auto codes = assign_canonical_codes(lengths);
  const Encoder enc(codes);
  const Decoder dec(lengths, limit);

  std::vector<std::uint16_t> symbols(5000);
  for (auto& s : symbols) s = static_cast<std::uint16_t>(rng.next_below(alphabet));
  BitWriter w;
  for (const auto s : symbols) enc.encode(s, w);
  const std::uint64_t bits = w.bit_count();
  const Bytes buf = w.finish();

  // Cost accounting matches the bit count.
  std::vector<std::uint64_t> stream_freqs(alphabet, 0);
  for (const auto s : symbols) ++stream_freqs[s];
  EXPECT_EQ(enc.cost_bits(stream_freqs), bits);

  BitReader r(buf);
  for (const auto expected : symbols) {
    ASSERT_EQ(dec.decode(r), expected);
  }
  EXPECT_FALSE(r.overflowed());
}

INSTANTIATE_TEST_SUITE_P(
    AlphabetsAndLimits, HuffmanRoundTrip,
    ::testing::Combine(::testing::Values(std::size_t{2}, std::size_t{27},
                                         std::size_t{256}, std::size_t{286}),
                       ::testing::Values(10u, 12u, 15u),
                       ::testing::Values(1, 2)));

}  // namespace
}  // namespace gompresso::huffman
