// Unit and property tests for the LZ77 substrate: DEFLATE tables,
// matchers (incl. the minimal-staleness policy and DE constraints), the
// greedy parser, the DE parser invariant, and the reference decoder.
#include <gtest/gtest.h>

#include "datagen/datasets.hpp"
#include "lz77/deflate_tables.hpp"
#include "lz77/matcher.hpp"
#include "lz77/parser.hpp"
#include "lz77/ref_decoder.hpp"
#include "util/rng.hpp"

namespace gompresso::lz77 {
namespace {

TEST(DeflateTables, AllLengthsRoundTrip) {
  for (std::uint32_t len = kMinMatch; len <= kMaxMatch; ++len) {
    const BucketCode bc = encode_length(len);
    ASSERT_LT(bc.code, kNumLengthCodes);
    EXPECT_EQ(length_extra_bits(bc.code), bc.extra_bits);
    EXPECT_LT(bc.extra_value, 1u << bc.extra_bits << (bc.extra_bits ? 0 : 1));
    EXPECT_EQ(decode_length(bc.code, bc.extra_value), len);
  }
}

TEST(DeflateTables, AllDistancesRoundTrip) {
  for (std::uint32_t d = 1; d <= kMaxDistance; ++d) {
    const BucketCode bc = encode_distance(d);
    ASSERT_LT(bc.code, kNumDistanceCodes);
    EXPECT_EQ(distance_extra_bits(bc.code), bc.extra_bits);
    EXPECT_EQ(decode_distance(bc.code, bc.extra_value), d);
  }
}

TEST(DeflateTables, RfcSpotChecks) {
  // RFC 1951 anchor points.
  EXPECT_EQ(encode_length(3).code, 0u);
  EXPECT_EQ(encode_length(258).code, 28u);
  EXPECT_EQ(encode_length(258).extra_bits, 0u);
  EXPECT_EQ(encode_length(11).code, 8u);
  EXPECT_EQ(encode_length(11).extra_bits, 1u);
  EXPECT_EQ(encode_distance(1).code, 0u);
  EXPECT_EQ(encode_distance(5).code, 4u);
  EXPECT_EQ(encode_distance(5).extra_bits, 1u);
  EXPECT_EQ(encode_distance(24577).code, 29u);
  EXPECT_EQ(encode_distance(32768).code, 29u);
}

TEST(MatchLength, FindsCommonPrefix) {
  const Bytes data = {'a', 'b', 'c', 'd', 'x', 'a', 'b', 'c', 'd', 'y'};
  EXPECT_EQ(match_length(data, 0, 5, 5), 4u);
  EXPECT_EQ(match_length(data, 0, 5, 2), 2u);  // cap respected
  EXPECT_EQ(match_length(data, 4, 9, 1), 0u);
}

TEST(MatchLength, LongMatchesUseWideCompare) {
  Bytes data(100, 'q');
  data.insert(data.end(), 100, 'q');
  data[150] = 'z';
  EXPECT_EQ(match_length(data, 0, 100, 100), 50u);
}

TEST(HashMatcher, FindsInsertedTrigram) {
  MatcherConfig cfg;
  cfg.staleness = 0;
  HashMatcher m(cfg);
  const std::string s = "hello world hello there";
  const ByteSpan input = as_bytes(s);
  for (std::uint32_t p = 0; p + 3 <= 11; ++p) m.insert(input, p);
  const Match match = m.find(input, 12, 12);
  ASSERT_TRUE(match.found());
  EXPECT_EQ(match.pos, 0u);
  EXPECT_EQ(match.len, 6u);  // "hello " including the trailing space
}

TEST(HashMatcher, RespectsWindow) {
  MatcherConfig cfg;
  cfg.window_size = 256;
  cfg.staleness = 0;
  HashMatcher m(cfg);
  Bytes data(1000, 'x');
  data[0] = 'a';
  data[1] = 'b';
  data[2] = 'c';
  data[900] = 'a';
  data[901] = 'b';
  data[902] = 'c';
  m.insert(data, 0);
  // Candidate at 0 is 900 bytes back, outside the 256-byte window; the
  // RLE probe at 899 ('x') does not match "abc".
  EXPECT_FALSE(m.find(data, 900, 900).found());
}

TEST(HashMatcher, StalenessKeepsOldEntries) {
  MatcherConfig cfg;
  cfg.staleness = 1024;
  HashMatcher m(cfg);
  Bytes data(5000, 0);
  // Same trigram at 0, 100 and 2000.
  const char* pat = "XYZabc";
  for (int i = 0; i < 6; ++i) data[0 + i] = pat[i];
  for (int i = 0; i < 6; ++i) data[100 + i] = pat[i];
  for (int i = 0; i < 6; ++i) data[2000 + i] = pat[i];
  m.insert(data, 0);
  m.insert(data, 100);  // within staleness of entry 0 -> keep 0
  Match match = m.find(data, 2000, 2000);
  ASSERT_TRUE(match.found());
  EXPECT_EQ(match.pos, 0u);
  m.insert(data, 2000);  // 2000 bytes behind -> replace
  match = m.find(data, 2006, 2006);
  // After replacement, the recent entry wins (probe from a fresh copy).
  for (int i = 0; i < 6; ++i) data[3000 + i] = pat[i];
  match = m.find(data, 3000, 3000);
  ASSERT_TRUE(match.found());
  EXPECT_EQ(match.pos, 2000u);
}

TEST(HashMatcher, ZeroStalenessAlwaysReplaces) {
  MatcherConfig cfg;
  cfg.staleness = 0;
  HashMatcher m(cfg);
  Bytes data(300, 0);
  const char* pat = "QRSt";
  for (int i = 0; i < 4; ++i) data[0 + i] = pat[i];
  for (int i = 0; i < 4; ++i) data[50 + i] = pat[i];
  for (int i = 0; i < 4; ++i) data[200 + i] = pat[i];
  m.insert(data, 0);
  m.insert(data, 50);
  const Match match = m.find(data, 200, 200);
  ASSERT_TRUE(match.found());
  EXPECT_EQ(match.pos, 50u);
}

TEST(HashMatcher, RleProbeFindsRuns) {
  MatcherConfig cfg;
  cfg.staleness = 1024;
  HashMatcher m(cfg);
  Bytes data(100, 'r');
  // No inserts at all: the pos-1 probe alone must find the run.
  const Match match = m.find(data, 1, 1);
  ASSERT_TRUE(match.found());
  EXPECT_EQ(match.pos, 0u);
  EXPECT_EQ(match.len, cfg.max_match);
}

TEST(DeConstraintTest, AllowedCapSemantics) {
  DeConstraint de;
  de.begin_group(100);
  de.add_backref(120, 140);
  de.add_backref(160, 170);
  EXPECT_EQ(de.allowed_cap(50), 70u);    // run ends at first forbidden start
  EXPECT_EQ(de.allowed_cap(119), 1u);    // right before a forbidden interval
  EXPECT_EQ(de.allowed_cap(120), 0u);    // inside
  EXPECT_EQ(de.allowed_cap(139), 0u);    // inside (last byte)
  EXPECT_EQ(de.allowed_cap(140), 20u);   // literal gap between the two
  EXPECT_EQ(de.allowed_cap(170), kNoLimit);  // past the last forbidden
  de.begin_group(200);
  EXPECT_EQ(de.allowed_cap(120), kNoLimit);  // previous group's refs cleared
}

TEST(ChainMatcher, FindsBestOfChain) {
  MatcherConfig cfg;
  cfg.window_size = 4096;
  cfg.max_match = 64;
  ChainMatcher m(cfg, 16);
  const std::string s = "abcd____abcdefgh____abcdefgh";
  const ByteSpan input = as_bytes(s);
  for (std::uint32_t p = 0; p + 3 <= 20; ++p) m.insert(input, p);
  const Match match = m.find(input, 20, 20);
  ASSERT_TRUE(match.found());
  EXPECT_EQ(match.pos, 8u);  // the longer candidate, deeper in the chain
  EXPECT_EQ(match.len, 8u);
}

TEST(ChainMatcher, DepthOneBehavesGreedily) {
  MatcherConfig cfg;
  cfg.window_size = 4096;
  ChainMatcher m(cfg, 1);
  const std::string s = "abcdefgh____abcd____abcdefgh";
  const ByteSpan input = as_bytes(s);
  for (std::uint32_t p = 0; p + 3 <= 20; ++p) m.insert(input, p);
  const Match match = m.find(input, 20, 20);
  ASSERT_TRUE(match.found());
  EXPECT_EQ(match.pos, 12u);  // most recent only
}

// Parser round trip on assorted inputs via the reference decoder.
class ParserRoundTrip : public ::testing::TestWithParam<std::tuple<bool, int>> {};

TEST_P(ParserRoundTrip, ReconstructsInput) {
  const auto [de, which] = GetParam();
  Bytes input;
  switch (which) {
    case 0: input = datagen::wikipedia(100000); break;
    case 1: input = datagen::matrix(100000); break;
    case 2: input = datagen::random_bytes(50000); break;
    case 3: input = Bytes(70000, 'z'); break;
    case 4: {
      datagen::NestingConfig nc;
      nc.families = 4;
      input = datagen::make_nesting(60000, nc);
      break;
    }
    default: FAIL();
  }
  ParserOptions opt;
  opt.dependency_elimination = de;
  ParseStats stats;
  const TokenBlock tokens = parse(input, opt, &stats);
  validate(tokens);
  EXPECT_EQ(decode_reference(tokens), input);
  EXPECT_EQ(stats.sequences, tokens.sequences.size());
  EXPECT_EQ(stats.literal_bytes, tokens.literals.size());
  EXPECT_EQ(stats.match_bytes + stats.literal_bytes, input.size());
}

INSTANTIATE_TEST_SUITE_P(Inputs, ParserRoundTrip,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Values(0, 1, 2, 3, 4)));

// The DE invariant, checked directly on the parse output: within every
// group of 32 sequences, no back-reference source may overlap the output
// interval of another back-reference in the same group.
TEST(DependencyElimination, NoIntraGroupBackrefDependencies) {
  for (const int which : {0, 1, 3}) {
    Bytes input = which == 0   ? datagen::wikipedia(200000)
                  : which == 1 ? datagen::matrix(200000)
                               : Bytes(150000, 'k');
    ParserOptions opt;
    opt.dependency_elimination = true;
    const TokenBlock tokens = parse(input, opt, nullptr);
    validate(tokens);

    std::uint64_t out_pos = 0;
    std::size_t i = 0;
    while (i < tokens.sequences.size()) {
      const std::size_t group_end = std::min(i + 32, tokens.sequences.size());
      const std::uint64_t group_base = out_pos;
      // Collect this group's back-reference output intervals.
      std::vector<std::pair<std::uint64_t, std::uint64_t>> ref_out;
      std::vector<std::pair<std::uint64_t, std::uint64_t>> ref_src;
      std::vector<std::uint64_t> own_start;
      for (std::size_t k = i; k < group_end; ++k) {
        const Sequence& s = tokens.sequences[k];
        own_start.push_back(out_pos);
        out_pos += s.literal_len;
        if (s.match_len != 0) {
          ref_src.emplace_back(out_pos - s.match_dist,
                               out_pos - s.match_dist + s.match_len);
          ref_out.emplace_back(out_pos, out_pos + s.match_len);
          out_pos += s.match_len;
        } else {
          ref_src.emplace_back(0, 0);
          ref_out.emplace_back(out_pos, out_pos);
        }
      }
      // No source interval may intersect another lane's output interval,
      // unless it is the lane's own forward-copy overlap.
      for (std::size_t a = 0; a < ref_src.size(); ++a) {
        const auto [sa, ea] = ref_src[a];
        if (sa == ea) continue;
        for (std::size_t b = 0; b < ref_out.size(); ++b) {
          const auto [ob, eb] = ref_out[b];
          if (ob == eb) continue;
          const bool intersects = sa < eb && ob < ea;
          if (!intersects) continue;
          // Permitted only when reading one's own output: a forward
          // self-copy (dist >= 1) may overlap its own interval, and may
          // begin below it (in prior-group output or group literals).
          EXPECT_TRUE(a == b)
              << "group at " << group_base << ": lane " << a
              << " source [" << sa << "," << ea << ") overlaps lane " << b
              << " output [" << ob << "," << eb << ")";
        }
      }
      i = group_end;
    }
  }
}

TEST(DependencyElimination, CostsSomeCompressionRatio) {
  const Bytes input = datagen::wikipedia(400000);
  ParserOptions base;
  ParseStats s_plain, s_de;
  const TokenBlock plain = parse(input, base, &s_plain);
  ParserOptions de_opt = base;
  de_opt.dependency_elimination = true;
  const TokenBlock de = parse(input, de_opt, &s_de);
  // DE must not *gain* matches, and the paper reports a modest loss.
  EXPECT_LE(s_de.match_bytes, s_plain.match_bytes);
  EXPECT_GT(s_de.match_bytes, s_plain.match_bytes / 2)
      << "DE should lose far less than half the match coverage";
}

TEST(RefDecoder, RejectsBadDistance) {
  TokenBlock block;
  block.sequences.push_back({2, 5, 10});  // distance 10 > 2 bytes produced
  block.sequences.push_back({0, 0, 0});
  block.literals = {'a', 'b'};
  block.uncompressed_size = 7;
  EXPECT_THROW(decode_reference(block), Error);
}

TEST(RefDecoder, RejectsLiteralMismatch) {
  TokenBlock block;
  block.sequences.push_back({3, 0, 0});
  block.literals = {'a', 'b'};  // claims 3, provides 2
  block.uncompressed_size = 3;
  EXPECT_THROW(validate(block), Error);
}

TEST(RefDecoder, RejectsMissingTerminator) {
  TokenBlock block;
  block.sequences.push_back({1, 3, 1});
  block.literals = {'a'};
  block.uncompressed_size = 4;
  EXPECT_THROW(validate(block), Error);
}

TEST(RefDecoder, OverlappingRunSemantics) {
  TokenBlock block;
  block.sequences.push_back({1, 7, 1});  // 'a' then 7 copies at dist 1
  block.sequences.push_back({0, 0, 0});
  block.literals = {'a'};
  block.uncompressed_size = 8;
  EXPECT_EQ(decode_reference(block), Bytes(8, 'a'));
}

TEST(RefDecoder, AlternatingOverlap) {
  TokenBlock block;
  block.sequences.push_back({2, 6, 2});  // "ab" -> "abababab"
  block.sequences.push_back({0, 0, 0});
  block.literals = {'a', 'b'};
  block.uncompressed_size = 8;
  const Bytes expect = {'a', 'b', 'a', 'b', 'a', 'b', 'a', 'b'};
  EXPECT_EQ(decode_reference(block), expect);
}

}  // namespace
}  // namespace gompresso::lz77
