// Unit tests for src/util: CRC32, varints, RNG, Zipf, thread pool,
// arithmetic helpers.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <thread>

#include "util/bounded_queue.hpp"
#include "util/buffer_pool.hpp"
#include "util/byte_reader.hpp"
#include "util/common.hpp"
#include "util/crc32.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/varint.hpp"

namespace gompresso {
namespace {

TEST(Crc32, KnownVectors) {
  // Standard test vector: CRC-32("123456789") = 0xCBF43926.
  const std::string s = "123456789";
  EXPECT_EQ(crc32(as_bytes(s)), 0xCBF43926u);
  const std::string empty;
  EXPECT_EQ(crc32(as_bytes(empty)), 0u);
  const std::string a = "a";
  EXPECT_EQ(crc32(as_bytes(a)), 0xE8B7BE43u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  Rng rng(1);
  Bytes data(1000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u32());
  const std::uint32_t whole = crc32(data);
  for (const std::size_t split : {std::size_t{0}, std::size_t{1}, std::size_t{499},
                                  std::size_t{999}, std::size_t{1000}}) {
    const std::uint32_t part1 = crc32(ByteSpan(data.data(), split));
    const std::uint32_t part2 = crc32(ByteSpan(data.data() + split, 1000 - split), part1);
    EXPECT_EQ(part2, whole) << "split=" << split;
  }
}

TEST(Crc32, DetectsSingleBitFlips) {
  Bytes data(64, 0xAB);
  const std::uint32_t base = crc32(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] ^= 1;
    EXPECT_NE(crc32(data), base) << "flip at " << i;
    data[i] ^= 1;
  }
}

TEST(Varint, RoundTripBoundaries) {
  const std::uint64_t values[] = {0,    1,    127,  128,   16383, 16384,
                                  1 << 21, (1ull << 35) - 1, 0xFFFFFFFFFFFFFFFFull};
  for (const auto v : values) {
    Bytes buf;
    put_varint(buf, v);
    std::size_t pos = 0;
    EXPECT_EQ(get_varint(buf, pos), v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(Varint, EncodedSizeIsMinimal) {
  Bytes buf;
  put_varint(buf, 127);
  EXPECT_EQ(buf.size(), 1u);
  buf.clear();
  put_varint(buf, 128);
  EXPECT_EQ(buf.size(), 2u);
  buf.clear();
  put_varint(buf, 0xFFFFFFFFFFFFFFFFull);
  EXPECT_EQ(buf.size(), 10u);
}

TEST(Varint, TruncatedInputThrows) {
  Bytes buf;
  put_varint(buf, 1u << 30);
  buf.pop_back();
  std::size_t pos = 0;
  EXPECT_THROW(get_varint(buf, pos), Error);
}

TEST(Varint, U32RoundTrip) {
  Bytes buf;
  put_u32le(buf, 0xDEADBEEFu);
  std::size_t pos = 0;
  EXPECT_EQ(get_u32le(buf, pos), 0xDEADBEEFu);
  EXPECT_EQ(pos, 4u);
  pos = 2;
  EXPECT_THROW(get_u32le(buf, pos), Error);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LE(same, 1);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (const std::uint64_t bound : {1ull, 2ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Zipf, RankZeroIsMostFrequent) {
  Rng rng(11);
  ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[50]);
  EXPECT_GT(counts[1], counts[50]);
}

TEST(Zipf, CoversTail) {
  Rng rng(13);
  ZipfSampler zipf(50, 0.8);
  std::set<std::size_t> seen;
  for (int i = 0; i < 20000; ++i) seen.insert(zipf.sample(rng));
  EXPECT_GT(seen.size(), 40u);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroAndOneCounts) {
  ThreadPool pool(4);
  std::atomic<int> n{0};
  pool.parallel_for(0, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 0);
  pool.parallel_for(1, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 1);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 37) throw Error("boom");
                                 }),
               Error);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(64, [&](std::size_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 64u * 63u / 2);
  }
}

TEST(ThreadPool, WorkerIndicesAreBoundedAndExclusive) {
  ThreadPool pool(4);
  ASSERT_EQ(pool.parallelism(), 4u);
  std::vector<std::atomic<int>> per_worker(pool.parallelism());
  std::atomic<int> total{0};
  pool.parallel_for_worker(500, [&](std::size_t worker, std::size_t) {
    ASSERT_LT(worker, pool.parallelism());
    per_worker[worker].fetch_add(1);
    total.fetch_add(1);
  });
  EXPECT_EQ(total.load(), 500);
}

TEST(ThreadPool, ChunkedCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(777);
  pool.parallel_for_chunked(777, 13, [&](std::size_t begin, std::size_t end) {
    ASSERT_LE(end, 777u);
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, NestedSamePoolRunsInlineWithEnclosingIndex) {
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  pool.parallel_for_worker(8, [&](std::size_t outer_worker, std::size_t) {
    pool.parallel_for_worker(10, [&](std::size_t inner_worker, std::size_t) {
      // Same pool: the nested call must keep the enclosing worker's
      // identity so per-worker slots stay exclusive.
      ASSERT_EQ(inner_worker, outer_worker);
      inner_total.fetch_add(1);
    });
  });
  EXPECT_EQ(inner_total.load(), 8 * 10);
}

TEST(ThreadPool, NestedDifferentPoolDispatchesWithOwnBounds) {
  // A job in pool A calling pool B must respect B's (smaller) worker
  // index space — regression for the cross-pool inline-index bug.
  ThreadPool outer(4);
  ThreadPool inner(2);
  std::atomic<int> inner_total{0};
  outer.parallel_for(6, [&](std::size_t) {
    inner.parallel_for_worker(20, [&](std::size_t worker, std::size_t) {
      ASSERT_LT(worker, inner.parallelism());
      inner_total.fetch_add(1);
    });
  });
  EXPECT_EQ(inner_total.load(), 6 * 20);
}

TEST(ThreadPool, SingleThreadFallback) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 0u);  // caller-only execution
  std::vector<int> hits(50, 0);
  pool.parallel_for(50, [&](std::size_t i) { hits[i]++; });
  for (const auto h : hits) EXPECT_EQ(h, 1);
}

TEST(CommonHelpers, Arithmetic) {
  EXPECT_EQ(div_ceil(10, 3), 4);
  EXPECT_EQ(div_ceil(9, 3), 3);
  EXPECT_EQ(div_ceil<std::uint64_t>(0, 5), 0u);
  // Must not wrap for dividends near the type maximum (untrusted sizes).
  EXPECT_EQ(div_ceil<std::uint64_t>(~0ull, 2), (1ull << 63));
  EXPECT_EQ(round_up(10, 8), 16);
  EXPECT_EQ(round_up(16, 8), 16);
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(4096));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(12));
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(1023), 9u);
  EXPECT_EQ(floor_log2(1024), 10u);
}

TEST(CommonHelpers, CountLeadingZeros) {
  EXPECT_EQ(count_leading_zeros(0), 32);
  EXPECT_EQ(count_leading_zeros(1), 31);
  EXPECT_EQ(count_leading_zeros(0x80000000u), 0);
}

TEST(CommonHelpers, CheckThrows) {
  EXPECT_NO_THROW(check(true, "ok"));
  EXPECT_THROW(check(false, "bad"), Error);
}

TEST(ThreadPoolSubmit, TasksRunAndComplete) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&] { ++done; });
    }
  }  // destruction joins workers and drains whatever they did not reach
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPoolSubmit, SynchronousWithoutWorkers) {
  ThreadPool pool(1);
  EXPECT_FALSE(pool.async());
  int hits = 0;
  pool.submit([&] { ++hits; });
  EXPECT_EQ(hits, 1);  // ran inline, already visible
}

TEST(ThreadPoolSubmit, InterleavesWithParallelFor) {
  std::atomic<int> task_hits{0};
  std::atomic<int> for_hits{0};
  {
    ThreadPool pool(3);
    for (int round = 0; round < 5; ++round) {
      for (int i = 0; i < 10; ++i) pool.submit([&] { ++task_hits; });
      pool.parallel_for(20, [&](std::size_t) { ++for_hits; });
    }
  }
  EXPECT_EQ(task_hits.load(), 50);
  EXPECT_EQ(for_hits.load(), 100);
}

TEST(BoundedQueue, FifoOrderAndBackpressure) {
  util::BoundedQueue<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.push(i));
  EXPECT_EQ(q.size(), 4u);
  // A full queue blocks push; a consumer thread unblocks it.
  std::thread consumer([&] {
    int v;
    for (int i = 0; i < 5; ++i) {
      EXPECT_TRUE(q.pop(v));
      EXPECT_EQ(v, i);
    }
  });
  EXPECT_TRUE(q.push(4));  // may block until the consumer drains one
  consumer.join();
  EXPECT_TRUE(q.empty());
}

TEST(BoundedQueue, CloseReleasesProducersAndConsumers) {
  util::BoundedQueue<int> q(2);
  EXPECT_TRUE(q.push(1));
  q.close();
  EXPECT_FALSE(q.push(2));  // rejected after close
  int v = 0;
  EXPECT_TRUE(q.pop(v));  // queued items still drain
  EXPECT_EQ(v, 1);
  EXPECT_FALSE(q.pop(v));  // then pop reports closed
  EXPECT_FALSE(q.try_pop(v));
}

TEST(BoundedQueue, ManyProducersManyConsumers) {
  util::BoundedQueue<int> q(8);
  std::atomic<long> sum{0};
  std::atomic<int> popped{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < 3; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < 50; ++i) q.push(p * 50 + i);
    });
  }
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&] {
      int v;
      while (popped.load() < 150 && q.pop(v)) {
        sum += v;
        if (popped.fetch_add(1) + 1 == 150) q.close();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(popped.load(), 150);
  EXPECT_EQ(sum.load(), 150L * 149 / 2);
}

TEST(BufferPool, ReusesCapacityAndCountsPeaks) {
  util::BufferPool pool;
  {
    util::PooledBuffer a = pool.acquire(1000);
    util::PooledBuffer b = pool.acquire(2000);
    EXPECT_EQ(a.size(), 1000u);
    EXPECT_EQ(b.size(), 2000u);
    const auto st = pool.stats();
    EXPECT_EQ(st.outstanding, 2u);
    EXPECT_EQ(st.allocations, 2u);
    EXPECT_GE(st.peak_outstanding_bytes, 3000u);
  }
  // Both buffers returned; re-acquiring within capacity allocates nothing.
  for (int i = 0; i < 10; ++i) {
    util::PooledBuffer c = pool.acquire(1500);
    EXPECT_EQ(c.size(), 1500u);
  }
  const auto st = pool.stats();
  EXPECT_EQ(st.outstanding, 0u);
  EXPECT_EQ(st.allocations, 2u);
  EXPECT_EQ(st.reuses, 10u);
  EXPECT_EQ(st.peak_outstanding, 2u);
}

TEST(BufferPool, MoveTransfersOwnership) {
  util::BufferPool pool;
  util::PooledBuffer a = pool.acquire(100);
  util::PooledBuffer b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(pool.stats().outstanding, 1u);
  b.reset();
  EXPECT_EQ(pool.stats().outstanding, 0u);
}

TEST(ByteReader, SpanReaderPrimitives) {
  Bytes data;
  put_u32le(data, 0xDEADBEEFu);
  put_varint(data, 0);
  put_varint(data, 300);
  put_varint(data, 0xFFFFFFFFFFFFFFFFull);
  data.push_back(0x42);
  util::SpanReader r{ByteSpan(data)};
  EXPECT_EQ(r.read_u32le(), 0xDEADBEEFu);
  EXPECT_EQ(r.read_varint(), 0u);
  EXPECT_EQ(r.read_varint(), 300u);
  EXPECT_EQ(r.read_varint(), 0xFFFFFFFFFFFFFFFFull);
  EXPECT_EQ(r.read_u8(), 0x42);
  EXPECT_EQ(r.offset(), data.size());
  EXPECT_TRUE(r.at_end());
  EXPECT_THROW(r.read_u8(), Error);
}

TEST(ByteReader, IstreamReaderMatchesSpanReaderAndSkips) {
  Bytes data(100000);
  Rng rng(3);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u32());
  std::istringstream in(std::string(data.begin(), data.end()));
  util::IstreamReader r(in, /*buffer_size=*/257);  // awkward size on purpose
  Bytes head(1000);
  r.read_exact(MutableByteSpan(head.data(), head.size()));
  EXPECT_TRUE(std::equal(head.begin(), head.end(), data.begin()));
  r.skip(50000);
  EXPECT_EQ(r.offset(), 51000u);
  EXPECT_EQ(r.read_u8(), data[51000]);
  r.skip(data.size() - 51001);
  EXPECT_TRUE(r.at_end());
}

TEST(ByteReader, TruncatedVarintThrows) {
  const Bytes data = {0x80, 0x80};  // continuation bits with no terminator
  util::SpanReader r{ByteSpan(data)};
  EXPECT_THROW(r.read_varint(), Error);
}

}  // namespace
}  // namespace gompresso
