// Tests for the serve subsystem: DecodeSession semantics (seek/read
// equivalence with batch decompression, block-boundary straddling,
// EOF behaviour, randomized read_at fuzz), the SeekIndex and its
// sidecar, the LRU cache, and the prefetch pipeline.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "core/gompresso.hpp"
#include "datagen/datasets.hpp"
#include "serve/fault_source.hpp"
#include "util/rng.hpp"
#include "util/varint.hpp"

namespace gompresso {
namespace {

struct Fixture {
  Bytes input;
  Bytes file;  // single GMPZ container

  explicit Fixture(std::size_t size = 300000, std::uint32_t block_size = 32 * 1024,
                   Codec codec = Codec::kBit) {
    input = datagen::wikipedia(size);
    CompressOptions opt;
    opt.codec = codec;
    opt.block_size = block_size;
    file = compress(input, opt);
  }

  DecodeSession session(serve::SessionOptions opt = {}) const {
    return DecodeSession(serve::memory_source(file), opt);
  }
};

TEST(SeekIndex, MatchesHeaderForContainer) {
  const Fixture f;
  const auto source = serve::memory_source(f.file);
  const serve::SeekIndex index = serve::SeekIndex::build(*source);
  EXPECT_FALSE(index.is_stream());
  EXPECT_EQ(index.num_segments(), 1u);
  EXPECT_EQ(index.total_uncompressed(), f.input.size());
  EXPECT_EQ(index.source_size(), f.file.size());
  EXPECT_EQ(index.compressed_end(), f.file.size());
  // Blocks tile [0, total) without gaps and point inside the file.
  std::uint64_t expect_off = 0;
  for (std::size_t b = 0; b < index.num_blocks(); ++b) {
    const serve::BlockEntry& e = index.block(b);
    EXPECT_EQ(e.uncomp_offset, expect_off);
    EXPECT_GT(e.uncomp_size, 0u);
    EXPECT_LE(e.comp_offset + e.comp_size, f.file.size());
    expect_off += e.uncomp_size;
  }
  EXPECT_EQ(expect_off, f.input.size());
}

TEST(SeekIndex, BlockContainingIsExact) {
  const Fixture f;
  const auto source = serve::memory_source(f.file);
  const serve::SeekIndex index = serve::SeekIndex::build(*source);
  for (std::size_t b = 0; b < index.num_blocks(); ++b) {
    const serve::BlockEntry& e = index.block(b);
    EXPECT_EQ(index.block_containing(e.uncomp_offset), b);
    EXPECT_EQ(index.block_containing(e.uncomp_offset + e.uncomp_size - 1), b);
  }
  EXPECT_THROW(index.block_containing(f.input.size()), Error);
}

TEST(SeekIndex, SidecarRoundTrip) {
  const Fixture f;
  const auto source = serve::memory_source(f.file);
  const serve::SeekIndex index = serve::SeekIndex::build(*source);
  const Bytes sidecar = index.serialize();
  const serve::SeekIndex back = serve::SeekIndex::deserialize(sidecar);
  ASSERT_EQ(back.num_blocks(), index.num_blocks());
  EXPECT_EQ(back.total_uncompressed(), index.total_uncompressed());
  EXPECT_EQ(back.source_size(), index.source_size());
  EXPECT_EQ(back.is_stream(), index.is_stream());
  for (std::size_t b = 0; b < index.num_blocks(); ++b) {
    EXPECT_EQ(back.block(b).comp_offset, index.block(b).comp_offset);
    EXPECT_EQ(back.block(b).comp_size, index.block(b).comp_size);
    EXPECT_EQ(back.block(b).uncomp_offset, index.block(b).uncomp_offset);
    EXPECT_EQ(back.block(b).uncomp_size, index.block(b).uncomp_size);
  }
}

TEST(SeekIndex, SidecarFileRoundTripAndMismatchDetected) {
  const Fixture f;
  const auto source = serve::memory_source(f.file);
  const serve::SeekIndex index = serve::SeekIndex::build(*source);
  const std::string path = "/tmp/gompresso_serve_test.gmpx";
  index.save(path);
  const serve::SeekIndex loaded = serve::SeekIndex::load(path);
  EXPECT_EQ(loaded.num_blocks(), index.num_blocks());

  // Opening a *different* source with this index must be rejected.
  const Fixture other(100000);
  EXPECT_THROW(DecodeSession(serve::memory_source(other.file),
                             serve::SeekIndex::load(path)),
               Error);
  // The matching source reopens without a scan and decodes correctly.
  DecodeSession session(serve::memory_source(f.file), serve::SeekIndex::load(path));
  const Bytes all = session.read_bytes_at(0, f.input.size());
  EXPECT_EQ(all, f.input);
  std::remove(path.c_str());
}

TEST(SeekIndex, RejectsGarbage) {
  const Bytes junk = {'N', 'O', 'P', 'E', 0, 0, 0, 0};
  const auto source = serve::memory_source(junk);
  EXPECT_THROW(serve::SeekIndex::build(*source), Error);
  EXPECT_THROW(serve::SeekIndex::deserialize(junk), Error);
}

TEST(DecodeSession, SequentialReadMatchesBatchDecode) {
  const Fixture f;
  auto session = f.session();
  EXPECT_EQ(session.size(), f.input.size());
  Bytes out;
  Bytes chunk(10000);  // deliberately not a divisor of the block size
  std::size_t n;
  while ((n = session.read(MutableByteSpan(chunk.data(), chunk.size()))) > 0) {
    out.insert(out.end(), chunk.begin(), chunk.begin() + static_cast<long>(n));
  }
  EXPECT_EQ(out, decompress_bytes(f.file));
  EXPECT_EQ(session.tell(), f.input.size());
}

TEST(DecodeSession, SeekThenReadEquivalence) {
  const Fixture f;
  auto session = f.session();
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t off = rng.next_below(static_cast<std::uint32_t>(f.input.size()));
    const std::size_t len = 1 + rng.next_below(5000);
    session.seek(off);
    Bytes got(len);
    const std::size_t n = session.read(MutableByteSpan(got.data(), got.size()));
    const std::size_t expect_n =
        std::min<std::size_t>(len, f.input.size() - static_cast<std::size_t>(off));
    ASSERT_EQ(n, expect_n) << "offset " << off;
    EXPECT_EQ(session.tell(), off + n);
    EXPECT_TRUE(std::equal(got.begin(), got.begin() + static_cast<long>(n),
                           f.input.begin() + static_cast<long>(off)))
        << "offset " << off << " len " << len;
  }
}

TEST(DecodeSession, ReadsStraddlingBlockBoundaries) {
  const Fixture f(200000, 16 * 1024);
  auto session = f.session();
  // Every boundary, +/- a few bytes around it.
  for (std::size_t b = 1; b < session.index().num_blocks(); ++b) {
    const std::uint64_t boundary = session.index().block(b).uncomp_offset;
    const std::uint64_t off = boundary - 3;
    Bytes got(7);
    ASSERT_EQ(session.read_at(off, MutableByteSpan(got.data(), got.size())),
              std::min<std::size_t>(7, f.input.size() - off));
    EXPECT_TRUE(std::equal(got.begin(), got.end(),
                           f.input.begin() + static_cast<long>(off)));
  }
  // One read across many blocks at once.
  const std::size_t len = 5 * 16 * 1024 + 123;
  Bytes got(len);
  ASSERT_EQ(session.read_at(1000, MutableByteSpan(got.data(), got.size())), len);
  EXPECT_TRUE(std::equal(got.begin(), got.end(), f.input.begin() + 1000));
}

TEST(DecodeSession, ZeroLengthAndPastEofReads) {
  const Fixture f(100000);
  auto session = f.session();
  Bytes empty;
  EXPECT_EQ(session.read(MutableByteSpan(empty.data(), 0)), 0u);
  EXPECT_EQ(session.read_at(50, MutableByteSpan(empty.data(), 0)), 0u);

  Bytes buf(100);
  // At EOF.
  session.seek(f.input.size());
  EXPECT_EQ(session.read(MutableByteSpan(buf.data(), buf.size())), 0u);
  // Far past EOF: seek is allowed, reads return 0.
  session.seek(f.input.size() + 123456);
  EXPECT_EQ(session.tell(), f.input.size() + 123456);
  EXPECT_EQ(session.read(MutableByteSpan(buf.data(), buf.size())), 0u);
  EXPECT_EQ(session.read_at(f.input.size(), MutableByteSpan(buf.data(), buf.size())),
            0u);
  // A read ending past EOF is shortened, not failed.
  const std::uint64_t off = f.input.size() - 10;
  EXPECT_EQ(session.read_at(off, MutableByteSpan(buf.data(), buf.size())), 10u);
  EXPECT_EQ(session.read_bytes_at(off, 100).size(), 10u);
  // An absurd requested length must clamp before allocating (an
  // untrusted range request is a short read, not a bad_alloc).
  EXPECT_EQ(session.read_bytes_at(off, SIZE_MAX).size(), 10u);
  EXPECT_EQ(session.read_bytes_at(f.input.size() + 1, SIZE_MAX).size(), 0u);
}

TEST(DecodeSession, RandomizedReadAtFuzzAgainstBatchSlices) {
  for (const Codec codec : {Codec::kBit, Codec::kByte, Codec::kTans}) {
    const Fixture f(250000, 16 * 1024, codec);
    const Bytes batch = decompress_bytes(f.file);
    serve::SessionOptions opt;
    opt.cache_blocks = 3;  // small cache to force evictions and re-decodes
    auto session = f.session(opt);
    Rng rng(codec == Codec::kBit ? 11u : codec == Codec::kByte ? 22u : 33u);
    for (int i = 0; i < 120; ++i) {
      const std::uint64_t off = rng.next_below(static_cast<std::uint32_t>(batch.size() + 50));
      const std::size_t len = rng.next_below(60000);
      const Bytes got = session.read_bytes_at(off, len);
      const std::size_t expect_n =
          off >= batch.size()
              ? 0
              : std::min<std::size_t>(len, batch.size() - static_cast<std::size_t>(off));
      ASSERT_EQ(got.size(), expect_n) << "codec " << static_cast<int>(codec)
                                      << " offset " << off << " len " << len;
      ASSERT_TRUE(std::equal(got.begin(), got.end(),
                             batch.begin() + static_cast<long>(off)))
          << "codec " << static_cast<int>(codec) << " offset " << off;
    }
    const serve::SessionStats st = session.stats();
    EXPECT_GT(st.evictions, 0u);  // the small cache really was exercised
    EXPECT_GT(st.cache_hits, 0u);
  }
}

TEST(DecodeSession, LruMakesRereadsCacheHits) {
  const Fixture f;
  auto session = f.session();
  Bytes buf(100);
  session.read_at(1000, MutableByteSpan(buf.data(), buf.size()));
  const std::uint64_t decoded_once = session.stats().blocks_decoded;
  for (int i = 0; i < 10; ++i) {
    session.read_at(1000 + i, MutableByteSpan(buf.data(), buf.size()));
  }
  const serve::SessionStats st = session.stats();
  EXPECT_EQ(st.blocks_decoded, decoded_once);  // no re-decode
  EXPECT_GE(st.cache_hits, 10u);
}

TEST(DecodeSession, MemoryStaysBoundedBySmallCache) {
  // A session configured for a 2-block window and 2-block cache over a
  // 25-block file must never hold more than window x (decoded + staging)
  // + cache pooled buffers, whatever it reads.
  const Fixture f(200000, 8 * 1024);
  serve::SessionOptions opt;
  opt.max_inflight_blocks = 2;
  opt.cache_blocks = 2;
  auto session = f.session(opt);
  ASSERT_GE(session.index().num_blocks(), 25u);
  Bytes all(f.input.size());
  session.read(MutableByteSpan(all.data(), all.size()));
  EXPECT_TRUE(std::equal(all.begin(), all.end(), f.input.begin()));
  const util::BufferPool::Stats pool = session.stats().pool;
  // Each in-flight decode holds a compressed staging buffer and an
  // output buffer (2 x window, +1 slack for a demanded block), the LRU
  // holds cache_blocks more — far below the 25 blocks of the file.
  EXPECT_LE(pool.peak_outstanding, 2u * (2u + 1u) + 2u);
  EXPECT_GT(session.stats().evictions, 0u);
}

TEST(DecodeSession, PrefetchPipelineDeliversIdenticalBytes) {
  const Fixture f(400000, 16 * 1024);
  serve::SessionOptions opt;
  opt.num_threads = 4;  // real workers even on a 1-vCPU host
  opt.max_inflight_blocks = 4;
  auto session = f.session(opt);
  Bytes out;
  Bytes chunk(30000);
  std::size_t n;
  while ((n = session.read(MutableByteSpan(chunk.data(), chunk.size()))) > 0) {
    out.insert(out.end(), chunk.begin(), chunk.begin() + static_cast<long>(n));
  }
  EXPECT_EQ(out, f.input);
  const serve::SessionStats st = session.stats();
  EXPECT_EQ(st.blocks_decoded, session.index().num_blocks());
  // The first read demands block 0 (nothing is prefetched yet) — a
  // demand decode even though a pool worker runs it; from then on the
  // pipeline stays ahead and the rest are lookahead decodes.
  EXPECT_GE(st.demand_decodes, 1u);
  EXPECT_GT(st.prefetch_decodes, 0u);
  EXPECT_EQ(st.demand_decodes + st.prefetch_decodes, st.blocks_decoded);
}

TEST(DecodeSession, ConcurrentRandomReadsFromManyThreads) {
  const Fixture f(300000, 16 * 1024);
  serve::SessionOptions opt;
  opt.num_threads = 3;
  opt.cache_blocks = 4;
  auto session = f.session(opt);
  ThreadPool readers(4);
  std::atomic<int> failures{0};
  readers.parallel_for(64, [&](std::size_t i) {
    Rng rng(static_cast<std::uint64_t>(i) + 100);
    const std::uint64_t off = rng.next_below(static_cast<std::uint32_t>(f.input.size()));
    const std::size_t len = 1 + rng.next_below(40000);
    const Bytes got = session.read_bytes_at(off, len);
    const std::size_t expect_n =
        std::min<std::size_t>(len, f.input.size() - static_cast<std::size_t>(off));
    if (got.size() != expect_n ||
        !std::equal(got.begin(), got.end(), f.input.begin() + static_cast<long>(off))) {
      ++failures;
    }
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST(DecodeSession, AbsurdInflightWindowStillReads) {
  // A wrapped --inflight value (e.g. stoul("-1")) must not livelock the
  // scheduler's window arithmetic.
  const Fixture f(100000, 16 * 1024);
  serve::SessionOptions opt;
  opt.max_inflight_blocks = SIZE_MAX;
  opt.num_threads = 2;
  auto session = f.session(opt);
  Bytes got(5000);
  ASSERT_EQ(session.read_at(40000, MutableByteSpan(got.data(), got.size())), 5000u);
  EXPECT_TRUE(std::equal(got.begin(), got.end(), f.input.begin() + 40000));
}

TEST(DecodeSession, ConcurrentSequentialReadsDeliverDisjointRanges) {
  // read() holds the cursor for the whole call: racing readers must
  // split the stream between them, never deliver the same bytes twice.
  const Fixture f(300000, 16 * 1024);
  auto session = f.session();
  std::atomic<std::uint64_t> delivered{0};
  ThreadPool readers(4);
  readers.parallel_for(4, [&](std::size_t) {
    Bytes chunk(7001);  // awkward size, forces many interleavings
    std::size_t n;
    while ((n = session.read(MutableByteSpan(chunk.data(), chunk.size()))) > 0) {
      delivered += n;
    }
  });
  // Duplicated delivery would push the total past the file size; a lost
  // cursor advance below it.
  EXPECT_EQ(delivered.load(), f.input.size());
  EXPECT_EQ(session.tell(), f.input.size());
}

TEST(SeekIndex, RejectsAdversarialSidecarOffsets) {
  // A crafted sidecar whose segment offset would wrap an additive bounds
  // check into acceptance must be rejected at load time.
  const Fixture f(100000);
  format::FileHeader header;
  {
    const auto source = serve::memory_source(f.file);
    const serve::SeekIndex index = serve::SeekIndex::build(*source);
    header = index.segment_header(0);
  }
  const Bytes blob = header.serialize();
  Bytes sidecar;
  put_u32le(sidecar, serve::kIndexMagic);
  sidecar.push_back(serve::kIndexVersion);
  put_varint(sidecar, f.file.size());   // source_size (matches)
  put_varint(sidecar, f.file.size());   // comp_end
  sidecar.push_back(0);                 // not a stream
  put_varint(sidecar, 1);               // one segment
  put_varint(sidecar, 0xFFFFFFFFFFFFFFFFull);  // comp_offset: wraps additively
  put_varint(sidecar, blob.size());
  sidecar.insert(sidecar.end(), blob.begin(), blob.end());
  EXPECT_THROW(serve::SeekIndex::deserialize(sidecar), Error);
}

TEST(SeekIndex, RejectsSidecarWithInconsistentBlockCount) {
  // The build path enforces num_blocks == ceil(uncompressed_size /
  // block_size) via check_payload; a sidecar skips that path (no payload
  // length in hand), and a crafted header with missing, extra, or zero
  // blocks would leave gaps/overlaps in the block table — then
  // block_containing() underflows and read_impl's in-block arithmetic
  // wraps into an out-of-bounds copy. Must be rejected at load time.
  const Fixture f(100000);
  format::FileHeader header;
  {
    const auto source = serve::memory_source(f.file);
    header = serve::SeekIndex::build(*source).segment_header(0);
  }
  const auto craft = [&](const format::FileHeader& h) {
    const Bytes blob = h.serialize();
    Bytes sidecar;
    put_u32le(sidecar, serve::kIndexMagic);
    sidecar.push_back(serve::kIndexVersion);
    put_varint(sidecar, f.file.size());  // source_size (matches)
    put_varint(sidecar, f.file.size());  // comp_end
    sidecar.push_back(0);                // not a stream
    put_varint(sidecar, 1);              // one segment
    put_varint(sidecar, 0);              // comp_offset
    put_varint(sidecar, blob.size());
    sidecar.insert(sidecar.end(), blob.begin(), blob.end());
    return sidecar;
  };
  // Sanity: the unmodified header is accepted by the same crafting.
  EXPECT_EQ(serve::SeekIndex::deserialize(craft(header)).num_blocks(),
            header.num_blocks());

  ASSERT_GT(header.num_blocks(), 1u);
  format::FileHeader fewer = header;
  fewer.block_compressed_sizes.pop_back();
  EXPECT_THROW(serve::SeekIndex::deserialize(craft(fewer)), Error);

  format::FileHeader none = header;  // zero blocks, nonzero uncompressed
  none.block_compressed_sizes.clear();
  EXPECT_THROW(serve::SeekIndex::deserialize(craft(none)), Error);

  format::FileHeader extra = header;
  extra.block_compressed_sizes.push_back(0);
  EXPECT_THROW(serve::SeekIndex::deserialize(craft(extra)), Error);

  // uncompressed_size near 2^64 must not wrap div_ceil's arithmetic into
  // accepting an empty block table (the invariant would pass vacuously).
  format::FileHeader wrap = header;
  wrap.uncompressed_size = ~0ull;
  wrap.block_size = 2;
  wrap.block_compressed_sizes.clear();
  EXPECT_THROW(serve::SeekIndex::deserialize(craft(wrap)), Error);
}

TEST(DecodeSession, GmpsStreamSessionsSpanSegments) {
  const Bytes input = datagen::matrix(500000);
  std::istringstream in(std::string(input.begin(), input.end()));
  std::ostringstream compressed;
  CompressOptions opt;
  opt.block_size = 32 * 1024;
  compress_stream(in, compressed, opt, 100000);  // several segments
  const std::string blob = compressed.str();
  const Bytes file(blob.begin(), blob.end());

  auto session = DecodeSession(serve::memory_source(file));
  EXPECT_TRUE(session.index().is_stream());
  EXPECT_GT(session.index().num_segments(), 1u);
  EXPECT_EQ(session.size(), input.size());
  // A read spanning a segment boundary.
  const std::uint64_t seg1_end = session.index().segment_header(0).uncompressed_size;
  Bytes got(2000);
  ASSERT_EQ(session.read_at(seg1_end - 1000, MutableByteSpan(got.data(), got.size())),
            2000u);
  EXPECT_TRUE(std::equal(got.begin(), got.end(),
                         input.begin() + static_cast<long>(seg1_end - 1000)));
  // Whole-stream equality.
  const Bytes all = session.read_bytes_at(0, input.size());
  EXPECT_EQ(all, input);
}

TEST(DecodeSession, CorruptBlockSurfacesOnRead) {
  Fixture f(100000, 16 * 1024);
  // Flip a byte well inside some block payload (past header + CRC).
  f.file[f.file.size() / 2] ^= 0x40;
  auto session = f.session();
  Bytes buf(1000);
  EXPECT_THROW(
      {
        for (std::uint64_t off = 0; off < f.input.size(); off += 16 * 1024) {
          session.read_at(off, MutableByteSpan(buf.data(), buf.size()));
        }
      },
      Error);
}

TEST(DecodeSession, TransientSourceFailureIsRetriable) {
  // A failed decode is delivered to the reader, not cached: the next
  // read of the same block retries it, so a transient I/O error does
  // not poison the session for its lifetime. Retry is disabled so the
  // single injected fault surfaces instead of being absorbed.
  const Fixture f(100000, 16 * 1024);
  auto flaky = std::make_unique<serve::FaultInjectingByteSource>(
      serve::memory_source(ByteSpan(f.file.data(), f.file.size())));
  serve::FaultInjectingByteSource* handle = flaky.get();
  serve::SessionOptions opt;
  opt.num_threads = 1;  // deterministic: decode inline on the reader
  opt.retry.max_attempts = 1;
  DecodeSession session(std::move(flaky), opt);

  handle->inject(serve::FaultSpec::transient_any(1));  // arm after the index scan
  Bytes buf(1000);
  EXPECT_THROW(session.read_at(0, MutableByteSpan(buf.data(), buf.size())), IoError);
  // The same range succeeds once the fault clears.
  ASSERT_EQ(session.read_at(0, MutableByteSpan(buf.data(), buf.size())), 1000u);
  EXPECT_TRUE(std::equal(buf.begin(), buf.end(), f.input.begin()));
  EXPECT_EQ(session.stats().transient_errors, 1u);
}

TEST(DecodeSession, StalePrefetchFailureRetriedTransparently) {
  // A lookahead decode the reader never observed fails transiently; by
  // the time the reader reaches that block the fault has cleared, so the
  // stale kFailed slot gets one transparent retry instead of aborting
  // the read. Backoff retry is disabled so the injected fault reaches
  // the slot instead of being absorbed inside the decode task.
  const Fixture f(100000, 16 * 1024);
  auto flaky = std::make_unique<serve::FaultInjectingByteSource>(
      serve::memory_source(ByteSpan(f.file.data(), f.file.size())));
  serve::FaultInjectingByteSource* handle = flaky.get();
  serve::SessionOptions opt;
  opt.num_threads = 2;
  opt.max_inflight_blocks = 2;
  opt.retry.max_attempts = 1;
  DecodeSession session(std::move(flaky), opt);

  // Fail exactly the prefetch read of block 1, scheduled as lookahead
  // by the first read of block 0.
  handle->inject(
      serve::FaultSpec::transient_at(session.index().block(1).comp_offset, 1));
  Bytes buf(1000);
  ASSERT_EQ(session.read_at(0, MutableByteSpan(buf.data(), buf.size())), 1000u);
  EXPECT_TRUE(std::equal(buf.begin(), buf.end(), f.input.begin()));

  // Let the failed lookahead publish its slot before touching block 1
  // (if the reader instead catches it in-flight and waits, it observes
  // the failure directly, which is the delivered-error path, not this
  // test's subject). decode_failures is bumped when the slot publishes,
  // so polling it is race-free.
  for (int i = 0; i < 2000 && session.stats().decode_failures == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(session.stats().decode_failures, 1u);

  const std::uint64_t off = session.index().block(1).uncomp_offset;
  Bytes got(1000);
  ASSERT_EQ(session.read_at(off, MutableByteSpan(got.data(), got.size())), 1000u);
  EXPECT_TRUE(std::equal(got.begin(), got.end(),
                         f.input.begin() + static_cast<long>(off)));
}

TEST(DecodeSession, TruncatedFileRejectedAtOpen) {
  const Fixture f(100000);
  const Bytes truncated(f.file.begin(), f.file.end() - 5);
  EXPECT_THROW(DecodeSession(serve::memory_source(truncated)), Error);
}

TEST(DecodeSession, EmptyFileServesZeroBytes) {
  const Bytes file = compress(Bytes{}, {});
  auto session = DecodeSession(serve::memory_source(file));
  EXPECT_EQ(session.size(), 0u);
  Bytes buf(10);
  EXPECT_EQ(session.read(MutableByteSpan(buf.data(), buf.size())), 0u);
  EXPECT_EQ(session.read_bytes_at(0, 10).size(), 0u);
}

TEST(DecodeSession, FileSourceMatchesMemorySource) {
  const Fixture f;
  const std::string path = "/tmp/gompresso_serve_file_test.gmp";
  {
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(f.file.data()),
              static_cast<std::streamsize>(f.file.size()));
  }
  auto session = DecodeSession(serve::open_file_source(path));
  const Bytes all = session.read_bytes_at(0, f.input.size());
  EXPECT_EQ(all, f.input);
  std::remove(path.c_str());
}

TEST(DecodeSession, ExplicitDeStrategyRejectedOnNonDeFile) {
  const Bytes input = datagen::wikipedia(100000);
  CompressOptions copt;
  copt.dependency_elimination = false;
  const Bytes file = compress(input, copt);
  serve::SessionOptions opt;
  opt.auto_strategy = false;
  opt.strategy = Strategy::kDependencyFree;
  EXPECT_THROW(DecodeSession(serve::memory_source(file), opt), Error);
}

}  // namespace
}  // namespace gompresso
