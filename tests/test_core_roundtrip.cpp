// Parameterized end-to-end round-trip sweep over the compressor's
// configuration space (codec x DE x block size x window x sub-block size
// x CWL) and datasets, plus option validation.
#include <gtest/gtest.h>

#include "core/gompresso.hpp"
#include "datagen/datasets.hpp"

namespace gompresso {
namespace {

Bytes dataset(int which, std::size_t n) {
  switch (which) {
    case 0: return datagen::wikipedia(n);
    case 1: return datagen::matrix(n);
    case 2: return datagen::random_bytes(n);
    default: return Bytes(n, 'd');
  }
}

class RoundTripSweep
    : public ::testing::TestWithParam<
          std::tuple<Codec, bool, std::uint32_t, std::uint32_t, int>> {};

TEST_P(RoundTripSweep, CompressDecompress) {
  const auto [codec, de, block_size, tokens_per_subblock, which] = GetParam();
  const Bytes input = dataset(which, 300000);
  CompressOptions opt;
  opt.codec = codec;
  opt.dependency_elimination = de;
  opt.block_size = block_size;
  opt.tokens_per_subblock = tokens_per_subblock;
  CompressStats stats;
  const Bytes file = compress(input, opt, &stats);
  EXPECT_EQ(stats.input_bytes, input.size());
  EXPECT_EQ(stats.output_bytes, file.size());
  EXPECT_EQ(stats.blocks, div_ceil<std::size_t>(input.size(), block_size));

  const DecompressResult result = decompress(file);
  EXPECT_EQ(result.data, input);
  EXPECT_EQ(result.strategy_used,
            de ? Strategy::kDependencyFree : Strategy::kMultiRound);
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSpace, RoundTripSweep,
    ::testing::Combine(::testing::Values(Codec::kByte, Codec::kBit),
                       ::testing::Bool(),
                       ::testing::Values(32u * 1024u, 256u * 1024u),
                       ::testing::Values(4u, 16u, 64u),
                       ::testing::Values(0, 1, 2, 3)));

class WindowSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(WindowSweep, RoundTripsAndRatioGrowsWithWindow) {
  const std::uint32_t window = GetParam();
  const Bytes input = datagen::wikipedia(300000);
  CompressOptions opt;
  opt.window_size = window;
  const Bytes file = compress(input, opt);
  EXPECT_EQ(decompress_bytes(file), input);
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowSweep,
                         ::testing::Values(1024u, 4096u, 8192u, 32768u));

class CwlSweep : public ::testing::TestWithParam<std::uint8_t> {};

TEST_P(CwlSweep, RoundTrips) {
  const Bytes input = datagen::matrix(200000);
  CompressOptions opt;
  opt.codec = Codec::kBit;
  opt.codeword_limit = GetParam();
  const Bytes file = compress(input, opt);
  EXPECT_EQ(decompress_bytes(file), input);
}

INSTANTIATE_TEST_SUITE_P(Limits, CwlSweep,
                         ::testing::Values(std::uint8_t{9}, std::uint8_t{10},
                                           std::uint8_t{12}, std::uint8_t{15}));

TEST(RoundTrip, MaxMatchVariants) {
  const Bytes input = datagen::wikipedia(200000);
  for (const std::uint32_t mm : {16u, 64u, 258u}) {
    CompressOptions opt;
    opt.max_match = mm;
    const Bytes file = compress(input, opt);
    EXPECT_EQ(decompress_bytes(file), input) << "max_match=" << mm;
  }
}

TEST(RoundTrip, ExactBlockBoundary) {
  // Input exactly divisible by block size, and off-by-one around it.
  for (const std::size_t n : {std::size_t{65536}, std::size_t{65535}, std::size_t{65537},
                              std::size_t{131072}}) {
    const Bytes input = dataset(0, n);
    CompressOptions opt;
    opt.block_size = 65536;
    const Bytes file = compress(input, opt);
    EXPECT_EQ(decompress_bytes(file), input) << "n=" << n;
  }
}

TEST(RoundTrip, ThreadCountsAgree) {
  const Bytes input = datagen::matrix(600000);
  CompressOptions opt;
  opt.block_size = 64 * 1024;
  opt.num_threads = 1;
  const Bytes serial = compress(input, opt);
  opt.num_threads = 4;
  const Bytes parallel = compress(input, opt);
  EXPECT_EQ(serial, parallel) << "compression must be deterministic across thread counts";
  DecompressOptions dopt;
  dopt.num_threads = 4;
  EXPECT_EQ(decompress(serial, dopt).data, input);
}

TEST(RoundTrip, RatioStatsAreConsistent) {
  const Bytes input = datagen::wikipedia(500000);
  CompressOptions opt;
  CompressStats stats;
  const Bytes file = compress(input, opt, &stats);
  EXPECT_NEAR(stats.ratio(), static_cast<double>(input.size()) / file.size(), 1e-9);
  EXPECT_EQ(stats.parse.match_bytes + stats.parse.literal_bytes, input.size());
}

TEST(Options, ValidationRejectsBadConfigs) {
  const Bytes input(2048, 'v');
  {
    CompressOptions opt;
    opt.block_size = 100;  // < 1 KiB
    EXPECT_THROW(compress(input, opt), Error);
  }
  {
    CompressOptions opt;
    opt.window_size = 1000;  // not a power of two
    EXPECT_THROW(compress(input, opt), Error);
  }
  {
    CompressOptions opt;
    opt.window_size = 65536;  // > 32768
    EXPECT_THROW(compress(input, opt), Error);
  }
  {
    CompressOptions opt;
    opt.min_match = 2;
    EXPECT_THROW(compress(input, opt), Error);
  }
  {
    CompressOptions opt;
    opt.max_match = 300;  // > 258
    EXPECT_THROW(compress(input, opt), Error);
  }
  {
    CompressOptions opt;
    opt.tokens_per_subblock = 0;
    EXPECT_THROW(compress(input, opt), Error);
  }
  {
    CompressOptions opt;
    opt.codeword_limit = 8;  // < 9 cannot hold a 286-symbol alphabet
    EXPECT_THROW(compress(input, opt), Error);
  }
}

TEST(Options, DeStrategyOnNonDeFileRejected) {
  const Bytes input = dataset(0, 50000);
  CompressOptions opt;
  opt.dependency_elimination = false;
  const Bytes file = compress(input, opt);
  DecompressOptions dopt;
  dopt.auto_strategy = false;
  dopt.strategy = Strategy::kDependencyFree;
  EXPECT_THROW(decompress(file, dopt), Error);
}

TEST(Options, StrategyNames) {
  EXPECT_STREQ(strategy_name(Strategy::kSequentialCopy), "SC");
  EXPECT_STREQ(strategy_name(Strategy::kMultiRound), "MRR");
  EXPECT_STREQ(strategy_name(Strategy::kDependencyFree), "DE");
  EXPECT_STREQ(strategy_name(Strategy::kMultiPass), "MRR-multipass");
}

TEST(IntraBlock, SingleBlockScalesAcrossSubblocks) {
  // One block, many threads: decompression must take the intra-block
  // path (sub-block lanes fanned out across the pool) and produce the
  // same bytes as the serial path — for every codec, since the tans and
  // byte codecs ride the same lane-pool path as the bit codec.
  const Bytes input = datagen::wikipedia(300000);
  for (const Codec codec : {Codec::kBit, Codec::kTans, Codec::kByte}) {
    CompressOptions opt;
    opt.codec = codec;
    opt.block_size = 512 * 1024;  // > input: exactly one block
    const Bytes file = compress(input, opt);

    DecompressOptions dopt;
    dopt.num_threads = 4;
    const DecompressResult parallel = decompress(file, dopt);
    EXPECT_EQ(parallel.data, input);
    EXPECT_EQ(parallel.scratch.lane_fanouts, 1u)
        << "codec " << static_cast<int>(codec)
        << ": single block + 4 threads must fan out lanes";

    dopt.num_threads = 1;
    const DecompressResult serial = decompress(file, dopt);
    EXPECT_EQ(serial.data, input);
    EXPECT_EQ(serial.scratch.lane_fanouts, 0u);
  }
}

TEST(IntraBlock, ByteCodecFanOutDeterminismAcrossCorpora) {
  // 1T vs NT byte-equality for the byte codec on every datagen corpus
  // (the tans twin lives in test_tans_codec).
  for (const int which : {0, 1, 2}) {
    const Bytes input = dataset(which, 200000);
    for (const std::uint32_t block_size : {512u * 1024u, 48u * 1024u}) {
      CompressOptions opt;
      opt.codec = Codec::kByte;
      opt.block_size = block_size;
      const Bytes file = compress(input, opt);
      DecompressOptions one;
      one.num_threads = 1;
      DecompressOptions many;
      many.num_threads = 4;
      const DecompressResult serial = decompress(file, one);
      const DecompressResult parallel = decompress(file, many);
      ASSERT_EQ(serial.data, input) << which << "/" << block_size;
      ASSERT_EQ(parallel.data, input) << which << "/" << block_size;
    }
  }
}

TEST(IntraBlock, EmptyInputDecompressesOnAnyThreadCount) {
  // Zero blocks must not take the single-block fan-out path (regression:
  // it used to read past the end of the offsets table under threads).
  const Bytes input;
  CompressOptions opt;
  opt.codec = Codec::kBit;
  const Bytes file = compress(input, opt);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    DecompressOptions dopt;
    dopt.num_threads = threads;
    const DecompressResult r = decompress(file, dopt);
    EXPECT_TRUE(r.data.empty()) << "threads=" << threads;
    EXPECT_EQ(r.scratch.lane_fanouts, 0u);
  }
}

TEST(IntraBlock, ManyBlocksKeepBlockParallelPath) {
  const Bytes input = datagen::wikipedia(300000);
  CompressOptions opt;
  opt.codec = Codec::kBit;
  opt.block_size = 32 * 1024;  // ~10 blocks >= 2 threads
  const Bytes file = compress(input, opt);
  DecompressOptions dopt;
  dopt.num_threads = 2;
  const DecompressResult r = decompress(file, dopt);
  EXPECT_EQ(r.data, input);
  EXPECT_EQ(r.scratch.lane_fanouts, 0u);
}

TEST(Scratch, SteadyStateDecodeAllocatesNothing) {
  // Eight identical blocks, one worker: the arena is pre-reserved from
  // the header's block-size bound, so every block (including the first)
  // must reuse the buffers, and identical trees must hit the table cache
  // after the first build — zero allocations per block.
  const Bytes tile = datagen::wikipedia(64 * 1024);
  Bytes input;
  for (int i = 0; i < 8; ++i) input.insert(input.end(), tile.begin(), tile.end());
  CompressOptions opt;
  opt.codec = Codec::kBit;
  opt.block_size = 64 * 1024;
  const Bytes file = compress(input, opt);

  DecompressOptions dopt;
  dopt.num_threads = 1;
  const DecompressResult r = decompress(file, dopt);
  EXPECT_EQ(r.data, input);
  EXPECT_EQ(r.scratch.blocks, 8u);
  EXPECT_EQ(r.scratch.buffer_reuses, 8u);  // pre-reserved: no block grew
  EXPECT_EQ(r.scratch.table_builds, 1u);
  EXPECT_EQ(r.scratch.table_reuses, 7u);
}

TEST(Scratch, TansAndByteSteadyStateDecodeAllocatesNothing) {
  // The tans and byte codecs ride the same pre-reserved arena: every
  // block of a file must be a buffer reuse, from the first one on.
  const Bytes tile = datagen::wikipedia(64 * 1024);
  Bytes input;
  for (int i = 0; i < 8; ++i) input.insert(input.end(), tile.begin(), tile.end());
  for (const Codec codec : {Codec::kTans, Codec::kByte}) {
    CompressOptions opt;
    opt.codec = codec;
    opt.block_size = 64 * 1024;
    const Bytes file = compress(input, opt);

    DecompressOptions dopt;
    dopt.num_threads = 1;
    const DecompressResult r = decompress(file, dopt);
    EXPECT_EQ(r.data, input);
    EXPECT_EQ(r.scratch.blocks, 8u) << static_cast<int>(codec);
    EXPECT_EQ(r.scratch.buffer_reuses, 8u) << static_cast<int>(codec);
    if (codec == Codec::kTans) {
      // Two shared models rebuilt per block, in reused storage.
      EXPECT_EQ(r.scratch.table_builds, 16u);
    }
  }
}

TEST(Metrics, DecompressionReportsWarpActivity) {
  const Bytes input = datagen::wikipedia(300000);
  CompressOptions opt;
  opt.dependency_elimination = false;
  const Bytes file = compress(input, opt);
  const DecompressResult r = decompress(file);
  EXPECT_GT(r.metrics.groups, 0u);
  EXPECT_GE(r.metrics.rounds, r.metrics.groups);
  EXPECT_GT(r.metrics.ballots, 0u);
  EXPECT_FALSE(r.metrics.bytes_per_round.empty());
}

}  // namespace
}  // namespace gompresso
