// Tests for the Gompresso/Tans codec (the paper's §VI future-work
// "alternative coding schemes", implemented over shared tANS models).
#include <gtest/gtest.h>

#include <utility>

#include "ans/tans.hpp"
#include "core/byte_codec.hpp"
#include "core/gompresso.hpp"
#include "core/tans_codec.hpp"
#include "datagen/datasets.hpp"
#include "lz77/parser.hpp"
#include "tests/fuzz_budget.hpp"
#include "lz77/ref_decoder.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/varint.hpp"

namespace gompresso::core {
namespace {

lz77::TokenBlock parse_for_tans(const Bytes& input) {
  lz77::ParserOptions opt;
  opt.max_literal_run = kByteCodecMaxLiteralRun;
  return lz77::parse(input, opt, nullptr);
}

TEST(TansModel, SharedModelStreamsRoundTrip) {
  const Bytes data = datagen::wikipedia(50000);
  std::vector<std::uint64_t> freqs(256, 0);
  for (const auto b : data) ++freqs[b];
  const ans::Model model = ans::Model::from_frequencies(freqs, 11);

  // Many independent streams against one model (the sub-block pattern).
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{100}, std::size_t{7777}}) {
    for (std::size_t at = 0; at + chunk <= data.size(); at += 9973) {
      const ByteSpan piece(data.data() + at, chunk);
      const Bytes stream = model.encode_stream(piece);
      const Bytes back = model.decode_stream(stream, chunk);
      ASSERT_TRUE(std::equal(back.begin(), back.end(), piece.begin()));
    }
  }
}

TEST(TansModel, SerializeRoundTrip) {
  std::vector<std::uint64_t> freqs(256, 0);
  freqs['x'] = 1000;
  freqs['y'] = 300;
  freqs['z'] = 1;
  const ans::Model model = ans::Model::from_frequencies(freqs, 10);
  Bytes buf;
  model.serialize(buf);
  std::size_t pos = 0;
  const ans::Model back = ans::Model::deserialize(buf, pos);
  EXPECT_EQ(pos, buf.size());
  EXPECT_EQ(back.table_log(), 10u);
  const Bytes msg = {'x', 'y', 'x', 'z', 'x', 'y'};
  EXPECT_EQ(back.decode_stream(model.encode_stream(msg), msg.size()), msg);
}

TEST(TansModel, RejectsForeignSymbols) {
  std::vector<std::uint64_t> freqs(256, 0);
  freqs['a'] = 10;
  freqs['b'] = 10;
  const ans::Model model = ans::Model::from_frequencies(freqs, 9);
  const Bytes msg = {'a', 'c'};
  EXPECT_THROW(model.encode_stream(msg), Error);
}

TEST(TansCodecBlock, RoundTripDatasets) {
  TansCodecConfig cfg;
  for (const int which : {0, 1, 2}) {
    const Bytes input = which == 0   ? datagen::wikipedia(80000)
                        : which == 1 ? datagen::matrix(80000)
                                     : Bytes(80000, 'q');
    const lz77::TokenBlock tokens = parse_for_tans(input);
    const Bytes payload = encode_block_tans(tokens, cfg);
    const lz77::TokenBlock back = decode_block_tans(payload, cfg);
    EXPECT_EQ(lz77::decode_reference(back), input) << "dataset " << which;
  }
}

TEST(TansCodecBlock, CompressesTextBetterThanByteCodec) {
  const lz77::TokenBlock tokens = parse_for_tans(datagen::wikipedia(200000));
  TansCodecConfig cfg;
  EXPECT_LT(encode_block_tans(tokens, cfg).size(), encode_block_byte(tokens).size());
}

TEST(TansCodecBlock, SubblockSizesSweep) {
  const lz77::TokenBlock tokens = parse_for_tans(datagen::matrix(60000));
  for (const std::uint32_t tps : {1u, 8u, 16u, 256u}) {
    TansCodecConfig cfg;
    cfg.tokens_per_subblock = tps;
    const Bytes payload = encode_block_tans(tokens, cfg);
    const lz77::TokenBlock back = decode_block_tans(payload, cfg);
    EXPECT_EQ(lz77::decode_reference(back), lz77::decode_reference(tokens))
        << "tps=" << tps;
  }
}

TEST(TansCodecBlock, CorruptionNeverCrashesAndIsMostlyDetected) {
  // A flipped byte must never crash the decoder. Most flips throw or
  // change the output (the container CRC catches the latter); flips in
  // the byte-alignment padding of a stream can be semantically inert,
  // which is harmless — the output is still correct.
  TansCodecConfig cfg;
  const Bytes input = datagen::wikipedia(40000);
  const lz77::TokenBlock tokens = parse_for_tans(input);
  const Bytes payload = encode_block_tans(tokens, cfg);
  int detected = 0, inert = 0, trials = 0;
  for (std::size_t at = 0; at < payload.size(); at += payload.size() / 113 + 1) {
    Bytes bad = payload;
    bad[at] ^= 0x3C;
    ++trials;
    try {
      const lz77::TokenBlock back = decode_block_tans(bad, cfg);
      if (lz77::decode_reference(back) != input) {
        ++detected;  // CRC would catch this downstream
      } else {
        ++inert;  // padding-bit flip: output unchanged
      }
    } catch (const Error&) {
      ++detected;
    }
  }
  EXPECT_EQ(detected + inert, trials);
  EXPECT_GT(detected, trials * 8 / 10) << "too many inert flips";
}

bool token_blocks_equal(const lz77::TokenBlock& a, const lz77::TokenBlock& b) {
  if (a.literals != b.literals || a.uncompressed_size != b.uncompressed_size ||
      a.sequences.size() != b.sequences.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.sequences.size(); ++i) {
    if (a.sequences[i].literal_len != b.sequences[i].literal_len ||
        a.sequences[i].match_len != b.sequences[i].match_len ||
        a.sequences[i].match_dist != b.sequences[i].match_dist) {
      return false;
    }
  }
  return true;
}

TEST(TansCodecBlock, ScratchReusesBuffersAndModels) {
  TansCodecConfig cfg;
  const lz77::TokenBlock tokens = parse_for_tans(datagen::wikipedia(60000));
  const Bytes payload = encode_block_tans(tokens, cfg);
  DecodeScratch scratch;
  EXPECT_TRUE(token_blocks_equal(tokens, decode_block_tans(payload, cfg, scratch)));
  EXPECT_EQ(scratch.stats.blocks, 1u);
  EXPECT_EQ(scratch.stats.table_builds, 2u);  // record + literal model
  EXPECT_EQ(scratch.stats.buffer_reuses, 0u);  // cold buffers grew
  // Decoding again must grow nothing: warm buffers, models rebuilt in
  // their existing storage.
  EXPECT_TRUE(token_blocks_equal(tokens, decode_block_tans(payload, cfg, scratch)));
  EXPECT_EQ(scratch.stats.blocks, 2u);
  EXPECT_EQ(scratch.stats.buffer_reuses, 1u);
  // A pre-reserved arena is warm from block one (the decompressor path).
  DecodeScratch reserved;
  reserved.reserve(1 << 20, cfg.tokens_per_subblock, /*tans=*/true);
  EXPECT_TRUE(token_blocks_equal(tokens, decode_block_tans(payload, cfg, reserved)));
  EXPECT_EQ(reserved.stats.blocks, 1u);
  EXPECT_EQ(reserved.stats.buffer_reuses, 1u);
}

TEST(TansCodecBlock, LanePoolFanOutMatchesSerialDecode) {
  TansCodecConfig cfg;
  cfg.tokens_per_subblock = 4;  // lots of lanes
  const lz77::TokenBlock tokens = parse_for_tans(datagen::wikipedia(120000));
  const Bytes payload = encode_block_tans(tokens, cfg);
  DecodeScratch serial_scratch;
  const lz77::TokenBlock serial = decode_block_tans(payload, cfg, serial_scratch);
  ThreadPool pool(4);
  DecodeScratch pooled_scratch;
  const lz77::TokenBlock& pooled = decode_block_tans(payload, cfg, pooled_scratch, &pool);
  EXPECT_TRUE(token_blocks_equal(serial, pooled));
  EXPECT_TRUE(token_blocks_equal(tokens, pooled));
  EXPECT_EQ(pooled_scratch.stats.lane_fanouts, 1u);
  EXPECT_EQ(serial_scratch.stats.lane_fanouts, 0u);
}

// ---------------------------------------------------------------------
// Adversarial payloads: the parse path must reject crafted headers with
// a clean Error before any of them can turn into out-of-bounds reads or
// allocation bombs (rapidgzip's lesson: the metadata parse is the attack
// surface of a parallel decoder).

namespace adversarial {

/// A minimal hand-built single-sub-block payload the crafters below
/// mutate: one sequence {1 literal 'a', no match}.
struct CraftParts {
  Bytes record_stream;
  Bytes literal_stream;
  Bytes record_model;   // serialized
  Bytes literal_model;  // serialized
};

CraftParts craft_parts() {
  CraftParts parts;
  lz77::Sequence seq;
  seq.literal_len = 1;
  Bytes raw_records;
  put_u32le(raw_records, pack_record(seq));
  std::vector<std::uint64_t> rec_freqs(256, 0);
  for (const auto b : raw_records) ++rec_freqs[b];
  // from_frequencies needs >= 2 distinct symbols only for coding gain,
  // but a one-symbol model still round-trips; pad to be safe.
  rec_freqs[0xFF] += 1;
  const ans::Model rec_model = ans::Model::from_frequencies(rec_freqs, 9);
  std::vector<std::uint64_t> lit_freqs(256, 0);
  lit_freqs['a'] = 1;
  lit_freqs['b'] = 1;
  const ans::Model lit_model = ans::Model::from_frequencies(lit_freqs, 9);
  parts.record_stream = rec_model.encode_stream(raw_records);
  parts.literal_stream = lit_model.encode_stream(Bytes{'a'});
  rec_model.serialize(parts.record_model);
  lit_model.serialize(parts.literal_model);
  return parts;
}

Bytes assemble(const CraftParts& parts, std::uint64_t table_n_seq,
               std::uint64_t table_n_lit, std::uint64_t record_bytes,
               std::uint64_t literal_bytes) {
  Bytes p;
  put_varint(p, 1);  // n_seq
  put_varint(p, 1);  // n_literals
  put_varint(p, 1);  // n_subblocks
  p.insert(p.end(), parts.record_model.begin(), parts.record_model.end());
  p.insert(p.end(), parts.literal_model.begin(), parts.literal_model.end());
  put_varint(p, table_n_seq);
  put_varint(p, table_n_lit);
  put_varint(p, record_bytes);
  put_varint(p, literal_bytes);
  p.insert(p.end(), parts.record_stream.begin(), parts.record_stream.end());
  p.insert(p.end(), parts.literal_stream.begin(), parts.literal_stream.end());
  return p;
}

}  // namespace adversarial

TEST(TansCodecAdversarial, CraftBaselineDecodes) {
  // Sanity: the hand-assembled payload with honest values is valid, so
  // the rejection tests below fail for the crafted field, not the craft.
  const auto parts = adversarial::craft_parts();
  const Bytes p = adversarial::assemble(parts, 1, 1, parts.record_stream.size(),
                                        parts.literal_stream.size());
  TansCodecConfig cfg;
  const lz77::TokenBlock back = decode_block_tans(p, cfg);
  EXPECT_EQ(back.literals, Bytes{'a'});
  EXPECT_EQ(back.uncompressed_size, 1u);
}

TEST(TansCodecAdversarial, WrappingStreamSizesRejected) {
  // Regression (pre-fix: `pos + record_bytes + literal_bytes <=
  // payload.size()` wraps around 2^64, and the subsequent subspan reads
  // out of bounds). Each size must be validated against the remaining
  // payload on its own.
  const auto parts = adversarial::craft_parts();
  TansCodecConfig cfg;
  using SizePair = std::pair<std::uint64_t, std::uint64_t>;
  for (const auto& [rec, lit] : {SizePair{0xFFFFFFFFFFFFFF00ull, 0x200},
                                 SizePair{0x200, 0xFFFFFFFFFFFFFF00ull},
                                 SizePair{0xFFFFFFFFFFFFFFFFull, 1}}) {
    const Bytes p = adversarial::assemble(parts, 1, 1, rec, lit);
    EXPECT_THROW(decode_block_tans(p, cfg), Error);
  }
}

TEST(TansCodecAdversarial, TruncatingCastCountsRejected) {
  // Regression (pre-fix: sub-block counts were silently narrowed with
  // static_cast<uint32_t>, so 2^32 + 1 aliased 1 and the u64 running
  // totals still agreed — the payload decoded as if honest).
  const auto parts = adversarial::craft_parts();
  TansCodecConfig cfg;
  const Bytes seq_bomb =
      adversarial::assemble(parts, (1ull << 32) + 1, 1, parts.record_stream.size(),
                            parts.literal_stream.size());
  EXPECT_THROW(decode_block_tans(seq_bomb, cfg), Error);
  const Bytes lit_bomb =
      adversarial::assemble(parts, 1, (1ull << 32) + 1, parts.record_stream.size(),
                            parts.literal_stream.size());
  EXPECT_THROW(decode_block_tans(lit_bomb, cfg), Error);
}

TEST(TansCodecAdversarial, SubblockCountBombRejected) {
  // Regression (pre-fix: a ~20-byte payload claiming 2^32 - 1 sequences
  // split into 4 * 10^9 sub-blocks forced a ~137 GB table resize before
  // any stream was validated). The count is bounded by the remaining
  // payload — every table entry needs at least 4 bytes — and must fail
  // with a clean Error, not bad_alloc.
  const auto parts = adversarial::craft_parts();
  Bytes p;
  put_varint(p, 0xFFFFFFFFull);  // n_seq (within the 32-bit bound)
  put_varint(p, 0);              // n_literals
  put_varint(p, 0xFFFFFFF0ull);  // n_subblocks
  p.insert(p.end(), parts.record_model.begin(), parts.record_model.end());
  TansCodecConfig cfg;
  EXPECT_THROW(decode_block_tans(p, cfg), Error);
}

TEST(TansCodecAdversarial, SequenceCountBombRejected) {
  // Regression (post-review): a lane claiming 2^32 - 1 sequences in a
  // ~30-byte payload passed every structural check and reached
  // block.sequences.resize (~51 GB) + record-arena resize (~17 GB),
  // escaping as std::bad_alloc. Both the standalone plausibility cap and
  // the container's exact block-size bound must reject it with Error.
  const auto parts = adversarial::craft_parts();
  Bytes p;
  put_varint(p, 0xFFFFFFFFull);  // n_seq
  put_varint(p, 0);              // n_literals
  put_varint(p, 1);              // n_subblocks
  p.insert(p.end(), parts.record_model.begin(), parts.record_model.end());
  put_varint(p, 0xFFFFFFFFull);  // the single lane claims them all
  put_varint(p, 0);
  put_varint(p, parts.record_stream.size());
  put_varint(p, 0);
  p.insert(p.end(), parts.record_stream.begin(), parts.record_stream.end());
  TansCodecConfig cfg;
  EXPECT_THROW(decode_block_tans(p, cfg), Error);  // plausibility cap
  DecodeScratch scratch;
  EXPECT_THROW(decode_block_tans(p, cfg, scratch, nullptr, 256 * 1024),
               Error);  // exact block-size bound
  // Same for a literal-count bomb.
  Bytes q;
  put_varint(q, 1);
  put_varint(q, 0xFFFFFFFFull);
  put_varint(q, 1);
  EXPECT_THROW(decode_block_tans(q, cfg), Error);
}

TEST(TansCodecAdversarial, BlockCountsBeyond32BitsRejected) {
  const auto parts = adversarial::craft_parts();
  Bytes p;
  put_varint(p, 1ull << 33);  // n_seq beyond any block's output bound
  put_varint(p, 0);
  put_varint(p, 1);
  p.insert(p.end(), parts.record_model.begin(), parts.record_model.end());
  TansCodecConfig cfg;
  EXPECT_THROW(decode_block_tans(p, cfg), Error);
}

TEST(TansCodecAdversarial, TruncatedPayloadThrows) {
  TansCodecConfig cfg;
  const lz77::TokenBlock tokens = parse_for_tans(datagen::wikipedia(20000));
  const Bytes payload = encode_block_tans(tokens, cfg);
  for (const double frac : {0.0, 0.1, 0.5, 0.95}) {
    Bytes cut(payload.begin(),
              payload.begin() + static_cast<std::ptrdiff_t>(payload.size() * frac));
    EXPECT_THROW(decode_block_tans(cut, cfg), Error);
  }
}

TEST(TansCodecAdversarial, RandomMutationFuzzNeverCrashes) {
  // Beyond single-byte flips: random multi-byte mutations, splices and
  // truncations must always end in a clean decode or a clean Error.
  TansCodecConfig cfg;
  cfg.tokens_per_subblock = 8;
  const Bytes input = datagen::matrix(30000);
  const lz77::TokenBlock tokens = parse_for_tans(input);
  const Bytes payload = encode_block_tans(tokens, cfg);
  Rng rng(0xC0FFEE);
  const int trials = gompresso::testing::fuzz_trials(300);  // nightly: 10x
  for (int trial = 0; trial < trials; ++trial) {
    Bytes bad = payload;
    const int edits = 1 + static_cast<int>(rng.next_below(8));
    for (int e = 0; e < edits; ++e) {
      const std::size_t at = rng.next_below(bad.size());
      bad[at] = static_cast<std::uint8_t>(rng.next_u32());
    }
    if (rng.next_below(4) == 0) {
      bad.resize(1 + rng.next_below(bad.size()));
    }
    try {
      const lz77::TokenBlock back = decode_block_tans(bad, cfg);
      (void)back;  // structurally valid mutation: container CRC's job
    } catch (const Error&) {
      // clean rejection
    }
  }
}

TEST(TansEndToEnd, FullPipelineRoundTrip) {
  for (const bool de : {false, true}) {
    CompressOptions opt;
    opt.codec = Codec::kTans;
    opt.dependency_elimination = de;
    opt.block_size = 64 * 1024;
    for (const int which : {0, 1, 2}) {
      const Bytes input = which == 0   ? datagen::wikipedia(300000)
                          : which == 1 ? datagen::matrix(300000)
                                       : datagen::random_bytes(150000);
      CompressStats stats;
      const Bytes file = compress(input, opt, &stats);
      const DecompressResult r = decompress(file);
      EXPECT_EQ(r.data, input) << "de=" << de << " which=" << which;
      EXPECT_EQ(r.strategy_used,
                de ? Strategy::kDependencyFree : Strategy::kMultiRound);
    }
  }
}

TEST(TansEndToEnd, RatioBetweenByteAndBit) {
  const Bytes input = datagen::wikipedia(500000);
  auto ratio_of = [&](Codec c, std::uint32_t tps) {
    CompressOptions opt;
    opt.codec = c;
    opt.tokens_per_subblock = tps;
    CompressStats stats;
    compress(input, opt, &stats);
    return stats.ratio();
  };
  const double byte_r = ratio_of(Codec::kByte, 16);
  const double tans_r = ratio_of(Codec::kTans, 16);
  const double bit_r = ratio_of(Codec::kBit, 16);
  EXPECT_GT(tans_r, byte_r) << "entropy coding must beat raw records";
  // Order-0 coding of packed record bytes cannot reach the Huffman
  // stage's semantic symbols, but must land within ~2/3 of it.
  EXPECT_GT(tans_r, bit_r * 0.6);
  // Larger sub-blocks amortise per-stream state overhead (the Tans
  // analogue of the §III-A parallelism-vs-ratio trade-off).
  const double tans_big = ratio_of(Codec::kTans, 128);
  EXPECT_GT(tans_big, tans_r);
}

TEST(TansEndToEnd, LaneFanOutDeterminismAcrossCorpora) {
  // 1T vs NT decompression must be byte-identical on every datagen
  // corpus, both for the single-block intra-block fan-out path and for
  // the multi-block inter-block path.
  for (const char* name : {"wikipedia", "matrix", "random"}) {
    const Bytes input = datagen::by_name(name, 200000);
    for (const std::uint32_t block_size : {512u * 1024u, 48u * 1024u}) {
      CompressOptions opt;
      opt.codec = Codec::kTans;
      opt.block_size = block_size;
      const Bytes file = compress(input, opt);
      DecompressOptions one;
      one.num_threads = 1;
      const DecompressResult serial = decompress(file, one);
      DecompressOptions many;
      many.num_threads = 4;
      const DecompressResult parallel = decompress(file, many);
      ASSERT_EQ(serial.data, input) << name << " block_size=" << block_size;
      ASSERT_EQ(parallel.data, input) << name << " block_size=" << block_size;
      if (block_size > input.size() && std::string(name) != "random") {
        // (random compresses to a stored block, which has no lanes.)
        EXPECT_EQ(parallel.scratch.lane_fanouts, 1u)
            << name << ": single block + 4 threads must fan out lanes";
      }
      EXPECT_EQ(serial.scratch.lane_fanouts, 0u);
    }
  }
}

TEST(TansEndToEnd, RejectsBadTableLog) {
  CompressOptions opt;
  opt.codec = Codec::kTans;
  opt.tans_table_log = 8;
  EXPECT_THROW(compress(Bytes(2048, 'a'), opt), Error);
}

}  // namespace
}  // namespace gompresso::core
