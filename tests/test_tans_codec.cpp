// Tests for the Gompresso/Tans codec (the paper's §VI future-work
// "alternative coding schemes", implemented over shared tANS models).
#include <gtest/gtest.h>

#include "ans/tans.hpp"
#include "core/byte_codec.hpp"
#include "core/gompresso.hpp"
#include "core/tans_codec.hpp"
#include "datagen/datasets.hpp"
#include "lz77/parser.hpp"
#include "lz77/ref_decoder.hpp"

namespace gompresso::core {
namespace {

lz77::TokenBlock parse_for_tans(const Bytes& input) {
  lz77::ParserOptions opt;
  opt.max_literal_run = kByteCodecMaxLiteralRun;
  return lz77::parse(input, opt, nullptr);
}

TEST(TansModel, SharedModelStreamsRoundTrip) {
  const Bytes data = datagen::wikipedia(50000);
  std::vector<std::uint64_t> freqs(256, 0);
  for (const auto b : data) ++freqs[b];
  const ans::Model model = ans::Model::from_frequencies(freqs, 11);

  // Many independent streams against one model (the sub-block pattern).
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{100}, std::size_t{7777}}) {
    for (std::size_t at = 0; at + chunk <= data.size(); at += 9973) {
      const ByteSpan piece(data.data() + at, chunk);
      const Bytes stream = model.encode_stream(piece);
      const Bytes back = model.decode_stream(stream, chunk);
      ASSERT_TRUE(std::equal(back.begin(), back.end(), piece.begin()));
    }
  }
}

TEST(TansModel, SerializeRoundTrip) {
  std::vector<std::uint64_t> freqs(256, 0);
  freqs['x'] = 1000;
  freqs['y'] = 300;
  freqs['z'] = 1;
  const ans::Model model = ans::Model::from_frequencies(freqs, 10);
  Bytes buf;
  model.serialize(buf);
  std::size_t pos = 0;
  const ans::Model back = ans::Model::deserialize(buf, pos);
  EXPECT_EQ(pos, buf.size());
  EXPECT_EQ(back.table_log(), 10u);
  const Bytes msg = {'x', 'y', 'x', 'z', 'x', 'y'};
  EXPECT_EQ(back.decode_stream(model.encode_stream(msg), msg.size()), msg);
}

TEST(TansModel, RejectsForeignSymbols) {
  std::vector<std::uint64_t> freqs(256, 0);
  freqs['a'] = 10;
  freqs['b'] = 10;
  const ans::Model model = ans::Model::from_frequencies(freqs, 9);
  const Bytes msg = {'a', 'c'};
  EXPECT_THROW(model.encode_stream(msg), Error);
}

TEST(TansCodecBlock, RoundTripDatasets) {
  TansCodecConfig cfg;
  for (const int which : {0, 1, 2}) {
    const Bytes input = which == 0   ? datagen::wikipedia(80000)
                        : which == 1 ? datagen::matrix(80000)
                                     : Bytes(80000, 'q');
    const lz77::TokenBlock tokens = parse_for_tans(input);
    const Bytes payload = encode_block_tans(tokens, cfg);
    const lz77::TokenBlock back = decode_block_tans(payload, cfg);
    EXPECT_EQ(lz77::decode_reference(back), input) << "dataset " << which;
  }
}

TEST(TansCodecBlock, CompressesTextBetterThanByteCodec) {
  const lz77::TokenBlock tokens = parse_for_tans(datagen::wikipedia(200000));
  TansCodecConfig cfg;
  EXPECT_LT(encode_block_tans(tokens, cfg).size(), encode_block_byte(tokens).size());
}

TEST(TansCodecBlock, SubblockSizesSweep) {
  const lz77::TokenBlock tokens = parse_for_tans(datagen::matrix(60000));
  for (const std::uint32_t tps : {1u, 8u, 16u, 256u}) {
    TansCodecConfig cfg;
    cfg.tokens_per_subblock = tps;
    const Bytes payload = encode_block_tans(tokens, cfg);
    const lz77::TokenBlock back = decode_block_tans(payload, cfg);
    EXPECT_EQ(lz77::decode_reference(back), lz77::decode_reference(tokens))
        << "tps=" << tps;
  }
}

TEST(TansCodecBlock, CorruptionNeverCrashesAndIsMostlyDetected) {
  // A flipped byte must never crash the decoder. Most flips throw or
  // change the output (the container CRC catches the latter); flips in
  // the byte-alignment padding of a stream can be semantically inert,
  // which is harmless — the output is still correct.
  TansCodecConfig cfg;
  const Bytes input = datagen::wikipedia(40000);
  const lz77::TokenBlock tokens = parse_for_tans(input);
  const Bytes payload = encode_block_tans(tokens, cfg);
  int detected = 0, inert = 0, trials = 0;
  for (std::size_t at = 0; at < payload.size(); at += payload.size() / 113 + 1) {
    Bytes bad = payload;
    bad[at] ^= 0x3C;
    ++trials;
    try {
      const lz77::TokenBlock back = decode_block_tans(bad, cfg);
      if (lz77::decode_reference(back) != input) {
        ++detected;  // CRC would catch this downstream
      } else {
        ++inert;  // padding-bit flip: output unchanged
      }
    } catch (const Error&) {
      ++detected;
    }
  }
  EXPECT_EQ(detected + inert, trials);
  EXPECT_GT(detected, trials * 8 / 10) << "too many inert flips";
}

TEST(TansEndToEnd, FullPipelineRoundTrip) {
  for (const bool de : {false, true}) {
    CompressOptions opt;
    opt.codec = Codec::kTans;
    opt.dependency_elimination = de;
    opt.block_size = 64 * 1024;
    for (const int which : {0, 1, 2}) {
      const Bytes input = which == 0   ? datagen::wikipedia(300000)
                          : which == 1 ? datagen::matrix(300000)
                                       : datagen::random_bytes(150000);
      CompressStats stats;
      const Bytes file = compress(input, opt, &stats);
      const DecompressResult r = decompress(file);
      EXPECT_EQ(r.data, input) << "de=" << de << " which=" << which;
      EXPECT_EQ(r.strategy_used,
                de ? Strategy::kDependencyFree : Strategy::kMultiRound);
    }
  }
}

TEST(TansEndToEnd, RatioBetweenByteAndBit) {
  const Bytes input = datagen::wikipedia(500000);
  auto ratio_of = [&](Codec c, std::uint32_t tps) {
    CompressOptions opt;
    opt.codec = c;
    opt.tokens_per_subblock = tps;
    CompressStats stats;
    compress(input, opt, &stats);
    return stats.ratio();
  };
  const double byte_r = ratio_of(Codec::kByte, 16);
  const double tans_r = ratio_of(Codec::kTans, 16);
  const double bit_r = ratio_of(Codec::kBit, 16);
  EXPECT_GT(tans_r, byte_r) << "entropy coding must beat raw records";
  // Order-0 coding of packed record bytes cannot reach the Huffman
  // stage's semantic symbols, but must land within ~2/3 of it.
  EXPECT_GT(tans_r, bit_r * 0.6);
  // Larger sub-blocks amortise per-stream state overhead (the Tans
  // analogue of the §III-A parallelism-vs-ratio trade-off).
  const double tans_big = ratio_of(Codec::kTans, 128);
  EXPECT_GT(tans_big, tans_r);
}

TEST(TansEndToEnd, RejectsBadTableLog) {
  CompressOptions opt;
  opt.codec = Codec::kTans;
  opt.tans_table_log = 8;
  EXPECT_THROW(compress(Bytes(2048, 'a'), opt), Error);
}

}  // namespace
}  // namespace gompresso::core
